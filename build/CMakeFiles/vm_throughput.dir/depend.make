# Empty dependencies file for vm_throughput.
# This may be replaced when dependencies are built.
