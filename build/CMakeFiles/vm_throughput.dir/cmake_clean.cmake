file(REMOVE_RECURSE
  "CMakeFiles/vm_throughput.dir/bench/vm_throughput.cpp.o"
  "CMakeFiles/vm_throughput.dir/bench/vm_throughput.cpp.o.d"
  "vm_throughput"
  "vm_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
