file(REMOVE_RECURSE
  "CMakeFiles/fig11_sweep.dir/bench/fig11_sweep.cpp.o"
  "CMakeFiles/fig11_sweep.dir/bench/fig11_sweep.cpp.o.d"
  "fig11_sweep"
  "fig11_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
