
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ast/PrinterTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/ast/PrinterTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/ast/PrinterTest.cpp.o.d"
  "/root/repo/tests/ast/WalkTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/ast/WalkTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/ast/WalkTest.cpp.o.d"
  "/root/repo/tests/lex/LexerTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/lex/LexerTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/lex/LexerTest.cpp.o.d"
  "/root/repo/tests/parse/ParserTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/parse/ParserTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/parse/ParserTest.cpp.o.d"
  "/root/repo/tests/sema/GridDimAnalysisTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/sema/GridDimAnalysisTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/sema/GridDimAnalysisTest.cpp.o.d"
  "/root/repo/tests/sema/TransformabilityTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/sema/TransformabilityTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/sema/TransformabilityTest.cpp.o.d"
  "/root/repo/tests/sim/LaunchPlanTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/sim/LaunchPlanTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/sim/LaunchPlanTest.cpp.o.d"
  "/root/repo/tests/sim/SimulatorTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/sim/SimulatorTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/sim/SimulatorTest.cpp.o.d"
  "/root/repo/tests/transform/AggregationPassTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/transform/AggregationPassTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/transform/AggregationPassTest.cpp.o.d"
  "/root/repo/tests/transform/CoarseningPassTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/transform/CoarseningPassTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/transform/CoarseningPassTest.cpp.o.d"
  "/root/repo/tests/transform/ThresholdingPassTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/transform/ThresholdingPassTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/transform/ThresholdingPassTest.cpp.o.d"
  "/root/repo/tests/vm/EquivalenceTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/vm/EquivalenceTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/vm/EquivalenceTest.cpp.o.d"
  "/root/repo/tests/vm/FuzzEquivalenceTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/vm/FuzzEquivalenceTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/vm/FuzzEquivalenceTest.cpp.o.d"
  "/root/repo/tests/vm/PeepholeTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/vm/PeepholeTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/vm/PeepholeTest.cpp.o.d"
  "/root/repo/tests/vm/VmTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/vm/VmTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/vm/VmTest.cpp.o.d"
  "/root/repo/tests/workloads/DatasetTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/workloads/DatasetTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/workloads/DatasetTest.cpp.o.d"
  "/root/repo/tests/workloads/TunerTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/workloads/TunerTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/workloads/TunerTest.cpp.o.d"
  "/root/repo/tests/workloads/WorkloadTest.cpp" "CMakeFiles/dpopt_tests.dir/tests/workloads/WorkloadTest.cpp.o" "gcc" "CMakeFiles/dpopt_tests.dir/tests/workloads/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/dpopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
