# Empty dependencies file for dpopt_tests.
# This may be replaced when dependencies are built.
