# Empty dependencies file for compiler_throughput.
# This may be replaced when dependencies are built.
