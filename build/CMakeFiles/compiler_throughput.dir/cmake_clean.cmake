file(REMOVE_RECURSE
  "CMakeFiles/compiler_throughput.dir/bench/compiler_throughput.cpp.o"
  "CMakeFiles/compiler_throughput.dir/bench/compiler_throughput.cpp.o.d"
  "compiler_throughput"
  "compiler_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
