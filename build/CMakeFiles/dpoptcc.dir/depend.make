# Empty dependencies file for dpoptcc.
# This may be replaced when dependencies are built.
