file(REMOVE_RECURSE
  "CMakeFiles/dpoptcc.dir/examples/dpoptcc.cpp.o"
  "CMakeFiles/dpoptcc.dir/examples/dpoptcc.cpp.o.d"
  "dpoptcc"
  "dpoptcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoptcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
