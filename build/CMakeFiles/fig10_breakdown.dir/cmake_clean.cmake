file(REMOVE_RECURSE
  "CMakeFiles/fig10_breakdown.dir/bench/fig10_breakdown.cpp.o"
  "CMakeFiles/fig10_breakdown.dir/bench/fig10_breakdown.cpp.o.d"
  "fig10_breakdown"
  "fig10_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
