file(REMOVE_RECURSE
  "CMakeFiles/fig12_road.dir/bench/fig12_road.cpp.o"
  "CMakeFiles/fig12_road.dir/bench/fig12_road.cpp.o.d"
  "fig12_road"
  "fig12_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
