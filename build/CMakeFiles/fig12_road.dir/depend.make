# Empty dependencies file for fig12_road.
# This may be replaced when dependencies are built.
