# Empty dependencies file for dpopt.
# This may be replaced when dependencies are built.
