file(REMOVE_RECURSE
  "libdpopt.a"
)
