
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ASTPrinter.cpp" "CMakeFiles/dpopt.dir/src/ast/ASTPrinter.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/ast/ASTPrinter.cpp.o.d"
  "/root/repo/src/ast/Clone.cpp" "CMakeFiles/dpopt.dir/src/ast/Clone.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/ast/Clone.cpp.o.d"
  "/root/repo/src/ast/Equivalence.cpp" "CMakeFiles/dpopt.dir/src/ast/Equivalence.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/ast/Equivalence.cpp.o.d"
  "/root/repo/src/ast/Walk.cpp" "CMakeFiles/dpopt.dir/src/ast/Walk.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/ast/Walk.cpp.o.d"
  "/root/repo/src/datasets/Generators.cpp" "CMakeFiles/dpopt.dir/src/datasets/Generators.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/datasets/Generators.cpp.o.d"
  "/root/repo/src/datasets/Graph.cpp" "CMakeFiles/dpopt.dir/src/datasets/Graph.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/datasets/Graph.cpp.o.d"
  "/root/repo/src/lex/Lexer.cpp" "CMakeFiles/dpopt.dir/src/lex/Lexer.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/lex/Lexer.cpp.o.d"
  "/root/repo/src/parse/Parser.cpp" "CMakeFiles/dpopt.dir/src/parse/Parser.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/parse/Parser.cpp.o.d"
  "/root/repo/src/rt/LaunchPlan.cpp" "CMakeFiles/dpopt.dir/src/rt/LaunchPlan.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/rt/LaunchPlan.cpp.o.d"
  "/root/repo/src/sema/GridDimAnalysis.cpp" "CMakeFiles/dpopt.dir/src/sema/GridDimAnalysis.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/sema/GridDimAnalysis.cpp.o.d"
  "/root/repo/src/sema/LaunchSites.cpp" "CMakeFiles/dpopt.dir/src/sema/LaunchSites.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/sema/LaunchSites.cpp.o.d"
  "/root/repo/src/sema/PurityAnalysis.cpp" "CMakeFiles/dpopt.dir/src/sema/PurityAnalysis.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/sema/PurityAnalysis.cpp.o.d"
  "/root/repo/src/sema/Transformability.cpp" "CMakeFiles/dpopt.dir/src/sema/Transformability.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/sema/Transformability.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "CMakeFiles/dpopt.dir/src/sim/Simulator.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "CMakeFiles/dpopt.dir/src/support/Diagnostics.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "CMakeFiles/dpopt.dir/src/support/StringUtils.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/support/StringUtils.cpp.o.d"
  "/root/repo/src/transform/AggregationPass.cpp" "CMakeFiles/dpopt.dir/src/transform/AggregationPass.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/transform/AggregationPass.cpp.o.d"
  "/root/repo/src/transform/BuiltinRewrite.cpp" "CMakeFiles/dpopt.dir/src/transform/BuiltinRewrite.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/transform/BuiltinRewrite.cpp.o.d"
  "/root/repo/src/transform/CoarseningPass.cpp" "CMakeFiles/dpopt.dir/src/transform/CoarseningPass.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/transform/CoarseningPass.cpp.o.d"
  "/root/repo/src/transform/Pipeline.cpp" "CMakeFiles/dpopt.dir/src/transform/Pipeline.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/transform/Pipeline.cpp.o.d"
  "/root/repo/src/transform/ThresholdingPass.cpp" "CMakeFiles/dpopt.dir/src/transform/ThresholdingPass.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/transform/ThresholdingPass.cpp.o.d"
  "/root/repo/src/tuner/Tuner.cpp" "CMakeFiles/dpopt.dir/src/tuner/Tuner.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/tuner/Tuner.cpp.o.d"
  "/root/repo/src/vm/Compiler.cpp" "CMakeFiles/dpopt.dir/src/vm/Compiler.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/vm/Compiler.cpp.o.d"
  "/root/repo/src/vm/Peephole.cpp" "CMakeFiles/dpopt.dir/src/vm/Peephole.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/vm/Peephole.cpp.o.d"
  "/root/repo/src/vm/VM.cpp" "CMakeFiles/dpopt.dir/src/vm/VM.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/vm/VM.cpp.o.d"
  "/root/repo/src/workloads/Catalog.cpp" "CMakeFiles/dpopt.dir/src/workloads/Catalog.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/workloads/Catalog.cpp.o.d"
  "/root/repo/src/workloads/GraphWorkloads.cpp" "CMakeFiles/dpopt.dir/src/workloads/GraphWorkloads.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/workloads/GraphWorkloads.cpp.o.d"
  "/root/repo/src/workloads/SpBezier.cpp" "CMakeFiles/dpopt.dir/src/workloads/SpBezier.cpp.o" "gcc" "CMakeFiles/dpopt.dir/src/workloads/SpBezier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
