# Empty dependencies file for graph_traversal.
# This may be replaced when dependencies are built.
