file(REMOVE_RECURSE
  "CMakeFiles/graph_traversal.dir/examples/graph_traversal.cpp.o"
  "CMakeFiles/graph_traversal.dir/examples/graph_traversal.cpp.o.d"
  "graph_traversal"
  "graph_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
