# Empty dependencies file for fig9_performance.
# This may be replaced when dependencies are built.
