file(REMOVE_RECURSE
  "CMakeFiles/fig9_performance.dir/bench/fig9_performance.cpp.o"
  "CMakeFiles/fig9_performance.dir/bench/fig9_performance.cpp.o.d"
  "fig9_performance"
  "fig9_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
