# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/dpopt_tests[1]_include.cmake")
add_test(quickstart_example "/root/repo/build/quickstart")
set_tests_properties(quickstart_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;61;add_test;/root/repo/CMakeLists.txt;0;")
