//===--- dpoptcc.cpp - The source-to-source compiler driver ---------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line driver mirroring the paper's artifact workflow: read a
/// .cu file, apply any combination of the three passes, write the
/// transformed .cu (with `_THRESHOLD` / `_CFACTOR` / `_AGG_SIZE` macros
/// ready for compile-time tuning, Section VII).
///
///   dpoptcc [-t] [-c] [-a] [--granularity=warp|block|multiblock|grid]
///           [--threshold=N] [--factor=N] [--group=N] [--agg-threshold=N]
///           [-passes=PIPELINE] [--tune=MODE] [--tune-budget=N]
///           [--tune-seed=N] [--workload=BENCH:DATASET]
///           [--tune-report=FILE] [--print-pass-stats] [--list-passes]
///           [input.cu] [-o output.cu]
///
/// The -t/-c/-a flags build the paper's Fig. 8(a) pipeline; -passes= runs
/// an arbitrary pipeline through the PassManager (grammar below and in
/// src/transform/README.md); --tune= asks the autotuner (analytic
/// simulator sweep, empirical VM-in-the-loop search, or the hybrid of
/// both) to pick the pipeline. All paths share one AnalysisManager, so
/// --print-pass-stats shows per-pass timings and analysis-cache hits.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "profile/Profile.h"
#include "service/CompileService.h"
#include "support/StringUtils.h"
#include "transform/Pipeline.h"
#include "tuner/Calibrate.h"
#include "tuner/Empirical.h"
#include "tuner/TunedTable.h"
#include "workloads/KernelSources.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

using namespace dpo;

static void usage() {
  std::fprintf(
      stderr,
      "usage: dpoptcc [-t] [-c] [-a] [--granularity=G] [--threshold=N]\n"
      "               [--factor=N] [--group=N] [--agg-threshold=N]\n"
      "               [-passes=PIPELINE] [--tune=MODE] [--tune-budget=N]\n"
      "               [--tune-seed=N] [--workload=BENCH:DATASET]\n"
      "               [--tune-report=FILE] [--print-pass-stats]\n"
      "               [--profile-out=FILE] [--profile-in=FILE] [--calibrate]\n"
      "               [--list-passes] [input.cu] [-o output.cu]\n"
      "       dpoptcc --serve=REQFILE [--cache-dir=DIR] [--cache-bytes=MIB]\n"
      "               [--service-workers=N] [--tuned-dir=DIR] [--cache-stats]\n"
      "\n"
      "service mode:\n"
      "  --serve=REQFILE     drain a request-list file through one\n"
      "                      CompileService: one request per line,\n"
      "                      'compile src=FILE [passes=PIPELINE] [bytecode=1]\n"
      "                      [out=FILE]' or 'tune workload=SPEC [mode=M]\n"
      "                      [budget=N] [seed=N] [warm=1] [out=FILE]';\n"
      "                      requests run concurrently, results report in\n"
      "                      request order\n"
      "  --cache-dir=DIR     content-addressed artifact cache directory\n"
      "                      (also DPO_CACHE_DIR; empty disables disk cache)\n"
      "  --cache-bytes=MIB   cache size bound in MiB, LRU-evicted\n"
      "                      (also DPO_CACHE_MAX_BYTES, in bytes)\n"
      "  --service-workers=N concurrent drain workers (also\n"
      "                      DPO_SERVICE_WORKERS; default: hardware threads)\n"
      "  --tuned-dir=DIR     committed tuned-table directory used to seed\n"
      "                      warm-started tunes (bench/tuned/ format)\n"
      "  --cache-stats       print hit/miss/eviction/byte counters on exit\n"
      "\n"
      "pass selection (pick one):\n"
      "  -t/-c/-a            enable thresholding / coarsening / aggregation\n"
      "                      in the paper's order (default: all three,\n"
      "                      multi-block granularity); knob flags\n"
      "                      (--threshold=, --factor=, --group=,\n"
      "                      --agg-threshold=, --granularity=) set values\n"
      "  -passes=PIPELINE    run a textual pass pipeline instead\n"
      "  --tune=MODE         let the autotuner pick the pipeline; MODE is\n"
      "                      analytic  (exhaustive simulator sweep),\n"
      "                      empirical (candidates compiled through the\n"
      "                                 pass manager and *executed* on the\n"
      "                                 bytecode VM; successive halving +\n"
      "                                 hill climbing), or\n"
      "                      hybrid    (simulator-ranked shortlist,\n"
      "                                 VM-measured winners)\n"
      "  --tune-budget=N     max VM executions for empirical/hybrid\n"
      "                      (default 48)\n"
      "  --tune-seed=N       sampling seed; fixed seed + budget reproduces\n"
      "                      the chosen config exactly (default 1)\n"
      "  --workload=SPEC     tune against a real Table I kernel bound to\n"
      "                      its dataset (e.g. bfs:road_ny, tc:kron,\n"
      "                      sp:rand3, bt:t2048_c64) instead of the\n"
      "                      canonical nested workload; dataset defaults\n"
      "                      to the benchmark's Fig. 11 pairing\n"
      "  --tune-report=PATH  write the winning config as a tuned-table\n"
      "                      JSON entry (bench/tuned/ format); a PATH\n"
      "                      ending in '/' is a directory and the file\n"
      "                      name is derived from the workload spec; with\n"
      "                      this flag the input file is optional\n"
      "                      (tune-only)\n"
      "  --print-vm-stats    execute the selected pipeline on the bytecode\n"
      "                      VM (against --workload=, else the canonical\n"
      "                      nested workload) and report the run's event\n"
      "                      counts plus the trace-engine counters: traces\n"
      "                      formed, entries/iterations retired, side-exit\n"
      "                      rate. Honors DPO_VM_EXEC, so prefixing\n"
      "                      DPO_VM_EXEC=decoded-notrace is the A/B lever\n"
      "                      for the trace layer; input file optional\n"
      "                      (stats-only)\n"
      "  --profile-out=FILE  execute the selected pipeline on the VM (same\n"
      "                      workload selection as --print-vm-stats) and\n"
      "                      write the harvested per-launch-site profile;\n"
      "                      without -t/-c/-a/-passes= the *untransformed*\n"
      "                      program is recorded (the usual record step);\n"
      "                      input file optional (record-only)\n"
      "  --profile-in=FILE   load a recorded profile; pipeline passes with\n"
      "                      the 'profile' parameter (threshold[profile],\n"
      "                      coarsen[profile], speculate[profile]) pick\n"
      "                      per-launch-site knob values from it\n"
      "  --calibrate         fit the analytic GpuModel's launch/dispatch\n"
      "                      constants to VM-measured makespans of the\n"
      "                      selected workload and print the fit; input\n"
      "                      file optional (calibrate-only)\n"
      "\n"
      "pipeline grammar (also: dpoptcc --list-passes):\n"
      "  pipeline := pass (',' pass)*\n"
      "  pass     := name ('[' param (':' param)* ']')?\n"
      "  threshold[N][:fallback][:literal|:macro]\n"
      "      N the launch threshold; 'fallback' compares\n"
      "      gridDim*blockDim when the grid-size analysis fails\n"
      "  coarsen[N][:literal|:macro]\n"
      "      N the block-coarsening factor\n"
      "  aggregate[none|warp|block|multiblock|grid][:N]\n"
      "           [:agg-threshold=N][:literal|:macro]\n"
      "      granularity, multi-block group size N, Section V-B\n"
      "      participation threshold\n"
      "  builtin-rewrite[<builtin>[.x|.y|.z]=<name>][:strict]\n"
      "      rename CUDA builtins across kernel bodies\n"
      "  'literal' inlines knob values; 'macro' (default) emits _THRESHOLD/\n"
      "  _CFACTOR/_AGG_SIZE macros with the configured values as defaults\n"
      "\n"
      "examples:\n"
      "  dpoptcc -passes=threshold[256],coarsen[8],aggregate[multiblock:8] "
      "in.cu\n"
      "  dpoptcc --tune=hybrid --tune-budget=32 in.cu -o tuned.cu\n");
}

/// Validated replacement for the old atoi calls: accepts only a non-empty
/// all-digit value that fits in unsigned and is nonzero. Anything else
/// (including "12abc", "-3", "0", and 2^32 and up) is rejected with a
/// diagnostic naming the flag. Shares parsePositiveU32 with the pipeline
/// grammar so --threshold= and threshold[...] accept identical spellings.
static bool parseCountFlag(const char *Flag, const std::string &Text,
                           unsigned &Out) {
  switch (parsePositiveU32(Text, Out)) {
  case ParseUIntStatus::Ok:
    return true;
  case ParseUIntStatus::Empty:
    std::fprintf(stderr, "error: %s requires a value\n", Flag);
    return false;
  case ParseUIntStatus::NotANumber:
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s (expected a positive "
                 "integer)\n",
                 Text.c_str(), Flag);
    return false;
  case ParseUIntStatus::Zero:
    std::fprintf(stderr, "error: %s must be positive, got 0\n", Flag);
    return false;
  case ParseUIntStatus::Overflow:
    std::fprintf(stderr, "error: value '%s' for %s is out of range\n",
                 Text.c_str(), Flag);
    return false;
  }
  return false;
}

/// Resolves the VM workload the measurement flags run against: a
/// --workload= Table I case bound to its dataset, else the canonical
/// nested workload.
static bool selectVmWorkload(const std::string &WorkloadSpec,
                             const EmpiricalOptions &Opts, VmWorkload &Out) {
  if (!WorkloadSpec.empty()) {
    BenchCase Case;
    std::string SpecError;
    if (!parseWorkloadSpec(WorkloadSpec, Case, SpecError)) {
      std::fprintf(stderr, "error: bad --workload= spec '%s': %s\n",
                   WorkloadSpec.c_str(), SpecError.c_str());
      return false;
    }
    Out = kernelVmWorkload(Case);
  } else {
    Out = canonicalTuneWorkload(Opts.Seed);
  }
  return true;
}

/// --print-vm-stats / --profile-out: compile \p Pipeline over the selected
/// workload, execute the measurement sample on the VM, and report the
/// event counts plus the trace-execution counters (\p PrintStats) and/or
/// record the harvested per-launch-site profile (\p ProfileOutPath). The
/// engine follows DPO_VM_EXEC (decoded / decoded-notrace / bytecode),
/// making the flag the command-line A/B lever for the trace layer.
/// \p ProfileIn backs the `profile` pass parameter in \p Pipeline.
static bool runVmPipeline(const std::string &Pipeline,
                          const std::string &WorkloadSpec,
                          const EmpiricalOptions &Opts,
                          const LaunchProfile *ProfileIn,
                          const std::string &ProfileOutPath, bool PrintStats) {
  VmWorkload Workload;
  if (!selectVmWorkload(WorkloadSpec, Opts, Workload))
    return false;
  std::string Name = Workload.Name;
  GpuModel Gpu;
  EmpiricalEvaluator Eval(Gpu, std::move(Workload), Opts);
  Eval.setProfile(ProfileIn);
  LaunchProfile Harvested;
  std::optional<VmMeasurement> M = Eval.measurePipeline(
      Pipeline, ExecMode::Auto,
      ProfileOutPath.empty() ? nullptr : &Harvested);
  if (!M) {
    std::fprintf(stderr, "error: %s\n", Eval.lastError().c_str());
    return false;
  }
  if (!ProfileOutPath.empty()) {
    std::ofstream Out(ProfileOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   ProfileOutPath.c_str());
      return false;
    }
    Out << serializeProfile(Harvested);
    std::fprintf(stderr, "wrote profile %s (%zu sites)\n",
                 ProfileOutPath.c_str(), Harvested.Sites.size());
  }
  if (!PrintStats)
    return true;
  uint64_t Retired = M->TraceEntries + M->TraceIters;
  std::fprintf(stderr, "vm stats: workload %s, pipeline %s\n", Name.c_str(),
               Pipeline.empty() ? "(untransformed)" : Pipeline.c_str());
  std::fprintf(stderr, "  steps            %llu\n",
               (unsigned long long)M->Steps);
  std::fprintf(stderr, "  grids launched   %llu (device %llu, host %llu)\n",
               (unsigned long long)M->GridsLaunched,
               (unsigned long long)M->DeviceLaunches,
               (unsigned long long)M->HostLaunches);
  std::fprintf(stderr, "  blocks executed  %llu\n",
               (unsigned long long)M->BlocksExecuted);
  std::fprintf(stderr, "  threads executed %llu\n",
               (unsigned long long)M->ThreadsExecuted);
  std::fprintf(stderr, "  traces formed    %llu\n",
               (unsigned long long)M->TracesFormed);
  std::fprintf(stderr, "  trace entries    %llu\n",
               (unsigned long long)M->TraceEntries);
  std::fprintf(stderr, "  trace iterations %llu\n",
               (unsigned long long)M->TraceIters);
  std::fprintf(stderr, "  trace side exits %llu (%.2f%% of %llu retirements)\n",
               (unsigned long long)M->TraceSideExits,
               100.0 * (double)M->TraceSideExits /
                   (double)std::max<uint64_t>(1, Retired),
               (unsigned long long)Retired);
  if (M->SpecGuardPass || M->SpecGuardFail)
    std::fprintf(stderr, "  spec guard       %llu pass, %llu fail\n",
                 (unsigned long long)M->SpecGuardPass,
                 (unsigned long long)M->SpecGuardFail);
  return true;
}

/// --serve=FILE: drain a request-list file through one CompileService —
/// compiles and tunes processed concurrently on the service worker pool,
/// artifacts shared through the content-addressed cache, results reported
/// in request order. Returns the process exit code.
static int runServe(const std::string &ServePath, ServiceConfig SC,
                    bool PrintCacheStats) {
  std::ifstream In(ServePath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", ServePath.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::vector<ServeRequest> Reqs;
  std::string ParseError;
  if (!parseServeRequests(Buf.str(), Reqs, ParseError)) {
    std::fprintf(stderr, "error: bad request file '%s': %s\n",
                 ServePath.c_str(), ParseError.c_str());
    return 1;
  }
  if (Reqs.empty()) {
    std::fprintf(stderr, "error: '%s' holds no requests\n", ServePath.c_str());
    return 1;
  }

  CompileService Service(SC);

  // Stage compile sources up front (sequential file IO, deterministic
  // diagnostics); workers then touch only the in-memory requests.
  std::vector<CompileRequest> CompileReqs(Reqs.size());
  std::vector<std::string> StageErrors(Reqs.size());
  for (size_t I = 0; I < Reqs.size(); ++I) {
    const ServeRequest &R = Reqs[I];
    if (R.Kind != ServeRequest::Compile)
      continue;
    std::ifstream Src(R.SourcePath);
    if (!Src) {
      StageErrors[I] = "cannot open '" + R.SourcePath + "'";
      continue;
    }
    std::stringstream SrcBuf;
    SrcBuf << Src.rdbuf();
    CompileRequest &C = CompileReqs[I];
    C.Name = R.SourcePath;
    C.Source = SrcBuf.str();
    C.Pipeline = R.Pipeline;
    C.WantBytecode = R.WantBytecode;
    // Bytecode-bound requests need literal knob spellings (the VM has no
    // preprocessor); plain source-to-source requests keep the driver's
    // macro-spelling default.
    if (R.WantBytecode)
      C.Knobs = literalKnobConfig();
  }

  std::vector<CompileResponse> CompileResults(Reqs.size());
  std::vector<TuneResponse> TuneResults(Reqs.size());
  std::atomic<size_t> Next{0};
  auto Work = [&]() {
    while (true) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Reqs.size())
        return;
      if (!StageErrors[I].empty())
        continue;
      const ServeRequest &R = Reqs[I];
      if (R.Kind == ServeRequest::Compile) {
        CompileResults[I] = Service.compile(CompileReqs[I]);
      } else {
        TuneRequest T;
        T.WorkloadSpec = R.WorkloadSpec;
        T.Mode = R.Mode;
        T.Opts.Budget = R.Budget;
        T.Opts.Seed = R.Seed;
        T.WarmStart = R.WarmStart;
        TuneResults[I] = Service.tune(T);
      }
    }
  };
  unsigned N = std::min<size_t>(Service.workers(), Reqs.size());
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T + 1 < N; ++T)
    Pool.emplace_back(Work);
  Work(); // the driver thread participates too
  for (std::thread &T : Pool)
    T.join();

  // Report and write outputs in request order: the drain's schedule never
  // shows in what the user sees.
  unsigned Failures = 0;
  for (size_t I = 0; I < Reqs.size(); ++I) {
    const ServeRequest &R = Reqs[I];
    if (!StageErrors[I].empty()) {
      std::fprintf(stderr, "[%zu] error: %s\n", I + 1,
                   StageErrors[I].c_str());
      ++Failures;
      continue;
    }
    if (R.Kind == ServeRequest::Compile) {
      const CompileResponse &Resp = CompileResults[I];
      if (!Resp.Ok) {
        std::fprintf(stderr, "[%zu] compile %s: error: %s\n", I + 1,
                     R.SourcePath.c_str(), Resp.Error.c_str());
        ++Failures;
        continue;
      }
      const char *How = Resp.Outcome == CacheOutcome::MemoryHit
                            ? "hit(memory)"
                            : Resp.Outcome == CacheOutcome::DiskHit
                                  ? "hit(disk)"
                                  : "miss";
      std::fprintf(stderr, "[%zu] compile %s: %s\n", I + 1,
                   R.SourcePath.c_str(), How);
      if (!R.OutputPath.empty()) {
        std::ofstream Out(R.OutputPath);
        Out << Resp.TransformedSource;
        if (!Out.good()) {
          std::fprintf(stderr, "[%zu] error: cannot write '%s'\n", I + 1,
                       R.OutputPath.c_str());
          ++Failures;
        }
      }
    } else {
      const TuneResponse &Resp = TuneResults[I];
      if (!Resp.Ok) {
        std::fprintf(stderr, "[%zu] tune %s: error: %s\n", I + 1,
                     R.WorkloadSpec.c_str(), Resp.Error.c_str());
        ++Failures;
        continue;
      }
      std::fprintf(stderr, "[%zu] tune %s: %s chose %s%s\n", I + 1,
                   R.WorkloadSpec.c_str(), tuneModeName(Resp.Result.Mode),
                   Resp.Result.Pipeline.empty() ? "(no transformation)"
                                                : Resp.Result.Pipeline.c_str(),
                   Resp.CacheHit ? " [cached]" : "");
      if (!R.TuneReportPath.empty()) {
        TunedEntry Entry;
        Entry.Workload = R.WorkloadSpec;
        Entry.Mode = Resp.Result.Mode;
        Entry.Budget = R.Budget;
        Entry.Seed = R.Seed;
        Entry.Pipeline = Resp.Result.Pipeline;
        Entry.TimeUs = Resp.Result.TimeUs;
        Entry.VmEvaluations = Resp.Result.VmEvaluations;
        if (!writeTunedEntryFile(R.TuneReportPath, Entry)) {
          std::fprintf(stderr, "[%zu] error: cannot write '%s'\n", I + 1,
                       R.TuneReportPath.c_str());
          ++Failures;
        }
      }
    }
  }

  if (PrintCacheStats)
    std::fputs(Service.statsReport().c_str(), stdout);
  return Failures ? 1 : 0;
}

static void listPasses() {
  std::printf("pipeline grammar:  pipeline := pass (',' pass)*\n"
              "                   pass     := name ('[' param (':' param)* "
              "']')?\n"
              "e.g. -passes=threshold[256:fallback],coarsen[8],"
              "aggregate[multiblock:8:literal]\n\n"
              "registered passes:\n");
  for (const auto &[Name, Description] : PassRegistry::global().entries())
    std::printf("  %-16s %s\n", Name.c_str(), Description.c_str());
  std::printf("\nknob spellings: 'macro' (default) emits _THRESHOLD/_CFACTOR/"
              "_AGG_SIZE macros\nwith the configured values as defaults; "
              "'literal' inlines the values (required\nfor VM execution).\n");
}

int main(int argc, char **argv) {
  PipelineOptions Options;
  std::string Input, Output, PassText;
  bool AnyPass = false;
  bool PrintPassStats = false;
  bool PrintVmStats = false;
  bool Tune = false;
  bool Calibrate = false;
  TuneMode Mode = TuneMode::Hybrid;
  EmpiricalOptions TuneOpts;
  std::string WorkloadSpec, TuneReport, ProfileInPath, ProfileOutPath;
  std::string ServePath;
  bool PrintCacheStats = false;
  bool HaveServiceFlag = false;
  ServiceConfig ServiceCfg = serviceConfigFromEnv();

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-t") {
      Options.EnableThresholding = AnyPass = true;
    } else if (Arg == "-c") {
      Options.EnableCoarsening = AnyPass = true;
    } else if (Arg == "-a") {
      Options.EnableAggregation = AnyPass = true;
    } else if (Arg.rfind("--granularity=", 0) == 0) {
      std::string G = Arg.substr(14);
      if (G == "warp")
        Options.Aggregation.Granularity = AggGranularity::Warp;
      else if (G == "block")
        Options.Aggregation.Granularity = AggGranularity::Block;
      else if (G == "multiblock")
        Options.Aggregation.Granularity = AggGranularity::MultiBlock;
      else if (G == "grid")
        Options.Aggregation.Granularity = AggGranularity::Grid;
      else {
        std::fprintf(stderr, "error: unknown granularity '%s'\n", G.c_str());
        usage();
        return 1;
      }
    } else if (Arg.rfind("--threshold=", 0) == 0) {
      if (!parseCountFlag("--threshold", Arg.substr(12),
                          Options.Thresholding.Threshold))
        return 1;
    } else if (Arg.rfind("--factor=", 0) == 0) {
      if (!parseCountFlag("--factor", Arg.substr(9),
                          Options.Coarsening.Factor))
        return 1;
    } else if (Arg.rfind("--group=", 0) == 0) {
      if (!parseCountFlag("--group", Arg.substr(8),
                          Options.Aggregation.GroupSize))
        return 1;
    } else if (Arg.rfind("--agg-threshold=", 0) == 0) {
      Options.Aggregation.UseAggregationThreshold = true;
      if (!parseCountFlag("--agg-threshold", Arg.substr(16),
                          Options.Aggregation.AggregationThreshold))
        return 1;
    } else if (Arg.rfind("-passes=", 0) == 0) {
      PassText = Arg.substr(8);
    } else if (Arg.rfind("--passes=", 0) == 0) {
      PassText = Arg.substr(9);
    } else if (Arg.rfind("--tune=", 0) == 0) {
      if (!parseTuneMode(Arg.substr(7), Mode)) {
        std::fprintf(stderr,
                     "error: unknown tuning mode '%s' (expected analytic, "
                     "empirical, or hybrid)\n",
                     Arg.substr(7).c_str());
        return 1;
      }
      Tune = true;
    } else if (Arg.rfind("--tune-budget=", 0) == 0) {
      if (!parseCountFlag("--tune-budget", Arg.substr(14), TuneOpts.Budget))
        return 1;
    } else if (Arg.rfind("--tune-seed=", 0) == 0) {
      if (!parseCountFlag("--tune-seed", Arg.substr(12), TuneOpts.Seed))
        return 1;
    } else if (Arg.rfind("--workload=", 0) == 0) {
      WorkloadSpec = Arg.substr(11);
    } else if (Arg.rfind("--tune-report=", 0) == 0) {
      TuneReport = Arg.substr(14);
    } else if (Arg.rfind("--profile-in=", 0) == 0) {
      ProfileInPath = Arg.substr(13);
    } else if (Arg.rfind("--profile-out=", 0) == 0) {
      ProfileOutPath = Arg.substr(14);
    } else if (Arg.rfind("--serve=", 0) == 0) {
      ServePath = Arg.substr(8);
      HaveServiceFlag = true;
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      ServiceCfg.CacheDir = Arg.substr(12);
      HaveServiceFlag = true;
    } else if (Arg.rfind("--cache-bytes=", 0) == 0) {
      unsigned MiB = 0;
      if (!parseCountFlag("--cache-bytes", Arg.substr(14), MiB))
        return 1;
      ServiceCfg.CacheMaxBytes = (uint64_t)MiB * 1024 * 1024;
      HaveServiceFlag = true;
    } else if (Arg.rfind("--service-workers=", 0) == 0) {
      unsigned W = 0;
      if (!parseCountFlag("--service-workers", Arg.substr(18), W))
        return 1;
      ServiceCfg.Workers = W;
      HaveServiceFlag = true;
    } else if (Arg.rfind("--tuned-dir=", 0) == 0) {
      ServiceCfg.TunedTableDir = Arg.substr(12);
      HaveServiceFlag = true;
    } else if (Arg == "--cache-stats") {
      PrintCacheStats = true;
      HaveServiceFlag = true;
    } else if (Arg == "--calibrate") {
      Calibrate = true;
    } else if (Arg == "--print-pass-stats") {
      PrintPassStats = true;
    } else if (Arg == "--print-vm-stats") {
      PrintVmStats = true;
    } else if (Arg == "--list-passes") {
      listPasses();
      return 0;
    } else if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (Arg == "-h" || Arg == "--help") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Input = Arg;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
  }
  if (!ServePath.empty()) {
    if (AnyPass || !PassText.empty() || Tune || Calibrate || PrintVmStats ||
        !Input.empty()) {
      std::fprintf(stderr,
                   "error: --serve= runs a request file and cannot be "
                   "combined with per-file compile or tune flags\n");
      return 1;
    }
    return runServe(ServePath, ServiceCfg, PrintCacheStats);
  }
  if (HaveServiceFlag) {
    std::fprintf(stderr,
                 "error: --cache-dir=/--cache-bytes=/--service-workers=/"
                 "--tuned-dir=/--cache-stats require --serve=\n");
    return 1;
  }
  if (!PassText.empty() && AnyPass) {
    std::fprintf(stderr, "error: -passes= cannot be combined with -t/-c/-a\n");
    return 1;
  }
  if (Tune && (AnyPass || !PassText.empty())) {
    std::fprintf(stderr,
                 "error: --tune= cannot be combined with -t/-c/-a or "
                 "-passes=\n");
    return 1;
  }
  if (!WorkloadSpec.empty() && !Tune && !PrintVmStats && !Calibrate &&
      ProfileOutPath.empty()) {
    std::fprintf(stderr,
                 "error: --workload= requires --tune=, --print-vm-stats, "
                 "--profile-out=, or --calibrate\n");
    return 1;
  }
  if (!TuneReport.empty() && !Tune) {
    std::fprintf(stderr, "error: --tune-report= requires --tune=\n");
    return 1;
  }
  // Profile recording defaults to the *untransformed* program — the
  // record step of the profile-guided workflow; explicit -t/-c/-a or
  // -passes= still select a pipeline to record under.
  if (PassText.empty() && !AnyPass && !Tune && ProfileOutPath.empty())
    Options.EnableThresholding = Options.EnableCoarsening =
        Options.EnableAggregation = true;
  if (Input.empty() && TuneReport.empty() && !PrintVmStats && !Calibrate &&
      ProfileOutPath.empty()) {
    usage();
    return 1;
  }

  LaunchProfile ProfileData;
  bool HaveProfile = false;
  if (!ProfileInPath.empty()) {
    std::ifstream PIn(ProfileInPath);
    if (!PIn) {
      std::fprintf(stderr, "error: cannot open profile '%s'\n",
                   ProfileInPath.c_str());
      return 1;
    }
    std::stringstream PBuf;
    PBuf << PIn.rdbuf();
    std::string PErr;
    if (!parseProfile(PBuf.str(), ProfileData, PErr)) {
      std::fprintf(stderr, "error: bad profile '%s': %s\n",
                   ProfileInPath.c_str(), PErr.c_str());
      return 1;
    }
    Options.Profile = &ProfileData;
    HaveProfile = true;
  }

  if (Calibrate) {
    // Fit the analytic model's launch/dispatch constants to VM-measured
    // makespans of the selected workload (src/tuner/Calibrate.h).
    GpuModel Gpu;
    VariantMask Full;
    Full.Thresholding = Full.Coarsening = Full.Aggregation = true;
    VmWorkload Workload;
    if (!selectVmWorkload(WorkloadSpec, TuneOpts, Workload))
      return 1;
    CalibrationOptions COpts;
    COpts.Empirical = TuneOpts;
    CalibrationResult CR = calibrateGpuModel(Gpu, Workload, Full, COpts);
    std::fprintf(stderr, "%s", calibrationReport(CR).c_str());
    if (!CR.Ok)
      return 1;
    if (Input.empty() && !PrintVmStats && ProfileOutPath.empty())
      return 0; // calibrate-only mode
  }

  if (Tune) {
    // Tune against the selected workload — a real Table I kernel bound to
    // its dataset (--workload=), or the canonical nested workload over a
    // deterministic skewed batch stream — then realize the winner as the
    // pipeline for the input file. Knob macros keep the tuned values as
    // their defaults, so the emitted .cu stays re-tunable at compile time.
    GpuModel Gpu;
    VariantMask Full;
    Full.Thresholding = Full.Coarsening = Full.Aggregation = true;
    VmWorkload Workload;
    std::string CanonicalSpec;
    if (!WorkloadSpec.empty()) {
      BenchCase Case;
      std::string SpecError;
      if (!parseWorkloadSpec(WorkloadSpec, Case, SpecError)) {
        std::fprintf(stderr, "error: bad --workload= spec '%s': %s\n",
                     WorkloadSpec.c_str(), SpecError.c_str());
        return 1;
      }
      std::fprintf(stderr, "tuning against %s (%s)\n", Case.name().c_str(),
                   WorkloadSpec.c_str());
      Workload = kernelVmWorkload(Case);
    } else {
      Workload = canonicalTuneWorkload(TuneOpts.Seed);
      CanonicalSpec = "canonical";
    }
    EmpiricalTuneResult R = tuneWorkload(Mode, Gpu, Workload, Full, TuneOpts);
    std::fprintf(stderr, "%s tuning chose: %s\n", tuneModeName(R.Mode),
                 R.Pipeline.empty() ? "(no transformation)"
                                    : R.Pipeline.c_str());
    if (R.Mode == TuneMode::Analytic)
      std::fprintf(stderr, "  %.1f us simulated, %u simulator probes\n",
                   R.TimeUs, R.SimProbes);
    else
      std::fprintf(stderr,
                   "  %.1f us from VM-measured cycles; %u/%u VM executions"
                   "%s%u analytic probes\n",
                   R.TimeUs, R.VmEvaluations, TuneOpts.Budget,
                   R.SimProbes ? ", " : " and ", R.SimProbes);
    if (!TuneReport.empty()) {
      // Directory form: let tunedTableFileName pick the canonical name,
      // so the spec-to-filename mapping has a single owner.
      if (TuneReport.back() == '/')
        TuneReport +=
            tunedTableFileName(WorkloadSpec.empty() ? "canonical"
                                                    : WorkloadSpec);
      TunedEntry Entry;
      Entry.Workload = WorkloadSpec.empty() ? CanonicalSpec : WorkloadSpec;
      Entry.Mode = R.Mode;
      Entry.Budget = TuneOpts.Budget;
      Entry.Seed = TuneOpts.Seed;
      Entry.Pipeline = R.Pipeline;
      Entry.TimeUs = R.TimeUs;
      Entry.VmEvaluations = R.VmEvaluations;
      if (!writeTunedEntryFile(TuneReport, Entry)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     TuneReport.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", TuneReport.c_str());
      if (Input.empty())
        return 0; // tune-only mode
    }
    PassText = R.Pipeline;
    if (PassText.empty()) {
      // Nothing to do: the tuner chose the untransformed program.
      if ((PrintVmStats || !ProfileOutPath.empty()) &&
          !runVmPipeline("", WorkloadSpec, TuneOpts,
                         HaveProfile ? &ProfileData : nullptr, ProfileOutPath,
                         PrintVmStats))
        return 1;
      if (Input.empty())
        return 0; // stats-only mode
      std::ifstream TuneIn(Input);
      if (!TuneIn) {
        std::fprintf(stderr, "error: cannot open '%s'\n", Input.c_str());
        return 1;
      }
      std::stringstream Copy;
      Copy << TuneIn.rdbuf();
      if (Output.empty())
        std::cout << Copy.str();
      else {
        std::ofstream Out(Output);
        Out << Copy.str();
        std::fprintf(stderr, "wrote %s\n", Output.c_str());
      }
      return 0;
    }
  }

  if (PrintVmStats || !ProfileOutPath.empty()) {
    // Measure the pipeline about to run. The -t/-c/-a form renders to the
    // same textual spelling the pass manager would report, so the measured
    // pipeline and the emitted source always agree.
    std::string VmPipeline = PassText;
    if (VmPipeline.empty()) {
      PassManager Render;
      buildPassPipeline(Render, Options);
      VmPipeline = Render.pipelineText();
    }
    if (!runVmPipeline(VmPipeline, WorkloadSpec, TuneOpts,
                       HaveProfile ? &ProfileData : nullptr, ProfileOutPath,
                       PrintVmStats))
      return 1;
    if (Input.empty())
      return 0; // stats-only / record-only mode
  }

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Input.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  // Build the pipeline: either the textual spec or the -t/-c/-a flags.
  // Knob flags double as the textual pipeline's defaults, so
  // `-passes=threshold --threshold=256` works as expected.
  PassManager PM;
  std::string Error;
  if (!PassText.empty()) {
    if (!parsePassPipeline(PM, PassText, pipelineConfigFrom(Options), Error)) {
      std::fprintf(stderr, "error: invalid pass pipeline: %s\n",
                   Error.c_str());
      return 1;
    }
  } else {
    buildPassPipeline(PM, Options);
  }

  DiagnosticEngine Diags;
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Buffer.str(), Ctx, Diags);
  bool Ok = TU != nullptr;
  std::string Result;
  if (Ok) {
    AnalysisManager AM(Ctx, TU);
    Ok = PM.run(Ctx, TU, AM, Diags);
    if (PrintPassStats)
      std::fprintf(stderr, "%s", PM.statsReport(AM).c_str());
    if (Ok)
      Result = printTranslationUnit(TU);
  }
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s:%u:%u: %s\n", Input.c_str(), D.Loc.Line,
                 D.Loc.Column, D.Message.c_str());
  if (!Ok || Result.empty())
    return 1;

  if (Output.empty()) {
    std::cout << Result;
  } else {
    std::ofstream Out(Output);
    Out << Result;
    std::fprintf(stderr, "wrote %s\n", Output.c_str());
  }
  return 0;
}
