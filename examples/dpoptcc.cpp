//===--- dpoptcc.cpp - The source-to-source compiler driver ---------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line driver mirroring the paper's artifact workflow: read a
/// .cu file, apply any combination of the three passes, write the
/// transformed .cu (with `_THRESHOLD` / `_CFACTOR` / `_AGG_SIZE` macros
/// ready for compile-time tuning, Section VII).
///
///   dpoptcc [-t] [-c] [-a] [--granularity=warp|block|multiblock|grid]
///           [--threshold=N] [--factor=N] [--group=N] [--agg-threshold=N]
///           input.cu [-o output.cu]
///
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace dpo;

static void usage() {
  std::fprintf(
      stderr,
      "usage: dpoptcc [-t] [-c] [-a] [--granularity=G] [--threshold=N]\n"
      "               [--factor=N] [--group=N] [--agg-threshold=N]\n"
      "               input.cu [-o output.cu]\n"
      "  -t/-c/-a enable thresholding / coarsening / aggregation\n"
      "  (default: all three, multi-block granularity)\n");
}

int main(int argc, char **argv) {
  PipelineOptions Options;
  std::string Input, Output;
  bool AnyPass = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-t") {
      Options.EnableThresholding = AnyPass = true;
    } else if (Arg == "-c") {
      Options.EnableCoarsening = AnyPass = true;
    } else if (Arg == "-a") {
      Options.EnableAggregation = AnyPass = true;
    } else if (Arg.rfind("--granularity=", 0) == 0) {
      std::string G = Arg.substr(14);
      if (G == "warp")
        Options.Aggregation.Granularity = AggGranularity::Warp;
      else if (G == "block")
        Options.Aggregation.Granularity = AggGranularity::Block;
      else if (G == "multiblock")
        Options.Aggregation.Granularity = AggGranularity::MultiBlock;
      else if (G == "grid")
        Options.Aggregation.Granularity = AggGranularity::Grid;
      else {
        usage();
        return 1;
      }
    } else if (Arg.rfind("--threshold=", 0) == 0) {
      Options.Thresholding.Threshold = atoi(Arg.c_str() + 12);
    } else if (Arg.rfind("--factor=", 0) == 0) {
      Options.Coarsening.Factor = atoi(Arg.c_str() + 9);
    } else if (Arg.rfind("--group=", 0) == 0) {
      Options.Aggregation.GroupSize = atoi(Arg.c_str() + 8);
    } else if (Arg.rfind("--agg-threshold=", 0) == 0) {
      Options.Aggregation.UseAggregationThreshold = true;
      Options.Aggregation.AggregationThreshold = atoi(Arg.c_str() + 16);
    } else if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (Arg == "-h" || Arg == "--help") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Input = Arg;
    } else {
      usage();
      return 1;
    }
  }
  if (!AnyPass)
    Options.EnableThresholding = Options.EnableCoarsening =
        Options.EnableAggregation = true;
  if (Input.empty()) {
    usage();
    return 1;
  }

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Input.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  std::string Result = transformSource(Buffer.str(), Options, Diags);
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s:%u:%u: %s\n", Input.c_str(), D.Loc.Line,
                 D.Loc.Column, D.Message.c_str());
  if (Result.empty())
    return 1;

  if (Output.empty()) {
    std::cout << Result;
  } else {
    std::ofstream Out(Output);
    Out << Result;
    std::fprintf(stderr, "wrote %s\n", Output.c_str());
  }
  return 0;
}
