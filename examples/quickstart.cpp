//===--- quickstart.cpp - 60-second tour of the framework ----------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transforms a small CUDA program with all three optimizations
/// (thresholding + coarsening + aggregation, the Fig. 8 pipeline), prints
/// the generated source, then proves on the bytecode VM that the
/// transformed program computes exactly what the original computes.
///
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"
#include "vm/VM.h"

#include <cstdio>

using namespace dpo;

static const char *Source = R"(
__global__ void child(int *data, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    data[base + i] = base + i * 2;
  }
}
__global__ void parent(int *data, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(data, offsets[v], count);
    }
  }
}
)";

int main() {
  // 1. Configure the Fig. 8(a) pipeline.
  PipelineOptions Options;
  Options.EnableThresholding = true;
  Options.EnableCoarsening = true;
  Options.EnableAggregation = true;
  Options.Thresholding.Threshold = 64;
  Options.Coarsening.Factor = 4;
  Options.Aggregation.Granularity = AggGranularity::MultiBlock;
  Options.Aggregation.GroupSize = 8;
  Options.useLiteralKnobs(); // Literals instead of macros so the VM can run it.

  DiagnosticEngine Diags;
  std::string Transformed = transformSource(Source, Options, Diags);
  if (Transformed.empty()) {
    std::fprintf(stderr, "transformation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("=== transformed source (T=64, C=4, A=multi-block/8) ===\n%s\n",
              Transformed.c_str());

  // 2. Execute both versions on the bytecode VM and compare.
  auto RunVersion = [](const std::string &Src,
                       bool Wrapper) -> std::vector<int32_t> {
    DiagnosticEngine D;
    auto Dev = buildDevice(Src, D);
    if (!Dev) {
      std::fprintf(stderr, "VM build failed:\n%s", D.str().c_str());
      return {};
    }
    std::vector<int32_t> Counts = {3, 0, 100, 7, 45, 0, 260, 1};
    std::vector<int32_t> Offsets(8), Data;
    int Total = 0;
    for (int I = 0; I < 8; ++I) {
      Offsets[I] = Total;
      Total += Counts[I];
    }
    uint64_t DataA = Dev->alloc(Total * 4);
    uint64_t CountsA = Dev->allocI32(Counts);
    uint64_t OffsetsA = Dev->allocI32(Offsets);
    bool Ok;
    if (Wrapper) {
      // The aggregation pass generated `parent_agg(grid, block, args...)`.
      Ok = Dev->callHost("parent_agg", {1, 1, 1, 8, 1, 1, (int64_t)DataA,
                                        (int64_t)CountsA, (int64_t)OffsetsA,
                                        8});
    } else {
      Ok = Dev->launchKernel("parent", {1, 1, 1}, {8, 1, 1},
                             {(int64_t)DataA, (int64_t)CountsA,
                              (int64_t)OffsetsA, 8});
    }
    if (!Ok) {
      std::fprintf(stderr, "VM run failed: %s\n", Dev->error().c_str());
      return {};
    }
    std::printf("  dynamic launches performed: %llu\n",
                (unsigned long long)Dev->stats().DeviceLaunches);
    return Dev->readI32Array(DataA, Total);
  };

  std::printf("=== original on the VM ===\n");
  std::vector<int32_t> Ref = RunVersion(Source, /*Wrapper=*/false);
  std::printf("=== transformed on the VM ===\n");
  std::vector<int32_t> Opt = RunVersion(Transformed, /*Wrapper=*/true);

  if (Ref.empty() || Ref != Opt) {
    std::printf("MISMATCH\n");
    return 1;
  }
  std::printf("results identical across %zu output elements — the "
              "transformed program is semantically equivalent.\n",
              Ref.size());
  return 0;
}
