//===--- autotune.cpp - Guided vs. exhaustive tuning (Section VIII-C) ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunes the full pipeline for SSSP on a web-like graph, comparing the
/// paper's guided heuristic (threshold from the 6k-8k launch budget, large
/// coarsening factor, no warp granularity) against the exhaustive sweep.
///
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace dpo;

namespace {

/// An SSSP-style parent/child pair: what the tuned configuration gets
/// applied to once the tuner has picked it.
const char *SsspSource = R"(
__global__ void relax(int *dist, int *adj, int *wgt, int u, int count) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < count) {
    int v = adj[e];
    int nd = dist[u] + wgt[e];
    if (nd < dist[v]) {
      dist[v] = nd;
    }
  }
}
__global__ void sssp_step(int *dist, int *offsets, int *adj, int *wgt,
                          int *frontier, int numF) {
  int f = blockIdx.x * blockDim.x + threadIdx.x;
  if (f < numF) {
    int u = frontier[f];
    int count = offsets[u + 1] - offsets[u];
    if (count > 0) {
      relax<<<(count + 127) / 128, 128>>>(dist, adj + offsets[u],
                                          wgt + offsets[u], u, count);
    }
  }
}
)";

} // namespace

int main() {
  CsrGraph G = makeWebGraph(/*NumVertices=*/60000, /*AvgDegree=*/9.0,
                            /*Seed=*/21);
  std::printf("graph: %u vertices, %llu edges\n", G.NumVertices,
              (unsigned long long)G.numEdges());
  WorkloadOutput Sssp = runSssp(G, 0);
  std::printf("SSSP: %zu kernel invocations, %llu total child units\n\n",
              Sssp.Batches.size(),
              (unsigned long long)Sssp.totalChildUnits());

  GpuModel Gpu;
  VariantMask Full;
  Full.Thresholding = Full.Coarsening = Full.Aggregation = true;

  auto Describe = [](const char *Name, const TuneResult &R) {
    std::printf("%-11s: %8.1f us in %4u probes  (threshold=%s, factor=%u, "
                "granularity=%s",
                Name, R.Result.TimeUs, R.Probes,
                R.Config.Threshold ? std::to_string(*R.Config.Threshold).c_str()
                                   : "-",
                R.Config.CoarsenFactor, aggGranularityName(R.Config.Agg));
    if (R.Config.Agg == AggGranularity::MultiBlock)
      std::printf(", group=%u", R.Config.AggGroupBlocks);
    std::printf(")\n");
  };

  TuneResult Guided = guidedTune(Gpu, Sssp.Batches, Full);
  Describe("guided", Guided);
  TuneResult Exhaustive = exhaustiveTune(Gpu, Sssp.Batches, Full);
  Describe("exhaustive", Exhaustive);

  std::printf("\nguided is within %.1f%% of exhaustive using %.1f%% of the "
              "probes.\n",
              (Guided.Result.TimeUs / Exhaustive.Result.TimeUs - 1.0) * 100.0,
              100.0 * Guided.Probes / Exhaustive.Probes);
  std::printf("launch-budget rule picked threshold %u (aiming for <= 8000 "
              "dynamic launches).\n",
              thresholdForLaunchBudget(Sssp.Batches, 8000));

  // Close the loop: compile the SSSP kernels with the guided configuration
  // through the pass manager and show what the pipeline cost.
  std::string Pipeline = passPipelineTextFor(Guided.Config);
  if (Pipeline.empty()) {
    std::printf("\nguided config needs no source transformation.\n");
    return 0;
  }
  std::printf("\napplying the guided config as a pass pipeline:\n  %s\n",
              Pipeline.c_str());
  DiagnosticEngine Diags;
  std::string Stats;
  std::string Transformed = transformSourceWithPipeline(
      SsspSource, Pipeline, PassPipelineConfig(), Diags, &Stats);
  if (Transformed.empty()) {
    std::fprintf(stderr, "pipeline failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("transformed source: %zu bytes\n%s", Transformed.size(),
              Stats.c_str());
  return 0;
}
