//===--- autotune.cpp - Analytic, empirical, and hybrid tuning -----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunes the full pipeline for SSSP on a web-like graph.
///
///   autotune [--tune=analytic|empirical|hybrid] [--tune-budget=N]
///            [--tune-seed=N]
///
/// With --tune=, runs exactly one tuning mode and applies the winning
/// configuration to the SSSP kernels as a pass pipeline. Empirical and
/// hybrid modes select the config by *executing VM bytecode*: every probed
/// candidate is compiled through the pass manager, lowered to bytecode,
/// and run against the SSSP batch stream; the reported steps / launches /
/// cycles are measured, not simulated. Without --tune=, compares all three
/// modes plus the paper's guided heuristic (Section VIII-C).
///
//===----------------------------------------------------------------------===//

#include "tuner/Empirical.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace dpo;

namespace {

/// An SSSP-style parent/child pair: what the tuned configuration gets
/// applied to once the tuner has picked it.
const char *SsspSource = R"(
__global__ void relax(int *dist, int *adj, int *wgt, int u, int count) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < count) {
    int v = adj[e];
    int nd = dist[u] + wgt[e];
    if (nd < dist[v]) {
      dist[v] = nd;
    }
  }
}
__global__ void sssp_step(int *dist, int *offsets, int *adj, int *wgt,
                          int *frontier, int numF) {
  int f = blockIdx.x * blockDim.x + threadIdx.x;
  if (f < numF) {
    int u = frontier[f];
    int count = offsets[u + 1] - offsets[u];
    if (count > 0) {
      relax<<<(count + 127) / 128, 128>>>(dist, adj + offsets[u],
                                          wgt + offsets[u], u, count);
    }
  }
}
)";

void describeConfig(const ExecConfig &C) {
  std::printf("threshold=%s, factor=%u, granularity=%s",
              C.Threshold ? std::to_string(*C.Threshold).c_str() : "-",
              C.CoarsenFactor, aggGranularityName(C.Agg));
  if (C.Agg == AggGranularity::MultiBlock)
    std::printf(", group=%u", C.AggGroupBlocks);
}

void reportResult(const EmpiricalTuneResult &R, unsigned Budget) {
  std::printf("%-9s: %10.1f us  (", tuneModeName(R.Mode), R.TimeUs);
  describeConfig(R.Config);
  std::printf(")\n");
  if (R.Mode == TuneMode::Analytic) {
    std::printf("           %u simulator probes, no VM executions\n",
                R.SimProbes);
    return;
  }
  std::printf("           measured on the VM: %llu bytecode steps, %llu "
              "device + %llu host launches,\n"
              "           %llu blocks over %u sample batches "
              "(%.0f weighted cycles)\n",
              (unsigned long long)R.Measured.Steps,
              (unsigned long long)R.Measured.DeviceLaunches,
              (unsigned long long)R.Measured.HostLaunches,
              (unsigned long long)R.Measured.BlocksExecuted,
              R.Measured.BatchesRun, R.Measured.Cycles);
  std::printf("           %u/%u VM executions spent", R.VmEvaluations,
              Budget);
  if (R.SimProbes)
    std::printf(", %u analytic filter probes", R.SimProbes);
  std::printf("\n");
}

int applyPipeline(const std::string &Pipeline) {
  if (Pipeline.empty()) {
    std::printf("\nchosen config needs no source transformation.\n");
    return 0;
  }
  std::printf("\napplying the chosen config as a pass pipeline:\n  %s\n",
              Pipeline.c_str());
  DiagnosticEngine Diags;
  std::string Stats;
  std::string Transformed = transformSourceWithPipeline(
      SsspSource, Pipeline, PassPipelineConfig(), Diags, &Stats);
  if (Transformed.empty()) {
    std::fprintf(stderr, "pipeline failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("transformed source: %zu bytes\n%s", Transformed.size(),
              Stats.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool ModeSet = false;
  TuneMode Mode = TuneMode::Empirical;
  EmpiricalOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--tune=", 0) == 0) {
      if (!parseTuneMode(Arg.substr(7), Mode)) {
        std::fprintf(stderr,
                     "error: unknown tuning mode '%s' (expected analytic, "
                     "empirical, or hybrid)\n",
                     Arg.substr(7).c_str());
        return 1;
      }
      ModeSet = true;
    } else if (Arg.rfind("--tune-budget=", 0) == 0) {
      Opts.Budget = (unsigned)std::strtoul(Arg.c_str() + 14, nullptr, 10);
      if (!Opts.Budget) {
        std::fprintf(stderr, "error: --tune-budget must be positive\n");
        return 1;
      }
    } else if (Arg.rfind("--tune-seed=", 0) == 0) {
      Opts.Seed = (unsigned)std::strtoul(Arg.c_str() + 12, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: autotune [--tune=analytic|empirical|hybrid] "
                   "[--tune-budget=N] [--tune-seed=N]\n");
      return Arg == "-h" || Arg == "--help" ? 0 : 1;
    }
  }

  CsrGraph G = makeWebGraph(/*NumVertices=*/60000, /*AvgDegree=*/9.0,
                            /*Seed=*/21);
  std::printf("graph: %u vertices, %llu edges\n", G.NumVertices,
              (unsigned long long)G.numEdges());
  WorkloadOutput Sssp = runSssp(G, 0);
  std::printf("SSSP: %zu kernel invocations, %llu total child units\n\n",
              Sssp.Batches.size(),
              (unsigned long long)Sssp.totalChildUnits());

  GpuModel Gpu;
  VariantMask Full;
  Full.Thresholding = Full.Coarsening = Full.Aggregation = true;
  VmWorkload Workload = makeNestedVmWorkload("sssp", Sssp.Batches);

  if (ModeSet) {
    EmpiricalTuneResult R = tuneWorkload(Mode, Gpu, Workload, Full, Opts);
    reportResult(R, Opts.Budget);
    return applyPipeline(R.Pipeline);
  }

  // No mode requested: compare everything, including the paper's guided
  // heuristic against the exhaustive analytic sweep.
  EmpiricalTuneResult Analytic = analyticTune(Gpu, Sssp.Batches, Full);
  reportResult(Analytic, Opts.Budget);
  EmpiricalTuneResult Empirical =
      tuneWorkload(TuneMode::Empirical, Gpu, Workload, Full, Opts);
  reportResult(Empirical, Opts.Budget);
  EmpiricalTuneResult Hybrid =
      tuneWorkload(TuneMode::Hybrid, Gpu, Workload, Full, Opts);
  reportResult(Hybrid, Opts.Budget);

  TuneResult Guided = guidedTune(Gpu, Sssp.Batches, Full);
  std::printf("guided   : %10.1f us  (", Guided.Result.TimeUs);
  describeConfig(Guided.Config);
  std::printf(")\n           Section VIII-C heuristic, %u simulator probes "
              "(within %.1f%% of the exhaustive sweep)\n",
              Guided.Probes,
              (Guided.Result.TimeUs / Analytic.TimeUs - 1.0) * 100.0);
  std::printf("launch-budget rule picked threshold %u (aiming for <= 8000 "
              "dynamic launches).\n",
              thresholdForLaunchBudget(Sssp.Batches, 8000));

  return applyPipeline(Hybrid.Pipeline);
}
