//===--- autotune.cpp - Guided vs. exhaustive tuning (Section VIII-C) ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunes the full pipeline for SSSP on a web-like graph, comparing the
/// paper's guided heuristic (threshold from the 6k-8k launch budget, large
/// coarsening factor, no warp granularity) against the exhaustive sweep.
///
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace dpo;

int main() {
  CsrGraph G = makeWebGraph(/*NumVertices=*/60000, /*AvgDegree=*/9.0,
                            /*Seed=*/21);
  std::printf("graph: %u vertices, %llu edges\n", G.NumVertices,
              (unsigned long long)G.numEdges());
  WorkloadOutput Sssp = runSssp(G, 0);
  std::printf("SSSP: %zu kernel invocations, %llu total child units\n\n",
              Sssp.Batches.size(),
              (unsigned long long)Sssp.totalChildUnits());

  GpuModel Gpu;
  VariantMask Full;
  Full.Thresholding = Full.Coarsening = Full.Aggregation = true;

  auto Describe = [](const char *Name, const TuneResult &R) {
    std::printf("%-11s: %8.1f us in %4u probes  (threshold=%s, factor=%u, "
                "granularity=%s",
                Name, R.Result.TimeUs, R.Probes,
                R.Config.Threshold ? std::to_string(*R.Config.Threshold).c_str()
                                   : "-",
                R.Config.CoarsenFactor, aggGranularityName(R.Config.Agg));
    if (R.Config.Agg == AggGranularity::MultiBlock)
      std::printf(", group=%u", R.Config.AggGroupBlocks);
    std::printf(")\n");
  };

  TuneResult Guided = guidedTune(Gpu, Sssp.Batches, Full);
  Describe("guided", Guided);
  TuneResult Exhaustive = exhaustiveTune(Gpu, Sssp.Batches, Full);
  Describe("exhaustive", Exhaustive);

  std::printf("\nguided is within %.1f%% of exhaustive using %.1f%% of the "
              "probes.\n",
              (Guided.Result.TimeUs / Exhaustive.Result.TimeUs - 1.0) * 100.0,
              100.0 * Guided.Probes / Exhaustive.Probes);
  std::printf("launch-budget rule picked threshold %u (aiming for <= 8000 "
              "dynamic launches).\n",
              thresholdForLaunchBudget(Sssp.Batches, 8000));
  return 0;
}
