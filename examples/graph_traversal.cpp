//===--- graph_traversal.cpp - BFS under every optimization combo ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating scenario: frontier BFS over a power-law graph,
/// where each frontier vertex launches a child grid over its neighbors.
/// Runs the workload through the timing simulator under every optimization
/// combination and prints the speedup table — a miniature Fig. 9.
///
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace dpo;

int main() {
  // A mid-sized Kronecker graph (power-law: irregular nested parallelism).
  CsrGraph G = makeKronGraph(/*ScaleLog2=*/14, /*EdgeFactor=*/16, /*Seed=*/7);
  std::printf("graph: %u vertices, %llu edges, max degree %u\n",
              G.NumVertices, (unsigned long long)G.numEdges(), G.maxDegree());

  WorkloadOutput Bfs = runBfs(G, 0);
  uint32_t Reached = 0, MaxLevel = 0;
  for (uint32_t L : Bfs.Levels)
    if (L != UnreachedLevel) {
      ++Reached;
      MaxLevel = std::max(MaxLevel, L);
    }
  std::printf("BFS: reached %u vertices in %u levels (%zu kernel "
              "invocations)\n\n",
              Reached, MaxLevel + 1, Bfs.Batches.size());

  GpuModel Gpu;
  struct Row {
    const char *Name;
    ExecConfig Config;
  };
  ExecConfig T;
  T.Threshold = 128;
  ExecConfig C;
  C.CoarsenFactor = 8;
  ExecConfig A;
  A.Agg = AggGranularity::MultiBlock;
  ExecConfig TC = T;
  TC.CoarsenFactor = 8;
  ExecConfig TA = T;
  TA.Agg = AggGranularity::MultiBlock;
  ExecConfig CA = C;
  CA.Agg = AggGranularity::MultiBlock;
  ExecConfig TCA = TC;
  TCA.Agg = AggGranularity::MultiBlock;

  const Row Rows[] = {
      {"No CDP", ExecConfig::noCdp()},
      {"CDP", ExecConfig::cdp()},
      {"CDP+T (128)", T},
      {"CDP+C (x8)", C},
      {"CDP+A (multi-block)", A},
      {"CDP+T+C", TC},
      {"CDP+T+A", TA},
      {"CDP+C+A", CA},
      {"CDP+T+C+A", TCA},
  };

  double CdpTime = simulateBatches(Gpu, Bfs.Batches, ExecConfig::cdp()).TimeUs;
  std::printf("%-22s %12s %12s %10s %10s\n", "variant", "time (us)",
              "speedup", "launches", "blocks");
  for (const Row &R : Rows) {
    SimResult Res = simulateBatches(Gpu, Bfs.Batches, R.Config);
    std::printf("%-22s %12.1f %12.2fx %10llu %10llu\n", R.Name, Res.TimeUs,
                CdpTime / Res.TimeUs,
                (unsigned long long)(Res.DeviceLaunches + Res.HostLaunches),
                (unsigned long long)Res.ChildBlocks);
  }
  return 0;
}
