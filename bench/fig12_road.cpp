//===--- fig12_road.cpp - Reproduces Fig. 12 -----------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-nested-parallelism experiment: the five graph benchmarks on the
/// road graph (avg degree ~3). CDP collapses; the optimizations recover
/// most — but not all — of the No-CDP performance because merely containing
/// a launch instruction costs instructions (Section VIII-D).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

#include <map>

using namespace dpo;
using namespace dpo::bench;

int main() {
  GpuModel Gpu;
  std::vector<Variant> Variants = figureVariants();

  std::printf("=== Figure 12: road graph (USA-road-d.NY-like), speedup "
              "over CDP ===\n");
  std::printf("%-12s", "case");
  for (const Variant &V : Variants)
    std::printf(" %12s", V.Name);
  std::printf("\n");

  std::map<std::string, std::vector<double>> SpeedupsByVariant;
  std::vector<double> NoCdpOverFull;

  for (const BenchCase &Case : figure12Cases()) {
    const WorkloadOutput &Work = runCase(Case);
    double CdpTime = 0;
    std::map<std::string, double> Times;
    for (const Variant &V : Variants) {
      VariantTime T = runVariant(Gpu, Work.Batches, V);
      Times[V.Name] = T.TimeUs;
      if (std::string(V.Name) == "CDP")
        CdpTime = T.TimeUs;
    }
    std::printf("%-12s", Case.name().c_str());
    for (const Variant &V : Variants) {
      double Speedup = CdpTime / Times[V.Name];
      SpeedupsByVariant[V.Name].push_back(Speedup);
      std::printf(" %12.2f", Speedup);
    }
    std::printf("\n");
    NoCdpOverFull.push_back(Times["CDP+T+C+A"] / Times["No CDP"]);
  }

  std::printf("%-12s", "GEOMEAN");
  for (const Variant &V : Variants)
    std::printf(" %12.2f", geomean(SpeedupsByVariant[V.Name]));
  std::printf("\n\n");

  std::printf("paper's observation: optimized CDP recovers much but NOT "
              "all of No CDP (launch-presence penalty).\n");
  std::printf("  CDP+T+C+A time / No CDP time (geomean, >1 means No CDP "
              "still wins): %.2fx\n",
              geomean(NoCdpOverFull));
  return 0;
}
