//===--- fig9_performance.cpp - Reproduces Fig. 9 (and the VIII-C claim) ------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints, for each of the 14 benchmark/dataset pairs, the speedup over
/// plain CDP of all nine Fig. 9 variants, plus the geomean row the paper
/// quotes (CDP+T+C+A: 43x over CDP, 8.7x over No CDP, 3.6x over KLAP).
/// Pass --fixed-threshold=128 to reproduce the Section VIII-C fixed-
/// threshold experiment.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

#include <cstring>
#include <map>

using namespace dpo;
using namespace dpo::bench;

int main(int argc, char **argv) {
  std::optional<uint32_t> FixedThreshold;
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--fixed-threshold=", 18) == 0)
      FixedThreshold = (uint32_t)atoi(argv[I] + 18);

  GpuModel Gpu;
  std::vector<Variant> Variants = figureVariants();

  std::printf("=== Figure 9: speedup over CDP (higher is better) ===\n");
  if (FixedThreshold)
    std::printf("(threshold fixed at %u for all thresholding variants)\n",
                *FixedThreshold);
  std::printf("%-12s", "case");
  for (const Variant &V : Variants)
    std::printf(" %12s", V.Name);
  std::printf("\n");

  std::map<std::string, std::vector<double>> SpeedupsByVariant;
  std::vector<double> FullOverKlap, FullOverNoCdp, FullOverCdpCA;

  for (const BenchCase &Case : figure9Cases()) {
    const WorkloadOutput &Work = runCase(Case);
    double CdpTime = 0;
    std::map<std::string, VariantTime> Times;
    for (const Variant &V : Variants) {
      VariantTime T = runVariant(Gpu, Work.Batches, V);
      if (FixedThreshold && T.Config.Threshold)
        T.Config.Threshold = *FixedThreshold;
      if (FixedThreshold && T.Config.Threshold) {
        T.Result = simulateBatches(Gpu, Work.Batches, T.Config);
        T.TimeUs = T.Result.TimeUs;
      }
      Times[V.Name] = T;
      if (std::string(V.Name) == "CDP")
        CdpTime = T.TimeUs;
    }

    std::printf("%-12s", Case.name().c_str());
    for (const Variant &V : Variants) {
      double Speedup = CdpTime / Times[V.Name].TimeUs;
      SpeedupsByVariant[V.Name].push_back(Speedup);
      std::printf(" %12.2f", Speedup);
    }
    std::printf("\n");

    FullOverKlap.push_back(Times["KLAP (CDP+A)"].TimeUs /
                           Times["CDP+T+C+A"].TimeUs);
    FullOverNoCdp.push_back(Times["No CDP"].TimeUs /
                            Times["CDP+T+C+A"].TimeUs);
    FullOverCdpCA.push_back(Times["CDP+C+A"].TimeUs /
                            Times["CDP+T+C+A"].TimeUs);
  }

  std::printf("%-12s", "GEOMEAN");
  for (const Variant &V : Variants)
    std::printf(" %12.2f", geomean(SpeedupsByVariant[V.Name]));
  std::printf("\n\n");

  std::printf("paper-quoted geomeans (reference -> measured):\n");
  std::printf("  CDP+T+C+A over CDP:    paper 43.0x -> %.1fx\n",
              geomean(SpeedupsByVariant["CDP+T+C+A"]));
  std::printf("  CDP+T+C+A over No CDP: paper  8.7x -> %.1fx\n",
              geomean(FullOverNoCdp));
  std::printf("  CDP+T+C+A over KLAP:   paper  3.6x -> %.1fx\n",
              geomean(FullOverKlap));
  std::printf("  CDP+A over CDP:        paper 12.1x -> %.1fx\n",
              geomean(SpeedupsByVariant["KLAP (CDP+A)"]));
  std::printf("  CDP+T over CDP:        paper 13.4x -> %.1fx\n",
              geomean(SpeedupsByVariant["CDP+T"]));
  std::printf("  CDP+T+C+A over CDP+C+A: paper 3.1x -> %.1fx\n",
              geomean(FullOverCdpCA));
  return 0;
}
