//===--- service_throughput.cpp - Compile-service micro-benchmarks -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark harness for the compilation-as-a-service layer: cold
/// compiles of the Table I kernel corpus, warm memory-cache hits, the
/// duplicate-request mix the service exists to accelerate (the acceptance
/// bar is >=10x warm over cold there), disk-cache warm starts across
/// service instances, and the BM_ServeBatch/N worker-scaling series for
/// the concurrent batch drain. Entries report requests/sec via
/// items_per_second; BM_ServeBatch entries above one worker are exempt
/// from the regression gate (host-core dependent), mirroring
/// BM_GridDrain.
///
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"
#include "transform/Pipeline.h"
#include "workloads/Catalog.h"
#include "workloads/KernelSources.h"

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace dpo;

namespace {

constexpr const char *BenchPipeline =
    "threshold[128:literal],coarsen[4:literal],aggregate[warp:4:literal]";

/// The Table I kernel corpus as compile requests: one per benchmark
/// source, transformed through the combined three-pass pipeline with
/// bytecode wanted — the shape a tuner-driven client submits.
std::vector<CompileRequest> corpusRequests() {
  std::vector<CompileRequest> Reqs;
  for (BenchmarkId Bench :
       {BenchmarkId::BFS, BenchmarkId::SSSP, BenchmarkId::MSTF,
        BenchmarkId::MSTV, BenchmarkId::TC, BenchmarkId::SP,
        BenchmarkId::BT}) {
    CompileRequest R;
    R.Name = benchmarkName(Bench);
    R.Source = kernelSourceFor(Bench);
    R.Pipeline = BenchPipeline;
    R.Knobs = literalKnobConfig();
    R.WantBytecode = true;
    Reqs.push_back(std::move(R));
  }
  return Reqs;
}

/// The duplicate-request mix: every corpus source requested Repeat
/// times, interleaved so no two equal keys are adjacent — the batch
/// shape where the cache and single-flight dedup pay off.
std::vector<CompileRequest> duplicateMix(unsigned Repeat) {
  std::vector<CompileRequest> Corpus = corpusRequests();
  std::vector<CompileRequest> Mix;
  for (unsigned I = 0; I < Repeat; ++I)
    for (const CompileRequest &R : Corpus)
      Mix.push_back(R);
  return Mix;
}

ServiceConfig memoryOnlyConfig(unsigned Workers = 1) {
  ServiceConfig SC;
  SC.Workers = Workers;
  return SC;
}

/// Cold compile of the full corpus: a fresh service per iteration, so
/// every request runs the parser, pass pipeline, and bytecode compiler.
void BM_CorpusColdCompile(benchmark::State &State) {
  std::vector<CompileRequest> Reqs = corpusRequests();
  for (auto _ : State) {
    CompileService Service(memoryOnlyConfig());
    for (const CompileRequest &R : Reqs)
      benchmark::DoNotOptimize(Service.compile(R));
  }
  State.SetItemsProcessed((int64_t)State.iterations() * Reqs.size());
}
BENCHMARK(BM_CorpusColdCompile)->Unit(benchmark::kMillisecond);

/// Warm memory-cache hits: the corpus is resident after one cold pass,
/// and every iteration re-requests it — pure key hash + map lookup.
void BM_CorpusWarmCompile(benchmark::State &State) {
  std::vector<CompileRequest> Reqs = corpusRequests();
  CompileService Service(memoryOnlyConfig());
  for (const CompileRequest &R : Reqs)
    Service.compile(R);
  for (auto _ : State)
    for (const CompileRequest &R : Reqs)
      benchmark::DoNotOptimize(Service.compile(R));
  ServiceStats S = Service.stats();
  State.counters["hit_rate"] =
      S.MemoryHits ? (double)S.MemoryHits /
                         (double)(S.MemoryHits + S.DiskHits + S.Misses)
                   : 0.0;
  State.SetItemsProcessed((int64_t)State.iterations() * Reqs.size());
}
BENCHMARK(BM_CorpusWarmCompile)->Unit(benchmark::kMicrosecond);

/// The duplicate-request mix, cold: every iteration starts an empty
/// cache, so each unique source compiles once and its duplicates hit the
/// warming cache. This is the denominator of the >=10x acceptance ratio.
void BM_DuplicateMixCold(benchmark::State &State) {
  std::vector<CompileRequest> Mix = duplicateMix(4);
  for (auto _ : State) {
    CompileService Service(memoryOnlyConfig());
    benchmark::DoNotOptimize(Service.compileBatch(Mix));
  }
  State.SetItemsProcessed((int64_t)State.iterations() * Mix.size());
}
BENCHMARK(BM_DuplicateMixCold)->Unit(benchmark::kMillisecond);

/// The duplicate-request mix against a warmed cache — the steady-state
/// service workload. The >=10x acceptance bar compares this against
/// BM_DuplicateMixCold.
void BM_DuplicateMixWarm(benchmark::State &State) {
  std::vector<CompileRequest> Mix = duplicateMix(4);
  CompileService Service(memoryOnlyConfig());
  Service.compileBatch(Mix);
  for (auto _ : State)
    benchmark::DoNotOptimize(Service.compileBatch(Mix));
  State.SetItemsProcessed((int64_t)State.iterations() * Mix.size());
}
BENCHMARK(BM_DuplicateMixWarm)->Unit(benchmark::kMicrosecond);

/// Disk-cache warm start: artifacts staged on disk once, then each
/// iteration boots a fresh service instance (empty memory cache) that
/// deserializes the corpus from the artifact files — the cross-process
/// warm path a restarted daemon takes.
void BM_DiskWarmStart(benchmark::State &State) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "dpo_bench_service_disk";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  ServiceConfig SC;
  SC.CacheDir = Dir.string();
  SC.Workers = 1;
  std::vector<CompileRequest> Reqs = corpusRequests();
  {
    CompileService Seeder(SC);
    for (const CompileRequest &R : Reqs)
      Seeder.compile(R);
  }
  for (auto _ : State) {
    CompileService Service(SC);
    for (const CompileRequest &R : Reqs)
      benchmark::DoNotOptimize(Service.compile(R));
  }
  State.SetItemsProcessed((int64_t)State.iterations() * Reqs.size());
  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}
BENCHMARK(BM_DiskWarmStart)->Unit(benchmark::kMillisecond);

/// Concurrent batch drain at N workers over the cold duplicate mix: the
/// worker-scaling series. N = 1 is the deterministic single-lane drain
/// and stays inside the regression gate; higher worker counts are
/// informational (host-core dependent), like BM_GridDrain.
void BM_ServeBatch(benchmark::State &State) {
  unsigned Workers = (unsigned)State.range(0);
  std::vector<CompileRequest> Mix = duplicateMix(4);
  for (auto _ : State) {
    CompileService Service(memoryOnlyConfig(Workers));
    benchmark::DoNotOptimize(Service.compileBatch(Mix));
  }
  State.SetItemsProcessed((int64_t)State.iterations() * Mix.size());
}
// Real time, not CPU time: the drain's work happens on service worker
// threads, so the driver thread's CPU clock under-reports at N > 1.
BENCHMARK(BM_ServeBatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(
    benchmark::kMillisecond);

} // namespace
