//===--- compiler_throughput.cpp - Pass pipeline micro-benchmarks --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the source-to-source pipeline
/// itself: parse, print, each pass, the combined flow, and VM compilation.
/// Generated inputs scale the number of parent/child kernel pairs.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "sema/Analysis.h"
#include "transform/Pipeline.h"
#include "tuner/Tuner.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace dpo;

namespace {

std::string makeSource(unsigned Pairs) {
  std::ostringstream OS;
  for (unsigned I = 0; I < Pairs; ++I) {
    OS << "__global__ void child" << I << "(int *data, int n) {\n"
       << "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
       << "  if (i < n) {\n"
       << "    data[i] = data[i] * " << (I + 2) << " + i;\n"
       << "  }\n"
       << "}\n"
       << "__global__ void parent" << I
       << "(int *data, int *counts, int numV) {\n"
       << "  int v = blockIdx.x * blockDim.x + threadIdx.x;\n"
       << "  if (v < numV) {\n"
       << "    int count = counts[v];\n"
       << "    if (count > 0) {\n"
       << "      child" << I << "<<<(count + 63) / 64, 64>>>(data, count);\n"
       << "    }\n"
       << "  }\n"
       << "}\n";
  }
  return OS.str();
}

void BM_Parse(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  for (auto _ : State) {
    ASTContext Ctx;
    DiagnosticEngine Diags;
    benchmark::DoNotOptimize(parseSource(Source, Ctx, Diags));
  }
  State.SetBytesProcessed((int64_t)State.iterations() * Source.size());
}
BENCHMARK(BM_Parse)->Arg(1)->Arg(8)->Arg(64);

void BM_Print(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  for (auto _ : State)
    benchmark::DoNotOptimize(printTranslationUnit(TU));
}
BENCHMARK(BM_Print)->Arg(1)->Arg(8)->Arg(64);

void runPipelineBench(benchmark::State &State, bool T, bool C, bool A) {
  std::string Source = makeSource(State.range(0));
  PipelineOptions Options;
  Options.EnableThresholding = T;
  Options.EnableCoarsening = C;
  Options.EnableAggregation = A;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    std::string Out = transformSource(Source, Options, Diags);
    benchmark::DoNotOptimize(Out);
  }
}

void BM_Thresholding(benchmark::State &State) {
  runPipelineBench(State, true, false, false);
}
BENCHMARK(BM_Thresholding)->Arg(1)->Arg(8)->Arg(64);

void BM_Coarsening(benchmark::State &State) {
  runPipelineBench(State, false, true, false);
}
BENCHMARK(BM_Coarsening)->Arg(1)->Arg(8)->Arg(64);

void BM_Aggregation(benchmark::State &State) {
  runPipelineBench(State, false, false, true);
}
BENCHMARK(BM_Aggregation)->Arg(1)->Arg(8)->Arg(64);

void BM_FullPipeline(benchmark::State &State) {
  runPipelineBench(State, true, true, true);
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(8)->Arg(64);

// Since the pass-manager refactor the full pipeline shares one
// AnalysisManager: the launch-site walk runs once, not once per pass.
// BM_LaunchSiteAnalysis prices that walk; BM_AnalysisManagerHit prices the
// cached query answering the second and third pass.
void BM_LaunchSiteAnalysis(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  for (auto _ : State)
    benchmark::DoNotOptimize(findLaunchSites(TU));
}
BENCHMARK(BM_LaunchSiteAnalysis)->Arg(1)->Arg(8)->Arg(64);

void BM_AnalysisManagerHit(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  ASTContext Ctx;
  DiagnosticEngine Diags;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  AnalysisManager AM(Ctx, TU);
  AM.launchSites(); // Prime the cache; the loop measures hits.
  for (auto _ : State)
    benchmark::DoNotOptimize(&AM.launchSites());
}
BENCHMARK(BM_AnalysisManagerHit)->Arg(1)->Arg(8)->Arg(64);

// The textual pipeline front end (parse spec, registry lookup, run).
void BM_PipelineFromText(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    std::string Out = transformSourceWithPipeline(
        Source, "threshold,coarsen,aggregate[multiblock:8]",
        PassPipelineConfig(), Diags);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_PipelineFromText)->Arg(1)->Arg(8)->Arg(64);

// A tuner-produced configuration compiled through the manager: the path
// autotuning workflows take after picking a config.
void BM_TunedConfigTransform(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  ExecConfig Config;
  Config.Threshold = 1024;
  Config.CoarsenFactor = 8;
  Config.Agg = AggGranularity::MultiBlock;
  Config.AggGroupBlocks = 8;
  PipelineOptions Options = pipelineOptionsFor(Config);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    std::string Out = transformSource(Source, Options, Diags);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_TunedConfigTransform)->Arg(1)->Arg(8)->Arg(64);

void BM_VmCompile(benchmark::State &State) {
  std::string Source = makeSource(State.range(0));
  PipelineOptions Options;
  Options.EnableThresholding = Options.EnableCoarsening =
      Options.EnableAggregation = true;
  Options.useLiteralKnobs();
  DiagnosticEngine Diags;
  std::string Transformed = transformSource(Source, Options, Diags);
  for (auto _ : State) {
    DiagnosticEngine D2;
    ASTContext Ctx;
    TranslationUnit *TU = parseSource(Transformed, Ctx, D2);
    benchmark::DoNotOptimize(compileProgram(TU, D2));
  }
}
BENCHMARK(BM_VmCompile)->Arg(1)->Arg(8);

} // namespace

BENCHMARK_MAIN();
