//===--- fig10_breakdown.cpp - Reproduces Fig. 10 ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-time breakdown (parent work / child work / launch /
/// aggregation / disaggregation) for KLAP (CDP+A), CDP+T+A, and
/// CDP+T+C+A, normalized to KLAP's total, per benchmark/dataset pair.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace dpo;
using namespace dpo::bench;

int main() {
  GpuModel Gpu;

  VariantMask Klap;
  Klap.Aggregation = true;
  Klap.Granularities = {AggGranularity::Warp, AggGranularity::Block,
                        AggGranularity::Grid};
  VariantMask TA;
  TA.Thresholding = true;
  TA.Aggregation = true;
  VariantMask TCA = TA;
  TCA.Coarsening = true;

  struct Row {
    const char *Name;
    VariantMask Mask;
  };
  const Row Rows[] = {
      {"KLAP (CDP+A)", Klap}, {"CDP+T+A", TA}, {"CDP+T+C+A", TCA}};

  std::printf("=== Figure 10: execution-time breakdown, normalized to "
              "KLAP (CDP+A) total (lower is better) ===\n");
  std::printf("%-12s %-13s %8s %8s %8s %8s %8s %8s\n", "case", "variant",
              "parent", "child", "launch", "agg", "disagg", "total");

  for (const BenchCase &Case : figure9Cases()) {
    const WorkloadOutput &Work = runCase(Case);
    double Norm = 0;
    for (const Row &R : Rows) {
      TuneResult Tuned = guidedTune(Gpu, Work.Batches, R.Mask);
      const PhaseBreakdown &B = Tuned.Result.Breakdown;
      if (Norm == 0)
        Norm = Tuned.Result.TimeUs; // KLAP total
      std::printf("%-12s %-13s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                  Case.name().c_str(), R.Name, B.ParentWork / Norm,
                  B.ChildWork / Norm, B.Launch / Norm, B.Aggregation / Norm,
                  B.Disaggregation / Norm, Tuned.Result.TimeUs / Norm);
    }
  }

  std::printf("\nExpected shape (paper): thresholding moves time from "
              "child to parent and shrinks launch/agg/disagg; coarsening "
              "further shrinks launch and disaggregation.\n");
  return 0;
}
