//===--- tuner_convergence.cpp - Budget vs. quality of the empirical tuner -----===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convergence study for the VM-in-the-loop autotuner: for a range of VM
/// execution budgets, how close do the empirical and hybrid searches get
/// to the best configuration, and what do they spend to get there?
///
/// Quality is scored on a common yardstick — the analytic simulator's
/// makespan of each chosen config over the *full* batch stream — so the
/// empirical modes are judged on generalization from their measurement
/// sample, not on their own objective. The exhaustive analytic sweep's
/// winner defines 1.0x.
///
/// Workloads: SSSP on a web-like graph (the autotune example's setting)
/// and the skewed synthetic stream (dpoptcc --tune's built-in workload).
/// Everything is seeded; the table is deterministic.
///
//===----------------------------------------------------------------------===//

#include "tuner/Empirical.h"
#include "workloads/VmWorkload.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>

using namespace dpo;

namespace {

double wallMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void runStudy(const char *Name, const VmWorkload &Workload) {
  GpuModel Gpu;
  VariantMask Full;
  Full.Thresholding = Full.Coarsening = Full.Aggregation = true;

  auto T0 = std::chrono::steady_clock::now();
  EmpiricalTuneResult Exhaustive =
      analyticTune(Gpu, Workload.Batches, Full);
  double ExhaustiveMs = wallMs(T0);
  std::printf("%s: exhaustive analytic best %.1f us (%u probes, %.0f ms)\n",
              Name, Exhaustive.TimeUs, Exhaustive.SimProbes, ExhaustiveMs);
  std::printf("  %-9s %6s  %9s %8s %8s %9s %8s  %s\n", "mode", "budget",
              "sim-us", "vs-best", "vm-runs", "compiles", "ms",
              "chosen pipeline");

  for (TuneMode Mode : {TuneMode::Empirical, TuneMode::Hybrid}) {
    for (unsigned Budget : {8u, 16u, 32u, 64u}) {
      EmpiricalOptions Opts;
      Opts.Budget = Budget;
      EmpiricalEvaluator Eval(Gpu, Workload, Opts);
      auto Start = std::chrono::steady_clock::now();
      EmpiricalTuneResult R = Mode == TuneMode::Empirical
                                  ? empiricalTune(Eval, Full)
                                  : hybridTune(Eval, Full);
      double Ms = wallMs(Start);
      // Common yardstick: simulate the chosen config on the full stream.
      double SimUs = simulateBatches(Gpu, Workload.Batches, R.Config).TimeUs;
      std::printf("  %-9s %6u  %9.1f %7.2fx %8u %8u %8.0f  %s\n",
                  tuneModeName(Mode), Budget, SimUs,
                  SimUs / Exhaustive.TimeUs, Eval.evaluations(),
                  Eval.programCompiles(), Ms,
                  R.Pipeline.empty() ? "(none)" : R.Pipeline.c_str());
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  CsrGraph G = makeWebGraph(/*NumVertices=*/60000, /*AvgDegree=*/9.0,
                            /*Seed=*/21);
  WorkloadOutput Sssp = runSssp(G, 0);
  runStudy("sssp/web", makeNestedVmWorkload("sssp", Sssp.Batches));
  runStudy("skewed", makeNestedVmWorkload("skewed",
                                          makeSkewedBatches(4, 20000, 1)));
  return 0;
}
