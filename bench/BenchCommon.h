//===--- BenchCommon.h - Shared harness for the figure benches ----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nine execution variants of Fig. 9 / Fig. 12 and helpers to tune and
/// time them. Tuning uses the guided heuristic of Section VIII-C (the
/// paper's exhaustive search is available through bench/fig11_sweep and
/// bench/ablation_tuning; Section VIII-C itself argues the guided search
/// reaches within a few percent).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_BENCH_BENCHCOMMON_H
#define DPO_BENCH_BENCHCOMMON_H

#include "tuner/Tuner.h"
#include "workloads/Catalog.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace dpo {
namespace bench {

struct Variant {
  const char *Name;
  bool NoCdp = false;
  VariantMask Mask; ///< Ignored for NoCdp/CDP.
  bool Plain = false;
};

inline std::vector<Variant> figureVariants() {
  auto MaskOf = [](bool T, bool C, bool A, bool KlapOnly = false) {
    VariantMask Mask;
    Mask.Thresholding = T;
    Mask.Coarsening = C;
    Mask.Aggregation = A;
    if (KlapOnly)
      Mask.Granularities = {AggGranularity::Warp, AggGranularity::Block,
                            AggGranularity::Grid};
    return Mask;
  };
  std::vector<Variant> Variants;
  Variants.push_back({"No CDP", /*NoCdp=*/true, {}, false});
  Variants.push_back({"CDP", false, {}, /*Plain=*/true});
  Variants.push_back({"KLAP (CDP+A)", false,
                      MaskOf(false, false, true, /*KlapOnly=*/true), false});
  Variants.push_back({"CDP+T", false, MaskOf(true, false, false), false});
  Variants.push_back({"CDP+C", false, MaskOf(false, true, false), false});
  Variants.push_back({"CDP+T+C", false, MaskOf(true, true, false), false});
  Variants.push_back({"CDP+T+A", false, MaskOf(true, false, true), false});
  Variants.push_back({"CDP+C+A", false, MaskOf(false, true, true), false});
  Variants.push_back({"CDP+T+C+A", false, MaskOf(true, true, true), false});
  return Variants;
}

struct VariantTime {
  std::string Variant;
  double TimeUs = 0;
  ExecConfig Config;
  SimResult Result;
};

inline VariantTime runVariant(const GpuModel &Gpu,
                              const std::vector<NestedBatch> &Batches,
                              const Variant &V) {
  VariantTime Out;
  Out.Variant = V.Name;
  if (V.NoCdp) {
    Out.Config = ExecConfig::noCdp();
    Out.Result = simulateBatches(Gpu, Batches, Out.Config);
  } else if (V.Plain) {
    Out.Config = ExecConfig::cdp();
    Out.Result = simulateBatches(Gpu, Batches, Out.Config);
  } else {
    TuneResult Tuned = guidedTune(Gpu, Batches, V.Mask);
    Out.Config = Tuned.Config;
    Out.Result = Tuned.Result;
  }
  Out.TimeUs = Out.Result.TimeUs;
  return Out;
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / Values.size());
}

inline std::string configSummary(const ExecConfig &C) {
  std::string S;
  if (C.NoCdp)
    return "serial";
  S += C.Threshold ? ("T=" + std::to_string(*C.Threshold)) : "T=-";
  S += " C=" + std::to_string(C.CoarsenFactor);
  S += " A=";
  S += aggGranularityName(C.Agg);
  if (C.Agg == AggGranularity::MultiBlock)
    S += "(" + std::to_string(C.AggGroupBlocks) + ")";
  return S;
}

} // namespace bench
} // namespace dpo

#endif // DPO_BENCH_BENCHCOMMON_H
