//===--- table1_datasets.cpp - Reproduces Table I -------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Catalog.h"

#include <cstdio>

using namespace dpo;

int main() {
  std::printf("=== Table I: datasets (synthetic stand-ins at cited scales) "
              "===\n");
  std::printf("%-11s %12s %12s %10s %10s\n", "dataset", "vertices*",
              "edges*", "avg-deg", "max-deg");
  const DatasetId All[] = {DatasetId::KRON,      DatasetId::CNR,
                           DatasetId::ROAD_NY,   DatasetId::RAND3,
                           DatasetId::SAT5,      DatasetId::T0032_C16,
                           DatasetId::T2048_C64};
  for (DatasetId Id : All) {
    DatasetStats S = datasetStats(Id);
    std::printf("%-11s %12llu %12llu %10.2f %10llu\n", S.Name.c_str(),
                (unsigned long long)S.Vertices, (unsigned long long)S.Edges,
                S.AvgDegree, (unsigned long long)S.MaxDegree);
  }
  std::printf("\n* vertices column = variables (SAT) / lines (Bezier); "
              "edges column = literal occurrences (SAT) / tessellation "
              "points (Bezier).\n");
  std::printf("paper reference: KRON 65,536 v / 2,456,071 e; CNR 325,557 v "
              "/ 2,738,969 e; ROAD-NY 264,346 v / 730,100 e, avg deg 3, "
              "max deg 8; RAND-3 10,000 literals; 5-SAT 117,296 "
              "literals.\n");
  return 0;
}
