//===--- ablations.cpp - Design-choice ablations beyond the paper's figures ----===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three ablations DESIGN.md calls out:
///  1. multi-block group size (the paper fixes the trade-off qualitatively;
///     we sweep it),
///  2. the Section V-B aggregation threshold on/off at block granularity,
///  3. coarsening-factor sensitivity with vs. without aggregation
///     (Section VIII-C: flat above ~8; synergy with aggregation),
/// plus the Section VIII-C fixed-threshold-128 summary.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace dpo;
using namespace dpo::bench;

int main() {
  GpuModel Gpu;

  // 1. Multi-block group-size sweep (BFS and SSSP on KRON).
  std::printf("=== Ablation: multi-block aggregation group size (speedup "
              "over CDP) ===\n");
  std::printf("%-12s", "case");
  const uint32_t Groups[] = {1, 2, 4, 8, 16, 32, 64};
  for (uint32_t G : Groups)
    std::printf(" %8u", G);
  std::printf("\n");
  for (BenchCase Case : {BenchCase{BenchmarkId::BFS, DatasetId::KRON},
                         BenchCase{BenchmarkId::SSSP, DatasetId::KRON}}) {
    const WorkloadOutput &Work = runCase(Case);
    double Cdp = simulateBatches(Gpu, Work.Batches, ExecConfig::cdp()).TimeUs;
    std::printf("%-12s", Case.name().c_str());
    for (uint32_t G : Groups) {
      ExecConfig C;
      C.Threshold = 128;
      C.CoarsenFactor = 8;
      C.Agg = AggGranularity::MultiBlock;
      C.AggGroupBlocks = G;
      std::printf(" %8.2f",
                  Cdp / simulateBatches(Gpu, Work.Batches, C).TimeUs);
    }
    std::printf("\n");
  }

  // 2. Aggregation threshold (Section V-B) at block granularity on the
  // low-nested-parallelism SP/RAND-3 case (many groups have few
  // participants there).
  std::printf("\n=== Ablation: Section V-B aggregation threshold (block "
              "granularity, SP/RAND-3) ===\n");
  {
    BenchCase Case{BenchmarkId::SP, DatasetId::RAND3};
    const WorkloadOutput &Work = runCase(Case);
    double Cdp = simulateBatches(Gpu, Work.Batches, ExecConfig::cdp()).TimeUs;
    std::printf("%-18s %10s\n", "agg-threshold", "speedup");
    for (uint32_t AT : {0u, 2u, 4u, 8u, 16u, 32u}) {
      ExecConfig C;
      C.Agg = AggGranularity::Block;
      C.AggThresholdEnabled = AT > 0;
      C.AggThreshold = AT;
      double T = simulateBatches(Gpu, Work.Batches, C).TimeUs;
      std::printf("%-18s %10.2f\n",
                  AT ? std::to_string(AT).c_str() : "off", Cdp / T);
    }
  }

  // 3. Coarsening-factor sensitivity with/without aggregation (BFS/KRON).
  std::printf("\n=== Ablation: coarsening factor with vs. without "
              "aggregation (BFS/KRON, speedup over CDP) ===\n");
  {
    BenchCase Case{BenchmarkId::BFS, DatasetId::KRON};
    const WorkloadOutput &Work = runCase(Case);
    double Cdp = simulateBatches(Gpu, Work.Batches, ExecConfig::cdp()).TimeUs;
    std::printf("%-10s %12s %12s\n", "factor", "no-agg", "multi-block");
    for (uint32_t F : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      ExecConfig NoAgg;
      NoAgg.Threshold = 128;
      NoAgg.CoarsenFactor = F;
      ExecConfig WithAgg = NoAgg;
      WithAgg.Agg = AggGranularity::MultiBlock;
      std::printf("%-10u %12.2f %12.2f\n", F,
                  Cdp / simulateBatches(Gpu, Work.Batches, NoAgg).TimeUs,
                  Cdp / simulateBatches(Gpu, Work.Batches, WithAgg).TimeUs);
    }
  }

  // 4. Fixed threshold 128 vs. tuned (Section VIII-C).
  std::printf("\n=== Ablation: fixed threshold 128 vs tuned (Section "
              "VIII-C) ===\n");
  {
    std::vector<double> TunedOverCA, FixedOverCA;
    for (const BenchCase &Case : figure9Cases()) {
      const WorkloadOutput &Work = runCase(Case);
      VariantMask CA;
      CA.Coarsening = CA.Aggregation = true;
      double BaseCA = guidedTune(Gpu, Work.Batches, CA).Result.TimeUs;

      VariantMask TCA = CA;
      TCA.Thresholding = true;
      double Tuned = guidedTune(Gpu, Work.Batches, TCA).Result.TimeUs;

      ExecConfig Fixed = guidedTune(Gpu, Work.Batches, TCA).Config;
      Fixed.Threshold = 128;
      double FixedT = simulateBatches(Gpu, Work.Batches, Fixed).TimeUs;

      TunedOverCA.push_back(BaseCA / Tuned);
      FixedOverCA.push_back(BaseCA / FixedT);
    }
    std::printf("CDP+T+C+A over CDP+C+A: tuned threshold %.2fx (paper "
                "3.1x), fixed 128 %.2fx (paper 1.9x)\n",
                geomean(TunedOverCA), geomean(FixedOverCA));
  }
  return 0;
}
