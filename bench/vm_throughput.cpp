//===--- vm_throughput.cpp - Interpreter throughput benchmarks -----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark harness for the bytecode VM's execution engine — the
/// path every equivalence/fuzz check funnels through, so its throughput
/// gates how many verification scenarios the project can afford.
///
/// Workloads:
///  - quickstart: the nested parent/child launch program from
///    examples/quickstart.cpp (the repository's canonical CDP shape);
///  - coarsened: the same program after the thread-coarsening pass
///    (factor 4), exercising the loop/indexing superinstructions;
///  - bfs: a CDP top-down BFS over a synthetic power-law-ish graph,
///    exercising dynamic launches, atomics, and frontier bookkeeping;
///  - compute: a flat arithmetic-loop kernel measuring raw dispatch;
///  - grid_drain: a parent fanning out hundreds of compute-heavy child
///    grids, drained at 1/2/4/8 device workers (BM_GridDrain/N) — the
///    multi-worker device's scaling series. The series is tracked for
///    trajectory only (scripts/bench_compare.py keeps multi-worker
///    numbers outside the regression gate; wall time depends on host
///    core count).
///
/// Every workload runs with the peephole optimizer on and off on the
/// decoded-IR engine (the default); quickstart and compute additionally
/// run on the bytecode-interpreter fallback (exec_bytecode series) and
/// on the decoded engine with trace formation disabled
/// (exec_decoded_notrace) so the decode layer's and the trace layer's
/// dispatch-rate wins are each measured directly, and a decode-time
/// series (BM_DeviceBuild) prices the load-time lowering itself.
/// Reported counters:
///  - steps_per_sec: bytecode steps retired per second (identical step
///    accounting across engines, so the series are comparable);
///  - us_per_launch: wall time per top-level kernel run;
///  - trace_hit_rate: share of trace executions retiring without a guard
///    side exit (0 on the non-traced series);
///  - decode_instrs_per_sec (decode series): decoded instrs per second.
/// `scripts/bench_baseline.sh` snapshots the numbers to BENCH_vm.json so
/// future PRs can track the trajectory.
///
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "transform/Pipeline.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

using namespace dpo;

namespace {

const char *QuickstartSource = R"(
__global__ void child(int *data, int base, int count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < count) {
    data[base + i] = base + i * 2;
  }
}
__global__ void parent(int *data, int *counts, int *offsets, int numV) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    int count = counts[v];
    if (count > 0) {
      child<<<(count + 31) / 32, 32>>>(data, offsets[v], count);
    }
  }
}
)";

const char *ComputeSource = R"(
__global__ void work(int *out, int n, int rounds) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int acc = 0;
    for (int r = 0; r < rounds; ++r) {
      acc = acc * 3 + (i ^ r) - (acc >> 4);
    }
    out[i] = acc;
  }
}
)";

const char *BfsSource = R"(
__global__ void expand(int *adj, int *offsets, int *dist, int *nextFrontier,
                       int *nextCount, int v, int level) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int begin = offsets[v];
  int deg = offsets[v + 1] - begin;
  if (i < deg) {
    int u = adj[begin + i];
    if (dist[u] == -1) {
      int old = atomicCAS(&dist[u], -1, level);
      if (old == -1) {
        int idx = atomicAdd(nextCount, 1);
        nextFrontier[idx] = u;
      }
    }
  }
}
__global__ void bfsStep(int *adj, int *offsets, int *dist, int *frontier,
                        int *count, int *nextFrontier, int *nextCount,
                        int level) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  if (t < count[0]) {
    int v = frontier[t];
    int deg = offsets[v + 1] - offsets[v];
    if (deg > 0) {
      expand<<<(deg + 31) / 32, 32>>>(adj, offsets, dist, nextFrontier,
                                      nextCount, v, level);
    }
  }
}
)";

VmCompileOptions optionsFor(bool Optimize,
                            ExecMode Mode = ExecMode::Decoded) {
  VmCompileOptions Opts;
  Opts.OptimizeBytecode = Optimize;
  Opts.Exec = Mode;
  return Opts;
}

std::unique_ptr<Device> mustBuild(const std::string &Source, bool Optimize,
                                  ExecMode Mode = ExecMode::Decoded) {
  DiagnosticEngine Diags;
  auto Dev = buildDevice(Source, Diags, optionsFor(Optimize, Mode));
  if (!Dev) {
    fprintf(stderr, "VM build failed:\n%s\n", Diags.str().c_str());
    abort();
  }
  return Dev;
}

void reportVmCounters(benchmark::State &State, Device &Dev) {
  const VmStats &S = Dev.stats();
  State.counters["steps_per_sec"] =
      benchmark::Counter((double)S.Steps, benchmark::Counter::kIsRate);
  State.counters["us_per_launch"] = benchmark::Counter(
      (double)State.iterations() / 1e6,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  // Share of trace executions (entries + closed-loop iterations) that
  // retired without a guard side exit. 0 when the engine formed or
  // entered no traces (bytecode / decoded-notrace series).
  uint64_t Retired = S.TraceEntries + S.TraceIters;
  State.counters["trace_hit_rate"] =
      Retired ? 1.0 - (double)S.TraceSideExits / (double)Retired : 0.0;
}

/// Nested parent/child launch workload (quickstart shape). When
/// \p Transformed is non-empty it is a coarsened variant of the same
/// program and is launched through the same entry point.
void runNestedBench(benchmark::State &State, const std::string &Source,
                    bool Optimize, ExecMode Mode = ExecMode::Decoded) {
  auto Dev = mustBuild(Source, Optimize, Mode);
  int NumV = 400;
  std::vector<int32_t> Counts(NumV), Offsets(NumV);
  int Total = 0;
  for (int I = 0; I < NumV; ++I) {
    Counts[I] = (I * 37) % 200;
    Offsets[I] = Total;
    Total += Counts[I];
  }
  uint64_t Data = Dev->alloc((uint64_t)Total * 4);
  uint64_t CountsA = Dev->allocI32(Counts);
  uint64_t OffsetsA = Dev->allocI32(Offsets);
  std::vector<int64_t> Args = {(int64_t)Data, (int64_t)CountsA,
                               (int64_t)OffsetsA, NumV};
  Dim3V Grid = {(uint32_t)((NumV + 63) / 64), 1, 1};
  Dim3V Block = {64, 1, 1};
  if (!Dev->launchKernel("parent", Grid, Block, Args)) { // Warm-up.
    fprintf(stderr, "launch failed: %s\n", Dev->error().c_str());
    abort();
  }
  Dev->resetStats();
  for (auto _ : State) {
    if (!Dev->launchKernel("parent", Grid, Block, Args)) {
      State.SkipWithError(Dev->error().c_str());
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() * Total);
  reportVmCounters(State, *Dev);
}

void BM_Quickstart(benchmark::State &State, bool Optimize) {
  runNestedBench(State, QuickstartSource, Optimize);
}

/// The same workload on the bytecode-interpreter fallback: the delta to
/// BM_Quickstart/peephole_on is the decoded layer's dispatch-rate win
/// (step counts are identical across engines by construction).
void BM_QuickstartExec(benchmark::State &State, ExecMode Mode) {
  runNestedBench(State, QuickstartSource, /*Optimize=*/true, Mode);
}

/// Load-time decode cost: parse/compile once, then construct a Device
/// per iteration. The bytecode-mode series prices validation alone; the
/// decoded series adds the bytecode -> ExecIR lowering.
void BM_DeviceBuild(benchmark::State &State, ExecMode Mode) {
  DiagnosticEngine Diags;
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(QuickstartSource, Ctx, Diags);
  if (!TU) {
    State.SkipWithError("parse failed");
    return;
  }
  VmProgram Program = compileProgram(TU, Diags, {});
  if (Diags.hasErrors()) {
    State.SkipWithError("compile failed");
    return;
  }
  uint64_t DecodedInstrs = 0;
  for (auto _ : State) {
    Device Dev(Program, 1ull << 20, Mode);
    DecodedInstrs += Dev.decodeStats().InstrsOut;
    benchmark::DoNotOptimize(Dev.execMode());
  }
  if (Mode == ExecMode::Decoded)
    State.counters["decode_instrs_per_sec"] = benchmark::Counter(
        (double)DecodedInstrs, benchmark::Counter::kIsRate);
}

void BM_Coarsened(benchmark::State &State, bool Optimize) {
  // Thread-coarsen the child (factor 4): each child thread serializes
  // four work items — the Fig. 9 "CDP+C" variant of the same program.
  PipelineOptions Options;
  Options.EnableCoarsening = true;
  Options.Coarsening.Factor = 4;
  Options.useLiteralKnobs();
  DiagnosticEngine Diags;
  std::string Transformed = transformSource(QuickstartSource, Options, Diags);
  if (Transformed.empty()) {
    fprintf(stderr, "coarsening failed:\n%s\n", Diags.str().c_str());
    abort();
  }
  runNestedBench(State, Transformed, Optimize);
}

void BM_Compute(benchmark::State &State, bool Optimize,
                ExecMode Mode = ExecMode::Decoded) {
  auto Dev = mustBuild(ComputeSource, Optimize, Mode);
  int N = 2048, Rounds = 100;
  uint64_t Out = Dev->alloc((uint64_t)N * 4);
  std::vector<int64_t> Args = {(int64_t)Out, N, Rounds};
  Dim3V Grid = {(uint32_t)((N + 127) / 128), 1, 1};
  Dim3V Block = {128, 1, 1};
  if (!Dev->launchKernel("work", Grid, Block, Args)) {
    fprintf(stderr, "launch failed: %s\n", Dev->error().c_str());
    abort();
  }
  Dev->resetStats();
  for (auto _ : State) {
    if (!Dev->launchKernel("work", Grid, Block, Args)) {
      State.SkipWithError(Dev->error().c_str());
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() * (int64_t)N * Rounds);
  reportVmCounters(State, *Dev);
}

const char *DrainSource = R"(
__global__ void child(int *out, int v, int rounds) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int acc = v;
  for (int r = 0; r < rounds; ++r) {
    acc = acc * 3 + (i ^ r) - (acc >> 4);
  }
  out[v * 64 + i] = acc;
}
__global__ void parent(int *out, int numV, int rounds) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < numV) {
    child<<<2, 32>>>(out, v, rounds);
  }
}
)";

/// The many-independent-grids workload: one parent wave enqueues NumV
/// compute-heavy children, which the device drains as a single
/// concurrent wave across State.range(0) workers. Child payloads are
/// disjoint slices of `out`, so the result is identical at every worker
/// count; wall time is the scheduler's scaling measurement.
void BM_GridDrain(benchmark::State &State) {
  auto Dev = mustBuild(DrainSource, /*Optimize=*/true);
  Dev->setWorkers((unsigned)State.range(0));
  int NumV = 256, Rounds = 400;
  uint64_t Out = Dev->alloc((uint64_t)NumV * 64 * 4);
  std::vector<int64_t> Args = {(int64_t)Out, NumV, Rounds};
  Dim3V Grid = {(uint32_t)((NumV + 63) / 64), 1, 1};
  Dim3V Block = {64, 1, 1};
  if (!Dev->launchKernel("parent", Grid, Block, Args)) { // Warm-up.
    fprintf(stderr, "launch failed: %s\n", Dev->error().c_str());
    abort();
  }
  Dev->resetStats();
  for (auto _ : State) {
    if (!Dev->launchKernel("parent", Grid, Block, Args)) {
      State.SkipWithError(Dev->error().c_str());
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() * (int64_t)NumV);
  State.counters["grids_per_sec"] = benchmark::Counter(
      (double)Dev->stats().GridsLaunched, benchmark::Counter::kIsRate);
  reportVmCounters(State, *Dev);
}

const char *BarrierBlockSource = R"(
__global__ void reduce(int *in, int *out, int n, int rounds) {
  __shared__ int tile[128];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int acc = 0;
  for (int r = 0; r < rounds; r = r + 1) {
    tile[threadIdx.x] = i < n ? in[i] + r : 0;
    __syncthreads();
    for (int s = blockDim.x / 2; s > 0; s = s / 2) {
      if (threadIdx.x < s)
        tile[threadIdx.x] = tile[threadIdx.x] + tile[threadIdx.x + s];
      __syncthreads();
    }
    acc = acc + tile[0];
    __syncthreads();
  }
  if (i < n)
    out[i] = acc;
}
)";

/// Cooperative block-mode throughput: repeated shared-memory tree
/// reductions, every round crossing several __syncthreads barriers. The
/// series prices barrier parking/resume and the cooperative scheduler's
/// round-robin switching — the block-mode hot path PR'd alongside the
/// engines it runs on, so regressions in the park/release machinery show
/// up here rather than in the barrier-free series.
void BM_BarrierBlock(benchmark::State &State, bool Optimize,
                     ExecMode Mode = ExecMode::Decoded) {
  auto Dev = mustBuild(BarrierBlockSource, Optimize, Mode);
  int N = 1024, Rounds = 16;
  std::vector<int32_t> In(N);
  for (int I = 0; I < N; ++I)
    In[I] = (I * 13) % 101;
  uint64_t InA = Dev->allocI32(In);
  uint64_t OutA = Dev->alloc((uint64_t)N * 4);
  std::vector<int64_t> Args = {(int64_t)InA, (int64_t)OutA, N, Rounds};
  Dim3V Grid = {(uint32_t)((N + 127) / 128), 1, 1};
  Dim3V Block = {128, 1, 1};
  if (!Dev->launchKernel("reduce", Grid, Block, Args)) { // Warm-up.
    fprintf(stderr, "launch failed: %s\n", Dev->error().c_str());
    abort();
  }
  Dev->resetStats();
  for (auto _ : State) {
    if (!Dev->launchKernel("reduce", Grid, Block, Args)) {
      State.SkipWithError(Dev->error().c_str());
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() * (int64_t)N * Rounds);
  reportVmCounters(State, *Dev);
}

void BM_Bfs(benchmark::State &State, bool Optimize) {
  auto Dev = mustBuild(BfsSource, Optimize);

  // Synthetic graph: 300 vertices, skewed degrees (a few hubs).
  std::mt19937 Rng(1234);
  int N = 300;
  std::vector<std::vector<int32_t>> Adj(N);
  for (int V = 0; V < N; ++V) {
    int Deg = (V % 17 == 0) ? 40 + (int)(Rng() % 60) : (int)(Rng() % 8);
    for (int E = 0; E < Deg; ++E)
      Adj[V].push_back((int32_t)(Rng() % N));
  }
  std::vector<int32_t> Offsets(N + 1), Flat;
  for (int V = 0; V < N; ++V) {
    Offsets[V] = (int32_t)Flat.size();
    Flat.insert(Flat.end(), Adj[V].begin(), Adj[V].end());
  }
  Offsets[N] = (int32_t)Flat.size();

  uint64_t AdjA = Dev->allocI32(Flat);
  uint64_t OffsetsA = Dev->allocI32(Offsets);
  uint64_t DistA = Dev->alloc((uint64_t)N * 4);
  uint64_t FrontierA = Dev->alloc((uint64_t)N * 4);
  uint64_t NextFrontierA = Dev->alloc((uint64_t)N * 4);
  uint64_t CountA = Dev->alloc(4);
  uint64_t NextCountA = Dev->alloc(4);

  auto RunBfs = [&]() -> bool {
    for (int V = 0; V < N; ++V)
      Dev->writeI32(DistA + (uint64_t)V * 4, -1);
    Dev->writeI32(DistA, 0);
    Dev->writeI32(FrontierA, 0);
    Dev->writeI32(CountA, 1);
    uint64_t Cur = FrontierA, Next = NextFrontierA;
    for (int Level = 1; Level < 64; ++Level) {
      Dev->writeI32(NextCountA, 0);
      int Count = Dev->readI32(CountA);
      if (Count == 0)
        break;
      Dim3V Grid = {(uint32_t)((Count + 31) / 32), 1, 1};
      if (!Dev->launchKernel("bfsStep", Grid, {32, 1, 1},
                             {(int64_t)AdjA, (int64_t)OffsetsA, (int64_t)DistA,
                              (int64_t)Cur, (int64_t)CountA, (int64_t)Next,
                              (int64_t)NextCountA, Level}))
        return false;
      Dev->writeI32(CountA, Dev->readI32(NextCountA));
      std::swap(Cur, Next);
    }
    return true;
  };

  if (!RunBfs()) {
    fprintf(stderr, "bfs failed: %s\n", Dev->error().c_str());
    abort();
  }
  Dev->resetStats();
  for (auto _ : State) {
    if (!RunBfs()) {
      State.SkipWithError(Dev->error().c_str());
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() * (int64_t)Flat.size());
  reportVmCounters(State, *Dev);
}

BENCHMARK_CAPTURE(BM_Quickstart, peephole_on, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Quickstart, peephole_off, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Coarsened, peephole_on, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Coarsened, peephole_off, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Bfs, peephole_on, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Bfs, peephole_off, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Compute, peephole_on, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Compute, peephole_off, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BarrierBlock, peephole_on, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BarrierBlock, peephole_off, false)
    ->Unit(benchmark::kMillisecond);

// Worker-scaling series: the same drain workload at 1/2/4/8 device
// workers. BM_GridDrain/1 is the deterministic single-lane baseline.
// Real-time measurement: work happens on device worker threads while the
// main thread waits, so main-thread CPU time (the default rate base)
// would overstate multi-worker throughput; wall time is the honest
// scaling metric. MeasureProcessCPUTime keeps the CPU column meaningful
// (total burn across workers).
BENCHMARK(BM_GridDrain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

// Engine comparison (same bytecode, decoded loop with and without traces
// vs the bytecode fallback) and the decode-time series.
BENCHMARK_CAPTURE(BM_QuickstartExec, exec_bytecode, ExecMode::Bytecode)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_QuickstartExec, exec_decoded_notrace,
                  ExecMode::DecodedNoTrace)
    ->Unit(benchmark::kMillisecond);
static void BM_ComputeExecBytecode(benchmark::State &State) {
  BM_Compute(State, /*Optimize=*/true, ExecMode::Bytecode);
}
BENCHMARK(BM_ComputeExecBytecode)->Unit(benchmark::kMillisecond);
static void BM_ComputeExecNoTrace(benchmark::State &State) {
  BM_Compute(State, /*Optimize=*/true, ExecMode::DecodedNoTrace);
}
BENCHMARK(BM_ComputeExecNoTrace)->Unit(benchmark::kMillisecond);
static void BM_BarrierBlockExecBytecode(benchmark::State &State) {
  BM_BarrierBlock(State, /*Optimize=*/true, ExecMode::Bytecode);
}
BENCHMARK(BM_BarrierBlockExecBytecode)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DeviceBuild, decoded, ExecMode::Decoded)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DeviceBuild, decoded_notrace, ExecMode::DecodedNoTrace)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DeviceBuild, bytecode, ExecMode::Bytecode)
    ->Unit(benchmark::kMicrosecond);

} // namespace
