//===--- fig11_sweep.cpp - Reproduces Fig. 11 ----------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each of the seven Fig. 11 benchmark plots: speedup over CDP as a
/// function of the launch threshold (columns) for each aggregation
/// granularity (rows: none/warp/block/multi-block/grid), at the best
/// coarsening factor found for that benchmark. This is the paper's
/// exhaustive design-space view.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace dpo;
using namespace dpo::bench;

int main() {
  GpuModel Gpu;

  for (const BenchCase &Case : figure11Cases()) {
    const WorkloadOutput &Work = runCase(Case);
    double CdpTime = simulateBatches(Gpu, Work.Batches, ExecConfig::cdp()).TimeUs;

    // Best coarsening factor (with full tuning), as the figure captions do.
    VariantMask Full;
    Full.Thresholding = Full.Coarsening = Full.Aggregation = true;
    TuneResult Best = exhaustiveTune(Gpu, Work.Batches, Full);
    uint32_t Factor = Best.Config.CoarsenFactor;

    std::printf("=== Figure 11: %s (coarsening factor = %u) ===\n",
                Case.name().c_str(), Factor);
    std::vector<std::optional<uint32_t>> Thresholds = {std::nullopt};
    for (uint32_t T : defaultThresholdSweep())
      Thresholds.push_back(T);

    std::printf("%-12s", "granularity");
    for (auto T : Thresholds)
      std::printf(" %7s", T ? std::to_string(*T).c_str() : "none");
    std::printf("\n");

    const AggGranularity Grans[] = {AggGranularity::Grid,
                                    AggGranularity::MultiBlock,
                                    AggGranularity::Block, AggGranularity::Warp,
                                    AggGranularity::None};
    for (AggGranularity G : Grans) {
      std::printf("%-12s", aggGranularityName(G));
      for (auto T : Thresholds) {
        ExecConfig C;
        C.Threshold = T;
        C.CoarsenFactor = Factor;
        C.Agg = G;
        C.AggGroupBlocks = 8;
        double Time = simulateBatches(Gpu, Work.Batches, C).TimeUs;
        std::printf(" %7.2f", CdpTime / Time);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
