//===--- CompileService.h - Persistent compile+tune session layer ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compilation-as-a-service: the reusable session layer behind
/// `dpoptcc --serve` and the service-throughput bench. One CompileService
/// owns the pass registry view, an in-memory artifact map, and a
/// content-addressed on-disk ArtifactCache, and serves compile and tune
/// requests from them:
///
///  - compile(): source + textual pipeline + knob config -> transformed
///    source and (when requested) a compiled VmProgram, keyed by a stable
///    content hash of (source, canonical pipeline text, knob signature,
///    bytecode format version, peephole flag). Repeat requests cost one
///    cache probe; on-disk artifacts survive the process and warm the
///    next one. Corrupt/truncated/stale-version artifacts degrade to a
///    clean recompile with a diagnostic, never an abort.
///  - compileBatch(): many requests drained concurrently on a worker
///    pool; responses come back in request order and per-request stat
///    shards are merged in request order, so totals are deterministic at
///    every worker count.
///  - tune(): autotune requests with result caching and optional
///    warm-starting from committed bench/tuned/ tables and previously
///    cached tune results (EmpiricalOptions::WarmStart; strictly opt-in,
///    so recorded searches stay reproducible).
///
/// Concurrency: every entry point is thread-safe. Concurrent requests for
/// the same key are single-flighted — one compiles, the rest wait and
/// share the artifact.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SERVICE_COMPILESERVICE_H
#define DPO_SERVICE_COMPILESERVICE_H

#include "service/ArtifactCache.h"
#include "transform/PassManager.h"
#include "tuner/Empirical.h"
#include "vm/Bytecode.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace dpo {

/// Version of the *artifact container* (the blob wrapping transformed
/// source + optional program image). Independent of BytecodeFormatVersion,
/// which versions the embedded program image; both fold into cache keys.
constexpr uint32_t ArtifactFormatVersion = 1;

struct ServiceConfig {
  /// Artifact-cache directory; empty disables the disk layer (the
  /// in-memory map still works). serviceConfigFromEnv() reads
  /// DPO_CACHE_DIR.
  std::string CacheDir;
  /// Disk-cache size bound (LRU eviction). DPO_CACHE_MAX_BYTES.
  uint64_t CacheMaxBytes = 256ull << 20;
  /// Workers for compileBatch(). 0 = auto: DPO_SERVICE_WORKERS env, else
  /// hardware concurrency capped at 8.
  unsigned Workers = 0;
  /// Directory of committed tuned tables used to warm-start tune
  /// requests (bench/tuned/ in the repo). Empty disables table seeding.
  std::string TunedTableDir;
};

/// ServiceConfig with CacheDir/CacheMaxBytes/Workers taken from the
/// DPO_CACHE_DIR / DPO_CACHE_MAX_BYTES / DPO_SERVICE_WORKERS environment.
ServiceConfig serviceConfigFromEnv();

struct CompileRequest {
  /// Label for reports and batch output (e.g. the input path).
  std::string Name;
  std::string Source;
  /// Textual pass pipeline ("" = emit the source untransformed).
  std::string Pipeline;
  /// Knob defaults backing the pipeline text (spellings, profile, ...).
  PassPipelineConfig Knobs;
  /// Also lower to VM bytecode and embed the image in the artifact.
  /// Requires knobs the VM can execute (literal spellings — the VM has
  /// no preprocessor for knob macros).
  bool WantBytecode = false;
  /// Peephole-optimize the bytecode (part of the cache key).
  bool OptimizeBytecode = true;
};

enum class CacheOutcome : uint8_t {
  Miss,      ///< Fully compiled in this call.
  MemoryHit, ///< Served from this service's in-memory map.
  DiskHit,   ///< Loaded (and validated) from the on-disk cache.
};

struct CompileResponse {
  bool Ok = false;
  std::string Error;
  std::string Key; ///< Content-address of the artifact.
  CacheOutcome Outcome = CacheOutcome::Miss;
  std::string TransformedSource;
  /// Compiled program when the request asked for bytecode. Shared:
  /// concurrent requests for one key get the same immutable image.
  std::shared_ptr<const VmProgram> Program;
};

struct TuneRequest {
  /// Workload spec: "canonical" (or empty) for the canonical nested
  /// workload, else a Table I spec like "bfs:road_ny" (parseWorkloadSpec).
  std::string WorkloadSpec;
  TuneMode Mode = TuneMode::Hybrid;
  EmpiricalOptions Opts;
  /// Seed the search from committed tuned tables (ServiceConfig::
  /// TunedTableDir) via EmpiricalOptions::WarmStart. Opt-in.
  bool WarmStart = false;
};

struct TuneResponse {
  bool Ok = false;
  std::string Error;
  std::string Key;
  bool CacheHit = false; ///< Served from the tune-result cache.
  EmpiricalTuneResult Result;
};

/// Aggregate counters across the service's lifetime. Batch drains merge
/// per-request shards in request order, so these are deterministic for a
/// given request sequence at any worker count (eviction aside: evictions
/// depend on store order once the disk bound is hit).
struct ServiceStats {
  uint64_t Requests = 0;
  uint64_t MemoryHits = 0;
  uint64_t DiskHits = 0;
  uint64_t Misses = 0;        ///< Requests that ran the full compile.
  uint64_t CorruptArtifacts = 0; ///< Disk blobs rejected by validation.
  uint64_t TuneRequests = 0;
  uint64_t TuneCacheHits = 0;
  uint64_t TuneWarmStarts = 0; ///< Searches seeded from a tuned table.
  /// Disk-layer counters (ArtifactCache).
  uint64_t DiskStores = 0;
  uint64_t Evictions = 0;
  uint64_t ResidentBytes = 0;
};

class CompileService {
public:
  explicit CompileService(ServiceConfig Config = {});
  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  const ServiceConfig &config() const { return Config; }

  /// The content-address of \p Req: a 128-bit hex hash over the
  /// preprocessed source, the *canonical* pipeline text (parse +
  /// re-render, so equivalent spellings alias), the knob signature, the
  /// bytecode format + artifact container versions, and the peephole
  /// flag. Returns "" (with \p Error) when the pipeline fails to parse.
  static std::string cacheKeyFor(const CompileRequest &Req,
                                 std::string &Error);

  CompileResponse compile(const CompileRequest &Req);

  /// Drains \p Reqs on min(config workers, #requests) threads. Responses
  /// are positionally aligned with \p Reqs; stat shards merge in request
  /// order.
  std::vector<CompileResponse> compileBatch(
      const std::vector<CompileRequest> &Reqs);

  TuneResponse tune(const TuneRequest &Req);

  /// Effective batch worker count (resolves the 0 = auto rule).
  unsigned workers() const;

  ServiceStats stats() const;
  /// The --cache-stats text: one aligned line per counter.
  std::string statsReport() const;

private:
  struct MemEntry {
    std::string TransformedSource;
    std::shared_ptr<const VmProgram> Program;
  };

  /// The compile-and-encode slow path (no locks held).
  bool compileUncached(const CompileRequest &Req, MemEntry &Out,
                       std::string &Error) const;
  /// Artifact container encode/decode (wraps BytecodeIO for the image).
  static std::string encodeArtifact(const MemEntry &E);
  static bool decodeArtifact(std::string_view Blob, MemEntry &Out,
                             std::string &Error);

  ServiceConfig Config;
  ArtifactCache Disk;

  mutable std::mutex Lock;
  std::condition_variable KeyDone;
  std::map<std::string, MemEntry> Memory;
  std::set<std::string> InFlight;
  std::map<std::string, TuneResponse> TuneMemory;
  ServiceStats Stats;
};

//===----------------------------------------------------------------------===//
// Request-list files (`dpoptcc --serve=FILE`)
//===----------------------------------------------------------------------===//

/// One parsed line of a --serve request file.
struct ServeRequest {
  enum Kind { Compile, Tune } Kind = Compile;
  // Compile fields.
  std::string SourcePath;
  std::string Pipeline;
  std::string OutputPath; ///< Empty = don't write the transformed source.
  bool WantBytecode = false;
  // Tune fields.
  std::string WorkloadSpec;
  TuneMode Mode = TuneMode::Hybrid;
  unsigned Budget = 48;
  unsigned Seed = 1;
  bool WarmStart = false;
  std::string TuneReportPath;
  unsigned Line = 0; ///< 1-based source line, for diagnostics.
};

/// Parses the line-based --serve request format:
///
///   # comment / blank lines ignored
///   compile src=FILE [passes=PIPELINE] [bytecode=1] [out=FILE]
///   tune workload=SPEC [mode=analytic|empirical|hybrid] [budget=N]
///        [seed=N] [warm=1] [out=FILE]
///
/// Returns false with \p Error naming the offending line.
bool parseServeRequests(std::string_view Text,
                        std::vector<ServeRequest> &Out, std::string &Error);

} // namespace dpo

#endif // DPO_SERVICE_COMPILESERVICE_H
