//===--- ArtifactCache.h - Content-addressed on-disk artifact store -------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disk layer of the compile service's artifact cache: a directory of
/// content-addressed blobs, one file per key (`<dir>/<key>.dpoart`),
/// size-bounded with LRU eviction. The cache is deliberately dumb about
/// content — it stores and returns raw bytes; the CompileService layers
/// the versioned, checksummed artifact format on top and treats any blob
/// that fails validation as a miss (recompile, remove, re-store).
///
/// Durability model: stores write to a temporary file and rename into
/// place, so readers never observe a half-written artifact even with
/// concurrent writers. Recency for LRU is the file mtime; loads touch it.
/// All operations tolerate a hostile directory state (missing dir,
/// unreadable files, files vanishing mid-scan) by degrading to a miss.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SERVICE_ARTIFACTCACHE_H
#define DPO_SERVICE_ARTIFACTCACHE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace dpo {

struct ArtifactCacheStats {
  uint64_t Hits = 0;      ///< load() found the key.
  uint64_t Misses = 0;    ///< load() did not.
  uint64_t Stores = 0;    ///< Successful store() calls.
  uint64_t Evictions = 0; ///< Artifacts removed to respect MaxBytes.
  uint64_t Removes = 0;   ///< Explicit remove() calls that deleted a file.
  uint64_t ResidentBytes = 0; ///< Total artifact bytes after the last op.
};

class ArtifactCache {
public:
  /// \p Dir empty disables the cache: every load misses, stores are
  /// dropped. Otherwise the directory is created on first store.
  ArtifactCache(std::string Dir, uint64_t MaxBytes);

  bool enabled() const { return !Dir.empty(); }
  const std::string &directory() const { return Dir; }
  uint64_t maxBytes() const { return MaxBytes; }

  /// Loads the blob stored under \p Key into \p Bytes. Returns false on
  /// a miss (or read failure). A hit refreshes the artifact's recency.
  bool load(const std::string &Key, std::string &Bytes);

  /// Stores \p Bytes under \p Key (atomically: tmp file + rename),
  /// evicting least-recently-used artifacts first so the directory stays
  /// within maxBytes(). A blob larger than the bound itself is refused.
  bool store(const std::string &Key, std::string_view Bytes);

  /// Deletes \p Key's artifact if present (used when validation rejects
  /// a corrupt blob, so the poisoned entry cannot be served again).
  void remove(const std::string &Key);

  ArtifactCacheStats stats() const;

private:
  std::string fileFor(const std::string &Key) const;
  /// Under Lock: delete oldest artifacts until Incoming more bytes fit.
  void evictToFit(uint64_t Incoming);
  uint64_t scanResidentBytes() const;

  std::string Dir;
  uint64_t MaxBytes;
  mutable std::mutex Lock;
  ArtifactCacheStats Stats;
};

} // namespace dpo

#endif // DPO_SERVICE_ARTIFACTCACHE_H
