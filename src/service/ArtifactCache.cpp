//===--- ArtifactCache.cpp - Content-addressed on-disk artifact store -----===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/ArtifactCache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

namespace fs = std::filesystem;
using namespace dpo;

namespace {

constexpr const char *ArtifactSuffix = ".dpoart";

/// One artifact file observed during an eviction scan.
struct DirEntry {
  fs::path Path;
  uint64_t Size = 0;
  fs::file_time_type MTime;
};

} // namespace

ArtifactCache::ArtifactCache(std::string Dir, uint64_t MaxBytes)
    : Dir(std::move(Dir)), MaxBytes(MaxBytes) {}

std::string ArtifactCache::fileFor(const std::string &Key) const {
  return (fs::path(Dir) / (Key + ArtifactSuffix)).string();
}

bool ArtifactCache::load(const std::string &Key, std::string &Bytes) {
  std::lock_guard<std::mutex> G(Lock);
  if (Dir.empty()) {
    ++Stats.Misses;
    return false;
  }
  std::ifstream In(fileFor(Key), std::ios::binary);
  if (!In) {
    ++Stats.Misses;
    return false;
  }
  std::string Blob((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    ++Stats.Misses;
    return false;
  }
  Bytes = std::move(Blob);
  // Touch for LRU; best-effort (a read-only cache dir still serves hits).
  std::error_code EC;
  fs::last_write_time(fileFor(Key), fs::file_time_type::clock::now(), EC);
  ++Stats.Hits;
  return true;
}

uint64_t ArtifactCache::scanResidentBytes() const {
  uint64_t Total = 0;
  std::error_code EC;
  for (const auto &E : fs::directory_iterator(Dir, EC)) {
    if (E.path().extension() != ArtifactSuffix)
      continue;
    uint64_t Size = E.file_size(EC);
    if (!EC)
      Total += Size;
  }
  return Total;
}

void ArtifactCache::evictToFit(uint64_t Incoming) {
  std::error_code EC;
  std::vector<DirEntry> Entries;
  uint64_t Total = 0;
  for (const auto &E : fs::directory_iterator(Dir, EC)) {
    if (E.path().extension() != ArtifactSuffix)
      continue;
    DirEntry D;
    D.Path = E.path();
    D.Size = E.file_size(EC);
    if (EC)
      continue;
    D.MTime = E.last_write_time(EC);
    if (EC)
      continue;
    Total += D.Size;
    Entries.push_back(std::move(D));
  }
  if (Total + Incoming <= MaxBytes) {
    Stats.ResidentBytes = Total;
    return;
  }
  // Oldest first; path as the tie-break so eviction order is
  // deterministic when mtimes collide (coarse filesystem clocks).
  std::sort(Entries.begin(), Entries.end(),
            [](const DirEntry &A, const DirEntry &B) {
              if (A.MTime != B.MTime)
                return A.MTime < B.MTime;
              return A.Path < B.Path;
            });
  for (const DirEntry &E : Entries) {
    if (Total + Incoming <= MaxBytes)
      break;
    if (fs::remove(E.Path, EC) && !EC) {
      Total -= E.Size;
      ++Stats.Evictions;
    }
  }
  Stats.ResidentBytes = Total;
}

bool ArtifactCache::store(const std::string &Key, std::string_view Bytes) {
  std::lock_guard<std::mutex> G(Lock);
  if (Dir.empty())
    return false;
  if (Bytes.size() > MaxBytes)
    return false; // larger than the whole budget; caching it is pointless
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return false;

  evictToFit(Bytes.size());

  // Unique-enough tmp name: keyed by this object's address + key, so two
  // processes writing the same key race only at the atomic rename.
  std::string Tmp = fileFor(Key) + ".tmp" + std::to_string((uintptr_t)this);
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF) {
      return false;
    }
    OutF.write(Bytes.data(), (std::streamsize)Bytes.size());
    if (!OutF.good()) {
      OutF.close();
      fs::remove(Tmp, EC);
      return false;
    }
  }
  fs::rename(Tmp, fileFor(Key), EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  ++Stats.Stores;
  Stats.ResidentBytes += Bytes.size();
  return true;
}

void ArtifactCache::remove(const std::string &Key) {
  std::lock_guard<std::mutex> G(Lock);
  if (Dir.empty())
    return;
  std::error_code EC;
  if (fs::remove(fileFor(Key), EC) && !EC) {
    ++Stats.Removes;
    Stats.ResidentBytes = scanResidentBytes();
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> G(Lock);
  ArtifactCacheStats S = Stats;
  // The running counter goes stale across processes (a warm run that never
  // stores would report zero) and on same-key overwrites; the directory is
  // the source of truth.
  if (!Dir.empty())
    S.ResidentBytes = scanResidentBytes();
  return S;
}
