//===--- CompileService.cpp - Persistent compile+tune session layer -------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "parse/Parser.h"
#include "support/StringUtils.h"
#include "transform/Pipeline.h"
#include "tuner/TunedTable.h"
#include "vm/BytecodeIO.h"
#include "vm/Compiler.h"
#include "workloads/KernelSources.h"
#include "workloads/VmWorkload.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>

using namespace dpo;

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

ServiceConfig dpo::serviceConfigFromEnv() {
  ServiceConfig C;
  if (const char *Dir = std::getenv("DPO_CACHE_DIR"))
    C.CacheDir = Dir;
  if (const char *Max = std::getenv("DPO_CACHE_MAX_BYTES")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Max, &End, 10);
    if (End && *End == '\0' && V > 0)
      C.CacheMaxBytes = V;
  }
  if (const char *W = std::getenv("DPO_SERVICE_WORKERS")) {
    unsigned Parsed = 0;
    if (parsePositiveU32(W, Parsed) == ParseUIntStatus::Ok)
      C.Workers = Parsed;
  }
  return C;
}

unsigned CompileService::workers() const {
  if (Config.Workers)
    return Config.Workers;
  if (const char *W = std::getenv("DPO_SERVICE_WORKERS")) {
    unsigned Parsed = 0;
    if (parsePositiveU32(W, Parsed) == ParseUIntStatus::Ok)
      return Parsed;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return std::max(1u, std::min(HW, 8u));
}

CompileService::CompileService(ServiceConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      Disk(Config.CacheDir, Config.CacheMaxBytes) {}

CompileService::~CompileService() = default;

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

std::string CompileService::cacheKeyFor(const CompileRequest &Req,
                                        std::string &Error) {
  std::string Canonical;
  if (!canonicalPipelineText(Req.Pipeline, Req.Knobs, Canonical, Error))
    return std::string();

  // Keyed material: everything that can change the artifact's bytes.
  // Versions are included so a format bump is a clean cache miss, not a
  // poisoned load.
  std::string Material;
  Material += "artifact-v" + std::to_string(ArtifactFormatVersion);
  Material += "|bytecode-v" + std::to_string(BytecodeFormatVersion);
  Material += "|opt=";
  Material += Req.OptimizeBytecode ? '1' : '0';
  Material += "|pipeline=" + Canonical;
  Material += "|knobs=" + knobSignature(Req.Knobs);
  Material += "|source=";
  Material += Req.Source;

  // Two independent 64-bit FNV streams give a 128-bit content address —
  // short enough for a file name, wide enough that distinct requests
  // do not collide in practice.
  uint64_t H0 = fnv1a64(Material);
  uint64_t H1 = fnv1a64(Material, 0x9e3779b97f4a7c15ull);
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64 "%016" PRIx64, H0, H1);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Artifact container: "DPOA" + versions + transformed source + optional
// bytecode image (BytecodeIO's own framed format) + trailing checksum.
//===----------------------------------------------------------------------===//

namespace {

const char ArtifactMagic[4] = {'D', 'P', 'O', 'A'};

void putU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back((char)((V >> (8 * I)) & 0xff));
}

void putU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back((char)((V >> (8 * I)) & 0xff));
}

bool getU32(std::string_view S, size_t &Pos, uint32_t &V) {
  if (Pos + 4 > S.size())
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= (uint32_t)(uint8_t)S[Pos + I] << (8 * I);
  Pos += 4;
  return true;
}

bool getU64(std::string_view S, size_t &Pos, uint64_t &V) {
  if (Pos + 8 > S.size())
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= (uint64_t)(uint8_t)S[Pos + I] << (8 * I);
  Pos += 8;
  return true;
}

} // namespace

std::string CompileService::encodeArtifact(const MemEntry &E) {
  std::string Blob;
  Blob.append(ArtifactMagic, sizeof(ArtifactMagic));
  putU32(Blob, ArtifactFormatVersion);
  putU32(Blob, E.Program ? 1u : 0u); // flags: bit0 = has bytecode image
  putU64(Blob, E.TransformedSource.size());
  Blob += E.TransformedSource;
  if (E.Program) {
    std::string Image = serializeVmProgram(*E.Program);
    putU64(Blob, Image.size());
    Blob += Image;
  }
  // Whole-blob checksum (covers everything before it): cheap end-to-end
  // integrity for the source half; the program image adds its own.
  putU64(Blob, fnv1a64(Blob));
  return Blob;
}

bool CompileService::decodeArtifact(std::string_view Blob, MemEntry &Out,
                                    std::string &Error) {
  if (Blob.size() < sizeof(ArtifactMagic) + 8 ||
      std::memcmp(Blob.data(), ArtifactMagic, sizeof(ArtifactMagic)) != 0) {
    Error = "not a dpopt artifact (bad magic)";
    return false;
  }
  size_t Body = Blob.size() - 8;
  size_t Pos = Body;
  uint64_t Checksum = 0;
  getU64(Blob, Pos, Checksum);
  if (fnv1a64(Blob.substr(0, Body)) != Checksum) {
    Error = "artifact checksum mismatch (corrupt or truncated)";
    return false;
  }
  Pos = sizeof(ArtifactMagic);
  uint32_t Version = 0, Flags = 0;
  uint64_t SrcLen = 0;
  if (!getU32(Blob, Pos, Version) || !getU32(Blob, Pos, Flags) ||
      !getU64(Blob, Pos, SrcLen)) {
    Error = "truncated artifact header";
    return false;
  }
  if (Version != ArtifactFormatVersion) {
    Error = "artifact format version " + std::to_string(Version) +
            " (expected " + std::to_string(ArtifactFormatVersion) + ")";
    return false;
  }
  if (Flags & ~1u) {
    Error = "unknown artifact flags";
    return false;
  }
  if (Pos + SrcLen > Body) {
    Error = "truncated artifact source";
    return false;
  }
  MemEntry E;
  E.TransformedSource = std::string(Blob.substr(Pos, SrcLen));
  Pos += SrcLen;
  if (Flags & 1) {
    uint64_t ImageLen = 0;
    if (!getU64(Blob, Pos, ImageLen) || Pos + ImageLen > Body) {
      Error = "truncated artifact image";
      return false;
    }
    VmProgram Program;
    if (!deserializeVmProgram(Blob.substr(Pos, ImageLen), Program, Error))
      return false;
    Pos += ImageLen;
    E.Program = std::make_shared<const VmProgram>(std::move(Program));
  }
  if (Pos != Body) {
    Error = "trailing bytes in artifact";
    return false;
  }
  Out = std::move(E);
  return true;
}

//===----------------------------------------------------------------------===//
// Compile path
//===----------------------------------------------------------------------===//

bool CompileService::compileUncached(const CompileRequest &Req, MemEntry &Out,
                                     std::string &Error) const {
  std::string Source(Req.Source);
  if (!Req.Pipeline.empty()) {
    DiagnosticEngine Diags;
    Source = transformSourceWithPipeline(Req.Source, Req.Pipeline, Req.Knobs,
                                         Diags);
    if (Source.empty()) {
      Error = "pipeline '" + Req.Pipeline + "' failed: " + Diags.str();
      return false;
    }
  }
  Out.TransformedSource = std::move(Source);

  if (Req.WantBytecode) {
    DiagnosticEngine Diags;
    ASTContext Ctx;
    TranslationUnit *TU = parseSource(Out.TransformedSource, Ctx, Diags);
    VmCompileOptions Opts;
    Opts.OptimizeBytecode = Req.OptimizeBytecode;
    VmProgram Program;
    if (TU)
      Program = compileProgram(TU, Diags, Opts);
    if (!TU || Diags.hasErrors()) {
      Error = "bytecode compile failed: " + Diags.str();
      return false;
    }
    Out.Program = std::make_shared<const VmProgram>(std::move(Program));
  }
  return true;
}

CompileResponse CompileService::compile(const CompileRequest &Req) {
  CompileResponse Resp;
  std::string KeyError;
  Resp.Key = cacheKeyFor(Req, KeyError);
  if (Resp.Key.empty()) {
    Resp.Error = "invalid pass pipeline: " + KeyError;
    std::lock_guard<std::mutex> G(Lock);
    ++Stats.Requests;
    return Resp;
  }

  // Fast path + single flight: under the lock, either serve the memory
  // entry, or wait for the in-flight compile of this key, or claim it.
  {
    std::unique_lock<std::mutex> G(Lock);
    ++Stats.Requests;
    while (true) {
      auto It = Memory.find(Resp.Key);
      if (It != Memory.end()) {
        bool NeedsProgram = Req.WantBytecode && !It->second.Program;
        if (!NeedsProgram) {
          ++Stats.MemoryHits;
          Resp.Ok = true;
          Resp.Outcome = CacheOutcome::MemoryHit;
          Resp.TransformedSource = It->second.TransformedSource;
          Resp.Program = It->second.Program;
          return Resp;
        }
        // The cached entry lacks the program image this request wants;
        // fall through and upgrade it (still skipping the transform).
      }
      if (!InFlight.count(Resp.Key))
        break;
      KeyDone.wait(G);
    }
    InFlight.insert(Resp.Key);
  }

  // Slow path, no locks: disk probe, then compile (or upgrade).
  MemEntry Entry;
  bool HaveEntry = false;
  bool FromDisk = false;
  bool Corrupt = false;
  std::string DiskBlob;
  if (Disk.load(Resp.Key, DiskBlob)) {
    std::string DecodeError;
    if (decodeArtifact(DiskBlob, Entry, DecodeError)) {
      HaveEntry = true;
      FromDisk = true;
    } else {
      // Corruption-safe load: diagnose, drop the poisoned blob, and
      // recompile from source. Never abort, never serve bad bytes.
      std::fprintf(stderr,
                   "dpopt-service: discarding cached artifact %s: %s\n",
                   Resp.Key.c_str(), DecodeError.c_str());
      Disk.remove(Resp.Key);
      Corrupt = true;
    }
  }

  // Memory had a source-only entry and the request wants bytecode too:
  // reuse the transformed source, compile only the program half.
  std::string UpgradeSource;
  if (!HaveEntry) {
    std::lock_guard<std::mutex> G(Lock);
    auto It = Memory.find(Resp.Key);
    if (It != Memory.end())
      UpgradeSource = It->second.TransformedSource;
  }

  bool NeedsProgram = Req.WantBytecode && !Entry.Program;
  std::string CompileError;
  bool Ok = true;
  if (!HaveEntry && !UpgradeSource.empty()) {
    CompileRequest Precompiled = Req;
    Precompiled.Source = UpgradeSource;
    Precompiled.Pipeline.clear(); // transform already applied
    Ok = compileUncached(Precompiled, Entry, CompileError);
    HaveEntry = Ok;
  } else if (!HaveEntry) {
    Ok = compileUncached(Req, Entry, CompileError);
    HaveEntry = Ok;
  } else if (NeedsProgram) {
    CompileRequest Precompiled = Req;
    Precompiled.Source = Entry.TransformedSource;
    Precompiled.Pipeline.clear();
    MemEntry Upgraded;
    Ok = compileUncached(Precompiled, Upgraded, CompileError);
    if (Ok)
      Entry = std::move(Upgraded);
  }

  // Persist: anything freshly compiled (or upgraded) goes to disk so the
  // next process starts warm.
  if (Ok && (!FromDisk || NeedsProgram))
    Disk.store(Resp.Key, encodeArtifact(Entry));

  {
    std::lock_guard<std::mutex> G(Lock);
    if (Ok) {
      Memory[Resp.Key] = Entry;
      if (FromDisk)
        ++Stats.DiskHits;
      else if (!UpgradeSource.empty())
        ++Stats.MemoryHits; // transform reused; only the lowering ran
      else
        ++Stats.Misses;
    } else {
      ++Stats.Misses;
    }
    if (Corrupt)
      ++Stats.CorruptArtifacts;
    InFlight.erase(Resp.Key);
    KeyDone.notify_all();
  }

  if (!Ok) {
    Resp.Error = CompileError;
    return Resp;
  }
  Resp.Ok = true;
  Resp.Outcome = FromDisk ? CacheOutcome::DiskHit : CacheOutcome::Miss;
  Resp.TransformedSource = Entry.TransformedSource;
  Resp.Program = Entry.Program;
  return Resp;
}

std::vector<CompileResponse>
CompileService::compileBatch(const std::vector<CompileRequest> &Reqs) {
  std::vector<CompileResponse> Out(Reqs.size());
  unsigned N = std::min<unsigned>(workers(), (unsigned)Reqs.size());
  if (N <= 1) {
    for (size_t I = 0; I < Reqs.size(); ++I)
      Out[I] = compile(Reqs[I]);
    return Out;
  }
  // Atomic work-claiming drain: responses land positionally, so the
  // result order — and every per-key artifact, via the single-flight
  // compile path — is deterministic at any worker count.
  std::atomic<size_t> Next{0};
  auto Work = [&]() {
    while (true) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Reqs.size())
        return;
      Out[I] = compile(Reqs[I]);
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(N);
  for (unsigned T = 0; T < N; ++T)
    Pool.emplace_back(Work);
  for (std::thread &T : Pool)
    T.join();
  return Out;
}

//===----------------------------------------------------------------------===//
// Tune path
//===----------------------------------------------------------------------===//

namespace {

/// Tune results cache as a small key=value text blob (stored through the
/// same ArtifactCache, under a "tune-" prefixed key).
std::string encodeTuneResult(const EmpiricalTuneResult &R) {
  std::ostringstream S;
  S << "dpo-tune-result v1\n";
  S << "mode " << tuneModeName(R.Mode) << '\n';
  S << "pipeline " << R.Pipeline << '\n';
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", R.TimeUs);
  S << "timeus " << Buf << '\n';
  S << "evals " << R.VmEvaluations << '\n';
  S << "simprobes " << R.SimProbes << '\n';
  return S.str();
}

bool decodeTuneResult(std::string_view Text, EmpiricalTuneResult &R,
                      std::string &Error) {
  std::istringstream S{std::string(Text)};
  std::string Line;
  if (!std::getline(S, Line) || Line != "dpo-tune-result v1") {
    Error = "bad tune-result header";
    return false;
  }
  EmpiricalTuneResult Out;
  bool SawMode = false, SawPipeline = false;
  while (std::getline(S, Line)) {
    if (Line.empty())
      continue;
    size_t Space = Line.find(' ');
    std::string Key = Line.substr(0, Space);
    std::string Value =
        Space == std::string::npos ? std::string() : Line.substr(Space + 1);
    if (Key == "mode") {
      if (!parseTuneMode(Value, Out.Mode)) {
        Error = "bad tune mode '" + Value + "'";
        return false;
      }
      SawMode = true;
    } else if (Key == "pipeline") {
      Out.Pipeline = Value;
      SawPipeline = true;
    } else if (Key == "timeus") {
      Out.TimeUs = std::strtod(Value.c_str(), nullptr);
    } else if (Key == "evals") {
      Out.VmEvaluations = (unsigned)std::strtoul(Value.c_str(), nullptr, 10);
    } else if (Key == "simprobes") {
      Out.SimProbes = (unsigned)std::strtoul(Value.c_str(), nullptr, 10);
    } // unknown keys: forward compatibility
  }
  if (!SawMode || !SawPipeline) {
    Error = "tune result missing mode/pipeline";
    return false;
  }
  if (!execConfigFromPipelineText(Out.Pipeline, Out.Config)) {
    Error = "tune result pipeline outside ExecConfig vocabulary";
    return false;
  }
  R = std::move(Out);
  return true;
}

} // namespace

TuneResponse CompileService::tune(const TuneRequest &Req) {
  TuneResponse Resp;
  std::string Spec =
      Req.WorkloadSpec.empty() ? std::string("canonical") : Req.WorkloadSpec;

  // Tune cache key: the full determinism envelope of a search.
  std::string Material = "tune|spec=" + Spec;
  Material += "|mode=" + std::string(tuneModeName(Req.Mode));
  Material += "|budget=" + std::to_string(Req.Opts.Budget);
  Material += "|seed=" + std::to_string(Req.Opts.Seed);
  Material += "|batches=" + std::to_string(Req.Opts.SampleBatches);
  Material += "|units=" + std::to_string(Req.Opts.MaxSampleUnits);
  Material += "|warm=";
  Material += Req.WarmStart ? '1' : '0';
  uint64_t H0 = fnv1a64(Material);
  uint64_t H1 = fnv1a64(Material, 0x9e3779b97f4a7c15ull);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "tune-%016" PRIx64 "%016" PRIx64, H0, H1);
  Resp.Key = Buf;

  {
    // Single-flight, sharing the compile path's machinery (the "tune-"
    // key prefix keeps the namespaces disjoint): concurrent identical
    // tune requests run the search once; the rest wait and reuse it.
    std::unique_lock<std::mutex> G(Lock);
    ++Stats.TuneRequests;
    while (true) {
      auto It = TuneMemory.find(Resp.Key);
      if (It != TuneMemory.end()) {
        ++Stats.TuneCacheHits;
        TuneResponse Cached = It->second;
        Cached.Key = Resp.Key;
        Cached.CacheHit = true;
        return Cached;
      }
      if (!InFlight.count(Resp.Key)) {
        InFlight.insert(Resp.Key);
        break;
      }
      KeyDone.wait(G);
    }
  }
  // From here on every exit must release the in-flight claim.
  auto Release = [&]() {
    std::lock_guard<std::mutex> G(Lock);
    InFlight.erase(Resp.Key);
    KeyDone.notify_all();
  };
  std::string DiskBlob;
  if (Disk.load(Resp.Key, DiskBlob)) {
    std::string DecodeError;
    EmpiricalTuneResult Cached;
    if (decodeTuneResult(DiskBlob, Cached, DecodeError)) {
      Resp.Ok = true;
      Resp.CacheHit = true;
      Resp.Result = std::move(Cached);
      std::lock_guard<std::mutex> G(Lock);
      ++Stats.TuneCacheHits;
      TuneResponse Memo = Resp;
      Memo.CacheHit = false; // memory hits re-mark on the way out
      TuneMemory[Resp.Key] = Memo;
      InFlight.erase(Resp.Key);
      KeyDone.notify_all();
      return Resp;
    }
    std::fprintf(stderr,
                 "dpopt-service: discarding cached tune result %s: %s\n",
                 Resp.Key.c_str(), DecodeError.c_str());
    Disk.remove(Resp.Key);
    std::lock_guard<std::mutex> G(Lock);
    ++Stats.CorruptArtifacts;
  }

  // Cold search. Resolve the workload.
  VmWorkload Workload;
  if (Spec == "canonical") {
    Workload = canonicalTuneWorkload(Req.Opts.Seed);
  } else {
    BenchCase Case;
    std::string SpecError;
    if (!parseWorkloadSpec(Spec, Case, SpecError)) {
      Resp.Error = "bad workload spec '" + Spec + "': " + SpecError;
      Release(); // errors are not memoized: a retry gets a fresh attempt
      return Resp;
    }
    Workload = kernelVmWorkload(Case);
  }

  EmpiricalOptions Opts = Req.Opts;
  if (Req.WarmStart && !Config.TunedTableDir.empty() &&
      Req.Mode != TuneMode::Analytic) {
    // Seed the search from the committed tuned table for this workload,
    // when one exists and its pipeline is ExecConfig-representable.
    std::string TablePath =
        (std::filesystem::path(Config.TunedTableDir) / tunedTableFileName(Spec))
            .string();
    TunedEntry Entry;
    std::string LoadError;
    ExecConfig Seed;
    if (loadTunedEntryFile(TablePath, Entry, LoadError) &&
        execConfigFromPipelineText(Entry.Pipeline, Seed)) {
      Opts.WarmStart = Seed;
      std::lock_guard<std::mutex> G(Lock);
      ++Stats.TuneWarmStarts;
    }
  }

  GpuModel Gpu;
  VariantMask Full;
  Full.Thresholding = Full.Coarsening = Full.Aggregation = true;
  Resp.Result = tuneWorkload(Req.Mode, Gpu, Workload, Full, Opts);
  Resp.Ok = true;

  Disk.store(Resp.Key, encodeTuneResult(Resp.Result));
  {
    std::lock_guard<std::mutex> G(Lock);
    TuneMemory[Resp.Key] = Resp;
    InFlight.erase(Resp.Key);
    KeyDone.notify_all();
  }
  return Resp;
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ServiceStats CompileService::stats() const {
  ServiceStats S;
  {
    std::lock_guard<std::mutex> G(Lock);
    S = Stats;
  }
  ArtifactCacheStats D = Disk.stats();
  S.DiskStores = D.Stores;
  S.Evictions = D.Evictions;
  S.ResidentBytes = D.ResidentBytes;
  return S;
}

std::string CompileService::statsReport() const {
  ServiceStats S = stats();
  std::ostringstream Out;
  Out << "cache stats:\n";
  Out << "  requests          " << S.Requests << '\n';
  Out << "  memory hits       " << S.MemoryHits << '\n';
  Out << "  disk hits         " << S.DiskHits << '\n';
  Out << "  misses            " << S.Misses << '\n';
  Out << "  corrupt artifacts " << S.CorruptArtifacts << '\n';
  Out << "  disk stores       " << S.DiskStores << '\n';
  Out << "  evictions         " << S.Evictions << '\n';
  Out << "  resident bytes    " << S.ResidentBytes << '\n';
  Out << "  tune requests     " << S.TuneRequests << '\n';
  Out << "  tune cache hits   " << S.TuneCacheHits << '\n';
  Out << "  tune warm starts  " << S.TuneWarmStarts << '\n';
  return Out.str();
}

//===----------------------------------------------------------------------===//
// --serve request files
//===----------------------------------------------------------------------===//

bool dpo::parseServeRequests(std::string_view Text,
                             std::vector<ServeRequest> &Out,
                             std::string &Error) {
  std::istringstream In{std::string(Text)};
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    // Trim + skip comments/blanks.
    size_t Begin = Line.find_first_not_of(" \t\r");
    if (Begin == std::string::npos || Line[Begin] == '#')
      continue;
    size_t Last = Line.find_last_not_of(" \t\r");
    std::string Body = Line.substr(Begin, Last - Begin + 1);

    std::istringstream Fields(Body);
    std::string Verb;
    Fields >> Verb;
    ServeRequest R;
    R.Line = LineNo;

    auto Fail = [&](const std::string &Why) {
      Error = "line " + std::to_string(LineNo) + ": " + Why;
      return false;
    };

    if (Verb == "compile")
      R.Kind = ServeRequest::Compile;
    else if (Verb == "tune")
      R.Kind = ServeRequest::Tune;
    else
      return Fail("unknown verb '" + Verb + "' (expected compile or tune)");

    std::string Field;
    while (Fields >> Field) {
      size_t Eq = Field.find('=');
      if (Eq == std::string::npos)
        return Fail("malformed field '" + Field + "' (expected key=value)");
      std::string Key = Field.substr(0, Eq);
      std::string Value = Field.substr(Eq + 1);
      if (R.Kind == ServeRequest::Compile) {
        if (Key == "src")
          R.SourcePath = Value;
        else if (Key == "passes")
          R.Pipeline = Value;
        else if (Key == "out")
          R.OutputPath = Value;
        else if (Key == "bytecode")
          R.WantBytecode = Value == "1" || Value == "true";
        else
          return Fail("unknown compile field '" + Key + "'");
      } else {
        if (Key == "workload")
          R.WorkloadSpec = Value;
        else if (Key == "mode") {
          if (!parseTuneMode(Value, R.Mode))
            return Fail("unknown tune mode '" + Value + "'");
        } else if (Key == "budget") {
          if (parsePositiveU32(Value, R.Budget) != ParseUIntStatus::Ok)
            return Fail("bad budget '" + Value + "'");
        } else if (Key == "seed") {
          if (parsePositiveU32(Value, R.Seed) != ParseUIntStatus::Ok)
            return Fail("bad seed '" + Value + "'");
        } else if (Key == "warm")
          R.WarmStart = Value == "1" || Value == "true";
        else if (Key == "out")
          R.TuneReportPath = Value;
        else
          return Fail("unknown tune field '" + Key + "'");
      }
    }
    if (R.Kind == ServeRequest::Compile && R.SourcePath.empty())
      return Fail("compile requires src=FILE");
    if (R.Kind == ServeRequest::Tune && R.WorkloadSpec.empty())
      return Fail("tune requires workload=SPEC");
    Out.push_back(std::move(R));
  }
  return true;
}
