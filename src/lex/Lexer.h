//===--- Lexer.h - CUDA-C subset lexer --------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the CUDA-C subset. Skips `//` and `/* */`
/// comments, tracks line/column, and turns each preprocessor line into a
/// single PreprocessorLine token so the parser can pass it through
/// unchanged (the source-to-source passes must not disturb `#include`s).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_LEX_LEXER_H
#define DPO_LEX_LEXER_H

#include "lex/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace dpo {

class Lexer {
public:
  Lexer(std::string_view Buffer, DiagnosticEngine &Diags)
      : Buffer(Buffer), Diags(Diags) {}

  /// Lexes the next token. Returns an Eof token at end of input and after
  /// any error (errors are reported to the DiagnosticEngine).
  Token lex();

  /// Lexes the whole buffer. The returned vector always ends with Eof.
  std::vector<Token> lexAll();

private:
  char peek(unsigned LookAhead = 0) const {
    return Pos + LookAhead < Buffer.size() ? Buffer[Pos + LookAhead] : '\0';
  }
  char advance();
  bool atEnd() const { return Pos >= Buffer.size(); }
  SourceLocation location() const { return {Line, Column, (uint32_t)Pos}; }
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind, SourceLocation Loc, size_t StartPos);
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexStringLiteral();
  Token lexCharLiteral();
  Token lexPreprocessorLine();
  Token lexPunctuator();

  std::string_view Buffer;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  bool AtLineStart = true;
};

} // namespace dpo

#endif // DPO_LEX_LEXER_H
