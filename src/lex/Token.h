//===--- Token.h - CUDA-C subset tokens -------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the CUDA-C subset understood by the frontend. The launch
/// delimiters `<<<` / `>>>` are first-class tokens (our subset has no
/// templates, so there is no ambiguity with nested angle brackets).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_LEX_TOKEN_H
#define DPO_LEX_TOKEN_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>

namespace dpo {

enum class TokenKind : unsigned char {
  Eof,
  Identifier,
  IntegerLiteral,
  FloatLiteral,
  StringLiteral,
  CharLiteral,
  PreprocessorLine, ///< A whole `#...` line, passed through verbatim.

  // Keywords.
  KwVoid, KwBool, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
  KwUnsigned, KwSigned, KwConst, KwStatic, KwStruct, KwIf, KwElse, KwFor,
  KwWhile, KwDo, KwReturn, KwBreak, KwContinue, KwSizeof, KwTrue, KwFalse,
  KwGlobal, KwDevice, KwHost, KwShared, KwRestrict, KwExtern, KwInline,
  KwForceInline, KwNoInline,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Semi, Comma, Period,
  Arrow, Question, Colon, ColonColon,

  // Operators.
  Plus, Minus, Star, Slash, Percent, Equal, PlusEqual, MinusEqual, StarEqual,
  SlashEqual, PercentEqual, PlusPlus, MinusMinus, EqualEqual, ExclaimEqual,
  Less, Greater, LessEqual, GreaterEqual, AmpAmp, PipePipe, Exclaim, Amp,
  Pipe, Caret, Tilde, LessLess, GreaterGreater, LessLessEqual,
  GreaterGreaterEqual, AmpEqual, PipeEqual, CaretEqual,

  // Dynamic-parallelism launch delimiters.
  LaunchBegin, ///< `<<<`
  LaunchEnd,   ///< `>>>`
};

/// Returns a human-readable spelling for diagnostics ("'<<<'", "identifier").
std::string_view tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLocation Loc;
  std::string Text; ///< Verbatim spelling (identifier name, literal text...).

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  template <typename... Ts> bool isOneOf(TokenKind K, Ts... Ks) const {
    return is(K) || (... || is(Ks));
  }

  /// True for tokens that can start a type in our subset.
  bool isTypeKeyword() const {
    switch (Kind) {
    case TokenKind::KwVoid:
    case TokenKind::KwBool:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwUnsigned:
    case TokenKind::KwSigned:
    case TokenKind::KwConst:
      return true;
    default:
      return false;
    }
  }
};

} // namespace dpo

#endif // DPO_LEX_TOKEN_H
