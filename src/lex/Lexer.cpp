//===--- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lex/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace dpo;

std::string_view dpo::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof: return "end of file";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntegerLiteral: return "integer literal";
  case TokenKind::FloatLiteral: return "floating literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::CharLiteral: return "character literal";
  case TokenKind::PreprocessorLine: return "preprocessor line";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwBool: return "'bool'";
  case TokenKind::KwChar: return "'char'";
  case TokenKind::KwShort: return "'short'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwLong: return "'long'";
  case TokenKind::KwFloat: return "'float'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwUnsigned: return "'unsigned'";
  case TokenKind::KwSigned: return "'signed'";
  case TokenKind::KwConst: return "'const'";
  case TokenKind::KwStatic: return "'static'";
  case TokenKind::KwStruct: return "'struct'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwDo: return "'do'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwSizeof: return "'sizeof'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwGlobal: return "'__global__'";
  case TokenKind::KwDevice: return "'__device__'";
  case TokenKind::KwHost: return "'__host__'";
  case TokenKind::KwShared: return "'__shared__'";
  case TokenKind::KwRestrict: return "'__restrict__'";
  case TokenKind::KwExtern: return "'extern'";
  case TokenKind::KwInline: return "'inline'";
  case TokenKind::KwForceInline: return "'__forceinline__'";
  case TokenKind::KwNoInline: return "'__noinline__'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Period: return "'.'";
  case TokenKind::Arrow: return "'->'";
  case TokenKind::Question: return "'?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::ColonColon: return "'::'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Equal: return "'='";
  case TokenKind::PlusEqual: return "'+='";
  case TokenKind::MinusEqual: return "'-='";
  case TokenKind::StarEqual: return "'*='";
  case TokenKind::SlashEqual: return "'/='";
  case TokenKind::PercentEqual: return "'%='";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::EqualEqual: return "'=='";
  case TokenKind::ExclaimEqual: return "'!='";
  case TokenKind::Less: return "'<'";
  case TokenKind::Greater: return "'>'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::GreaterEqual: return "'>='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Exclaim: return "'!'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::LessLess: return "'<<'";
  case TokenKind::GreaterGreater: return "'>>'";
  case TokenKind::LessLessEqual: return "'<<='";
  case TokenKind::GreaterGreaterEqual: return "'>>='";
  case TokenKind::AmpEqual: return "'&='";
  case TokenKind::PipeEqual: return "'|='";
  case TokenKind::CaretEqual: return "'^='";
  case TokenKind::LaunchBegin: return "'<<<'";
  case TokenKind::LaunchEnd: return "'>>>'";
  }
  return "unknown token";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"void", TokenKind::KwVoid},
      {"bool", TokenKind::KwBool},
      {"char", TokenKind::KwChar},
      {"short", TokenKind::KwShort},
      {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},
      {"unsigned", TokenKind::KwUnsigned},
      {"signed", TokenKind::KwSigned},
      {"const", TokenKind::KwConst},
      {"static", TokenKind::KwStatic},
      {"struct", TokenKind::KwStruct},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"sizeof", TokenKind::KwSizeof},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"__global__", TokenKind::KwGlobal},
      {"__device__", TokenKind::KwDevice},
      {"__host__", TokenKind::KwHost},
      {"__shared__", TokenKind::KwShared},
      {"__restrict__", TokenKind::KwRestrict},
      {"extern", TokenKind::KwExtern},
      {"inline", TokenKind::KwInline},
      {"__forceinline__", TokenKind::KwForceInline},
      {"__noinline__", TokenKind::KwNoInline},
  };
  return Table;
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
    AtLineStart = true;
  } else {
    ++Column;
    if (!std::isspace((unsigned char)C))
      AtLineStart = false;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace((unsigned char)C)) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = location();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, size_t StartPos) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text.assign(Buffer.substr(StartPos, Pos - StartPos));
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword() {
  SourceLocation Loc = location();
  size_t Start = Pos;
  while (!atEnd() && (std::isalnum((unsigned char)peek()) || peek() == '_'))
    advance();
  std::string_view Text = Buffer.substr(Start, Pos - Start);
  auto It = keywordTable().find(Text);
  TokenKind Kind = It != keywordTable().end() ? It->second
                                              : TokenKind::Identifier;
  return makeToken(Kind, Loc, Start);
}

Token Lexer::lexNumber() {
  SourceLocation Loc = location();
  size_t Start = Pos;
  bool IsFloat = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (!atEnd() && std::isxdigit((unsigned char)peek()))
      advance();
  } else {
    while (!atEnd() && std::isdigit((unsigned char)peek()))
      advance();
    if (peek() == '.' && std::isdigit((unsigned char)peek(1))) {
      IsFloat = true;
      advance();
      while (!atEnd() && std::isdigit((unsigned char)peek()))
        advance();
    } else if (peek() == '.' && !std::isalpha((unsigned char)peek(1)) &&
               peek(1) != '_') {
      // Trailing-dot float such as `1.`.
      IsFloat = true;
      advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      unsigned Skip = (peek(1) == '+' || peek(1) == '-') ? 2 : 1;
      if (std::isdigit((unsigned char)peek(Skip))) {
        IsFloat = true;
        for (unsigned I = 0; I < Skip; ++I)
          advance();
        while (!atEnd() && std::isdigit((unsigned char)peek()))
          advance();
      }
    }
  }

  // Suffixes: f/F makes it float; u/U/l/L are integer suffixes.
  if (peek() == 'f' || peek() == 'F') {
    IsFloat = true;
    advance();
  } else {
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
      advance();
  }
  return makeToken(IsFloat ? TokenKind::FloatLiteral
                           : TokenKind::IntegerLiteral,
                   Loc, Start);
}

Token Lexer::lexStringLiteral() {
  SourceLocation Loc = location();
  size_t Start = Pos;
  advance(); // opening quote
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\' && Pos + 1 < Buffer.size())
      advance();
    advance();
  }
  if (atEnd()) {
    Diags.error(Loc, "unterminated string literal");
    return makeToken(TokenKind::Eof, Loc, Start);
  }
  advance(); // closing quote
  return makeToken(TokenKind::StringLiteral, Loc, Start);
}

Token Lexer::lexCharLiteral() {
  SourceLocation Loc = location();
  size_t Start = Pos;
  advance(); // opening quote
  while (!atEnd() && peek() != '\'') {
    if (peek() == '\\' && Pos + 1 < Buffer.size())
      advance();
    advance();
  }
  if (atEnd()) {
    Diags.error(Loc, "unterminated character literal");
    return makeToken(TokenKind::Eof, Loc, Start);
  }
  advance(); // closing quote
  return makeToken(TokenKind::CharLiteral, Loc, Start);
}

Token Lexer::lexPreprocessorLine() {
  SourceLocation Loc = location();
  size_t Start = Pos;
  // Consume up to the end of line, honoring backslash continuations.
  while (!atEnd()) {
    if (peek() == '\\' && peek(1) == '\n') {
      advance();
      advance();
      continue;
    }
    if (peek() == '\n')
      break;
    advance();
  }
  return makeToken(TokenKind::PreprocessorLine, Loc, Start);
}

Token Lexer::lexPunctuator() {
  SourceLocation Loc = location();
  size_t Start = Pos;
  char C = advance();
  auto Two = [&](char Next, TokenKind K2, TokenKind K1) {
    if (peek() == Next) {
      advance();
      return K2;
    }
    return K1;
  };

  switch (C) {
  case '(': return makeToken(TokenKind::LParen, Loc, Start);
  case ')': return makeToken(TokenKind::RParen, Loc, Start);
  case '{': return makeToken(TokenKind::LBrace, Loc, Start);
  case '}': return makeToken(TokenKind::RBrace, Loc, Start);
  case '[': return makeToken(TokenKind::LBracket, Loc, Start);
  case ']': return makeToken(TokenKind::RBracket, Loc, Start);
  case ';': return makeToken(TokenKind::Semi, Loc, Start);
  case ',': return makeToken(TokenKind::Comma, Loc, Start);
  case '.': return makeToken(TokenKind::Period, Loc, Start);
  case '?': return makeToken(TokenKind::Question, Loc, Start);
  case ':':
    return makeToken(Two(':', TokenKind::ColonColon, TokenKind::Colon), Loc,
                     Start);
  case '~': return makeToken(TokenKind::Tilde, Loc, Start);
  case '+':
    if (peek() == '+') {
      advance();
      return makeToken(TokenKind::PlusPlus, Loc, Start);
    }
    return makeToken(Two('=', TokenKind::PlusEqual, TokenKind::Plus), Loc,
                     Start);
  case '-':
    if (peek() == '-') {
      advance();
      return makeToken(TokenKind::MinusMinus, Loc, Start);
    }
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow, Loc, Start);
    }
    return makeToken(Two('=', TokenKind::MinusEqual, TokenKind::Minus), Loc,
                     Start);
  case '*':
    return makeToken(Two('=', TokenKind::StarEqual, TokenKind::Star), Loc,
                     Start);
  case '/':
    return makeToken(Two('=', TokenKind::SlashEqual, TokenKind::Slash), Loc,
                     Start);
  case '%':
    return makeToken(Two('=', TokenKind::PercentEqual, TokenKind::Percent),
                     Loc, Start);
  case '=':
    return makeToken(Two('=', TokenKind::EqualEqual, TokenKind::Equal), Loc,
                     Start);
  case '!':
    return makeToken(Two('=', TokenKind::ExclaimEqual, TokenKind::Exclaim),
                     Loc, Start);
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, Loc, Start);
    }
    return makeToken(Two('=', TokenKind::AmpEqual, TokenKind::Amp), Loc,
                     Start);
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, Loc, Start);
    }
    return makeToken(Two('=', TokenKind::PipeEqual, TokenKind::Pipe), Loc,
                     Start);
  case '^':
    return makeToken(Two('=', TokenKind::CaretEqual, TokenKind::Caret), Loc,
                     Start);
  case '<':
    if (peek() == '<' && peek(1) == '<') {
      advance();
      advance();
      return makeToken(TokenKind::LaunchBegin, Loc, Start);
    }
    if (peek() == '<') {
      advance();
      return makeToken(Two('=', TokenKind::LessLessEqual, TokenKind::LessLess),
                       Loc, Start);
    }
    return makeToken(Two('=', TokenKind::LessEqual, TokenKind::Less), Loc,
                     Start);
  case '>':
    if (peek() == '>' && peek(1) == '>') {
      advance();
      advance();
      return makeToken(TokenKind::LaunchEnd, Loc, Start);
    }
    if (peek() == '>') {
      advance();
      return makeToken(
          Two('=', TokenKind::GreaterGreaterEqual, TokenKind::GreaterGreater),
          Loc, Start);
    }
    return makeToken(Two('=', TokenKind::GreaterEqual, TokenKind::Greater),
                     Loc, Start);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Eof, Loc, Start);
  }
}

Token Lexer::lex() {
  skipWhitespaceAndComments();
  if (atEnd()) {
    Token Tok;
    Tok.Kind = TokenKind::Eof;
    Tok.Loc = location();
    return Tok;
  }
  char C = peek();
  if (C == '#' && AtLineStart)
    return lexPreprocessorLine();
  if (std::isalpha((unsigned char)C) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit((unsigned char)C))
    return lexNumber();
  if (C == '"')
    return lexStringLiteral();
  if (C == '\'')
    return lexCharLiteral();
  return lexPunctuator();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token Tok = lex();
    bool IsEof = Tok.is(TokenKind::Eof);
    Tokens.push_back(std::move(Tok));
    if (IsEof)
      break;
  }
  return Tokens;
}
