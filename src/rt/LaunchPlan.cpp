//===--- LaunchPlan.cpp -------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "rt/LaunchPlan.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace dpo;

namespace {

uint64_t ceilDiv(uint64_t A, uint64_t B) { return (A + B - 1) / B; }

} // namespace

LaunchPlan dpo::buildLaunchPlan(const NestedBatch &Batch,
                                const ExecConfig &Config) {
  assert(Batch.ChildUnits.size() == Batch.NumParentThreads &&
         "one child-unit count per parent thread");
  LaunchPlan Plan;
  Plan.SerializedUnits.assign(Batch.NumParentThreads, 0);
  Plan.Participates.assign(Batch.NumParentThreads, 0);

  const uint32_t B = Batch.ChildBlockDim;
  const uint32_t CF = std::max(1u, Config.CoarsenFactor);

  // Group index of a launching parent thread, per granularity.
  auto GroupOf = [&](uint32_t Tid) -> uint64_t {
    switch (Config.Agg) {
    case AggGranularity::Warp:
      return Tid / 32;
    case AggGranularity::Block:
      return Tid / Batch.ParentBlockDim;
    case AggGranularity::MultiBlock:
      return (Tid / Batch.ParentBlockDim) / std::max(1u, Config.AggGroupBlocks);
    case AggGranularity::Grid:
      return 0;
    case AggGranularity::None:
      return Tid; // Each launch its own "group".
    }
    return Tid;
  };

  struct GroupAccum {
    uint64_t OrigBlocks = 0;
    uint64_t CoarsenedBlocks = 0;
    uint32_t Participants = 0;
    uint32_t MaxBDim = 0;
  };
  std::map<uint64_t, GroupAccum> Groups;

  for (uint32_t Tid = 0; Tid < Batch.NumParentThreads; ++Tid) {
    uint32_t Units = Batch.ChildUnits[Tid];
    if (Units == 0)
      continue; // The guard in the source skips the launch entirely.

    bool Serialize =
        Config.NoCdp || (Config.Threshold && Units < *Config.Threshold);
    if (Serialize) {
      Plan.SerializedUnits[Tid] = Units;
      continue;
    }

    Plan.Participates[Tid] = 1;
    ++Plan.ParticipantCount;
    uint64_t Orig = ceilDiv(Units, B);
    uint64_t Coarse = ceilDiv(Orig, CF);
    Plan.TotalOrigBlocks += Orig;
    Plan.TotalCoarsenedBlocks += Coarse;

    GroupAccum &G = Groups[GroupOf(Tid)];
    G.OrigBlocks += Orig;
    G.CoarsenedBlocks += Coarse;
    G.Participants += 1;
    G.MaxBDim = std::max(G.MaxBDim, B);
  }

  for (auto &[Idx, G] : Groups) {
    Plan.MaxGroupParticipants =
        std::max(Plan.MaxGroupParticipants, G.Participants);

    // Section V-B: a block-granularity group below the aggregation
    // threshold launches its members' grids directly.
    bool Bypass = Config.AggThresholdEnabled &&
                  Config.Agg == AggGranularity::Block &&
                  G.Participants < Config.AggThreshold;
    if (Config.Agg == AggGranularity::None || Bypass) {
      if (Bypass)
        ++Plan.AggThresholdBypasses;
      // One grid per participant. For None, Groups has one entry per
      // launching thread already; for Bypass, split the group back into
      // its participants (uniform sizes are a fine approximation for the
      // plan's grid list; totals stay exact).
      uint32_t N = std::max(1u, G.Participants);
      for (uint32_t I = 0; I < N; ++I) {
        PlannedGrid Grid;
        Grid.CoarsenedBlocks = G.CoarsenedBlocks / N +
                               (I < G.CoarsenedBlocks % N ? 1 : 0);
        Grid.OrigBlocks = G.OrigBlocks / N + (I < G.OrigBlocks % N ? 1 : 0);
        Grid.BlockDim = G.MaxBDim;
        Grid.Participants = 1;
        if (Grid.CoarsenedBlocks > 0) {
          Plan.Grids.push_back(Grid);
          ++Plan.DeviceLaunches;
        }
      }
      continue;
    }

    PlannedGrid Grid;
    Grid.CoarsenedBlocks = G.CoarsenedBlocks;
    Grid.OrigBlocks = G.OrigBlocks;
    Grid.BlockDim = G.MaxBDim;
    Grid.Participants = G.Participants;
    Grid.FromHost = Config.Agg == AggGranularity::Grid;
    Plan.Grids.push_back(Grid);
    if (Grid.FromHost)
      ++Plan.HostLaunches;
    else
      ++Plan.DeviceLaunches;
  }
  return Plan;
}
