//===--- Compiler.h - AST to bytecode ----------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a parsed translation unit to VM bytecode. The compiler is
/// type-driven: it relies on the static types the parser attached to
/// expressions (pointer element sizes, signedness, float vs. int).
///
/// Storage classes:
///  - scalar locals/params live in per-frame slots;
///  - dim3 values occupy three consecutive slots;
///  - address-taken scalars and local arrays live in per-frame *frame
///    memory* (addressable device memory);
///  - __shared__ variables live in a per-block shared segment;
///  - file-scope globals live in a fixed region at GlobalBase.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_COMPILER_H
#define DPO_VM_COMPILER_H

#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "vm/Bytecode.h"

namespace dpo {

/// Device address where the global-variable image is placed.
constexpr uint64_t GlobalBase = 64;

/// Knobs for bytecode generation.
struct VmCompileOptions {
  /// Run the peephole optimizer (vm/Peephole.cpp) over the emitted
  /// bytecode: constant folding, dead stack-shuffle elimination, and
  /// superinstruction fusion. Semantics-preserving; turn off to inspect
  /// or execute the raw instruction stream (the fuzz equivalence tests
  /// run both settings against each other).
  bool OptimizeBytecode = true;
  /// Execution engine for Devices built through buildDevice: the decoded
  /// execution IR (default) or the bytecode-interpreter fallback. Both
  /// engines produce identical results and step counts; the fuzz and
  /// equivalence suites run them against each other (see vm/ExecIR.h).
  ExecMode Exec = ExecMode::Auto;
};

/// Compiles \p TU. Returns an empty program and diagnostics on failure
/// (check Diags.hasErrors()).
VmProgram compileProgram(const TranslationUnit *TU, DiagnosticEngine &Diags,
                         const VmCompileOptions &Opts = {});

} // namespace dpo

#endif // DPO_VM_COMPILER_H
