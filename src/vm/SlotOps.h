//===--- SlotOps.h - Shared slot-value arithmetic ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bit-level semantics of VM stack slots, shared by the interpreter
/// (vm/VM.cpp) and the peephole constant folder (vm/Peephole.cpp). Keeping
/// one definition makes "folding computes exactly what execution computes"
/// a structural property instead of a hand-maintained invariant.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_SLOTOPS_H
#define DPO_VM_SLOTOPS_H

#include <cstdint>
#include <cstring>

namespace dpo {

/// Doubles travel bit-stored in int64 slots.
inline double slotAsDouble(int64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}

inline int64_t slotFromDouble(double D) {
  int64_t Bits;
  std::memcpy(&Bits, &D, 8);
  return Bits;
}

/// Wrapping (two's-complement) int64 arithmetic: the VM's integers wrap
/// like the hardware's.
inline int64_t addWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A + (uint64_t)B);
}
inline int64_t subWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A - (uint64_t)B);
}
inline int64_t mulWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A * (uint64_t)B);
}

/// Two's-complement wrap of \p V to \p Width bytes, sign- or zero-extended
/// back to int64 — exactly what Op::TruncI computes.
inline int64_t wrapToWidth(int64_t V, int64_t Width, int64_t SignExtend) {
  if (Width == 1)
    return SignExtend ? (int64_t)(int8_t)V : (int64_t)(uint8_t)V;
  if (Width == 2)
    return SignExtend ? (int64_t)(int16_t)V : (int64_t)(uint16_t)V;
  if (Width == 4)
    return SignExtend ? (int64_t)(int32_t)V : (int64_t)(uint32_t)V;
  return V;
}

} // namespace dpo

#endif // DPO_VM_SLOTOPS_H
