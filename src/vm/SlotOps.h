//===--- SlotOps.h - Shared slot-value arithmetic ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bit-level semantics of VM stack slots, shared by the interpreter
/// (vm/VM.cpp) and the peephole constant folder (vm/Peephole.cpp). Keeping
/// one definition makes "folding computes exactly what execution computes"
/// a structural property instead of a hand-maintained invariant.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_SLOTOPS_H
#define DPO_VM_SLOTOPS_H

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace dpo {

/// Doubles travel bit-stored in int64 slots.
inline double slotAsDouble(int64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}

inline int64_t slotFromDouble(double D) {
  int64_t Bits;
  std::memcpy(&Bits, &D, 8);
  return Bits;
}

/// Wrapping (two's-complement) int64 arithmetic: the VM's integers wrap
/// like the hardware's.
inline int64_t addWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A + (uint64_t)B);
}
inline int64_t subWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A - (uint64_t)B);
}
inline int64_t mulWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A * (uint64_t)B);
}

/// Two's-complement wrap of \p V to \p Width bytes, sign- or zero-extended
/// back to int64 — exactly what Op::TruncI computes.
inline int64_t wrapToWidth(int64_t V, int64_t Width, int64_t SignExtend) {
  if (Width == 1)
    return SignExtend ? (int64_t)(int8_t)V : (int64_t)(uint8_t)V;
  if (Width == 2)
    return SignExtend ? (int64_t)(int16_t)V : (int64_t)(uint16_t)V;
  if (Width == 4)
    return SignExtend ? (int64_t)(int32_t)V : (int64_t)(uint32_t)V;
  return V;
}

/// Closed interval of values a stack slot / local can hold, shared
/// between the peephole's whole-function dataflow (vm/Peephole.cpp,
/// which publishes per-slot dynamic invariants) and the trace former
/// (vm/ExecIR.cpp, which refines those invariants along the not-taken
/// edges of trace guards). Unknown (Known == false) means "any int64".
struct SlotRange {
  bool Known = false;
  int64_t Lo = 0, Hi = 0;
};

/// The value set Op::TruncI with (\p Width, \p SignExtend) maps onto.
inline SlotRange slotRangeOfTrunc(int64_t Width, int64_t SignExtend) {
  switch (Width) {
  case 1:
    return SignExtend ? SlotRange{true, -128, 127} : SlotRange{true, 0, 255};
  case 2:
    return SignExtend ? SlotRange{true, -32768, 32767}
                      : SlotRange{true, 0, 65535};
  case 4:
    return SignExtend ? SlotRange{true, INT32_MIN, INT32_MAX}
                      : SlotRange{true, 0, (int64_t)UINT32_MAX};
  default:
    return {};
  }
}

/// True when every value in \p R is a fixed point of wrapToWidth(·,
/// \p Width, \p SignExtend) — i.e. the TruncI is provably the identity.
inline bool slotRangeFits(const SlotRange &R, int64_t Width,
                          int64_t SignExtend) {
  SlotRange T = slotRangeOfTrunc(Width, SignExtend);
  return R.Known && T.Known && R.Lo >= T.Lo && R.Hi <= T.Hi;
}

//===----------------------------------------------------------------------===//
// Interval combinators. Every derived range is conservative: any
// possible int64 overflow in a bound computation makes the result
// unknown rather than wrong.
//===----------------------------------------------------------------------===//

inline bool rangeEq(const SlotRange &A, const SlotRange &B) {
  if (A.Known != B.Known)
    return false;
  return !A.Known || (A.Lo == B.Lo && A.Hi == B.Hi);
}

/// True when \p Inner is contained in \p Outer (unknown contains all).
inline bool rangeContains(const SlotRange &Outer, const SlotRange &Inner) {
  if (!Outer.Known)
    return true;
  return Inner.Known && Inner.Lo >= Outer.Lo && Inner.Hi <= Outer.Hi;
}

// Overflow-checked int64 arithmetic.
inline bool addChecked(int64_t A, int64_t B, int64_t &Out) {
  if (B > 0 && A > INT64_MAX - B)
    return false;
  if (B < 0 && A < INT64_MIN - B)
    return false;
  Out = A + B;
  return true;
}
inline bool mulChecked(int64_t A, int64_t B, int64_t &Out) {
  if (A == 0 || B == 0) {
    Out = 0;
    return true;
  }
  if ((A == INT64_MIN && B == -1) || (B == INT64_MIN && A == -1))
    return false;
  int64_t R = (int64_t)((uint64_t)A * (uint64_t)B);
  if (R / B != A)
    return false;
  Out = R;
  return true;
}

inline SlotRange rAdd(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known)
    return {};
  SlotRange R{true, 0, 0};
  if (!addChecked(A.Lo, B.Lo, R.Lo) || !addChecked(A.Hi, B.Hi, R.Hi))
    return {};
  return R;
}
inline SlotRange rAddConst(const SlotRange &A, int64_t K) {
  return rAdd(A, {true, K, K});
}
inline SlotRange rSub(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known)
    return {};
  if (B.Hi == INT64_MIN || B.Lo == INT64_MIN) // -INT64_MIN overflows
    return {};
  SlotRange R{true, 0, 0};
  if (!addChecked(A.Lo, -B.Hi, R.Lo) || !addChecked(A.Hi, -B.Lo, R.Hi))
    return {};
  return R;
}
inline SlotRange rMul(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known)
    return {};
  int64_t C[4];
  if (!mulChecked(A.Lo, B.Lo, C[0]) || !mulChecked(A.Lo, B.Hi, C[1]) ||
      !mulChecked(A.Hi, B.Lo, C[2]) || !mulChecked(A.Hi, B.Hi, C[3]))
    return {};
  SlotRange R{true, C[0], C[0]};
  for (int I = 1; I < 4; ++I) {
    R.Lo = std::min(R.Lo, C[I]);
    R.Hi = std::max(R.Hi, C[I]);
  }
  return R;
}
/// Signed division by a provably positive divisor (quotients are
/// monotone in each operand over positive divisors, so the four corners
/// bound the result).
inline SlotRange rDivPos(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known || B.Lo <= 0)
    return {};
  int64_t C[4] = {A.Lo / B.Lo, A.Lo / B.Hi, A.Hi / B.Lo, A.Hi / B.Hi};
  SlotRange R{true, C[0], C[0]};
  for (int I = 1; I < 4; ++I) {
    R.Lo = std::min(R.Lo, C[I]);
    R.Hi = std::max(R.Hi, C[I]);
  }
  return R;
}
inline SlotRange rRemPos(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known || B.Lo <= 0 || A.Lo < 0)
    return {};
  return {true, 0, std::min(A.Hi, B.Hi - 1)};
}
inline SlotRange rMinI(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known)
    return {};
  return {true, std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
}
inline SlotRange rMaxI(const SlotRange &A, const SlotRange &B) {
  if (!A.Known || !B.Known)
    return {};
  return {true, std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}
inline SlotRange rTruncOf(const SlotRange &V, int64_t Width,
                          int64_t SignExtend) {
  if (slotRangeFits(V, Width, SignExtend))
    return V;
  return slotRangeOfTrunc(Width, SignExtend);
}

} // namespace dpo

#endif // DPO_VM_SLOTOPS_H
