//===--- VM.h - Execution engine for the GPU bytecode -------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional execution of compiled programs against a flat device memory.
///
/// Execution model:
///  - blocks of a grid run sequentially in blockIdx order (deterministic);
///  - threads within a block run round-robin between barriers: each thread
///    executes until it hits __syncthreads, finishes, or errors; a barrier
///    releases when every live thread has arrived (threads that already
///    returned are not waited for — lenient reconvergence, which matches
///    what aggregation's max-blockDim masking relies on);
///  - device-side launches are enqueued and executed after the launching
///    grid completes (a valid linearization of CUDA's guarantee that child
///    grids finish before their parent grid is considered complete);
///  - host functions execute as a single pseudo-thread with access to the
///    cudaMalloc/cudaMemcpy/cudaDeviceSynchronize intrinsics;
///  - *independent grids of the pending-launch queue run concurrently*
///    across a worker-thread pool (setWorkers / DPO_VM_WORKERS; default
///    1). The queue drains in waves: every grid currently queued is
///    independent (children always enqueue behind the whole queue), so
///    one wave executes them all concurrently, then appends each grid's
///    buffered children in wave-slot order — exactly the sequential FIFO
///    linearization. Atomics are real hardware atomics on device memory
///    (vm/AtomicMem.h), and plain aligned accesses are single-copy-atomic,
///    so racy-but-convergent kernels (BFS frontier claims, SSSP
///    atomicMin relaxations) produce their deterministic payloads at any
///    worker count; per-thread step *interleavings* — and therefore step
///    totals of racy programs — are only guaranteed reproducible in
///    single-worker mode, which keeps the bit-exact step-accounting
///    contract.
///
/// Performance design (see src/vm/README.md for the full story). The VM
/// is a three-layer pipeline: portable bytecode (Bytecode.h, the compile
/// and serialization target) is validated once at device construction,
/// lowered into the fixed-width decoded execution IR (ExecIR.h) with
/// direct-threaded handler addresses and fused immediate forms, and
/// dispatched by the decoded loop. Key properties:
///  - two first-class engines: the decoded loop (default) and the
///    bytecode interpreter (ExecMode::Bytecode / DPO_VM_EXEC=bytecode),
///    both compiled from the same handler bodies (VMHandlers.inc) and
///    both using computed-goto threaded dispatch on GCC/Clang with a
///    plain switch fallback elsewhere; decoded fusions carry the step
///    cost of the pair they replace, so VmStats, grid logs, and tuner
///    pricing are identical across engines;
///  - thread contexts (operand stack, frame stack, locals arena, frame
///    memory) come from a per-device pool reused across every block and
///    grid, so steady-state execution performs no heap allocation per
///    thread; the pool is indexed by block-nesting depth so host-side
///    cudaDeviceSynchronize can re-enter the engine safely;
///  - bytecode is validated once at device construction (jump targets,
///    local-slot indices, callee indices), letting the hot loops drop
///    per-step bounds checks;
///  - integer parameter slots are wrapped to their declared widths at
///    frame entry (see paramSlotNorm in Bytecode.h), mirroring the
///    hardware ABI and licensing the peephole's parameter-range
///    assumptions.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_VM_H
#define DPO_VM_VM_H

#include "vm/Bytecode.h"
#include "vm/Compiler.h"
#include "vm/ExecIR.h"
#include "vm/SlotOps.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dpo {

struct Dim3V {
  uint32_t X = 1, Y = 1, Z = 1;
  uint64_t count() const { return (uint64_t)X * Y * Z; }
};

/// One completed grid's measurement, recorded when the grid log is
/// enabled. The empirical tuner prices parallel execution from these:
/// Steps is the grid's *exclusive* work (nested grids subtract theirs),
/// and MaxThreadSteps is the slowest single thread — the measured
/// divergence/critical path that a sequential interpreter's aggregate
/// step count cannot see.
struct GridRecord {
  uint64_t Blocks = 0;
  uint64_t Threads = 0;
  uint64_t Steps = 0;          ///< Bytecode steps retired by this grid only.
  uint64_t MaxThreadSteps = 0; ///< Steps of the slowest thread.
  uint32_t BlockDim = 0;
  /// Launch-site ordinal (1-based into VmProgram::LaunchSiteNames) of the
  /// Op::Launch that enqueued this grid; 0 for host launches and grids
  /// with no recorded site. The profile subsystem keys histograms on it.
  uint32_t Site = 0;
  bool FromHost = false; ///< Launched by the host (or a host pseudo-thread).
};

/// Execution statistics; tests use these to check that, e.g., thresholding
/// reduces the number of dynamic launches.
struct VmStats {
  uint64_t GridsLaunched = 0;
  uint64_t DeviceLaunches = 0;
  uint64_t HostLaunches = 0;
  uint64_t BlocksExecuted = 0;
  uint64_t ThreadsExecuted = 0;
  uint64_t Steps = 0;
  uint64_t LargestGridBlocks = 0;
  // Trace-layer counters (zero unless the traced decoded engine runs;
  // purely observational — Steps stays bit-identical across engines).
  uint64_t TraceEntries = 0;   ///< TraceEnter retirements.
  uint64_t TraceIters = 0;     ///< TraceLoop back edges taken.
  uint64_t TraceSideExits = 0; ///< Guard side exits into the baseline.
  // Speculative-serialization guard outcomes (Op::SpecGuard). Pass means
  // the small-grid assumption held (the serialized path runs); Fail means
  // the guarded fallback launch runs. Counted identically by every
  // engine — the guard is one retired step in all of them.
  uint64_t SpecGuardPass = 0;
  uint64_t SpecGuardFail = 0;
};

/// Snapshot of a Device's observable execution state; see
/// Device::checkpoint(). Copyable, comparable (exact-state replays assert
/// bit-identity of two snapshots).
struct DeviceCheckpoint {
  std::vector<uint8_t> Memory;
  uint64_t BumpPtr = 0;
  VmStats Stats;
  std::vector<GridRecord> GridLog;
};

bool operator==(const VmStats &A, const VmStats &B);
bool operator==(const GridRecord &A, const GridRecord &B);
bool operator==(const DeviceCheckpoint &A, const DeviceCheckpoint &B);

class Device {
public:
  /// \p Mode picks the execution engine: Auto resolves to the traced
  /// decoded-IR loop unless a DPO_VM_EXEC environment override
  /// ("bytecode" or "decoded-notrace") selects another engine. The
  /// engine is fixed for the Device's lifetime.
  explicit Device(VmProgram Program, uint64_t MemoryBytes = 256ull << 20,
                  ExecMode Mode = ExecMode::Auto);
  ~Device();

  /// The engine this device resolved to (never Auto).
  ExecMode execMode() const { return Mode; }
  /// Decode statistics (all zero when running the bytecode engine).
  const ExecDecodeStats &decodeStats() const { return Exec.Stats; }

  /// Allocates device memory (8-byte aligned, zero-initialized).
  uint64_t alloc(uint64_t Bytes);

  // Typed accessors (bounds-checked; abort the calling test on violation).
  void writeI32(uint64_t Addr, int32_t V);
  void writeU32(uint64_t Addr, uint32_t V);
  void writeI64(uint64_t Addr, int64_t V);
  void writeF32(uint64_t Addr, float V);
  void writeF64(uint64_t Addr, double V);
  int32_t readI32(uint64_t Addr) const;
  uint32_t readU32(uint64_t Addr) const;
  int64_t readI64(uint64_t Addr) const;
  float readF32(uint64_t Addr) const;
  double readF64(uint64_t Addr) const;

  /// Copies a whole int32 array in/out.
  uint64_t allocI32(const std::vector<int32_t> &Values);
  std::vector<int32_t> readI32Array(uint64_t Addr, size_t Count) const;

  // Bulk typed-buffer host hooks. The workload harnesses use these to
  // stage datasets (CSR graphs, SAT formulas, tessellation inputs) into
  // device memory and to read payload arrays back
  // (src/workloads/Differential.h, src/workloads/KernelSources.h).
  uint64_t allocI64(const std::vector<int64_t> &Values);
  uint64_t allocF32(const std::vector<float> &Values);
  uint64_t allocF64(const std::vector<double> &Values);
  std::vector<int64_t> readI64Array(uint64_t Addr, size_t Count) const;
  std::vector<float> readF32Array(uint64_t Addr, size_t Count) const;
  std::vector<double> readF64Array(uint64_t Addr, size_t Count) const;
  void writeI32Array(uint64_t Addr, const std::vector<int32_t> &Values);
  void writeI64Array(uint64_t Addr, const std::vector<int64_t> &Values);
  void writeF64Array(uint64_t Addr, const std::vector<double> &Values);
  /// Fills \p Count elements with one value (per-round array resets).
  void fillI32(uint64_t Addr, size_t Count, int32_t V);
  void fillI64(uint64_t Addr, size_t Count, int64_t V);

  /// Launches a kernel from the host and runs to completion (including all
  /// device-side launches). Args are slot values: ints/addresses as int64,
  /// doubles bit-cast, dim3 parameters as three consecutive slots.
  bool launchKernel(const std::string &Name, Dim3V Grid, Dim3V Block,
                    const std::vector<int64_t> &Args);

  /// Runs a host function (e.g. a generated `<parent>_agg` wrapper).
  bool callHost(const std::string &Name, const std::vector<int64_t> &Args);

  /// True if the program defines a __global__ kernel named \p Name.
  bool hasKernel(const std::string &Name) const;
  /// True if the program defines a host function named \p Name. Callers
  /// that run transformed programs use this to pick the entry point: the
  /// aggregation pass replaces direct parent launches with a generated
  /// `<parent>_agg` host wrapper.
  bool hasHostFunction(const std::string &Name) const;

  const std::string &error() const { return LastError; }
  const VmStats &stats() const { return Stats; }
  void resetStats() { Stats = VmStats(); }

  /// Per-grid measurement records (off by default — the hot loop only
  /// pays per-grid/per-block bookkeeping when enabled).
  void setGridLogEnabled(bool Enabled) { GridLogEnabled = Enabled; }
  const std::vector<GridRecord> &gridLog() const { return GridLog; }
  void clearGridLog() { GridLog.clear(); }

  /// The loaded program (profile harvesting resolves GridRecord::Site
  /// ordinals against its LaunchSiteNames).
  const VmProgram &program() const { return Program; }

  /// A bit-exact snapshot of the device's observable execution state:
  /// the full memory image, the bump allocator, the statistics, and the
  /// grid log. Decode caches and formed traces are deliberately outside
  /// the snapshot — they are engine acceleration state and never change
  /// retired steps or payloads. Enables exact-state replays (the tuner
  /// checkpoints before a measurement round and replays it to prove
  /// cached results are bit-identical to cold runs).
  DeviceCheckpoint checkpoint() const;
  /// Restores a snapshot taken from this device (memory sizes must
  /// match). Must not be called while a launch is running. Returns false
  /// (device unchanged) on a size mismatch.
  bool restore(const DeviceCheckpoint &C);

  /// Maximum bytecode steps per top-level call (guards against runaway
  /// loops in tests).
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  /// Sets the worker count for draining independent grids concurrently.
  /// 0 re-resolves from the DPO_VM_WORKERS environment variable (absent
  /// or invalid = 1). 1 is the deterministic sequential mode: step
  /// counts, stats, and grid logs are bit-identical to the
  /// pre-concurrency device. Must not be called while a launch is
  /// running.
  void setWorkers(unsigned N);
  /// The resolved worker count (>= 1).
  unsigned workers() const { return Workers; }

private:
  struct PendingLaunch {
    unsigned Func;
    Dim3V Grid, Block;
    std::vector<int64_t> Args;
    uint32_t Site = 0;     ///< Launch-site ordinal (0 = host / unknown).
    bool FromHost = false; ///< Enqueued by the host / a host pseudo-thread.
  };

  /// One call frame. Locals live in the owning thread's locals arena at
  /// [LocalsBase, LocalsBase + Functions[Func].NumLocals).
  struct Frame {
    unsigned Func = 0;
    unsigned PC = 0;
    unsigned LocalsBase = 0;
    unsigned FrameMemBytes = 0;
    uint64_t FrameMemBase = 0;
  };

  enum class ThreadState { Ready, AtBarrier, AtCollective, Done, Failed };

  /// Which collective a thread is parked at (meaningful in state
  /// AtCollective; the parked frame's Func/PC identifies the site).
  enum class CollKind : uint8_t { Shfl, Ballot, Reduce };

  /// Reusable per-thread execution state. All vectors retain capacity
  /// across reset(), so steady-state runs allocate nothing.
  struct ThreadCtx {
    std::vector<int64_t> Stack; ///< Operand stack storage (capacity).
    size_t StackTop = 0;        ///< Live operand count.
    std::vector<Frame> Frames;
    std::vector<int64_t> LocalsArena;
    Dim3V ThreadIdx;
    ThreadState State = ThreadState::Ready;
    uint64_t StackMemBase = 0; ///< Addressable frame memory, one region
                               ///< per pool slot, reused across blocks.
    uint64_t StackMemUsed = 0;
    uint64_t StepsRetired = 0; ///< This thread's own steps (grid log).

    // Collective-park payload (state AtCollective): the contributed
    // value, the lane/delta operand (shuffle), the participation mask,
    // and which collective opcode parked here. Written by the handler,
    // consumed by Device::coopRelease.
    int64_t CollVal = 0;
    int64_t CollArg = 0;
    uint64_t CollMask = 0;
    CollKind CollOp = CollKind::Shfl;
    uint8_t CollMode = 0; ///< Shuffle mode / reduction kind (Instr A).

    void reset() {
      StackTop = 0;
      Frames.clear();
      LocalsArena.clear();
      State = ThreadState::Ready;
      StackMemUsed = 0;
      StepsRetired = 0;
    }
  };

  /// Thread contexts for one nesting level of block execution. Depth > 0
  /// only occurs when a host function's cudaDeviceSynchronize drains
  /// launches while its own pseudo-thread is still live.
  struct BlockPool {
    std::vector<ThreadCtx> Threads;
  };

  /// Everything one executing worker mutates while running a grid. One
  /// instance per worker thread (index 0 is the main thread), so the
  /// interpreter's hot paths touch no shared mutable device state:
  /// stats accumulate into per-worker shards merged deterministically
  /// after each top-level call, child launches buffer into Pending and
  /// are sequenced by the scheduler, and context/argument pools are
  /// worker-private. GridSteps/CurGridMaxThreadSteps implement the
  /// per-grid exclusive accounting the grid log reports (saved, zeroed,
  /// and restored around each runGrid, so a host pseudo-thread's nested
  /// drain never leaks child steps into the parent's record).
  struct WorkerCtx {
    std::vector<std::unique_ptr<BlockPool>> Pools;
    unsigned PoolDepth = 0;
    /// Recycled argument buffers for device-side launches: the hot
    /// parent-launches-children path performs no per-launch allocation
    /// in steady state.
    std::vector<std::vector<int64_t>> ArgPool;
    /// Children enqueued by the grid this worker is running; the
    /// scheduler appends them to the queue in deterministic order after
    /// the grid completes.
    std::vector<PendingLaunch> Pending;
    VmStats Stats; ///< Shard; merged into Device::Stats post-call.
    uint64_t GridSteps = 0; ///< Current grid's own flushed steps.
    uint64_t CurGridMaxThreadSteps = 0;
    /// Where the running grid's records go: the device grid log in
    /// sequential mode, a per-wave-slot buffer in parallel mode.
    std::vector<GridRecord> *LogSink = nullptr;
    bool IsMain = false; ///< Only the main worker may reach CudaSync.
  };

  /// One wave of the parallel drain: a snapshot of the queue whose grids
  /// are mutually independent by the queue dependency rule. Workers
  /// claim items through Next; each item's children and grid records are
  /// collected per slot so the post-wave merge is deterministic.
  struct ParallelWave {
    std::vector<PendingLaunch> Items;
    std::vector<std::vector<PendingLaunch>> Children;
    std::vector<std::vector<GridRecord>> Logs;
    std::atomic<size_t> Next{0};
    std::atomic<bool> Failed{false};
  };

  /// Runs one grid on \p W. Takes the launch mutable: parameter slots
  /// are normalized once here (per grid, not per thread — every thread
  /// of a grid receives identical arguments).
  bool runGrid(PendingLaunch &L, WorkerCtx &W);
  bool runBlock(const PendingLaunch &L, WorkerCtx &W, Dim3V BlockIdx,
                uint64_t SharedBase, const int64_t *InitLocals);
  /// Executes one thread until a stop event on the bytecode engine.
  /// Returns false on VM error. When \p InitLocals is non-null the call
  /// runs in *block mode*: \p ThreadCount threads of the block execute
  /// back to back inside this one invocation, reusing \p T — thread
  /// switch is a reinit from the per-grid locals image instead of a
  /// function-call round trip. Block mode requires a barrier-free kernel
  /// (MayBarrier false); \p T must be set up for the block's first
  /// thread.
  ///
  /// When \p CoopThreads is non-null the call runs in *cooperative block
  /// mode* instead: all \p CoopCount thread contexts of the block (set up
  /// by runBlock, CoopThreads[0] == &T) execute inside this one
  /// invocation, and __syncthreads / warp / block collectives become
  /// in-loop yield points — the scheduler switches to the next ready
  /// thread, releasing barriers and resolving collective groups when
  /// none remains. Mutually exclusive with \p InitLocals.
  bool runThread(ThreadCtx &T, WorkerCtx &W, const PendingLaunch &L,
                 Dim3V BlockIdx, uint64_t SharedBase,
                 const int64_t *InitLocals = nullptr,
                 uint32_t ThreadCount = 0, ThreadCtx *CoopThreads = nullptr,
                 uint32_t CoopCount = 0);
  /// The decoded-IR engine's thread loop (same contract as runThread,
  /// including block mode and cooperative block mode). When \p LabelsOut
  /// is non-null the function only exports its dispatch-label table
  /// (used once at construction to resolve ExecInstr handler addresses)
  /// and returns.
  bool runThreadExec(ThreadCtx *T, WorkerCtx *W, const PendingLaunch *L,
                     Dim3V BlockIdx, uint64_t SharedBase,
                     const void *const **LabelsOut = nullptr,
                     const int64_t *InitLocals = nullptr,
                     uint32_t ThreadCount = 0, ThreadCtx *CoopThreads = nullptr,
                     uint32_t CoopCount = 0);
  /// Cooperative-mode release step, shared by both engines: called when
  /// no thread of the block is Ready. Resolves complete collective
  /// groups (depositing results on the parked operand stacks), else
  /// releases barrier waiters (lenient reconvergence: finished threads
  /// are not waited for — aggregation's masked tails depend on this).
  /// Returns 0 with \p NextTI set to the lowest-index runnable thread,
  /// 1 when every thread is Done (block complete), 2 on error (LastError
  /// set).
  int coopRelease(ThreadCtx *Threads, uint32_t Count, size_t &NextTI);
  /// The step-limit diagnostic: notes threads parked at a barrier or
  /// collective (the divergent-barrier signature) so exhaustion while a
  /// block waits is diagnosed deterministically, never reported as a
  /// plain runaway loop.
  bool failStepLimit(const ThreadCtx *CoopThreads, uint32_t CoopCount);
  /// Wraps the callee's integer parameter slots to their declared widths
  /// (the frame-entry normalization contract, see paramSlotNorm).
  void normalizeParamSlots(unsigned Func, int64_t *Locals) {
    const std::vector<uint8_t> &Spec = NormSpecs[Func];
    for (size_t SI = 0; SI < Spec.size(); ++SI)
      if (Spec[SI])
        Locals[SI] = wrapToWidth(Locals[SI], Spec[SI] >> 1, Spec[SI] & 1);
  }
  bool drainLaunches();
  /// The parallel queue drain: snapshots the queue as one wave, executes
  /// it across the worker pool (main thread participating), merges
  /// per-slot children/records in order, repeats until empty.
  bool drainLaunchesParallel();
  /// Claims and runs wave items until the wave is exhausted.
  void runWaveItems(ParallelWave &Wave, WorkerCtx &W);
  /// The pool thread body: waits for published waves.
  void workerLoop(WorkerCtx &W, uint64_t SeenGen);
  /// Spawns pool threads (and their contexts) up to Workers - 1.
  void ensureWorkersSpawned();
  /// Stops and joins all pool threads.
  void shutdownWorkers();
  /// Folds every worker shard into Stats (order-independent sums/max).
  void mergeWorkerStats();
  uint64_t stepBudgetLeft() const {
    uint64_t Used = StepsUsed.load(std::memory_order_relaxed);
    return StepLimit > Used ? StepLimit - Used : 0;
  }
  bool fail(const std::string &Message);
  bool checkRange(uint64_t Addr, uint64_t Bytes);
  /// One-time static validation (jump targets, slot and callee indices);
  /// lets the interpreter loop run without per-step bounds checks.
  void validateProgram();
  /// Grows a thread's operand stack (slow path of the push macro).
  static void growStack(ThreadCtx &T);

  VmProgram Program;
  /// The decoded execution IR (empty on the bytecode engine).
  ExecProgram Exec;
  /// The resolved engine (never Auto). Declared before UseDecoded: the
  /// constructor derives one from the other in initialization order.
  ExecMode Mode = ExecMode::Decoded;
  bool UseDecoded = false;
  /// Per-function frame-entry normalization specs (paramNormSpec),
  /// derived once at validation; empty vectors for all-raw signatures.
  std::vector<std::vector<uint8_t>> NormSpecs;
  /// Per-function "can this function reach a __syncthreads" (transitive
  /// over calls), computed at validation. Blocks of barrier-free kernels
  /// take a streamlined path: each thread runs to completion once, with
  /// no scheduler bookkeeping.
  std::vector<uint8_t> MayBarrier;
  std::vector<uint8_t> Memory;
  uint64_t BumpPtr;
  std::deque<PendingLaunch> Queue;
  std::string LastError;
  std::string ValidationError; ///< Non-empty if validateProgram failed.
  VmStats Stats;
  uint64_t StepLimit = 2000ull * 1000 * 1000;
  /// Steps retired device-wide, published at flush granularity; the
  /// per-thread budget check reads it relaxed (the step limit is a
  /// guard rail, not an exact fence, once several workers run).
  std::atomic<uint64_t> StepsUsed{0};
  bool InHostCall = false;

  // Worker pool. WorkerCtxs[0] belongs to the main thread; pool threads
  // own [1, Workers). Threads spawn lazily at the first parallel drain
  // and idle on WaveCv between waves; waves are published under
  // WaveMutex (the lock pair is the acquire/release edge that makes
  // grid-boundary memory visible across workers).
  unsigned Workers = 1;
  std::vector<std::unique_ptr<WorkerCtx>> WorkerCtxs;
  std::vector<std::thread> WorkerThreads;
  std::mutex WaveMutex;
  std::condition_variable WaveCv;     ///< Workers wait for a wave.
  std::condition_variable WaveDoneCv; ///< Main waits for wave completion.
  ParallelWave *CurWave = nullptr;
  uint64_t WaveGen = 0;
  unsigned WaveActive = 0; ///< Pool threads still inside the wave.
  bool ShuttingDown = false;
  /// Guards the bump allocator (alloc is called from worker handlers —
  /// frame-memory regions, cudaMalloc; Memory itself never reallocates,
  /// so cached data pointers stay valid across concurrent allocs).
  std::mutex AllocMutex;
  /// Guards LastError's set-once write.
  std::mutex ErrMutex;

  // Grid measurement log (setGridLogEnabled). Records report each grid's
  // *exclusive* steps via WorkerCtx::GridSteps (saved/zeroed/restored
  // around nested grids), appended in deterministic order by the
  // scheduler.
  bool GridLogEnabled = false;
  std::vector<GridRecord> GridLog;
};

/// Convenience: parse + compile + construct a device. Returns nullptr on
/// error (diagnostics explain).
std::unique_ptr<Device> buildDevice(std::string_view Source,
                                    DiagnosticEngine &Diags,
                                    const VmCompileOptions &Opts = {});

} // namespace dpo

#endif // DPO_VM_VM_H
