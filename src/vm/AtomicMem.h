//===--- AtomicMem.h - Atomic access to flat device memory --------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic accessors over the VM's flat device-memory byte array, shared by
/// both interpreter engines (VMHandlers.inc). With the multi-worker device
/// (VM.h) several grids execute concurrently against the same memory, so
/// the atomic opcodes must be *really* atomic and ordinary loads/stores
/// must not tear:
///
///  - the atomic opcodes (atomicAdd/Min/Max/Exch/Or/And/CAS) map to
///    sequentially-consistent hardware RMW operations — like their CUDA
///    namesakes they return the pre-operation value and require the
///    address to be naturally aligned (the compiler lays atomics on
///    aligned element offsets; a misaligned address falls back to the
///    plain read-modify-write, which is only correct single-worker);
///
///  - plain device loads and stores use relaxed atomic accesses when the
///    address is naturally aligned, so racy-but-benign patterns the
///    workloads rely on (reading a distance another thread may be
///    atomicMin-ing, re-reading a frontier flag before a CAS claim) are
///    single-copy-atomic instead of torn, and ThreadSanitizer builds of
///    the multi-worker suites stay clean. Misaligned accesses keep the
///    memcpy path — exactly the sequential semantics, unsynchronized.
///
/// Memory-ordering contract (documented in src/vm/README.md): atomic
/// opcodes are seq_cst; plain accesses are relaxed; the scheduler
/// provides acquire/release edges at grid boundaries (a child grid sees
/// every write of the grid that launched it, and the host sees every
/// write of every drained grid). That is strictly stronger than the GPU
/// model the paper's kernels assume.
///
/// All helpers compute identical results to the pre-concurrency memcpy
/// implementations when execution is sequential — the single-worker
/// bit-exactness contract (step counts, payloads) is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_ATOMICMEM_H
#define DPO_VM_ATOMICMEM_H

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace dpo {

// Overridable (e.g. -DDPO_VM_REAL_ATOMICS=0) for perf A/B runs and
// compilers without the __atomic builtins; forcing it off makes
// multi-worker execution unsound (torn plain accesses, non-atomic RMW).
#ifndef DPO_VM_REAL_ATOMICS
#if defined(__GNUC__) || defined(__clang__)
#define DPO_VM_REAL_ATOMICS 1
#else
#define DPO_VM_REAL_ATOMICS 0
#endif
#endif

namespace vmatomic {

template <typename T> inline bool aligned(uint64_t Addr) {
  return (Addr & (sizeof(T) - 1)) == 0;
}

/// Plain load: single-copy-atomic (relaxed) when aligned, memcpy otherwise.
template <typename T> inline T load(const uint8_t *Mem, uint64_t Addr) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr)) {
    T V;
    __atomic_load(reinterpret_cast<const T *>(Mem + Addr), &V,
                  __ATOMIC_RELAXED);
    return V;
  }
#endif
  T V;
  std::memcpy(&V, Mem + Addr, sizeof(T));
  return V;
}

/// Plain store: single-copy-atomic (relaxed) when aligned, memcpy otherwise.
template <typename T> inline void store(uint8_t *Mem, uint64_t Addr, T V) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr)) {
    __atomic_store(reinterpret_cast<T *>(Mem + Addr), &V, __ATOMIC_RELAXED);
    return;
  }
#endif
  std::memcpy(Mem + Addr, &V, sizeof(T));
}

// RMW helpers. T is one of int32_t/uint32_t/int64_t/uint64_t; every
// helper returns the value the location held *before* the operation
// (the CUDA atomic contract). Arithmetic wraps: the adds run on the
// unsigned image of T so signed overflow is two's-complement, matching
// the interpreter's addWrap-based sequential semantics.

template <typename T> inline T fetchAdd(uint8_t *Mem, uint64_t Addr, T V) {
  using U = std::conditional_t<sizeof(T) == 4, uint32_t, uint64_t>;
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr))
    return (T)__atomic_fetch_add(reinterpret_cast<U *>(Mem + Addr), (U)V,
                                 __ATOMIC_SEQ_CST);
#endif
  T Old = load<T>(Mem, Addr);
  store<T>(Mem, Addr, (T)((U)Old + (U)V));
  return Old;
}

template <typename T> inline T fetchOr(uint8_t *Mem, uint64_t Addr, T V) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr))
    return __atomic_fetch_or(reinterpret_cast<T *>(Mem + Addr), V,
                             __ATOMIC_SEQ_CST);
#endif
  T Old = load<T>(Mem, Addr);
  store<T>(Mem, Addr, (T)(Old | V));
  return Old;
}

template <typename T> inline T fetchAnd(uint8_t *Mem, uint64_t Addr, T V) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr))
    return __atomic_fetch_and(reinterpret_cast<T *>(Mem + Addr), V,
                              __ATOMIC_SEQ_CST);
#endif
  T Old = load<T>(Mem, Addr);
  store<T>(Mem, Addr, (T)(Old & V));
  return Old;
}

template <typename T> inline T exchange(uint8_t *Mem, uint64_t Addr, T V) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr))
    return __atomic_exchange_n(reinterpret_cast<T *>(Mem + Addr), V,
                               __ATOMIC_SEQ_CST);
#endif
  T Old = load<T>(Mem, Addr);
  store<T>(Mem, Addr, V);
  return Old;
}

/// atomicMin: CAS loop; stores V only while V compares smaller than the
/// current value under T's own signedness.
template <typename T> inline T fetchMin(uint8_t *Mem, uint64_t Addr, T V) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr)) {
    T *P = reinterpret_cast<T *>(Mem + Addr);
    T Old = __atomic_load_n(P, __ATOMIC_RELAXED);
    while (V < Old && !__atomic_compare_exchange_n(P, &Old, V, false,
                                                   __ATOMIC_SEQ_CST,
                                                   __ATOMIC_SEQ_CST))
      ;
    return Old;
  }
#endif
  T Old = load<T>(Mem, Addr);
  if (V < Old)
    store<T>(Mem, Addr, V);
  return Old;
}

/// atomicMax: CAS loop, mirror of fetchMin.
template <typename T> inline T fetchMax(uint8_t *Mem, uint64_t Addr, T V) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr)) {
    T *P = reinterpret_cast<T *>(Mem + Addr);
    T Old = __atomic_load_n(P, __ATOMIC_RELAXED);
    while (V > Old && !__atomic_compare_exchange_n(P, &Old, V, false,
                                                   __ATOMIC_SEQ_CST,
                                                   __ATOMIC_SEQ_CST))
      ;
    return Old;
  }
#endif
  T Old = load<T>(Mem, Addr);
  if (V > Old)
    store<T>(Mem, Addr, V);
  return Old;
}

/// atomicCAS: one strong compare-exchange; returns the pre-operation
/// value whether or not the exchange happened.
template <typename T>
inline T compareExchange(uint8_t *Mem, uint64_t Addr, T Expected, T Desired) {
#if DPO_VM_REAL_ATOMICS
  if (aligned<T>(Addr)) {
    T *P = reinterpret_cast<T *>(Mem + Addr);
    T Old = Expected;
    __atomic_compare_exchange_n(P, &Old, Desired, false, __ATOMIC_SEQ_CST,
                                __ATOMIC_SEQ_CST);
    return Old;
  }
#endif
  T Old = load<T>(Mem, Addr);
  if (Old == Expected)
    store<T>(Mem, Addr, Desired);
  return Old;
}

} // namespace vmatomic
} // namespace dpo

#endif // DPO_VM_ATOMICMEM_H
