//===--- Peephole.h - Bytecode peephole optimizer ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A window-based bytecode optimizer run at the end of vm/Compiler.cpp:
///
///  - constant-folds PushI/PushF chains through the pure arithmetic,
///    comparison, logical, and truncation opcodes;
///  - deletes dead stack shuffles (Dup/Pop, producer/Pop, Swap/Swap) and
///    arithmetic identities (+0, *1, <<0, |0, ^0);
///  - elides redundant TruncI instructions using a per-slot value-range
///    analysis (a local whose every store is provably already wrapped to
///    the requested width needs no re-wrap at each load);
///  - fuses hot sequences into the superinstructions declared after
///    Op::Trap in vm/Bytecode.h — most importantly the global-thread-id
///    idiom `blockIdx.x * blockDim.x + threadIdx.x`, immediate-operand
///    arithmetic, paired local loads, loop-counter increments, and
///    compare-and-branch.
///
/// Fusion never crosses a jump target, and every pass rebuilds the jump
/// operands through an old-index -> new-index map, so control flow is
/// preserved exactly. The pass is semantics-preserving by construction;
/// tests/vm/FuzzEquivalenceTest.cpp additionally proves it dynamically by
/// running every fuzzed program with the optimizer on and off.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_PEEPHOLE_H
#define DPO_VM_PEEPHOLE_H

#include "vm/Bytecode.h"

namespace dpo {

struct PeepholeStats {
  unsigned InstrsBefore = 0;
  unsigned InstrsAfter = 0;
  unsigned Rounds = 0;

  PeepholeStats &operator+=(const PeepholeStats &O) {
    InstrsBefore += O.InstrsBefore;
    InstrsAfter += O.InstrsAfter;
    Rounds = Rounds > O.Rounds ? Rounds : O.Rounds;
    return *this;
  }
};

/// Optimizes one function in place. Runs folding/fusion rounds to a
/// fixpoint (bounded), preserving observable semantics exactly.
PeepholeStats optimizeFunction(FuncDef &F);

/// Optimizes every function of \p Program in place.
PeepholeStats optimizeProgram(VmProgram &Program);

} // namespace dpo

#endif // DPO_VM_PEEPHOLE_H
