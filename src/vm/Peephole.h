//===--- Peephole.h - Bytecode peephole optimizer ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A window-based bytecode optimizer run at the end of vm/Compiler.cpp:
///
///  - constant-folds PushI/PushF chains through the pure arithmetic,
///    comparison, logical, and truncation opcodes;
///  - deletes dead stack shuffles (Dup/Pop, producer/Pop, Swap/Swap) and
///    arithmetic identities (+0, *1, <<0, |0, ^0);
///  - elides redundant TruncI instructions using a *per-function
///    dataflow*: an abstract interpreter tracks value ranges through the
///    operand stack (AddImmI / LoadLoadAddI / MulImmAddI chains, loads,
///    division by positive constants) and iterates per-slot invariants
///    to a fixpoint; parameter slots start from the VM's frame-entry
///    normalization contract (paramSlotNorm in Bytecode.h), so
///    parameter-driven re-wraps are elidable too;
///  - fuses hot sequences into the superinstructions declared after
///    Op::Trap in vm/Bytecode.h — most importantly the global-thread-id
///    idiom `blockIdx.x * blockDim.x + threadIdx.x`, immediate-operand
///    arithmetic, paired local loads, loop-counter increments,
///    compare-and-branch, and the LoadLocal-indexed / scaled
///    address-formation loads and stores the dataflow unlocks.
///
/// Fusion never crosses a jump target, and every pass rebuilds the jump
/// operands through an old-index -> new-index map, so control flow is
/// preserved exactly. The pass is semantics-preserving by construction;
/// tests/vm/FuzzEquivalenceTest.cpp additionally proves it dynamically by
/// running every fuzzed program with the optimizer on and off.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_PEEPHOLE_H
#define DPO_VM_PEEPHOLE_H

#include "vm/Bytecode.h"
#include "vm/SlotOps.h"

#include <vector>

namespace dpo {

struct PeepholeStats {
  unsigned InstrsBefore = 0;
  unsigned InstrsAfter = 0;
  unsigned Rounds = 0;

  PeepholeStats &operator+=(const PeepholeStats &O) {
    InstrsBefore += O.InstrsBefore;
    InstrsAfter += O.InstrsAfter;
    Rounds = Rounds > O.Rounds ? Rounds : O.Rounds;
    return *this;
  }
};

/// Optimizes one function in place. Runs folding/fusion rounds to a
/// fixpoint (bounded), preserving observable semantics exactly.
/// \p Program, when given, lets the dataflow model Call stack effects
/// (callee arity/return) instead of conservatively clearing its state.
PeepholeStats optimizeFunction(FuncDef &F, const VmProgram *Program = nullptr);

/// Optimizes every function of \p Program in place.
PeepholeStats optimizeProgram(VmProgram &Program);

/// The per-slot dataflow fixpoint of \p F, published for reuse outside
/// the peephole (the trace former in vm/ExecIR.cpp seeds trace-entry
/// slot states from it). Entry [s] bounds every value local slot s can
/// hold at ANY point of any activation of \p F — a dynamic whole-function
/// invariant, so it is sound to assume at a trace head regardless of how
/// control reached it. \p Program, when given, models Call stack effects
/// precisely (callee arity/return) instead of conservatively.
std::vector<SlotRange> slotInvariantRanges(const FuncDef &F,
                                           const VmProgram *Program = nullptr);

} // namespace dpo

#endif // DPO_VM_PEEPHOLE_H
