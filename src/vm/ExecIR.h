//===--- ExecIR.h - Decoded-operand execution IR -------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The middle layer of the VM's three-layer pipeline
///
///     bytecode (Bytecode.h)  --decode-->  ExecIR  --dispatch-->  VM.cpp
///
/// The portable stack bytecode stays the compile/serialization target;
/// at Device construction, validated bytecode is lowered once into a
/// fixed-width decoded instruction array that the hot loop executes:
///
///  - every decoded instruction carries the *handler address* of its
///    opcode (direct threading): the dispatch `goto *I->Handler` needs no
///    table indexing per step on computed-goto builds;
///  - operands are pre-resolved at decode time: SReg's dim/component
///    split, packed flag words, and the like are unpacked into the A/B
///    fields so the handlers do no per-step operand arithmetic;
///  - hot adjacent pairs are fused into decode-only instructions
///    (XOp::StoreLocalImm, XOp::CopyLocal, XOp::GlobalTidStore). Fusion
///    never crosses a jump target, jump operands are rebuilt through an
///    old-index -> new-index map, and each fused instruction carries the
///    *step cost* of the pair it replaced, so decoded execution retires
///    exactly the same VmStats::Steps, grid-log records, and tuner
///    pricing as the bytecode interpreter on every successful run. The
///    one boundary where the engines can differ is a step-limit abort
///    whose budget falls inside a fused pair: the bytecode engine
///    retires the first half before failing, the decoded engine retires
///    neither — both fail the run, and the flushed counts differ by at
///    most one sub-instruction;
///  - on top of the pair-fused baseline, the decoder forms *traces*:
///    straight-line superblocks that follow the predicted path across
///    basic-block boundaries (function entry and every loop head are
///    candidate heads; forward conditionals are predicted not-taken —
///    unless the fall-through is a break-shaped unconditional jump past
///    the conditional's target, in which case the guard is inverted and
///    the taken edge walked — and the head's own back edge closes the
///    loop). Trace code is appended
///    after the baseline region (ExecFunc::TraceBase); entry happens by
///    retargeting every jump to a head at its XOp::TraceEnter, so the
///    baseline region stays intact for side exits. Inside a trace,
///    control flow is known, which licenses the two rewrites the
///    peephole cannot do: branch-aware range refinement (a not-taken
///    guard narrows the slot invariants published by
///    slotInvariantRanges, eliding now-provably-identity TruncIs) and a
///    frame-local store-to-load forwarder. Guards side-exit through
///    XOp::TraceExit trampolines into the baseline region with the
///    operand stack already exact; step accounting stays exact because
///    every trace element carries the step cost of the bytecode
///    instructions it covers (synthetic trace jumps cost 0, and a
///    folded-away instruction's cost rides on the next element that
///    retires after it on the original path). A step-limit abort whose
///    budget falls inside a multi-instruction element diverges by at
///    most the covered sub-instructions, exactly as with fused pairs.
///
/// The bytecode interpreter remains as a first-class fallback engine
/// (ExecMode::Bytecode / DPO_VM_EXEC=bytecode), and the decoded engine
/// can run with traces disabled (ExecMode::DecodedNoTrace /
/// DPO_VM_EXEC=decoded-notrace); the fuzz and equivalence suites run the
/// engines against each other and CI keeps both fallbacks covered.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_EXECIR_H
#define DPO_VM_EXECIR_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace dpo {

/// Decode-only opcodes, numbered directly after the bytecode opcode set
/// so one dense dispatch table serves both. They are synthesized by the
/// decoder only — never serialized, never seen by the peephole. Each
/// fuses one hot adjacent pair (both instructions always retire
/// together: the first of a fused pair can never jump, trap, or fail),
/// executes in one dispatch, and charges the step cost of both:
///
///   StoreLocalImm     locals[A] = B                [PushI/PushF; StoreLocal]
///   CopyLocal         locals[A] = locals[B]        [LoadLocal; StoreLocal]
///   GlobalTidStore    locals[A] = tid wrapped by B [GlobalTidX; StoreLocal]
///   TeeLocal          locals[A] = stack top        [StoreLocal s; LoadLocal s]
///   Push2             push A; push B               [PushI/F; PushI/F]
///   AddTrunc          wrap(l+r) per A              [AddI; TruncI]
///   MulImmTrunc       wrap(top*A) per B            [MulImmI; TruncI]
///   TruncMulAdd       x + wrap(y)*A per B          [TruncI; MulImmAddI]
///   LoadImmAddTrunc   wrap(locals+imm), packed A   [LoadLocalImmAddI; TruncI]
///   LoadLLAdd         push l[x]; push l[a]+l[b]    [LoadLocal; LoadLoadAddI]
///   JmpLL<cc>         branch on l[a] <cc> l[b]     [LoadLocal2; JmpIf<cc>]
///
/// Width/sign operands pack as (width << 1) | signExtend, exactly the
/// TruncI encoding; two slot indices pack as lo | (hi << 32).
///
/// The trace layer adds four more decode-only forms:
///
///   TraceEnter        count a trace entry, fall through       (cost 0)
///   TraceLoop         count an iteration, jump to A           (cost 0)
///   TraceExit         count a side exit, jump to baseline A   (cost 0/1)
///   LoadTrunc         push wrap(locals[A]) per B   [store-to-load forward]
///
/// TraceEnter is the retarget destination for every jump into the trace
/// (it sits immediately before the body, so it needs no operand);
/// TraceLoop is the loop-closing jump back to the first body element;
/// TraceExit is the per-(target, cost) trampoline guards branch to. All
/// three are synthetic — no bytecode instruction corresponds to them —
/// so they cost 0 steps, with one exception: when a guard was inverted,
/// the unconditional Jmp it folded executes only on the exit path, so
/// that trampoline charges the Jmp's step (cost 1). Trampolines can
/// therefore trip the step budget exactly where the baseline's Jmp
/// would have.
#define DPO_FOR_EACH_XOPCODE(X)                                               \
  X(StoreLocalImm) X(CopyLocal) X(GlobalTidStore) X(TeeLocal) X(Push2)        \
  X(AddTrunc) X(MulImmTrunc) X(TruncMulAdd) X(LoadImmAddTrunc) X(LoadLLAdd)   \
  X(JmpLLLTI) X(JmpLLGEI) X(JmpLLLEI) X(JmpLLGTI) X(JmpLLEQ) X(JmpLLNE)       \
  X(JmpLLLTU) X(JmpLLGEU) X(JmpLLLEU) X(JmpLLGTU)                             \
  X(TraceEnter) X(TraceLoop) X(TraceExit) X(LoadTrunc)

enum class XOp : uint16_t {
  BaseMarker = NumOpcodes - 1,
#define DPO_XOP_ENUM(name) name,
  DPO_FOR_EACH_XOPCODE(DPO_XOP_ENUM)
#undef DPO_XOP_ENUM
  Count
};

/// Size of the decoded engine's dispatch table.
constexpr unsigned NumExecOpcodes = (unsigned)XOp::Count;

/// Printable mnemonic covering both opcode spaces.
const char *execOpName(uint16_t Code);

/// True when the decoded instruction's A operand is a code index (base
/// jump ops, the fused JmpLL family, and the trace jumps). In the
/// baseline region A holds a bytecode PC until the decoder's remap pass;
/// in the trace region A is emitted as a final decoded index directly.
inline bool execOpIsJump(uint16_t Code) {
  if (Code < NumOpcodes)
    return isJumpOp((Op)Code);
  return (Code >= (uint16_t)XOp::JmpLLLTI &&
          Code <= (uint16_t)XOp::JmpLLGTU) ||
         Code == (uint16_t)XOp::TraceLoop || Code == (uint16_t)XOp::TraceExit;
}

/// One decoded instruction. 32 bytes, fixed width, cache-line aligned in
/// pairs. On switch-fallback builds Handler stays null and dispatch
/// switches on Code.
struct ExecInstr {
  const void *Handler = nullptr; ///< Direct-threaded dispatch target.
  int64_t A = 0;
  int64_t B = 0;
  uint16_t Code = 0; ///< Op value, or XOp value for decode-only forms.
  uint8_t Cost = 1;  ///< Bytecode steps this instruction accounts for.
  /// Launch-site ordinal, copied verbatim from Instr::C on Op::Launch
  /// (0 elsewhere). Fits in the struct's padding — decoding stays 32B.
  uint32_t C = 0;
};

static_assert(sizeof(ExecInstr) == 32, "decoded instructions are fixed-width");

/// One decoded function. Field names shared with FuncDef on purpose: the
/// interpreter handler bodies (VMHandlers.inc) compile against either.
struct ExecFunc {
  std::vector<ExecInstr> Code;
  unsigned NumLocals = 0;
  unsigned NumParamSlots = 0;
  unsigned FrameBytes = 0;
  bool IsKernel = false;
  bool ReturnsValue = false;
  /// First trace-region index; Code[0, TraceBase) is the baseline
  /// (pair-fused, one-to-one accountable) region. == Code.size() when no
  /// traces were kept.
  unsigned TraceBase = 0;
  /// Where a fresh frame starts executing: 0, or the entry trace's
  /// TraceEnter. Frames suspended mid-run (barriers, child-grid sync,
  /// calls) resume at their saved PC, which is never 0 — the saved value
  /// always points past at least one retired instruction.
  unsigned EntryPC = 0;
};

struct ExecDecodeStats {
  uint64_t InstrsIn = 0;  ///< Bytecode instructions decoded.
  uint64_t InstrsOut = 0; ///< Baseline decoded instructions emitted.
  uint64_t FusedPairs = 0;
  uint64_t TracesFormed = 0; ///< Superblock traces kept (profitable).
  uint64_t TraceInstrs = 0;  ///< Decoded instructions in trace regions.
};

/// A decoded program: one ExecFunc per bytecode function, same indices.
struct ExecProgram {
  std::vector<ExecFunc> Functions;
  ExecDecodeStats Stats;
  bool empty() const { return Functions.empty(); }
};

/// Lowers validated bytecode into the decoded execution IR.
/// \p Handlers maps every value in [0, NumExecOpcodes) to the decoded
/// interpreter's handler address; pass nullptr on switch-fallback builds
/// (Handler fields stay null). \p EnableTraces additionally forms
/// superblock traces after the baseline region (off for
/// ExecMode::DecodedNoTrace). The bytecode must already have passed
/// Device validation — the decoder assumes in-range jump targets, slots,
/// and callee indices.
ExecProgram decodeProgram(const VmProgram &Program,
                          const void *const *Handlers,
                          bool EnableTraces = true);

} // namespace dpo

#endif // DPO_VM_EXECIR_H
