//===--- BytecodeIO.cpp - Versioned VmProgram (de)serialization -----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Image layout (all integers little-endian fixed-width):
//
//   "DPOB"            4-byte magic
//   u32               BytecodeFormatVersion
//   u64               payload length in bytes
//   u64               FNV-1a of the payload bytes
//   payload:
//     u32 function count, then per function:
//       str  name
//       u8   flags (bit0 IsKernel, bit1 ReturnsValue)
//       u32  NumLocals, u32 NumParamSlots, u32 FrameBytes, u32 SharedBytes
//       u32  param count, then per param:
//         u8 kind, u32 pointer depth, u8 qualifiers (bit0 const,
//         bit1 restrict), str name (empty unless kind == Named)
//       u32  instruction count, then per instruction:
//         u8 opcode, i64 A, i64 B, u32 C
//     u32 trap-message count + strings
//     u64 global-image size + raw bytes
//     u32 global-offset count, then (str name, u32 offset) sorted by name
//     u32 launch-site count + strings
//
// str = u32 length + raw bytes. FunctionIndex is not serialized — it is
// derivable (name -> position) and rebuilding it keeps the image
// canonical regardless of unordered_map iteration order.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeIO.h"

#include <algorithm>
#include <cstring>

using namespace dpo;

uint64_t dpo::fnv1a64(std::string_view Bytes, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

const char Magic[4] = {'D', 'P', 'O', 'B'};

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  void u8(uint8_t V) { Out.push_back((char)V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back((char)((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back((char)((V >> (8 * I)) & 0xff));
  }
  void i64(int64_t V) { u64((uint64_t)V); }
  void str(std::string_view S) {
    u32((uint32_t)S.size());
    Out.append(S.data(), S.size());
  }
  void raw(const void *Data, size_t Size) {
    Out.append((const char *)Data, Size);
  }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

//===----------------------------------------------------------------------===//
// Reader — every accessor bounds-checks; the first failure latches and
// subsequent reads return zeros, so parse code can read linearly and
// check ok() at structural boundaries.
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(std::string_view Bytes) : Bytes(Bytes) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Bytes.size(); }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return (uint8_t)Bytes[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= (uint32_t)(uint8_t)Bytes[Pos + I] << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= (uint64_t)(uint8_t)Bytes[Pos + I] << (8 * I);
    Pos += 8;
    return V;
  }
  int64_t i64() { return (int64_t)u64(); }
  std::string str() {
    uint32_t Len = u32();
    if (!need(Len))
      return {};
    std::string S(Bytes.substr(Pos, Len));
    Pos += Len;
    return S;
  }
  std::string_view raw(uint64_t Size) {
    if (!need(Size))
      return {};
    std::string_view V = Bytes.substr(Pos, Size);
    Pos += Size;
    return V;
  }
  /// Guards count-prefixed loops: a corrupt count must not turn into a
  /// multi-gigabyte allocation. Each counted element occupies at least
  /// \p MinElemBytes, so any honest count fits in the remaining bytes.
  bool plausibleCount(uint64_t Count, uint64_t MinElemBytes) {
    if (Count * MinElemBytes <= Bytes.size() - Pos)
      return true;
    Failed = true;
    return false;
  }

private:
  bool need(uint64_t N) {
    if (!Failed && Pos + N <= Bytes.size())
      return true;
    Failed = true;
    return false;
  }
  std::string_view Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

void writeType(Writer &W, const Type &T) {
  W.u8((uint8_t)T.kind());
  W.u32(T.pointerDepth());
  W.u8((T.isConst() ? 1 : 0) | (T.isRestrict() ? 2 : 0));
  W.str(T.kind() == BuiltinKind::Named ? T.name() : std::string_view());
}

bool readType(Reader &R, Type &Out, std::string &Error) {
  uint8_t Kind = R.u8();
  uint32_t Depth = R.u32();
  uint8_t Quals = R.u8();
  std::string Name = R.str();
  if (!R.ok())
    return false;
  if (Kind > (uint8_t)BuiltinKind::Named) {
    Error = "invalid type kind " + std::to_string(Kind);
    return false;
  }
  if ((BuiltinKind)Kind == BuiltinKind::Named) {
    Out = Type::named(std::move(Name), Depth);
  } else {
    if (!Name.empty()) {
      Error = "non-named type carries a name";
      return false;
    }
    Out = Type((BuiltinKind)Kind, Depth);
  }
  Out.setConst(Quals & 1);
  Out.setRestrict(Quals & 2);
  if (Quals & ~3u) {
    Error = "invalid type qualifier bits";
    return false;
  }
  return true;
}

std::string serializePayload(const VmProgram &P) {
  Writer W;

  W.u32((uint32_t)P.Functions.size());
  for (const FuncDef &F : P.Functions) {
    W.str(F.Name);
    W.u8((F.IsKernel ? 1 : 0) | (F.ReturnsValue ? 2 : 0));
    W.u32(F.NumLocals);
    W.u32(F.NumParamSlots);
    W.u32(F.FrameBytes);
    W.u32(F.SharedBytes);
    W.u32((uint32_t)F.ParamTypes.size());
    for (const Type &T : F.ParamTypes)
      writeType(W, T);
    W.u32((uint32_t)F.Code.size());
    for (const Instr &I : F.Code) {
      W.u8((uint8_t)I.Code);
      W.i64(I.A);
      W.i64(I.B);
      W.u32(I.C);
    }
  }

  W.u32((uint32_t)P.TrapMessages.size());
  for (const std::string &M : P.TrapMessages)
    W.str(M);

  W.u64(P.GlobalImage.size());
  if (!P.GlobalImage.empty())
    W.raw(P.GlobalImage.data(), P.GlobalImage.size());

  // GlobalOffsets is an unordered_map; emit sorted by name so equal
  // programs always produce byte-identical images.
  std::vector<std::pair<std::string, unsigned>> Offsets(
      P.GlobalOffsets.begin(), P.GlobalOffsets.end());
  std::sort(Offsets.begin(), Offsets.end());
  W.u32((uint32_t)Offsets.size());
  for (const auto &[Name, Off] : Offsets) {
    W.str(Name);
    W.u32(Off);
  }

  W.u32((uint32_t)P.LaunchSiteNames.size());
  for (const std::string &S : P.LaunchSiteNames)
    W.str(S);

  return W.take();
}

bool deserializePayload(std::string_view Payload, VmProgram &P,
                        std::string &Error) {
  Reader R(Payload);

  uint32_t NumFuncs = R.u32();
  if (!R.plausibleCount(NumFuncs, 30)) {
    Error = "implausible function count";
    return false;
  }
  P.Functions.reserve(NumFuncs);
  for (uint32_t FI = 0; FI < NumFuncs; ++FI) {
    FuncDef F;
    F.Name = R.str();
    uint8_t Flags = R.u8();
    if (Flags & ~3u) {
      Error = "invalid function flags";
      return false;
    }
    F.IsKernel = Flags & 1;
    F.ReturnsValue = Flags & 2;
    F.NumLocals = R.u32();
    F.NumParamSlots = R.u32();
    F.FrameBytes = R.u32();
    F.SharedBytes = R.u32();

    uint32_t NumParams = R.u32();
    if (!R.plausibleCount(NumParams, 10)) {
      Error = "implausible parameter count in '" + F.Name + "'";
      return false;
    }
    F.ParamTypes.reserve(NumParams);
    for (uint32_t PI = 0; PI < NumParams; ++PI) {
      Type T(BuiltinKind::Int);
      if (!readType(R, T, Error)) {
        if (Error.empty())
          Error = "truncated parameter type in '" + F.Name + "'";
        return false;
      }
      F.ParamTypes.push_back(std::move(T));
    }

    uint32_t NumInstrs = R.u32();
    if (!R.plausibleCount(NumInstrs, 21)) {
      Error = "implausible instruction count in '" + F.Name + "'";
      return false;
    }
    F.Code.reserve(NumInstrs);
    for (uint32_t II = 0; II < NumInstrs; ++II) {
      Instr I;
      uint8_t Op8 = R.u8();
      I.A = R.i64();
      I.B = R.i64();
      I.C = R.u32();
      if (Op8 >= NumOpcodes) {
        Error = "invalid opcode " + std::to_string(Op8) + " in '" + F.Name +
                "'";
        return false;
      }
      I.Code = (Op)Op8;
      F.Code.push_back(I);
    }

    if (!R.ok()) {
      Error = "truncated function record";
      return false;
    }
    if (P.FunctionIndex.count(F.Name)) {
      Error = "duplicate function '" + F.Name + "'";
      return false;
    }
    P.FunctionIndex[F.Name] = (unsigned)P.Functions.size();
    P.Functions.push_back(std::move(F));
  }

  uint32_t NumTraps = R.u32();
  if (!R.plausibleCount(NumTraps, 4)) {
    Error = "implausible trap-message count";
    return false;
  }
  P.TrapMessages.reserve(NumTraps);
  for (uint32_t I = 0; I < NumTraps; ++I)
    P.TrapMessages.push_back(R.str());

  uint64_t ImageSize = R.u64();
  std::string_view Image = R.raw(ImageSize);
  if (!R.ok()) {
    Error = "truncated global image";
    return false;
  }
  P.GlobalImage.assign(Image.begin(), Image.end());

  uint32_t NumGlobals = R.u32();
  if (!R.plausibleCount(NumGlobals, 8)) {
    Error = "implausible global count";
    return false;
  }
  for (uint32_t I = 0; I < NumGlobals; ++I) {
    std::string Name = R.str();
    uint32_t Off = R.u32();
    if (!R.ok())
      break;
    if (Off > P.GlobalImage.size()) {
      Error = "global '" + Name + "' offset out of range";
      return false;
    }
    if (!P.GlobalOffsets.emplace(std::move(Name), Off).second) {
      Error = "duplicate global name";
      return false;
    }
  }

  uint32_t NumSites = R.u32();
  if (!R.plausibleCount(NumSites, 4)) {
    Error = "implausible launch-site count";
    return false;
  }
  P.LaunchSiteNames.reserve(NumSites);
  for (uint32_t I = 0; I < NumSites; ++I)
    P.LaunchSiteNames.push_back(R.str());

  if (!R.ok()) {
    Error = "truncated payload";
    return false;
  }
  if (!R.atEnd()) {
    Error = "trailing bytes after payload";
    return false;
  }
  return true;
}

} // namespace

std::string dpo::serializeVmProgram(const VmProgram &Program) {
  std::string Payload = serializePayload(Program);
  Writer W;
  W.raw(Magic, sizeof(Magic));
  W.u32(BytecodeFormatVersion);
  W.u64(Payload.size());
  W.u64(fnv1a64(Payload));
  std::string Image = W.take();
  Image += Payload;
  return Image;
}

bool dpo::deserializeVmProgram(std::string_view Image, VmProgram &Out,
                               std::string &Error) {
  Reader R(Image);
  std::string_view Head = R.raw(sizeof(Magic));
  if (!R.ok() || std::memcmp(Head.data(), Magic, sizeof(Magic)) != 0) {
    Error = "not a dpopt bytecode image (bad magic)";
    return false;
  }
  uint32_t Version = R.u32();
  if (!R.ok()) {
    Error = "truncated header";
    return false;
  }
  if (Version != BytecodeFormatVersion) {
    Error = "bytecode format version " + std::to_string(Version) +
            " (expected " + std::to_string(BytecodeFormatVersion) + ")";
    return false;
  }
  uint64_t PayloadLen = R.u64();
  uint64_t Checksum = R.u64();
  std::string_view Payload = R.raw(PayloadLen);
  if (!R.ok() || !R.atEnd()) {
    Error = "payload length mismatch";
    return false;
  }
  if (fnv1a64(Payload) != Checksum) {
    Error = "payload checksum mismatch (corrupt image)";
    return false;
  }

  VmProgram P;
  if (!deserializePayload(Payload, P, Error))
    return false;
  Out = std::move(P);
  return true;
}
