//===--- Bytecode.h - Instruction set for the GPU bytecode VM ----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small stack bytecode for functionally executing the CUDA-C subset.
/// Values are 8-byte slots interpreted as int64 or double per instruction;
/// unsigned semantics get dedicated opcodes. dim3 values occupy three
/// consecutive slots/locals. The VM exists to prove that transformed
/// kernels compute exactly what the originals compute — it is a functional
/// model, not a timing model (timing lives in src/sim).
///
/// The opcode set is defined once through DPO_FOR_EACH_OPCODE so the
/// enum, the printable names, and the interpreter's dispatch table cannot
/// drift out of sync. The opcodes after Trap are *superinstructions*:
/// they are never emitted by the AST compiler directly, only synthesized
/// by the peephole optimizer (vm/Peephole.cpp) from the base sequences
/// they replace, and they carry identical semantics.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_BYTECODE_H
#define DPO_VM_BYTECODE_H

#include "ast/Type.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dpo {

// clang-format off
#define DPO_FOR_EACH_OPCODE(X)                                                \
  /* Constants and locals. */                                                 \
  X(PushI)      /* A = imm (int64) */                                         \
  X(PushF)      /* A = imm (double, bit-stored) */                            \
  X(LoadLocal)  /* A = local slot index */                                    \
  X(StoreLocal)                                                               \
  X(Dup)                                                                      \
  X(Pop)                                                                      \
  X(Swap)                                                                     \
  /* Device memory (address on stack below value for stores). */              \
  X(LdI8) X(LdU8) X(LdI16) X(LdU16) X(LdI32) X(LdU32) X(LdI64)                \
  X(LdF32) X(LdF64)                                                           \
  X(StI8) X(StI16) X(StI32) X(StI64) X(StF32) X(StF64)                        \
  /* Frame memory: push the address of an address-taken local (A = its       \
     frame-memory offset). */                                                 \
  X(FrameAddr)                                                                \
  /* Integer arithmetic (top = rhs). */                                       \
  X(AddI) X(SubI) X(MulI) X(DivI) X(DivU) X(RemI) X(RemU)                     \
  X(Shl) X(ShrI) X(ShrU)                                                      \
  X(BitAnd) X(BitOr) X(BitXor) X(BitNot) X(NegI)                              \
  /* Integer comparisons -> 0/1. */                                           \
  X(CmpEQ) X(CmpNE) X(CmpLTI) X(CmpLEI) X(CmpGTI) X(CmpGEI)                   \
  X(CmpLTU) X(CmpLEU) X(CmpGTU) X(CmpGEU)                                     \
  X(LogicalNot)                                                               \
  /* Floating point (doubles on the stack). */                                \
  X(AddF) X(SubF) X(MulF) X(DivF) X(NegF)                                     \
  X(CmpEQF) X(CmpNEF) X(CmpLTF) X(CmpLEF) X(CmpGTF) X(CmpGEF)                 \
  /* Conversions. */                                                          \
  X(I2F)      /* int64 -> double */                                           \
  X(U2F)      /* uint64 -> double */                                          \
  X(F2I)      /* double -> int64 (truncating) */                              \
  X(F2Single) /* double -> float precision -> double */                       \
  X(TruncI)   /* A = byte width, B = 1 if sign-extend: wrap to width */       \
  /* Control flow (A = absolute instruction index). */                        \
  X(Jmp) X(JmpIfZero) X(JmpIfNotZero)                                         \
  /* Calls. A = function index, B = argument slot count (dim3 expanded). */   \
  X(Call)                                                                     \
  X(Ret)     /* Return with a value on the stack. */                          \
  X(RetVoid)                                                                  \
  /* Special registers. A encodes dim*4+component (dim: 0 threadIdx,         \
     1 blockIdx, 2 blockDim, 3 gridDim; component 0..2). */                   \
  X(SReg)                                                                     \
  /* Shared memory: push this block's shared segment base address. */         \
  X(SharedBase)                                                               \
  /* Barriers / fences. */                                                    \
  X(SyncThreads)                                                              \
  X(ThreadFence) /* No-op in the sequential VM (memory is coherent). */       \
  /* Warp/block collectives (cooperative block mode). WarpShfl: A = mode     \
     (0 idx, 1 up, 2 down, 3 xor), stack [mask, value, lane] -> [result].    \
     WarpBallot: stack [mask, predicate] -> [lane bitmask]. BlockReduce:     \
     A = kind (0 add, 1 min, 2 max), stack [value] -> [block-wide result].   \
     Each parks the thread like SyncThreads; the cooperative scheduler       \
     resolves the group and deposits results (see vm/VM.cpp). */             \
  X(WarpShfl)                                                                 \
  X(WarpBallot)                                                               \
  X(BlockReduce)                                                              \
  /* Atomics (address, value on stack; push old value). Width in A (4 or     \
     8), B = 1 for signed element types. */                                   \
  X(AtomicAdd) X(AtomicMax) X(AtomicMin) X(AtomicExch) X(AtomicCAS)           \
  X(AtomicOr) X(AtomicAnd)                                                    \
  /* Kernel launch. A = function index, B = argument slot count. The stack   \
     holds [args..., gridX, gridY, gridZ, blockX, blockY, blockZ] with the   \
     block dims on top. */                                                    \
  X(Launch)                                                                   \
  /* Host-only intrinsics. */                                                 \
  X(CudaMalloc)      /* [ptrAddr, bytes] -> 0 */                              \
  X(CudaFree)        /* [ptr] -> 0 */                                         \
  X(CudaMemset)      /* [ptr, value, bytes] -> 0 */                           \
  X(CudaMemcpy)      /* [dst, src, bytes, kind] -> 0 */                       \
  X(CudaSync)        /* Drain pending launches. */                            \
  /* Math intrinsics. A selects the function (MathFn). */                     \
  X(Math1) /* One double operand. */                                          \
  X(Math2) /* Two double operands. */                                         \
  X(MinI) X(MaxI) X(MinU) X(MaxU)                                             \
  /* Speculation guard: [n, k] -> [n <= k] (unsigned compare), counting       \
     the pass/fail outcome in VmStats so speculative-serialization hit        \
     rates are observable. Emitted for __dpo_spec_guard(n, k) calls. */       \
  X(SpecGuard)                                                                \
  X(Trap) /* A = trap message index; aborts execution. */                     \
  /*===--- Superinstructions (synthesized by vm/Peephole.cpp only) ---===*/   \
  /* Fused local/immediate pushes and arithmetic. */                          \
  X(LoadLocal2)      /* push locals[A]; push locals[B] */                     \
  X(LoadLocalImmAddI)/* push locals[A] + B */                                 \
  X(LoadLoadAddI)    /* push locals[A] + locals[B] */                         \
  X(AddImmI)         /* top += A */                                           \
  X(MulImmI)         /* top *= A */                                           \
  X(MulImmAddI)      /* [x, y] -> [x + y*A]  (array address formation) */     \
  X(IncLocalI32)     /* locals[A] = (int32)(locals[A] + B) */                 \
  X(IncLocalI64)     /* locals[A] += B */                                     \
  X(GlobalTidX)      /* push blockIdx.x*blockDim.x+threadIdx.x wrapped to    \
                        uint32 (B=0) or int32 (B=1) */                        \
  /* Fused compare-and-branch (pop rhs, pop lhs; A = target). */              \
  X(JmpIfLTI) X(JmpIfGEI) X(JmpIfLEI) X(JmpIfGTI)                             \
  X(JmpIfEQ) X(JmpIfNE)                                                       \
  X(JmpIfLTU) X(JmpIfGEU) X(JmpIfLEU) X(JmpIfGTU)                             \
  /* LoadLocal-indexed addressing: addr = locals[A] + locals[B]*width,       \
     with the element width taken from the opcode and both the add and the  \
     scale wrapping exactly as the base sequence                             \
     [LoadLocal2 A,B; MulImmAddI width; Ld/St] wraps. Synthesized by the    \
     dataflow peephole once the index local is provably normalized.  */      \
  X(LdI32Idx) X(LdU32Idx) X(LdI64Idx) X(LdF32Idx) X(LdF64Idx)                 \
  /* Scaled access with base and index on the stack:                         \
     Ld*Sc: [base, idx] -> [load(base + idx*width)];                         \
     St*Sc: [base, idx, value] -> [] (store to base + idx*width).            \
     Replaces [MulImmAddI width; Ld/St] when width matches the element. */   \
  X(LdI32Sc) X(LdU32Sc) X(LdI64Sc) X(LdF32Sc) X(LdF64Sc)                      \
  X(StI32Sc) X(StI64Sc) X(StF32Sc) X(StF64Sc)
// clang-format on

enum class Op : uint8_t {
#define DPO_OPCODE_ENUM(name) name,
  DPO_FOR_EACH_OPCODE(DPO_OPCODE_ENUM)
#undef DPO_OPCODE_ENUM
};

/// Number of opcodes (also the size of the interpreter's dispatch table).
constexpr unsigned NumOpcodes = 0
#define DPO_OPCODE_COUNT(name) +1
    DPO_FOR_EACH_OPCODE(DPO_OPCODE_COUNT)
#undef DPO_OPCODE_COUNT
    ;

/// Printable opcode mnemonic (for disassembly, tests, and diagnostics).
inline const char *opName(Op Code) {
  static const char *const Names[NumOpcodes] = {
#define DPO_OPCODE_NAME(name) #name,
      DPO_FOR_EACH_OPCODE(DPO_OPCODE_NAME)
#undef DPO_OPCODE_NAME
  };
  return (unsigned)Code < NumOpcodes ? Names[(unsigned)Code] : "<bad-op>";
}

/// True for every opcode whose A operand is an absolute instruction index
/// (the peephole pass remaps these when instructions move).
inline bool isJumpOp(Op Code) {
  switch (Code) {
  case Op::Jmp:
  case Op::JmpIfZero:
  case Op::JmpIfNotZero:
  case Op::JmpIfLTI:
  case Op::JmpIfGEI:
  case Op::JmpIfLEI:
  case Op::JmpIfGTI:
  case Op::JmpIfEQ:
  case Op::JmpIfNE:
  case Op::JmpIfLTU:
  case Op::JmpIfGEU:
  case Op::JmpIfLEU:
  case Op::JmpIfGTU:
    return true;
  default:
    return false;
  }
}

/// Marks every instruction index that is the target of some jump —
/// positions no fusion window may cross. Shared by the peephole
/// (vm/Peephole.cpp) and the decoder (vm/ExecIR.cpp) so the two layers
/// cannot drift on what counts as a jump target.
template <class FuncT>
inline std::vector<uint8_t> computeJumpTargetFlags(const FuncT &F) {
  std::vector<uint8_t> Target(F.Code.size() + 1, 0);
  for (const auto &I : F.Code)
    if (isJumpOp(I.Code) && (uint64_t)I.A <= F.Code.size())
      Target[I.A] = 1;
  return Target;
}

/// Element width in bytes of the indexed/scaled load-store
/// superinstructions (the scale the fused MulImmAddI applied), 0 for
/// every other opcode.
inline unsigned idxOpWidth(Op Code) {
  switch (Code) {
  case Op::LdI32Idx:
  case Op::LdU32Idx:
  case Op::LdF32Idx:
  case Op::LdI32Sc:
  case Op::LdU32Sc:
  case Op::LdF32Sc:
  case Op::StI32Sc:
  case Op::StF32Sc:
    return 4;
  case Op::LdI64Idx:
  case Op::LdF64Idx:
  case Op::LdI64Sc:
  case Op::LdF64Sc:
  case Op::StI64Sc:
  case Op::StF64Sc:
    return 8;
  default:
    return 0;
  }
}

enum class MathFn : uint8_t {
  Sqrt, Ceil, Floor, Fabs, Exp, Log, Pow, Fmin, Fmax, Tanh,
};

/// How a Device executes validated bytecode (see vm/ExecIR.h):
///  - Decoded: lower to the fixed-width decoded execution IR at load time,
///    form superblock traces across basic-block boundaries, and run the
///    direct-threaded decoded loop (the default);
///  - DecodedNoTrace: the decoded loop with trace formation disabled
///    (pair fusions only — the PR 5 behavior, kept as an escape hatch);
///  - Bytecode: interpret the portable bytecode directly (the fallback
///    path, kept fully covered by CI);
///  - Auto: Decoded unless the DPO_VM_EXEC environment override selects
///    another engine ("bytecode" or "decoded-notrace").
/// All engines retire identical step counts (decoded fusions and traces
/// carry the step cost of the instructions they replace), so VmStats,
/// grid logs, and the empirical tuner's pricing are bit-identical across
/// modes.
enum class ExecMode : uint8_t { Auto, Bytecode, Decoded, DecodedNoTrace };

struct Instr {
  Op Code;
  int64_t A = 0;
  int64_t B = 0;
  /// Launch-site ordinal for Op::Launch (1-based index into
  /// VmProgram::LaunchSiteNames; 0 = no site attached). Other opcodes
  /// leave it 0. Carried in the instruction so every execution engine
  /// (bytecode, decoded, traced) tags grid-log records identically.
  uint32_t C = 0;
};

/// One compiled function.
struct FuncDef {
  std::string Name;
  bool IsKernel = false;
  bool ReturnsValue = false;
  /// Total local slots (params first; dim3 params use 3 slots each).
  unsigned NumLocals = 0;
  /// Slot count occupied by parameters.
  unsigned NumParamSlots = 0;
  /// Parameter types in source order (dim3 expands to 3 slots).
  std::vector<Type> ParamTypes;
  /// Bytes of frame memory for address-taken locals.
  unsigned FrameBytes = 0;
  /// Bytes of shared memory statically declared in this function.
  unsigned SharedBytes = 0;
  std::vector<Instr> Code;
};

/// Entry normalization spec for one parameter slot: 0 = the slot is
/// taken raw (pointers, 8-byte integers, doubles, opaque types), else
/// (width << 1) | signExtend — exactly the TruncI the compiler's
/// normalizeInt would emit for the type.
///
/// The VM wraps every parameter slot to its declared width when a frame
/// is entered (host launch, device launch, and Call all funnel through
/// the same copy), mirroring the hardware ABI where an `int` parameter
/// simply *is* 32 bits. This makes parameter slots carry the same
/// invariant as normalized locals, which is what lets the peephole's
/// dataflow elide parameter-driven TruncIs (vm/Peephole.cpp).
inline uint8_t paramSlotNorm(const Type &T) {
  if (T.isPointer() || !T.isInteger())
    return 0;
  unsigned W = T.storeSizeBytes();
  if (W == 0 || W >= 8)
    return 0;
  return (uint8_t)((W << 1) | (T.isUnsigned() ? 0 : 1));
}

/// Slot range a normalized parameter can hold after frame entry, as
/// closed [Lo, Hi] bounds. Returns false when the slot is raw.
inline bool paramNormRange(uint8_t Norm, int64_t &Lo, int64_t &Hi) {
  if (!Norm)
    return false;
  unsigned W = Norm >> 1;
  bool SignExtend = (Norm & 1) != 0;
  int64_t Half = (int64_t)1 << (8 * W - 1);
  if (SignExtend) {
    Lo = -Half;
    Hi = Half - 1;
  } else {
    Lo = 0;
    Hi = 2 * Half - 1;
  }
  return true;
}

/// Per-slot entry normalization for a whole function, dim3 parameters
/// expanded to three unsigned-32 slots. The vector has
/// \p F.NumParamSlots entries (empty when the function takes none).
inline std::vector<uint8_t> paramNormSpec(const FuncDef &F) {
  std::vector<uint8_t> Spec;
  Spec.reserve(F.NumParamSlots);
  for (const Type &T : F.ParamTypes) {
    if (T.isDim3()) {
      for (int I = 0; I < 3; ++I)
        Spec.push_back((uint8_t)((4 << 1) | 0)); // uint32 components
    } else {
      Spec.push_back(paramSlotNorm(T));
    }
  }
  return Spec;
}

/// A compiled translation unit.
struct VmProgram {
  std::vector<FuncDef> Functions;
  std::unordered_map<std::string, unsigned> FunctionIndex;
  std::vector<std::string> TrapMessages;
  /// Initial device-memory image for globals (offset from GlobalBase).
  std::vector<uint8_t> GlobalImage;
  /// Global variable name -> offset in GlobalImage.
  std::unordered_map<std::string, unsigned> GlobalOffsets;
  /// Stable launch-site names, indexed by Instr::C - 1 on Op::Launch.
  /// A site is "<caller>-><kernel>#<ordinal>" in source emission order,
  /// so the same source always yields the same site names — the key the
  /// profile subsystem (src/profile) aggregates grid logs under.
  std::vector<std::string> LaunchSiteNames;

  const FuncDef *find(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
  }
};

} // namespace dpo

#endif // DPO_VM_BYTECODE_H
