//===--- Bytecode.h - Instruction set for the GPU bytecode VM ----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small stack bytecode for functionally executing the CUDA-C subset.
/// Values are 8-byte slots interpreted as int64 or double per instruction;
/// unsigned semantics get dedicated opcodes. dim3 values occupy three
/// consecutive slots/locals. The VM exists to prove that transformed
/// kernels compute exactly what the originals compute — it is a functional
/// model, not a timing model (timing lives in src/sim).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_BYTECODE_H
#define DPO_VM_BYTECODE_H

#include "ast/Type.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dpo {

enum class Op : uint8_t {
  // Constants and locals.
  PushI,     ///< A = imm (int64)
  PushF,     ///< A = imm (double, bit-stored)
  LoadLocal, ///< A = local slot index
  StoreLocal,
  Dup,
  Pop,
  Swap,

  // Device memory (address on stack below value for stores).
  LdI8, LdU8, LdI16, LdU16, LdI32, LdU32, LdI64, LdF32, LdF64,
  StI8, StI16, StI32, StI64, StF32, StF64,

  // Frame memory: push the address of an address-taken local (A = its
  // frame-memory offset).
  FrameAddr,

  // Integer arithmetic (top = rhs).
  AddI, SubI, MulI, DivI, DivU, RemI, RemU, Shl, ShrI, ShrU,
  BitAnd, BitOr, BitXor, BitNot, NegI,
  // Integer comparisons -> 0/1.
  CmpEQ, CmpNE, CmpLTI, CmpLEI, CmpGTI, CmpGEI, CmpLTU, CmpLEU, CmpGTU,
  CmpGEU,
  LogicalNot,

  // Floating point (doubles on the stack).
  AddF, SubF, MulF, DivF, NegF,
  CmpEQF, CmpNEF, CmpLTF, CmpLEF, CmpGTF, CmpGEF,

  // Conversions.
  I2F,      ///< int64 -> double
  U2F,      ///< uint64 -> double
  F2I,      ///< double -> int64 (truncating)
  F2Single, ///< double -> float precision -> double
  TruncI,   ///< A = byte width, B = 1 if sign-extend: wrap to width

  // Control flow (A = absolute instruction index).
  Jmp, JmpIfZero, JmpIfNotZero,

  // Calls. A = function index, B = argument slot count (dim3 args expanded).
  Call,
  Ret,     ///< Return with a value on the stack.
  RetVoid,

  // Special registers. A encodes dim*4+component (dim: 0 threadIdx,
  // 1 blockIdx, 2 blockDim, 3 gridDim; component 0..2).
  SReg,

  // Shared memory: push this block's shared segment base address.
  SharedBase,

  // Barriers / fences.
  SyncThreads,
  ThreadFence, ///< No-op in the sequential VM (memory is always coherent).

  // Atomics (address, value on stack; push old value). Width in A (4 or 8).
  AtomicAdd, AtomicMax, AtomicMin, AtomicExch, AtomicCAS, AtomicOr,
  AtomicAnd,

  // Kernel launch. A = function index, B = argument slot count. The stack
  // holds [args..., gridX, gridY, gridZ, blockX, blockY, blockZ] with the
  // block dims on top.
  Launch,

  // Host-only intrinsics.
  CudaMalloc,      ///< [ptrAddr, bytes] -> 0
  CudaFree,        ///< [ptr] -> 0
  CudaMemset,      ///< [ptr, value, bytes] -> 0
  CudaMemcpy,      ///< [dst, src, bytes, kind] -> 0
  CudaSync,        ///< Drain pending launches.

  // Math intrinsics. A selects the function (MathFn).
  Math1, ///< One double operand.
  Math2, ///< Two double operands.
  MinI, MaxI, MinU, MaxU,

  Trap, ///< A = trap message index; aborts execution.
};

enum class MathFn : uint8_t {
  Sqrt, Ceil, Floor, Fabs, Exp, Log, Pow, Fmin, Fmax, Tanh,
};

struct Instr {
  Op Code;
  int64_t A = 0;
  int64_t B = 0;
};

/// One compiled function.
struct FuncDef {
  std::string Name;
  bool IsKernel = false;
  bool ReturnsValue = false;
  /// Total local slots (params first; dim3 params use 3 slots each).
  unsigned NumLocals = 0;
  /// Slot count occupied by parameters.
  unsigned NumParamSlots = 0;
  /// Parameter types in source order (dim3 expands to 3 slots).
  std::vector<Type> ParamTypes;
  /// Bytes of frame memory for address-taken locals.
  unsigned FrameBytes = 0;
  /// Bytes of shared memory statically declared in this function.
  unsigned SharedBytes = 0;
  std::vector<Instr> Code;
};

/// A compiled translation unit.
struct VmProgram {
  std::vector<FuncDef> Functions;
  std::unordered_map<std::string, unsigned> FunctionIndex;
  std::vector<std::string> TrapMessages;
  /// Initial device-memory image for globals (offset from GlobalBase).
  std::vector<uint8_t> GlobalImage;
  /// Global variable name -> offset in GlobalImage.
  std::unordered_map<std::string, unsigned> GlobalOffsets;

  const FuncDef *find(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
  }
};

} // namespace dpo

#endif // DPO_VM_BYTECODE_H
