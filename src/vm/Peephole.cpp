//===--- Peephole.cpp ----------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/Peephole.h"

#include "vm/SlotOps.h"

#include <cstring>
#include <vector>

using namespace dpo;

namespace {

// Folding must compute exactly what execution computes: both sides use
// the shared slot arithmetic from vm/SlotOps.h.
double asDouble(int64_t Bits) { return slotAsDouble(Bits); }
int64_t asBits(double D) { return slotFromDouble(D); }
int64_t wrapTo(int64_t V, int64_t Width, int64_t SignExtend) {
  return wrapToWidth(V, Width, SignExtend);
}

//===----------------------------------------------------------------------===//
// Value ranges: which values can an instruction leave on the stack?
//
// A per-function iterative dataflow (not just store-site pattern
// matching): an abstract interpreter walks the code simulating the
// operand stack over ranges, merges every store into per-slot
// invariants, and iterates to a fixpoint so ranges propagate through
// AddImmI / LoadLoadAddI / IncLocal chains and across loads and stores
// of other slots. Parameter slots start from the frame-entry
// normalization contract (paramNormSpec in Bytecode.h): the VM wraps
// integer parameters to their declared widths when a frame is entered,
// so an `int` parameter is a provable int32 — which is what licenses
// eliding the parameter-driven re-wraps the old analysis had to keep.
//===----------------------------------------------------------------------===//

// The interval domain and its combinators (rAdd, rMul, rTruncOf, ...)
// live in vm/SlotOps.h so the trace former (vm/ExecIR.cpp) can consume
// the fixpoint this file publishes through slotInvariantRanges().
using Range = SlotRange;

Range rangeOfTrunc(int64_t Width, int64_t SignExtend) {
  return slotRangeOfTrunc(Width, SignExtend);
}

bool rangeFits(const Range &R, int64_t Width, int64_t SignExtend) {
  return slotRangeFits(R, Width, SignExtend);
}

bool isCompare(Op C) {
  switch (C) {
  case Op::CmpEQ:
  case Op::CmpNE:
  case Op::CmpLTI:
  case Op::CmpLEI:
  case Op::CmpGTI:
  case Op::CmpGEI:
  case Op::CmpLTU:
  case Op::CmpLEU:
  case Op::CmpGTU:
  case Op::CmpGEU:
  case Op::CmpEQF:
  case Op::CmpNEF:
  case Op::CmpLTF:
  case Op::CmpLEF:
  case Op::CmpGTF:
  case Op::CmpGEF:
  case Op::LogicalNot:
    return true;
  default:
    return false;
  }
}

/// Range of an SReg read. runGrid rejects blocks over 1024 threads, so
/// threadIdx components stay below 1024 and blockDim components at or
/// below 1024 whenever a thread executes; blockIdx/gridDim span uint32.
Range sregRange(unsigned Builtin) {
  if (Builtin == 0)
    return {true, 0, 1023};
  if (Builtin == 2)
    return {true, 1, 1024};
  return {true, 0, (int64_t)UINT32_MAX};
}

/// Conservative range of the value \p I pushes, judged from the
/// instruction alone plus the per-slot invariants (empty = none).
Range producerRange(const Instr &I, const std::vector<Range> &SlotRanges) {
  if (isCompare(I.Code))
    return {true, 0, 1};
  switch (I.Code) {
  case Op::PushI:
    return {true, I.A, I.A};
  case Op::TruncI:
    return rangeOfTrunc(I.A, I.B);
  case Op::SReg:
    return sregRange((unsigned)I.A / 4);
  case Op::GlobalTidX:
    return rangeOfTrunc(4, I.B);
  case Op::LdI8:
    return rangeOfTrunc(1, 1);
  case Op::LdU8:
    return rangeOfTrunc(1, 0);
  case Op::LdI16:
    return rangeOfTrunc(2, 1);
  case Op::LdU16:
    return rangeOfTrunc(2, 0);
  case Op::LdI32:
  case Op::LdI32Idx:
  case Op::LdI32Sc:
    return rangeOfTrunc(4, 1);
  case Op::LdU32:
  case Op::LdU32Idx:
  case Op::LdU32Sc:
    return rangeOfTrunc(4, 0);
  case Op::LoadLocal:
    if ((uint64_t)I.A < SlotRanges.size())
      return SlotRanges[I.A];
    return {};
  default:
    return {};
  }
}

/// Abstract operand stack for the dataflow walk. Popping past the known
/// region (cleared at jump targets / after terminators) yields unknown,
/// which keeps any arity mismatch conservative instead of wrong. A
/// fixed-depth array (overflow degrades to clear, i.e. all-unknown) —
/// this walk runs once per peephole round, so it must stay allocation-
/// free and cache-tight.
struct AbsStack {
  static constexpr unsigned Cap = 128;
  Range S[Cap];
  unsigned Sp = 0;
  void push(const Range &R) {
    if (Sp == Cap)
      clear(); // Conservative: deeper values become unknown.
    else
      S[Sp++] = R;
  }
  Range pop() { return Sp ? S[--Sp] : Range{}; }
  void popN(unsigned N) { Sp = N >= Sp ? 0 : Sp - N; }
  Range top() const { return Sp ? S[Sp - 1] : Range{}; }
  void clear() { Sp = 0; }
};

/// Per-slot store accumulator for one dataflow pass.
struct SlotAcc {
  bool Any = false;
  bool Unknown = false;
  Range R;
  void merge(const Range &V) {
    if (!V.Known) {
      Unknown = true;
      return;
    }
    if (!Any) {
      Any = true;
      R = V;
    } else {
      R.Lo = std::min(R.Lo, V.Lo);
      R.Hi = std::max(R.Hi, V.Hi);
    }
  }
};

/// Entry-state range of every slot: parameters per the frame-entry
/// normalization contract, other locals zero-initialized.
std::vector<Range> slotEntryRanges(const FuncDef &F) {
  std::vector<Range> Entry(F.NumLocals);
  std::vector<uint8_t> Norm = paramNormSpec(F);
  for (unsigned S = 0; S < F.NumLocals; ++S) {
    if (S < F.NumParamSlots) {
      int64_t Lo, Hi;
      if (S < Norm.size() && paramNormRange(Norm[S], Lo, Hi))
        Entry[S] = {true, Lo, Hi};
      else
        Entry[S] = {}; // Raw 64-bit slot: pointer, long, double, opaque.
    } else {
      Entry[S] = {true, 0, 0};
    }
  }
  return Entry;
}

/// One abstract-interpretation pass over \p F with slot estimates
/// \p Cur. Returns the per-slot ranges implied by every store plus the
/// entry state. When \p TopBefore is non-null it is filled with the
/// range of the stack top *before* each instruction executes (what a
/// TruncI at that point would see).
std::vector<Range> dataflowStep(const FuncDef &F,
                                const std::vector<uint8_t> &Target,
                                const std::vector<Range> &CurIn,
                                const VmProgram *Prog,
                                const std::vector<Range> &Entry,
                                std::vector<Range> *TopBefore,
                                bool NeedStores, bool Linear = false) {
  std::vector<SlotAcc> Acc(NeedStores && !Linear ? F.NumLocals : 0);
  // Linear mode (no back edges): execution order is increasing PC, so a
  // load can only observe the entry value and stores at earlier
  // positions — one flow-sensitive pass over a running accumulation IS
  // the fixpoint, and is strictly more precise than iterating the
  // flow-insensitive merge.
  std::vector<Range> Running;
  if (Linear)
    Running = Entry;
  const std::vector<Range> &Cur = Linear ? Running : CurIn;
  AbsStack St;
  auto SlotR = [&](int64_t S) -> Range {
    return (uint64_t)S < Cur.size() ? Cur[S] : Range{};
  };
  auto Store = [&](int64_t S, const Range &V) {
    if (Linear) {
      if ((uint64_t)S < Running.size()) {
        Range &R = Running[S];
        if (!R.Known || !V.Known)
          R = Range{};
        else
          R = {true, std::min(R.Lo, V.Lo), std::max(R.Hi, V.Hi)};
      }
      return;
    }
    if (NeedStores && (uint64_t)S < Acc.size())
      Acc[S].merge(V);
  };

  for (size_t PC = 0; PC < F.Code.size(); ++PC) {
    if (Target[PC])
      St.clear(); // Merge point: predecessors' stacks are unknown here.
    if (TopBefore)
      (*TopBefore)[PC] = St.top();
    const Instr &I = F.Code[PC];
    if (isCompare(I.Code) && I.Code != Op::LogicalNot) {
      St.popN(2); // Int and float comparisons alike: pop 2, push 0/1.
      St.push({true, 0, 1});
      continue;
    }
    switch (I.Code) {
    case Op::PushI:
    case Op::PushF:
      St.push({true, I.A, I.A});
      break;
    case Op::LoadLocal:
      St.push(SlotR(I.A));
      break;
    case Op::StoreLocal:
      Store(I.A, St.pop());
      break;
    case Op::Dup:
      St.push(St.top());
      break;
    case Op::Pop:
      St.pop();
      break;
    case Op::Swap: {
      Range A = St.pop(), B = St.pop();
      St.push(A);
      St.push(B);
      break;
    }
    case Op::LdI8:
    case Op::LdU8:
    case Op::LdI16:
    case Op::LdU16:
    case Op::LdI32:
    case Op::LdU32:
    case Op::LdI64:
    case Op::LdF32:
    case Op::LdF64:
      St.pop();
      St.push(producerRange(I, Cur));
      break;
    case Op::StI8:
    case Op::StI16:
    case Op::StI32:
    case Op::StI64:
    case Op::StF32:
    case Op::StF64:
      St.popN(2);
      break;
    case Op::FrameAddr:
    case Op::SharedBase:
      St.push({});
      break;
    case Op::AddI: {
      Range R = St.pop(), L = St.pop();
      St.push(rAdd(L, R));
      break;
    }
    case Op::SubI: {
      Range R = St.pop(), L = St.pop();
      St.push(rSub(L, R));
      break;
    }
    case Op::MulI: {
      Range R = St.pop(), L = St.pop();
      St.push(rMul(L, R));
      break;
    }
    case Op::DivI: {
      Range R = St.pop(), L = St.pop();
      St.push(rDivPos(L, R));
      break;
    }
    case Op::RemI: {
      Range R = St.pop(), L = St.pop();
      St.push(rRemPos(L, R));
      break;
    }
    case Op::DivU: {
      // Nonnegative int64 ranges behave identically under / and u/.
      Range R = St.pop(), L = St.pop();
      St.push(L.Known && L.Lo >= 0 ? rDivPos(L, R) : Range{});
      break;
    }
    case Op::RemU: {
      Range R = St.pop(), L = St.pop();
      St.push(rRemPos(L, R));
      break;
    }
    case Op::MinI: {
      Range R = St.pop(), L = St.pop();
      St.push(rMinI(L, R));
      break;
    }
    case Op::MaxI: {
      Range R = St.pop(), L = St.pop();
      St.push(rMaxI(L, R));
      break;
    }
    case Op::MinU:
    case Op::MaxU: {
      // Sound only when both sides are provably nonnegative.
      Range R = St.pop(), L = St.pop();
      if (L.Known && R.Known && L.Lo >= 0 && R.Lo >= 0)
        St.push(I.Code == Op::MinU ? rMinI(L, R) : rMaxI(L, R));
      else
        St.push({});
      break;
    }
    case Op::BitAnd: {
      Range R = St.pop(), L = St.pop();
      if (L.Known && R.Known && L.Lo >= 0 && R.Lo >= 0)
        St.push({true, 0, std::min(L.Hi, R.Hi)});
      else
        St.push({});
      break;
    }
    case Op::Shl:
    case Op::ShrI:
    case Op::ShrU:
    case Op::BitOr:
    case Op::BitXor:
      St.popN(2);
      St.push({});
      break;
    case Op::BitNot: {
      Range V = St.pop();
      St.push(V.Known ? Range{true, ~V.Hi, ~V.Lo} : Range{});
      break;
    }
    case Op::NegI: {
      Range V = St.pop();
      if (V.Known && V.Lo != INT64_MIN)
        St.push({true, -V.Hi, -V.Lo});
      else
        St.push({});
      break;
    }
    case Op::LogicalNot:
      St.pop();
      St.push({true, 0, 1});
      break;
    case Op::AddF:
    case Op::SubF:
    case Op::MulF:
    case Op::DivF:
    case Op::Math2:
      St.popN(2);
      St.push({});
      break;
    case Op::NegF:
    case Op::I2F:
    case Op::U2F:
    case Op::F2I:
    case Op::F2Single:
    case Op::Math1:
      St.pop();
      St.push({});
      break;
    case Op::TruncI: {
      Range V = St.pop();
      St.push(rTruncOf(V, I.A, I.B));
      break;
    }
    case Op::Jmp:
      St.clear();
      break;
    case Op::JmpIfZero:
    case Op::JmpIfNotZero:
      St.pop();
      break;
    case Op::Call: {
      St.popN((unsigned)I.B);
      if (!Prog) {
        St.clear(); // Unknown callee arity: stay conservative.
      } else if ((uint64_t)I.A < Prog->Functions.size() &&
                 Prog->Functions[I.A].ReturnsValue) {
        St.push({});
      }
      break;
    }
    case Op::Ret:
      St.pop();
      St.clear();
      break;
    case Op::RetVoid:
    case Op::Trap:
      St.clear();
      break;
    case Op::SReg:
      St.push(sregRange((unsigned)I.A / 4));
      break;
    case Op::SyncThreads:
    case Op::ThreadFence:
    case Op::CudaSync:
      break;
    case Op::WarpShfl:
      St.popN(3);
      St.push({});
      break;
    case Op::WarpBallot:
      St.popN(2);
      St.push(rangeOfTrunc(4, false));
      break;
    case Op::BlockReduce:
      St.pop();
      St.push({});
      break;
    case Op::AtomicAdd:
    case Op::AtomicMax:
    case Op::AtomicMin:
    case Op::AtomicExch:
    case Op::AtomicOr:
    case Op::AtomicAnd:
      St.popN(2);
      St.push(I.A == 4 ? rangeOfTrunc(4, I.B != 0) : Range{});
      break;
    case Op::AtomicCAS:
      St.popN(3);
      St.push(I.A == 4 ? rangeOfTrunc(4, I.B != 0) : Range{});
      break;
    case Op::Launch:
      St.popN(6 + (unsigned)I.B);
      break;
    case Op::SpecGuard:
      St.popN(2);
      St.push({true, 0, 1});
      break;
    case Op::CudaMalloc:
      St.popN(2);
      St.push({true, 0, 0});
      break;
    case Op::CudaFree:
      St.pop();
      St.push({true, 0, 0});
      break;
    case Op::CudaMemset:
      St.popN(3);
      St.push({true, 0, 0});
      break;
    case Op::CudaMemcpy:
      St.popN(4);
      St.push({true, 0, 0});
      break;
    case Op::LoadLocal2:
      St.push(SlotR(I.A));
      St.push(SlotR(I.B));
      break;
    case Op::LoadLocalImmAddI:
      St.push(rAddConst(SlotR(I.A), I.B));
      break;
    case Op::LoadLoadAddI:
      St.push(rAdd(SlotR(I.A), SlotR(I.B)));
      break;
    case Op::AddImmI:
      St.push(rAddConst(St.pop(), I.A));
      break;
    case Op::MulImmI:
      St.push(rMul(St.pop(), {true, I.A, I.A}));
      break;
    case Op::MulImmAddI: {
      Range Y = St.pop(), X = St.pop();
      St.push(rAdd(X, rMul(Y, {true, I.A, I.A})));
      break;
    }
    case Op::IncLocalI32:
      Store(I.A, rangeOfTrunc(4, 1));
      break;
    case Op::IncLocalI64:
      Store(I.A, rAddConst(SlotR(I.A), I.B));
      break;
    case Op::GlobalTidX:
      St.push(rangeOfTrunc(4, I.B));
      break;
    case Op::JmpIfLTI:
    case Op::JmpIfGEI:
    case Op::JmpIfLEI:
    case Op::JmpIfGTI:
    case Op::JmpIfEQ:
    case Op::JmpIfNE:
    case Op::JmpIfLTU:
    case Op::JmpIfGEU:
    case Op::JmpIfLEU:
    case Op::JmpIfGTU:
      St.popN(2);
      break;
    case Op::LdI32Idx:
    case Op::LdU32Idx:
    case Op::LdI64Idx:
    case Op::LdF32Idx:
    case Op::LdF64Idx:
      St.push(producerRange(I, Cur));
      break;
    case Op::LdI32Sc:
    case Op::LdU32Sc:
    case Op::LdI64Sc:
    case Op::LdF32Sc:
    case Op::LdF64Sc:
      St.popN(2);
      St.push(producerRange(I, Cur));
      break;
    case Op::StI32Sc:
    case Op::StI64Sc:
    case Op::StF32Sc:
    case Op::StF64Sc:
      St.popN(3);
      break;
    default:
      // Unmodeled opcode: drop all stack knowledge (sound — subsequent
      // pops read unknown), and poison every slot to be safe (both the
      // iterated accumulators and the Linear-mode running ranges).
      St.clear();
      for (SlotAcc &A : Acc)
        A.Unknown = true;
      for (Range &R : Running)
        R = Range{};
      break;
    }
  }

  if (Linear)
    return Running;
  if (!NeedStores)
    return {};
  std::vector<Range> Out(F.NumLocals);
  for (unsigned S = 0; S < F.NumLocals; ++S) {
    if (Acc[S].Unknown) {
      Out[S] = {};
      continue;
    }
    Range E = Entry[S];
    if (!Acc[S].Any) {
      Out[S] = E;
      continue;
    }
    if (!E.Known) {
      Out[S] = {};
      continue;
    }
    Out[S] = {true, std::min(E.Lo, Acc[S].R.Lo), std::max(E.Hi, Acc[S].R.Hi)};
  }
  return Out;
}

/// The per-function dataflow fixpoint: iterate dataflowStep from an
/// optimistic start, widening still-unstable slots to unknown when the
/// iteration bound is hit, and close with a verification loop that
/// guarantees the published ranges are a post-fixpoint (sound).
///
/// Run ONCE per function, on the pre-peephole bytecode: slot ranges are
/// *dynamic* invariants (bounds on the values a slot holds at runtime),
/// and every peephole rewrite preserves runtime values exactly, so the
/// fixpoint computed here stays sound across all rewrite rounds — only
/// the positional stack-top ranges (computeTopBefore) track the moving
/// instruction stream.
std::vector<Range> computeSlotFixpoint(const FuncDef &F,
                                       const std::vector<uint8_t> &Target,
                                       const VmProgram *Prog) {
  std::vector<Range> Entry = slotEntryRanges(F);
  bool HasBackEdge = false;
  for (size_t I = 0; I < F.Code.size(); ++I)
    if (isJumpOp(F.Code[I].Code) && (uint64_t)F.Code[I].A <= I)
      HasBackEdge = true;
  if (!HasBackEdge)
    return dataflowStep(F, Target, Entry, Prog, Entry, nullptr,
                        /*NeedStores=*/false, /*Linear=*/true);
  std::vector<Range> Cur = Entry;
  bool Stable = false;
  for (int It = 0; It < 4 && !Stable; ++It) {
    std::vector<Range> Next =
        dataflowStep(F, Target, Cur, Prog, Entry, nullptr, true);
    Stable = true;
    for (unsigned S = 0; S < F.NumLocals; ++S)
      if (!rangeEq(Next[S], Cur[S]))
        Stable = false;
    Cur = std::move(Next);
  }
  // Closing loop: any slot whose recomputed range escapes the published
  // one is widened to unknown; unknown only loosens inputs, so this
  // terminates (each pass pins at least one slot) with Cur >= step(Cur).
  while (!Stable) {
    std::vector<Range> Next =
        dataflowStep(F, Target, Cur, Prog, Entry, nullptr, true);
    Stable = true;
    for (unsigned S = 0; S < F.NumLocals; ++S)
      if (!rangeContains(Cur[S], Next[S])) {
        Cur[S] = {};
        Stable = false;
      }
  }
  return Cur;
}

/// One linear stack-only pass filling the range of the stack top before
/// every instruction of the *current* code, against the frozen slot
/// fixpoint (no store bookkeeping, no entry-state allocation).
std::vector<Range> computeTopBefore(const FuncDef &F,
                                    const std::vector<uint8_t> &Target,
                                    const std::vector<Range> &SlotRanges,
                                    const VmProgram *Prog) {
  std::vector<Range> TopBefore(F.Code.size());
  static const std::vector<Range> NoEntry;
  if (!F.Code.empty())
    dataflowStep(F, Target, SlotRanges, Prog, NoEntry, &TopBefore, false);
  return TopBefore;
}

//===----------------------------------------------------------------------===//
// Folding helpers
//===----------------------------------------------------------------------===//

/// Folds `A op B` for the pure integer binary opcodes. Returns false when
/// the opcode is not foldable (or would change trap semantics).
bool foldIntBinary(Op Code, int64_t A, int64_t B, int64_t &Out) {
  uint64_t UA = (uint64_t)A, UB = (uint64_t)B;
  switch (Code) {
  case Op::AddI: Out = addWrap(A, B); return true;
  case Op::SubI: Out = subWrap(A, B); return true;
  case Op::MulI: Out = mulWrap(A, B); return true;
  case Op::DivI:
    if (B == 0 || (A == INT64_MIN && B == -1))
      return false; // Preserve the runtime trap / UB guard.
    Out = A / B;
    return true;
  case Op::DivU:
    if (B == 0)
      return false;
    Out = (int64_t)(UA / UB);
    return true;
  case Op::RemI:
    if (B == 0 || (A == INT64_MIN && B == -1))
      return false;
    Out = A % B;
    return true;
  case Op::RemU:
    if (B == 0)
      return false;
    Out = (int64_t)(UA % UB);
    return true;
  case Op::Shl: Out = (int64_t)(UA << (B & 63)); return true;
  case Op::ShrI: Out = A >> (B & 63); return true;
  case Op::ShrU: Out = (int64_t)(UA >> (B & 63)); return true;
  case Op::BitAnd: Out = A & B; return true;
  case Op::BitOr: Out = A | B; return true;
  case Op::BitXor: Out = A ^ B; return true;
  case Op::CmpEQ: Out = A == B; return true;
  case Op::CmpNE: Out = A != B; return true;
  case Op::CmpLTI: Out = A < B; return true;
  case Op::CmpLEI: Out = A <= B; return true;
  case Op::CmpGTI: Out = A > B; return true;
  case Op::CmpGEI: Out = A >= B; return true;
  case Op::CmpLTU: Out = UA < UB; return true;
  case Op::CmpLEU: Out = UA <= UB; return true;
  case Op::CmpGTU: Out = UA > UB; return true;
  case Op::CmpGEU: Out = UA >= UB; return true;
  case Op::MinI: Out = A < B ? A : B; return true;
  case Op::MaxI: Out = A > B ? A : B; return true;
  case Op::MinU: Out = UA < UB ? A : B; return true;
  case Op::MaxU: Out = UA > UB ? A : B; return true;
  default:
    return false;
  }
}

/// Folds float binaries over bit-stored doubles. Produces either PushF
/// bits (arithmetic) or PushI 0/1 (comparisons).
bool foldFloatBinary(Op Code, int64_t ABits, int64_t BBits, Instr &Out) {
  double A = asDouble(ABits), B = asDouble(BBits);
  switch (Code) {
  case Op::AddF: Out = {Op::PushF, asBits(A + B), 0}; return true;
  case Op::SubF: Out = {Op::PushF, asBits(A - B), 0}; return true;
  case Op::MulF: Out = {Op::PushF, asBits(A * B), 0}; return true;
  case Op::DivF: Out = {Op::PushF, asBits(A / B), 0}; return true;
  case Op::CmpEQF: Out = {Op::PushI, A == B, 0}; return true;
  case Op::CmpNEF: Out = {Op::PushI, A != B, 0}; return true;
  case Op::CmpLTF: Out = {Op::PushI, A < B, 0}; return true;
  case Op::CmpLEF: Out = {Op::PushI, A <= B, 0}; return true;
  case Op::CmpGTF: Out = {Op::PushI, A > B, 0}; return true;
  case Op::CmpGEF: Out = {Op::PushI, A >= B, 0}; return true;
  default:
    return false;
  }
}

/// True when [PushI A; <Code>] is an arithmetic identity on the value
/// below it (x op A == x), so both instructions can be deleted.
bool isIdentityImm(Op Code, int64_t A) {
  switch (Code) {
  case Op::AddI:
  case Op::SubI:
  case Op::Shl:
  case Op::ShrI:
  case Op::ShrU:
  case Op::BitOr:
  case Op::BitXor:
    return A == 0;
  case Op::MulI:
  case Op::DivI:
  case Op::DivU:
    return A == 1;
  case Op::BitAnd:
    return A == -1;
  default:
    return false;
  }
}

/// Maps [Cmp<cc>; JmpIfZero/JmpIfNotZero] to the fused conditional jump.
/// JmpIfZero branches when the comparison is *false* — i.e. on the negated
/// condition; JmpIfNotZero branches on the condition itself.
bool fusedCompareJump(Op Cmp, bool JumpIfTrue, Op &Out) {
  switch (Cmp) {
  case Op::CmpLTI: Out = JumpIfTrue ? Op::JmpIfLTI : Op::JmpIfGEI; return true;
  case Op::CmpLEI: Out = JumpIfTrue ? Op::JmpIfLEI : Op::JmpIfGTI; return true;
  case Op::CmpGTI: Out = JumpIfTrue ? Op::JmpIfGTI : Op::JmpIfLEI; return true;
  case Op::CmpGEI: Out = JumpIfTrue ? Op::JmpIfGEI : Op::JmpIfLTI; return true;
  case Op::CmpEQ: Out = JumpIfTrue ? Op::JmpIfEQ : Op::JmpIfNE; return true;
  case Op::CmpNE: Out = JumpIfTrue ? Op::JmpIfNE : Op::JmpIfEQ; return true;
  case Op::CmpLTU: Out = JumpIfTrue ? Op::JmpIfLTU : Op::JmpIfGEU; return true;
  case Op::CmpLEU: Out = JumpIfTrue ? Op::JmpIfLEU : Op::JmpIfGTU; return true;
  case Op::CmpGTU: Out = JumpIfTrue ? Op::JmpIfGTU : Op::JmpIfLEU; return true;
  case Op::CmpGEU: Out = JumpIfTrue ? Op::JmpIfGEU : Op::JmpIfLTU; return true;
  default:
    return false;
  }
}

/// Base memory-access width for the ops that have indexed/scaled
/// superinstruction forms; 0 otherwise.
unsigned memOpWidth(Op Code) {
  switch (Code) {
  case Op::LdI32:
  case Op::LdU32:
  case Op::LdF32:
  case Op::StI32:
  case Op::StF32:
    return 4;
  case Op::LdI64:
  case Op::LdF64:
  case Op::StI64:
  case Op::StF64:
    return 8;
  default:
    return 0;
  }
}

bool idxLoadFor(Op Ld, Op &Out) {
  switch (Ld) {
  case Op::LdI32: Out = Op::LdI32Idx; return true;
  case Op::LdU32: Out = Op::LdU32Idx; return true;
  case Op::LdI64: Out = Op::LdI64Idx; return true;
  case Op::LdF32: Out = Op::LdF32Idx; return true;
  case Op::LdF64: Out = Op::LdF64Idx; return true;
  default: return false;
  }
}

bool scLoadFor(Op Ld, Op &Out) {
  switch (Ld) {
  case Op::LdI32: Out = Op::LdI32Sc; return true;
  case Op::LdU32: Out = Op::LdU32Sc; return true;
  case Op::LdI64: Out = Op::LdI64Sc; return true;
  case Op::LdF32: Out = Op::LdF32Sc; return true;
  case Op::LdF64: Out = Op::LdF64Sc; return true;
  default: return false;
  }
}

bool scStoreFor(Op St, Op &Out) {
  switch (St) {
  case Op::StI32: Out = Op::StI32Sc; return true;
  case Op::StI64: Out = Op::StI64Sc; return true;
  case Op::StF32: Out = Op::StF32Sc; return true;
  case Op::StF64: Out = Op::StF64Sc; return true;
  default: return false;
  }
}

/// Pushes exactly one value, consumes nothing, has no side effects, and
/// cannot fail — safe to commute with pending address formation (the
/// scaled-store fusion moves address formation *past* such a producer).
/// Unlike isPureProducer this must exclude Dup (it reads the stack).
bool isSafeProducer(Op Code) {
  switch (Code) {
  case Op::PushI:
  case Op::PushF:
  case Op::LoadLocal:
  case Op::SReg:
  case Op::FrameAddr:
  case Op::SharedBase:
  case Op::GlobalTidX:
  case Op::LoadLocalImmAddI:
  case Op::LoadLoadAddI:
    return true;
  default:
    return false;
  }
}

/// Opcodes that push exactly one value and have no side effects: a
/// following Pop deletes the pair.
bool isPureProducer(Op Code) {
  switch (Code) {
  case Op::PushI:
  case Op::PushF:
  case Op::LoadLocal:
  case Op::SReg:
  case Op::FrameAddr:
  case Op::SharedBase:
  case Op::Dup:
  case Op::GlobalTidX:
  case Op::LoadLocalImmAddI:
  case Op::LoadLoadAddI:
    return true;
  default:
    return false;
  }
}

/// Pure pop-1/push-1 opcodes: [op; Pop] == [Pop].
bool isPureUnary(Op Code) {
  switch (Code) {
  case Op::NegI:
  case Op::BitNot:
  case Op::LogicalNot:
  case Op::TruncI:
  case Op::I2F:
  case Op::U2F:
  case Op::F2I:
  case Op::F2Single:
  case Op::NegF:
  case Op::AddImmI:
  case Op::MulImmI:
    return true;
  default:
    return false;
  }
}

/// Pure pop-2/push-1 opcodes: [op; Pop] == [Pop; Pop]. Division and
/// remainder are excluded — their divide-by-zero trap is observable.
bool isPureBinary(Op Code) {
  if (isCompare(Code))
    return true;
  switch (Code) {
  case Op::AddI:
  case Op::SubI:
  case Op::MulI:
  case Op::Shl:
  case Op::ShrI:
  case Op::ShrU:
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::MinI:
  case Op::MaxI:
  case Op::MinU:
  case Op::MaxU:
  case Op::AddF:
  case Op::SubF:
  case Op::MulF:
  case Op::DivF:
  case Op::MulImmAddI:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Pattern matching
//===----------------------------------------------------------------------===//

struct Rewrite {
  unsigned Consumed = 0;
  unsigned Produced = 0;
  Instr Repl[2];
};

/// Tries to match a rewrite starting at \p PC. Patterns are tried longest
/// first; instructions after the first matched one must not be jump
/// targets (checked through \p CanUse). Fusion rules (superinstruction
/// synthesis) only run when \p Fusions is set — folding, dead-code, and
/// TruncI-elision rounds run first so that fusions never capture an
/// instruction a cheaper rewrite would have deleted.
/// True for opcodes that begin at least one first-instruction-keyed
/// rewrite rule; positions whose first opcode is not listed can only
/// match through a second-instruction-keyed rule (see SecondKeyed).
bool firstKeyed(Op Code) {
  switch (Code) {
  case Op::PushI:
  case Op::PushF:
  case Op::LoadLocal:
  case Op::LoadLocal2:
  case Op::SReg:
  case Op::Swap:
  case Op::TruncI:
  case Op::MulImmI:
  case Op::MulImmAddI:
  case Op::LoadLocalImmAddI:
  case Op::AddImmI:
  case Op::Jmp:
  case Op::JmpIfZero:
  case Op::JmpIfNotZero:
    return true;
  default:
    return false;
  }
}

/// Second instructions that key rules regardless of the first opcode
/// (Pop absorption, TruncI elision, compare-and-branch fusion).
bool secondKeyed(Op Code) {
  switch (Code) {
  case Op::Pop:
  case Op::TruncI:
  case Op::JmpIfZero:
  case Op::JmpIfNotZero:
    return true;
  default:
    return false;
  }
}

bool matchAt(const std::vector<Instr> &C, size_t PC, size_t N,
             const std::vector<uint8_t> &Target,
             const std::vector<Range> &SlotRanges,
             const std::vector<Range> &TopBefore, bool Fusions,
             Rewrite &RW) {
  // Fast reject: most positions start no pattern at all.
  if (!firstKeyed(C[PC].Code) &&
      (PC + 1 >= N || Target[PC + 1] || !secondKeyed(C[PC + 1].Code)))
    return false;
  // Bounds and jump-target checks, split so each rule tests opcodes
  // first and pays the (loop) target scan only on a near-match.
  auto Win = [&](size_t Len) { return PC + Len <= N; };
  auto NoTargets = [&](size_t Len) {
    for (size_t I = 1; I < Len; ++I)
      if (Target[PC + I])
        return false;
    return true;
  };
  auto CanUse = [&](size_t Len) { return Win(Len) && NoTargets(Len); };
  const Instr &I0 = C[PC];

  if (Fusions) {
  // --- 7-wide: the global-thread-id idiom -------------------------------
  //   blockIdx.x * blockDim.x + threadIdx.x
  //   SReg(bIdx.x) SReg(bDim.x) MulI TruncI(4,_) SReg(tIdx.x) AddI TruncI(4,s)
  // and the commuted form
  //   threadIdx.x + blockIdx.x * blockDim.x
  //   SReg(tIdx.x) SReg(bIdx.x) SReg(bDim.x) MulI TruncI(4,_) AddI TruncI(4,s)
  // Both wrap to 32 bits exactly as GlobalTidX(B = sign of final trunc)
  // does: truncation is a ring homomorphism, so the intermediate wrap of
  // the product does not change the low 32 bits of the sum.
  if (I0.Code == Op::SReg && CanUse(7)) {
    const Instr *W = &C[PC];
    bool MulFirst = W[0].Code == Op::SReg && W[0].A == 4 + 0 && // blockIdx.x
                    W[1].Code == Op::SReg && W[1].A == 8 + 0 && // blockDim.x
                    W[2].Code == Op::MulI &&                    //
                    W[3].Code == Op::TruncI && W[3].A == 4 &&   //
                    W[4].Code == Op::SReg && W[4].A == 0 &&     // threadIdx.x
                    W[5].Code == Op::AddI &&                    //
                    W[6].Code == Op::TruncI && W[6].A == 4;
    bool TidFirst = W[0].Code == Op::SReg && W[0].A == 0 &&     // threadIdx.x
                    W[1].Code == Op::SReg && W[1].A == 4 + 0 && // blockIdx.x
                    W[2].Code == Op::SReg && W[2].A == 8 + 0 && // blockDim.x
                    W[3].Code == Op::MulI &&                    //
                    W[4].Code == Op::TruncI && W[4].A == 4 &&   //
                    W[5].Code == Op::AddI &&                    //
                    W[6].Code == Op::TruncI && W[6].A == 4;
    if (MulFirst || TidFirst) {
      RW = {7, 1, {{Op::GlobalTidX, 0, W[6].B}, {}}};
      return true;
    }
  }

  // --- 5-wide: loop-counter increment -----------------------------------
  //   LoadLocal s; PushI d; AddI; TruncI(4,1); StoreLocal s
  if (I0.Code == Op::LoadLocal && Win(5) && C[PC + 1].Code == Op::PushI &&
      C[PC + 2].Code == Op::AddI && C[PC + 3].Code == Op::TruncI &&
      C[PC + 3].A == 4 && C[PC + 3].B == 1 &&
      C[PC + 4].Code == Op::StoreLocal && C[PC + 4].A == I0.A &&
      NoTargets(5)) {
    RW = {5, 1, {{Op::IncLocalI32, I0.A, C[PC + 1].A}, {}}};
    return true;
  }

  // --- 4-wide: 64-bit counter increment ---------------------------------
  //   LoadLocal s; PushI d; AddI; StoreLocal s
  if (I0.Code == Op::LoadLocal && Win(4) && C[PC + 1].Code == Op::PushI &&
      C[PC + 2].Code == Op::AddI && C[PC + 3].Code == Op::StoreLocal &&
      C[PC + 3].A == I0.A && NoTargets(4)) {
    RW = {4, 1, {{Op::IncLocalI64, I0.A, C[PC + 1].A}, {}}};
    return true;
  }

  // --- 4-wide: LoadLocal-indexed load -----------------------------------
  //   LoadLocal base; LoadLocal idx; MulImmAddI w; Ld<T>  (w == width<T>)
  // The idx local's TruncI, if the type needed one, was already elided by
  // the dataflow (otherwise the window does not match) — this is the
  // Ld-with-fused-address-formation the store-site-local analysis could
  // not unlock.
  if (I0.Code == Op::LoadLocal && Win(4) &&
      C[PC + 1].Code == Op::LoadLocal && C[PC + 2].Code == Op::MulImmAddI &&
      NoTargets(4)) {
    Op Fused;
    if (idxLoadFor(C[PC + 3].Code, Fused) &&
        C[PC + 2].A == (int64_t)memOpWidth(C[PC + 3].Code)) {
      RW = {4, 1, {{Fused, I0.A, C[PC + 1].A}, {}}};
      return true;
    }
  }

  // --- 3-wide: indexed/scaled addressing --------------------------------
  //   LoadLocal2 a,b; MulImmAddI w; Ld<T>   ->  Ld<T>Idx a,b
  if (I0.Code == Op::LoadLocal2 && Win(3) &&
      C[PC + 1].Code == Op::MulImmAddI && NoTargets(3)) {
    Op Fused;
    if (idxLoadFor(C[PC + 2].Code, Fused) &&
        C[PC + 1].A == (int64_t)memOpWidth(C[PC + 2].Code)) {
      RW = {3, 1, {{Fused, I0.A, I0.B}, {}}};
      return true;
    }
  }
  //   MulImmAddI w; P; St<T>  ->  P; St<T>Sc   (P a safe producer: the
  // address formation commutes past the value push and fuses into the
  // store, leaving [base, idx, value] for St<T>Sc).
  if (I0.Code == Op::MulImmAddI && Win(3) &&
      isSafeProducer(C[PC + 1].Code) && NoTargets(3)) {
    Op Fused;
    if (scStoreFor(C[PC + 2].Code, Fused) &&
        I0.A == (int64_t)memOpWidth(C[PC + 2].Code)) {
      RW = {3, 2, {C[PC + 1], {Fused, 0, 0}}};
      return true;
    }
  }
  } // Fusions (wide patterns)

  // --- 3-wide -----------------------------------------------------------
  if (Win(3) &&
      (I0.Code == Op::PushI || I0.Code == Op::PushF ||
       I0.Code == Op::LoadLocal || I0.Code == Op::LoadLocalImmAddI) &&
      CanUse(3)) {
    const Instr &I1 = C[PC + 1];
    const Instr &I2 = C[PC + 2];
    // Constant folding.
    if (I0.Code == Op::PushI && I1.Code == Op::PushI) {
      int64_t Folded;
      if (foldIntBinary(I2.Code, I0.A, I1.A, Folded)) {
        RW = {3, 1, {{Op::PushI, Folded, 0}, {}}};
        return true;
      }
    }
    if ((I0.Code == Op::PushF || I0.Code == Op::PushI) &&
        (I1.Code == Op::PushF || I1.Code == Op::PushI) &&
        (I0.Code == Op::PushF || I1.Code == Op::PushF)) {
      Instr Folded;
      if (foldFloatBinary(I2.Code, I0.A, I1.A, Folded)) {
        RW = {3, 1, {Folded, {}}};
        return true;
      }
    }
    if (Fusions) {
      // LoadLocal a; LoadLocal b; AddI  ->  LoadLoadAddI a, b
      if (I0.Code == Op::LoadLocal && I1.Code == Op::LoadLocal &&
          I2.Code == Op::AddI) {
        RW = {3, 1, {{Op::LoadLoadAddI, I0.A, I1.A}, {}}};
        return true;
      }
      // LoadLocal s; PushI k; AddI  ->  LoadLocalImmAddI s, k
      if (I0.Code == Op::LoadLocal && I1.Code == Op::PushI &&
          I2.Code == Op::AddI) {
        RW = {3, 1, {{Op::LoadLocalImmAddI, I0.A, I1.A}, {}}};
        return true;
      }
      // LoadLocalImmAddI s,d; TruncI(4,1); StoreLocal s  ->  IncLocalI32
      // (arises when the 3-wide fusion above outruns the 5-wide counter
      // pattern in an earlier round).
      if (I0.Code == Op::LoadLocalImmAddI && I1.Code == Op::TruncI &&
          I1.A == 4 && I1.B == 1 && I2.Code == Op::StoreLocal &&
          I2.A == I0.A) {
        RW = {3, 1, {{Op::IncLocalI32, I0.A, I0.B}, {}}};
        return true;
      }
    }
  }

  // --- 2-wide -----------------------------------------------------------
  if (CanUse(2)) {
    const Instr &I1 = C[PC + 1];

    // Pure producer followed by Pop: both die.
    if (isPureProducer(I0.Code) && I1.Code == Op::Pop) {
      RW = {2, 0, {{}, {}}};
      return true;
    }
    // Pop absorption through pure operators — lets dead expression trees
    // unravel one layer per round:
    //   [pop1/push1 op; Pop] == [Pop]
    //   [pop2/push1 op; Pop] == [Pop; Pop]
    if (I1.Code == Op::Pop && isPureUnary(I0.Code)) {
      RW = {2, 1, {{Op::Pop, 0, 0}, {}}};
      return true;
    }
    if (I1.Code == Op::Pop && isPureBinary(I0.Code)) {
      RW = {2, 2, {{Op::Pop, 0, 0}, {Op::Pop, 0, 0}}};
      return true;
    }
    // LoadLocal2 a,b; Pop  ->  LoadLocal a
    if (I0.Code == Op::LoadLocal2 && I1.Code == Op::Pop) {
      RW = {2, 1, {{Op::LoadLocal, I0.A, 0}, {}}};
      return true;
    }
    // Swap; Swap cancels.
    if (I0.Code == Op::Swap && I1.Code == Op::Swap) {
      RW = {2, 0, {{}, {}}};
      return true;
    }
    // Constant condition jumps.
    if (I0.Code == Op::PushI &&
        (I1.Code == Op::JmpIfZero || I1.Code == Op::JmpIfNotZero)) {
      bool Taken = (I1.Code == Op::JmpIfZero) == (I0.A == 0);
      if (Taken)
        RW = {2, 1, {{Op::Jmp, I1.A, 0}, {}}};
      else
        RW = {2, 0, {{}, {}}};
      return true;
    }
    // Constant unary folds.
    if (I0.Code == Op::PushI) {
      switch (I1.Code) {
      case Op::NegI:
        if (I0.A != INT64_MIN) {
          RW = {2, 1, {{Op::PushI, -I0.A, 0}, {}}};
          return true;
        }
        break;
      case Op::BitNot:
        RW = {2, 1, {{Op::PushI, ~I0.A, 0}, {}}};
        return true;
      case Op::LogicalNot:
        RW = {2, 1, {{Op::PushI, I0.A == 0, 0}, {}}};
        return true;
      case Op::TruncI:
        RW = {2, 1, {{Op::PushI, wrapTo(I0.A, I1.A, I1.B), 0}, {}}};
        return true;
      case Op::I2F:
        RW = {2, 1, {{Op::PushF, asBits((double)I0.A), 0}, {}}};
        return true;
      case Op::U2F:
        RW = {2, 1, {{Op::PushF, asBits((double)(uint64_t)I0.A), 0}, {}}};
        return true;
      case Op::AddImmI:
        RW = {2, 1, {{Op::PushI, addWrap(I0.A, I1.A), 0}, {}}};
        return true;
      case Op::MulImmI:
        RW = {2, 1, {{Op::PushI, mulWrap(I0.A, I1.A), 0}, {}}};
        return true;
      default:
        break;
      }
    }
    if (I0.Code == Op::PushF) {
      switch (I1.Code) {
      case Op::NegF:
        RW = {2, 1, {{Op::PushF, asBits(-asDouble(I0.A)), 0}, {}}};
        return true;
      case Op::F2Single:
        RW = {2, 1,
              {{Op::PushF, asBits((double)(float)asDouble(I0.A)), 0}, {}}};
        return true;
      case Op::F2I:
        RW = {2, 1, {{Op::PushI, (int64_t)asDouble(I0.A), 0}, {}}};
        return true;
      default:
        break;
      }
    }
    // Arithmetic identities: [PushI k; op] that leaves x unchanged.
    if (I0.Code == Op::PushI && isIdentityImm(I1.Code, I0.A)) {
      RW = {2, 0, {{}, {}}};
      return true;
    }
    if (Fusions) {
      // Immediate-operand arithmetic.
      if (I0.Code == Op::PushI && I1.Code == Op::AddI) {
        RW = {2, 1, {{Op::AddImmI, I0.A, 0}, {}}};
        return true;
      }
      if (I0.Code == Op::PushI && I1.Code == Op::SubI && I0.A != INT64_MIN) {
        RW = {2, 1, {{Op::AddImmI, -I0.A, 0}, {}}};
        return true;
      }
      if (I0.Code == Op::PushI && I1.Code == Op::MulI) {
        RW = {2, 1, {{Op::MulImmI, I0.A, 0}, {}}};
        return true;
      }
      // MulImmI k; AddI  ->  MulImmAddI k   (array address formation)
      if (I0.Code == Op::MulImmI && I1.Code == Op::AddI) {
        RW = {2, 1, {{Op::MulImmAddI, I0.A, 0}, {}}};
        return true;
      }
      // MulImmAddI w; Ld<T>  ->  Ld<T>Sc   (scaled load: the address
      // formation folds into the memory access when the scale is the
      // element width).
      if (I0.Code == Op::MulImmAddI) {
        Op Fused;
        if (scLoadFor(I1.Code, Fused) &&
            I0.A == (int64_t)memOpWidth(I1.Code)) {
          RW = {2, 1, {{Fused, 0, 0}, {}}};
          return true;
        }
      }
      // LoadLocalImmAddI s,d; StoreLocal s  ->  IncLocalI64 s,d
      if (I0.Code == Op::LoadLocalImmAddI && I1.Code == Op::StoreLocal &&
          I1.A == I0.A) {
        RW = {2, 1, {{Op::IncLocalI64, I0.A, I0.B}, {}}};
        return true;
      }
    }
    // Redundant re-normalization: producer already fits the trunc width.
    if (I1.Code == Op::TruncI &&
        rangeFits(producerRange(I0, SlotRanges), I1.A, I1.B)) {
      RW = {2, 1, {I0, {}}};
      return true;
    }
    // TruncI(w1,_); TruncI(w2,s2) with w2 <= w1: the second wrap alone
    // yields the same low bytes (wrapping preserves low bytes).
    if (I0.Code == Op::TruncI && I1.Code == Op::TruncI && I1.A <= I0.A) {
      RW = {2, 1, {I1, {}}};
      return true;
    }
    if (Fusions) {
      // Compare-and-branch fusion.
      if (I1.Code == Op::JmpIfZero || I1.Code == Op::JmpIfNotZero) {
        Op Fused;
        if (fusedCompareJump(I0.Code, I1.Code == Op::JmpIfNotZero, Fused)) {
          RW = {2, 1, {{Fused, I1.A, 0}, {}}};
          return true;
        }
      }
      // Paired local loads — but never when the second load could feed a
      // wider fusion one position later (LoadLoadAddI, LoadLocalImmAddI,
      // or the counter patterns all start with LoadLocal and end in
      // AddI). Pending TruncIs between the loads and the AddI are looked
      // through: the dataflow usually elides them a round later, and the
      // wider fusion must still get its chance then.
      if (I0.Code == Op::LoadLocal && I1.Code == Op::LoadLocal) {
        size_t K = PC + 2;
        if (K < N && C[K].Code == Op::TruncI)
          ++K;
        bool BlocksWiderFusion = false;
        if (K < N &&
            (C[K].Code == Op::LoadLocal || C[K].Code == Op::PushI)) {
          ++K;
          if (K < N && C[K].Code == Op::TruncI)
            ++K;
          BlocksWiderFusion = K < N && C[K].Code == Op::AddI;
        }
        if (!BlocksWiderFusion) {
          RW = {2, 1, {{Op::LoadLocal2, I0.A, I1.A}, {}}};
          return true;
        }
      }
    }
  }

  // --- 1-wide -----------------------------------------------------------
  // Wraps to >= 8 bytes are identities.
  if (I0.Code == Op::TruncI && I0.A >= 8) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  // Dataflow-driven re-normalization elision: the value on top of the
  // stack here (tracked through AddImmI/LoadLoadAddI/... chains by the
  // abstract interpreter) provably already fits the requested width.
  if (I0.Code == Op::TruncI && PC < TopBefore.size() &&
      rangeFits(TopBefore[PC], I0.A, I0.B)) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  if ((I0.Code == Op::AddImmI && I0.A == 0) ||
      (I0.Code == Op::MulImmI && I0.A == 1)) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  // Jump to the next instruction.
  if (I0.Code == Op::Jmp && (uint64_t)I0.A == PC + 1) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  if ((I0.Code == Op::JmpIfZero || I0.Code == Op::JmpIfNotZero) &&
      (uint64_t)I0.A == PC + 1) {
    RW = {1, 1, {{Op::Pop, 0, 0}, {}}};
    return true;
  }

  return false;
}

bool runRound(FuncDef &F, const VmProgram *Prog,
              const std::vector<Range> &SlotRanges, bool Fusions,
              bool WantTopBefore) {
  const std::vector<Instr> &Code = F.Code;
  size_t N = Code.size();
  std::vector<uint8_t> Target = computeJumpTargetFlags(F);
  // The chain-tracking stack walk runs in the early rounds of each
  // phase, where virtually all chained-TruncI elisions land; later
  // rounds fall back to the cheap producer-based rule (matchAt guards on
  // TopBefore's size), keeping compile throughput flat.
  std::vector<Range> TopBefore;
  if (WantTopBefore)
    TopBefore = computeTopBefore(F, Target, SlotRanges, Prog);

  std::vector<Instr> Out;
  Out.reserve(N);
  std::vector<uint32_t> Map(N + 1, 0);
  bool Changed = false;

  size_t PC = 0;
  while (PC < N) {
    Rewrite RW;
    if (matchAt(Code, PC, N, Target, SlotRanges, TopBefore, Fusions, RW)) {
      for (unsigned I = 0; I < RW.Consumed; ++I)
        Map[PC + I] = (uint32_t)Out.size();
      for (unsigned I = 0; I < RW.Produced; ++I)
        Out.push_back(RW.Repl[I]);
      PC += RW.Consumed;
      Changed = true;
    } else {
      Map[PC] = (uint32_t)Out.size();
      Out.push_back(Code[PC]);
      ++PC;
    }
  }
  Map[N] = (uint32_t)Out.size();

  if (!Changed)
    return false;
  for (Instr &I : Out)
    if (isJumpOp(I.Code)) {
      // A malformed out-of-range target (compiler bug, hand-built
      // program) is kept as-is for Device::validateProgram to report.
      if ((uint64_t)I.A <= N)
        I.A = Map[I.A];
    }
  F.Code = std::move(Out);
  return true;
}

} // namespace

std::vector<SlotRange> dpo::slotInvariantRanges(const FuncDef &F,
                                                const VmProgram *Program) {
  return computeSlotFixpoint(F, computeJumpTargetFlags(F), Program);
}

PeepholeStats dpo::optimizeFunction(FuncDef &F, const VmProgram *Program) {
  PeepholeStats Stats;
  Stats.InstrsBefore = (unsigned)F.Code.size();
  // Phase 1a: constant folding, dead-code elimination, and identity
  // cleanup with no range information — cheap rounds that typically
  // shrink raw bytecode substantially before any dataflow runs.
  // Capped without a fixpoint-termination pass: phase 1b's rule set is a
  // strict superset, so anything 1a leaves behind is picked up there.
  const std::vector<Range> NoRanges;
  for (int R = 0; R < 1 && runRound(F, Program, NoRanges, false, false); ++R)
    ++Stats.Rounds;
  // The slot-range fixpoint runs once, on the normalized (much smaller)
  // code; its invariants are dynamic facts that every semantics-
  // preserving rewrite keeps true (see computeSlotFixpoint).
  std::vector<Range> SlotRanges =
      computeSlotFixpoint(F, computeJumpTargetFlags(F), Program);
  // Phase 1b: range-driven rewriting to a (bounded) fixpoint — TruncI
  // elision through the per-slot invariants and the chain-tracking stack
  // walk, plus every fusion rule (the folding phase above already
  // exposed the clean base sequences, so fusions no longer compete with
  // cheaper rewrites). The stack walk runs in the first rounds, where
  // virtually all chained elisions land; later rounds keep the cheap
  // producer-based elision rule.
  unsigned Phase2Rounds = 0;
  while (Stats.Rounds < 32 &&
         runRound(F, Program, SlotRanges, true, Phase2Rounds++ < 2))
    ++Stats.Rounds;
  Stats.InstrsAfter = (unsigned)F.Code.size();
  return Stats;
}

PeepholeStats dpo::optimizeProgram(VmProgram &Program) {
  PeepholeStats Total;
  for (FuncDef &F : Program.Functions)
    Total += optimizeFunction(F, &Program);
  return Total;
}
