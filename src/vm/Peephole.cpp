//===--- Peephole.cpp ----------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/Peephole.h"

#include "vm/SlotOps.h"

#include <cstring>
#include <vector>

using namespace dpo;

namespace {

// Folding must compute exactly what execution computes: both sides use
// the shared slot arithmetic from vm/SlotOps.h.
double asDouble(int64_t Bits) { return slotAsDouble(Bits); }
int64_t asBits(double D) { return slotFromDouble(D); }
int64_t wrapTo(int64_t V, int64_t Width, int64_t SignExtend) {
  return wrapToWidth(V, Width, SignExtend);
}

//===----------------------------------------------------------------------===//
// Value ranges: which values can an instruction leave on the stack?
//===----------------------------------------------------------------------===//

struct Range {
  bool Known = false;
  int64_t Lo = 0, Hi = 0;
};

Range rangeOfTrunc(int64_t Width, int64_t SignExtend) {
  switch (Width) {
  case 1:
    return SignExtend ? Range{true, -128, 127} : Range{true, 0, 255};
  case 2:
    return SignExtend ? Range{true, -32768, 32767} : Range{true, 0, 65535};
  case 4:
    return SignExtend ? Range{true, INT32_MIN, INT32_MAX}
                      : Range{true, 0, (int64_t)UINT32_MAX};
  default:
    return {};
  }
}

bool rangeFits(const Range &R, int64_t Width, int64_t SignExtend) {
  Range T = rangeOfTrunc(Width, SignExtend);
  return R.Known && T.Known && R.Lo >= T.Lo && R.Hi <= T.Hi;
}

bool isCompare(Op C) {
  switch (C) {
  case Op::CmpEQ:
  case Op::CmpNE:
  case Op::CmpLTI:
  case Op::CmpLEI:
  case Op::CmpGTI:
  case Op::CmpGEI:
  case Op::CmpLTU:
  case Op::CmpLEU:
  case Op::CmpGTU:
  case Op::CmpGEU:
  case Op::CmpEQF:
  case Op::CmpNEF:
  case Op::CmpLTF:
  case Op::CmpLEF:
  case Op::CmpGTF:
  case Op::CmpGEF:
  case Op::LogicalNot:
    return true;
  default:
    return false;
  }
}

/// Conservative range of the value \p I pushes. \p SlotRanges may be empty
/// (LoadLocal then reports unknown); when non-empty it holds the per-slot
/// invariants computed by computeSlotRanges.
Range producerRange(const Instr &I, const std::vector<Range> &SlotRanges) {
  if (isCompare(I.Code))
    return {true, 0, 1};
  switch (I.Code) {
  case Op::PushI:
    return {true, I.A, I.A};
  case Op::TruncI:
    return rangeOfTrunc(I.A, I.B);
  case Op::SReg: {
    // runGrid rejects blocks over 1024 threads, so threadIdx components
    // stay below 1024 and blockDim components at or below 1024 whenever a
    // thread executes. blockIdx/gridDim span the full uint32 range.
    unsigned Builtin = (unsigned)I.A / 4;
    if (Builtin == 0)
      return {true, 0, 1023};
    if (Builtin == 2)
      return {true, 0, 1024};
    return {true, 0, (int64_t)UINT32_MAX};
  }
  case Op::GlobalTidX:
    return rangeOfTrunc(4, I.B);
  case Op::LdI8:
    return rangeOfTrunc(1, 1);
  case Op::LdU8:
    return rangeOfTrunc(1, 0);
  case Op::LdI16:
    return rangeOfTrunc(2, 1);
  case Op::LdU16:
    return rangeOfTrunc(2, 0);
  case Op::LdI32:
    return rangeOfTrunc(4, 1);
  case Op::LdU32:
    return rangeOfTrunc(4, 0);
  case Op::LoadLocal:
    if ((uint64_t)I.A < SlotRanges.size())
      return SlotRanges[I.A];
    return {};
  default:
    return {};
  }
}

std::vector<bool> computeJumpTargets(const FuncDef &F) {
  std::vector<bool> Target(F.Code.size() + 1, false);
  for (const Instr &I : F.Code)
    if (isJumpOp(I.Code) && (uint64_t)I.A <= F.Code.size())
      Target[I.A] = true;
  return Target;
}

/// Per-slot value invariants: SlotRanges[s] is known iff *every* store to
/// slot s provably writes a value in that range (and the slot's zero
/// initialization is included). Parameter slots are unknown — the host may
/// pass arbitrary 64-bit values. Used to elide per-load re-normalization
/// (LoadLocal s; TruncI w,s) when the slot invariant already fits.
std::vector<Range> computeSlotRanges(const FuncDef &F,
                                     const std::vector<bool> &Target) {
  std::vector<Range> Ranges(F.NumLocals);
  std::vector<bool> Bad(F.NumLocals, false);
  const std::vector<Range> NoSlots;
  for (unsigned S = 0; S < F.NumLocals; ++S) {
    if (S < F.NumParamSlots)
      Bad[S] = true;
    else
      Ranges[S] = {true, 0, 0}; // Locals are zero-initialized.
  }
  auto Merge = [](Range &Into, const Range &V) {
    Into.Lo = V.Lo < Into.Lo ? V.Lo : Into.Lo;
    Into.Hi = V.Hi > Into.Hi ? V.Hi : Into.Hi;
  };
  for (size_t I = 0; I < F.Code.size(); ++I) {
    const Instr &In = F.Code[I];
    int64_t Slot;
    Range V;
    if (In.Code == Op::StoreLocal) {
      Slot = In.A;
      // The value stored is whatever the previous instruction pushed —
      // valid only if this store cannot be reached by a jump.
      if (I == 0 || Target[I])
        V = {};
      else
        V = producerRange(F.Code[I - 1], NoSlots);
    } else if (In.Code == Op::IncLocalI32) {
      Slot = In.A;
      V = rangeOfTrunc(4, 1);
    } else if (In.Code == Op::IncLocalI64) {
      Slot = In.A;
      V = {};
    } else {
      continue;
    }
    if (Slot < 0 || (uint64_t)Slot >= F.NumLocals)
      continue;
    if (!V.Known)
      Bad[Slot] = true;
    else
      Merge(Ranges[Slot], V);
  }
  for (unsigned S = 0; S < F.NumLocals; ++S)
    if (Bad[S])
      Ranges[S] = {};
  return Ranges;
}

//===----------------------------------------------------------------------===//
// Folding helpers
//===----------------------------------------------------------------------===//

/// Folds `A op B` for the pure integer binary opcodes. Returns false when
/// the opcode is not foldable (or would change trap semantics).
bool foldIntBinary(Op Code, int64_t A, int64_t B, int64_t &Out) {
  uint64_t UA = (uint64_t)A, UB = (uint64_t)B;
  switch (Code) {
  case Op::AddI: Out = addWrap(A, B); return true;
  case Op::SubI: Out = subWrap(A, B); return true;
  case Op::MulI: Out = mulWrap(A, B); return true;
  case Op::DivI:
    if (B == 0 || (A == INT64_MIN && B == -1))
      return false; // Preserve the runtime trap / UB guard.
    Out = A / B;
    return true;
  case Op::DivU:
    if (B == 0)
      return false;
    Out = (int64_t)(UA / UB);
    return true;
  case Op::RemI:
    if (B == 0 || (A == INT64_MIN && B == -1))
      return false;
    Out = A % B;
    return true;
  case Op::RemU:
    if (B == 0)
      return false;
    Out = (int64_t)(UA % UB);
    return true;
  case Op::Shl: Out = (int64_t)(UA << (B & 63)); return true;
  case Op::ShrI: Out = A >> (B & 63); return true;
  case Op::ShrU: Out = (int64_t)(UA >> (B & 63)); return true;
  case Op::BitAnd: Out = A & B; return true;
  case Op::BitOr: Out = A | B; return true;
  case Op::BitXor: Out = A ^ B; return true;
  case Op::CmpEQ: Out = A == B; return true;
  case Op::CmpNE: Out = A != B; return true;
  case Op::CmpLTI: Out = A < B; return true;
  case Op::CmpLEI: Out = A <= B; return true;
  case Op::CmpGTI: Out = A > B; return true;
  case Op::CmpGEI: Out = A >= B; return true;
  case Op::CmpLTU: Out = UA < UB; return true;
  case Op::CmpLEU: Out = UA <= UB; return true;
  case Op::CmpGTU: Out = UA > UB; return true;
  case Op::CmpGEU: Out = UA >= UB; return true;
  case Op::MinI: Out = A < B ? A : B; return true;
  case Op::MaxI: Out = A > B ? A : B; return true;
  case Op::MinU: Out = UA < UB ? A : B; return true;
  case Op::MaxU: Out = UA > UB ? A : B; return true;
  default:
    return false;
  }
}

/// Folds float binaries over bit-stored doubles. Produces either PushF
/// bits (arithmetic) or PushI 0/1 (comparisons).
bool foldFloatBinary(Op Code, int64_t ABits, int64_t BBits, Instr &Out) {
  double A = asDouble(ABits), B = asDouble(BBits);
  switch (Code) {
  case Op::AddF: Out = {Op::PushF, asBits(A + B), 0}; return true;
  case Op::SubF: Out = {Op::PushF, asBits(A - B), 0}; return true;
  case Op::MulF: Out = {Op::PushF, asBits(A * B), 0}; return true;
  case Op::DivF: Out = {Op::PushF, asBits(A / B), 0}; return true;
  case Op::CmpEQF: Out = {Op::PushI, A == B, 0}; return true;
  case Op::CmpNEF: Out = {Op::PushI, A != B, 0}; return true;
  case Op::CmpLTF: Out = {Op::PushI, A < B, 0}; return true;
  case Op::CmpLEF: Out = {Op::PushI, A <= B, 0}; return true;
  case Op::CmpGTF: Out = {Op::PushI, A > B, 0}; return true;
  case Op::CmpGEF: Out = {Op::PushI, A >= B, 0}; return true;
  default:
    return false;
  }
}

/// True when [PushI A; <Code>] is an arithmetic identity on the value
/// below it (x op A == x), so both instructions can be deleted.
bool isIdentityImm(Op Code, int64_t A) {
  switch (Code) {
  case Op::AddI:
  case Op::SubI:
  case Op::Shl:
  case Op::ShrI:
  case Op::ShrU:
  case Op::BitOr:
  case Op::BitXor:
    return A == 0;
  case Op::MulI:
  case Op::DivI:
  case Op::DivU:
    return A == 1;
  case Op::BitAnd:
    return A == -1;
  default:
    return false;
  }
}

/// Maps [Cmp<cc>; JmpIfZero/JmpIfNotZero] to the fused conditional jump.
/// JmpIfZero branches when the comparison is *false* — i.e. on the negated
/// condition; JmpIfNotZero branches on the condition itself.
bool fusedCompareJump(Op Cmp, bool JumpIfTrue, Op &Out) {
  switch (Cmp) {
  case Op::CmpLTI: Out = JumpIfTrue ? Op::JmpIfLTI : Op::JmpIfGEI; return true;
  case Op::CmpLEI: Out = JumpIfTrue ? Op::JmpIfLEI : Op::JmpIfGTI; return true;
  case Op::CmpGTI: Out = JumpIfTrue ? Op::JmpIfGTI : Op::JmpIfLEI; return true;
  case Op::CmpGEI: Out = JumpIfTrue ? Op::JmpIfGEI : Op::JmpIfLTI; return true;
  case Op::CmpEQ: Out = JumpIfTrue ? Op::JmpIfEQ : Op::JmpIfNE; return true;
  case Op::CmpNE: Out = JumpIfTrue ? Op::JmpIfNE : Op::JmpIfEQ; return true;
  case Op::CmpLTU: Out = JumpIfTrue ? Op::JmpIfLTU : Op::JmpIfGEU; return true;
  case Op::CmpLEU: Out = JumpIfTrue ? Op::JmpIfLEU : Op::JmpIfGTU; return true;
  case Op::CmpGTU: Out = JumpIfTrue ? Op::JmpIfGTU : Op::JmpIfLEU; return true;
  case Op::CmpGEU: Out = JumpIfTrue ? Op::JmpIfGEU : Op::JmpIfLTU; return true;
  default:
    return false;
  }
}

/// Opcodes that push exactly one value and have no side effects: a
/// following Pop deletes the pair.
bool isPureProducer(Op Code) {
  switch (Code) {
  case Op::PushI:
  case Op::PushF:
  case Op::LoadLocal:
  case Op::SReg:
  case Op::FrameAddr:
  case Op::SharedBase:
  case Op::Dup:
  case Op::GlobalTidX:
  case Op::LoadLocalImmAddI:
  case Op::LoadLoadAddI:
    return true;
  default:
    return false;
  }
}

/// Pure pop-1/push-1 opcodes: [op; Pop] == [Pop].
bool isPureUnary(Op Code) {
  switch (Code) {
  case Op::NegI:
  case Op::BitNot:
  case Op::LogicalNot:
  case Op::TruncI:
  case Op::I2F:
  case Op::U2F:
  case Op::F2I:
  case Op::F2Single:
  case Op::NegF:
  case Op::AddImmI:
  case Op::MulImmI:
    return true;
  default:
    return false;
  }
}

/// Pure pop-2/push-1 opcodes: [op; Pop] == [Pop; Pop]. Division and
/// remainder are excluded — their divide-by-zero trap is observable.
bool isPureBinary(Op Code) {
  if (isCompare(Code))
    return true;
  switch (Code) {
  case Op::AddI:
  case Op::SubI:
  case Op::MulI:
  case Op::Shl:
  case Op::ShrI:
  case Op::ShrU:
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::MinI:
  case Op::MaxI:
  case Op::MinU:
  case Op::MaxU:
  case Op::AddF:
  case Op::SubF:
  case Op::MulF:
  case Op::DivF:
  case Op::MulImmAddI:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Pattern matching
//===----------------------------------------------------------------------===//

struct Rewrite {
  unsigned Consumed = 0;
  unsigned Produced = 0;
  Instr Repl[2];
};

/// Tries to match a rewrite starting at \p PC. Patterns are tried longest
/// first; instructions after the first matched one must not be jump
/// targets (checked through \p CanUse). Fusion rules (superinstruction
/// synthesis) only run when \p Fusions is set — folding, dead-code, and
/// TruncI-elision rounds run first so that fusions never capture an
/// instruction a cheaper rewrite would have deleted.
bool matchAt(const std::vector<Instr> &C, size_t PC, size_t N,
             const std::vector<bool> &Target,
             const std::vector<Range> &SlotRanges, bool Fusions,
             Rewrite &RW) {
  auto CanUse = [&](size_t Len) {
    if (PC + Len > N)
      return false;
    for (size_t I = 1; I < Len; ++I)
      if (Target[PC + I])
        return false;
    return true;
  };
  const Instr &I0 = C[PC];

  if (Fusions) {
  // --- 7-wide: the global-thread-id idiom -------------------------------
  //   blockIdx.x * blockDim.x + threadIdx.x
  //   SReg(bIdx.x) SReg(bDim.x) MulI TruncI(4,_) SReg(tIdx.x) AddI TruncI(4,s)
  // and the commuted form
  //   threadIdx.x + blockIdx.x * blockDim.x
  //   SReg(tIdx.x) SReg(bIdx.x) SReg(bDim.x) MulI TruncI(4,_) AddI TruncI(4,s)
  // Both wrap to 32 bits exactly as GlobalTidX(B = sign of final trunc)
  // does: truncation is a ring homomorphism, so the intermediate wrap of
  // the product does not change the low 32 bits of the sum.
  if (CanUse(7)) {
    const Instr *W = &C[PC];
    bool MulFirst = W[0].Code == Op::SReg && W[0].A == 4 + 0 && // blockIdx.x
                    W[1].Code == Op::SReg && W[1].A == 8 + 0 && // blockDim.x
                    W[2].Code == Op::MulI &&                    //
                    W[3].Code == Op::TruncI && W[3].A == 4 &&   //
                    W[4].Code == Op::SReg && W[4].A == 0 &&     // threadIdx.x
                    W[5].Code == Op::AddI &&                    //
                    W[6].Code == Op::TruncI && W[6].A == 4;
    bool TidFirst = W[0].Code == Op::SReg && W[0].A == 0 &&     // threadIdx.x
                    W[1].Code == Op::SReg && W[1].A == 4 + 0 && // blockIdx.x
                    W[2].Code == Op::SReg && W[2].A == 8 + 0 && // blockDim.x
                    W[3].Code == Op::MulI &&                    //
                    W[4].Code == Op::TruncI && W[4].A == 4 &&   //
                    W[5].Code == Op::AddI &&                    //
                    W[6].Code == Op::TruncI && W[6].A == 4;
    if (MulFirst || TidFirst) {
      RW = {7, 1, {{Op::GlobalTidX, 0, W[6].B}, {}}};
      return true;
    }
  }

  // --- 5-wide: loop-counter increment -----------------------------------
  //   LoadLocal s; PushI d; AddI; TruncI(4,1); StoreLocal s
  if (CanUse(5) && I0.Code == Op::LoadLocal && C[PC + 1].Code == Op::PushI &&
      C[PC + 2].Code == Op::AddI && C[PC + 3].Code == Op::TruncI &&
      C[PC + 3].A == 4 && C[PC + 3].B == 1 &&
      C[PC + 4].Code == Op::StoreLocal && C[PC + 4].A == I0.A) {
    RW = {5, 1, {{Op::IncLocalI32, I0.A, C[PC + 1].A}, {}}};
    return true;
  }

  // --- 4-wide: 64-bit counter increment ---------------------------------
  //   LoadLocal s; PushI d; AddI; StoreLocal s
  if (CanUse(4) && I0.Code == Op::LoadLocal && C[PC + 1].Code == Op::PushI &&
      C[PC + 2].Code == Op::AddI && C[PC + 3].Code == Op::StoreLocal &&
      C[PC + 3].A == I0.A) {
    RW = {4, 1, {{Op::IncLocalI64, I0.A, C[PC + 1].A}, {}}};
    return true;
  }
  } // Fusions (wide patterns)

  // --- 3-wide -----------------------------------------------------------
  if (CanUse(3)) {
    const Instr &I1 = C[PC + 1];
    const Instr &I2 = C[PC + 2];
    // Constant folding.
    if (I0.Code == Op::PushI && I1.Code == Op::PushI) {
      int64_t Folded;
      if (foldIntBinary(I2.Code, I0.A, I1.A, Folded)) {
        RW = {3, 1, {{Op::PushI, Folded, 0}, {}}};
        return true;
      }
    }
    if ((I0.Code == Op::PushF || I0.Code == Op::PushI) &&
        (I1.Code == Op::PushF || I1.Code == Op::PushI) &&
        (I0.Code == Op::PushF || I1.Code == Op::PushF)) {
      Instr Folded;
      if (foldFloatBinary(I2.Code, I0.A, I1.A, Folded)) {
        RW = {3, 1, {Folded, {}}};
        return true;
      }
    }
    if (Fusions) {
      // LoadLocal a; LoadLocal b; AddI  ->  LoadLoadAddI a, b
      if (I0.Code == Op::LoadLocal && I1.Code == Op::LoadLocal &&
          I2.Code == Op::AddI) {
        RW = {3, 1, {{Op::LoadLoadAddI, I0.A, I1.A}, {}}};
        return true;
      }
      // LoadLocal s; PushI k; AddI  ->  LoadLocalImmAddI s, k
      if (I0.Code == Op::LoadLocal && I1.Code == Op::PushI &&
          I2.Code == Op::AddI) {
        RW = {3, 1, {{Op::LoadLocalImmAddI, I0.A, I1.A}, {}}};
        return true;
      }
      // LoadLocalImmAddI s,d; TruncI(4,1); StoreLocal s  ->  IncLocalI32
      // (arises when the 3-wide fusion above outruns the 5-wide counter
      // pattern in an earlier round).
      if (I0.Code == Op::LoadLocalImmAddI && I1.Code == Op::TruncI &&
          I1.A == 4 && I1.B == 1 && I2.Code == Op::StoreLocal &&
          I2.A == I0.A) {
        RW = {3, 1, {{Op::IncLocalI32, I0.A, I0.B}, {}}};
        return true;
      }
    }
  }

  // --- 2-wide -----------------------------------------------------------
  if (CanUse(2)) {
    const Instr &I1 = C[PC + 1];

    // Pure producer followed by Pop: both die.
    if (isPureProducer(I0.Code) && I1.Code == Op::Pop) {
      RW = {2, 0, {{}, {}}};
      return true;
    }
    // Pop absorption through pure operators — lets dead expression trees
    // unravel one layer per round:
    //   [pop1/push1 op; Pop] == [Pop]
    //   [pop2/push1 op; Pop] == [Pop; Pop]
    if (I1.Code == Op::Pop && isPureUnary(I0.Code)) {
      RW = {2, 1, {{Op::Pop, 0, 0}, {}}};
      return true;
    }
    if (I1.Code == Op::Pop && isPureBinary(I0.Code)) {
      RW = {2, 2, {{Op::Pop, 0, 0}, {Op::Pop, 0, 0}}};
      return true;
    }
    // LoadLocal2 a,b; Pop  ->  LoadLocal a
    if (I0.Code == Op::LoadLocal2 && I1.Code == Op::Pop) {
      RW = {2, 1, {{Op::LoadLocal, I0.A, 0}, {}}};
      return true;
    }
    // Swap; Swap cancels.
    if (I0.Code == Op::Swap && I1.Code == Op::Swap) {
      RW = {2, 0, {{}, {}}};
      return true;
    }
    // Constant condition jumps.
    if (I0.Code == Op::PushI &&
        (I1.Code == Op::JmpIfZero || I1.Code == Op::JmpIfNotZero)) {
      bool Taken = (I1.Code == Op::JmpIfZero) == (I0.A == 0);
      if (Taken)
        RW = {2, 1, {{Op::Jmp, I1.A, 0}, {}}};
      else
        RW = {2, 0, {{}, {}}};
      return true;
    }
    // Constant unary folds.
    if (I0.Code == Op::PushI) {
      switch (I1.Code) {
      case Op::NegI:
        if (I0.A != INT64_MIN) {
          RW = {2, 1, {{Op::PushI, -I0.A, 0}, {}}};
          return true;
        }
        break;
      case Op::BitNot:
        RW = {2, 1, {{Op::PushI, ~I0.A, 0}, {}}};
        return true;
      case Op::LogicalNot:
        RW = {2, 1, {{Op::PushI, I0.A == 0, 0}, {}}};
        return true;
      case Op::TruncI:
        RW = {2, 1, {{Op::PushI, wrapTo(I0.A, I1.A, I1.B), 0}, {}}};
        return true;
      case Op::I2F:
        RW = {2, 1, {{Op::PushF, asBits((double)I0.A), 0}, {}}};
        return true;
      case Op::U2F:
        RW = {2, 1, {{Op::PushF, asBits((double)(uint64_t)I0.A), 0}, {}}};
        return true;
      case Op::AddImmI:
        RW = {2, 1, {{Op::PushI, addWrap(I0.A, I1.A), 0}, {}}};
        return true;
      case Op::MulImmI:
        RW = {2, 1, {{Op::PushI, mulWrap(I0.A, I1.A), 0}, {}}};
        return true;
      default:
        break;
      }
    }
    if (I0.Code == Op::PushF) {
      switch (I1.Code) {
      case Op::NegF:
        RW = {2, 1, {{Op::PushF, asBits(-asDouble(I0.A)), 0}, {}}};
        return true;
      case Op::F2Single:
        RW = {2, 1,
              {{Op::PushF, asBits((double)(float)asDouble(I0.A)), 0}, {}}};
        return true;
      case Op::F2I:
        RW = {2, 1, {{Op::PushI, (int64_t)asDouble(I0.A), 0}, {}}};
        return true;
      default:
        break;
      }
    }
    // Arithmetic identities: [PushI k; op] that leaves x unchanged.
    if (I0.Code == Op::PushI && isIdentityImm(I1.Code, I0.A)) {
      RW = {2, 0, {{}, {}}};
      return true;
    }
    if (Fusions) {
      // Immediate-operand arithmetic.
      if (I0.Code == Op::PushI && I1.Code == Op::AddI) {
        RW = {2, 1, {{Op::AddImmI, I0.A, 0}, {}}};
        return true;
      }
      if (I0.Code == Op::PushI && I1.Code == Op::SubI && I0.A != INT64_MIN) {
        RW = {2, 1, {{Op::AddImmI, -I0.A, 0}, {}}};
        return true;
      }
      if (I0.Code == Op::PushI && I1.Code == Op::MulI) {
        RW = {2, 1, {{Op::MulImmI, I0.A, 0}, {}}};
        return true;
      }
      // MulImmI k; AddI  ->  MulImmAddI k   (array address formation)
      if (I0.Code == Op::MulImmI && I1.Code == Op::AddI) {
        RW = {2, 1, {{Op::MulImmAddI, I0.A, 0}, {}}};
        return true;
      }
      // LoadLocalImmAddI s,d; StoreLocal s  ->  IncLocalI64 s,d
      if (I0.Code == Op::LoadLocalImmAddI && I1.Code == Op::StoreLocal &&
          I1.A == I0.A) {
        RW = {2, 1, {{Op::IncLocalI64, I0.A, I0.B}, {}}};
        return true;
      }
    }
    // Redundant re-normalization: producer already fits the trunc width.
    if (I1.Code == Op::TruncI &&
        rangeFits(producerRange(I0, SlotRanges), I1.A, I1.B)) {
      RW = {2, 1, {I0, {}}};
      return true;
    }
    // TruncI(w1,_); TruncI(w2,s2) with w2 <= w1: the second wrap alone
    // yields the same low bytes (wrapping preserves low bytes).
    if (I0.Code == Op::TruncI && I1.Code == Op::TruncI && I1.A <= I0.A) {
      RW = {2, 1, {I1, {}}};
      return true;
    }
    if (Fusions) {
      // Compare-and-branch fusion.
      if (I1.Code == Op::JmpIfZero || I1.Code == Op::JmpIfNotZero) {
        Op Fused;
        if (fusedCompareJump(I0.Code, I1.Code == Op::JmpIfNotZero, Fused)) {
          RW = {2, 1, {{Fused, I1.A, 0}, {}}};
          return true;
        }
      }
      // Paired local loads — but never when the second load could feed a
      // wider fusion one position later (LoadLoadAddI, LoadLocalImmAddI,
      // or the counter patterns all start with LoadLocal and end in AddI).
      if (I0.Code == Op::LoadLocal && I1.Code == Op::LoadLocal) {
        bool BlocksWiderFusion =
            PC + 3 < N &&
            (C[PC + 2].Code == Op::LoadLocal || C[PC + 2].Code == Op::PushI) &&
            C[PC + 3].Code == Op::AddI;
        if (!BlocksWiderFusion) {
          RW = {2, 1, {{Op::LoadLocal2, I0.A, I1.A}, {}}};
          return true;
        }
      }
    }
  }

  // --- 1-wide -----------------------------------------------------------
  // Wraps to >= 8 bytes are identities.
  if (I0.Code == Op::TruncI && I0.A >= 8) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  if ((I0.Code == Op::AddImmI && I0.A == 0) ||
      (I0.Code == Op::MulImmI && I0.A == 1)) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  // Jump to the next instruction.
  if (I0.Code == Op::Jmp && (uint64_t)I0.A == PC + 1) {
    RW = {1, 0, {{}, {}}};
    return true;
  }
  if ((I0.Code == Op::JmpIfZero || I0.Code == Op::JmpIfNotZero) &&
      (uint64_t)I0.A == PC + 1) {
    RW = {1, 1, {{Op::Pop, 0, 0}, {}}};
    return true;
  }

  return false;
}

bool runRound(FuncDef &F, bool Fusions) {
  const std::vector<Instr> &Code = F.Code;
  size_t N = Code.size();
  std::vector<bool> Target = computeJumpTargets(F);
  std::vector<Range> SlotRanges = computeSlotRanges(F, Target);

  std::vector<Instr> Out;
  Out.reserve(N);
  std::vector<uint32_t> Map(N + 1, 0);
  bool Changed = false;

  size_t PC = 0;
  while (PC < N) {
    Rewrite RW;
    if (matchAt(Code, PC, N, Target, SlotRanges, Fusions, RW)) {
      for (unsigned I = 0; I < RW.Consumed; ++I)
        Map[PC + I] = (uint32_t)Out.size();
      for (unsigned I = 0; I < RW.Produced; ++I)
        Out.push_back(RW.Repl[I]);
      PC += RW.Consumed;
      Changed = true;
    } else {
      Map[PC] = (uint32_t)Out.size();
      Out.push_back(Code[PC]);
      ++PC;
    }
  }
  Map[N] = (uint32_t)Out.size();

  if (!Changed)
    return false;
  for (Instr &I : Out)
    if (isJumpOp(I.Code)) {
      // A malformed out-of-range target (compiler bug, hand-built
      // program) is kept as-is for Device::validateProgram to report.
      if ((uint64_t)I.A <= N)
        I.A = Map[I.A];
    }
  F.Code = std::move(Out);
  return true;
}

} // namespace

PeepholeStats dpo::optimizeFunction(FuncDef &F) {
  PeepholeStats Stats;
  Stats.InstrsBefore = (unsigned)F.Code.size();
  // Phase 1: constant folding, dead-code elimination, and TruncI elision
  // to a fixpoint — these expose the clean base sequences the fusion
  // patterns are written against. Phase 2: all rules including
  // superinstruction fusion, again to a (bounded) fixpoint.
  while (Stats.Rounds < 16 && runRound(F, /*Fusions=*/false))
    ++Stats.Rounds;
  while (Stats.Rounds < 32 && runRound(F, /*Fusions=*/true))
    ++Stats.Rounds;
  Stats.InstrsAfter = (unsigned)F.Code.size();
  return Stats;
}

PeepholeStats dpo::optimizeProgram(VmProgram &Program) {
  PeepholeStats Total;
  for (FuncDef &F : Program.Functions)
    Total += optimizeFunction(F);
  return Total;
}
