//===--- ExecIR.cpp - bytecode -> decoded-IR lowering --------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecIR.h"

using namespace dpo;

const char *dpo::execOpName(uint16_t Code) {
  if (Code < NumOpcodes)
    return opName((Op)Code);
  static const char *const Names[] = {
#define DPO_XOP_NAME(name) #name,
      DPO_FOR_EACH_XOPCODE(DPO_XOP_NAME)
#undef DPO_XOP_NAME
  };
  unsigned Idx = Code - NumOpcodes;
  return Idx < NumExecOpcodes - NumOpcodes ? Names[Idx] : "<bad-xop>";
}

namespace {

bool isPush(Op Code) { return Code == Op::PushI || Code == Op::PushF; }

bool fusedJumpFor(Op Jump, XOp &Out) {
  switch (Jump) {
  case Op::JmpIfLTI: Out = XOp::JmpLLLTI; return true;
  case Op::JmpIfGEI: Out = XOp::JmpLLGEI; return true;
  case Op::JmpIfLEI: Out = XOp::JmpLLLEI; return true;
  case Op::JmpIfGTI: Out = XOp::JmpLLGTI; return true;
  case Op::JmpIfEQ: Out = XOp::JmpLLEQ; return true;
  case Op::JmpIfNE: Out = XOp::JmpLLNE; return true;
  case Op::JmpIfLTU: Out = XOp::JmpLLLTU; return true;
  case Op::JmpIfGEU: Out = XOp::JmpLLGEU; return true;
  case Op::JmpIfLEU: Out = XOp::JmpLLLEU; return true;
  case Op::JmpIfGTU: Out = XOp::JmpLLGTU; return true;
  default: return false;
  }
}

int64_t packSlots(int64_t Lo, int64_t Hi) {
  return (int64_t)((uint64_t)(uint32_t)Lo | ((uint64_t)(uint32_t)Hi << 32));
}

/// Tries to fuse the pair starting at \p PC into one decoded
/// instruction. The second instruction must not be a jump target (the
/// caller checks), and the first must be unable to jump, trap, or fail —
/// true for all the producers below — so both always retire together and
/// the fused Cost of 2 keeps step accounting exact.
bool fusePair(const Instr &I0, const Instr &I1, ExecInstr &Out) {
  switch (I1.Code) {
  case Op::StoreLocal:
    switch (I0.Code) {
    case Op::PushI:
    case Op::PushF:
      Out.Code = (uint16_t)XOp::StoreLocalImm;
      Out.A = I1.A;
      Out.B = I0.A;
      return true;
    case Op::LoadLocal:
      Out.Code = (uint16_t)XOp::CopyLocal;
      Out.A = I1.A;
      Out.B = I0.A;
      return true;
    case Op::GlobalTidX:
      Out.Code = (uint16_t)XOp::GlobalTidStore;
      Out.A = I1.A;
      Out.B = I0.B;
      return true;
    default:
      return false;
    }
  case Op::LoadLocal:
    // StoreLocal s; LoadLocal s — a tee: keep the top, store a copy.
    if (I0.Code == Op::StoreLocal && I0.A == I1.A) {
      Out.Code = (uint16_t)XOp::TeeLocal;
      Out.A = I0.A;
      return true;
    }
    return false;
  case Op::PushI:
  case Op::PushF:
    if (isPush(I0.Code)) {
      Out.Code = (uint16_t)XOp::Push2;
      Out.A = I0.A;
      Out.B = I1.A;
      return true;
    }
    return false;
  case Op::TruncI:
    switch (I0.Code) {
    case Op::AddI:
      Out.Code = (uint16_t)XOp::AddTrunc;
      Out.A = (I1.A << 1) | (I1.B != 0);
      return true;
    case Op::MulImmI:
      Out.Code = (uint16_t)XOp::MulImmTrunc;
      Out.A = I0.A;
      Out.B = (I1.A << 1) | (I1.B != 0);
      return true;
    case Op::LoadLocalImmAddI:
      if (I0.B >= INT32_MIN && I0.B <= INT32_MAX) {
        Out.Code = (uint16_t)XOp::LoadImmAddTrunc;
        Out.A = packSlots(I0.A, I0.B); // slot | (imm32 << 32)
        Out.B = (I1.A << 1) | (I1.B != 0);
        return true;
      }
      return false;
    default:
      return false;
    }
  case Op::MulImmAddI:
    if (I0.Code == Op::TruncI) {
      Out.Code = (uint16_t)XOp::TruncMulAdd;
      Out.A = I1.A;
      Out.B = (I0.A << 1) | (I0.B != 0);
      return true;
    }
    return false;
  case Op::LoadLoadAddI:
    if (I0.Code == Op::LoadLocal) {
      Out.Code = (uint16_t)XOp::LoadLLAdd;
      Out.A = packSlots(I0.A, I1.A);
      Out.B = I1.B;
      return true;
    }
    return false;
  default: {
    XOp Fused;
    if (I0.Code == Op::LoadLocal2 && fusedJumpFor(I1.Code, Fused)) {
      Out.Code = (uint16_t)Fused;
      Out.A = I1.A; // Jump target (remapped by the caller's fixup pass).
      Out.B = packSlots(I0.A, I0.B);
      return true;
    }
    return false;
  }
  }
}

ExecFunc decodeFunction(const FuncDef &F, const void *const *Handlers,
                        ExecDecodeStats &Stats) {
  ExecFunc Out;
  Out.NumLocals = F.NumLocals;
  Out.NumParamSlots = F.NumParamSlots;
  Out.FrameBytes = F.FrameBytes;
  Out.IsKernel = F.IsKernel;
  Out.ReturnsValue = F.ReturnsValue;

  size_t N = F.Code.size();
  std::vector<uint8_t> Target = computeJumpTargetFlags(F);
  std::vector<uint32_t> Map(N + 1, 0);
  Out.Code.reserve(N);

  size_t PC = 0;
  while (PC < N) {
    ExecInstr E;
    if (PC + 1 < N && !Target[PC + 1] &&
        fusePair(F.Code[PC], F.Code[PC + 1], E)) {
      E.Cost = 2;
      Map[PC] = Map[PC + 1] = (uint32_t)Out.Code.size();
      Out.Code.push_back(E);
      PC += 2;
      ++Stats.FusedPairs;
      continue;
    }
    const Instr &I = F.Code[PC];
    E.Code = (uint16_t)I.Code;
    E.A = I.A;
    E.B = I.B;
    if (I.Code == Op::SReg) {
      // Pre-split the dim*4+component encoding.
      E.A = (unsigned)I.A / 4;
      E.B = (unsigned)I.A % 4;
    }
    Map[PC] = (uint32_t)Out.Code.size();
    Out.Code.push_back(E);
    ++PC;
  }
  Map[N] = (uint32_t)Out.Code.size();

  for (ExecInstr &E : Out.Code) {
    if (execOpIsJump(E.Code))
      E.A = Map[E.A]; // Validation guarantees the target is in range.
    if (Handlers)
      E.Handler = Handlers[E.Code];
  }

  Stats.InstrsIn += N;
  Stats.InstrsOut += Out.Code.size();
  return Out;
}

} // namespace

ExecProgram dpo::decodeProgram(const VmProgram &Program,
                               const void *const *Handlers) {
  ExecProgram Exec;
  Exec.Functions.reserve(Program.Functions.size());
  for (const FuncDef &F : Program.Functions)
    Exec.Functions.push_back(decodeFunction(F, Handlers, Exec.Stats));
  return Exec;
}
