//===--- ExecIR.cpp - bytecode -> decoded-IR lowering --------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecIR.h"
#include "vm/Peephole.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace dpo;

const char *dpo::execOpName(uint16_t Code) {
  if (Code < NumOpcodes)
    return opName((Op)Code);
  static const char *const Names[] = {
#define DPO_XOP_NAME(name) #name,
      DPO_FOR_EACH_XOPCODE(DPO_XOP_NAME)
#undef DPO_XOP_NAME
  };
  unsigned Idx = Code - NumOpcodes;
  return Idx < NumExecOpcodes - NumOpcodes ? Names[Idx] : "<bad-xop>";
}

namespace {

bool isPush(Op Code) { return Code == Op::PushI || Code == Op::PushF; }

bool fusedJumpFor(Op Jump, XOp &Out) {
  switch (Jump) {
  case Op::JmpIfLTI: Out = XOp::JmpLLLTI; return true;
  case Op::JmpIfGEI: Out = XOp::JmpLLGEI; return true;
  case Op::JmpIfLEI: Out = XOp::JmpLLLEI; return true;
  case Op::JmpIfGTI: Out = XOp::JmpLLGTI; return true;
  case Op::JmpIfEQ: Out = XOp::JmpLLEQ; return true;
  case Op::JmpIfNE: Out = XOp::JmpLLNE; return true;
  case Op::JmpIfLTU: Out = XOp::JmpLLLTU; return true;
  case Op::JmpIfGEU: Out = XOp::JmpLLGEU; return true;
  case Op::JmpIfLEU: Out = XOp::JmpLLLEU; return true;
  case Op::JmpIfGTU: Out = XOp::JmpLLGTU; return true;
  default: return false;
  }
}

int64_t packSlots(int64_t Lo, int64_t Hi) {
  return (int64_t)((uint64_t)(uint32_t)Lo | ((uint64_t)(uint32_t)Hi << 32));
}

/// Tries to fuse the pair starting at \p PC into one decoded
/// instruction. The second instruction must not be a jump target (the
/// caller checks), and the first must be unable to jump, trap, or fail —
/// true for all the producers below — so both always retire together and
/// the fused Cost of 2 keeps step accounting exact.
bool fusePair(const Instr &I0, const Instr &I1, ExecInstr &Out) {
  switch (I1.Code) {
  case Op::StoreLocal:
    switch (I0.Code) {
    case Op::PushI:
    case Op::PushF:
      Out.Code = (uint16_t)XOp::StoreLocalImm;
      Out.A = I1.A;
      Out.B = I0.A;
      return true;
    case Op::LoadLocal:
      Out.Code = (uint16_t)XOp::CopyLocal;
      Out.A = I1.A;
      Out.B = I0.A;
      return true;
    case Op::GlobalTidX:
      Out.Code = (uint16_t)XOp::GlobalTidStore;
      Out.A = I1.A;
      Out.B = I0.B;
      return true;
    default:
      return false;
    }
  case Op::LoadLocal:
    // StoreLocal s; LoadLocal s — a tee: keep the top, store a copy.
    if (I0.Code == Op::StoreLocal && I0.A == I1.A) {
      Out.Code = (uint16_t)XOp::TeeLocal;
      Out.A = I0.A;
      return true;
    }
    return false;
  case Op::PushI:
  case Op::PushF:
    if (isPush(I0.Code)) {
      Out.Code = (uint16_t)XOp::Push2;
      Out.A = I0.A;
      Out.B = I1.A;
      return true;
    }
    return false;
  case Op::TruncI:
    switch (I0.Code) {
    case Op::AddI:
      Out.Code = (uint16_t)XOp::AddTrunc;
      Out.A = (I1.A << 1) | (I1.B != 0);
      return true;
    case Op::MulImmI:
      Out.Code = (uint16_t)XOp::MulImmTrunc;
      Out.A = I0.A;
      Out.B = (I1.A << 1) | (I1.B != 0);
      return true;
    case Op::LoadLocalImmAddI:
      if (I0.B >= INT32_MIN && I0.B <= INT32_MAX) {
        Out.Code = (uint16_t)XOp::LoadImmAddTrunc;
        Out.A = packSlots(I0.A, I0.B); // slot | (imm32 << 32)
        Out.B = (I1.A << 1) | (I1.B != 0);
        return true;
      }
      return false;
    default:
      return false;
    }
  case Op::MulImmAddI:
    if (I0.Code == Op::TruncI) {
      Out.Code = (uint16_t)XOp::TruncMulAdd;
      Out.A = I1.A;
      Out.B = (I0.A << 1) | (I0.B != 0);
      return true;
    }
    return false;
  case Op::LoadLoadAddI:
    if (I0.Code == Op::LoadLocal) {
      Out.Code = (uint16_t)XOp::LoadLLAdd;
      Out.A = packSlots(I0.A, I1.A);
      Out.B = I1.B;
      return true;
    }
    return false;
  default: {
    XOp Fused;
    if (I0.Code == Op::LoadLocal2 && fusedJumpFor(I1.Code, Fused)) {
      Out.Code = (uint16_t)Fused;
      Out.A = I1.A; // Jump target (remapped by the caller's fixup pass).
      Out.B = packSlots(I0.A, I0.B);
      return true;
    }
    return false;
  }
  }
}

//===----------------------------------------------------------------------===//
// Trace formation.
//
// A trace is a straight-line superblock walked out of the bytecode from a
// candidate head (function entry, or a back-edge target): forward
// conditionals become guards that side-exit into the baseline region
// (predicted not-taken, unless the fall-through slot holds the
// unconditional Jmp of a break/continue diamond — then the guard is
// inverted and the taken edge is walked), forward unconditional jumps
// fold away, and the head's own back edge closes the trace into a loop.
// Along the walked path an
// abstract evaluator tracks value ranges (seeded from the peephole's
// whole-function slot invariants and refined by every guard's fall-through
// condition), which licenses eliding provably-identity TruncIs; a
// store-to-load forwarder then short-circuits frame-local reloads, and
// the baseline pair fuser runs once more over the straightened stream —
// inside a trace there are no jump-target barriers, so it fuses across
// what used to be basic-block boundaries.
//
// Step accounting is exact by construction: every emitted element carries
// the step cost of the bytecode instructions it covers, and the cost of a
// folded instruction (forward Jmp, elided TruncI) rides on the NEXT
// emitted element — the folded instruction executes before it on the
// original path, so by the time any element retires, exactly the original
// number of steps has been charged. TraceEnter costs 0 and can never trip
// the step budget; a TraceExit trampoline costs 0 unless its guard was
// inverted, in which case it retires the folded Jmp the exit path would
// have executed.
//===----------------------------------------------------------------------===//

constexpr unsigned MaxTraceElems = 192; ///< Walk cap per trace.
constexpr unsigned MaxHeads = 16;       ///< Candidate heads per function.
constexpr unsigned MaxPending = 64;     ///< Folded-cost rider cap.

/// The inverse predicate, for turning a backward taken-edge into a
/// fall-through-into-TraceLoop guard.
Op invertCondJump(Op C) {
  switch (C) {
  case Op::JmpIfZero: return Op::JmpIfNotZero;
  case Op::JmpIfNotZero: return Op::JmpIfZero;
  case Op::JmpIfLTI: return Op::JmpIfGEI;
  case Op::JmpIfGEI: return Op::JmpIfLTI;
  case Op::JmpIfLEI: return Op::JmpIfGTI;
  case Op::JmpIfGTI: return Op::JmpIfLEI;
  case Op::JmpIfEQ: return Op::JmpIfNE;
  case Op::JmpIfNE: return Op::JmpIfEQ;
  case Op::JmpIfLTU: return Op::JmpIfGEU;
  case Op::JmpIfGEU: return Op::JmpIfLTU;
  case Op::JmpIfLEU: return Op::JmpIfGTU;
  case Op::JmpIfGTU: return Op::JmpIfLEU;
  default: return C;
  }
}

bool isCompareOp(Op C) {
  switch (C) {
  case Op::CmpEQ: case Op::CmpNE:
  case Op::CmpLTI: case Op::CmpLEI: case Op::CmpGTI: case Op::CmpGEI:
  case Op::CmpLTU: case Op::CmpLEU: case Op::CmpGTU: case Op::CmpGEU:
  case Op::CmpEQF: case Op::CmpNEF:
  case Op::CmpLTF: case Op::CmpLEF: case Op::CmpGTF: case Op::CmpGEF:
    return true;
  default:
    return false;
  }
}

/// Mirrors the peephole's sregRange: runGrid rejects blocks over 1024
/// threads, so threadIdx stays below 1024 and blockDim in [1, 1024].
SlotRange traceSregRange(unsigned Builtin) {
  if (Builtin == 0)
    return {true, 0, 1023};
  if (Builtin == 2)
    return {true, 1, 1024};
  return {true, 0, (int64_t)UINT32_MAX};
}

/// One abstract stack value: its range plus slot provenance — Slot >= 0
/// means "this value is the current content of local slot Slot", which
/// is what makes a guard on the value refine the slot's range. Any write
/// to the slot scrubs the provenance (the range stays valid: it bounds
/// the value, which still exists on the stack).
struct AbsVal {
  SlotRange R;
  int32_t Slot = -1;
};

/// Abstract evaluator state for one trace walk: a bounded value stack
/// (suffix semantics — overflow drops all knowledge, pops of unknown
/// depth return unknown) plus strong per-path slot ranges, seeded from
/// the whole-function invariants and narrowed by stores and guards.
struct AbsEval {
  static constexpr unsigned Cap = 64;
  AbsVal S[Cap];
  unsigned Sp = 0;
  std::vector<SlotRange> Slots;

  void push(AbsVal V) {
    if (Sp == Cap)
      clearStack(); // Conservative: deeper values become unknown.
    else
      S[Sp++] = V;
  }
  void pushR(SlotRange R) { push({R, -1}); }
  AbsVal pop() { return Sp ? S[--Sp] : AbsVal{}; }
  SlotRange popR() { return pop().R; }
  void popN(unsigned N) { Sp = N >= Sp ? 0 : Sp - N; }
  AbsVal top() const { return Sp ? S[Sp - 1] : AbsVal{}; }
  void clearStack() { Sp = 0; }

  SlotRange slot(int64_t Idx) const {
    return (uint64_t)Idx < Slots.size() ? Slots[Idx] : SlotRange{};
  }
  void setSlot(int64_t Idx, SlotRange R) {
    if ((uint64_t)Idx < Slots.size())
      Slots[Idx] = R;
  }
  void scrubSlot(int64_t Idx) {
    for (unsigned I = 0; I < Sp; ++I)
      if (S[I].Slot == (int32_t)Idx)
        S[I].Slot = -1;
  }
  void writeSlot(int64_t Idx, SlotRange R) {
    scrubSlot(Idx);
    setSlot(Idx, R);
  }
  void clearAll() {
    clearStack();
    for (SlotRange &R : Slots)
      R = {};
  }
};

/// Intersects slot \p Slot's range with [\p NLo, \p NHi]. Unknown
/// promotes to full int64 first; an empty intersection means the path is
/// dead — skip rather than publish a wrong range.
void clampSlot(AbsEval &St, int32_t Slot, int64_t NLo, int64_t NHi) {
  if (Slot < 0)
    return;
  SlotRange Cur = St.slot(Slot);
  if (!Cur.Known)
    Cur = {true, INT64_MIN, INT64_MAX};
  Cur.Lo = std::max(Cur.Lo, NLo);
  Cur.Hi = std::min(Cur.Hi, NHi);
  if (Cur.Lo > Cur.Hi)
    return;
  St.setSlot(Slot, Cur);
}

/// Pops a forward guard's operands and refines slot ranges with the
/// FALL-THROUGH condition (the guard predicted not-taken: its predicate
/// is false on the path that stays in the trace).
void applyGuard(AbsEval &St, Op C) {
  if (C == Op::JmpIfZero) {
    AbsVal V = St.pop(); // Fall through: value != 0 — trim a 0 endpoint.
    if (V.R.Known && V.R.Lo == 0)
      clampSlot(St, V.Slot, 1, INT64_MAX);
    else if (V.R.Known && V.R.Hi == 0)
      clampSlot(St, V.Slot, INT64_MIN, -1);
    return;
  }
  if (C == Op::JmpIfNotZero) {
    AbsVal V = St.pop(); // Fall through: value == 0.
    if (!V.R.Known || (V.R.Lo <= 0 && V.R.Hi >= 0))
      clampSlot(St, V.Slot, 0, 0);
    return;
  }
  AbsVal R = St.pop(), L = St.pop();
  Op SC = C;
  switch (C) {
  case Op::JmpIfLTU: case Op::JmpIfGEU: case Op::JmpIfLEU: case Op::JmpIfGTU:
    // Unsigned predicates coincide with the signed ones only when both
    // sides are provably nonnegative.
    if (!(L.R.Known && R.R.Known && L.R.Lo >= 0 && R.R.Lo >= 0))
      return;
    SC = C == Op::JmpIfLTU   ? Op::JmpIfLTI
         : C == Op::JmpIfGEU ? Op::JmpIfGEI
         : C == Op::JmpIfLEU ? Op::JmpIfLEI
                             : Op::JmpIfGTI;
    break;
  default:
    break;
  }
  switch (SC) {
  case Op::JmpIfLTI: // Fall through: L >= R.
    if (R.R.Known)
      clampSlot(St, L.Slot, R.R.Lo, INT64_MAX);
    if (L.R.Known)
      clampSlot(St, R.Slot, INT64_MIN, L.R.Hi);
    break;
  case Op::JmpIfGEI: // Fall through: L < R.
    if (R.R.Known && R.R.Hi > INT64_MIN)
      clampSlot(St, L.Slot, INT64_MIN, R.R.Hi - 1);
    if (L.R.Known && L.R.Lo < INT64_MAX)
      clampSlot(St, R.Slot, L.R.Lo + 1, INT64_MAX);
    break;
  case Op::JmpIfLEI: // Fall through: L > R.
    if (R.R.Known && R.R.Lo < INT64_MAX)
      clampSlot(St, L.Slot, R.R.Lo + 1, INT64_MAX);
    if (L.R.Known && L.R.Hi > INT64_MIN)
      clampSlot(St, R.Slot, INT64_MIN, L.R.Hi - 1);
    break;
  case Op::JmpIfGTI: // Fall through: L <= R.
    if (R.R.Known)
      clampSlot(St, L.Slot, INT64_MIN, R.R.Hi);
    if (L.R.Known)
      clampSlot(St, R.Slot, L.R.Lo, INT64_MAX);
    break;
  case Op::JmpIfNE: // Fall through: L == R — intersect both ways.
    if (R.R.Known)
      clampSlot(St, L.Slot, R.R.Lo, R.R.Hi);
    if (L.R.Known)
      clampSlot(St, R.Slot, L.R.Lo, L.R.Hi);
    break;
  default: // JmpIfEQ fall-through (L != R) carries no interval.
    break;
  }
}

/// The abstract transfer for one non-control instruction on the trace
/// path. Mirrors the peephole dataflow (vm/Peephole.cpp dataflowStep)
/// but with strong per-path slot updates — inside a trace there are no
/// merge points, so a store's range replaces the slot's outright.
void applyTransfer(AbsEval &St, const Instr &I, const VmProgram *Prog) {
  if (isCompareOp(I.Code)) {
    St.popN(2);
    St.pushR({true, 0, 1});
    return;
  }
  switch (I.Code) {
  case Op::PushI:
  case Op::PushF:
    St.pushR({true, I.A, I.A});
    break;
  case Op::LoadLocal:
    St.push({St.slot(I.A), (int32_t)I.A});
    break;
  case Op::StoreLocal: {
    AbsVal V = St.pop();
    St.writeSlot(I.A, V.R);
    break;
  }
  case Op::Dup:
    St.push(St.top());
    break;
  case Op::Pop:
    St.pop();
    break;
  case Op::Swap: {
    AbsVal A = St.pop(), B = St.pop();
    St.push(A);
    St.push(B);
    break;
  }
  case Op::LdI8:
    St.pop();
    St.pushR(slotRangeOfTrunc(1, 1));
    break;
  case Op::LdU8:
    St.pop();
    St.pushR(slotRangeOfTrunc(1, 0));
    break;
  case Op::LdI16:
    St.pop();
    St.pushR(slotRangeOfTrunc(2, 1));
    break;
  case Op::LdU16:
    St.pop();
    St.pushR(slotRangeOfTrunc(2, 0));
    break;
  case Op::LdI32:
    St.pop();
    St.pushR(slotRangeOfTrunc(4, 1));
    break;
  case Op::LdU32:
    St.pop();
    St.pushR(slotRangeOfTrunc(4, 0));
    break;
  case Op::LdI64:
  case Op::LdF32:
  case Op::LdF64:
    St.pop();
    St.pushR({});
    break;
  case Op::StI8: case Op::StI16: case Op::StI32: case Op::StI64:
  case Op::StF32: case Op::StF64:
    St.popN(2);
    break;
  case Op::FrameAddr:
  case Op::SharedBase:
    St.pushR({});
    break;
  case Op::AddI: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rAdd(L, R));
    break;
  }
  case Op::SubI: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rSub(L, R));
    break;
  }
  case Op::MulI: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rMul(L, R));
    break;
  }
  case Op::DivI: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rDivPos(L, R));
    break;
  }
  case Op::RemI:
  case Op::RemU: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rRemPos(L, R));
    break;
  }
  case Op::DivU: {
    // Nonnegative int64 ranges behave identically under / and u/.
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(L.Known && L.Lo >= 0 ? rDivPos(L, R) : SlotRange{});
    break;
  }
  case Op::MinI: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rMinI(L, R));
    break;
  }
  case Op::MaxI: {
    SlotRange R = St.popR(), L = St.popR();
    St.pushR(rMaxI(L, R));
    break;
  }
  case Op::MinU:
  case Op::MaxU: {
    // Sound only when both sides are provably nonnegative.
    SlotRange R = St.popR(), L = St.popR();
    if (L.Known && R.Known && L.Lo >= 0 && R.Lo >= 0)
      St.pushR(I.Code == Op::MinU ? rMinI(L, R) : rMaxI(L, R));
    else
      St.pushR({});
    break;
  }
  case Op::BitAnd: {
    SlotRange R = St.popR(), L = St.popR();
    if (L.Known && R.Known && L.Lo >= 0 && R.Lo >= 0)
      St.pushR({true, 0, std::min(L.Hi, R.Hi)});
    else
      St.pushR({});
    break;
  }
  case Op::Shl: case Op::ShrI: case Op::ShrU:
  case Op::BitOr: case Op::BitXor:
    St.popN(2);
    St.pushR({});
    break;
  case Op::BitNot: {
    SlotRange V = St.popR();
    St.pushR(V.Known ? SlotRange{true, ~V.Hi, ~V.Lo} : SlotRange{});
    break;
  }
  case Op::NegI: {
    SlotRange V = St.popR();
    if (V.Known && V.Lo != INT64_MIN)
      St.pushR({true, -V.Hi, -V.Lo});
    else
      St.pushR({});
    break;
  }
  case Op::LogicalNot:
    St.pop();
    St.pushR({true, 0, 1});
    break;
  case Op::AddF: case Op::SubF: case Op::MulF: case Op::DivF:
  case Op::Math2:
    St.popN(2);
    St.pushR({});
    break;
  case Op::NegF: case Op::I2F: case Op::U2F: case Op::F2I:
  case Op::F2Single: case Op::Math1:
    St.pop();
    St.pushR({});
    break;
  case Op::TruncI:
    St.pushR(rTruncOf(St.popR(), I.A, I.B));
    break;
  case Op::Call:
    St.popN((unsigned)I.B);
    if (!Prog)
      St.clearStack(); // Unknown callee arity: stay conservative.
    else if ((uint64_t)I.A < Prog->Functions.size() &&
             Prog->Functions[I.A].ReturnsValue)
      St.pushR({});
    // Callees run in their own frames: caller slots survive the call.
    break;
  case Op::SReg:
    St.pushR(traceSregRange((unsigned)I.A / 4));
    break;
  case Op::SyncThreads:
  case Op::ThreadFence:
  case Op::CudaSync:
    break;
  case Op::WarpShfl:
    St.popN(3);
    St.pushR({});
    break;
  case Op::WarpBallot:
    St.popN(2);
    St.pushR(slotRangeOfTrunc(4, 0));
    break;
  case Op::BlockReduce:
    St.pop();
    St.pushR({});
    break;
  case Op::AtomicAdd: case Op::AtomicMax: case Op::AtomicMin:
  case Op::AtomicExch: case Op::AtomicOr: case Op::AtomicAnd:
    St.popN(2);
    St.pushR(I.A == 4 ? slotRangeOfTrunc(4, I.B != 0) : SlotRange{});
    break;
  case Op::AtomicCAS:
    St.popN(3);
    St.pushR(I.A == 4 ? slotRangeOfTrunc(4, I.B != 0) : SlotRange{});
    break;
  case Op::Launch:
    St.popN(6 + (unsigned)I.B);
    break;
  case Op::SpecGuard:
    St.popN(2);
    St.pushR({true, 0, 1});
    break;
  case Op::CudaMalloc:
    St.popN(2);
    St.pushR({true, 0, 0});
    break;
  case Op::CudaFree:
    St.pop();
    St.pushR({true, 0, 0});
    break;
  case Op::CudaMemset:
    St.popN(3);
    St.pushR({true, 0, 0});
    break;
  case Op::CudaMemcpy:
    St.popN(4);
    St.pushR({true, 0, 0});
    break;
  case Op::LoadLocal2:
    St.push({St.slot(I.A), (int32_t)I.A});
    St.push({St.slot(I.B), (int32_t)I.B});
    break;
  case Op::LoadLocalImmAddI:
    St.pushR(rAddConst(St.slot(I.A), I.B));
    break;
  case Op::LoadLoadAddI:
    St.pushR(rAdd(St.slot(I.A), St.slot(I.B)));
    break;
  case Op::AddImmI:
    St.pushR(rAddConst(St.popR(), I.A));
    break;
  case Op::MulImmI:
    St.pushR(rMul(St.popR(), {true, I.A, I.A}));
    break;
  case Op::MulImmAddI: {
    SlotRange Y = St.popR(), X = St.popR();
    St.pushR(rAdd(X, rMul(Y, {true, I.A, I.A})));
    break;
  }
  case Op::IncLocalI32:
    St.writeSlot(I.A, rTruncOf(rAddConst(St.slot(I.A), I.B), 4, 1));
    break;
  case Op::IncLocalI64:
    St.writeSlot(I.A, rAddConst(St.slot(I.A), I.B));
    break;
  case Op::GlobalTidX:
    St.pushR(slotRangeOfTrunc(4, I.B));
    break;
  case Op::LdI32Idx:
    St.pushR(slotRangeOfTrunc(4, 1));
    break;
  case Op::LdU32Idx:
    St.pushR(slotRangeOfTrunc(4, 0));
    break;
  case Op::LdI64Idx: case Op::LdF32Idx: case Op::LdF64Idx:
    St.pushR({});
    break;
  case Op::LdI32Sc:
    St.popN(2);
    St.pushR(slotRangeOfTrunc(4, 1));
    break;
  case Op::LdU32Sc:
    St.popN(2);
    St.pushR(slotRangeOfTrunc(4, 0));
    break;
  case Op::LdI64Sc: case Op::LdF32Sc: case Op::LdF64Sc:
    St.popN(2);
    St.pushR({});
    break;
  case Op::StI32Sc: case Op::StI64Sc: case Op::StF32Sc: case Op::StF64Sc:
    St.popN(3);
    break;
  default:
    // Unmodeled opcode: drop every piece of knowledge (sound).
    St.clearAll();
    break;
  }
}

/// One walked trace element: a bytecode (or forwarder-synthesized XOp)
/// instruction, the step cost it retires (own cost plus any folded
/// riders), and for guards the bytecode PC of the side exit.
struct TraceElem {
  uint16_t Code = 0;
  int64_t A = 0, B = 0;
  uint32_t C = 0; ///< Launch-site ordinal (Op::Launch only).
  unsigned Cost = 0;
  int32_t Exit = -1;
  /// Steps the side-exit trampoline itself retires: nonzero when the
  /// exit path crosses a folded instruction (the unconditional Jmp of an
  /// inverted break-shaped guard) that the in-trace path never executes.
  unsigned ExitCost = 0;
};

struct TraceBuild {
  std::vector<TraceElem> Elems;
  bool Viable = false; ///< Walk produced a well-formed trace.
  bool Closed = false; ///< Ends with a TraceLoop back to the body start.
  bool Bail = false;   ///< Ends with a synthetic Jmp into the baseline.
  unsigned CloseCost = 0;
  unsigned BailPC = 0;   ///< Bytecode PC the bail jump resumes at.
  unsigned BailCost = 0; ///< Folded riders charged on the bail jump.
  /// Baseline decoded dispatches the walked path would execute — the
  /// bar a trace must beat to be kept.
  unsigned BaselineDispatches = 0;
};

/// Walks the predicted path from \p Head, folding forward jumps, turning
/// forward conditionals into side-exit guards, eliding provably-identity
/// TruncIs, and closing on the head's own back edge.
TraceBuild walkTrace(const FuncDef &F, const VmProgram &Program,
                     const std::vector<SlotRange> &Invariants,
                     const std::vector<uint32_t> &Map, unsigned Head) {
  TraceBuild T;
  size_t N = F.Code.size();
  AbsEval St;
  St.Slots = Invariants;
  unsigned Pending = 0; // Folded steps riding on the next emitted element.
  uint32_t LastMap = UINT32_MAX;
  auto CountDispatch = [&](unsigned PC) {
    if (Map[PC] != LastMap) {
      ++T.BaselineDispatches;
      LastMap = Map[PC];
    }
  };
  auto BailAt = [&](unsigned BPC) {
    // A bail must land on a PC that STARTS a decoded instruction. If BPC
    // is the second half of a baseline-fused pair, Map[BPC] is the fused
    // instruction, which would re-execute the first half the trace
    // already covered. Rewind one bytecode instruction: the walk reached
    // a pair's second half only by falling through from its first half
    // (second halves are never jump targets), which was either the last
    // emitted element (un-emit it, keep its folded riders) or an elided
    // TruncI (drop its rider — the fused pair re-executes it).
    if (BPC > 0 && Map[BPC] == Map[BPC - 1]) {
      if (Pending)
        --Pending;
      else {
        Pending = T.Elems.back().Cost - 1;
        T.Elems.pop_back();
      }
      --BPC;
    }
    T.Bail = true;
    T.BailPC = BPC;
    T.BailCost = Pending;
    T.Viable = true;
  };
  unsigned PC = Head;
  for (;;) {
    if (PC >= N)
      return {}; // Validation forbids this; stay safe regardless.
    if (T.Elems.size() >= MaxTraceElems || Pending >= MaxPending) {
      BailAt(PC);
      return T;
    }
    const Instr &I = F.Code[PC];
    if (I.Code == Op::Jmp) {
      unsigned Tgt = (unsigned)I.A;
      if (Tgt == Head) { // The loop's own back edge: close.
        CountDispatch(PC);
        T.Closed = true;
        T.CloseCost = 1 + Pending;
        T.Viable = true;
        return T;
      }
      if (Tgt > PC) { // Forward: fold it, charge the next element.
        CountDispatch(PC);
        ++Pending;
        PC = Tgt;
        continue;
      }
      BailAt(PC); // Backward to some other loop: not our path.
      return T;
    }
    if (isJumpOp(I.Code)) {
      unsigned Tgt = (unsigned)I.A;
      if (Tgt == Head) {
        // Backward conditional to our head: invert it so the loop path
        // falls through into TraceLoop and the exit path side-exits to
        // the original fall-through.
        CountDispatch(PC);
        TraceElem E;
        E.Code = (uint16_t)invertCondJump(I.Code);
        E.A = I.A;
        E.B = I.B;
        E.Cost = 1 + Pending;
        E.Exit = (int32_t)(PC + 1);
        Pending = 0;
        T.Elems.push_back(E);
        T.Closed = true;
        T.CloseCost = 0;
        T.Viable = true;
        return T;
      }
      if (Tgt <= PC) { // Backward to another head: hand off.
        BailAt(PC);
        return T;
      }
      // Forward conditional: pick the predicted edge. The default is
      // fall-through (not-taken), but the `JmpIf -> continue-label; Jmp
      // exit` shape compilers emit for break/continue edges makes the
      // TAKEN edge the one that stays in the loop. Detect it by an
      // unconditional Jmp in the fall-through slot jumping past the
      // conditional's own target: invert the guard, side-exit through
      // the folded Jmp's target (its step rides on the trampoline), and
      // keep walking at the taken target.
      CountDispatch(PC);
      TraceElem E;
      E.Cost = 1 + Pending;
      Pending = 0;
      if (PC + 1 < N && F.Code[PC + 1].Code == Op::Jmp &&
          (unsigned)F.Code[PC + 1].A > Tgt) {
        E.Code = (uint16_t)invertCondJump(I.Code);
        E.A = I.A;
        E.B = I.B;
        E.Exit = (int32_t)(unsigned)F.Code[PC + 1].A;
        E.ExitCost = 1; // The folded Jmp retires on the exit path only.
        T.Elems.push_back(E);
        applyGuard(St, (Op)E.Code);
        PC = Tgt;
        continue;
      }
      E.Code = (uint16_t)I.Code;
      E.A = I.A;
      E.B = I.B;
      E.Exit = (int32_t)Tgt;
      T.Elems.push_back(E);
      applyGuard(St, I.Code);
      ++PC;
      continue;
    }
    if (I.Code == Op::Ret || I.Code == Op::RetVoid || I.Code == Op::Trap) {
      CountDispatch(PC);
      TraceElem E;
      E.Code = (uint16_t)I.Code;
      E.A = I.A;
      E.B = I.B;
      E.Cost = 1 + Pending;
      T.Elems.push_back(E);
      T.Viable = true;
      return T;
    }
    if (I.Code == Op::TruncI && slotRangeFits(St.top().R, I.A, I.B)) {
      // Provably the identity on this path: skip it. The abstract state
      // is untouched — value and slot provenance both survive.
      CountDispatch(PC);
      ++Pending;
      ++PC;
      continue;
    }
    CountDispatch(PC);
    TraceElem E;
    E.Code = (uint16_t)I.Code;
    E.A = I.A;
    E.B = I.B;
    E.C = I.C;
    E.Cost = 1 + Pending;
    Pending = 0;
    T.Elems.push_back(E);
    applyTransfer(St, I, &Program);
    ++PC;
  }
}

/// Forwards frame-local stores to matching reloads inside the trace.
/// A store triple [FrameAddr off; PushI k | LoadLocal s; StI*] records a
/// fact (the store itself is kept); a later [FrameAddr off; LdI*/LdU*]
/// with an exact offset+width match becomes one PushI (immediate facts)
/// or XOp::LoadTrunc (slot facts) carrying both elements' cost. Facts
/// die on slot overwrites, on overlapping or unrecognized stores, and on
/// anything that can write memory from outside the walked path.
void forwardFrameStores(std::vector<TraceElem> &Elems) {
  struct Fact {
    int64_t Off;
    unsigned Width;
    int32_t Slot; ///< -1: immediate fact (Imm), else locals slot.
    int64_t Imm;
  };
  std::vector<Fact> Facts;
  auto KillAll = [&] { Facts.clear(); };
  auto KillSlot = [&](int64_t S) {
    Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                               [&](const Fact &F) {
                                 return F.Slot == (int32_t)S;
                               }),
                Facts.end());
  };
  auto KillOverlap = [&](int64_t Off, unsigned W) {
    Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                               [&](const Fact &F) {
                                 return Off < F.Off + (int64_t)F.Width &&
                                        F.Off < Off + (int64_t)W;
                               }),
                Facts.end());
  };
  auto FindFact = [&](int64_t Off, unsigned W) -> Fact * {
    for (Fact &F : Facts)
      if (F.Off == Off && F.Width == W)
        return &F;
    return nullptr;
  };
  auto StoreWidth = [](uint16_t C) -> unsigned {
    switch ((Op)C) {
    case Op::StI8: return 1;
    case Op::StI16: return 2;
    case Op::StI32: return 4;
    case Op::StI64: return 8;
    default: return 0;
    }
  };
  auto LoadSpec = [](uint16_t C, unsigned &W, unsigned &SE) -> bool {
    switch ((Op)C) {
    case Op::LdI8: W = 1; SE = 1; return true;
    case Op::LdU8: W = 1; SE = 0; return true;
    case Op::LdI16: W = 2; SE = 1; return true;
    case Op::LdU16: W = 2; SE = 0; return true;
    case Op::LdI32: W = 4; SE = 1; return true;
    case Op::LdU32: W = 4; SE = 0; return true;
    case Op::LdI64: W = 8; SE = 0; return true;
    default: return false;
    }
  };

  std::vector<TraceElem> Out;
  Out.reserve(Elems.size());
  size_t N = Elems.size();
  for (size_t I = 0; I < N;) {
    const TraceElem &E = Elems[I];
    if (E.Code < NumOpcodes && (Op)E.Code == Op::FrameAddr) {
      // Store triple?
      if (I + 2 < N && Elems[I + 1].Code < NumOpcodes &&
          Elems[I + 2].Code < NumOpcodes) {
        const TraceElem &V = Elems[I + 1], &S = Elems[I + 2];
        unsigned W = StoreWidth(S.Code);
        if (W && ((Op)V.Code == Op::PushI || (Op)V.Code == Op::LoadLocal)) {
          KillOverlap(E.A, W);
          Fact Ft{E.A, W, -1, 0};
          if ((Op)V.Code == Op::PushI)
            Ft.Imm = V.A;
          else
            Ft.Slot = (int32_t)V.A;
          Facts.push_back(Ft);
          Out.push_back(E);
          Out.push_back(V);
          Out.push_back(S);
          I += 3;
          continue;
        }
      }
      // Forwardable reload?
      if (I + 1 < N && Elems[I + 1].Code < NumOpcodes) {
        unsigned W, SE;
        if (LoadSpec(Elems[I + 1].Code, W, SE)) {
          if (Fact *Ft = FindFact(E.A, W)) {
            TraceElem R;
            R.Cost = E.Cost + Elems[I + 1].Cost;
            if (Ft->Slot < 0) {
              R.Code = (uint16_t)Op::PushI;
              R.A = wrapToWidth(Ft->Imm, W, SE);
            } else {
              R.Code = (uint16_t)XOp::LoadTrunc;
              R.A = Ft->Slot;
              R.B = ((int64_t)W << 1) | SE;
            }
            Out.push_back(R);
            I += 2;
            continue;
          }
        }
      }
    }
    if (E.Code < NumOpcodes) {
      switch ((Op)E.Code) {
      case Op::StoreLocal:
      case Op::IncLocalI32:
      case Op::IncLocalI64:
        KillSlot(E.A);
        break;
      case Op::StI8: case Op::StI16: case Op::StI32: case Op::StI64:
      case Op::StF32: case Op::StF64:
      case Op::StI32Sc: case Op::StI64Sc: case Op::StF32Sc: case Op::StF64Sc:
      case Op::AtomicAdd: case Op::AtomicMax: case Op::AtomicMin:
      case Op::AtomicExch: case Op::AtomicCAS: case Op::AtomicOr:
      case Op::AtomicAnd:
      case Op::Call: case Op::Launch:
      case Op::SyncThreads: case Op::ThreadFence: case Op::CudaSync:
      case Op::WarpShfl: case Op::WarpBallot: case Op::BlockReduce:
      case Op::CudaMalloc: case Op::CudaFree:
      case Op::CudaMemset: case Op::CudaMemcpy:
        KillAll();
        break;
      default:
        break;
      }
    }
    Out.push_back(E);
    ++I;
  }
  Elems = std::move(Out);
}

/// Runs the baseline pair fuser over the straightened element stream.
/// Traces have no interior jump targets, so pairs fuse across what used
/// to be basic-block boundaries; a guard may be the second half (its
/// side exit transfers), never the first (it could leave the trace).
void fuseTraceElems(std::vector<TraceElem> &Elems) {
  std::vector<TraceElem> Out;
  Out.reserve(Elems.size());
  size_t N = Elems.size();
  for (size_t I = 0; I < N;) {
    if (I + 1 < N && Elems[I].Code < NumOpcodes &&
        Elems[I + 1].Code < NumOpcodes && Elems[I].Exit < 0 &&
        Elems[I].Cost + Elems[I + 1].Cost <= 255) {
      Instr I0{(Op)Elems[I].Code, Elems[I].A, Elems[I].B};
      Instr I1{(Op)Elems[I + 1].Code, Elems[I + 1].A, Elems[I + 1].B};
      ExecInstr E;
      if (fusePair(I0, I1, E)) {
        TraceElem F;
        F.Code = E.Code;
        F.A = E.A;
        F.B = E.B;
        F.Cost = Elems[I].Cost + Elems[I + 1].Cost;
        F.Exit = Elems[I + 1].Exit;
        F.ExitCost = Elems[I + 1].ExitCost;
        Out.push_back(F);
        I += 2;
        continue;
      }
    }
    Out.push_back(Elems[I]);
    ++I;
  }
  Elems = std::move(Out);
}

/// Appends one kept trace to \p Out: TraceEnter, the body (guard targets
/// patched to their TraceExit trampolines), the closing TraceLoop or
/// bail jump, then the trampolines. Records the head's baseline index ->
/// TraceEnter mapping for the caller's retarget pass.
void emitTrace(const TraceBuild &T, unsigned Head,
               const std::vector<uint32_t> &Map, ExecFunc &Out,
               std::unordered_map<uint32_t, uint32_t> &EnterOf) {
  // Unique (side-exit PC, trampoline cost) pairs, first-use order. The
  // cost keys the dedup because an inverted break-shaped guard charges
  // its folded Jmp on the trampoline while a plain guard charges nothing.
  std::vector<std::pair<int32_t, unsigned>> Exits;
  for (const TraceElem &E : T.Elems) {
    std::pair<int32_t, unsigned> Key{E.Exit, E.ExitCost};
    if (E.Exit >= 0 &&
        std::find(Exits.begin(), Exits.end(), Key) == Exits.end())
      Exits.push_back(Key);
  }
  unsigned EnterIdx = (unsigned)Out.Code.size();
  unsigned TrampBase = EnterIdx + 1 + (unsigned)T.Elems.size() +
                       (T.Closed ? 1 : 0) + (T.Bail ? 1 : 0);
  ExecInstr En;
  En.Code = (uint16_t)XOp::TraceEnter;
  En.Cost = 0;
  Out.Code.push_back(En);
  for (const TraceElem &E : T.Elems) {
    ExecInstr X;
    X.Code = E.Code;
    X.A = E.A;
    X.B = E.B;
    X.C = E.C;
    X.Cost = (uint8_t)E.Cost;
    if (E.Exit >= 0) {
      std::pair<int32_t, unsigned> Key{E.Exit, E.ExitCost};
      unsigned Pos = (unsigned)(std::find(Exits.begin(), Exits.end(), Key) -
                                Exits.begin());
      X.A = TrampBase + Pos;
    } else if (E.Code < NumOpcodes && (Op)E.Code == Op::SReg) {
      // Pre-split the dim*4+component encoding, as the baseline does.
      X.A = (unsigned)E.A / 4;
      X.B = (unsigned)E.A % 4;
    }
    Out.Code.push_back(X);
  }
  if (T.Closed) {
    ExecInstr L;
    L.Code = (uint16_t)XOp::TraceLoop;
    L.A = EnterIdx + 1;
    L.Cost = (uint8_t)T.CloseCost;
    Out.Code.push_back(L);
  }
  if (T.Bail) {
    ExecInstr B;
    B.Code = (uint16_t)Op::Jmp;
    B.A = Map[T.BailPC];
    B.Cost = (uint8_t)T.BailCost;
    Out.Code.push_back(B);
  }
  for (const auto &[XPC, XCost] : Exits) {
    ExecInstr Tp;
    Tp.Code = (uint16_t)XOp::TraceExit;
    Tp.A = Map[XPC];
    Tp.Cost = (uint8_t)XCost;
    Out.Code.push_back(Tp);
  }
  EnterOf[Map[Head]] = EnterIdx;
}

/// Forms traces for every candidate head of \p F and appends the kept
/// ones after the baseline region, then retargets every jump aimed at a
/// kept head into its trace. Bail jumps and side-exit trampolines are
/// retargeted too, so traces chain into each other (an entry trace bails
/// into a loop trace, an exited loop re-enters on the next back edge).
void formTraces(const FuncDef &F, const VmProgram &Program,
                const std::vector<uint32_t> &Map, ExecFunc &Out,
                ExecDecodeStats &Stats) {
  size_t N = F.Code.size();
  std::vector<unsigned> Heads;
  Heads.push_back(0); // The entry trace.
  for (size_t PC = 0; PC < N && Heads.size() < MaxHeads; ++PC) {
    const Instr &I = F.Code[PC];
    if (isJumpOp(I.Code) && (uint64_t)I.A <= PC &&
        std::find(Heads.begin(), Heads.end(), (unsigned)I.A) == Heads.end())
      Heads.push_back((unsigned)I.A); // A back-edge target: a loop head.
  }

  // Whole-function slot invariants: sound at any point of any
  // activation, so sound to seed a trace head with however control got
  // there. Guards narrow them further along the walked path.
  std::vector<SlotRange> Invariants = slotInvariantRanges(F, &Program);

  std::unordered_map<uint32_t, uint32_t> EnterOf;
  for (unsigned Head : Heads) {
    TraceBuild T = walkTrace(F, Program, Invariants, Map, Head);
    if (!T.Viable)
      continue;
    forwardFrameStores(T.Elems);
    fuseTraceElems(T.Elems);
    // Keep only traces that dispatch strictly less than the baseline
    // path they cover (TraceLoop skips TraceEnter, so the steady-state
    // loop path is body + closing jump).
    unsigned PathDispatch = (unsigned)T.Elems.size() + (T.Closed ? 1 : 0) +
                            (T.Bail ? 1 : 0);
    if (std::getenv("DPO_TRACE_DUMP")) {
      std::fprintf(stderr, "%s ", PathDispatch >= T.BaselineDispatches
                                      ? "DROP"
                                      : "KEEP");
      std::fprintf(stderr,
                   "trace head=%u closed=%d bail=%d bailpc=%u base=%u "
                   "path=%u elems=%zu\n",
                   Head, (int)T.Closed, (int)T.Bail, T.BailPC,
                   T.BaselineDispatches, PathDispatch, T.Elems.size());
      for (const TraceElem &E : T.Elems)
        std::fprintf(stderr, "  %-18s A=%lld B=%lld cost=%u exit=%d\n",
                     execOpName(E.Code), (long long)E.A, (long long)E.B,
                     E.Cost, E.Exit);
    }
    if (PathDispatch >= T.BaselineDispatches)
      continue;
    emitTrace(T, Head, Map, Out, EnterOf);
    ++Stats.TracesFormed;
  }
  Stats.TraceInstrs += Out.Code.size() - Out.TraceBase;
  if (EnterOf.empty())
    return;

  // Retarget: any jump whose (already remapped) target is a kept head's
  // baseline index enters the trace instead. Trace-internal operands
  // (guard trampolines, TraceLoop) point at or past TraceBase and are
  // never touched; bail jumps and trampolines point below it and chain.
  for (ExecInstr &E : Out.Code)
    if (execOpIsJump(E.Code) && (uint64_t)E.A < Out.TraceBase) {
      auto It = EnterOf.find((uint32_t)E.A);
      if (It != EnterOf.end())
        E.A = It->second;
    }
  auto It = EnterOf.find(Map[0]);
  if (It != EnterOf.end())
    Out.EntryPC = It->second; // Fresh frames start in the entry trace.
}

ExecFunc decodeFunction(const FuncDef &F, const VmProgram &Program,
                        const void *const *Handlers, bool EnableTraces,
                        ExecDecodeStats &Stats) {
  ExecFunc Out;
  Out.NumLocals = F.NumLocals;
  Out.NumParamSlots = F.NumParamSlots;
  Out.FrameBytes = F.FrameBytes;
  Out.IsKernel = F.IsKernel;
  Out.ReturnsValue = F.ReturnsValue;

  size_t N = F.Code.size();
  std::vector<uint8_t> Target = computeJumpTargetFlags(F);
  std::vector<uint32_t> Map(N + 1, 0);
  Out.Code.reserve(N);

  size_t PC = 0;
  while (PC < N) {
    ExecInstr E;
    if (PC + 1 < N && !Target[PC + 1] &&
        fusePair(F.Code[PC], F.Code[PC + 1], E)) {
      E.Cost = 2;
      Map[PC] = Map[PC + 1] = (uint32_t)Out.Code.size();
      Out.Code.push_back(E);
      PC += 2;
      ++Stats.FusedPairs;
      continue;
    }
    const Instr &I = F.Code[PC];
    E.Code = (uint16_t)I.Code;
    E.A = I.A;
    E.B = I.B;
    E.C = I.C;
    if (I.Code == Op::SReg) {
      // Pre-split the dim*4+component encoding.
      E.A = (unsigned)I.A / 4;
      E.B = (unsigned)I.A % 4;
    }
    Map[PC] = (uint32_t)Out.Code.size();
    Out.Code.push_back(E);
    ++PC;
  }
  Map[N] = (uint32_t)Out.Code.size();

  for (ExecInstr &E : Out.Code)
    if (execOpIsJump(E.Code))
      E.A = Map[E.A]; // Validation guarantees the target is in range.

  Stats.InstrsIn += N;
  Stats.InstrsOut += Out.Code.size();
  Out.TraceBase = (unsigned)Out.Code.size();

  if (EnableTraces && N)
    formTraces(F, Program, Map, Out, Stats);

  if (Handlers)
    for (ExecInstr &E : Out.Code)
      E.Handler = Handlers[E.Code];
  return Out;
}

} // namespace

ExecProgram dpo::decodeProgram(const VmProgram &Program,
                               const void *const *Handlers,
                               bool EnableTraces) {
  ExecProgram Exec;
  Exec.Functions.reserve(Program.Functions.size());
  for (const FuncDef &F : Program.Functions)
    Exec.Functions.push_back(
        decodeFunction(F, Program, Handlers, EnableTraces, Exec.Stats));
  return Exec;
}
