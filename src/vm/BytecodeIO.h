//===--- BytecodeIO.h - Versioned VmProgram (de)serialization -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk format for compiled bytecode images. The service layer
/// (src/service/) caches compile artifacts across processes; this is the
/// program half of that artifact: a deterministic, versioned, checksummed
/// byte image of a VmProgram.
///
/// Contract:
///  - Deterministic bytes: the same VmProgram always serializes to the
///    same image (unordered maps are rebuilt / emitted in sorted order,
///    all integers are little-endian fixed-width).
///  - Round-trip exact: deserialize(serialize(P)) reproduces P
///    observably (same functions, code, globals, launch sites), and
///    serialize(deserialize(Image)) == Image for any image this writer
///    produced. The round-trip fuzz suite (tests/vm/BytecodeIOTest.cpp)
///    pins both, plus bit-identical execution across every engine.
///  - Corruption-safe: truncated, bit-flipped, or stale-version images
///    fail deserialization with a diagnostic — never an abort, never a
///    partially-initialized program.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_VM_BYTECODEIO_H
#define DPO_VM_BYTECODEIO_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace dpo {

/// Bump when the serialized layout (or anything it embeds, e.g. the
/// opcode set's meaning) changes incompatibly. Old images then fail the
/// version check and callers fall back to a clean recompile.
constexpr uint32_t BytecodeFormatVersion = 1;

/// FNV-1a 64-bit over \p Bytes, continuing from \p Seed. Used for the
/// image checksum and (by the service layer) for content-addressed cache
/// keys; stable across platforms and runs.
uint64_t fnv1a64(std::string_view Bytes,
                 uint64_t Seed = 0xcbf29ce484222325ull);

/// Serializes \p Program to the versioned image format. Deterministic:
/// equal programs yield byte-identical images.
std::string serializeVmProgram(const VmProgram &Program);

/// Parses an image back into \p Out. Returns false (with \p Error set
/// and \p Out untouched) on truncation, checksum mismatch, version skew,
/// or any structurally invalid content (bad opcode, bad type kind,
/// duplicate function name, out-of-range counts).
bool deserializeVmProgram(std::string_view Image, VmProgram &Out,
                          std::string &Error);

} // namespace dpo

#endif // DPO_VM_BYTECODEIO_H
