//===--- VM.cpp ------------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
// The interpreter core. Three structural decisions keep the hot loop fast
// (measured by bench/vm_throughput.cpp):
//
//  1. Threaded dispatch: on GCC/Clang every handler ends by indexing a
//     dense label table with the next opcode and jumping straight to it
//     (computed goto), giving the branch predictor one indirect branch
//     per *handler* instead of one shared switch branch. A portable
//     switch fallback compiles everywhere else from the same handler
//     bodies (see the VM_CASE/VM_NEXT macros).
//
//  2. Zero steady-state allocation: thread contexts (operand stack, frame
//     stack, locals arena, addressable frame memory) live in per-device
//     pools reused across blocks and grids. runBlock resets contexts
//     instead of constructing them; vectors keep their capacity, so after
//     warm-up no heap allocation happens per thread or per block.
//
//  3. Decoded execution state: the current function's code pointer, the
//     frame's locals pointer, the operand stack pointer, and the memory
//     base are interpreter registers (locals), re-derived only at frame
//     switches. Bytecode is validated once at device construction
//     (validateProgram), so the loop performs no per-step bounds checks
//     on PC, local slots, or callee indices.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "parse/Parser.h"
#include "vm/SlotOps.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>

using namespace dpo;

namespace {

// Slot arithmetic shared with the peephole constant folder
// (vm/SlotOps.h): folding computes exactly what execution computes.
double asDouble(int64_t Bits) { return slotAsDouble(Bits); }
int64_t asBits(double D) { return slotFromDouble(D); }

/// Addressable per-thread frame-memory region (reused across blocks).
constexpr uint64_t ThreadFrameMemBytes = 64 * 1024;

} // namespace

Device::Device(VmProgram ProgramIn, uint64_t MemoryBytes)
    : Program(std::move(ProgramIn)), Memory(MemoryBytes, 0) {
  // Null page, then globals, then the heap.
  BumpPtr = GlobalBase;
  if (!Program.GlobalImage.empty()) {
    std::memcpy(Memory.data() + GlobalBase, Program.GlobalImage.data(),
                Program.GlobalImage.size());
    BumpPtr += Program.GlobalImage.size();
  }
  BumpPtr = (BumpPtr + 63) & ~63ull;
  validateProgram();
}

Device::~Device() = default;

void Device::validateProgram() {
  auto Bad = [&](const FuncDef &F, const std::string &What) {
    if (ValidationError.empty())
      ValidationError = "invalid bytecode in '" + F.Name + "': " + What;
  };
  for (const FuncDef &F : Program.Functions) {
    size_t N = F.Code.size();
    if (N == 0) {
      Bad(F, "empty code");
      continue;
    }
    Op LastOp = F.Code.back().Code;
    if (LastOp != Op::Ret && LastOp != Op::RetVoid && LastOp != Op::Jmp &&
        LastOp != Op::Trap)
      Bad(F, "does not end in a terminator");
    for (const Instr &I : F.Code) {
      if (isJumpOp(I.Code) && (uint64_t)I.A >= N)
        Bad(F, std::string("jump target out of range in ") + opName(I.Code));
      switch (I.Code) {
      case Op::LoadLocal:
      case Op::StoreLocal:
      case Op::LoadLocalImmAddI:
      case Op::IncLocalI32:
      case Op::IncLocalI64:
        if ((uint64_t)I.A >= F.NumLocals)
          Bad(F, std::string("local slot out of range in ") + opName(I.Code));
        break;
      case Op::LoadLocal2:
      case Op::LoadLoadAddI:
        if ((uint64_t)I.A >= F.NumLocals || (uint64_t)I.B >= F.NumLocals)
          Bad(F, std::string("local slot out of range in ") + opName(I.Code));
        break;
      case Op::Call:
      case Op::Launch:
        if ((uint64_t)I.A >= Program.Functions.size()) {
          Bad(F, std::string("callee index out of range in ") +
                     opName(I.Code));
        } else if ((uint64_t)I.B !=
                   Program.Functions[I.A].NumParamSlots) {
          // The interpreter copies exactly B argument slots into the
          // callee's locals (Call) or launch record (Launch) with no
          // per-step bounds check — the slot count must match here.
          Bad(F, std::string("argument slot count mismatch in ") +
                     opName(I.Code));
        }
        break;
      case Op::Trap:
        if ((uint64_t)I.A >= Program.TrapMessages.size())
          Bad(F, "trap message index out of range");
        break;
      default:
        break;
      }
    }
  }
}

uint64_t Device::alloc(uint64_t Bytes) {
  uint64_t Addr = (BumpPtr + 7) & ~7ull;
  if (Bytes > Memory.size() || Addr > Memory.size() - Bytes) {
    LastError = "device out of memory";
    return 0;
  }
  BumpPtr = Addr + Bytes;
  std::memset(Memory.data() + Addr, 0, Bytes);
  return Addr;
}

// Overflow-safe: (Addr + Bytes) may wrap for hostile Addr, so compare
// against the size from the other side.
#define DPO_CHECKED_RW(Addr, Bytes)                                           \
  assert((Addr) != 0 && (uint64_t)(Bytes) <= Memory.size() &&                 \
         (uint64_t)(Addr) <= Memory.size() - (uint64_t)(Bytes) &&             \
         "host access out of bounds")

void Device::writeI32(uint64_t Addr, int32_t V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeU32(uint64_t Addr, uint32_t V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeI64(uint64_t Addr, int64_t V) {
  DPO_CHECKED_RW(Addr, 8);
  std::memcpy(Memory.data() + Addr, &V, 8);
}
void Device::writeF32(uint64_t Addr, float V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeF64(uint64_t Addr, double V) {
  DPO_CHECKED_RW(Addr, 8);
  std::memcpy(Memory.data() + Addr, &V, 8);
}
int32_t Device::readI32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  int32_t V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
uint32_t Device::readU32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  uint32_t V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
int64_t Device::readI64(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 8);
  int64_t V;
  std::memcpy(&V, Memory.data() + Addr, 8);
  return V;
}
float Device::readF32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  float V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
double Device::readF64(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 8);
  double V;
  std::memcpy(&V, Memory.data() + Addr, 8);
  return V;
}

uint64_t Device::allocI32(const std::vector<int32_t> &Values) {
  uint64_t Addr = alloc(Values.size() * 4);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
  return Addr;
}

std::vector<int32_t> Device::readI32Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 4);
  std::vector<int32_t> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 4);
  return Result;
}

uint64_t Device::allocI64(const std::vector<int64_t> &Values) {
  uint64_t Addr = alloc(Values.size() * 8);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
  return Addr;
}
uint64_t Device::allocF32(const std::vector<float> &Values) {
  uint64_t Addr = alloc(Values.size() * 4);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
  return Addr;
}
uint64_t Device::allocF64(const std::vector<double> &Values) {
  uint64_t Addr = alloc(Values.size() * 8);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
  return Addr;
}
std::vector<int64_t> Device::readI64Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 8);
  std::vector<int64_t> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 8);
  return Result;
}
std::vector<float> Device::readF32Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 4);
  std::vector<float> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 4);
  return Result;
}
std::vector<double> Device::readF64Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 8);
  std::vector<double> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 8);
  return Result;
}
void Device::writeI32Array(uint64_t Addr, const std::vector<int32_t> &Values) {
  DPO_CHECKED_RW(Addr, Values.size() * 4);
  std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
}
void Device::writeI64Array(uint64_t Addr, const std::vector<int64_t> &Values) {
  DPO_CHECKED_RW(Addr, Values.size() * 8);
  std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
}
void Device::writeF64Array(uint64_t Addr, const std::vector<double> &Values) {
  DPO_CHECKED_RW(Addr, Values.size() * 8);
  std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
}
void Device::fillI32(uint64_t Addr, size_t Count, int32_t V) {
  DPO_CHECKED_RW(Addr, Count * 4);
  for (size_t I = 0; I < Count; ++I)
    std::memcpy(Memory.data() + Addr + I * 4, &V, 4);
}
void Device::fillI64(uint64_t Addr, size_t Count, int64_t V) {
  DPO_CHECKED_RW(Addr, Count * 8);
  for (size_t I = 0; I < Count; ++I)
    std::memcpy(Memory.data() + Addr + I * 8, &V, 8);
}

bool Device::fail(const std::string &Message) {
  if (LastError.empty())
    LastError = Message;
  return false;
}

bool Device::checkRange(uint64_t Addr, uint64_t Bytes) {
  if (Addr == 0)
    return fail("null pointer access");
  // Written so (Addr + Bytes) cannot wrap around for large Addr.
  if (Bytes > Memory.size() || Addr > Memory.size() - Bytes)
    return fail("device memory access out of bounds");
  return true;
}

void Device::growStack(ThreadCtx &T) {
  T.Stack.resize(T.Stack.empty() ? 64 : T.Stack.size() * 2);
}

bool Device::launchKernel(const std::string &Name, Dim3V Grid, Dim3V Block,
                          const std::vector<int64_t> &Args) {
  LastError.clear();
  StepsUsed = 0;
  if (!ValidationError.empty())
    return fail(ValidationError);
  const FuncDef *F = Program.find(Name);
  if (!F)
    return fail("unknown kernel '" + Name + "'");
  if (!F->IsKernel)
    return fail("'" + Name + "' is not a __global__ kernel");
  if (Args.size() != F->NumParamSlots)
    return fail("kernel '" + Name + "' expects " +
                std::to_string(F->NumParamSlots) + " argument slots, got " +
                std::to_string(Args.size()));
  PendingLaunch L;
  L.Func = Program.FunctionIndex.at(Name);
  L.Grid = Grid;
  L.Block = Block;
  L.Args = Args;
  L.FromHost = true;
  ++Stats.HostLaunches;
  Queue.push_back(std::move(L));
  return drainLaunches();
}

bool Device::callHost(const std::string &Name,
                      const std::vector<int64_t> &Args) {
  LastError.clear();
  StepsUsed = 0;
  if (!ValidationError.empty())
    return fail(ValidationError);
  const FuncDef *F = Program.find(Name);
  if (!F)
    return fail("unknown function '" + Name + "'");
  if (Args.size() != F->NumParamSlots)
    return fail("function '" + Name + "' expects " +
                std::to_string(F->NumParamSlots) + " argument slots, got " +
                std::to_string(Args.size()));

  InHostCall = true;
  PendingLaunch L;
  L.Func = Program.FunctionIndex.at(Name);
  L.Grid = {1, 1, 1};
  L.Block = {1, 1, 1};
  L.Args = Args;
  L.FromHost = true;
  bool Ok = runGrid(L) && drainLaunches();
  InHostCall = false;
  return Ok;
}

bool Device::hasKernel(const std::string &Name) const {
  const FuncDef *F = Program.find(Name);
  return F && F->IsKernel;
}

bool Device::hasHostFunction(const std::string &Name) const {
  const FuncDef *F = Program.find(Name);
  return F && !F->IsKernel;
}

bool Device::drainLaunches() {
  while (!Queue.empty()) {
    PendingLaunch L = std::move(Queue.front());
    Queue.pop_front();
    if (!runGrid(L))
      return false;
  }
  return true;
}

bool Device::runGrid(const PendingLaunch &L) {
  const FuncDef &F = Program.Functions[L.Func];
  ++Stats.GridsLaunched;
  Stats.LargestGridBlocks =
      std::max(Stats.LargestGridBlocks, (uint64_t)L.Grid.count());
  if (L.Grid.count() == 0 || L.Block.count() == 0)
    return true; // Empty grids complete immediately.
  if (L.Block.count() > 1024)
    return fail("block of " + std::to_string(L.Block.count()) +
                " threads exceeds the 1024-thread limit in '" + F.Name + "'");

  uint64_t SharedBase = 0;
  if (F.SharedBytes > 0) {
    SharedBase = alloc(F.SharedBytes);
    if (!SharedBase)
      return false;
  }

  // Grid-log bookkeeping: snapshot the step counters so this grid's
  // record reports exclusive work even when a host pseudo-thread drains
  // nested grids mid-flight, and stack the per-thread maximum (nested
  // runGrid calls share the member).
  uint64_t StepsBefore = 0, AttribBefore = 0, SavedMax = 0;
  if (GridLogEnabled) {
    StepsBefore = Stats.Steps;
    AttribBefore = AttributedSteps;
    SavedMax = CurGridMaxThreadSteps;
    CurGridMaxThreadSteps = 0;
  }

  for (uint32_t BZ = 0; BZ < L.Grid.Z; ++BZ)
    for (uint32_t BY = 0; BY < L.Grid.Y; ++BY)
      for (uint32_t BX = 0; BX < L.Grid.X; ++BX) {
        if (SharedBase)
          std::memset(Memory.data() + SharedBase, 0, F.SharedBytes);
        if (!runBlock(L, {BX, BY, BZ}, SharedBase))
          return false;
      }

  if (GridLogEnabled) {
    uint64_t Total = Stats.Steps - StepsBefore;
    uint64_t Nested = AttributedSteps - AttribBefore;
    GridRecord R;
    R.Blocks = L.Grid.count();
    R.Threads = L.Grid.count() * L.Block.count();
    R.Steps = Total - Nested;
    R.MaxThreadSteps = CurGridMaxThreadSteps;
    R.BlockDim = (uint32_t)L.Block.count();
    R.FromHost = L.FromHost;
    GridLog.push_back(R);
    AttributedSteps = AttribBefore + Total;
    CurGridMaxThreadSteps = SavedMax;
  }
  return true;
}

bool Device::runBlock(const PendingLaunch &L, Dim3V BlockIdx,
                      uint64_t SharedBase) {
  const FuncDef &F = Program.Functions[L.Func];
  ++Stats.BlocksExecuted;

  // Acquire the context pool for this nesting depth (depth > 0 only when
  // a host pseudo-thread's cudaDeviceSynchronize re-enters the engine).
  if (PoolDepth >= Pools.size())
    Pools.push_back(std::make_unique<BlockPool>());
  BlockPool &Pool = *Pools[PoolDepth];
  ++PoolDepth;
  struct DepthGuard {
    unsigned &Depth;
    ~DepthGuard() { --Depth; }
  } Guard{PoolDepth};

  size_t NumThreads = (size_t)L.Block.count();
  if (Pool.Threads.size() < NumThreads)
    Pool.Threads.resize(NumThreads);

  if (F.FrameBytes > ThreadFrameMemBytes)
    return fail("thread frame-memory stack overflow");

  size_t TI = 0;
  for (uint32_t TZ = 0; TZ < L.Block.Z; ++TZ)
    for (uint32_t TY = 0; TY < L.Block.Y; ++TY)
      for (uint32_t TX = 0; TX < L.Block.X; ++TX) {
        ThreadCtx &T = Pool.Threads[TI++];
        T.reset();
        T.ThreadIdx = {TX, TY, TZ};
        Frame Root;
        Root.Func = L.Func;
        Root.PC = 0;
        Root.LocalsBase = 0;
        T.LocalsArena.assign(F.NumLocals, 0);
        for (unsigned I = 0; I < F.NumParamSlots; ++I)
          T.LocalsArena[I] = L.Args[I];
        if (F.FrameBytes > 0) {
          if (!T.StackMemBase) {
            T.StackMemBase = alloc(ThreadFrameMemBytes);
            if (!T.StackMemBase)
              return false;
          }
          Root.FrameMemBase = T.StackMemBase;
          Root.FrameMemBytes = F.FrameBytes;
          T.StackMemUsed = F.FrameBytes;
          std::memset(Memory.data() + Root.FrameMemBase, 0, F.FrameBytes);
        }
        T.Frames.push_back(Root);
        ++Stats.ThreadsExecuted;
      }

  while (true) {
    bool AnyRan = false;
    bool AnyLive = false;
    for (size_t TIdx = 0; TIdx < NumThreads; ++TIdx) {
      ThreadCtx &T = Pool.Threads[TIdx];
      if (T.State == ThreadState::Ready) {
        AnyRan = true;
        if (!runThread(T, L, BlockIdx, SharedBase))
          return false;
      }
      if (T.State != ThreadState::Done)
        AnyLive = true;
    }
    if (!AnyLive) {
      if (GridLogEnabled)
        for (size_t TIdx = 0; TIdx < NumThreads; ++TIdx)
          CurGridMaxThreadSteps = std::max(CurGridMaxThreadSteps,
                                           Pool.Threads[TIdx].StepsRetired);
      return true;
    }
    // Release barrier: every live thread is waiting.
    bool AllAtBarrier = true;
    for (size_t TIdx = 0; TIdx < NumThreads; ++TIdx)
      if (Pool.Threads[TIdx].State == ThreadState::Ready)
        AllAtBarrier = false;
    if (AllAtBarrier) {
      bool Released = false;
      for (size_t TIdx = 0; TIdx < NumThreads; ++TIdx)
        if (Pool.Threads[TIdx].State == ThreadState::AtBarrier) {
          Pool.Threads[TIdx].State = ThreadState::Ready;
          Released = true;
        }
      if (!Released && !AnyRan)
        return fail("scheduling deadlock in '" + F.Name + "'");
    }
  }
}

//===----------------------------------------------------------------------===//
// The interpreter loop
//===----------------------------------------------------------------------===//

// Overridable (e.g. -DDPO_VM_COMPUTED_GOTO=0) so the portable switch
// fallback can be built and tested on compilers that support both.
#ifndef DPO_VM_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define DPO_VM_COMPUTED_GOTO 1
#else
#define DPO_VM_COMPUTED_GOTO 0
#endif
#endif

// Operand-stack access through cached registers. VM_PUSH re-derives the
// base pointer after a (rare) growth; value expressions must not call
// VM_POP themselves.
#define VM_PUSH(V)                                                            \
  do {                                                                        \
    if (SP == SCap) {                                                         \
      T.StackTop = SP;                                                        \
      growStack(T);                                                           \
      S = T.Stack.data();                                                     \
      SCap = T.Stack.size();                                                  \
    }                                                                         \
    S[SP++] = (V);                                                            \
  } while (0)
#define VM_POP() (S[--SP])
#define VM_TOP() (S[SP - 1])

// Write the cached registers back into the context / device counters.
#define VM_FLUSH_STEPS()                                                      \
  do {                                                                        \
    StepsUsed += LocalSteps;                                                  \
    Stats.Steps += LocalSteps;                                                \
    T.StepsRetired += LocalSteps;                                             \
    LocalSteps = 0;                                                           \
  } while (0)

// Abort this thread with a VM error message.
#define VM_FAILF(MSG)                                                         \
  do {                                                                        \
    T.State = ThreadState::Failed;                                            \
    T.StackTop = SP;                                                          \
    VM_FLUSH_STEPS();                                                         \
    return fail(MSG);                                                         \
  } while (0)

// Abort this thread; the error message was already set (by checkRange).
#define VM_FAIL_SET()                                                         \
  do {                                                                        \
    T.State = ThreadState::Failed;                                            \
    T.StackTop = SP;                                                          \
    VM_FLUSH_STEPS();                                                         \
    return false;                                                             \
  } while (0)

#if DPO_VM_COMPUTED_GOTO
// Threaded dispatch: every handler tail-jumps through the label table.
#define VM_CASE(name) L_##name
#define VM_NEXT()                                                             \
  do {                                                                        \
    if (LocalSteps >= StepBudget)                                             \
      goto StepLimitHit;                                                      \
    ++LocalSteps;                                                             \
    I = CodeBase + PC++;                                                      \
    goto *DispatchTable[(unsigned)I->Code];                                   \
  } while (0)
#else
#define VM_CASE(name) case Op::name
#define VM_NEXT() break
#endif

bool Device::runThread(ThreadCtx &T, const PendingLaunch &L, Dim3V BlockIdx,
                       uint64_t SharedBase) {
  // Interpreter registers, re-derived only at frame switches.
  Frame *Fr = &T.Frames.back();
  const FuncDef *FnArr = Program.Functions.data();
  const FuncDef *F = &FnArr[Fr->Func];
  const Instr *CodeBase = F->Code.data();
  const Instr *I = nullptr;
  unsigned PC = Fr->PC;
  int64_t *Locals = T.LocalsArena.data() + Fr->LocalsBase;
  int64_t *S = T.Stack.data();
  size_t SP = T.StackTop;
  size_t SCap = T.Stack.size();
  uint8_t *Mem = Memory.data();
  uint64_t LocalSteps = 0;
  uint64_t StepBudget = StepLimit > StepsUsed ? StepLimit - StepsUsed : 0;

#if DPO_VM_COMPUTED_GOTO
  static const void *const DispatchTable[NumOpcodes] = {
#define DPO_OPCODE_LABEL(name) &&L_##name,
      DPO_FOR_EACH_OPCODE(DPO_OPCODE_LABEL)
#undef DPO_OPCODE_LABEL
  };
  VM_NEXT(); // Fetch and dispatch the first instruction.
#else
  for (;;) {
    if (LocalSteps >= StepBudget)
      goto StepLimitHit;
    ++LocalSteps;
    I = CodeBase + PC++;
    switch (I->Code) {
#endif

  VM_CASE(PushI):
  VM_CASE(PushF):
    VM_PUSH(I->A);
    VM_NEXT();
  VM_CASE(LoadLocal):
    VM_PUSH(Locals[I->A]);
    VM_NEXT();
  VM_CASE(StoreLocal):
    Locals[I->A] = VM_POP();
    VM_NEXT();
  VM_CASE(Dup): {
    int64_t V = VM_TOP();
    VM_PUSH(V);
    VM_NEXT();
  }
  VM_CASE(Pop):
    --SP;
    VM_NEXT();
  VM_CASE(Swap): {
    int64_t V = S[SP - 1];
    S[SP - 1] = S[SP - 2];
    S[SP - 2] = V;
    VM_NEXT();
  }

  VM_CASE(FrameAddr):
    VM_PUSH(Fr->FrameMemBase + I->A);
    VM_NEXT();
  VM_CASE(SharedBase):
    VM_PUSH(SharedBase);
    VM_NEXT();

#define DPO_LOAD(OPC, CTYPE, PUSHEXPR)                                        \
  VM_CASE(OPC) : {                                                            \
    uint64_t Addr = (uint64_t)VM_POP();                                       \
    if (!checkRange(Addr, sizeof(CTYPE)))                                     \
      VM_FAIL_SET();                                                          \
    CTYPE V;                                                                  \
    std::memcpy(&V, Mem + Addr, sizeof(CTYPE));                               \
    VM_PUSH(PUSHEXPR);                                                        \
    VM_NEXT();                                                                \
  }
  DPO_LOAD(LdI8, int8_t, (int64_t)V)
  DPO_LOAD(LdU8, uint8_t, (int64_t)V)
  DPO_LOAD(LdI16, int16_t, (int64_t)V)
  DPO_LOAD(LdU16, uint16_t, (int64_t)V)
  DPO_LOAD(LdI32, int32_t, (int64_t)V)
  DPO_LOAD(LdU32, uint32_t, (int64_t)V)
  DPO_LOAD(LdI64, int64_t, V)
  DPO_LOAD(LdF32, float, asBits((double)V))
  DPO_LOAD(LdF64, double, asBits(V))
#undef DPO_LOAD

#define DPO_STORE(OPC, CTYPE, VALEXPR)                                        \
  VM_CASE(OPC) : {                                                            \
    int64_t Raw = VM_POP();                                                   \
    uint64_t Addr = (uint64_t)VM_POP();                                       \
    if (!checkRange(Addr, sizeof(CTYPE)))                                     \
      VM_FAIL_SET();                                                          \
    CTYPE V = VALEXPR;                                                        \
    std::memcpy(Mem + Addr, &V, sizeof(CTYPE));                               \
    VM_NEXT();                                                                \
  }
  DPO_STORE(StI8, int8_t, (int8_t)Raw)
  DPO_STORE(StI16, int16_t, (int16_t)Raw)
  DPO_STORE(StI32, int32_t, (int32_t)Raw)
  DPO_STORE(StI64, int64_t, Raw)
  DPO_STORE(StF32, float, (float)asDouble(Raw))
  DPO_STORE(StF64, double, asDouble(Raw))
#undef DPO_STORE

#define DPO_BINI(OPC, EXPR)                                                   \
  VM_CASE(OPC) : {                                                            \
    int64_t R = VM_POP();                                                     \
    int64_t Lv = VM_TOP();                                                    \
    (void)R;                                                                  \
    (void)Lv;                                                                 \
    VM_TOP() = (EXPR);                                                        \
    VM_NEXT();                                                                \
  }
  DPO_BINI(AddI, addWrap(Lv, R))
  DPO_BINI(SubI, subWrap(Lv, R))
  DPO_BINI(MulI, mulWrap(Lv, R))
  DPO_BINI(Shl, (int64_t)((uint64_t)Lv << (R & 63)))
  DPO_BINI(ShrI, Lv >> (R & 63))
  DPO_BINI(ShrU, (int64_t)((uint64_t)Lv >> (R & 63)))
  DPO_BINI(BitAnd, Lv &R)
  DPO_BINI(BitOr, Lv | R)
  DPO_BINI(BitXor, Lv ^ R)
  DPO_BINI(CmpEQ, Lv == R ? 1 : 0)
  DPO_BINI(CmpNE, Lv != R ? 1 : 0)
  DPO_BINI(CmpLTI, Lv < R ? 1 : 0)
  DPO_BINI(CmpLEI, Lv <= R ? 1 : 0)
  DPO_BINI(CmpGTI, Lv > R ? 1 : 0)
  DPO_BINI(CmpGEI, Lv >= R ? 1 : 0)
  DPO_BINI(CmpLTU, (uint64_t)Lv < (uint64_t)R ? 1 : 0)
  DPO_BINI(CmpLEU, (uint64_t)Lv <= (uint64_t)R ? 1 : 0)
  DPO_BINI(CmpGTU, (uint64_t)Lv > (uint64_t)R ? 1 : 0)
  DPO_BINI(CmpGEU, (uint64_t)Lv >= (uint64_t)R ? 1 : 0)
  DPO_BINI(MinI, Lv < R ? Lv : R)
  DPO_BINI(MaxI, Lv > R ? Lv : R)
  DPO_BINI(MinU, (uint64_t)Lv < (uint64_t)R ? Lv : R)
  DPO_BINI(MaxU, (uint64_t)Lv > (uint64_t)R ? Lv : R)
#undef DPO_BINI

  VM_CASE(DivI): {
    int64_t R = VM_POP();
    int64_t Lv = VM_TOP();
    if (R == 0)
      VM_FAILF("integer division by zero");
    VM_TOP() = (Lv == INT64_MIN && R == -1) ? Lv : Lv / R;
    VM_NEXT();
  }
  VM_CASE(DivU): {
    uint64_t R = (uint64_t)VM_POP();
    uint64_t Lv = (uint64_t)VM_TOP();
    if (R == 0)
      VM_FAILF("integer division by zero");
    VM_TOP() = (int64_t)(Lv / R);
    VM_NEXT();
  }
  VM_CASE(RemI): {
    int64_t R = VM_POP();
    int64_t Lv = VM_TOP();
    if (R == 0)
      VM_FAILF("integer remainder by zero");
    VM_TOP() = (Lv == INT64_MIN && R == -1) ? 0 : Lv % R;
    VM_NEXT();
  }
  VM_CASE(RemU): {
    uint64_t R = (uint64_t)VM_POP();
    uint64_t Lv = (uint64_t)VM_TOP();
    if (R == 0)
      VM_FAILF("integer remainder by zero");
    VM_TOP() = (int64_t)(Lv % R);
    VM_NEXT();
  }
  VM_CASE(BitNot):
    VM_TOP() = ~VM_TOP();
    VM_NEXT();
  VM_CASE(NegI):
    VM_TOP() = subWrap(0, VM_TOP());
    VM_NEXT();
  VM_CASE(LogicalNot):
    VM_TOP() = VM_TOP() == 0 ? 1 : 0;
    VM_NEXT();

#define DPO_BINF(OPC, EXPR)                                                   \
  VM_CASE(OPC) : {                                                            \
    double R = asDouble(VM_POP());                                            \
    double Lv = asDouble(VM_TOP());                                           \
    (void)R;                                                                  \
    (void)Lv;                                                                 \
    VM_TOP() = (EXPR);                                                        \
    VM_NEXT();                                                                \
  }
  DPO_BINF(AddF, asBits(Lv + R))
  DPO_BINF(SubF, asBits(Lv - R))
  DPO_BINF(MulF, asBits(Lv *R))
  DPO_BINF(DivF, asBits(Lv / R))
  DPO_BINF(CmpEQF, Lv == R ? 1 : 0)
  DPO_BINF(CmpNEF, Lv != R ? 1 : 0)
  DPO_BINF(CmpLTF, Lv < R ? 1 : 0)
  DPO_BINF(CmpLEF, Lv <= R ? 1 : 0)
  DPO_BINF(CmpGTF, Lv > R ? 1 : 0)
  DPO_BINF(CmpGEF, Lv >= R ? 1 : 0)
#undef DPO_BINF

  VM_CASE(NegF):
    VM_TOP() = asBits(-asDouble(VM_TOP()));
    VM_NEXT();
  VM_CASE(I2F):
    VM_TOP() = asBits((double)VM_TOP());
    VM_NEXT();
  VM_CASE(U2F):
    VM_TOP() = asBits((double)(uint64_t)VM_TOP());
    VM_NEXT();
  VM_CASE(F2I):
    VM_TOP() = (int64_t)asDouble(VM_TOP());
    VM_NEXT();
  VM_CASE(F2Single):
    VM_TOP() = asBits((double)(float)asDouble(VM_TOP()));
    VM_NEXT();
  VM_CASE(TruncI): {
    int64_t V = VM_TOP();
    unsigned Width = (unsigned)I->A;
    bool SignExtend = I->B != 0;
    if (Width == 1)
      VM_TOP() = SignExtend ? (int64_t)(int8_t)V : (int64_t)(uint8_t)V;
    else if (Width == 2)
      VM_TOP() = SignExtend ? (int64_t)(int16_t)V : (int64_t)(uint16_t)V;
    else if (Width == 4)
      VM_TOP() = SignExtend ? (int64_t)(int32_t)V : (int64_t)(uint32_t)V;
    VM_NEXT();
  }

  VM_CASE(Jmp):
    PC = (unsigned)I->A;
    VM_NEXT();
  VM_CASE(JmpIfZero):
    if (VM_POP() == 0)
      PC = (unsigned)I->A;
    VM_NEXT();
  VM_CASE(JmpIfNotZero):
    if (VM_POP() != 0)
      PC = (unsigned)I->A;
    VM_NEXT();

  VM_CASE(Call): {
    const FuncDef &Callee = FnArr[I->A];
    unsigned ArgSlots = (unsigned)I->B;
    if (T.Frames.size() > 200)
      VM_FAILF("call stack overflow (runaway recursion?)");
    Frame New;
    New.Func = (unsigned)I->A;
    New.PC = 0;
    New.LocalsBase = (unsigned)T.LocalsArena.size();
    if (Callee.FrameBytes > 0) {
      if (!T.StackMemBase) {
        T.StackMemBase = alloc(ThreadFrameMemBytes);
        if (!T.StackMemBase)
          VM_FAIL_SET();
      }
      uint64_t Offset = (T.StackMemUsed + 7) & ~7ull;
      if (Offset + Callee.FrameBytes > ThreadFrameMemBytes)
        VM_FAILF("thread frame-memory stack overflow");
      New.FrameMemBase = T.StackMemBase + Offset;
      New.FrameMemBytes = Callee.FrameBytes;
      std::memset(Mem + New.FrameMemBase, 0, Callee.FrameBytes);
      T.StackMemUsed = Offset + Callee.FrameBytes;
    }
    Fr->PC = PC; // Save the return address in the caller frame.
    T.Frames.push_back(New);
    Fr = &T.Frames.back();
    T.LocalsArena.resize(New.LocalsBase + Callee.NumLocals, 0);
    Locals = T.LocalsArena.data() + New.LocalsBase;
    for (unsigned AI = 0; AI < ArgSlots; ++AI)
      Locals[ArgSlots - 1 - AI] = VM_POP();
    F = &Callee;
    CodeBase = F->Code.data();
    PC = 0;
    VM_NEXT();
  }
  VM_CASE(Ret): {
    int64_t V = VM_POP();
    T.StackMemUsed -= Fr->FrameMemBytes;
    T.LocalsArena.resize(Fr->LocalsBase);
    T.Frames.pop_back();
    if (T.Frames.empty()) {
      T.State = ThreadState::Done;
      T.StackTop = SP;
      VM_FLUSH_STEPS();
      return true;
    }
    Fr = &T.Frames.back();
    F = &FnArr[Fr->Func];
    CodeBase = F->Code.data();
    PC = Fr->PC;
    Locals = T.LocalsArena.data() + Fr->LocalsBase;
    VM_PUSH(V);
    VM_NEXT();
  }
  VM_CASE(RetVoid): {
    T.StackMemUsed -= Fr->FrameMemBytes;
    T.LocalsArena.resize(Fr->LocalsBase);
    T.Frames.pop_back();
    if (T.Frames.empty()) {
      T.State = ThreadState::Done;
      T.StackTop = SP;
      VM_FLUSH_STEPS();
      return true;
    }
    Fr = &T.Frames.back();
    F = &FnArr[Fr->Func];
    CodeBase = F->Code.data();
    PC = Fr->PC;
    Locals = T.LocalsArena.data() + Fr->LocalsBase;
    VM_NEXT();
  }

  VM_CASE(SReg): {
    unsigned Builtin = (unsigned)I->A / 4;
    unsigned Comp = (unsigned)I->A % 4;
    Dim3V Value;
    switch (Builtin) {
    case 0: Value = T.ThreadIdx; break;
    case 1: Value = BlockIdx; break;
    case 2: Value = L.Block; break;
    default: Value = L.Grid; break;
    }
    VM_PUSH(Comp == 0 ? Value.X : Comp == 1 ? Value.Y : Value.Z);
    VM_NEXT();
  }

  VM_CASE(SyncThreads):
    T.State = ThreadState::AtBarrier;
    Fr->PC = PC;
    T.StackTop = SP;
    VM_FLUSH_STEPS();
    return true;
  VM_CASE(ThreadFence):
    VM_NEXT(); // Sequential memory is always coherent.

#define DPO_ATOMIC_BODY(WIDTH, APPLY32, APPLY64)                              \
  {                                                                           \
    if (WIDTH == 4) {                                                         \
      int32_t Old = readI32(Addr);                                            \
      int32_t New = APPLY32;                                                  \
      writeI32(Addr, New);                                                    \
      VM_PUSH((I->B != 0) ? (int64_t)Old : (int64_t)(uint32_t)Old);           \
    } else {                                                                  \
      int64_t Old = readI64(Addr);                                            \
      int64_t New = APPLY64;                                                  \
      writeI64(Addr, New);                                                    \
      VM_PUSH(Old);                                                           \
    }                                                                         \
  }

  VM_CASE(AtomicAdd): {
    int64_t V = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    DPO_ATOMIC_BODY(I->A, Old + (int32_t)V, Old + V);
    VM_NEXT();
  }
  VM_CASE(AtomicMax): {
    int64_t V = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    if (I->B != 0) {
      DPO_ATOMIC_BODY(I->A, std::max(Old, (int32_t)V), std::max(Old, V));
    } else {
      DPO_ATOMIC_BODY(
          I->A,
          (int32_t)std::max((uint32_t)Old, (uint32_t)V),
          (int64_t)std::max((uint64_t)Old, (uint64_t)V));
    }
    VM_NEXT();
  }
  VM_CASE(AtomicMin): {
    int64_t V = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    if (I->B != 0) {
      DPO_ATOMIC_BODY(I->A, std::min(Old, (int32_t)V), std::min(Old, V));
    } else {
      DPO_ATOMIC_BODY(
          I->A,
          (int32_t)std::min((uint32_t)Old, (uint32_t)V),
          (int64_t)std::min((uint64_t)Old, (uint64_t)V));
    }
    VM_NEXT();
  }
  VM_CASE(AtomicExch): {
    int64_t V = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    DPO_ATOMIC_BODY(I->A, (int32_t)V, V);
    VM_NEXT();
  }
  VM_CASE(AtomicOr): {
    int64_t V = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    DPO_ATOMIC_BODY(I->A, Old | (int32_t)V, Old | V);
    VM_NEXT();
  }
  VM_CASE(AtomicAnd): {
    int64_t V = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    DPO_ATOMIC_BODY(I->A, Old & (int32_t)V, Old & V);
    VM_NEXT();
  }
  VM_CASE(AtomicCAS): {
    int64_t New = VM_POP();
    int64_t Expected = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (!checkRange(Addr, (unsigned)I->A))
      VM_FAIL_SET();
    if (I->A == 4) {
      int32_t Old = readI32(Addr);
      if (Old == (int32_t)Expected)
        writeI32(Addr, (int32_t)New);
      VM_PUSH((I->B != 0) ? (int64_t)Old : (int64_t)(uint32_t)Old);
    } else {
      int64_t Old = readI64(Addr);
      if (Old == Expected)
        writeI64(Addr, New);
      VM_PUSH(Old);
    }
    VM_NEXT();
  }
#undef DPO_ATOMIC_BODY

  VM_CASE(Launch): {
    PendingLaunch Child;
    Child.Func = (unsigned)I->A;
    Child.Block.Z = (uint32_t)VM_POP();
    Child.Block.Y = (uint32_t)VM_POP();
    Child.Block.X = (uint32_t)VM_POP();
    Child.Grid.Z = (uint32_t)VM_POP();
    Child.Grid.Y = (uint32_t)VM_POP();
    Child.Grid.X = (uint32_t)VM_POP();
    Child.Args.resize(I->B);
    for (unsigned AI = 0; AI < (unsigned)I->B; ++AI)
      Child.Args[I->B - 1 - AI] = VM_POP();
    if (InHostCall && T.Frames.size() >= 1 &&
        FnArr[T.Frames.front().Func].IsKernel == false) {
      ++Stats.HostLaunches;
      Child.FromHost = true;
    } else {
      ++Stats.DeviceLaunches;
    }
    Queue.push_back(std::move(Child));
    VM_NEXT();
  }

  VM_CASE(CudaMalloc): {
    uint64_t Bytes = (uint64_t)VM_POP();
    uint64_t PtrAddr = (uint64_t)VM_POP();
    uint64_t Addr = alloc(Bytes);
    if (!Addr)
      VM_FAIL_SET();
    if (!checkRange(PtrAddr, 8))
      VM_FAIL_SET();
    writeI64(PtrAddr, (int64_t)Addr);
    VM_PUSH(0);
    VM_NEXT();
  }
  VM_CASE(CudaFree):
    VM_TOP() = 0; // Bump allocator: free is a no-op; result is 0.
    VM_NEXT();
  VM_CASE(CudaMemset): {
    uint64_t Bytes = (uint64_t)VM_POP();
    int64_t Value = VM_POP();
    uint64_t Addr = (uint64_t)VM_POP();
    if (Bytes > 0 && !checkRange(Addr, Bytes))
      VM_FAIL_SET();
    std::memset(Mem + Addr, (int)Value, Bytes);
    VM_PUSH(0);
    VM_NEXT();
  }
  VM_CASE(CudaMemcpy): {
    (void)VM_POP(); // direction
    uint64_t Bytes = (uint64_t)VM_POP();
    uint64_t Src = (uint64_t)VM_POP();
    uint64_t Dst = (uint64_t)VM_POP();
    if (Bytes > 0 && (!checkRange(Src, Bytes) || !checkRange(Dst, Bytes)))
      VM_FAIL_SET();
    std::memmove(Mem + Dst, Mem + Src, Bytes);
    VM_PUSH(0);
    VM_NEXT();
  }
  VM_CASE(CudaSync): {
    // Drain pending launches now (host semantics). The nested grids run
    // through deeper context pools; our own cached registers stay valid
    // (device memory never reallocates). Steps consumed by the children
    // count against the shared limit, so re-derive the budget.
    VM_FLUSH_STEPS();
    Fr->PC = PC;
    T.StackTop = SP;
    if (!drainLaunches()) {
      T.State = ThreadState::Failed;
      return false;
    }
    StepBudget = StepLimit > StepsUsed ? StepLimit - StepsUsed : 0;
    VM_NEXT();
  }

  VM_CASE(Math1): {
    double V = asDouble(VM_TOP());
    double R = 0;
    switch ((MathFn)I->A) {
    case MathFn::Sqrt: R = std::sqrt(V); break;
    case MathFn::Ceil: R = std::ceil(V); break;
    case MathFn::Floor: R = std::floor(V); break;
    case MathFn::Fabs: R = std::fabs(V); break;
    case MathFn::Exp: R = std::exp(V); break;
    case MathFn::Log: R = std::log(V); break;
    case MathFn::Tanh: R = std::tanh(V); break;
    default: R = V; break;
    }
    VM_TOP() = asBits(R);
    VM_NEXT();
  }
  VM_CASE(Math2): {
    double B = asDouble(VM_POP());
    double A = asDouble(VM_TOP());
    double R = 0;
    switch ((MathFn)I->A) {
    case MathFn::Pow: R = std::pow(A, B); break;
    case MathFn::Fmin: R = std::fmin(A, B); break;
    case MathFn::Fmax: R = std::fmax(A, B); break;
    default: R = A; break;
    }
    VM_TOP() = asBits(R);
    VM_NEXT();
  }

  VM_CASE(Trap):
    VM_FAILF("trap: " + Program.TrapMessages[I->A]);

  //===--- Superinstructions (see vm/Peephole.cpp) ------------------------===//

  VM_CASE(LoadLocal2): {
    int64_t V0 = Locals[I->A];
    int64_t V1 = Locals[I->B];
    VM_PUSH(V0);
    VM_PUSH(V1);
    VM_NEXT();
  }
  VM_CASE(LoadLocalImmAddI):
    VM_PUSH(addWrap(Locals[I->A], I->B));
    VM_NEXT();
  VM_CASE(LoadLoadAddI):
    VM_PUSH(addWrap(Locals[I->A], Locals[I->B]));
    VM_NEXT();
  VM_CASE(AddImmI):
    VM_TOP() = addWrap(VM_TOP(), I->A);
    VM_NEXT();
  VM_CASE(MulImmI):
    VM_TOP() = mulWrap(VM_TOP(), I->A);
    VM_NEXT();
  VM_CASE(MulImmAddI): {
    int64_t Y = VM_POP();
    VM_TOP() = addWrap(VM_TOP(), mulWrap(Y, I->A));
    VM_NEXT();
  }
  VM_CASE(IncLocalI32):
    Locals[I->A] = (int64_t)(int32_t)(uint32_t)addWrap(Locals[I->A], I->B);
    VM_NEXT();
  VM_CASE(IncLocalI64):
    Locals[I->A] = addWrap(Locals[I->A], I->B);
    VM_NEXT();
  VM_CASE(GlobalTidX): {
    uint64_t Sum = (uint64_t)BlockIdx.X * L.Block.X + T.ThreadIdx.X;
    VM_PUSH(I->B != 0 ? (int64_t)(int32_t)(uint32_t)Sum
                      : (int64_t)(uint32_t)Sum);
    VM_NEXT();
  }

#define DPO_CMPJMP(OPC, COND)                                                 \
  VM_CASE(OPC) : {                                                            \
    int64_t R = VM_POP();                                                     \
    int64_t Lv = VM_POP();                                                    \
    (void)R;                                                                  \
    (void)Lv;                                                                 \
    if (COND)                                                                 \
      PC = (unsigned)I->A;                                                    \
    VM_NEXT();                                                                \
  }
  DPO_CMPJMP(JmpIfLTI, Lv < R)
  DPO_CMPJMP(JmpIfGEI, Lv >= R)
  DPO_CMPJMP(JmpIfLEI, Lv <= R)
  DPO_CMPJMP(JmpIfGTI, Lv > R)
  DPO_CMPJMP(JmpIfEQ, Lv == R)
  DPO_CMPJMP(JmpIfNE, Lv != R)
  DPO_CMPJMP(JmpIfLTU, (uint64_t)Lv < (uint64_t)R)
  DPO_CMPJMP(JmpIfGEU, (uint64_t)Lv >= (uint64_t)R)
  DPO_CMPJMP(JmpIfLEU, (uint64_t)Lv <= (uint64_t)R)
  DPO_CMPJMP(JmpIfGTU, (uint64_t)Lv > (uint64_t)R)
#undef DPO_CMPJMP

#if !DPO_VM_COMPUTED_GOTO
    } // switch
  }   // for
#endif

StepLimitHit:
  T.State = ThreadState::Failed;
  T.StackTop = SP;
  VM_FLUSH_STEPS();
  return fail("step limit exceeded (possible infinite loop)");
}

#undef VM_PUSH
#undef VM_POP
#undef VM_TOP
#undef VM_FLUSH_STEPS
#undef VM_FAILF
#undef VM_FAIL_SET
#undef VM_CASE
#undef VM_NEXT

std::unique_ptr<Device> dpo::buildDevice(std::string_view Source,
                                         DiagnosticEngine &Diags,
                                         const VmCompileOptions &Opts) {
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return nullptr;
  VmProgram Program = compileProgram(TU, Diags, Opts);
  if (Diags.hasErrors())
    return nullptr;
  return std::make_unique<Device>(std::move(Program));
}
