//===--- VM.cpp ------------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "parse/Parser.h"

#include <cmath>
#include <cstring>
#include <memory>

using namespace dpo;

namespace {

double asDouble(int64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}

int64_t asBits(double D) {
  int64_t Bits;
  std::memcpy(&Bits, &D, 8);
  return Bits;
}

} // namespace

Device::Device(VmProgram ProgramIn, uint64_t MemoryBytes)
    : Program(std::move(ProgramIn)), Memory(MemoryBytes, 0) {
  // Null page, then globals, then the heap.
  BumpPtr = GlobalBase;
  if (!Program.GlobalImage.empty()) {
    std::memcpy(Memory.data() + GlobalBase, Program.GlobalImage.data(),
                Program.GlobalImage.size());
    BumpPtr += Program.GlobalImage.size();
  }
  BumpPtr = (BumpPtr + 63) & ~63ull;
}

uint64_t Device::alloc(uint64_t Bytes) {
  uint64_t Addr = (BumpPtr + 7) & ~7ull;
  if (Addr + Bytes > Memory.size()) {
    LastError = "device out of memory";
    return 0;
  }
  BumpPtr = Addr + Bytes;
  std::memset(Memory.data() + Addr, 0, Bytes);
  return Addr;
}

#define DPO_CHECKED_RW(Addr, Bytes)                                           \
  assert((Addr) != 0 && (Addr) + (Bytes) <= Memory.size() &&                  \
         "host access out of bounds")

void Device::writeI32(uint64_t Addr, int32_t V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeU32(uint64_t Addr, uint32_t V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeI64(uint64_t Addr, int64_t V) {
  DPO_CHECKED_RW(Addr, 8);
  std::memcpy(Memory.data() + Addr, &V, 8);
}
void Device::writeF32(uint64_t Addr, float V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeF64(uint64_t Addr, double V) {
  DPO_CHECKED_RW(Addr, 8);
  std::memcpy(Memory.data() + Addr, &V, 8);
}
int32_t Device::readI32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  int32_t V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
uint32_t Device::readU32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  uint32_t V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
int64_t Device::readI64(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 8);
  int64_t V;
  std::memcpy(&V, Memory.data() + Addr, 8);
  return V;
}
float Device::readF32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  float V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
double Device::readF64(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 8);
  double V;
  std::memcpy(&V, Memory.data() + Addr, 8);
  return V;
}

uint64_t Device::allocI32(const std::vector<int32_t> &Values) {
  uint64_t Addr = alloc(Values.size() * 4);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
  return Addr;
}

std::vector<int32_t> Device::readI32Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 4);
  std::vector<int32_t> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 4);
  return Result;
}

bool Device::fail(const std::string &Message) {
  if (LastError.empty())
    LastError = Message;
  return false;
}

bool Device::checkRange(uint64_t Addr, unsigned Bytes) {
  if (Addr == 0)
    return fail("null pointer access");
  if (Addr + Bytes > Memory.size())
    return fail("device memory access out of bounds");
  return true;
}

bool Device::launchKernel(const std::string &Name, Dim3V Grid, Dim3V Block,
                          const std::vector<int64_t> &Args) {
  LastError.clear();
  StepsUsed = 0;
  const FuncDef *F = Program.find(Name);
  if (!F)
    return fail("unknown kernel '" + Name + "'");
  if (!F->IsKernel)
    return fail("'" + Name + "' is not a __global__ kernel");
  if (Args.size() != F->NumParamSlots)
    return fail("kernel '" + Name + "' expects " +
                std::to_string(F->NumParamSlots) + " argument slots, got " +
                std::to_string(Args.size()));
  PendingLaunch L;
  L.Func = Program.FunctionIndex.at(Name);
  L.Grid = Grid;
  L.Block = Block;
  L.Args = Args;
  ++Stats.HostLaunches;
  Queue.push_back(std::move(L));
  return drainLaunches();
}

bool Device::callHost(const std::string &Name,
                      const std::vector<int64_t> &Args) {
  LastError.clear();
  StepsUsed = 0;
  const FuncDef *F = Program.find(Name);
  if (!F)
    return fail("unknown function '" + Name + "'");
  if (Args.size() != F->NumParamSlots)
    return fail("function '" + Name + "' expects " +
                std::to_string(F->NumParamSlots) + " argument slots, got " +
                std::to_string(Args.size()));

  InHostCall = true;
  PendingLaunch L;
  L.Func = Program.FunctionIndex.at(Name);
  L.Grid = {1, 1, 1};
  L.Block = {1, 1, 1};
  L.Args = Args;
  bool Ok = runGrid(L) && drainLaunches();
  InHostCall = false;
  return Ok;
}

bool Device::drainLaunches() {
  while (!Queue.empty()) {
    PendingLaunch L = std::move(Queue.front());
    Queue.pop_front();
    if (!runGrid(L))
      return false;
  }
  return true;
}

bool Device::runGrid(const PendingLaunch &L) {
  const FuncDef &F = Program.Functions[L.Func];
  ++Stats.GridsLaunched;
  Stats.LargestGridBlocks =
      std::max(Stats.LargestGridBlocks, (uint64_t)L.Grid.count());
  if (L.Grid.count() == 0 || L.Block.count() == 0)
    return true; // Empty grids complete immediately.
  if (L.Block.count() > 1024)
    return fail("block of " + std::to_string(L.Block.count()) +
                " threads exceeds the 1024-thread limit in '" + F.Name + "'");

  uint64_t SharedBase = 0;
  if (F.SharedBytes > 0) {
    SharedBase = alloc(F.SharedBytes);
    if (!SharedBase)
      return false;
  }

  for (uint32_t BZ = 0; BZ < L.Grid.Z; ++BZ)
    for (uint32_t BY = 0; BY < L.Grid.Y; ++BY)
      for (uint32_t BX = 0; BX < L.Grid.X; ++BX) {
        if (SharedBase)
          std::memset(Memory.data() + SharedBase, 0, F.SharedBytes);
        if (!runBlock(L, {BX, BY, BZ}, SharedBase))
          return false;
      }
  return true;
}

bool Device::runBlock(const PendingLaunch &L, Dim3V BlockIdx,
                      uint64_t SharedBase) {
  const FuncDef &F = Program.Functions[L.Func];
  ++Stats.BlocksExecuted;

  std::vector<ThreadCtx> Threads;
  Threads.reserve(L.Block.count());
  for (uint32_t TZ = 0; TZ < L.Block.Z; ++TZ)
    for (uint32_t TY = 0; TY < L.Block.Y; ++TY)
      for (uint32_t TX = 0; TX < L.Block.X; ++TX) {
        ThreadCtx T;
        T.ThreadIdx = {TX, TY, TZ};
        Frame Root;
        Root.Func = L.Func;
        Root.PC = 0;
        Root.Locals.assign(F.NumLocals, 0);
        for (unsigned I = 0; I < F.NumParamSlots; ++I)
          Root.Locals[I] = L.Args[I];
        if (F.FrameBytes > 0) {
          if (!T.StackMemBase) {
            T.StackMemBase = alloc(64 * 1024);
            if (!T.StackMemBase)
              return false;
          }
          Root.FrameMemBase = T.StackMemBase;
          Root.FrameMemBytes = F.FrameBytes;
          T.StackMemUsed = F.FrameBytes;
        }
        T.Frames.push_back(std::move(Root));
        Threads.push_back(std::move(T));
        ++Stats.ThreadsExecuted;
      }

  while (true) {
    bool AnyRan = false;
    bool AnyLive = false;
    for (ThreadCtx &T : Threads) {
      if (T.State == ThreadState::Ready) {
        AnyRan = true;
        if (!runThread(T, L, BlockIdx, SharedBase))
          return false;
      }
      if (T.State != ThreadState::Done)
        AnyLive = true;
    }
    if (!AnyLive)
      return true;
    // Release barrier: every live thread is waiting.
    bool AllAtBarrier = true;
    for (ThreadCtx &T : Threads)
      if (T.State == ThreadState::Ready)
        AllAtBarrier = false;
    if (AllAtBarrier) {
      bool Released = false;
      for (ThreadCtx &T : Threads)
        if (T.State == ThreadState::AtBarrier) {
          T.State = ThreadState::Ready;
          Released = true;
        }
      if (!Released && !AnyRan)
        return fail("scheduling deadlock in '" + F.Name + "'");
    }
  }
}

bool Device::runThread(ThreadCtx &T, const PendingLaunch &L, Dim3V BlockIdx,
                       uint64_t SharedBase) {
  auto Push = [&](int64_t V) { T.Stack.push_back(V); };
  auto Pop = [&]() {
    int64_t V = T.Stack.back();
    T.Stack.pop_back();
    return V;
  };

  while (true) {
    if (++StepsUsed > StepLimit) {
      T.State = ThreadState::Failed;
      return fail("step limit exceeded (possible infinite loop)");
    }
    ++Stats.Steps;
    Frame &Fr = T.Frames.back();
    const FuncDef &F = Program.Functions[Fr.Func];
    if (Fr.PC >= F.Code.size()) {
      T.State = ThreadState::Failed;
      return fail("fell off the end of '" + F.Name + "'");
    }
    const Instr &I = F.Code[Fr.PC++];

    switch (I.Code) {
    case Op::PushI:
    case Op::PushF:
      Push(I.A);
      break;
    case Op::LoadLocal:
      Push(Fr.Locals[I.A]);
      break;
    case Op::StoreLocal:
      Fr.Locals[I.A] = Pop();
      break;
    case Op::Dup:
      Push(T.Stack.back());
      break;
    case Op::Pop:
      Pop();
      break;
    case Op::Swap: {
      int64_t A = Pop();
      int64_t B = Pop();
      Push(A);
      Push(B);
      break;
    }

    case Op::FrameAddr:
      Push(Fr.FrameMemBase + I.A);
      break;
    case Op::SharedBase:
      Push(SharedBase);
      break;

#define DPO_LOAD(OPC, CTYPE, PUSHEXPR)                                        \
  case Op::OPC: {                                                             \
    uint64_t Addr = (uint64_t)Pop();                                          \
    if (!checkRange(Addr, sizeof(CTYPE))) {                                   \
      T.State = ThreadState::Failed;                                          \
      return false;                                                           \
    }                                                                         \
    CTYPE V;                                                                  \
    std::memcpy(&V, Memory.data() + Addr, sizeof(CTYPE));                     \
    Push(PUSHEXPR);                                                           \
    break;                                                                    \
  }
      DPO_LOAD(LdI8, int8_t, (int64_t)V)
      DPO_LOAD(LdU8, uint8_t, (int64_t)V)
      DPO_LOAD(LdI16, int16_t, (int64_t)V)
      DPO_LOAD(LdU16, uint16_t, (int64_t)V)
      DPO_LOAD(LdI32, int32_t, (int64_t)V)
      DPO_LOAD(LdU32, uint32_t, (int64_t)V)
      DPO_LOAD(LdI64, int64_t, V)
      DPO_LOAD(LdF32, float, asBits((double)V))
      DPO_LOAD(LdF64, double, asBits(V))
#undef DPO_LOAD

#define DPO_STORE(OPC, CTYPE, VALEXPR)                                        \
  case Op::OPC: {                                                             \
    int64_t Raw = Pop();                                                      \
    uint64_t Addr = (uint64_t)Pop();                                          \
    if (!checkRange(Addr, sizeof(CTYPE))) {                                   \
      T.State = ThreadState::Failed;                                          \
      return false;                                                           \
    }                                                                         \
    CTYPE V = VALEXPR;                                                        \
    std::memcpy(Memory.data() + Addr, &V, sizeof(CTYPE));                     \
    break;                                                                    \
  }
      DPO_STORE(StI8, int8_t, (int8_t)Raw)
      DPO_STORE(StI16, int16_t, (int16_t)Raw)
      DPO_STORE(StI32, int32_t, (int32_t)Raw)
      DPO_STORE(StI64, int64_t, Raw)
      DPO_STORE(StF32, float, (float)asDouble(Raw))
      DPO_STORE(StF64, double, asDouble(Raw))
#undef DPO_STORE

#define DPO_BINI(OPC, EXPR)                                                   \
  case Op::OPC: {                                                             \
    int64_t R = Pop();                                                        \
    int64_t Lv = Pop();                                                       \
    (void)R;                                                                  \
    (void)Lv;                                                                 \
    Push(EXPR);                                                               \
    break;                                                                    \
  }
      DPO_BINI(AddI, Lv + R)
      DPO_BINI(SubI, Lv - R)
      DPO_BINI(MulI, Lv *R)
      DPO_BINI(Shl, (int64_t)((uint64_t)Lv << (R & 63)))
      DPO_BINI(ShrI, Lv >> (R & 63))
      DPO_BINI(ShrU, (int64_t)((uint64_t)Lv >> (R & 63)))
      DPO_BINI(BitAnd, Lv &R)
      DPO_BINI(BitOr, Lv | R)
      DPO_BINI(BitXor, Lv ^ R)
      DPO_BINI(CmpEQ, Lv == R ? 1 : 0)
      DPO_BINI(CmpNE, Lv != R ? 1 : 0)
      DPO_BINI(CmpLTI, Lv < R ? 1 : 0)
      DPO_BINI(CmpLEI, Lv <= R ? 1 : 0)
      DPO_BINI(CmpGTI, Lv > R ? 1 : 0)
      DPO_BINI(CmpGEI, Lv >= R ? 1 : 0)
      DPO_BINI(CmpLTU, (uint64_t)Lv < (uint64_t)R ? 1 : 0)
      DPO_BINI(CmpLEU, (uint64_t)Lv <= (uint64_t)R ? 1 : 0)
      DPO_BINI(CmpGTU, (uint64_t)Lv > (uint64_t)R ? 1 : 0)
      DPO_BINI(CmpGEU, (uint64_t)Lv >= (uint64_t)R ? 1 : 0)
      DPO_BINI(MinI, Lv < R ? Lv : R)
      DPO_BINI(MaxI, Lv > R ? Lv : R)
      DPO_BINI(MinU, (uint64_t)Lv < (uint64_t)R ? Lv : R)
      DPO_BINI(MaxU, (uint64_t)Lv > (uint64_t)R ? Lv : R)
#undef DPO_BINI

    case Op::DivI: {
      int64_t R = Pop();
      int64_t Lv = Pop();
      if (R == 0) {
        T.State = ThreadState::Failed;
        return fail("integer division by zero");
      }
      Push(Lv / R);
      break;
    }
    case Op::DivU: {
      uint64_t R = (uint64_t)Pop();
      uint64_t Lv = (uint64_t)Pop();
      if (R == 0) {
        T.State = ThreadState::Failed;
        return fail("integer division by zero");
      }
      Push((int64_t)(Lv / R));
      break;
    }
    case Op::RemI: {
      int64_t R = Pop();
      int64_t Lv = Pop();
      if (R == 0) {
        T.State = ThreadState::Failed;
        return fail("integer remainder by zero");
      }
      Push(Lv % R);
      break;
    }
    case Op::RemU: {
      uint64_t R = (uint64_t)Pop();
      uint64_t Lv = (uint64_t)Pop();
      if (R == 0) {
        T.State = ThreadState::Failed;
        return fail("integer remainder by zero");
      }
      Push((int64_t)(Lv % R));
      break;
    }
    case Op::BitNot:
      Push(~Pop());
      break;
    case Op::NegI:
      Push(-Pop());
      break;
    case Op::LogicalNot:
      Push(Pop() == 0 ? 1 : 0);
      break;

#define DPO_BINF(OPC, EXPR)                                                   \
  case Op::OPC: {                                                             \
    double R = asDouble(Pop());                                               \
    double Lv = asDouble(Pop());                                              \
    (void)R;                                                                  \
    (void)Lv;                                                                 \
    Push(EXPR);                                                               \
    break;                                                                    \
  }
      DPO_BINF(AddF, asBits(Lv + R))
      DPO_BINF(SubF, asBits(Lv - R))
      DPO_BINF(MulF, asBits(Lv *R))
      DPO_BINF(DivF, asBits(Lv / R))
      DPO_BINF(CmpEQF, Lv == R ? 1 : 0)
      DPO_BINF(CmpNEF, Lv != R ? 1 : 0)
      DPO_BINF(CmpLTF, Lv < R ? 1 : 0)
      DPO_BINF(CmpLEF, Lv <= R ? 1 : 0)
      DPO_BINF(CmpGTF, Lv > R ? 1 : 0)
      DPO_BINF(CmpGEF, Lv >= R ? 1 : 0)
#undef DPO_BINF

    case Op::NegF:
      Push(asBits(-asDouble(Pop())));
      break;
    case Op::I2F:
      Push(asBits((double)Pop()));
      break;
    case Op::U2F:
      Push(asBits((double)(uint64_t)Pop()));
      break;
    case Op::F2I:
      Push((int64_t)asDouble(Pop()));
      break;
    case Op::F2Single:
      Push(asBits((double)(float)asDouble(Pop())));
      break;
    case Op::TruncI: {
      int64_t V = Pop();
      unsigned Width = (unsigned)I.A;
      bool SignExtend = I.B != 0;
      if (Width == 1)
        Push(SignExtend ? (int64_t)(int8_t)V : (int64_t)(uint8_t)V);
      else if (Width == 2)
        Push(SignExtend ? (int64_t)(int16_t)V : (int64_t)(uint16_t)V);
      else if (Width == 4)
        Push(SignExtend ? (int64_t)(int32_t)V : (int64_t)(uint32_t)V);
      else
        Push(V);
      break;
    }

    case Op::Jmp:
      Fr.PC = (unsigned)I.A;
      break;
    case Op::JmpIfZero:
      if (Pop() == 0)
        Fr.PC = (unsigned)I.A;
      break;
    case Op::JmpIfNotZero:
      if (Pop() != 0)
        Fr.PC = (unsigned)I.A;
      break;

    case Op::Call: {
      const FuncDef &Callee = Program.Functions[I.A];
      Frame New;
      New.Func = (unsigned)I.A;
      New.PC = 0;
      New.Locals.assign(Callee.NumLocals, 0);
      for (unsigned S = 0; S < (unsigned)I.B; ++S)
        New.Locals[I.B - 1 - S] = Pop();
      if (Callee.FrameBytes > 0) {
        if (!T.StackMemBase) {
          T.StackMemBase = alloc(64 * 1024);
          if (!T.StackMemBase) {
            T.State = ThreadState::Failed;
            return false;
          }
        }
        uint64_t Offset = (T.StackMemUsed + 7) & ~7ull;
        if (Offset + Callee.FrameBytes > 64 * 1024) {
          T.State = ThreadState::Failed;
          return fail("thread frame-memory stack overflow");
        }
        New.FrameMemBase = T.StackMemBase + Offset;
        New.FrameMemBytes = Callee.FrameBytes;
        std::memset(Memory.data() + New.FrameMemBase, 0, Callee.FrameBytes);
        T.StackMemUsed = Offset + Callee.FrameBytes;
      }
      if (T.Frames.size() > 200) {
        T.State = ThreadState::Failed;
        return fail("call stack overflow (runaway recursion?)");
      }
      T.Frames.push_back(std::move(New));
      break;
    }
    case Op::Ret: {
      int64_t V = Pop();
      T.StackMemUsed -= T.Frames.back().FrameMemBytes;
      T.Frames.pop_back();
      if (T.Frames.empty()) {
        T.State = ThreadState::Done;
        return true;
      }
      Push(V);
      break;
    }
    case Op::RetVoid:
      T.StackMemUsed -= T.Frames.back().FrameMemBytes;
      T.Frames.pop_back();
      if (T.Frames.empty()) {
        T.State = ThreadState::Done;
        return true;
      }
      break;

    case Op::SReg: {
      unsigned Builtin = (unsigned)I.A / 4;
      unsigned Comp = (unsigned)I.A % 4;
      Dim3V Value;
      switch (Builtin) {
      case 0: Value = T.ThreadIdx; break;
      case 1: Value = BlockIdx; break;
      case 2: Value = L.Block; break;
      default: Value = L.Grid; break;
      }
      Push(Comp == 0 ? Value.X : Comp == 1 ? Value.Y : Value.Z);
      break;
    }

    case Op::SyncThreads:
      T.State = ThreadState::AtBarrier;
      return true;
    case Op::ThreadFence:
      break; // Sequential memory is always coherent.

#define DPO_ATOMIC_BODY(WIDTH, APPLY32, APPLY64)                              \
  {                                                                           \
    if (WIDTH == 4) {                                                         \
      int32_t Old = readI32(Addr);                                            \
      int32_t New = APPLY32;                                                  \
      writeI32(Addr, New);                                                    \
      Push((I.B != 0) ? (int64_t)Old : (int64_t)(uint32_t)Old);               \
    } else {                                                                  \
      int64_t Old = readI64(Addr);                                            \
      int64_t New = APPLY64;                                                  \
      writeI64(Addr, New);                                                    \
      Push(Old);                                                              \
    }                                                                         \
  }

    case Op::AtomicAdd: {
      int64_t V = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      DPO_ATOMIC_BODY(I.A, Old + (int32_t)V, Old + V);
      break;
    }
    case Op::AtomicMax: {
      int64_t V = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      if (I.B != 0) {
        DPO_ATOMIC_BODY(I.A, std::max(Old, (int32_t)V), std::max(Old, V));
      } else {
        DPO_ATOMIC_BODY(
            I.A,
            (int32_t)std::max((uint32_t)Old, (uint32_t)V),
            (int64_t)std::max((uint64_t)Old, (uint64_t)V));
      }
      break;
    }
    case Op::AtomicMin: {
      int64_t V = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      if (I.B != 0) {
        DPO_ATOMIC_BODY(I.A, std::min(Old, (int32_t)V), std::min(Old, V));
      } else {
        DPO_ATOMIC_BODY(
            I.A,
            (int32_t)std::min((uint32_t)Old, (uint32_t)V),
            (int64_t)std::min((uint64_t)Old, (uint64_t)V));
      }
      break;
    }
    case Op::AtomicExch: {
      int64_t V = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      DPO_ATOMIC_BODY(I.A, (int32_t)V, V);
      break;
    }
    case Op::AtomicOr: {
      int64_t V = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      DPO_ATOMIC_BODY(I.A, Old | (int32_t)V, Old | V);
      break;
    }
    case Op::AtomicAnd: {
      int64_t V = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      DPO_ATOMIC_BODY(I.A, Old & (int32_t)V, Old & V);
      break;
    }
    case Op::AtomicCAS: {
      int64_t New = Pop();
      int64_t Expected = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (!checkRange(Addr, (unsigned)I.A)) {
        T.State = ThreadState::Failed;
        return false;
      }
      if (I.A == 4) {
        int32_t Old = readI32(Addr);
        if (Old == (int32_t)Expected)
          writeI32(Addr, (int32_t)New);
        Push((I.B != 0) ? (int64_t)Old : (int64_t)(uint32_t)Old);
      } else {
        int64_t Old = readI64(Addr);
        if (Old == Expected)
          writeI64(Addr, New);
        Push(Old);
      }
      break;
    }
#undef DPO_ATOMIC_BODY

    case Op::Launch: {
      PendingLaunch Child;
      Child.Func = (unsigned)I.A;
      Child.Block.Z = (uint32_t)Pop();
      Child.Block.Y = (uint32_t)Pop();
      Child.Block.X = (uint32_t)Pop();
      Child.Grid.Z = (uint32_t)Pop();
      Child.Grid.Y = (uint32_t)Pop();
      Child.Grid.X = (uint32_t)Pop();
      Child.Args.resize(I.B);
      for (unsigned S = 0; S < (unsigned)I.B; ++S)
        Child.Args[I.B - 1 - S] = Pop();
      if (InHostCall && T.Frames.size() >= 1 &&
          Program.Functions[T.Frames.front().Func].IsKernel == false) {
        ++Stats.HostLaunches;
      } else {
        ++Stats.DeviceLaunches;
      }
      Queue.push_back(std::move(Child));
      break;
    }

    case Op::CudaMalloc: {
      uint64_t Bytes = (uint64_t)Pop();
      uint64_t PtrAddr = (uint64_t)Pop();
      uint64_t Addr = alloc(Bytes);
      if (!Addr) {
        T.State = ThreadState::Failed;
        return false;
      }
      if (!checkRange(PtrAddr, 8)) {
        T.State = ThreadState::Failed;
        return false;
      }
      writeI64(PtrAddr, (int64_t)Addr);
      Push(0);
      break;
    }
    case Op::CudaFree:
      Pop(); // Bump allocator: free is a no-op.
      Push(0);
      break;
    case Op::CudaMemset: {
      uint64_t Bytes = (uint64_t)Pop();
      int64_t Value = Pop();
      uint64_t Addr = (uint64_t)Pop();
      if (Bytes > 0 && !checkRange(Addr, (unsigned)Bytes)) {
        T.State = ThreadState::Failed;
        return false;
      }
      std::memset(Memory.data() + Addr, (int)Value, Bytes);
      Push(0);
      break;
    }
    case Op::CudaMemcpy: {
      Pop(); // direction
      uint64_t Bytes = (uint64_t)Pop();
      uint64_t Src = (uint64_t)Pop();
      uint64_t Dst = (uint64_t)Pop();
      if (Bytes > 0 &&
          (!checkRange(Src, (unsigned)Bytes) || !checkRange(Dst, (unsigned)Bytes))) {
        T.State = ThreadState::Failed;
        return false;
      }
      std::memmove(Memory.data() + Dst, Memory.data() + Src, Bytes);
      Push(0);
      break;
    }
    case Op::CudaSync: {
      // Drain pending launches now (host semantics). The current (host)
      // thread continues afterwards.
      if (!drainLaunches()) {
        T.State = ThreadState::Failed;
        return false;
      }
      break;
    }

    case Op::Math1: {
      double V = asDouble(Pop());
      double R = 0;
      switch ((MathFn)I.A) {
      case MathFn::Sqrt: R = std::sqrt(V); break;
      case MathFn::Ceil: R = std::ceil(V); break;
      case MathFn::Floor: R = std::floor(V); break;
      case MathFn::Fabs: R = std::fabs(V); break;
      case MathFn::Exp: R = std::exp(V); break;
      case MathFn::Log: R = std::log(V); break;
      case MathFn::Tanh: R = std::tanh(V); break;
      default: R = V; break;
      }
      Push(asBits(R));
      break;
    }
    case Op::Math2: {
      double B = asDouble(Pop());
      double A = asDouble(Pop());
      double R = 0;
      switch ((MathFn)I.A) {
      case MathFn::Pow: R = std::pow(A, B); break;
      case MathFn::Fmin: R = std::fmin(A, B); break;
      case MathFn::Fmax: R = std::fmax(A, B); break;
      default: R = A; break;
      }
      Push(asBits(R));
      break;
    }

    case Op::Trap:
      T.State = ThreadState::Failed;
      return fail("trap: " + Program.TrapMessages[I.A]);
    }
  }
}

std::unique_ptr<Device> dpo::buildDevice(std::string_view Source,
                                         DiagnosticEngine &Diags) {
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return nullptr;
  VmProgram Program = compileProgram(TU, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return std::make_unique<Device>(std::move(Program));
}
