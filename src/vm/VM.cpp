//===--- VM.cpp ------------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
// The interpreter core: the dispatch layer of the three-layer pipeline
//   bytecode (Bytecode.h) -> decoded IR (ExecIR.h) -> dispatch (here).
//
// Two execution engines compile from the same handler bodies
// (VMHandlers.inc, measured by bench/vm_throughput.cpp):
//
//  1. The decoded-IR loop (default): executes the fixed-width decoded
//     instruction array built at device construction. Dispatch is
//     *direct-threaded* on GCC/Clang — every instruction carries its
//     handler address, so a handler ends with `goto *I->Handler`, no
//     table indexing per step. Decode-time pair fusions retire in one
//     dispatch but charge the step cost of the pair, keeping VmStats
//     and grid logs bit-identical to the fallback engine.
//
//  2. The bytecode interpreter (fallback, ExecMode::Bytecode): threaded
//     dispatch through a dense label table indexed by opcode — one
//     indirect branch per handler instead of one shared switch branch.
//     A portable switch fallback compiles everywhere else from the same
//     handler bodies (see the VM_CASE/VM_NEXT macros).
//
// Shared structural decisions:
//
//  - Zero steady-state allocation: thread contexts (operand stack, frame
//    stack, locals arena, addressable frame memory) live in per-device
//    pools reused across blocks and grids. runBlock resets contexts
//    instead of constructing them; vectors keep their capacity, so after
//    warm-up no heap allocation happens per thread or per block.
//
//  - Decoded execution state: the current function's code pointer, the
//    frame's locals pointer, the operand stack pointer, and the memory
//    base are interpreter registers (locals), re-derived only at frame
//    switches. Bytecode is validated once at device construction
//    (validateProgram), so the loops perform no per-step bounds checks
//    on PC, local slots, or callee indices.
//
//  - Frame-entry parameter normalization: integer parameter slots are
//    wrapped to their declared widths when a frame is entered (runBlock
//    and the Call handler share normalizeParamSlots), the contract that
//    lets the peephole elide parameter-driven re-wraps.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "parse/Parser.h"
#include "vm/AtomicMem.h"
#include "vm/SlotOps.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>

using namespace dpo;

namespace {

// Slot arithmetic shared with the peephole constant folder
// (vm/SlotOps.h): folding computes exactly what execution computes.
double asDouble(int64_t Bits) { return slotAsDouble(Bits); }
int64_t asBits(double D) { return slotFromDouble(D); }

/// Addressable per-thread frame-memory region (reused across blocks).
constexpr uint64_t ThreadFrameMemBytes = 64 * 1024;

/// Resolves ExecMode::Auto: decoded with traces unless DPO_VM_EXEC
/// selects another engine ("bytecode" or "decoded-notrace").
ExecMode resolveExecMode(ExecMode Mode) {
  if (Mode != ExecMode::Auto)
    return Mode;
  const char *Env = std::getenv("DPO_VM_EXEC");
  if (Env && std::string_view(Env) == "bytecode")
    return ExecMode::Bytecode;
  if (Env && std::string_view(Env) == "decoded-notrace")
    return ExecMode::DecodedNoTrace;
  return ExecMode::Decoded;
}

/// Resolves the worker count from DPO_VM_WORKERS (absent, non-numeric,
/// or < 1 all mean the deterministic single-worker mode). Capped so a
/// typo cannot spawn an absurd pool.
unsigned resolveWorkerCount() {
  const char *Env = std::getenv("DPO_VM_WORKERS");
  if (!Env || !*Env)
    return 1;
  char *End = nullptr;
  long N = std::strtol(Env, &End, 10);
  if (End == Env || (End && *End) || N < 1)
    return 1;
  return (unsigned)std::min<long>(N, 64);
}

} // namespace

Device::Device(VmProgram ProgramIn, uint64_t MemoryBytes, ExecMode ModeIn)
    : Program(std::move(ProgramIn)), Mode(resolveExecMode(ModeIn)),
      UseDecoded(Mode != ExecMode::Bytecode), Memory(MemoryBytes, 0),
      Workers(resolveWorkerCount()) {
  // The main thread's worker context; pool contexts are created lazily
  // at the first parallel drain.
  WorkerCtxs.push_back(std::make_unique<WorkerCtx>());
  WorkerCtxs[0]->IsMain = true;
  // Null page, then globals, then the heap.
  BumpPtr = GlobalBase;
  if (!Program.GlobalImage.empty()) {
    std::memcpy(Memory.data() + GlobalBase, Program.GlobalImage.data(),
                Program.GlobalImage.size());
    BumpPtr += Program.GlobalImage.size();
  }
  BumpPtr = (BumpPtr + 63) & ~63ull;
  validateProgram();

  // Frame-entry normalization specs (all-raw signatures collapse to an
  // empty vector so the entry loop is a no-op for them).
  NormSpecs.resize(Program.Functions.size());
  for (size_t FI = 0; FI < Program.Functions.size(); ++FI) {
    std::vector<uint8_t> Spec = paramNormSpec(Program.Functions[FI]);
    bool Any = false;
    for (uint8_t N : Spec)
      Any |= N != 0;
    if (Any)
      NormSpecs[FI] = std::move(Spec);
  }

  // Lower validated bytecode into the decoded execution IR. The decoded
  // loop's dispatch labels are function-local, so export them through a
  // one-shot call before decoding.
  if (UseDecoded && ValidationError.empty()) {
    const void *const *Labels = nullptr;
    runThreadExec(nullptr, nullptr, nullptr, {}, 0, &Labels);
    Exec = decodeProgram(Program, Labels, Mode == ExecMode::Decoded);
  }
}

Device::~Device() { shutdownWorkers(); }

bool dpo::operator==(const VmStats &A, const VmStats &B) {
  return A.GridsLaunched == B.GridsLaunched &&
         A.DeviceLaunches == B.DeviceLaunches &&
         A.HostLaunches == B.HostLaunches &&
         A.BlocksExecuted == B.BlocksExecuted &&
         A.ThreadsExecuted == B.ThreadsExecuted && A.Steps == B.Steps &&
         A.LargestGridBlocks == B.LargestGridBlocks &&
         A.TraceEntries == B.TraceEntries && A.TraceIters == B.TraceIters &&
         A.TraceSideExits == B.TraceSideExits &&
         A.SpecGuardPass == B.SpecGuardPass &&
         A.SpecGuardFail == B.SpecGuardFail;
}

bool dpo::operator==(const GridRecord &A, const GridRecord &B) {
  return A.Blocks == B.Blocks && A.Threads == B.Threads &&
         A.Steps == B.Steps && A.MaxThreadSteps == B.MaxThreadSteps &&
         A.BlockDim == B.BlockDim && A.Site == B.Site &&
         A.FromHost == B.FromHost;
}

bool dpo::operator==(const DeviceCheckpoint &A, const DeviceCheckpoint &B) {
  return A.BumpPtr == B.BumpPtr && A.Stats == B.Stats &&
         A.Memory == B.Memory && A.GridLog == B.GridLog;
}

DeviceCheckpoint Device::checkpoint() const {
  DeviceCheckpoint C;
  C.Memory = Memory;
  C.BumpPtr = BumpPtr;
  C.Stats = Stats;
  C.GridLog = GridLog;
  return C;
}

bool Device::restore(const DeviceCheckpoint &C) {
  if (C.Memory.size() != Memory.size())
    return false;
  Memory = C.Memory;
  BumpPtr = C.BumpPtr;
  Stats = C.Stats;
  GridLog = C.GridLog;
  // Pooled thread contexts cache their lazily bump-allocated frame-memory
  // regions across launches. A region at or above the restored bump
  // pointer was allocated after the checkpoint: the restored allocator
  // has forgotten it, so keeping the cache would let later allocations
  // land inside live frame memory. Drop those caches — the replayed run
  // re-allocates them in the same order the original run did. Regions
  // below the restored pointer were already cached at checkpoint time
  // and must stay cached for replays to be bit-exact.
  for (auto &W : WorkerCtxs)
    for (auto &Pool : W->Pools)
      for (ThreadCtx &T : Pool->Threads)
        if (T.StackMemBase >= BumpPtr) {
          T.StackMemBase = 0;
          T.StackMemUsed = 0;
        }
  LastError.clear();
  return true;
}

void Device::setWorkers(unsigned N) {
  if (N == 0)
    N = resolveWorkerCount();
  Workers = std::min(N, 64u);
  if (Workers == 0)
    Workers = 1;
}

void Device::validateProgram() {
  auto Bad = [&](const FuncDef &F, const std::string &What) {
    if (ValidationError.empty())
      ValidationError = "invalid bytecode in '" + F.Name + "': " + What;
  };
  for (const FuncDef &F : Program.Functions) {
    size_t N = F.Code.size();
    if (N == 0) {
      Bad(F, "empty code");
      continue;
    }
    Op LastOp = F.Code.back().Code;
    if (LastOp != Op::Ret && LastOp != Op::RetVoid && LastOp != Op::Jmp &&
        LastOp != Op::Trap)
      Bad(F, "does not end in a terminator");
    for (const Instr &I : F.Code) {
      if (isJumpOp(I.Code) && (uint64_t)I.A >= N)
        Bad(F, std::string("jump target out of range in ") + opName(I.Code));
      switch (I.Code) {
      case Op::LoadLocal:
      case Op::StoreLocal:
      case Op::LoadLocalImmAddI:
      case Op::IncLocalI32:
      case Op::IncLocalI64:
        if ((uint64_t)I.A >= F.NumLocals)
          Bad(F, std::string("local slot out of range in ") + opName(I.Code));
        break;
      case Op::LoadLocal2:
      case Op::LoadLoadAddI:
      case Op::LdI32Idx:
      case Op::LdU32Idx:
      case Op::LdI64Idx:
      case Op::LdF32Idx:
      case Op::LdF64Idx:
        if ((uint64_t)I.A >= F.NumLocals || (uint64_t)I.B >= F.NumLocals)
          Bad(F, std::string("local slot out of range in ") + opName(I.Code));
        break;
      case Op::Call:
      case Op::Launch:
        if ((uint64_t)I.A >= Program.Functions.size()) {
          Bad(F, std::string("callee index out of range in ") +
                     opName(I.Code));
        } else if ((uint64_t)I.B !=
                   Program.Functions[I.A].NumParamSlots) {
          // The interpreter copies exactly B argument slots into the
          // callee's locals (Call) or launch record (Launch) with no
          // per-step bounds check — the slot count must match here.
          Bad(F, std::string("argument slot count mismatch in ") +
                     opName(I.Code));
        } else if (I.Code == Op::Launch &&
                   (uint64_t)I.C > Program.LaunchSiteNames.size()) {
          Bad(F, "launch site ordinal out of range");
        }
        break;
      case Op::Trap:
        if ((uint64_t)I.A >= Program.TrapMessages.size())
          Bad(F, "trap message index out of range");
        break;
      default:
        break;
      }
    }
  }

  // Per-function barrier reachability (transitive over calls): kernels
  // that provably never hit __syncthreads (or a warp/block collective,
  // which parks the same way) run their blocks through the fast
  // no-scheduler path in runBlock.
  size_t N = Program.Functions.size();
  MayBarrier.assign(N, 0);
  for (size_t FI = 0; FI < N; ++FI)
    for (const Instr &I : Program.Functions[FI].Code)
      if (I.Code == Op::SyncThreads || I.Code == Op::WarpShfl ||
          I.Code == Op::WarpBallot || I.Code == Op::BlockReduce)
        MayBarrier[FI] = 1;
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t FI = 0; FI < N; ++FI) {
      if (MayBarrier[FI])
        continue;
      for (const Instr &I : Program.Functions[FI].Code)
        if (I.Code == Op::Call && (uint64_t)I.A < N && MayBarrier[I.A]) {
          MayBarrier[FI] = 1;
          Changed = true;
          break;
        }
    }
  }
}

uint64_t Device::alloc(uint64_t Bytes) {
  // Called from worker handlers (frame-memory regions, cudaMalloc)
  // concurrently with other workers executing: the bump pointer is
  // mutex-guarded, and since Memory never reallocates, data pointers
  // cached by running interpreter loops stay valid across allocs.
  std::lock_guard<std::mutex> Lk(AllocMutex);
  uint64_t Addr = (BumpPtr + 7) & ~7ull;
  if (Bytes > Memory.size() || Addr > Memory.size() - Bytes) {
    std::lock_guard<std::mutex> ELk(ErrMutex);
    LastError = "device out of memory";
    return 0;
  }
  BumpPtr = Addr + Bytes;
  std::memset(Memory.data() + Addr, 0, Bytes);
  return Addr;
}

// Overflow-safe: (Addr + Bytes) may wrap for hostile Addr, so compare
// against the size from the other side.
#define DPO_CHECKED_RW(Addr, Bytes)                                           \
  assert((Addr) != 0 && (uint64_t)(Bytes) <= Memory.size() &&                 \
         (uint64_t)(Addr) <= Memory.size() - (uint64_t)(Bytes) &&             \
         "host access out of bounds")

void Device::writeI32(uint64_t Addr, int32_t V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeU32(uint64_t Addr, uint32_t V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeI64(uint64_t Addr, int64_t V) {
  DPO_CHECKED_RW(Addr, 8);
  std::memcpy(Memory.data() + Addr, &V, 8);
}
void Device::writeF32(uint64_t Addr, float V) {
  DPO_CHECKED_RW(Addr, 4);
  std::memcpy(Memory.data() + Addr, &V, 4);
}
void Device::writeF64(uint64_t Addr, double V) {
  DPO_CHECKED_RW(Addr, 8);
  std::memcpy(Memory.data() + Addr, &V, 8);
}
int32_t Device::readI32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  int32_t V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
uint32_t Device::readU32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  uint32_t V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
int64_t Device::readI64(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 8);
  int64_t V;
  std::memcpy(&V, Memory.data() + Addr, 8);
  return V;
}
float Device::readF32(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 4);
  float V;
  std::memcpy(&V, Memory.data() + Addr, 4);
  return V;
}
double Device::readF64(uint64_t Addr) const {
  DPO_CHECKED_RW(Addr, 8);
  double V;
  std::memcpy(&V, Memory.data() + Addr, 8);
  return V;
}

uint64_t Device::allocI32(const std::vector<int32_t> &Values) {
  uint64_t Addr = alloc(Values.size() * 4);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
  return Addr;
}

std::vector<int32_t> Device::readI32Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 4);
  std::vector<int32_t> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 4);
  return Result;
}

uint64_t Device::allocI64(const std::vector<int64_t> &Values) {
  uint64_t Addr = alloc(Values.size() * 8);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
  return Addr;
}
uint64_t Device::allocF32(const std::vector<float> &Values) {
  uint64_t Addr = alloc(Values.size() * 4);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
  return Addr;
}
uint64_t Device::allocF64(const std::vector<double> &Values) {
  uint64_t Addr = alloc(Values.size() * 8);
  if (Addr)
    std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
  return Addr;
}
std::vector<int64_t> Device::readI64Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 8);
  std::vector<int64_t> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 8);
  return Result;
}
std::vector<float> Device::readF32Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 4);
  std::vector<float> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 4);
  return Result;
}
std::vector<double> Device::readF64Array(uint64_t Addr, size_t Count) const {
  DPO_CHECKED_RW(Addr, Count * 8);
  std::vector<double> Result(Count);
  std::memcpy(Result.data(), Memory.data() + Addr, Count * 8);
  return Result;
}
void Device::writeI32Array(uint64_t Addr, const std::vector<int32_t> &Values) {
  DPO_CHECKED_RW(Addr, Values.size() * 4);
  std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 4);
}
void Device::writeI64Array(uint64_t Addr, const std::vector<int64_t> &Values) {
  DPO_CHECKED_RW(Addr, Values.size() * 8);
  std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
}
void Device::writeF64Array(uint64_t Addr, const std::vector<double> &Values) {
  DPO_CHECKED_RW(Addr, Values.size() * 8);
  std::memcpy(Memory.data() + Addr, Values.data(), Values.size() * 8);
}
void Device::fillI32(uint64_t Addr, size_t Count, int32_t V) {
  DPO_CHECKED_RW(Addr, Count * 4);
  for (size_t I = 0; I < Count; ++I)
    std::memcpy(Memory.data() + Addr + I * 4, &V, 4);
}
void Device::fillI64(uint64_t Addr, size_t Count, int64_t V) {
  DPO_CHECKED_RW(Addr, Count * 8);
  for (size_t I = 0; I < Count; ++I)
    std::memcpy(Memory.data() + Addr + I * 8, &V, 8);
}

bool Device::fail(const std::string &Message) {
  // Set-once under the mutex: with several workers failing near-
  // simultaneously, the first failure's message wins deterministically
  // enough for diagnosis, and later reads (post-join) are race-free.
  std::lock_guard<std::mutex> Lk(ErrMutex);
  if (LastError.empty())
    LastError = Message;
  return false;
}

bool Device::checkRange(uint64_t Addr, uint64_t Bytes) {
  if (Addr == 0)
    return fail("null pointer access");
  // Written so (Addr + Bytes) cannot wrap around for large Addr.
  if (Bytes > Memory.size() || Addr > Memory.size() - Bytes)
    return fail("device memory access out of bounds");
  return true;
}

void Device::growStack(ThreadCtx &T) {
  T.Stack.resize(T.Stack.empty() ? 64 : T.Stack.size() * 2);
}

bool Device::launchKernel(const std::string &Name, Dim3V Grid, Dim3V Block,
                          const std::vector<int64_t> &Args) {
  LastError.clear();
  StepsUsed.store(0, std::memory_order_relaxed);
  if (!ValidationError.empty())
    return fail(ValidationError);
  const FuncDef *F = Program.find(Name);
  if (!F)
    return fail("unknown kernel '" + Name + "'");
  if (!F->IsKernel)
    return fail("'" + Name + "' is not a __global__ kernel");
  if (Args.size() != F->NumParamSlots)
    return fail("kernel '" + Name + "' expects " +
                std::to_string(F->NumParamSlots) + " argument slots, got " +
                std::to_string(Args.size()));
  PendingLaunch L;
  L.Func = Program.FunctionIndex.at(Name);
  L.Grid = Grid;
  L.Block = Block;
  L.Args = Args;
  L.FromHost = true;
  ++Stats.HostLaunches;
  Queue.push_back(std::move(L));
  bool Ok = drainLaunches();
  mergeWorkerStats();
  return Ok;
}

bool Device::callHost(const std::string &Name,
                      const std::vector<int64_t> &Args) {
  LastError.clear();
  StepsUsed.store(0, std::memory_order_relaxed);
  if (!ValidationError.empty())
    return fail(ValidationError);
  const FuncDef *F = Program.find(Name);
  if (!F)
    return fail("unknown function '" + Name + "'");
  if (Args.size() != F->NumParamSlots)
    return fail("function '" + Name + "' expects " +
                std::to_string(F->NumParamSlots) + " argument slots, got " +
                std::to_string(Args.size()));

  InHostCall = true;
  PendingLaunch L;
  L.Func = Program.FunctionIndex.at(Name);
  L.Grid = {1, 1, 1};
  L.Block = {1, 1, 1};
  L.Args = Args;
  L.FromHost = true;
  // The host pseudo-thread always executes on the main worker; its
  // buffered launches join the queue when it returns (or at each
  // cudaDeviceSynchronize inside it).
  WorkerCtx &W = *WorkerCtxs[0];
  W.LogSink = &GridLog;
  bool Ok = runGrid(L, W);
  for (PendingLaunch &C : W.Pending)
    Queue.push_back(std::move(C));
  W.Pending.clear();
  Ok = Ok && drainLaunches();
  InHostCall = false;
  mergeWorkerStats();
  return Ok;
}

bool Device::hasKernel(const std::string &Name) const {
  const FuncDef *F = Program.find(Name);
  return F && F->IsKernel;
}

bool Device::hasHostFunction(const std::string &Name) const {
  const FuncDef *F = Program.find(Name);
  return F && !F->IsKernel;
}

bool Device::drainLaunches() {
  if (Workers > 1)
    return drainLaunchesParallel();
  // Sequential mode: FIFO drain on the main worker. Children buffered
  // during a grid append behind the whole queue when it completes —
  // exactly where the direct-push implementation put them, since only
  // one grid ever runs at a time.
  WorkerCtx &W = *WorkerCtxs[0];
  while (!Queue.empty()) {
    PendingLaunch L = std::move(Queue.front());
    Queue.pop_front();
    W.LogSink = &GridLog;
    bool Ok = runGrid(L, W);
    for (PendingLaunch &C : W.Pending)
      Queue.push_back(std::move(C));
    W.Pending.clear();
    if (!Ok)
      return false;
    // Recycle the argument buffer: steady-state device-side launching
    // performs no per-launch allocation.
    if (L.Args.capacity() > 0 && W.ArgPool.size() < 256)
      W.ArgPool.push_back(std::move(L.Args));
  }
  return true;
}

bool Device::drainLaunchesParallel() {
  ensureWorkersSpawned();
  WorkerCtx &W0 = *WorkerCtxs[0];
  while (!Queue.empty()) {
    // A solo grid has nothing to overlap with: run it inline instead of
    // waking the pool (deep launch chains — one parent grid per round —
    // hit this path every round).
    if (Queue.size() == 1) {
      PendingLaunch L = std::move(Queue.front());
      Queue.pop_front();
      W0.LogSink = &GridLog;
      bool Ok = runGrid(L, W0);
      for (PendingLaunch &C : W0.Pending)
        Queue.push_back(std::move(C));
      W0.Pending.clear();
      if (!Ok)
        return false;
      if (L.Args.capacity() > 0 && W0.ArgPool.size() < 256)
        W0.ArgPool.push_back(std::move(L.Args));
      continue;
    }

    // Snapshot the whole queue as one wave. Every queued grid is
    // independent of every other (children of a running grid only enter
    // the queue after it completes), so the wave may execute in any
    // interleaving; the per-slot child/record merge below restores the
    // sequential FIFO linearization.
    ParallelWave Wave;
    Wave.Items.reserve(Queue.size());
    while (!Queue.empty()) {
      Wave.Items.push_back(std::move(Queue.front()));
      Queue.pop_front();
    }
    Wave.Children.resize(Wave.Items.size());
    if (GridLogEnabled)
      Wave.Logs.resize(Wave.Items.size());

    {
      std::lock_guard<std::mutex> Lk(WaveMutex);
      CurWave = &Wave;
      ++WaveGen;
      WaveActive = (unsigned)WorkerThreads.size();
    }
    WaveCv.notify_all();
    runWaveItems(Wave, W0); // The main thread works the wave too.
    {
      std::unique_lock<std::mutex> Lk(WaveMutex);
      WaveDoneCv.wait(Lk, [&] { return WaveActive == 0; });
      CurWave = nullptr;
    }

    for (size_t I = 0; I < Wave.Items.size(); ++I) {
      if (GridLogEnabled)
        for (GridRecord &R : Wave.Logs[I])
          GridLog.push_back(R);
      for (PendingLaunch &C : Wave.Children[I])
        Queue.push_back(std::move(C));
    }
    if (Wave.Failed.load(std::memory_order_relaxed))
      return false;
  }
  return true;
}

void Device::runWaveItems(ParallelWave &Wave, WorkerCtx &W) {
  const size_t N = Wave.Items.size();
  for (;;) {
    size_t Idx = Wave.Next.fetch_add(1, std::memory_order_relaxed);
    if (Idx >= N)
      return;
    // After a failure, claim the remaining items without running them so
    // the wave completes promptly (the error is already recorded).
    if (Wave.Failed.load(std::memory_order_relaxed))
      continue;
    PendingLaunch &L = Wave.Items[Idx];
    W.LogSink = GridLogEnabled ? &Wave.Logs[Idx] : nullptr;
    bool Ok = runGrid(L, W);
    Wave.Children[Idx] = std::move(W.Pending);
    W.Pending.clear();
    if (!Ok)
      Wave.Failed.store(true, std::memory_order_relaxed);
    else if (L.Args.capacity() > 0 && W.ArgPool.size() < 256)
      W.ArgPool.push_back(std::move(L.Args));
  }
}

void Device::workerLoop(WorkerCtx &W, uint64_t SeenGen) {
  std::unique_lock<std::mutex> Lk(WaveMutex);
  for (;;) {
    WaveCv.wait(Lk, [&] { return ShuttingDown || WaveGen != SeenGen; });
    if (ShuttingDown)
      return;
    SeenGen = WaveGen;
    ParallelWave *Wave = CurWave;
    Lk.unlock();
    if (Wave)
      runWaveItems(*Wave, W);
    Lk.lock();
    if (--WaveActive == 0)
      WaveDoneCv.notify_all();
  }
}

void Device::ensureWorkersSpawned() {
  while (WorkerCtxs.size() < Workers)
    WorkerCtxs.push_back(std::make_unique<WorkerCtx>());
  while (WorkerThreads.size() + 1 < Workers) {
    WorkerCtx *C = WorkerCtxs[WorkerThreads.size() + 1].get();
    uint64_t StartGen = WaveGen;
    WorkerThreads.emplace_back(
        [this, C, StartGen] { workerLoop(*C, StartGen); });
  }
}

void Device::shutdownWorkers() {
  {
    std::lock_guard<std::mutex> Lk(WaveMutex);
    ShuttingDown = true;
  }
  WaveCv.notify_all();
  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
  WorkerThreads.clear();
  ShuttingDown = false;
}

void Device::mergeWorkerStats() {
  for (auto &C : WorkerCtxs) {
    VmStats &S = C->Stats;
    Stats.GridsLaunched += S.GridsLaunched;
    Stats.DeviceLaunches += S.DeviceLaunches;
    Stats.HostLaunches += S.HostLaunches;
    Stats.BlocksExecuted += S.BlocksExecuted;
    Stats.ThreadsExecuted += S.ThreadsExecuted;
    Stats.Steps += S.Steps;
    Stats.LargestGridBlocks =
        std::max(Stats.LargestGridBlocks, S.LargestGridBlocks);
    Stats.TraceEntries += S.TraceEntries;
    Stats.TraceIters += S.TraceIters;
    Stats.TraceSideExits += S.TraceSideExits;
    Stats.SpecGuardPass += S.SpecGuardPass;
    Stats.SpecGuardFail += S.SpecGuardFail;
    S = VmStats();
  }
}

bool Device::runGrid(PendingLaunch &L, WorkerCtx &W) {
  const FuncDef &F = Program.Functions[L.Func];
  ++W.Stats.GridsLaunched;
  W.Stats.LargestGridBlocks =
      std::max(W.Stats.LargestGridBlocks, (uint64_t)L.Grid.count());
  if (L.Grid.count() == 0 || L.Block.count() == 0)
    return true; // Empty grids complete immediately.
  if (L.Block.count() > 1024)
    return fail("block of " + std::to_string(L.Block.count()) +
                " threads exceeds the 1024-thread limit in '" + F.Name + "'");

  // Frame-entry parameter normalization, hoisted to once per grid —
  // every thread receives the same argument slots. The per-thread
  // initial locals image (normalized params, then zeros) is built here
  // once and copied per thread in runBlock.
  normalizeParamSlots(L.Func, L.Args.data());
  constexpr unsigned InlineLocals = 64;
  int64_t InitBuf[InlineLocals];
  std::vector<int64_t> InitHeap;
  int64_t *Init = InitBuf;
  if (F.NumLocals > InlineLocals) {
    InitHeap.resize(F.NumLocals);
    Init = InitHeap.data();
  }
  for (unsigned I = 0; I < F.NumParamSlots; ++I)
    Init[I] = L.Args[I];
  for (unsigned I = F.NumParamSlots; I < F.NumLocals; ++I)
    Init[I] = 0;

  uint64_t SharedBase = 0;
  if (F.SharedBytes > 0) {
    SharedBase = alloc(F.SharedBytes);
    if (!SharedBase)
      return false;
  }

  // Grid-log bookkeeping: the record reports this grid's *exclusive*
  // work — WorkerCtx::GridSteps accumulates only this worker's flushes,
  // and nested grids (a host pseudo-thread draining mid-flight) save,
  // zero, and restore it so their steps never leak into the parent's
  // record. The log sink is captured here because a nested drain
  // repoints W.LogSink while this grid is still running.
  uint64_t SavedGridSteps = 0, SavedMax = 0;
  std::vector<GridRecord> *Sink = nullptr;
  if (GridLogEnabled) {
    Sink = W.LogSink;
    SavedGridSteps = W.GridSteps;
    SavedMax = W.CurGridMaxThreadSteps;
    W.GridSteps = 0;
    W.CurGridMaxThreadSteps = 0;
  }

  for (uint32_t BZ = 0; BZ < L.Grid.Z; ++BZ)
    for (uint32_t BY = 0; BY < L.Grid.Y; ++BY)
      for (uint32_t BX = 0; BX < L.Grid.X; ++BX) {
        if (SharedBase)
          std::memset(Memory.data() + SharedBase, 0, F.SharedBytes);
        if (!runBlock(L, W, {BX, BY, BZ}, SharedBase, Init))
          return false;
      }

  if (GridLogEnabled) {
    GridRecord R;
    R.Blocks = L.Grid.count();
    R.Threads = L.Grid.count() * L.Block.count();
    R.Steps = W.GridSteps;
    R.MaxThreadSteps = W.CurGridMaxThreadSteps;
    R.BlockDim = (uint32_t)L.Block.count();
    R.Site = L.Site;
    R.FromHost = L.FromHost;
    if (Sink)
      Sink->push_back(R);
    W.GridSteps = SavedGridSteps;
    W.CurGridMaxThreadSteps = SavedMax;
  }
  return true;
}

bool Device::runBlock(const PendingLaunch &L, WorkerCtx &W, Dim3V BlockIdx,
                      uint64_t SharedBase, const int64_t *InitLocals) {
  const FuncDef &F = Program.Functions[L.Func];
  ++W.Stats.BlocksExecuted;

  // Acquire this worker's context pool for this nesting depth (depth > 0
  // only when a host pseudo-thread's cudaDeviceSynchronize re-enters the
  // engine).
  if (W.PoolDepth >= W.Pools.size())
    W.Pools.push_back(std::make_unique<BlockPool>());
  BlockPool &Pool = *W.Pools[W.PoolDepth];
  ++W.PoolDepth;
  struct DepthGuard {
    unsigned &Depth;
    ~DepthGuard() { --Depth; }
  } Guard{W.PoolDepth};

  size_t NumThreads = (size_t)L.Block.count();
  if (Pool.Threads.size() < NumThreads)
    Pool.Threads.resize(NumThreads);

  if (F.FrameBytes > ThreadFrameMemBytes)
    return fail("thread frame-memory stack overflow");

  W.Stats.ThreadsExecuted += NumThreads;
  auto SetupThread = [&](ThreadCtx &T, uint32_t TX, uint32_t TY,
                         uint32_t TZ) -> bool {
    T.reset();
    T.ThreadIdx = {TX, TY, TZ};
    Frame Root;
    Root.Func = L.Func;
    Root.PC = 0;
    Root.LocalsBase = 0;
    // One copy of the per-grid initial image (normalized params + zeroed
    // locals, built in runGrid) instead of per-thread fill + arg loop.
    T.LocalsArena.assign(InitLocals, InitLocals + F.NumLocals);
    if (F.FrameBytes > 0) {
      if (!T.StackMemBase) {
        T.StackMemBase = alloc(ThreadFrameMemBytes);
        if (!T.StackMemBase)
          return false;
      }
      Root.FrameMemBase = T.StackMemBase;
      Root.FrameMemBytes = F.FrameBytes;
      T.StackMemUsed = F.FrameBytes;
      std::memset(Memory.data() + Root.FrameMemBase, 0, F.FrameBytes);
    }
    T.Frames.push_back(Root);
    return true;
  };

  // Fast path: a kernel that provably never reaches __syncthreads
  // (MayBarrier, transitive over calls) needs no round-robin scheduler.
  // The whole block executes inside ONE interpreter invocation (block
  // mode): a single recycled context runs every thread back to back, and
  // thread switch is an in-loop reinit from the per-grid locals image.
  if (!MayBarrier[L.Func]) {
    ThreadCtx &T = Pool.Threads[0];
    if (!SetupThread(T, 0, 0, 0))
      return false;
    bool Ok = UseDecoded
                  ? runThreadExec(&T, &W, &L, BlockIdx, SharedBase, nullptr,
                                  InitLocals, (uint32_t)NumThreads)
                  : runThread(T, W, L, BlockIdx, SharedBase, InitLocals,
                              (uint32_t)NumThreads);
    if (!Ok)
      return false;
    if (T.State != ThreadState::Done)
      return fail("barrier reached in a barrier-free kernel (MayBarrier "
                  "analysis out of sync)");
    return true;
  }

  // Cooperative block mode: every thread context of the block is set up
  // front, then ONE interpreter invocation runs them all — __syncthreads
  // and the warp/block collectives are in-loop yield points (the handler
  // parks the thread and jumps to the cooperative scheduler, which
  // restores the next ready context without leaving the function). The
  // thread execution order is index-ascending between release points,
  // identical to the retired round-robin scheduler, so payloads and
  // per-thread step counts are unchanged.
  size_t TI = 0;
  for (uint32_t TZ = 0; TZ < L.Block.Z; ++TZ)
    for (uint32_t TY = 0; TY < L.Block.Y; ++TY)
      for (uint32_t TX = 0; TX < L.Block.X; ++TX)
        if (!SetupThread(Pool.Threads[TI++], TX, TY, TZ))
          return false;

  ThreadCtx *CT = Pool.Threads.data();
  bool Ok = UseDecoded
                ? runThreadExec(CT, &W, &L, BlockIdx, SharedBase, nullptr,
                                nullptr, 0, CT, (uint32_t)NumThreads)
                : runThread(*CT, W, L, BlockIdx, SharedBase, nullptr, 0, CT,
                            (uint32_t)NumThreads);
  if (!Ok)
    return false;
  if (GridLogEnabled)
    for (size_t TIdx = 0; TIdx < NumThreads; ++TIdx)
      W.CurGridMaxThreadSteps =
          std::max(W.CurGridMaxThreadSteps, Pool.Threads[TIdx].StepsRetired);
  return true;
}

int Device::coopRelease(ThreadCtx *Threads, uint32_t Count, size_t &NextTI) {
  // 1. Resolve complete collective groups. A warp group spans the 32
  // index-contiguous threads sharing linear-tid/32 (runBlock sets the
  // contexts up in linear order); a block-reduce group spans the whole
  // block. Since no thread is Ready when this runs, a group is complete
  // exactly when its live members are all parked at the triggering
  // thread's site; live members parked elsewhere (a masked tail at a
  // wrapper barrier) are simply not part of the group — the same lenient
  // semantics barriers have. Resolution order is index-ascending, so
  // results are deterministic.
  auto PushResult = [&](ThreadCtx &P, int64_t V) {
    if (P.StackTop == P.Stack.size())
      growStack(P);
    P.Stack[P.StackTop++] = V;
  };
  bool Resolved = false;
  for (uint32_t I = 0; I < Count; ++I) {
    ThreadCtx &T = Threads[I];
    if (T.State != ThreadState::AtCollective)
      continue;
    const Frame &TF = T.Frames.back();
    uint32_t Lo = T.CollOp == CollKind::Reduce ? 0 : (I & ~31u);
    uint32_t Hi = T.CollOp == CollKind::Reduce
                      ? Count
                      : std::min<uint32_t>(Lo + 32, Count);
    // Gather the group: members parked at this exact site.
    uint32_t Members[1024];
    uint32_t NumMembers = 0;
    for (uint32_t J = Lo; J < Hi; ++J) {
      ThreadCtx &P = Threads[J];
      if (P.State != ThreadState::AtCollective || P.CollOp != T.CollOp)
        continue;
      const Frame &PF = P.Frames.back();
      if (PF.Func != TF.Func || PF.PC != TF.PC)
        continue;
      Members[NumMembers++] = J;
    }
    switch (T.CollOp) {
    case CollKind::Shfl: {
      // Per-member result: the contributed value of the source lane, or
      // the member's own value when the source lane is out of range,
      // absent (exited), or outside the mask.
      for (uint32_t MI = 0; MI < NumMembers; ++MI) {
        ThreadCtx &P = Threads[Members[MI]];
        uint32_t Lane = Members[MI] & 31u;
        int64_t Delta = P.CollArg;
        int64_t Src = -1;
        switch (P.CollMode) {
        case 0: Src = Delta & 31; break;                        // idx
        case 1: Src = (int64_t)Lane - Delta; break;             // up
        case 2: Src = (int64_t)Lane + Delta; break;             // down
        default: Src = (int64_t)(Lane ^ ((uint64_t)Delta & 31)); break;
        }
        int64_t Res = P.CollVal;
        if (Src >= 0 && Src < 32 && ((P.CollMask >> Src) & 1)) {
          for (uint32_t MJ = 0; MJ < NumMembers; ++MJ)
            if ((Members[MJ] & 31u) == (uint32_t)Src) {
              Res = Threads[Members[MJ]].CollVal;
              break;
            }
        }
        PushResult(P, Res);
      }
      break;
    }
    case CollKind::Ballot: {
      // One bitmask for the whole group: lane bits where the lane is in
      // the triggering mask and its predicate was nonzero.
      uint64_t Bits = 0;
      for (uint32_t MI = 0; MI < NumMembers; ++MI) {
        ThreadCtx &P = Threads[Members[MI]];
        uint32_t Lane = Members[MI] & 31u;
        if (((T.CollMask >> Lane) & 1) && P.CollVal != 0)
          Bits |= 1ull << Lane;
      }
      for (uint32_t MI = 0; MI < NumMembers; ++MI)
        PushResult(Threads[Members[MI]], (int64_t)(uint32_t)Bits);
      break;
    }
    case CollKind::Reduce: {
      int64_t Acc = T.CollVal;
      for (uint32_t MI = 0; MI < NumMembers; ++MI) {
        int64_t V = Threads[Members[MI]].CollVal;
        if (Members[MI] == I)
          continue;
        switch (T.CollMode) {
        case 0: Acc = (int64_t)((uint64_t)Acc + (uint64_t)V); break;
        case 1: Acc = std::min(Acc, V); break;
        default: Acc = std::max(Acc, V); break;
        }
      }
      for (uint32_t MI = 0; MI < NumMembers; ++MI)
        PushResult(Threads[Members[MI]], Acc);
      break;
    }
    }
    for (uint32_t MI = 0; MI < NumMembers; ++MI)
      Threads[Members[MI]].State = ThreadState::Ready;
    Resolved = true;
  }

  // 2. Lenient barrier release: every parked waiter goes, regardless of
  // which barrier site it reached — finished threads are not waited for.
  if (!Resolved) {
    bool AnyWaiting = false;
    for (uint32_t I = 0; I < Count; ++I)
      if (Threads[I].State == ThreadState::AtBarrier) {
        Threads[I].State = ThreadState::Ready;
        AnyWaiting = true;
      }
    if (!AnyWaiting) {
      for (uint32_t I = 0; I < Count; ++I)
        if (Threads[I].State != ThreadState::Done) {
          fail("cooperative scheduling deadlock (thread neither runnable, "
               "parked, nor done)");
          return 2;
        }
      return 1; // Block complete.
    }
  }
  for (uint32_t I = 0; I < Count; ++I)
    if (Threads[I].State == ThreadState::Ready) {
      NextTI = I;
      return 0;
    }
  fail("cooperative scheduling deadlock (release produced no runnable "
       "thread)");
  return 2;
}

bool Device::failStepLimit(const ThreadCtx *CoopThreads, uint32_t CoopCount) {
  std::string Msg = "step limit exceeded (possible infinite loop)";
  if (CoopThreads) {
    uint32_t Parked = 0;
    for (uint32_t I = 0; I < CoopCount; ++I)
      if (CoopThreads[I].State == ThreadState::AtBarrier ||
          CoopThreads[I].State == ThreadState::AtCollective)
        ++Parked;
    if (Parked)
      Msg += "; " + std::to_string(Parked) +
             " thread(s) of the block were parked at __syncthreads or a "
             "collective (divergent barrier)";
  }
  return fail(Msg);
}

//===----------------------------------------------------------------------===//
// The interpreter loop
//===----------------------------------------------------------------------===//

// Overridable (e.g. -DDPO_VM_COMPUTED_GOTO=0) so the portable switch
// fallback can be built and tested on compilers that support both.
#ifndef DPO_VM_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define DPO_VM_COMPUTED_GOTO 1
#else
#define DPO_VM_COMPUTED_GOTO 0
#endif
#endif

// Operand-stack access through cached registers. VM_PUSH re-derives the
// base pointer after a (rare) growth; value expressions must not call
// VM_POP themselves.
#define VM_PUSH(V)                                                            \
  do {                                                                        \
    if (SP == SCap) {                                                         \
      T.StackTop = SP;                                                        \
      growStack(T);                                                           \
      S = T.Stack.data();                                                     \
      SCap = T.Stack.size();                                                  \
    }                                                                         \
    S[SP++] = (V);                                                            \
  } while (0)
#define VM_POP() (S[--SP])
#define VM_TOP() (S[SP - 1])

// Write the cached registers back into the context / device counters.
// The global step counter is contended only when several workers flush;
// single-worker flushes (block-mode runs one per thread, ~tens of
// thousands per launch) take the unlocked load+store path — a lock xadd
// there costs double-digit percent on dispatch-bound workloads.
#define VM_FLUSH_STEPS()                                                      \
  do {                                                                        \
    if (MultiWorker)                                                          \
      StepsUsed.fetch_add(LocalSteps, std::memory_order_relaxed);             \
    else                                                                      \
      StepsUsed.store(StepsUsed.load(std::memory_order_relaxed) + LocalSteps, \
                      std::memory_order_relaxed);                             \
    W.Stats.Steps += LocalSteps;                                              \
    W.GridSteps += LocalSteps;                                                \
    T.StepsRetired += LocalSteps;                                             \
    LocalSteps = 0;                                                           \
  } while (0)

// Abort this thread with a VM error message.
#define VM_FAILF(MSG)                                                         \
  do {                                                                        \
    T.State = ThreadState::Failed;                                            \
    T.StackTop = SP;                                                          \
    VM_FLUSH_STEPS();                                                         \
    return fail(MSG);                                                         \
  } while (0)

// Abort this thread; the error message was already set (by checkRange).
#define VM_FAIL_SET()                                                         \
  do {                                                                        \
    T.State = ThreadState::Failed;                                            \
    T.StackTop = SP;                                                          \
    VM_FLUSH_STEPS();                                                         \
    return false;                                                             \
  } while (0)

// A thread's root frame returned. In block mode (barrier-free kernels)
// fall through to the in-loop thread switch; in cooperative block mode
// publish Done and let the in-loop scheduler pick the next thread;
// otherwise return to the caller.
#define VM_THREAD_DONE()                                                      \
  do {                                                                        \
    if (InitLocals)                                                           \
      goto BlockNextThread;                                                   \
    T.State = ThreadState::Done;                                              \
    T.StackTop = SP;                                                          \
    VM_FLUSH_STEPS();                                                         \
    if (CoopThreads)                                                          \
      goto CoopSched;                                                         \
    return true;                                                              \
  } while (0)

// The block-mode thread switch, shared verbatim by both engines (every
// referenced name — RootF, L, InitLocals, ThreadsLeft, the cached
// interpreter registers — is declared by both loops). Reinitializes the
// single recycled context for the next thread of the block and resumes
// dispatch without leaving the function: thread switch costs a frame
// reset and one locals-image copy instead of a scheduler round trip.
#define VM_BLOCK_THREAD_SWITCH()                                              \
  BlockNextThread:                                                            \
  VM_FLUSH_STEPS();                                                           \
  StepBudget = stepBudgetLeft();                                              \
  if (GridLogEnabled) {                                                       \
    W.CurGridMaxThreadSteps =                                                 \
        std::max(W.CurGridMaxThreadSteps, T.StepsRetired);                    \
    T.StepsRetired = 0;                                                       \
  }                                                                           \
  if (--ThreadsLeft == 0) {                                                   \
    T.State = ThreadState::Done;                                              \
    T.StackTop = 0;                                                           \
    return true;                                                              \
  }                                                                           \
  {                                                                           \
    Dim3V TIdx = T.ThreadIdx;                                                 \
    if (++TIdx.X == L.Block.X) {                                              \
      TIdx.X = 0;                                                             \
      if (++TIdx.Y == L.Block.Y) {                                            \
        TIdx.Y = 0;                                                           \
        ++TIdx.Z;                                                             \
      }                                                                       \
    }                                                                         \
    T.ThreadIdx = TIdx;                                                       \
  }                                                                           \
  F = RootF;                                                                  \
  CodeBase = F->Code.data();                                                  \
  T.Frames.resize(1);                                                         \
  Fr = &T.Frames.front();                                                     \
  Fr->Func = L.Func;                                                          \
  Fr->PC = 0;                                                                 \
  Fr->LocalsBase = 0;                                                         \
  Fr->FrameMemBase = RootFrameMemBase;                                        \
  Fr->FrameMemBytes = F->FrameBytes;                                          \
  if (F->FrameBytes > 0) {                                                    \
    T.StackMemUsed = F->FrameBytes;                                           \
    std::memset(Mem + RootFrameMemBase, 0, F->FrameBytes);                    \
  }                                                                           \
  T.LocalsArena.assign(InitLocals, InitLocals + F->NumLocals);                \
  Locals = T.LocalsArena.data();                                              \
  SP = 0;                                                                     \
  PC = VM_ENTRY_PC; /* 0, or the kernel's entry trace (decoded engine). */    \
  VM_RESUME()

// The cooperative-block-mode scheduler, shared verbatim by both engines.
// Reached (via goto from the park sites: __syncthreads, the collectives,
// VM_THREAD_DONE) with the current thread's registers already written
// back and its steps flushed. Picks the next Ready thread in ascending
// wrap-around order — the same index-ascending order between release
// points as the retired round-robin scheduler, so payloads and step
// accounting are bit-identical to it. When none is ready, coopRelease
// resolves collective groups / releases barrier waiters or declares the
// block complete. Resuming re-derives every cached register from the
// incoming context; the step budget is re-derived so the global limit
// spans thread switches exactly.
#define VM_COOP_SCHED()                                                       \
  CoopSched : {                                                               \
    size_t NextTI = CoopCount;                                                \
    for (uint32_t Off = 1; Off <= CoopCount; ++Off) {                         \
      size_t Cand = CoopTI + Off;                                             \
      if (Cand >= CoopCount)                                                  \
        Cand -= CoopCount;                                                    \
      if (CoopThreads[Cand].State == ThreadState::Ready) {                    \
        NextTI = Cand;                                                        \
        break;                                                                \
      }                                                                       \
    }                                                                         \
    if (NextTI == CoopCount) {                                                \
      int R = coopRelease(CoopThreads, CoopCount, NextTI);                    \
      if (R == 1)                                                             \
        return true;                                                          \
      if (R == 2)                                                             \
        return false;                                                         \
    }                                                                         \
    CoopTI = NextTI;                                                          \
    TC = &CoopThreads[CoopTI];                                                \
    T.State = ThreadState::Ready;                                             \
    Fr = &T.Frames.back();                                                    \
    F = &FnArr[Fr->Func];                                                     \
    CodeBase = F->Code.data();                                                \
    Locals = T.LocalsArena.data() + Fr->LocalsBase;                           \
    S = T.Stack.data();                                                       \
    SP = T.StackTop;                                                          \
    SCap = T.Stack.size();                                                    \
    PC = Fr->PC ? Fr->PC : VM_ENTRY_PC;                                       \
    StepBudget = stepBudgetLeft();                                            \
    VM_RESUME();                                                              \
  }

//===----------------------------------------------------------------------===//
// Engine 1: the bytecode interpreter (the fallback path).
//
// The handler bodies live in VMHandlers.inc, shared with the decoded
// loop below; only the dispatch macros differ. Here every handler ends
// by indexing a dense label table with the next opcode (threaded
// dispatch), or by breaking back to the shared switch on portable
// builds.
//===----------------------------------------------------------------------===//

#if DPO_VM_COMPUTED_GOTO
#define VM_CASE(name) L_##name
#define VM_NEXT()                                                             \
  do {                                                                        \
    if (LocalSteps >= StepBudget)                                             \
      goto StepLimitHit;                                                      \
    ++LocalSteps;                                                             \
    I = CodeBase + PC++;                                                      \
    goto *DispatchTable[(unsigned)I->Code];                                   \
  } while (0)
#define VM_RESUME() VM_NEXT()
#else
#define VM_CASE(name) case Op::name
#define VM_NEXT() break
#define VM_RESUME() goto DispatchTop
#endif
// The bytecode instruction stream carries SReg's packed dim*4+component
// operand; the decoded stream pre-splits it (see ExecIR.cpp).
#define VM_SREG_BUILTIN ((unsigned)I->A / 4)
#define VM_SREG_COMP ((unsigned)I->A % 4)
// Where a fresh frame starts: bytecode functions always start at 0; the
// decoded engine redefines this to the function's entry trace.
#define VM_ENTRY_PC 0

// The fallback engine never runs in decoded mode; keep its (large) body
// out of the decoded loop's text so the default path's I-cache and
// branch-target locality are unaffected by carrying both engines.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((cold))
#endif
bool Device::runThread(ThreadCtx &TIn, WorkerCtx &W, const PendingLaunch &L,
                       Dim3V BlockIdx, uint64_t SharedBase,
                       const int64_t *InitLocals, uint32_t ThreadCount,
                       ThreadCtx *CoopThreads, uint32_t CoopCount) {
  // The current thread context. A plain reference in single-thread and
  // block mode; cooperative block mode re-seats it at every in-loop
  // thread switch, so every handler reads it through this pointer.
  ThreadCtx *TC = &TIn;
  size_t CoopTI = 0;
#define T (*TC)
  // Interpreter registers, re-derived only at frame/thread switches.
  Frame *Fr = &T.Frames.back();
  const FuncDef *FnArr = Program.Functions.data();
  const FuncDef *F = &FnArr[Fr->Func];
  const FuncDef *RootF = &FnArr[L.Func];
  const uint64_t RootFrameMemBase = Fr->FrameMemBase;
  uint32_t ThreadsLeft = ThreadCount;
  const Instr *CodeBase = F->Code.data();
  const Instr *I = nullptr;
  unsigned PC = Fr->PC;
  int64_t *Locals = T.LocalsArena.data() + Fr->LocalsBase;
  int64_t *S = T.Stack.data();
  size_t SP = T.StackTop;
  size_t SCap = T.Stack.size();
  uint8_t *Mem = Memory.data();
  uint64_t LocalSteps = 0;
  uint64_t StepBudget = stepBudgetLeft();
  const bool MultiWorker = Workers > 1;

#if DPO_VM_COMPUTED_GOTO
  static const void *const DispatchTable[NumOpcodes] = {
#define DPO_OPCODE_LABEL(name) &&L_##name,
      DPO_FOR_EACH_OPCODE(DPO_OPCODE_LABEL)
#undef DPO_OPCODE_LABEL
  };
  VM_NEXT(); // Fetch and dispatch the first instruction.
#else
DispatchTop:
  for (;;) {
    if (LocalSteps >= StepBudget)
      goto StepLimitHit;
    ++LocalSteps;
    I = CodeBase + PC++;
    switch (I->Code) {
#endif

#include "vm/VMHandlers.inc"

#if !DPO_VM_COMPUTED_GOTO
    } // switch
  }   // for
#endif

  VM_BLOCK_THREAD_SWITCH();
  VM_COOP_SCHED();

StepLimitHit:
  T.State = ThreadState::Failed;
  T.StackTop = SP;
  VM_FLUSH_STEPS();
  return failStepLimit(CoopThreads, CoopCount);
}

#undef T
#undef VM_CASE
#undef VM_NEXT
#undef VM_RESUME
#undef VM_SREG_BUILTIN
#undef VM_SREG_COMP
#undef VM_ENTRY_PC

//===----------------------------------------------------------------------===//
// Engine 2: the decoded-IR loop (the default path).
//
// Same handler bodies, but the instruction stream is the fixed-width
// decoded array built by vm/ExecIR.cpp: dispatch is direct-threaded
// (`goto *I->Handler`, no table lookup), SReg operands arrive
// pre-split, and the decode-only fused forms (VM_CASE_X) execute pairs
// in one dispatch while charging the step cost of both.
//===----------------------------------------------------------------------===//

#define DPO_VM_DECODED_OPS 1

#if DPO_VM_COMPUTED_GOTO
#define VM_CASE(name) XL_##name
#define VM_CASE_X(name) XL_##name
#define VM_NEXT()                                                             \
  do {                                                                        \
    I = CodeBase + PC++;                                                      \
    LocalSteps += I->Cost;                                                    \
    if (LocalSteps > StepBudget)                                              \
      goto StepLimitHit;                                                      \
    goto *I->Handler;                                                         \
  } while (0)
#define VM_RESUME() VM_NEXT()
#else
#define VM_CASE(name) case (uint16_t)Op::name
#define VM_CASE_X(name) case (uint16_t)XOp::name
#define VM_NEXT() break
#define VM_RESUME() goto DispatchTop
#endif
#define VM_SREG_BUILTIN ((unsigned)I->A)
#define VM_SREG_COMP ((unsigned)I->B)
// Fresh frames enter through the function's entry trace when one was
// kept (ExecFunc::EntryPC); suspended frames resume at their saved PC,
// which always points past at least one retired instruction (never 0).
#define VM_ENTRY_PC (F->EntryPC)

bool Device::runThreadExec(ThreadCtx *TPtr, WorkerCtx *WPtr,
                           const PendingLaunch *LPtr, Dim3V BlockIdx,
                           uint64_t SharedBase,
                           const void *const **LabelsOut,
                           const int64_t *InitLocals, uint32_t ThreadCount,
                           ThreadCtx *CoopThreads, uint32_t CoopCount) {
#if DPO_VM_COMPUTED_GOTO
  static const void *const ExecDispatchTable[NumExecOpcodes] = {
#define DPO_OPCODE_LABEL(name) &&XL_##name,
      DPO_FOR_EACH_OPCODE(DPO_OPCODE_LABEL)
      DPO_FOR_EACH_XOPCODE(DPO_OPCODE_LABEL)
#undef DPO_OPCODE_LABEL
  };
  if (LabelsOut) {
    *LabelsOut = ExecDispatchTable;
    return true;
  }
#else
  if (LabelsOut) {
    *LabelsOut = nullptr;
    return true;
  }
#endif

  // The current thread context; cooperative block mode re-seats it at
  // every in-loop thread switch (see runThread).
  ThreadCtx *TC = TPtr;
  size_t CoopTI = 0;
#define T (*TC)
  WorkerCtx &W = *WPtr;
  const PendingLaunch &L = *LPtr;
  // Interpreter registers, re-derived only at frame/thread switches.
  Frame *Fr = &T.Frames.back();
  const ExecFunc *FnArr = Exec.Functions.data();
  const ExecFunc *F = &FnArr[Fr->Func];
  const ExecFunc *RootF = &FnArr[L.Func];
  const uint64_t RootFrameMemBase = Fr->FrameMemBase;
  uint32_t ThreadsLeft = ThreadCount;
  const ExecInstr *CodeBase = F->Code.data();
  const ExecInstr *I = nullptr;
  // A saved PC of 0 means a fresh frame (every suspension saves a
  // post-increment PC >= 1): enter through the function's entry trace.
  unsigned PC = Fr->PC ? Fr->PC : F->EntryPC;
  int64_t *Locals = T.LocalsArena.data() + Fr->LocalsBase;
  int64_t *S = T.Stack.data();
  size_t SP = T.StackTop;
  size_t SCap = T.Stack.size();
  uint8_t *Mem = Memory.data();
  uint64_t LocalSteps = 0;
  uint64_t StepBudget = stepBudgetLeft();
  const bool MultiWorker = Workers > 1;

#if DPO_VM_COMPUTED_GOTO
  VM_NEXT(); // Fetch and dispatch the first instruction.
#else
DispatchTop:
  for (;;) {
    I = CodeBase + PC++;
    LocalSteps += I->Cost;
    if (LocalSteps > StepBudget)
      goto StepLimitHit;
    switch (I->Code) {
#endif

#include "vm/VMHandlers.inc"

#if !DPO_VM_COMPUTED_GOTO
    } // switch
  }   // for
#endif

  VM_BLOCK_THREAD_SWITCH();
  VM_COOP_SCHED();

StepLimitHit:
  // The refused instruction was charged before the budget check:
  // uncharge it so flushed counts equal instructions actually retired,
  // matching the bytecode engine (a fused pair straddling the budget
  // can still differ by one sub-instruction — see ExecIR.h).
  LocalSteps -= I->Cost;
  T.State = ThreadState::Failed;
  T.StackTop = SP;
  VM_FLUSH_STEPS();
  return failStepLimit(CoopThreads, CoopCount);
}

#undef T
#undef VM_PUSH
#undef VM_POP
#undef VM_TOP
#undef VM_FLUSH_STEPS
#undef VM_FAILF
#undef VM_FAIL_SET
#undef VM_CASE
#undef VM_CASE_X
#undef VM_NEXT
#undef VM_RESUME
#undef VM_SREG_BUILTIN
#undef VM_SREG_COMP
#undef VM_ENTRY_PC
#undef VM_THREAD_DONE
#undef VM_BLOCK_THREAD_SWITCH
#undef VM_COOP_SCHED
#undef DPO_VM_DECODED_OPS

std::unique_ptr<Device> dpo::buildDevice(std::string_view Source,
                                         DiagnosticEngine &Diags,
                                         const VmCompileOptions &Opts) {
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return nullptr;
  VmProgram Program = compileProgram(TU, Diags, Opts);
  if (Diags.hasErrors())
    return nullptr;
  return std::make_unique<Device>(std::move(Program), 256ull << 20, Opts.Exec);
}
