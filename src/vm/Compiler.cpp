//===--- Compiler.cpp ---------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "ast/Walk.h"
#include "support/Casting.h"
#include "vm/Peephole.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace dpo;

namespace {

/// Where a named variable lives.
enum class StorageKind {
  Slot,        ///< One local slot.
  Dim3Slots,   ///< Three consecutive local slots.
  FrameScalar, ///< Addressable scalar in frame memory.
  FrameArray,  ///< Array in frame memory (decays to a pointer value).
  SharedScalar,
  SharedArray,
  GlobalScalar,
  GlobalArray,
};

struct VarInfo {
  StorageKind Kind = StorageKind::Slot;
  unsigned Slot = 0;    ///< For Slot/Dim3Slots.
  uint64_t Offset = 0;  ///< Frame/shared offset or global address.
  Type Ty;              ///< Declared type (arrays: decayed pointer type).
  Type ElemTy;          ///< For arrays: the element type.
};

/// An lvalue: either a local slot or a memory address left on the stack.
struct LValue {
  bool IsSlot = false;
  unsigned Slot = 0;
  Type Ty; ///< Type of the object (load/store width).
};

unsigned typeWidth(const Type &T) {
  unsigned W = T.storeSizeBytes();
  return W == 0 ? 8 : W;
}

bool isFloatTy(const Type &T) { return T.isFloating(); }

class FunctionCompiler;

class ProgramCompiler {
public:
  ProgramCompiler(const TranslationUnit *TU, DiagnosticEngine &Diags)
      : TU(TU), Diags(Diags) {}

  VmProgram compile();

  unsigned trapMessage(const std::string &Message) {
    Program.TrapMessages.push_back(Message);
    return Program.TrapMessages.size() - 1;
  }

  /// Registers one launch site and returns its 1-based ordinal (the
  /// Launch instruction's C operand). Sites are named
  /// "<caller>-><kernel>#<n>" with n counting that caller/kernel pair in
  /// emission order, so recompiling the same source reproduces the same
  /// site names — the stability the profile artifact depends on.
  unsigned launchSite(const std::string &Caller, const std::string &Kernel) {
    std::string Pair = Caller + "->" + Kernel;
    unsigned Ordinal = SiteOrdinals[Pair]++;
    Program.LaunchSiteNames.push_back(Pair + "#" + std::to_string(Ordinal));
    return (unsigned)Program.LaunchSiteNames.size();
  }

  const TranslationUnit *TU;
  DiagnosticEngine &Diags;
  VmProgram Program;
  /// Function name -> declared signature (param types, returns value).
  std::unordered_map<std::string, const FunctionDecl *> Signatures;
  /// (caller, kernel) pair -> next per-pair launch-site ordinal.
  std::unordered_map<std::string, unsigned> SiteOrdinals;
};

class FunctionCompiler {
public:
  FunctionCompiler(ProgramCompiler &PC, const FunctionDecl *F, FuncDef &Out)
      : PC(PC), F(F), Out(Out) {}

  void compile();

private:
  //===--- Emission helpers -----------------------------------------------===//

  unsigned emit(Op Code, int64_t A = 0, int64_t B = 0) {
    Out.Code.push_back({Code, A, B});
    return Out.Code.size() - 1;
  }
  unsigned here() const { return Out.Code.size(); }
  void patch(unsigned Index, int64_t Target) { Out.Code[Index].A = Target; }
  void error(SourceLocation Loc, const std::string &Message) {
    PC.Diags.error(Loc, Message);
  }

  //===--- Scopes ----------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declareVar(const std::string &Name, VarInfo Info) {
    Scopes.back()[Name] = std::move(Info);
  }
  const VarInfo *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  unsigned allocSlot() { return Out.NumLocals++; }
  unsigned allocSlots(unsigned N) {
    unsigned Base = Out.NumLocals;
    Out.NumLocals += N;
    return Base;
  }
  uint64_t allocFrame(unsigned Bytes) {
    uint64_t Offset = (Out.FrameBytes + 7u) & ~7u;
    Out.FrameBytes = Offset + Bytes;
    return Offset;
  }
  uint64_t allocShared(unsigned Bytes) {
    uint64_t Offset = (Out.SharedBytes + 7u) & ~7u;
    Out.SharedBytes = Offset + Bytes;
    return Offset;
  }

  //===--- Type utilities --------------------------------------------------===//

  /// The arithmetic common type of a binary operation.
  static Type commonType(const Type &L, const Type &R) {
    if (L.isPointer())
      return L;
    if (R.isPointer())
      return R;
    if (L.kind() == BuiltinKind::Double || R.kind() == BuiltinKind::Double)
      return Type(BuiltinKind::Double);
    if (L.kind() == BuiltinKind::Float || R.kind() == BuiltinKind::Float)
      return Type(BuiltinKind::Float);
    unsigned WL = typeWidth(L);
    unsigned WR = typeWidth(R);
    if (WL < 4 && WR < 4)
      return Type(BuiltinKind::Int);
    if (WL == WR)
      return L.isUnsigned() ? L : R;
    return WL > WR ? L : R;
  }

  /// Emits conversion of the stack top from \p From to \p To.
  void convert(const Type &From, const Type &To) {
    if (isFloatTy(From) && !isFloatTy(To)) {
      emit(Op::F2I);
      normalizeInt(To);
      return;
    }
    if (!isFloatTy(From) && isFloatTy(To)) {
      emit(From.isUnsigned() ? Op::U2F : Op::I2F);
      if (To.kind() == BuiltinKind::Float)
        emit(Op::F2Single);
      return;
    }
    if (isFloatTy(From) && isFloatTy(To)) {
      if (To.kind() == BuiltinKind::Float)
        emit(Op::F2Single);
      return;
    }
    normalizeInt(To);
  }

  /// Wraps the integer stack top to the width/signedness of \p T.
  void normalizeInt(const Type &T) {
    if (T.isPointer() || !T.isInteger())
      return;
    unsigned W = typeWidth(T);
    if (W >= 8)
      return;
    emit(Op::TruncI, W, T.isUnsigned() ? 0 : 1);
  }

  //===--- Loads and stores ------------------------------------------------===//

  Op loadOp(const Type &T) {
    if (T.isPointer())
      return Op::LdI64;
    switch (T.kind()) {
    case BuiltinKind::Bool:
    case BuiltinKind::UChar: return Op::LdU8;
    case BuiltinKind::Char: return Op::LdI8;
    case BuiltinKind::Short: return Op::LdI16;
    case BuiltinKind::UShort: return Op::LdU16;
    case BuiltinKind::Int: return Op::LdI32;
    case BuiltinKind::UInt: return Op::LdU32;
    case BuiltinKind::Float: return Op::LdF32;
    case BuiltinKind::Double: return Op::LdF64;
    default: return Op::LdI64;
    }
  }

  Op storeOp(const Type &T) {
    if (T.isPointer())
      return Op::StI64;
    switch (T.kind()) {
    case BuiltinKind::Bool:
    case BuiltinKind::UChar:
    case BuiltinKind::Char: return Op::StI8;
    case BuiltinKind::Short:
    case BuiltinKind::UShort: return Op::StI16;
    case BuiltinKind::Int:
    case BuiltinKind::UInt: return Op::StI32;
    case BuiltinKind::Float: return Op::StF32;
    case BuiltinKind::Double: return Op::StF64;
    default: return Op::StI64;
    }
  }

  //===--- Implementation --------------------------------------------------===//

  void collectAddressTaken();
  void declareLocal(const VarDecl *D);
  void compileStmt(const Stmt *S);
  void compileCompound(const CompoundStmt *S);
  /// Compiles an expression; returns slots pushed (1, or 3 for dim3).
  unsigned compileExpr(const Expr *E);
  /// Compiles an expression and coerces it to exactly one slot of type T.
  void compileScalar(const Expr *E, const Type &T);
  /// Compiles an expression as a dim3 (3 slots), coercing scalars.
  void compileDim3(const Expr *E);
  std::optional<LValue> compileLValue(const Expr *E);
  void compileBinary(const BinaryOperator *B);
  void compileAssignment(const BinaryOperator *B, bool WantValue);
  void compileIncDec(const UnaryOperator *U, bool WantValue);
  unsigned compileCall(const CallExpr *Call);
  void compileLaunch(const LaunchExpr *L);
  void compileArithmetic(BinaryOpKind OpKind, const Type &OpTy);
  void loadFromLValue(const LValue &LV);
  void trap(SourceLocation Loc, const std::string &Message) {
    emit(Op::Trap, PC.trapMessage(Message));
  }

  ProgramCompiler &PC;
  const FunctionDecl *F;
  FuncDef &Out;
  std::vector<std::unordered_map<std::string, VarInfo>> Scopes;
  std::unordered_set<std::string> AddressTaken;
  /// Break/continue jump targets (indices to patch).
  struct LoopContext {
    std::vector<unsigned> Breaks;
    std::vector<unsigned> Continues;
  };
  std::vector<LoopContext> Loops;
  unsigned Scratch = 0; ///< Scratch local for stack shuffles.
};

//===----------------------------------------------------------------------===//
// ProgramCompiler
//===----------------------------------------------------------------------===//

VmProgram ProgramCompiler::compile() {
  // Pass 1: globals and signatures.
  for (const Decl *D : TU->decls()) {
    if (const auto *Var = dyn_cast<VarDecl>(D)) {
      unsigned Size = typeWidth(Var->type());
      uint64_t Count = 1;
      for (const Expr *Dim : Var->arrayDims()) {
        const auto *Lit = dyn_cast<IntegerLiteral>(Dim);
        if (!Lit) {
          Diags.error(Var->loc(),
                      "global array dimensions must be integer literals");
          return {};
        }
        Count *= Lit->value();
      }
      unsigned Offset = (Program.GlobalImage.size() + 7u) & ~7u;
      Program.GlobalImage.resize(Offset + Size * Count, 0);
      Program.GlobalOffsets[Var->name()] = Offset;
      // Scalar initializers: integer literals only (enough for counters).
      if (Var->init() && !Var->isArray()) {
        if (const auto *Lit = dyn_cast<IntegerLiteral>(Var->init())) {
          uint64_t V = Lit->value();
          for (unsigned I = 0; I < Size && I < 8; ++I)
            Program.GlobalImage[Offset + I] = (V >> (8 * I)) & 0xFF;
        }
      }
      continue;
    }
    if (const auto *Fn = dyn_cast<FunctionDecl>(D)) {
      if (!Signatures.count(Fn->name()) || Fn->isDefinition())
        Signatures[Fn->name()] = Fn;
    }
  }

  // Reserve function indices in declaration order (definitions only).
  for (const Decl *D : TU->decls()) {
    const auto *Fn = dyn_cast<FunctionDecl>(D);
    if (!Fn || !Fn->isDefinition())
      continue;
    if (Program.FunctionIndex.count(Fn->name())) {
      Diags.error(Fn->loc(), "duplicate definition of '" + Fn->name() + "'");
      return {};
    }
    FuncDef Def;
    Def.Name = Fn->name();
    Def.IsKernel = Fn->isKernel();
    Def.ReturnsValue = !Fn->returnType().isVoid();
    for (const VarDecl *P : Fn->params()) {
      Def.ParamTypes.push_back(P->type());
      Def.NumParamSlots += P->type().isDim3() ? 3 : 1;
    }
    Program.FunctionIndex[Fn->name()] = Program.Functions.size();
    Program.Functions.push_back(std::move(Def));
  }

  // Pass 2: compile bodies.
  for (const Decl *D : TU->decls()) {
    const auto *Fn = dyn_cast<FunctionDecl>(D);
    if (!Fn || !Fn->isDefinition())
      continue;
    FuncDef &Def = Program.Functions[Program.FunctionIndex[Fn->name()]];
    FunctionCompiler FC(*this, Fn, Def);
    FC.compile();
    if (Diags.hasErrors())
      return {};
  }
  return std::move(Program);
}

//===----------------------------------------------------------------------===//
// FunctionCompiler
//===----------------------------------------------------------------------===//

void FunctionCompiler::collectAddressTaken() {
  forEachExpr(const_cast<CompoundStmt *>(F->body()), [&](Expr *E) {
    const auto *U = dyn_cast<UnaryOperator>(E);
    if (!U || U->op() != UnaryOpKind::AddrOf)
      return;
    const Expr *Operand = U->operand();
    while (const auto *P = dyn_cast<ParenExpr>(Operand))
      Operand = P->inner();
    if (const auto *Ref = dyn_cast<DeclRefExpr>(Operand))
      AddressTaken.insert(Ref->name());
  });
}

void FunctionCompiler::declareLocal(const VarDecl *D) {
  VarInfo Info;
  Info.Ty = D->type();

  if (D->isArray()) {
    uint64_t Count = 1;
    for (const Expr *Dim : D->arrayDims()) {
      const auto *Lit = dyn_cast<IntegerLiteral>(Dim);
      if (!Lit) {
        error(D->loc(), "array dimensions must be integer literals in '" +
                            D->name() + "'");
        return;
      }
      Count *= Lit->value();
    }
    Info.ElemTy = D->type();
    Info.Ty = D->type().pointerTo();
    unsigned Bytes = typeWidth(Info.ElemTy) * Count;
    if (D->isShared()) {
      Info.Kind = StorageKind::SharedArray;
      Info.Offset = allocShared(Bytes);
    } else {
      Info.Kind = StorageKind::FrameArray;
      Info.Offset = allocFrame(Bytes);
    }
    declareVar(D->name(), Info);
    return;
  }

  if (D->type().isDim3()) {
    Info.Kind = StorageKind::Dim3Slots;
    Info.Slot = allocSlots(3);
    declareVar(D->name(), Info);
    if (D->init()) {
      compileDim3(D->init());
      emit(Op::StoreLocal, Info.Slot + 2);
      emit(Op::StoreLocal, Info.Slot + 1);
      emit(Op::StoreLocal, Info.Slot + 0);
    }
    return;
  }

  if (D->isShared()) {
    Info.Kind = StorageKind::SharedScalar;
    Info.Offset = allocShared(typeWidth(D->type()));
    declareVar(D->name(), Info);
    return; // Shared scalars have no per-thread initializer semantics.
  }

  if (AddressTaken.count(D->name())) {
    Info.Kind = StorageKind::FrameScalar;
    Info.Offset = allocFrame(typeWidth(D->type()));
    declareVar(D->name(), Info);
    if (D->init()) {
      emit(Op::FrameAddr, Info.Offset);
      compileScalar(D->init(), D->type());
      emit(storeOp(D->type()));
    }
    return;
  }

  Info.Kind = StorageKind::Slot;
  Info.Slot = allocSlot();
  declareVar(D->name(), Info);
  if (D->init()) {
    compileScalar(D->init(), D->type());
    emit(Op::StoreLocal, Info.Slot);
  }
}

void FunctionCompiler::compile() {
  collectAddressTaken();
  pushScope();

  // Parameters first (slot layout must match FuncDef::NumParamSlots).
  for (const VarDecl *P : F->params()) {
    VarInfo Info;
    Info.Ty = P->type();
    if (P->type().isDim3()) {
      Info.Kind = StorageKind::Dim3Slots;
      Info.Slot = allocSlots(3);
    } else {
      Info.Kind = StorageKind::Slot;
      Info.Slot = allocSlot();
      if (AddressTaken.count(P->name()))
        error(P->loc(), "address-taken parameters are not supported ('" +
                            P->name() + "')");
    }
    declareVar(P->name(), Info);
  }
  Scratch = allocSlot();

  compileCompound(F->body());
  emit(Op::RetVoid);
  popScope();
}

void FunctionCompiler::compileCompound(const CompoundStmt *S) {
  pushScope();
  for (const Stmt *Child : S->body())
    compileStmt(Child);
  popScope();
}

void FunctionCompiler::compileStmt(const Stmt *S) {
  if (!S)
    return;
  if (const auto *E = dyn_cast<Expr>(S)) {
    // Assignments and ++/-- as statements avoid materializing a value.
    if (const auto *B = dyn_cast<BinaryOperator>(E)) {
      if (isAssignmentOp(B->op())) {
        compileAssignment(B, /*WantValue=*/false);
        return;
      }
    }
    if (const auto *U = dyn_cast<UnaryOperator>(E)) {
      switch (U->op()) {
      case UnaryOpKind::PreInc:
      case UnaryOpKind::PreDec:
      case UnaryOpKind::PostInc:
      case UnaryOpKind::PostDec:
        compileIncDec(U, /*WantValue=*/false);
        return;
      default:
        break;
      }
    }
    unsigned Pushed = compileExpr(E);
    for (unsigned I = 0; I < Pushed; ++I)
      emit(Op::Pop);
    return;
  }

  switch (S->kind()) {
  case StmtKind::Compound:
    compileCompound(cast<CompoundStmt>(S));
    return;
  case StmtKind::DeclS:
    for (const VarDecl *D : cast<DeclStmt>(S)->decls())
      declareLocal(D);
    return;
  case StmtKind::Null:
    return;
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    compileScalar(If->cond(), Type(BuiltinKind::Int));
    unsigned JumpElse = emit(Op::JmpIfZero);
    compileStmt(If->thenStmt());
    if (If->elseStmt()) {
      unsigned JumpEnd = emit(Op::Jmp);
      patch(JumpElse, here());
      compileStmt(If->elseStmt());
      patch(JumpEnd, here());
    } else {
      patch(JumpElse, here());
    }
    return;
  }
  case StmtKind::While: {
    const auto *While = cast<WhileStmt>(S);
    Loops.emplace_back();
    unsigned Top = here();
    compileScalar(While->cond(), Type(BuiltinKind::Int));
    unsigned Exit = emit(Op::JmpIfZero);
    compileStmt(While->body());
    emit(Op::Jmp, Top);
    patch(Exit, here());
    for (unsigned Break : Loops.back().Breaks)
      patch(Break, here());
    for (unsigned Continue : Loops.back().Continues)
      patch(Continue, Top);
    Loops.pop_back();
    return;
  }
  case StmtKind::Do: {
    const auto *Do = cast<DoStmt>(S);
    Loops.emplace_back();
    unsigned Top = here();
    compileStmt(Do->body());
    unsigned CondAt = here();
    compileScalar(Do->cond(), Type(BuiltinKind::Int));
    emit(Op::JmpIfNotZero, Top);
    for (unsigned Break : Loops.back().Breaks)
      patch(Break, here());
    for (unsigned Continue : Loops.back().Continues)
      patch(Continue, CondAt);
    Loops.pop_back();
    return;
  }
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    pushScope();
    if (For->init())
      compileStmt(For->init());
    Loops.emplace_back();
    unsigned Top = here();
    unsigned Exit = 0;
    bool HasCond = For->cond() != nullptr;
    if (HasCond) {
      compileScalar(For->cond(), Type(BuiltinKind::Int));
      Exit = emit(Op::JmpIfZero);
    }
    compileStmt(For->body());
    unsigned IncAt = here();
    if (For->inc()) {
      const Stmt *IncStmt = For->inc();
      compileStmt(IncStmt);
    }
    emit(Op::Jmp, Top);
    if (HasCond)
      patch(Exit, here());
    for (unsigned Break : Loops.back().Breaks)
      patch(Break, here());
    for (unsigned Continue : Loops.back().Continues)
      patch(Continue, IncAt);
    Loops.pop_back();
    popScope();
    return;
  }
  case StmtKind::Break: {
    if (Loops.empty()) {
      error(S->loc(), "'break' outside of a loop");
      return;
    }
    Loops.back().Breaks.push_back(emit(Op::Jmp));
    return;
  }
  case StmtKind::Continue: {
    if (Loops.empty()) {
      error(S->loc(), "'continue' outside of a loop");
      return;
    }
    Loops.back().Continues.push_back(emit(Op::Jmp));
    return;
  }
  case StmtKind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    if (Ret->value()) {
      compileScalar(Ret->value(), F->returnType());
      emit(Op::Ret);
    } else {
      emit(Op::RetVoid);
    }
    return;
  }
  default:
    error(S->loc(), "unsupported statement in VM compilation");
  }
}

void FunctionCompiler::loadFromLValue(const LValue &LV) {
  if (LV.IsSlot) {
    emit(Op::LoadLocal, LV.Slot);
    return;
  }
  emit(loadOp(LV.Ty));
}

std::optional<LValue> FunctionCompiler::compileLValue(const Expr *E) {
  while (const auto *P = dyn_cast<ParenExpr>(E))
    E = P->inner();

  if (const auto *Ref = dyn_cast<DeclRefExpr>(E)) {
    const VarInfo *Info = lookup(Ref->name());
    if (!Info) {
      auto GlobalIt = PC.Program.GlobalOffsets.find(Ref->name());
      if (GlobalIt != PC.Program.GlobalOffsets.end()) {
        emit(Op::PushI, GlobalBase + GlobalIt->second);
        LValue LV;
        LV.Ty = Ref->type();
        return LV;
      }
      error(Ref->loc(), "use of undeclared variable '" + Ref->name() + "'");
      return std::nullopt;
    }
    switch (Info->Kind) {
    case StorageKind::Slot: {
      LValue LV;
      LV.IsSlot = true;
      LV.Slot = Info->Slot;
      LV.Ty = Info->Ty;
      return LV;
    }
    case StorageKind::FrameScalar: {
      emit(Op::FrameAddr, Info->Offset);
      LValue LV;
      LV.Ty = Info->Ty;
      return LV;
    }
    case StorageKind::SharedScalar: {
      emit(Op::SharedBase);
      emit(Op::PushI, Info->Offset);
      emit(Op::AddI);
      LValue LV;
      LV.Ty = Info->Ty;
      return LV;
    }
    default:
      error(Ref->loc(), "expression is not assignable: '" + Ref->name() + "'");
      return std::nullopt;
    }
  }

  if (const auto *Sub = dyn_cast<ArraySubscriptExpr>(E)) {
    Type ElemTy = Sub->base()->type().pointee();
    compileScalar(Sub->base(), Sub->base()->type());
    compileScalar(Sub->index(), Type(BuiltinKind::Long));
    emit(Op::PushI, typeWidth(ElemTy));
    emit(Op::MulI);
    emit(Op::AddI);
    LValue LV;
    LV.Ty = ElemTy;
    return LV;
  }

  if (const auto *U = dyn_cast<UnaryOperator>(E)) {
    if (U->op() == UnaryOpKind::Deref) {
      compileScalar(U->operand(), U->operand()->type());
      LValue LV;
      LV.Ty = U->operand()->type().pointee();
      return LV;
    }
  }

  if (const auto *M = dyn_cast<MemberExpr>(E)) {
    const Expr *Base = M->base();
    while (const auto *P = dyn_cast<ParenExpr>(Base))
      Base = P->inner();
    const auto *Ref = dyn_cast<DeclRefExpr>(Base);
    if (Ref && !M->isArrow()) {
      const VarInfo *Info = lookup(Ref->name());
      if (Info && Info->Kind == StorageKind::Dim3Slots) {
        unsigned Comp = M->member() == "x"   ? 0
                        : M->member() == "y" ? 1
                                             : 2;
        LValue LV;
        LV.IsSlot = true;
        LV.Slot = Info->Slot + Comp;
        LV.Ty = Type(BuiltinKind::UInt);
        return LV;
      }
    }
    error(M->loc(), "unsupported member lvalue '." + M->member() + "'");
    return std::nullopt;
  }

  error(E->loc(), "expression is not assignable");
  return std::nullopt;
}

void FunctionCompiler::compileArithmetic(BinaryOpKind OpKind,
                                         const Type &OpTy) {
  bool FloatOp = isFloatTy(OpTy);
  bool Unsigned = OpTy.isUnsigned() || OpTy.isPointer();
  switch (OpKind) {
  case BinaryOpKind::Add:
    emit(FloatOp ? Op::AddF : Op::AddI);
    break;
  case BinaryOpKind::Sub:
    emit(FloatOp ? Op::SubF : Op::SubI);
    break;
  case BinaryOpKind::Mul:
    emit(FloatOp ? Op::MulF : Op::MulI);
    break;
  case BinaryOpKind::Div:
    emit(FloatOp ? Op::DivF : (Unsigned ? Op::DivU : Op::DivI));
    break;
  case BinaryOpKind::Rem:
    emit(Unsigned ? Op::RemU : Op::RemI);
    break;
  case BinaryOpKind::Shl:
    emit(Op::Shl);
    break;
  case BinaryOpKind::Shr:
    emit(Unsigned ? Op::ShrU : Op::ShrI);
    break;
  case BinaryOpKind::BitAnd:
    emit(Op::BitAnd);
    break;
  case BinaryOpKind::BitOr:
    emit(Op::BitOr);
    break;
  case BinaryOpKind::BitXor:
    emit(Op::BitXor);
    break;
  case BinaryOpKind::LT:
    emit(FloatOp ? Op::CmpLTF : (Unsigned ? Op::CmpLTU : Op::CmpLTI));
    break;
  case BinaryOpKind::LE:
    emit(FloatOp ? Op::CmpLEF : (Unsigned ? Op::CmpLEU : Op::CmpLEI));
    break;
  case BinaryOpKind::GT:
    emit(FloatOp ? Op::CmpGTF : (Unsigned ? Op::CmpGTU : Op::CmpGTI));
    break;
  case BinaryOpKind::GE:
    emit(FloatOp ? Op::CmpGEF : (Unsigned ? Op::CmpGEU : Op::CmpGEI));
    break;
  case BinaryOpKind::EQ:
    emit(FloatOp ? Op::CmpEQF : Op::CmpEQ);
    break;
  case BinaryOpKind::NE:
    emit(FloatOp ? Op::CmpNEF : Op::CmpNE);
    break;
  default:
    assert(false && "not an arithmetic operator");
  }
}

void FunctionCompiler::compileScalar(const Expr *E, const Type &T) {
  if (E->type().isDim3() && !T.isDim3()) {
    // dim3 -> scalar: take .x (CUDA would reject this; our passes never
    // generate it, but be lenient for tests).
    unsigned Pushed = compileExpr(E);
    for (unsigned I = 1; I < Pushed; ++I)
      emit(Op::Pop); // Keep x (pushed first? x,y,z: z on top) -> pop z, y.
    return;
  }
  unsigned Pushed = compileExpr(E);
  (void)Pushed;
  assert(Pushed == 1 && "scalar expression pushed multiple slots");
  convert(E->type(), T);
}

void FunctionCompiler::compileDim3(const Expr *E) {
  if (E->type().isDim3()) {
    unsigned Pushed = compileExpr(E);
    (void)Pushed;
    assert(Pushed == 3 && "dim3 expression must push three slots");
    return;
  }
  compileScalar(E, Type(BuiltinKind::UInt));
  emit(Op::PushI, 1);
  emit(Op::PushI, 1);
}

void FunctionCompiler::compileAssignment(const BinaryOperator *B,
                                         bool WantValue) {
  // dim3 = dim3 (whole-value copy).
  if (B->op() == BinaryOpKind::Assign && B->lhs()->type().isDim3()) {
    const Expr *LHS = B->lhs();
    while (const auto *P = dyn_cast<ParenExpr>(LHS))
      LHS = P->inner();
    const auto *Ref = dyn_cast<DeclRefExpr>(LHS);
    const VarInfo *Info = Ref ? lookup(Ref->name()) : nullptr;
    if (!Info || Info->Kind != StorageKind::Dim3Slots) {
      error(B->loc(), "unsupported dim3 assignment target");
      return;
    }
    compileDim3(B->rhs());
    emit(Op::StoreLocal, Info->Slot + 2);
    emit(Op::StoreLocal, Info->Slot + 1);
    emit(Op::StoreLocal, Info->Slot + 0);
    if (WantValue)
      error(B->loc(), "dim3 assignment cannot produce a value");
    return;
  }

  std::optional<LValue> LV = compileLValue(B->lhs());
  if (!LV)
    return;

  if (B->op() == BinaryOpKind::Assign) {
    if (LV->IsSlot) {
      compileScalar(B->rhs(), LV->Ty);
      if (WantValue)
        emit(Op::Dup);
      emit(Op::StoreLocal, LV->Slot);
      return;
    }
    // Stack: [addr]. Compute value, store; re-load for WantValue via Dup
    // of the address first.
    if (WantValue)
      emit(Op::Dup); // [addr, addr]
    compileScalar(B->rhs(), LV->Ty);
    emit(storeOp(LV->Ty)); // pops value+addr
    if (WantValue)
      emit(loadOp(LV->Ty));
    return;
  }

  // Compound assignment.
  BinaryOpKind BaseOp = compoundAssignBaseOp(B->op());
  Type OpTy = commonType(LV->Ty, B->rhs()->type());
  if (LV->Ty.isPointer())
    OpTy = LV->Ty;

  if (LV->IsSlot) {
    emit(Op::LoadLocal, LV->Slot);
    convert(LV->Ty, OpTy);
    if (LV->Ty.isPointer()) {
      compileScalar(B->rhs(), Type(BuiltinKind::Long));
      emit(Op::PushI, typeWidth(LV->Ty.pointee()));
      emit(Op::MulI);
    } else {
      compileScalar(B->rhs(), OpTy);
    }
    compileArithmetic(BaseOp, OpTy);
    convert(OpTy, LV->Ty);
    if (WantValue)
      emit(Op::Dup);
    emit(Op::StoreLocal, LV->Slot);
    return;
  }

  // Memory compound assignment. Stack: [addr].
  emit(Op::Dup);         // [addr, addr]
  emit(loadOp(LV->Ty));  // [addr, old]
  convert(LV->Ty, OpTy);
  if (LV->Ty.isPointer()) {
    compileScalar(B->rhs(), Type(BuiltinKind::Long));
    emit(Op::PushI, typeWidth(LV->Ty.pointee()));
    emit(Op::MulI);
  } else {
    compileScalar(B->rhs(), OpTy);
  }
  compileArithmetic(BaseOp, OpTy); // [addr, new]
  convert(OpTy, LV->Ty);
  if (WantValue) {
    emit(Op::StoreLocal, Scratch);
    emit(Op::LoadLocal, Scratch); // [addr, new]
    emit(storeOp(LV->Ty));
    emit(Op::LoadLocal, Scratch);
    return;
  }
  emit(storeOp(LV->Ty));
}

void FunctionCompiler::compileIncDec(const UnaryOperator *U, bool WantValue) {
  std::optional<LValue> LV = compileLValue(U->operand());
  if (!LV)
    return;
  bool IsInc = U->op() == UnaryOpKind::PreInc || U->op() == UnaryOpKind::PostInc;
  bool IsPost = U->isPostfix();
  int64_t Delta = LV->Ty.isPointer() ? typeWidth(LV->Ty.pointee()) : 1;

  if (LV->IsSlot) {
    emit(Op::LoadLocal, LV->Slot); // [old]
    if (WantValue && IsPost)
      emit(Op::Dup);
    if (isFloatTy(LV->Ty)) {
      emit(Op::PushF, /*bits=*/0); // Patched below via double encoding.
      Out.Code.back().A = 0;
      double D = IsInc ? 1.0 : -1.0;
      int64_t Bits;
      static_assert(sizeof(Bits) == sizeof(D));
      __builtin_memcpy(&Bits, &D, 8);
      Out.Code.back().A = Bits;
      emit(Op::AddF);
    } else {
      emit(Op::PushI, IsInc ? Delta : -Delta);
      emit(Op::AddI);
      normalizeInt(LV->Ty);
    }
    if (WantValue && !IsPost)
      emit(Op::Dup);
    emit(Op::StoreLocal, LV->Slot);
    return;
  }

  // Memory: [addr].
  emit(Op::Dup);        // [addr, addr]
  emit(loadOp(LV->Ty)); // [addr, old]
  if (WantValue && IsPost) {
    emit(Op::StoreLocal, Scratch);
    emit(Op::LoadLocal, Scratch);
  }
  if (isFloatTy(LV->Ty)) {
    double D = IsInc ? 1.0 : -1.0;
    int64_t Bits;
    __builtin_memcpy(&Bits, &D, 8);
    emit(Op::PushF, Bits);
    emit(Op::AddF);
  } else {
    emit(Op::PushI, IsInc ? Delta : -Delta);
    emit(Op::AddI);
    normalizeInt(LV->Ty);
  }
  if (WantValue && !IsPost) {
    emit(Op::StoreLocal, Scratch);
    emit(Op::LoadLocal, Scratch);
    emit(storeOp(LV->Ty));
    emit(Op::LoadLocal, Scratch);
    return;
  }
  emit(storeOp(LV->Ty)); // []
  if (WantValue && IsPost)
    emit(Op::LoadLocal, Scratch);
}

void FunctionCompiler::compileBinary(const BinaryOperator *B) {
  BinaryOpKind OpKind = B->op();

  if (isAssignmentOp(OpKind)) {
    compileAssignment(B, /*WantValue=*/true);
    return;
  }

  if (OpKind == BinaryOpKind::Comma) {
    unsigned Pushed = compileExpr(B->lhs());
    for (unsigned I = 0; I < Pushed; ++I)
      emit(Op::Pop);
    compileExpr(B->rhs());
    return;
  }

  if (OpKind == BinaryOpKind::LAnd || OpKind == BinaryOpKind::LOr) {
    bool IsAnd = OpKind == BinaryOpKind::LAnd;
    compileScalar(B->lhs(), Type(BuiltinKind::Int));
    unsigned Short = emit(IsAnd ? Op::JmpIfZero : Op::JmpIfNotZero);
    compileScalar(B->rhs(), Type(BuiltinKind::Int));
    unsigned Short2 = emit(IsAnd ? Op::JmpIfZero : Op::JmpIfNotZero);
    emit(Op::PushI, IsAnd ? 1 : 0);
    unsigned End = emit(Op::Jmp);
    patch(Short, here());
    patch(Short2, here());
    emit(Op::PushI, IsAnd ? 0 : 1);
    patch(End, here());
    return;
  }

  const Type &LT = B->lhs()->type();
  const Type &RT = B->rhs()->type();

  // Pointer arithmetic.
  if ((OpKind == BinaryOpKind::Add || OpKind == BinaryOpKind::Sub) &&
      (LT.isPointer() || RT.isPointer())) {
    if (LT.isPointer() && RT.isPointer()) {
      // Pointer difference in elements.
      compileScalar(B->lhs(), LT);
      compileScalar(B->rhs(), RT);
      emit(Op::SubI);
      emit(Op::PushI, typeWidth(LT.pointee()));
      emit(Op::DivI);
      return;
    }
    const Expr *PtrSide = LT.isPointer() ? B->lhs() : B->rhs();
    const Expr *IntSide = LT.isPointer() ? B->rhs() : B->lhs();
    compileScalar(PtrSide, PtrSide->type());
    compileScalar(IntSide, Type(BuiltinKind::Long));
    emit(Op::PushI, typeWidth(PtrSide->type().pointee()));
    emit(Op::MulI);
    if (OpKind == BinaryOpKind::Sub)
      emit(Op::SubI);
    else
      emit(Op::AddI);
    return;
  }

  // Pointer comparisons.
  if (LT.isPointer() || RT.isPointer()) {
    compileScalar(B->lhs(), LT);
    compileScalar(B->rhs(), RT);
    compileArithmetic(OpKind, Type(BuiltinKind::ULong));
    return;
  }

  Type OpTy = commonType(LT, RT);
  compileScalar(B->lhs(), OpTy);
  compileScalar(B->rhs(), OpTy);
  compileArithmetic(OpKind, OpTy);
  // Arithmetic results wrap to the common type's width.
  switch (OpKind) {
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
  case BinaryOpKind::Mul:
  case BinaryOpKind::Shl:
    if (!isFloatTy(OpTy))
      normalizeInt(OpTy);
    break;
  default:
    break;
  }
}

void FunctionCompiler::compileLaunch(const LaunchExpr *L) {
  auto It = PC.Program.FunctionIndex.find(L->kernel());
  if (It == PC.Program.FunctionIndex.end()) {
    error(L->loc(), "launch of unknown kernel '" + L->kernel() + "'");
    return;
  }
  const FuncDef &Callee = PC.Program.Functions[It->second];
  if (L->args().size() != Callee.ParamTypes.size()) {
    error(L->loc(), "kernel '" + L->kernel() + "' expects " +
                        std::to_string(Callee.ParamTypes.size()) +
                        " arguments, got " + std::to_string(L->args().size()));
    return;
  }
  unsigned ArgSlots = 0;
  for (size_t I = 0; I < L->args().size(); ++I) {
    const Type &ParamTy = Callee.ParamTypes[I];
    if (ParamTy.isDim3()) {
      compileDim3(L->args()[I]);
      ArgSlots += 3;
    } else {
      compileScalar(L->args()[I], ParamTy);
      ArgSlots += 1;
    }
  }
  compileDim3(L->gridDim());
  compileDim3(L->blockDim());
  unsigned Idx = emit(Op::Launch, It->second, ArgSlots);
  Out.Code[Idx].C = PC.launchSite(F->name(), L->kernel());
}

unsigned FunctionCompiler::compileCall(const CallExpr *Call) {
  std::string Name = Call->calleeName();
  const auto &Args = Call->args();

  auto CompileArgsAsDoubles = [&](unsigned Count) {
    for (unsigned I = 0; I < Count && I < Args.size(); ++I)
      compileScalar(Args[I], Type(BuiltinKind::Double));
  };

  // dim3 constructor in expression position.
  if (Name == "dim3") {
    for (unsigned I = 0; I < 3; ++I) {
      if (I < Args.size())
        compileScalar(Args[I], Type(BuiltinKind::UInt));
      else
        emit(Op::PushI, 1);
    }
    return 3;
  }

  if (Name == "__syncthreads") {
    emit(Op::SyncThreads);
    emit(Op::PushI, 0);
    return 1;
  }
  if (Name == "__syncwarp" || Name == "__threadfence" ||
      Name == "__threadfence_block" || Name == "__threadfence_system") {
    emit(Op::ThreadFence);
    emit(Op::PushI, 0);
    return 1;
  }

  // Warp/block collectives (cooperative block mode; see vm/VM.cpp).
  // __shfl_sync(mask, value, lane) and the up/down/xor variants lower to
  // WarpShfl with A = mode; __ballot_sync(mask, pred) to WarpBallot;
  // __block_reduce_add/min/max(value) to BlockReduce with A = kind. Values
  // travel as 64-bit slots, so the result type is long long (ballot: the
  // 32-lane bitmask as unsigned).
  {
    int ShflMode = Name == "__shfl_sync"        ? 0
                   : Name == "__shfl_up_sync"   ? 1
                   : Name == "__shfl_down_sync" ? 2
                   : Name == "__shfl_xor_sync"  ? 3
                                                : -1;
    if (ShflMode >= 0 && Args.size() == 3) {
      compileScalar(Args[0], Type(BuiltinKind::UInt));
      compileScalar(Args[1], Type(BuiltinKind::LongLong));
      compileScalar(Args[2], Type(BuiltinKind::UInt));
      emit(Op::WarpShfl, ShflMode);
      return 1;
    }
  }
  if (Name == "__ballot_sync" && Args.size() == 2) {
    compileScalar(Args[0], Type(BuiltinKind::UInt));
    compileScalar(Args[1], Type(BuiltinKind::LongLong));
    emit(Op::WarpBallot);
    return 1;
  }
  {
    int ReduceKind = Name == "__block_reduce_add"   ? 0
                     : Name == "__block_reduce_min" ? 1
                     : Name == "__block_reduce_max" ? 2
                                                    : -1;
    if (ReduceKind >= 0 && Args.size() == 1) {
      compileScalar(Args[0], Type(BuiltinKind::LongLong));
      emit(Op::BlockReduce, ReduceKind);
      return 1;
    }
  }

  // Speculation guard intrinsic: __dpo_spec_guard(n, k) -> n <= k
  // (unsigned), counted in VmStats::SpecGuardPass/Fail. Printed source
  // carries a #define so it stays valid CUDA outside the VM.
  if (Name == "__dpo_spec_guard" && Args.size() == 2) {
    compileScalar(Args[0], Type(BuiltinKind::ULongLong));
    compileScalar(Args[1], Type(BuiltinKind::ULongLong));
    emit(Op::SpecGuard);
    return 1;
  }

  // Atomics: atomicOp(ptr, value...).
  auto CompileAtomic = [&](Op AtomicOp, unsigned ValueArgs) -> unsigned {
    Type Pointee = Args[0]->type().pointee();
    unsigned Width = typeWidth(Pointee);
    compileScalar(Args[0], Args[0]->type());
    for (unsigned I = 1; I <= ValueArgs; ++I)
      compileScalar(Args[I], Pointee);
    emit(AtomicOp, Width, Pointee.isUnsigned() ? 0 : 1);
    return 1;
  };
  if (Name == "atomicAdd" && Args.size() == 2)
    return CompileAtomic(Op::AtomicAdd, 1);
  if (Name == "atomicSub" && Args.size() == 2) {
    Type Pointee = Args[0]->type().pointee();
    compileScalar(Args[0], Args[0]->type());
    compileScalar(Args[1], Pointee);
    emit(Op::NegI);
    emit(Op::AtomicAdd, typeWidth(Pointee), Pointee.isUnsigned() ? 0 : 1);
    return 1;
  }
  if (Name == "atomicMax" && Args.size() == 2)
    return CompileAtomic(Op::AtomicMax, 1);
  if (Name == "atomicMin" && Args.size() == 2)
    return CompileAtomic(Op::AtomicMin, 1);
  if (Name == "atomicExch" && Args.size() == 2)
    return CompileAtomic(Op::AtomicExch, 1);
  if (Name == "atomicOr" && Args.size() == 2)
    return CompileAtomic(Op::AtomicOr, 1);
  if (Name == "atomicAnd" && Args.size() == 2)
    return CompileAtomic(Op::AtomicAnd, 1);
  if (Name == "atomicCAS" && Args.size() == 3)
    return CompileAtomic(Op::AtomicCAS, 2);

  // min/max.
  if ((Name == "min" || Name == "max") && Args.size() == 2) {
    Type OpTy = commonType(Args[0]->type(), Args[1]->type());
    compileScalar(Args[0], OpTy);
    compileScalar(Args[1], OpTy);
    if (isFloatTy(OpTy))
      emit(Op::Math2, (int64_t)(Name == "min" ? MathFn::Fmin : MathFn::Fmax));
    else if (OpTy.isUnsigned())
      emit(Name == "min" ? Op::MinU : Op::MaxU);
    else
      emit(Name == "min" ? Op::MinI : Op::MaxI);
    return 1;
  }
  if ((Name == "fminf" || Name == "fmin") && Args.size() == 2) {
    CompileArgsAsDoubles(2);
    emit(Op::Math2, (int64_t)MathFn::Fmin);
    return 1;
  }
  if ((Name == "fmaxf" || Name == "fmax") && Args.size() == 2) {
    CompileArgsAsDoubles(2);
    emit(Op::Math2, (int64_t)MathFn::Fmax);
    return 1;
  }

  // Math intrinsics.
  static const std::unordered_map<std::string, MathFn> Math1Fns = {
      {"sqrt", MathFn::Sqrt},   {"sqrtf", MathFn::Sqrt},
      {"ceil", MathFn::Ceil},   {"ceilf", MathFn::Ceil},
      {"floor", MathFn::Floor}, {"floorf", MathFn::Floor},
      {"fabs", MathFn::Fabs},   {"fabsf", MathFn::Fabs},
      {"exp", MathFn::Exp},     {"expf", MathFn::Exp},
      {"log", MathFn::Log},     {"logf", MathFn::Log},
      {"tanh", MathFn::Tanh},   {"tanhf", MathFn::Tanh},
  };
  auto MathIt = Math1Fns.find(Name);
  if (MathIt != Math1Fns.end() && Args.size() == 1) {
    CompileArgsAsDoubles(1);
    emit(Op::Math1, (int64_t)MathIt->second);
    if (!Name.empty() && Name.back() == 'f')
      emit(Op::F2Single);
    return 1;
  }
  if ((Name == "pow" || Name == "powf") && Args.size() == 2) {
    CompileArgsAsDoubles(2);
    emit(Op::Math2, (int64_t)MathFn::Pow);
    if (Name.back() == 'f')
      emit(Op::F2Single);
    return 1;
  }

  // CUDA host API.
  if (Name == "cudaMalloc" && Args.size() == 2) {
    compileScalar(Args[0], Type(BuiltinKind::Void, 2));
    compileScalar(Args[1], Type(BuiltinKind::ULong));
    emit(Op::CudaMalloc);
    return 1;
  }
  if (Name == "cudaFree" && Args.size() == 1) {
    compileScalar(Args[0], Type(BuiltinKind::Void, 1));
    emit(Op::CudaFree);
    return 1;
  }
  if (Name == "cudaMemset" && Args.size() == 3) {
    compileScalar(Args[0], Type(BuiltinKind::Void, 1));
    compileScalar(Args[1], Type(BuiltinKind::Int));
    compileScalar(Args[2], Type(BuiltinKind::ULong));
    emit(Op::CudaMemset);
    return 1;
  }
  if (Name == "cudaMemcpy" && Args.size() == 4) {
    compileScalar(Args[0], Type(BuiltinKind::Void, 1));
    compileScalar(Args[1], Type(BuiltinKind::Void, 1));
    compileScalar(Args[2], Type(BuiltinKind::ULong));
    // The direction enum is irrelevant in flat memory; compile and drop.
    if (isa<DeclRefExpr>(Args[3])) {
      emit(Op::PushI, 0);
    } else {
      compileScalar(Args[3], Type(BuiltinKind::Int));
    }
    emit(Op::CudaMemcpy);
    return 1;
  }
  if (Name == "cudaDeviceSynchronize" && Args.empty()) {
    emit(Op::CudaSync);
    emit(Op::PushI, 0);
    return 1;
  }
  if (Name == "printf") {
    // Functional no-op: evaluate and drop the arguments.
    for (const Expr *Arg : Args) {
      unsigned Pushed = compileExpr(Arg);
      for (unsigned I = 0; I < Pushed; ++I)
        emit(Op::Pop);
    }
    emit(Op::PushI, 0);
    return 1;
  }

  // User-defined function.
  auto FnIt = PC.Program.FunctionIndex.find(Name);
  if (FnIt == PC.Program.FunctionIndex.end()) {
    error(Call->loc(), "call to unknown function '" + Name + "'");
    emit(Op::PushI, 0);
    return 1;
  }
  const FuncDef &Callee = PC.Program.Functions[FnIt->second];
  if (Callee.ParamTypes.size() != Args.size()) {
    error(Call->loc(), "function '" + Name + "' expects " +
                           std::to_string(Callee.ParamTypes.size()) +
                           " arguments, got " + std::to_string(Args.size()));
    emit(Op::PushI, 0);
    return 1;
  }
  unsigned ArgSlots = 0;
  for (size_t I = 0; I < Args.size(); ++I) {
    const Type &ParamTy = Callee.ParamTypes[I];
    if (ParamTy.isDim3()) {
      compileDim3(Args[I]);
      ArgSlots += 3;
    } else {
      compileScalar(Args[I], ParamTy);
      ArgSlots += 1;
    }
  }
  emit(Op::Call, FnIt->second, ArgSlots);
  if (!Callee.ReturnsValue)
    emit(Op::PushI, 0);
  return 1;
}

unsigned FunctionCompiler::compileExpr(const Expr *E) {
  switch (E->kind()) {
  case StmtKind::IntegerLit:
    emit(Op::PushI, (int64_t)cast<IntegerLiteral>(E)->value());
    return 1;
  case StmtKind::FloatLit: {
    double D = cast<FloatLiteral>(E)->value();
    if (E->type().kind() == BuiltinKind::Float)
      D = (double)(float)D;
    int64_t Bits;
    __builtin_memcpy(&Bits, &D, 8);
    emit(Op::PushF, Bits);
    return 1;
  }
  case StmtKind::BoolLit:
    emit(Op::PushI, cast<BoolLiteral>(E)->value() ? 1 : 0);
    return 1;
  case StmtKind::StringLit:
    error(E->loc(), "string literals are only supported inside printf");
    emit(Op::PushI, 0);
    return 1;
  case StmtKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    const VarInfo *Info = lookup(Ref->name());
    if (!Info) {
      auto GlobalIt = PC.Program.GlobalOffsets.find(Ref->name());
      if (GlobalIt != PC.Program.GlobalOffsets.end()) {
        uint64_t Addr = GlobalBase + GlobalIt->second;
        // Whole-array reference decays to its address; scalars load.
        const Decl *GD = nullptr;
        for (const Decl *D : PC.TU->decls())
          if (const auto *V = dyn_cast<VarDecl>(D))
            if (V->name() == Ref->name())
              GD = D;
        const auto *GV = dyn_cast_or_null<VarDecl>(GD);
        if (GV && GV->isArray()) {
          emit(Op::PushI, Addr);
          return 1;
        }
        emit(Op::PushI, Addr);
        emit(loadOp(Ref->type()));
        return 1;
      }
      error(Ref->loc(), "use of undeclared variable '" + Ref->name() + "'");
      emit(Op::PushI, 0);
      return 1;
    }
    switch (Info->Kind) {
    case StorageKind::Slot:
      emit(Op::LoadLocal, Info->Slot);
      return 1;
    case StorageKind::Dim3Slots:
      emit(Op::LoadLocal, Info->Slot + 0);
      emit(Op::LoadLocal, Info->Slot + 1);
      emit(Op::LoadLocal, Info->Slot + 2);
      return 3;
    case StorageKind::FrameScalar:
      emit(Op::FrameAddr, Info->Offset);
      emit(loadOp(Info->Ty));
      return 1;
    case StorageKind::FrameArray:
      emit(Op::FrameAddr, Info->Offset);
      return 1;
    case StorageKind::SharedScalar:
      emit(Op::SharedBase);
      emit(Op::PushI, Info->Offset);
      emit(Op::AddI);
      emit(loadOp(Info->Ty));
      return 1;
    case StorageKind::SharedArray:
      emit(Op::SharedBase);
      emit(Op::PushI, Info->Offset);
      emit(Op::AddI);
      return 1;
    default:
      emit(Op::PushI, 0);
      return 1;
    }
  }
  case StmtKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    // Built-in index variables.
    const Expr *Base = M->base();
    while (const auto *P = dyn_cast<ParenExpr>(Base))
      Base = P->inner();
    if (const auto *Ref = dyn_cast<DeclRefExpr>(Base)) {
      int Builtin = -1;
      if (Ref->name() == "threadIdx")
        Builtin = 0;
      else if (Ref->name() == "blockIdx")
        Builtin = 1;
      else if (Ref->name() == "blockDim")
        Builtin = 2;
      else if (Ref->name() == "gridDim")
        Builtin = 3;
      if (Builtin >= 0 && !lookup(Ref->name())) {
        int Comp = M->member() == "x" ? 0 : M->member() == "y" ? 1 : 2;
        emit(Op::SReg, Builtin * 4 + Comp);
        return 1;
      }
      // dim3 local component.
      const VarInfo *Info = lookup(Ref->name());
      if (Info && Info->Kind == StorageKind::Dim3Slots) {
        int Comp = M->member() == "x" ? 0 : M->member() == "y" ? 1 : 2;
        emit(Op::LoadLocal, Info->Slot + Comp);
        return 1;
      }
    }
    error(M->loc(), "unsupported member access '." + M->member() + "'");
    emit(Op::PushI, 0);
    return 1;
  }
  case StmtKind::ArraySubscript: {
    std::optional<LValue> LV = compileLValue(E);
    if (!LV)
      return 1;
    loadFromLValue(*LV);
    return 1;
  }
  case StmtKind::Call:
    return compileCall(cast<CallExpr>(E));
  case StmtKind::Launch:
    compileLaunch(cast<LaunchExpr>(E));
    emit(Op::PushI, 0);
    return 1;
  case StmtKind::Unary: {
    const auto *U = cast<UnaryOperator>(E);
    switch (U->op()) {
    case UnaryOpKind::Plus:
      return compileExpr(U->operand());
    case UnaryOpKind::Minus:
      compileScalar(U->operand(), U->type());
      emit(isFloatTy(U->type()) ? Op::NegF : Op::NegI);
      if (!isFloatTy(U->type()))
        normalizeInt(U->type());
      return 1;
    case UnaryOpKind::Not:
      compileScalar(U->operand(), Type(BuiltinKind::Int));
      emit(Op::LogicalNot);
      return 1;
    case UnaryOpKind::BitNot:
      compileScalar(U->operand(), U->type());
      emit(Op::BitNot);
      normalizeInt(U->type());
      return 1;
    case UnaryOpKind::PreInc:
    case UnaryOpKind::PreDec:
    case UnaryOpKind::PostInc:
    case UnaryOpKind::PostDec:
      compileIncDec(U, /*WantValue=*/true);
      return 1;
    case UnaryOpKind::Deref: {
      std::optional<LValue> LV = compileLValue(E);
      if (!LV)
        return 1;
      loadFromLValue(*LV);
      return 1;
    }
    case UnaryOpKind::AddrOf: {
      const Expr *Operand = U->operand();
      while (const auto *P = dyn_cast<ParenExpr>(Operand))
        Operand = P->inner();
      std::optional<LValue> LV = compileLValue(Operand);
      if (!LV)
        return 1;
      if (LV->IsSlot) {
        error(E->loc(), "cannot take the address of a register local");
        emit(Op::PushI, 0);
        return 1;
      }
      // Address already on the stack.
      return 1;
    }
    }
    return 1;
  }
  case StmtKind::Binary:
    compileBinary(cast<BinaryOperator>(E));
    return 1;
  case StmtKind::Conditional: {
    const auto *C = cast<ConditionalOperator>(E);
    compileScalar(C->cond(), Type(BuiltinKind::Int));
    unsigned JumpElse = emit(Op::JmpIfZero);
    compileScalar(C->trueExpr(), C->type());
    unsigned JumpEnd = emit(Op::Jmp);
    patch(JumpElse, here());
    compileScalar(C->falseExpr(), C->type());
    patch(JumpEnd, here());
    return 1;
  }
  case StmtKind::Cast: {
    const auto *Cast_ = cast<CastExpr>(E);
    compileScalar(Cast_->operand(), Cast_->type());
    return 1;
  }
  case StmtKind::Paren:
    return compileExpr(cast<ParenExpr>(E)->inner());
  case StmtKind::SizeofE:
    emit(Op::PushI, typeWidth(cast<SizeofExpr>(E)->queriedType()));
    return 1;
  default:
    error(E->loc(), "unsupported expression in VM compilation");
    emit(Op::PushI, 0);
    return 1;
  }
}

} // namespace

VmProgram dpo::compileProgram(const TranslationUnit *TU,
                              DiagnosticEngine &Diags,
                              const VmCompileOptions &Opts) {
  ProgramCompiler PC(TU, Diags);
  VmProgram Program = PC.compile();
  if (!Diags.hasErrors() && Opts.OptimizeBytecode)
    optimizeProgram(Program);
  return Program;
}
