//===--- Graph.h - CSR graphs for the workload suite --------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#ifndef DPO_DATASETS_GRAPH_H
#define DPO_DATASETS_GRAPH_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dpo {

/// A directed graph in compressed sparse row form (undirected graphs store
/// both arc directions). Edge weights are optional (SSSP/MST use them).
struct CsrGraph {
  uint32_t NumVertices = 0;
  std::vector<uint32_t> RowPtr; ///< Size NumVertices + 1.
  std::vector<uint32_t> Col;
  std::vector<uint32_t> Weight; ///< Empty or parallel to Col.

  uint64_t numEdges() const { return Col.size(); }
  uint32_t degree(uint32_t V) const { return RowPtr[V + 1] - RowPtr[V]; }

  double avgDegree() const {
    return NumVertices ? (double)numEdges() / NumVertices : 0;
  }
  uint32_t maxDegree() const {
    uint32_t Max = 0;
    for (uint32_t V = 0; V < NumVertices; ++V)
      Max = std::max(Max, degree(V));
    return Max;
  }

  /// Builds CSR from an edge list; optionally adds the reverse arcs and
  /// assigns deterministic pseudo-random weights in [1, MaxWeight].
  static CsrGraph fromEdges(uint32_t NumVertices,
                            std::vector<std::pair<uint32_t, uint32_t>> Edges,
                            bool Symmetrize, uint32_t MaxWeight = 0,
                            uint64_t WeightSeed = 1);

  /// The induced subgraph on vertices [0, Count).
  CsrGraph headSubgraph(uint32_t Count) const;
};

} // namespace dpo

#endif // DPO_DATASETS_GRAPH_H
