//===--- Graph.cpp ------------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datasets/Graph.h"

#include <algorithm>
#include <cassert>
#include <random>

using namespace dpo;

CsrGraph CsrGraph::fromEdges(uint32_t NumVertices,
                             std::vector<std::pair<uint32_t, uint32_t>> Edges,
                             bool Symmetrize, uint32_t MaxWeight,
                             uint64_t WeightSeed) {
  if (Symmetrize) {
    size_t Original = Edges.size();
    Edges.reserve(Original * 2);
    for (size_t I = 0; I < Original; ++I)
      Edges.push_back({Edges[I].second, Edges[I].first});
  }
  // Dedup self-loops and duplicates for a clean CSR.
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                             [](const auto &E) { return E.first == E.second; }),
              Edges.end());

  CsrGraph G;
  G.NumVertices = NumVertices;
  G.RowPtr.assign(NumVertices + 1, 0);
  for (const auto &[U, V] : Edges) {
    assert(U < NumVertices && V < NumVertices && "edge endpoint out of range");
    ++G.RowPtr[U + 1];
  }
  for (uint32_t V = 0; V < NumVertices; ++V)
    G.RowPtr[V + 1] += G.RowPtr[V];
  G.Col.resize(Edges.size());
  std::vector<uint32_t> Cursor(G.RowPtr.begin(), G.RowPtr.end() - 1);
  for (const auto &[U, V] : Edges)
    G.Col[Cursor[U]++] = V;

  if (MaxWeight > 0) {
    G.Weight.resize(G.Col.size());
    std::mt19937_64 Rng(WeightSeed);
    std::uniform_int_distribution<uint32_t> Dist(1, MaxWeight);
    for (size_t I = 0; I < G.Col.size(); ++I)
      G.Weight[I] = Dist(Rng);
    // Symmetric weights: make w(u,v) == w(v,u) by hashing the endpoints.
    for (uint32_t U = 0; U < NumVertices; ++U)
      for (uint32_t E = G.RowPtr[U]; E < G.RowPtr[U + 1]; ++E) {
        uint32_t V = G.Col[E];
        uint64_t A = std::min(U, V), B = std::max(U, V);
        uint64_t H = (A * 0x9E3779B97F4A7C15ull) ^ (B * 0xC2B2AE3D27D4EB4Full);
        G.Weight[E] = 1 + (uint32_t)(H % MaxWeight);
      }
  }
  return G;
}

CsrGraph CsrGraph::headSubgraph(uint32_t Count) const {
  Count = std::min(Count, NumVertices);
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t U = 0; U < Count; ++U)
    for (uint32_t E = RowPtr[U]; E < RowPtr[U + 1]; ++E)
      if (Col[E] < Count)
        Edges.push_back({U, Col[E]});
  return fromEdges(Count, std::move(Edges), /*Symmetrize=*/false,
                   Weight.empty() ? 0 : 64);
}
