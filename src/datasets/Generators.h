//===--- Generators.h - Synthetic stand-ins for the Table I datasets ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators approximating the paper's datasets (Table I).
/// The performance story depends on sizes and degree distributions, which
/// these match at the cited scales:
///
///   KRON        kron_g500-simple-logn16: 65,536 vertices, ~2.4M edges,
///               power-law (RMAT a=.57 b=.19 c=.19 d=.05)
///   CNR         cnr-2000 web graph: 325,557 vertices, ~2.7M edges,
///               lognormal out-degrees with link locality
///   ROAD_NY     USA-road-d.NY: 264,346 vertices, ~730k arcs, avg degree 3,
///               max degree 8 (grid-like, low nested parallelism)
///   RAND-3      random 3-SAT, 10,000 variables, 42,000 clauses
///   5-SAT       satisfiable 5-SAT, 117,296 literals (23,459 clauses)
///   T0032-C16 / T2048-C64  Bezier line sets: 20,000 lines, max
///               tessellation 32 (curvature 16) / 2048 (curvature 64)
///
//===----------------------------------------------------------------------===//

#ifndef DPO_DATASETS_GENERATORS_H
#define DPO_DATASETS_GENERATORS_H

#include "datasets/Graph.h"

#include <array>
#include <cstdint>
#include <vector>

namespace dpo {

/// RMAT/Kronecker power-law graph (KRON stand-in).
CsrGraph makeKronGraph(unsigned ScaleLog2 = 16, double EdgeFactor = 18.7,
                       uint64_t Seed = 0x5eed);

/// Web-crawl-like graph with lognormal degrees and locality (CNR stand-in).
CsrGraph makeWebGraph(uint32_t NumVertices = 325557, double AvgDegree = 8.4,
                      uint64_t Seed = 0xc0ffee);

/// Road-network-like grid graph: average degree ~3, max degree <= 8
/// (USA-road-d.NY stand-in).
CsrGraph makeRoadGraph(uint32_t Side = 514, uint64_t Seed = 0x40ad);

/// A k-SAT formula in clause and occurrence (variable -> clauses) form.
struct SatFormula {
  uint32_t NumVars = 0;
  uint32_t K = 3;
  /// Clause literals: variable index with sign bit (var*2 + negated).
  std::vector<uint32_t> ClauseLits; ///< NumClauses * K.
  uint32_t numClauses() const { return ClauseLits.size() / K; }

  /// Occurrence CSR: for each variable, the clauses containing it.
  std::vector<uint32_t> OccRowPtr;
  std::vector<uint32_t> OccClause;
  uint32_t occurrences(uint32_t Var) const {
    return OccRowPtr[Var + 1] - OccRowPtr[Var];
  }
};

/// Uniform random k-SAT (RAND-3 / 5-SAT stand-ins).
SatFormula makeRandomKSat(uint32_t NumVars, uint32_t NumClauses, uint32_t K,
                          uint64_t Seed = 0x5a7);

/// Bezier tessellation input: quadratic curves with a per-line tessellation
/// factor derived from curvature, clamped to [4, MaxTessellation].
struct BezierLine {
  std::array<float, 2> P0, P1, P2;
  uint32_t Tessellation = 0;
};

struct BezierDataset {
  std::vector<BezierLine> Lines;
  uint32_t MaxTessellation = 32;
};

BezierDataset makeBezierLines(uint32_t NumLines, uint32_t MaxTessellation,
                              double CurvatureScale, uint64_t Seed = 0xbe21e5);

} // namespace dpo

#endif // DPO_DATASETS_GENERATORS_H
