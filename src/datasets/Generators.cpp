//===--- Generators.cpp -------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datasets/Generators.h"

#include <algorithm>
#include <cmath>
#include <random>

using namespace dpo;

CsrGraph dpo::makeKronGraph(unsigned ScaleLog2, double EdgeFactor,
                            uint64_t Seed) {
  const uint32_t N = 1u << ScaleLog2;
  const uint64_t M = (uint64_t)(N * EdgeFactor);
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> U(0.0, 1.0);

  // RMAT quadrant probabilities (Graph500 kron parameters).
  const double A = 0.57, B = 0.19, C = 0.19;
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  Edges.reserve(M);
  for (uint64_t E = 0; E < M; ++E) {
    uint32_t Src = 0, Dst = 0;
    for (unsigned Level = 0; Level < ScaleLog2; ++Level) {
      double R = U(Rng);
      unsigned Quadrant = R < A           ? 0
                          : R < A + B     ? 1
                          : R < A + B + C ? 2
                                          : 3;
      Src = (Src << 1) | (Quadrant >> 1);
      Dst = (Dst << 1) | (Quadrant & 1);
    }
    Edges.push_back({Src, Dst});
  }
  return CsrGraph::fromEdges(N, std::move(Edges), /*Symmetrize=*/true,
                             /*MaxWeight=*/64, Seed);
}

CsrGraph dpo::makeWebGraph(uint32_t NumVertices, double AvgDegree,
                           uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  // Lognormal out-degrees, clipped; web graphs have a heavy tail plus
  // strong locality (most links stay within a "site" neighborhood).
  std::lognormal_distribution<double> DegDist(std::log(AvgDegree * 0.45), 1.1);
  std::uniform_real_distribution<double> U(0.0, 1.0);
  std::normal_distribution<double> Near(0.0, 2000.0);

  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  Edges.reserve((size_t)(NumVertices * AvgDegree / 2 * 1.1));
  uint64_t Budget = (uint64_t)(NumVertices * AvgDegree / 2);
  for (uint32_t V = 0; V < NumVertices && Edges.size() < Budget; ++V) {
    unsigned Degree = (unsigned)std::min(DegDist(Rng), 2500.0);
    for (unsigned E = 0; E < Degree; ++E) {
      uint32_t Target;
      if (U(Rng) < 0.8) {
        int64_t Offset = (int64_t)Near(Rng);
        int64_t T = (int64_t)V + (Offset == 0 ? 1 : Offset);
        Target = (uint32_t)((T % NumVertices + NumVertices) % NumVertices);
      } else {
        Target = (uint32_t)(Rng() % NumVertices);
      }
      if (Target != V)
        Edges.push_back({V, Target});
    }
  }
  return CsrGraph::fromEdges(NumVertices, std::move(Edges),
                             /*Symmetrize=*/true, /*MaxWeight=*/64, Seed);
}

CsrGraph dpo::makeRoadGraph(uint32_t Side, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> U(0.0, 1.0);
  auto Id = [Side](uint32_t X, uint32_t Y) { return Y * Side + X; };

  // 2-D lattice with ~25% of the street segments removed: average degree
  // about 3, maximum 4 from the lattice plus a few diagonal "highways"
  // (degree can reach 8 but no more).
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t Y = 0; Y < Side; ++Y)
    for (uint32_t X = 0; X < Side; ++X) {
      if (X + 1 < Side && U(Rng) > 0.25)
        Edges.push_back({Id(X, Y), Id(X + 1, Y)});
      if (Y + 1 < Side && U(Rng) > 0.25)
        Edges.push_back({Id(X, Y), Id(X, Y + 1)});
      if (X + 1 < Side && Y + 1 < Side && U(Rng) < 0.005)
        Edges.push_back({Id(X, Y), Id(X + 1, Y + 1)});
    }
  return CsrGraph::fromEdges(Side * Side, std::move(Edges),
                             /*Symmetrize=*/true, /*MaxWeight=*/64, Seed);
}

SatFormula dpo::makeRandomKSat(uint32_t NumVars, uint32_t NumClauses,
                               uint32_t K, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  SatFormula F;
  F.NumVars = NumVars;
  F.K = K;
  F.ClauseLits.reserve((size_t)NumClauses * K);
  std::vector<uint32_t> Vars(K);
  for (uint32_t C = 0; C < NumClauses; ++C) {
    // K distinct variables per clause.
    for (uint32_t I = 0; I < K; ++I) {
      bool Fresh = false;
      while (!Fresh) {
        Vars[I] = (uint32_t)(Rng() % NumVars);
        Fresh = true;
        for (uint32_t J = 0; J < I; ++J)
          if (Vars[J] == Vars[I])
            Fresh = false;
      }
      uint32_t Negated = (uint32_t)(Rng() & 1);
      F.ClauseLits.push_back(Vars[I] * 2 + Negated);
    }
  }

  // Occurrence CSR.
  F.OccRowPtr.assign(NumVars + 1, 0);
  for (uint32_t L : F.ClauseLits)
    ++F.OccRowPtr[L / 2 + 1];
  for (uint32_t V = 0; V < NumVars; ++V)
    F.OccRowPtr[V + 1] += F.OccRowPtr[V];
  F.OccClause.resize(F.ClauseLits.size());
  std::vector<uint32_t> Cursor(F.OccRowPtr.begin(), F.OccRowPtr.end() - 1);
  for (uint32_t I = 0; I < F.ClauseLits.size(); ++I)
    F.OccClause[Cursor[F.ClauseLits[I] / 2]++] = I / K;
  return F;
}

BezierDataset dpo::makeBezierLines(uint32_t NumLines, uint32_t MaxTessellation,
                                   double CurvatureScale, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<float> Coord(0.0f, 1000.0f);
  BezierDataset D;
  D.MaxTessellation = MaxTessellation;
  D.Lines.resize(NumLines);
  for (BezierLine &L : D.Lines) {
    L.P0 = {Coord(Rng), Coord(Rng)};
    L.P1 = {Coord(Rng), Coord(Rng)};
    L.P2 = {Coord(Rng), Coord(Rng)};
    // Curvature proxy: deviation of the control point from the chord
    // (matches the CUDA sample's computeCurvature idea).
    float Mx = (L.P0[0] + L.P2[0]) * 0.5f;
    float My = (L.P0[1] + L.P2[1]) * 0.5f;
    float Dev = std::sqrt((L.P1[0] - Mx) * (L.P1[0] - Mx) +
                          (L.P1[1] - My) * (L.P1[1] - My));
    double Tess = Dev / 1000.0 * CurvatureScale * MaxTessellation;
    L.Tessellation =
        (uint32_t)std::clamp<double>(Tess, 4.0, (double)MaxTessellation);
  }
  return D;
}
