//===--- SourceLocation.h - Lightweight source positions ------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A source location is a (line, column) pair plus a byte offset into the
/// buffer being lexed. Invalid locations have Line == 0.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SUPPORT_SOURCELOCATION_H
#define DPO_SUPPORT_SOURCELOCATION_H

#include <cstdint>

namespace dpo {

struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;
  uint32_t Offset = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.Offset == B.Offset && A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace dpo

#endif // DPO_SUPPORT_SOURCELOCATION_H
