//===--- Diagnostics.h - Error/warning collection --------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic engine used by the lexer, parser, analyses, and passes. The
/// library never throws; components report problems here and return a
/// failure value (null AST node, empty optional, ...). Messages follow the
/// LLVM style: lower-case first letter, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SUPPORT_DIAGNOSTICS_H
#define DPO_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace dpo {

enum class DiagKind { Error, Warning, Note };

struct Diagnostic {
  DiagKind Kind;
  SourceLocation Loc;
  std::string Message;
};

/// Accumulates diagnostics produced while processing one input.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: kind: message" lines.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace dpo

#endif // DPO_SUPPORT_DIAGNOSTICS_H
