//===--- StringUtils.h - Small string helpers ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#ifndef DPO_SUPPORT_STRINGUTILS_H
#define DPO_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dpo {

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view Text);

/// Splits \p Text on \p Separator; keeps empty fields.
std::vector<std::string_view> split(std::string_view Text, char Separator);

/// Joins \p Parts with \p Separator between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Separator);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

/// Outcome of parsePositiveU32, so callers can diagnose precisely.
enum class ParseUIntStatus { Ok, Empty, NotANumber, Zero, Overflow };

/// Parses a positive decimal 32-bit integer. Rejects empty input, any
/// non-digit character (including signs), zero, and values above 2^32-1;
/// leading zeros are fine. Shared by the CLI flag parser and the pass
/// pipeline grammar so both accept exactly the same spellings.
ParseUIntStatus parsePositiveU32(std::string_view Text, unsigned &Out);

/// Parses a non-negative decimal 64-bit integer. Rejects empty input,
/// non-digits, and overflow; accepts zero (unlike parsePositiveU32 —
/// histogram keys and counts legitimately include 0).
bool parseU64(std::string_view Text, uint64_t &Out);

} // namespace dpo

#endif // DPO_SUPPORT_STRINGUTILS_H
