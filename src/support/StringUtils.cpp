//===--- StringUtils.cpp ----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdint>

using namespace dpo;

bool dpo::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool dpo::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.compare(Text.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string_view dpo::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() && std::isspace((unsigned char)Text[Begin]))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && std::isspace((unsigned char)Text[End - 1]))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string_view> dpo::split(std::string_view Text,
                                         char Separator) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Separator) {
      Parts.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string dpo::join(const std::vector<std::string> &Parts,
                      std::string_view Separator) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Parts[I];
  }
  return Result;
}

std::string dpo::replaceAll(std::string Text, std::string_view From,
                            std::string_view To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

ParseUIntStatus dpo::parsePositiveU32(std::string_view Text, unsigned &Out) {
  if (Text.empty())
    return ParseUIntStatus::Empty;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return ParseUIntStatus::NotANumber;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
    if (Value > 0xFFFFFFFFull)
      return ParseUIntStatus::Overflow;
  }
  if (Value == 0)
    return ParseUIntStatus::Zero;
  Out = static_cast<unsigned>(Value);
  return ParseUIntStatus::Ok;
}

bool dpo::parseU64(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = (uint64_t)(C - '0');
    if (Value > (~0ull - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}
