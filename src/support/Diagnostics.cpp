//===--- Diagnostics.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace dpo;

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    switch (D.Kind) {
    case DiagKind::Error:
      OS << "error: ";
      break;
    case DiagKind::Warning:
      OS << "warning: ";
      break;
    case DiagKind::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
