//===--- Casting.h - LLVM-style isa/cast/dyn_cast -------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled opt-in RTTI in the style of llvm/Support/Casting.h. A class
/// participates by providing a static `classof(const Base *)` predicate,
/// usually driven by a Kind enumerator stored in the base class.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SUPPORT_CASTING_H
#define DPO_SUPPORT_CASTING_H

#include <cassert>

namespace dpo {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace dpo

#endif // DPO_SUPPORT_CASTING_H
