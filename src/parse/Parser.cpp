//===--- Parser.cpp -----------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "ast/ASTPrinter.h"
#include "lex/Lexer.h"
#include "support/Casting.h"

#include <cstdlib>

using namespace dpo;

Parser::Parser(std::vector<Token> Tokens, ASTContext &Ctx,
               DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Ctx(Ctx), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
  TypeNames = {"dim3", "size_t", "uint", "uint32_t", "uint64_t", "int32_t",
               "int64_t", "cudaStream_t"};
  // File scope.
  pushScope();
  // CUDA built-in variables available inside kernels. Declaring them at file
  // scope is harmless for our subset and keeps typing simple.
  declare("threadIdx", Type(BuiltinKind::Dim3));
  declare("blockIdx", Type(BuiltinKind::Dim3));
  declare("blockDim", Type(BuiltinKind::Dim3));
  declare("gridDim", Type(BuiltinKind::Dim3));
  declare("warpSize", Type(BuiltinKind::Int));
  FunctionReturnTypes["dim3"] = Type(BuiltinKind::Dim3);
}

Token Parser::consume() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

bool Parser::tryConsume(TokenKind Kind) {
  if (cur().is(Kind)) {
    consume();
    return true;
  }
  return false;
}

bool Parser::expect(TokenKind Kind, std::string_view Context) {
  if (tryConsume(Kind))
    return true;
  error("expected " + std::string(tokenKindName(Kind)) + " " +
        std::string(Context) + ", found " +
        std::string(tokenKindName(cur().Kind)));
  return false;
}

void Parser::error(std::string Message) {
  Diags.error(cur().Loc, std::move(Message));
}

void Parser::declare(const std::string &Name, const Type &Ty) {
  assert(!Scopes.empty() && "no scope to declare into");
  Scopes.back()[Name] = Ty;
}

Type Parser::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return Type(BuiltinKind::Int);
}

bool Parser::isTypeName(const Token &Tok) const {
  return Tok.is(TokenKind::Identifier) && TypeNames.count(Tok.Text) != 0;
}

bool Parser::startsType(const Token &Tok) const {
  return Tok.isTypeKeyword() || isTypeName(Tok);
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Type Parser::parseType() {
  bool IsConst = false;
  bool SawUnsigned = false;
  bool SawSigned = false;
  int LongCount = 0;
  BuiltinKind Base = BuiltinKind::Int;
  bool SawBase = false;
  std::string NamedType;

  bool Progress = true;
  while (Progress) {
    Progress = false;
    switch (cur().Kind) {
    case TokenKind::KwConst:
      IsConst = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwUnsigned:
      SawUnsigned = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwSigned:
      SawSigned = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwVoid:
      Base = BuiltinKind::Void;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwBool:
      Base = BuiltinKind::Bool;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwChar:
      Base = BuiltinKind::Char;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwShort:
      Base = BuiltinKind::Short;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwInt:
      Base = BuiltinKind::Int;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwLong:
      ++LongCount;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwFloat:
      Base = BuiltinKind::Float;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwDouble:
      Base = BuiltinKind::Double;
      SawBase = true;
      consume();
      Progress = true;
      break;
    case TokenKind::KwStruct:
      consume();
      if (cur().is(TokenKind::Identifier)) {
        NamedType = consume().Text;
        Base = BuiltinKind::Named;
        SawBase = true;
      } else {
        error("expected struct name");
      }
      Progress = true;
      break;
    case TokenKind::Identifier:
      if (!SawBase && !SawUnsigned && !SawSigned && isTypeName(cur())) {
        std::string Name = consume().Text;
        if (Name == "dim3") {
          Base = BuiltinKind::Dim3;
        } else if (Name == "size_t" || Name == "uint64_t") {
          Base = BuiltinKind::ULong;
          SawUnsigned = false;
        } else if (Name == "uint" || Name == "uint32_t") {
          Base = BuiltinKind::UInt;
        } else if (Name == "int32_t") {
          Base = BuiltinKind::Int;
        } else if (Name == "int64_t") {
          Base = BuiltinKind::Long;
        } else {
          Base = BuiltinKind::Named;
          NamedType = Name;
        }
        SawBase = true;
        Progress = true;
      }
      break;
    default:
      break;
    }
  }

  if (LongCount == 1)
    Base = BuiltinKind::Long;
  else if (LongCount >= 2)
    Base = BuiltinKind::LongLong;

  if (SawUnsigned) {
    switch (Base) {
    case BuiltinKind::Char: Base = BuiltinKind::UChar; break;
    case BuiltinKind::Short: Base = BuiltinKind::UShort; break;
    case BuiltinKind::Int: Base = BuiltinKind::UInt; break;
    case BuiltinKind::Long: Base = BuiltinKind::ULong; break;
    case BuiltinKind::LongLong: Base = BuiltinKind::ULongLong; break;
    default: Base = BuiltinKind::UInt; break;
    }
    if (!SawBase)
      Base = BuiltinKind::UInt;
  }

  Type Result = Base == BuiltinKind::Named ? Type::named(NamedType)
                                           : Type(Base);
  Result.setConst(IsConst);

  while (cur().is(TokenKind::Star)) {
    consume();
    Result = Result.pointerTo();
    // `const` or `__restrict__` after a star.
    while (cur().isOneOf(TokenKind::KwConst, TokenKind::KwRestrict)) {
      if (cur().is(TokenKind::KwRestrict))
        Result.setRestrict(true);
      consume();
    }
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

FunctionQualifiers Parser::parseFunctionQualifiers(bool &SawAny) {
  FunctionQualifiers Quals;
  SawAny = false;
  bool Progress = true;
  while (Progress) {
    Progress = true;
    switch (cur().Kind) {
    case TokenKind::KwGlobal: Quals.Global = true; break;
    case TokenKind::KwDevice: Quals.Device = true; break;
    case TokenKind::KwHost: Quals.Host = true; break;
    case TokenKind::KwStatic: Quals.Static = true; break;
    case TokenKind::KwInline: Quals.Inline = true; break;
    case TokenKind::KwForceInline: Quals.ForceInline = true; break;
    case TokenKind::KwNoInline: break; // Accepted and dropped.
    case TokenKind::KwExtern: Quals.Extern = true; break;
    default:
      Progress = false;
      break;
    }
    if (Progress) {
      consume();
      SawAny = true;
    }
  }
  return Quals;
}

VarDecl *Parser::parseDeclarator(Type BaseType, bool IsShared) {
  // Extra stars bind to this declarator: `int *a`.
  Type Ty = BaseType;
  while (tryConsume(TokenKind::Star))
    Ty = Ty.pointerTo();

  if (!cur().is(TokenKind::Identifier)) {
    error("expected identifier in declaration");
    return nullptr;
  }
  SourceLocation Loc = cur().Loc;
  std::string Name = consume().Text;

  auto *D = Ctx.create<VarDecl>(Ty, Name);
  D->setLoc(Loc);
  D->setShared(IsShared);

  // Array dimensions.
  while (tryConsume(TokenKind::LBracket)) {
    Expr *Dim = nullptr;
    if (!cur().is(TokenKind::RBracket))
      Dim = parseAssignment();
    if (!expect(TokenKind::RBracket, "after array dimension"))
      return nullptr;
    if (Dim)
      D->arrayDims().push_back(Dim);
  }

  // Initializer: `= expr` or constructor syntax `name(args)` (dim3 only in
  // our subset).
  if (tryConsume(TokenKind::Equal)) {
    Expr *Init = parseAssignment();
    if (!Init)
      return nullptr;
    D->setInit(Init);
  } else if (cur().is(TokenKind::LParen)) {
    consume();
    std::vector<Expr *> Args;
    if (!cur().is(TokenKind::RParen)) {
      do {
        Expr *Arg = parseAssignment();
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      } while (tryConsume(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "after constructor arguments"))
      return nullptr;
    auto *Callee = Ctx.ref(Ty.isDim3() ? "dim3" : Ty.str());
    auto *Init = Ctx.create<CallExpr>(Callee, std::move(Args));
    Init->setType(Ty);
    D->setInit(Init);
  }

  // Arrays decay to pointers for typing purposes.
  Type ScopeTy = D->isArray() ? Ty.pointerTo() : Ty;
  declare(Name, ScopeTy);
  return D;
}

DeclStmt *Parser::parseDeclStmt(bool ConsumeSemi) {
  bool IsShared = tryConsume(TokenKind::KwShared);
  Type BaseType = parseType();
  std::vector<VarDecl *> Decls;
  do {
    VarDecl *D = parseDeclarator(BaseType, IsShared);
    if (!D)
      return nullptr;
    Decls.push_back(D);
  } while (tryConsume(TokenKind::Comma));
  if (ConsumeSemi && !expect(TokenKind::Semi, "after declaration"))
    return nullptr;
  return Ctx.create<DeclStmt>(std::move(Decls));
}

FunctionDecl *Parser::parseFunctionRest(FunctionQualifiers Quals,
                                        Type ReturnType, std::string Name) {
  // At '('.
  expect(TokenKind::LParen, "after function name");
  pushScope();
  std::vector<VarDecl *> Params;
  if (!cur().is(TokenKind::RParen)) {
    do {
      if (cur().is(TokenKind::KwVoid) && peek().is(TokenKind::RParen)) {
        consume();
        break;
      }
      Type ParamType = parseType();
      VarDecl *P = parseDeclarator(ParamType, /*IsShared=*/false);
      if (!P) {
        popScope();
        return nullptr;
      }
      Params.push_back(P);
    } while (tryConsume(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameter list")) {
    popScope();
    return nullptr;
  }

  FunctionReturnTypes[Name] = ReturnType;

  CompoundStmt *Body = nullptr;
  if (cur().is(TokenKind::LBrace)) {
    Body = parseCompoundStmt();
    if (!Body) {
      popScope();
      return nullptr;
    }
  } else if (!expect(TokenKind::Semi, "after function prototype")) {
    popScope();
    return nullptr;
  }
  popScope();

  auto *F = Ctx.create<FunctionDecl>(Quals, std::move(ReturnType),
                                     std::move(Name), std::move(Params), Body);
  return F;
}

Decl *Parser::parseTopLevelDecl() {
  if (cur().is(TokenKind::PreprocessorLine)) {
    auto *Raw = Ctx.create<RawDecl>(consume().Text);
    return Raw;
  }

  bool SawQual = false;
  FunctionQualifiers Quals = parseFunctionQualifiers(SawQual);

  if (!startsType(cur())) {
    error("expected declaration at top level, found " +
          std::string(tokenKindName(cur().Kind)));
    return nullptr;
  }

  Type Ty = parseType();
  if (!cur().is(TokenKind::Identifier)) {
    error("expected identifier in top-level declaration");
    return nullptr;
  }

  // Function if '(' follows the name; variable otherwise.
  if (peek().is(TokenKind::LParen)) {
    std::string Name = consume().Text;
    return parseFunctionRest(Quals, std::move(Ty), std::move(Name));
  }

  VarDecl *D = parseDeclarator(Ty, /*IsShared=*/false);
  if (!D)
    return nullptr;
  if (!expect(TokenKind::Semi, "after global variable"))
    return nullptr;
  return D;
}

TranslationUnit *Parser::parseTranslationUnit() {
  auto *TU = Ctx.create<TranslationUnit>();
  while (!cur().is(TokenKind::Eof)) {
    Decl *D = parseTopLevelDecl();
    if (!D)
      return nullptr;
    TU->decls().push_back(D);
  }
  return Diags.hasErrors() ? nullptr : TU;
}

Expr *Parser::parseStandaloneExpr() {
  Expr *E = parseExpr();
  if (!E || Diags.hasErrors())
    return nullptr;
  if (!cur().is(TokenKind::Eof)) {
    error("unexpected trailing tokens after expression");
    return nullptr;
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompoundStmt() {
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  pushScope();
  std::vector<Stmt *> Body;
  while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::Eof)) {
    Stmt *S = parseStmt();
    if (!S) {
      popScope();
      return nullptr;
    }
    Body.push_back(S);
  }
  popScope();
  if (!expect(TokenKind::RBrace, "to close block"))
    return nullptr;
  return Ctx.create<CompoundStmt>(std::move(Body));
}

Stmt *Parser::parseIfStmt() {
  consume(); // 'if'
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::RParen, "after if condition"))
    return nullptr;
  Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (tryConsume(TokenKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Ctx.create<IfStmt>(Cond, Then, Else);
}

Stmt *Parser::parseForStmt() {
  consume(); // 'for'
  if (!expect(TokenKind::LParen, "after 'for'"))
    return nullptr;
  pushScope();

  Stmt *Init = nullptr;
  if (!cur().is(TokenKind::Semi)) {
    if (startsType(cur()) || cur().is(TokenKind::KwShared)) {
      Init = parseDeclStmt(/*ConsumeSemi=*/false);
    } else {
      Init = parseExpr();
    }
    if (!Init) {
      popScope();
      return nullptr;
    }
  }
  if (!expect(TokenKind::Semi, "after for-init")) {
    popScope();
    return nullptr;
  }

  Expr *Cond = nullptr;
  if (!cur().is(TokenKind::Semi)) {
    Cond = parseExpr();
    if (!Cond) {
      popScope();
      return nullptr;
    }
  }
  if (!expect(TokenKind::Semi, "after for-condition")) {
    popScope();
    return nullptr;
  }

  Expr *Inc = nullptr;
  if (!cur().is(TokenKind::RParen)) {
    Inc = parseExpr();
    if (!Inc) {
      popScope();
      return nullptr;
    }
  }
  if (!expect(TokenKind::RParen, "after for-increment")) {
    popScope();
    return nullptr;
  }

  Stmt *Body = parseStmt();
  popScope();
  if (!Body)
    return nullptr;
  return Ctx.create<ForStmt>(Init, Cond, Inc, Body);
}

Stmt *Parser::parseWhileStmt() {
  consume(); // 'while'
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::RParen, "after while condition"))
    return nullptr;
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Ctx.create<WhileStmt>(Cond, Body);
}

Stmt *Parser::parseDoStmt() {
  consume(); // 'do'
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  if (!expect(TokenKind::KwWhile, "after do-body"))
    return nullptr;
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::RParen, "after do-while condition"))
    return nullptr;
  if (!expect(TokenKind::Semi, "after do-while"))
    return nullptr;
  return Ctx.create<DoStmt>(Body, Cond);
}

Stmt *Parser::parseStmt() {
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseCompoundStmt();
  case TokenKind::Semi:
    consume();
    return Ctx.create<NullStmt>();
  case TokenKind::KwIf:
    return parseIfStmt();
  case TokenKind::KwFor:
    return parseForStmt();
  case TokenKind::KwWhile:
    return parseWhileStmt();
  case TokenKind::KwDo:
    return parseDoStmt();
  case TokenKind::KwReturn: {
    consume();
    Expr *Value = nullptr;
    if (!cur().is(TokenKind::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after return"))
      return nullptr;
    return Ctx.create<ReturnStmt>(Value);
  }
  case TokenKind::KwBreak:
    consume();
    if (!expect(TokenKind::Semi, "after 'break'"))
      return nullptr;
    return Ctx.create<BreakStmt>();
  case TokenKind::KwContinue:
    consume();
    if (!expect(TokenKind::Semi, "after 'continue'"))
      return nullptr;
    return Ctx.create<ContinueStmt>();
  case TokenKind::KwShared:
    return parseDeclStmt(/*ConsumeSemi=*/true);
  default:
    break;
  }

  // Declaration?
  if (startsType(cur())) {
    // Distinguish `x * y;` (expression) from `T *y;` (declaration): type
    // keywords always start declarations; for known type names require a
    // declarator-looking continuation.
    return parseDeclStmt(/*ConsumeSemi=*/true);
  }

  // Expression statement.
  Expr *E = parseExpr();
  if (!E)
    return nullptr;
  if (!expect(TokenKind::Semi, "after expression"))
    return nullptr;
  return E;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {

unsigned tokenBinaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 13;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 12;
  case TokenKind::LessLess:
  case TokenKind::GreaterGreater:
    return 11;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEqual:
  case TokenKind::GreaterEqual:
    return 10;
  case TokenKind::EqualEqual:
  case TokenKind::ExclaimEqual:
    return 9;
  case TokenKind::Amp:
    return 8;
  case TokenKind::Caret:
    return 7;
  case TokenKind::Pipe:
    return 6;
  case TokenKind::AmpAmp:
    return 5;
  case TokenKind::PipePipe:
    return 4;
  default:
    return 0;
  }
}

BinaryOpKind tokenToBinaryOp(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star: return BinaryOpKind::Mul;
  case TokenKind::Slash: return BinaryOpKind::Div;
  case TokenKind::Percent: return BinaryOpKind::Rem;
  case TokenKind::Plus: return BinaryOpKind::Add;
  case TokenKind::Minus: return BinaryOpKind::Sub;
  case TokenKind::LessLess: return BinaryOpKind::Shl;
  case TokenKind::GreaterGreater: return BinaryOpKind::Shr;
  case TokenKind::Less: return BinaryOpKind::LT;
  case TokenKind::Greater: return BinaryOpKind::GT;
  case TokenKind::LessEqual: return BinaryOpKind::LE;
  case TokenKind::GreaterEqual: return BinaryOpKind::GE;
  case TokenKind::EqualEqual: return BinaryOpKind::EQ;
  case TokenKind::ExclaimEqual: return BinaryOpKind::NE;
  case TokenKind::Amp: return BinaryOpKind::BitAnd;
  case TokenKind::Caret: return BinaryOpKind::BitXor;
  case TokenKind::Pipe: return BinaryOpKind::BitOr;
  case TokenKind::AmpAmp: return BinaryOpKind::LAnd;
  case TokenKind::PipePipe: return BinaryOpKind::LOr;
  default:
    assert(false && "not a binary operator token");
    return BinaryOpKind::Add;
  }
}

BinaryOpKind tokenToAssignOp(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Equal: return BinaryOpKind::Assign;
  case TokenKind::PlusEqual: return BinaryOpKind::AddAssign;
  case TokenKind::MinusEqual: return BinaryOpKind::SubAssign;
  case TokenKind::StarEqual: return BinaryOpKind::MulAssign;
  case TokenKind::SlashEqual: return BinaryOpKind::DivAssign;
  case TokenKind::PercentEqual: return BinaryOpKind::RemAssign;
  case TokenKind::LessLessEqual: return BinaryOpKind::ShlAssign;
  case TokenKind::GreaterGreaterEqual: return BinaryOpKind::ShrAssign;
  case TokenKind::AmpEqual: return BinaryOpKind::AndAssign;
  case TokenKind::PipeEqual: return BinaryOpKind::OrAssign;
  case TokenKind::CaretEqual: return BinaryOpKind::XorAssign;
  default:
    assert(false && "not an assignment token");
    return BinaryOpKind::Assign;
  }
}

unsigned integerRank(BuiltinKind Kind) {
  switch (Kind) {
  case BuiltinKind::Bool: return 1;
  case BuiltinKind::Char:
  case BuiltinKind::UChar: return 2;
  case BuiltinKind::Short:
  case BuiltinKind::UShort: return 3;
  case BuiltinKind::Int:
  case BuiltinKind::UInt: return 4;
  case BuiltinKind::Long:
  case BuiltinKind::ULong: return 5;
  case BuiltinKind::LongLong:
  case BuiltinKind::ULongLong: return 6;
  default: return 4;
  }
}

} // namespace

Type Parser::typeOfBinary(BinaryOpKind Op, const Expr *LHS,
                          const Expr *RHS) const {
  const Type &L = LHS->type();
  const Type &R = RHS->type();
  switch (Op) {
  case BinaryOpKind::LT:
  case BinaryOpKind::GT:
  case BinaryOpKind::LE:
  case BinaryOpKind::GE:
  case BinaryOpKind::EQ:
  case BinaryOpKind::NE:
  case BinaryOpKind::LAnd:
  case BinaryOpKind::LOr:
    return Type(BuiltinKind::Int);
  case BinaryOpKind::Comma:
    return R;
  default:
    break;
  }
  if (isAssignmentOp(Op))
    return L;
  if (L.isPointer())
    return R.isPointer() ? Type(BuiltinKind::Long) : L;
  if (R.isPointer())
    return R;
  if (L.kind() == BuiltinKind::Double || R.kind() == BuiltinKind::Double)
    return Type(BuiltinKind::Double);
  if (L.kind() == BuiltinKind::Float || R.kind() == BuiltinKind::Float)
    return Type(BuiltinKind::Float);
  // Integer promotion: pick the larger rank; unsigned wins ties.
  unsigned RankL = integerRank(L.kind());
  unsigned RankR = integerRank(R.kind());
  const Type &Winner = RankL > RankR    ? L
                       : RankR > RankL  ? R
                       : L.isUnsigned() ? L
                                        : R;
  if (integerRank(Winner.kind()) < 4)
    return Type(BuiltinKind::Int);
  return Winner;
}

Type Parser::typeOfCall(const std::string &Name,
                        const std::vector<Expr *> &Args) const {
  auto It = FunctionReturnTypes.find(Name);
  if (It != FunctionReturnTypes.end())
    return It->second;
  // Common CUDA/libm intrinsics.
  if (Name == "sqrtf" || Name == "ceilf" || Name == "floorf" ||
      Name == "fabsf" || Name == "fminf" || Name == "fmaxf" ||
      Name == "powf" || Name == "expf" || Name == "logf" ||
      Name == "tanhf" || Name == "__fdividef")
    return Type(BuiltinKind::Float);
  if (Name == "sqrt" || Name == "ceil" || Name == "floor" || Name == "fabs" ||
      Name == "pow" || Name == "exp" || Name == "log" || Name == "tanh")
    return Type(BuiltinKind::Double);
  if (Name == "min" || Name == "max") {
    if (!Args.empty())
      return Args.front()->type();
    return Type(BuiltinKind::Int);
  }
  if (Name == "atomicAdd" || Name == "atomicMax" || Name == "atomicMin" ||
      Name == "atomicExch" || Name == "atomicCAS" || Name == "atomicOr" ||
      Name == "atomicSub") {
    if (!Args.empty() && Args.front()->type().isPointer())
      return Args.front()->type().pointee();
    return Type(BuiltinKind::Int);
  }
  if (Name == "__syncthreads" || Name == "__threadfence" ||
      Name == "__threadfence_block" || Name == "__syncwarp")
    return Type(BuiltinKind::Void);
  // Warp/block collectives: values round-trip through 64-bit VM slots.
  if (Name == "__shfl_sync" || Name == "__shfl_up_sync" ||
      Name == "__shfl_down_sync" || Name == "__shfl_xor_sync" ||
      Name == "__block_reduce_add" || Name == "__block_reduce_min" ||
      Name == "__block_reduce_max")
    return Type(BuiltinKind::LongLong);
  if (Name == "__ballot_sync")
    return Type(BuiltinKind::UInt);
  return Type(BuiltinKind::Int);
}

std::vector<Expr *> Parser::parseCallArgs() {
  std::vector<Expr *> Args;
  if (!cur().is(TokenKind::RParen)) {
    do {
      Expr *Arg = parseAssignment();
      if (!Arg)
        return Args;
      Args.push_back(Arg);
    } while (tryConsume(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after call arguments");
  return Args;
}

Expr *Parser::parsePrimary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntegerLiteral: {
    Token Tok = consume();
    uint64_t Value = std::strtoull(Tok.Text.c_str(), nullptr, 0);
    auto *Lit = Ctx.create<IntegerLiteral>(Value, Tok.Text);
    std::string Lower = Tok.Text;
    for (char &C : Lower)
      C = (char)std::tolower((unsigned char)C);
    bool IsU = Lower.find('u') != std::string::npos;
    bool IsLL = Lower.find("ll") != std::string::npos;
    bool IsL = !IsLL && Lower.find('l') != std::string::npos;
    if (IsU && IsLL)
      Lit->setType(Type(BuiltinKind::ULongLong));
    else if (IsU && IsL)
      Lit->setType(Type(BuiltinKind::ULong));
    else if (IsLL)
      Lit->setType(Type(BuiltinKind::LongLong));
    else if (IsL)
      Lit->setType(Type(BuiltinKind::Long));
    else if (IsU)
      Lit->setType(Type(BuiltinKind::UInt));
    Lit->setLoc(Loc);
    return Lit;
  }
  case TokenKind::FloatLiteral: {
    Token Tok = consume();
    double Value = std::strtod(Tok.Text.c_str(), nullptr);
    auto *Lit = Ctx.create<FloatLiteral>(Value, Tok.Text);
    if (!Tok.Text.empty() &&
        (Tok.Text.back() == 'f' || Tok.Text.back() == 'F'))
      Lit->setType(Type(BuiltinKind::Float));
    Lit->setLoc(Loc);
    return Lit;
  }
  case TokenKind::KwTrue:
  case TokenKind::KwFalse: {
    bool Value = consume().is(TokenKind::KwTrue);
    auto *Lit = Ctx.create<BoolLiteral>(Value);
    Lit->setLoc(Loc);
    return Lit;
  }
  case TokenKind::StringLiteral: {
    auto *Lit = Ctx.create<StringLiteral>(consume().Text);
    Lit->setLoc(Loc);
    return Lit;
  }
  case TokenKind::CharLiteral: {
    Token Tok = consume();
    // Model char literals as integer literals with the original spelling.
    char Value = Tok.Text.size() >= 3 ? Tok.Text[1] : '\0';
    if (Value == '\\' && Tok.Text.size() >= 4) {
      switch (Tok.Text[2]) {
      case 'n': Value = '\n'; break;
      case 't': Value = '\t'; break;
      case '0': Value = '\0'; break;
      case '\\': Value = '\\'; break;
      default: Value = Tok.Text[2]; break;
      }
    }
    auto *Lit = Ctx.create<IntegerLiteral>((uint64_t)Value, Tok.Text);
    Lit->setType(Type(BuiltinKind::Char));
    Lit->setLoc(Loc);
    return Lit;
  }
  case TokenKind::KwSizeof: {
    consume();
    if (!expect(TokenKind::LParen, "after 'sizeof'"))
      return nullptr;
    Type Queried = parseType();
    if (!expect(TokenKind::RParen, "after sizeof type"))
      return nullptr;
    auto *E = Ctx.create<SizeofExpr>(Queried);
    E->setLoc(Loc);
    return E;
  }
  case TokenKind::LParen: {
    // Cast or parenthesized expression. A cast requires a type token (or a
    // known type name) right after '(' and a ')' soon after.
    if (startsType(peek())) {
      // Look ahead to see whether this is `(type)` — scan past type tokens
      // and stars to find ')'.
      size_t Save = Pos;
      consume(); // '('
      Type CastType = parseType();
      if (cur().is(TokenKind::RParen)) {
        consume();
        Expr *Operand = parseUnary();
        if (!Operand)
          return nullptr;
        auto *E = Ctx.create<CastExpr>(CastType, Operand);
        E->setLoc(Loc);
        return E;
      }
      // Not a cast after all; rewind and parse as parenthesized expression.
      Pos = Save;
    }
    consume(); // '('
    Expr *Inner = parseExpr();
    if (!Inner || !expect(TokenKind::RParen, "after parenthesized expression"))
      return nullptr;
    auto *E = Ctx.create<ParenExpr>(Inner);
    E->setType(Inner->type());
    E->setLoc(Loc);
    return E;
  }
  case TokenKind::Identifier: {
    std::string Name = consume().Text;

    // Kernel launch `name<<<...>>>(...)`.
    if (cur().is(TokenKind::LaunchBegin)) {
      consume();
      Expr *Grid = parseAssignment();
      if (!Grid || !expect(TokenKind::Comma, "after launch grid dimension"))
        return nullptr;
      Expr *Block = parseAssignment();
      if (!Block)
        return nullptr;
      Expr *Smem = nullptr;
      Expr *Stream = nullptr;
      if (tryConsume(TokenKind::Comma)) {
        Smem = parseAssignment();
        if (!Smem)
          return nullptr;
        if (tryConsume(TokenKind::Comma)) {
          Stream = parseAssignment();
          if (!Stream)
            return nullptr;
        }
      }
      if (!expect(TokenKind::LaunchEnd, "after launch configuration"))
        return nullptr;
      if (!expect(TokenKind::LParen, "after '>>>'"))
        return nullptr;
      std::vector<Expr *> Args = parseCallArgs();
      auto *E = Ctx.create<LaunchExpr>(std::move(Name), Grid, Block, Smem,
                                       Stream, std::move(Args));
      E->setLoc(Loc);
      return E;
    }

    auto *Ref = Ctx.create<DeclRefExpr>(Name);
    Ref->setType(lookup(Name));
    Ref->setLoc(Loc);
    return Ref;
  }
  default:
    error("expected expression, found " +
          std::string(tokenKindName(cur().Kind)));
    return nullptr;
  }
}

Expr *Parser::parsePostfix(Expr *Base) {
  while (true) {
    switch (cur().Kind) {
    case TokenKind::LParen: {
      consume();
      std::vector<Expr *> Args = parseCallArgs();
      std::string Name;
      if (auto *Ref = dyn_cast<DeclRefExpr>(Base))
        Name = Ref->name();
      auto *Call = Ctx.create<CallExpr>(Base, std::move(Args));
      Call->setType(typeOfCall(Name, Call->args()));
      Base = Call;
      break;
    }
    case TokenKind::LBracket: {
      consume();
      Expr *Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket, "after subscript"))
        return nullptr;
      auto *Sub = Ctx.create<ArraySubscriptExpr>(Base, Index);
      Sub->setType(Base->type().pointee());
      Base = Sub;
      break;
    }
    case TokenKind::Period:
    case TokenKind::Arrow: {
      bool IsArrow = consume().is(TokenKind::Arrow);
      if (!cur().is(TokenKind::Identifier)) {
        error("expected member name");
        return nullptr;
      }
      std::string Member = consume().Text;
      auto *M = Ctx.create<MemberExpr>(Base, Member, IsArrow);
      Type BaseTy = IsArrow ? Base->type().pointee() : Base->type();
      if (BaseTy.isDim3())
        M->setType(Type(BuiltinKind::UInt));
      else
        M->setType(Type(BuiltinKind::Int));
      Base = M;
      break;
    }
    case TokenKind::PlusPlus: {
      consume();
      auto *U = Ctx.create<UnaryOperator>(UnaryOpKind::PostInc, Base);
      U->setType(Base->type());
      Base = U;
      break;
    }
    case TokenKind::MinusMinus: {
      consume();
      auto *U = Ctx.create<UnaryOperator>(UnaryOpKind::PostDec, Base);
      U->setType(Base->type());
      Base = U;
      break;
    }
    default:
      return Base;
    }
    if (!Base)
      return nullptr;
  }
}

Expr *Parser::parseUnary() {
  SourceLocation Loc = cur().Loc;
  UnaryOpKind Op;
  switch (cur().Kind) {
  case TokenKind::Plus: Op = UnaryOpKind::Plus; break;
  case TokenKind::Minus: Op = UnaryOpKind::Minus; break;
  case TokenKind::Exclaim: Op = UnaryOpKind::Not; break;
  case TokenKind::Tilde: Op = UnaryOpKind::BitNot; break;
  case TokenKind::PlusPlus: Op = UnaryOpKind::PreInc; break;
  case TokenKind::MinusMinus: Op = UnaryOpKind::PreDec; break;
  case TokenKind::Star: Op = UnaryOpKind::Deref; break;
  case TokenKind::Amp: Op = UnaryOpKind::AddrOf; break;
  default: {
    Expr *Primary = parsePrimary();
    if (!Primary)
      return nullptr;
    return parsePostfix(Primary);
  }
  }
  consume();
  Expr *Operand = parseUnary();
  if (!Operand)
    return nullptr;
  auto *U = Ctx.create<UnaryOperator>(Op, Operand);
  U->setLoc(Loc);
  switch (Op) {
  case UnaryOpKind::Deref:
    U->setType(Operand->type().pointee());
    break;
  case UnaryOpKind::AddrOf:
    U->setType(Operand->type().pointerTo());
    break;
  case UnaryOpKind::Not:
    U->setType(Type(BuiltinKind::Int));
    break;
  default:
    U->setType(Operand->type());
    break;
  }
  return U;
}

Expr *Parser::parseBinaryRHS(unsigned MinPrec, Expr *LHS) {
  while (true) {
    unsigned Prec = tokenBinaryPrecedence(cur().Kind);
    if (Prec < MinPrec || Prec == 0)
      return LHS;
    TokenKind OpTok = consume().Kind;
    Expr *RHS = parseUnary();
    if (!RHS)
      return nullptr;
    unsigned NextPrec = tokenBinaryPrecedence(cur().Kind);
    if (NextPrec > Prec) {
      RHS = parseBinaryRHS(Prec + 1, RHS);
      if (!RHS)
        return nullptr;
    }
    BinaryOpKind Op = tokenToBinaryOp(OpTok);
    auto *Bin = Ctx.create<BinaryOperator>(Op, LHS, RHS);
    Bin->setType(typeOfBinary(Op, LHS, RHS));
    LHS = Bin;
  }
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseUnary();
  if (!Cond)
    return nullptr;
  Cond = parseBinaryRHS(/*MinPrec=*/4, Cond);
  if (!Cond)
    return nullptr;
  if (!tryConsume(TokenKind::Question))
    return Cond;
  Expr *TrueExpr = parseAssignment();
  if (!TrueExpr || !expect(TokenKind::Colon, "in conditional expression"))
    return nullptr;
  Expr *FalseExpr = parseConditional();
  if (!FalseExpr)
    return nullptr;
  auto *C = Ctx.create<ConditionalOperator>(Cond, TrueExpr, FalseExpr);
  C->setType(TrueExpr->type());
  return C;
}

Expr *Parser::parseAssignment() {
  Expr *LHS = parseConditional();
  if (!LHS)
    return nullptr;
  switch (cur().Kind) {
  case TokenKind::Equal:
  case TokenKind::PlusEqual:
  case TokenKind::MinusEqual:
  case TokenKind::StarEqual:
  case TokenKind::SlashEqual:
  case TokenKind::PercentEqual:
  case TokenKind::LessLessEqual:
  case TokenKind::GreaterGreaterEqual:
  case TokenKind::AmpEqual:
  case TokenKind::PipeEqual:
  case TokenKind::CaretEqual: {
    BinaryOpKind Op = tokenToAssignOp(consume().Kind);
    Expr *RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    auto *Bin = Ctx.create<BinaryOperator>(Op, LHS, RHS);
    Bin->setType(LHS->type());
    return Bin;
  }
  default:
    return LHS;
  }
}

Expr *Parser::parseExpr() {
  Expr *LHS = parseAssignment();
  if (!LHS)
    return nullptr;
  while (cur().is(TokenKind::Comma)) {
    consume();
    Expr *RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    auto *Bin = Ctx.create<BinaryOperator>(BinaryOpKind::Comma, LHS, RHS);
    Bin->setType(RHS->type());
    LHS = Bin;
  }
  return LHS;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

TranslationUnit *dpo::parseSource(std::string_view Source, ASTContext &Ctx,
                                  DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Ctx, Diags);
  return P.parseTranslationUnit();
}

Expr *dpo::parseExprSource(std::string_view Source, ASTContext &Ctx,
                           DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Ctx, Diags);
  return P.parseStandaloneExpr();
}
