//===--- Parser.h - Recursive-descent parser for the CUDA-C subset ----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the CUDA-C subset into the AST. The parser doubles as a light
/// semantic analyzer: it tracks variable and function types in scope so
/// every expression node carries a static type (the bytecode compiler and
/// the passes rely on this; e.g. pointer subscripts must scale by the
/// pointee size).
///
/// Grammar highlights beyond plain C:
///   - `__global__` / `__device__` / `__host__` / `__shared__` qualifiers
///   - kernel launches `k<<<grid, block[, smem[, stream]]>>>(args)`
///   - `dim3` with constructor syntax `dim3 g(a, b, c)`
///   - preprocessor lines preserved verbatim as RawDecls
///
//===----------------------------------------------------------------------===//

#ifndef DPO_PARSE_PARSER_H
#define DPO_PARSE_PARSER_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "lex/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dpo {

class Parser {
public:
  Parser(std::vector<Token> Tokens, ASTContext &Ctx, DiagnosticEngine &Diags);

  /// Parses a whole file. Returns null if any error was reported.
  TranslationUnit *parseTranslationUnit();

  /// Parses a single expression (used heavily by tests).
  Expr *parseStandaloneExpr();

  /// Registers an extra name to be treated as a type (e.g. a struct the
  /// surrounding build defines).
  void addTypeName(std::string Name) { TypeNames.insert(std::move(Name)); }

private:
  // Token stream helpers.
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  Token consume();
  bool tryConsume(TokenKind Kind);
  bool expect(TokenKind Kind, std::string_view Context);
  void error(std::string Message);

  // Scope and type tracking.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(const std::string &Name, const Type &Ty);
  Type lookup(const std::string &Name) const;
  bool isTypeName(const Token &Tok) const;
  bool startsType(const Token &Tok) const;

  // Declarations.
  Decl *parseTopLevelDecl();
  FunctionQualifiers parseFunctionQualifiers(bool &SawAny);
  Type parseType();
  FunctionDecl *parseFunctionRest(FunctionQualifiers Quals, Type ReturnType,
                                  std::string Name);
  VarDecl *parseDeclarator(Type BaseType, bool IsShared);
  DeclStmt *parseDeclStmt(bool ConsumeSemi);

  // Statements.
  Stmt *parseStmt();
  CompoundStmt *parseCompoundStmt();
  Stmt *parseIfStmt();
  Stmt *parseForStmt();
  Stmt *parseWhileStmt();
  Stmt *parseDoStmt();

  // Expressions (precedence climbing).
  Expr *parseExpr();           ///< Includes comma operator.
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinaryRHS(unsigned MinPrec, Expr *LHS);
  Expr *parseUnary();
  Expr *parsePostfix(Expr *Base);
  Expr *parsePrimary();
  std::vector<Expr *> parseCallArgs();

  // Typing helpers.
  Type typeOfBinary(BinaryOpKind Op, const Expr *LHS, const Expr *RHS) const;
  Type typeOfCall(const std::string &Name, const std::vector<Expr *> &Args)
      const;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<std::unordered_map<std::string, Type>> Scopes;
  std::unordered_map<std::string, Type> FunctionReturnTypes;
  std::unordered_set<std::string> TypeNames;
};

/// Convenience entry point: lex + parse \p Source.
TranslationUnit *parseSource(std::string_view Source, ASTContext &Ctx,
                             DiagnosticEngine &Diags);

/// Convenience entry point for a single expression.
Expr *parseExprSource(std::string_view Source, ASTContext &Ctx,
                      DiagnosticEngine &Diags);

} // namespace dpo

#endif // DPO_PARSE_PARSER_H
