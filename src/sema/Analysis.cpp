//===--- Analysis.cpp -----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/Analysis.h"

#include "sema/PurityAnalysis.h"

#include <algorithm>
#include <sstream>

using namespace dpo;

const char *dpo::analysisName(AnalysisID ID) {
  switch (ID) {
  case AnalysisID::LaunchSites: return "launch-sites";
  case AnalysisID::Transformability: return "transformability";
  case AnalysisID::GridDim: return "grid-dim";
  case AnalysisID::Purity: return "purity";
  }
  return "unknown";
}

const std::vector<LaunchSite> &AnalysisManager::launchSites() {
  if (LaunchSitesCache) {
    ++statsFor(AnalysisID::LaunchSites).Hits;
    return *LaunchSitesCache;
  }
  // Assemble the whole-TU list in declaration order from the per-function
  // lists, computing only the functions a scoped invalidation dropped (or
  // a pass newly added). A full assembly from nothing is one Computed; an
  // assembly that reused any surviving per-function list also counts one
  // Hit — the partial-recompute win the scoped invalidation exists for.
  ++statsFor(AnalysisID::LaunchSites).Computed;
  bool ReusedAny = false;
  std::vector<LaunchSite> Assembled;
  for (Decl *D : TU->decls()) {
    auto *F = dyn_cast<FunctionDecl>(D);
    if (!F || !F->body())
      continue;
    auto It = LaunchSitesByFn.find(F);
    if (It == LaunchSitesByFn.end())
      It = LaunchSitesByFn.emplace(F, findLaunchSites(TU, F)).first;
    else
      ReusedAny = true;
    Assembled.insert(Assembled.end(), It->second.begin(), It->second.end());
  }
  if (ReusedAny)
    ++statsFor(AnalysisID::LaunchSites).Hits;
  LaunchSitesCache = std::move(Assembled);
  return *LaunchSitesCache;
}

const Transformability &
AnalysisManager::serializability(const FunctionDecl *Child) {
  auto It = TransformabilityCache.find(Child);
  if (It != TransformabilityCache.end()) {
    ++statsFor(AnalysisID::Transformability).Hits;
    return It->second;
  }
  ++statsFor(AnalysisID::Transformability).Computed;
  return TransformabilityCache.emplace(Child, analyzeSerializability(Child, TU))
      .first->second;
}

const GridDimInfo &AnalysisManager::gridDim(const FunctionDecl *Parent,
                                            Expr *GridExpr) {
  auto It = GridDimCache.find(GridExpr);
  if (It != GridDimCache.end()) {
    ++statsFor(AnalysisID::GridDim).Hits;
    return It->second.Value;
  }
  ++statsFor(AnalysisID::GridDim).Computed;
  return GridDimCache
      .emplace(GridExpr,
               Owned<GridDimInfo>{Parent, analyzeGridDim(Ctx, Parent, GridExpr)})
      .first->second.Value;
}

bool AnalysisManager::isPure(const Expr *E, const FunctionDecl *Scope) {
  auto It = PurityCache.find(E);
  if (It != PurityCache.end()) {
    ++statsFor(AnalysisID::Purity).Hits;
    return It->second.Value;
  }
  ++statsFor(AnalysisID::Purity).Computed;
  return PurityCache.emplace(E, Owned<bool>{Scope, isPureExpr(E)})
      .first->second.Value;
}

namespace {

bool contains(const std::vector<const FunctionDecl *> &Fns,
              const FunctionDecl *F) {
  return std::find(Fns.begin(), Fns.end(), F) != Fns.end();
}

/// Erases the map entries a scoped invalidation targets: those owned by a
/// touched function, plus (conservatively) entries with no recorded owner.
template <typename Map, typename OwnerOf>
bool eraseTouched(Map &M, const std::vector<const FunctionDecl *> &Touched,
                  OwnerOf Owner) {
  bool Erased = false;
  for (auto It = M.begin(); It != M.end();) {
    const FunctionDecl *F = Owner(*It);
    if (!F || contains(Touched, F)) {
      It = M.erase(It);
      Erased = true;
    } else {
      ++It;
    }
  }
  return Erased;
}

} // namespace

void AnalysisManager::invalidate(const PreservedAnalyses &PA) {
  const bool Scoped = PA.isScoped();
  const std::vector<const FunctionDecl *> &Touched = PA.touchedFunctions();
  // Transformability is transitive over __device__ callees and the cache
  // does not track reverse call edges, so a touched device function
  // invalidates every verdict, scoped or not.
  bool TouchedDeviceFn = false;
  for (const FunctionDecl *F : Touched)
    if (F && F->qualifiers().Device)
      TouchedDeviceFn = true;

  if (!PA.isPreserved(AnalysisID::LaunchSites)) {
    bool Dropped = false;
    if (Scoped) {
      Dropped = eraseTouched(LaunchSitesByFn, Touched,
                             [](const auto &Entry) { return Entry.first; });
      if (LaunchSitesCache) {
        LaunchSitesCache.reset();
        Dropped = true;
      }
    } else if (LaunchSitesCache || !LaunchSitesByFn.empty()) {
      LaunchSitesCache.reset();
      LaunchSitesByFn.clear();
      Dropped = true;
    }
    if (Dropped)
      ++statsFor(AnalysisID::LaunchSites).Invalidations;
  }
  if (!PA.isPreserved(AnalysisID::Transformability)) {
    bool Dropped = false;
    if (Scoped && !TouchedDeviceFn) {
      Dropped = eraseTouched(TransformabilityCache, Touched,
                             [](const auto &Entry) { return Entry.first; });
    } else if (!TransformabilityCache.empty()) {
      TransformabilityCache.clear();
      Dropped = true;
    }
    if (Dropped)
      ++statsFor(AnalysisID::Transformability).Invalidations;
  }
  if (!PA.isPreserved(AnalysisID::GridDim)) {
    bool Dropped = false;
    if (Scoped) {
      Dropped = eraseTouched(GridDimCache, Touched, [](const auto &Entry) {
        return Entry.second.Owner;
      });
    } else if (!GridDimCache.empty()) {
      GridDimCache.clear();
      Dropped = true;
    }
    if (Dropped)
      ++statsFor(AnalysisID::GridDim).Invalidations;
  }
  if (!PA.isPreserved(AnalysisID::Purity)) {
    bool Dropped = false;
    if (Scoped) {
      Dropped = eraseTouched(PurityCache, Touched, [](const auto &Entry) {
        return Entry.second.Owner;
      });
    } else if (!PurityCache.empty()) {
      PurityCache.clear();
      Dropped = true;
    }
    if (Dropped)
      ++statsFor(AnalysisID::Purity).Invalidations;
  }
}

std::string AnalysisManager::statsReport() const {
  std::ostringstream OS;
  OS << "analysis cache      computed  hits  invalidated\n";
  for (unsigned I = 0; I < NumAnalysisIDs; ++I) {
    const AnalysisStats &S = Stats[I];
    char Line[96];
    std::snprintf(Line, sizeof(Line), "  %-17s %8u %5u %12u\n",
                  analysisName(static_cast<AnalysisID>(I)), S.Computed, S.Hits,
                  S.Invalidations);
    OS << Line;
  }
  return OS.str();
}
