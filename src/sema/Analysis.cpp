//===--- Analysis.cpp -----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/Analysis.h"

#include "sema/PurityAnalysis.h"

#include <sstream>

using namespace dpo;

const char *dpo::analysisName(AnalysisID ID) {
  switch (ID) {
  case AnalysisID::LaunchSites: return "launch-sites";
  case AnalysisID::Transformability: return "transformability";
  case AnalysisID::GridDim: return "grid-dim";
  case AnalysisID::Purity: return "purity";
  }
  return "unknown";
}

const std::vector<LaunchSite> &AnalysisManager::launchSites() {
  if (LaunchSitesCache) {
    ++statsFor(AnalysisID::LaunchSites).Hits;
    return *LaunchSitesCache;
  }
  ++statsFor(AnalysisID::LaunchSites).Computed;
  LaunchSitesCache = findLaunchSites(TU);
  return *LaunchSitesCache;
}

const Transformability &
AnalysisManager::serializability(const FunctionDecl *Child) {
  auto It = TransformabilityCache.find(Child);
  if (It != TransformabilityCache.end()) {
    ++statsFor(AnalysisID::Transformability).Hits;
    return It->second;
  }
  ++statsFor(AnalysisID::Transformability).Computed;
  return TransformabilityCache.emplace(Child, analyzeSerializability(Child, TU))
      .first->second;
}

const GridDimInfo &AnalysisManager::gridDim(const FunctionDecl *Parent,
                                            Expr *GridExpr) {
  auto It = GridDimCache.find(GridExpr);
  if (It != GridDimCache.end()) {
    ++statsFor(AnalysisID::GridDim).Hits;
    return It->second;
  }
  ++statsFor(AnalysisID::GridDim).Computed;
  return GridDimCache.emplace(GridExpr, analyzeGridDim(Ctx, Parent, GridExpr))
      .first->second;
}

bool AnalysisManager::isPure(const Expr *E) {
  auto It = PurityCache.find(E);
  if (It != PurityCache.end()) {
    ++statsFor(AnalysisID::Purity).Hits;
    return It->second;
  }
  ++statsFor(AnalysisID::Purity).Computed;
  return PurityCache.emplace(E, isPureExpr(E)).first->second;
}

void AnalysisManager::invalidate(const PreservedAnalyses &PA) {
  if (!PA.isPreserved(AnalysisID::LaunchSites) && LaunchSitesCache) {
    LaunchSitesCache.reset();
    ++statsFor(AnalysisID::LaunchSites).Invalidations;
  }
  if (!PA.isPreserved(AnalysisID::Transformability) &&
      !TransformabilityCache.empty()) {
    TransformabilityCache.clear();
    ++statsFor(AnalysisID::Transformability).Invalidations;
  }
  if (!PA.isPreserved(AnalysisID::GridDim) && !GridDimCache.empty()) {
    GridDimCache.clear();
    ++statsFor(AnalysisID::GridDim).Invalidations;
  }
  if (!PA.isPreserved(AnalysisID::Purity) && !PurityCache.empty()) {
    PurityCache.clear();
    ++statsFor(AnalysisID::Purity).Invalidations;
  }
}

std::string AnalysisManager::statsReport() const {
  std::ostringstream OS;
  OS << "analysis cache      computed  hits  invalidated\n";
  for (unsigned I = 0; I < NumAnalysisIDs; ++I) {
    const AnalysisStats &S = Stats[I];
    char Line[96];
    std::snprintf(Line, sizeof(Line), "  %-17s %8u %5u %12u\n",
                  analysisName(static_cast<AnalysisID>(I)), S.Computed, S.Hits,
                  S.Invalidations);
    OS << Line;
  }
  return OS.str();
}
