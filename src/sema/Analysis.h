//===--- Analysis.h - Cached sema analyses for the pass pipeline -------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AnalysisManager caches the sema results the transformation passes
/// share — launch sites, serializability, grid-dimension recovery, and
/// expression purity — so a multi-pass pipeline computes each analysis once
/// instead of once per pass. Results are keyed by (analysis, unit): the
/// launch-site analysis is per translation unit, serializability is per
/// function, and grid-dim/purity are per expression node.
///
/// Invalidation is explicit: a pass reports the analyses it left valid via
/// a PreservedAnalyses set, and the PassManager drops everything else
/// before the next pass runs. A pass that did not mutate the AST returns
/// PreservedAnalyses::all(); the conservative default is none().
///
/// Sharp edge, by design: GridDimInfo results own freshly synthesized
/// expression nodes (ThreadCount) and may point into the analyzed grid
/// expression (InlineSite). A consumer that splices those nodes into the
/// tree — the thresholding pass does — must not report the grid-dim
/// analysis as preserved, so a later query recomputes instead of handing
/// out nodes that are already part of the AST.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SEMA_ANALYSIS_H
#define DPO_SEMA_ANALYSIS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "sema/GridDimAnalysis.h"
#include "sema/LaunchSites.h"
#include "sema/Transformability.h"

#include <array>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dpo {

/// The analyses the manager knows how to compute and cache.
enum class AnalysisID : unsigned {
  LaunchSites = 0,   ///< findLaunchSites over the whole TU.
  Transformability,  ///< analyzeSerializability, per child kernel.
  GridDim,           ///< analyzeGridDim, per grid-dimension expression.
  Purity,            ///< isPureExpr, per expression.
};
inline constexpr unsigned NumAnalysisIDs = 4;

const char *analysisName(AnalysisID ID);

/// The set of analyses a pass run left valid. Defaults to empty (a pass
/// that mutated the AST and makes no promises).
///
/// A pass that knows exactly which functions it mutated can additionally
/// scope the invalidation with limitToFunctions: abandoned analyses are
/// then dropped only for results attached to the named functions, and
/// everything cached for untouched functions survives. The whole-TU
/// launch-site list is refreshed per function under a scoped
/// invalidation instead of recomputed from scratch.
class PreservedAnalyses {
public:
  /// Everything stays valid (the pass made no changes, or none an analysis
  /// can observe).
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.Preserved.fill(true);
    return PA;
  }
  /// Nothing survives (the conservative default).
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  PreservedAnalyses &preserve(AnalysisID ID) {
    Preserved[static_cast<unsigned>(ID)] = true;
    return *this;
  }
  PreservedAnalyses &abandon(AnalysisID ID) {
    Preserved[static_cast<unsigned>(ID)] = false;
    return *this;
  }
  bool isPreserved(AnalysisID ID) const {
    return Preserved[static_cast<unsigned>(ID)];
  }

  /// Scopes the abandoned analyses to \p Fns: results attached to any
  /// other function stay cached. Only sound when the pass mutated nothing
  /// outside the named functions (new declarations it *added* need no
  /// entry — nothing was cached for them). Function-level caveat: if a
  /// touched function is __device__, analyses that look through device
  /// calls (transformability) are dropped wholesale, since the manager
  /// does not track reverse call edges.
  PreservedAnalyses &limitToFunctions(std::vector<const FunctionDecl *> Fns) {
    Scoped = true;
    Touched = std::move(Fns);
    return *this;
  }
  bool isScoped() const { return Scoped; }
  const std::vector<const FunctionDecl *> &touchedFunctions() const {
    return Touched;
  }

private:
  std::array<bool, NumAnalysisIDs> Preserved{};
  bool Scoped = false;
  std::vector<const FunctionDecl *> Touched;
};

/// Per-analysis cache counters, exposed for --print-pass-stats and tests.
struct AnalysisStats {
  unsigned Computed = 0;      ///< Cache misses: the analysis actually ran.
  unsigned Hits = 0;          ///< Queries answered from the cache.
  unsigned Invalidations = 0; ///< Times cached results were dropped.
};

/// Caches analysis results over one translation unit. Created once per
/// compilation and threaded through every pass; see the file comment for
/// the invalidation contract.
class AnalysisManager {
public:
  AnalysisManager(ASTContext &Ctx, TranslationUnit *TU) : Ctx(Ctx), TU(TU) {}

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  TranslationUnit *translationUnit() const { return TU; }
  ASTContext &context() const { return Ctx; }

  /// All launch sites in the translation unit (TU-level, computed once).
  const std::vector<LaunchSite> &launchSites();

  /// Whether \p Child can be serialized into its parent thread
  /// (function-level; transitive over __device__ callees in the TU).
  const Transformability &serializability(const FunctionDecl *Child);

  /// The Fig. 4 desired-thread-count recovery for \p GridExpr inside
  /// \p Parent (expression-level). See the file comment: the returned
  /// nodes are single-use; consumers that splice them must abandon
  /// AnalysisID::GridDim.
  const GridDimInfo &gridDim(const FunctionDecl *Parent, Expr *GridExpr);

  /// Side-effect freedom of \p E (expression-level). \p Scope is the
  /// function containing \p E; scoped invalidations keep results for
  /// untouched scopes and always drop scopeless (null) entries.
  bool isPure(const Expr *E, const FunctionDecl *Scope = nullptr);

  /// Drops every cached result not in \p PA.
  void invalidate(const PreservedAnalyses &PA);
  void invalidateAll() { invalidate(PreservedAnalyses::none()); }

  const AnalysisStats &stats(AnalysisID ID) const {
    return Stats[static_cast<unsigned>(ID)];
  }

  /// Human-readable cache-counter table (one line per analysis).
  std::string statsReport() const;

private:
  AnalysisStats &statsFor(AnalysisID ID) {
    return Stats[static_cast<unsigned>(ID)];
  }

  ASTContext &Ctx;
  TranslationUnit *TU;

  /// Whole-TU site list, assembled from LaunchSitesByFn in declaration
  /// order. Reset (cheaply) whenever any per-function list changes.
  std::optional<std::vector<LaunchSite>> LaunchSitesCache;
  /// Per-function site lists — the unit of scoped invalidation.
  std::unordered_map<const FunctionDecl *, std::vector<LaunchSite>>
      LaunchSitesByFn;
  std::unordered_map<const FunctionDecl *, Transformability>
      TransformabilityCache;
  /// Expression-level results remember their owning function so a scoped
  /// invalidation can drop exactly the touched functions' entries.
  template <typename T> struct Owned {
    const FunctionDecl *Owner = nullptr;
    T Value;
  };
  std::unordered_map<const Expr *, Owned<GridDimInfo>> GridDimCache;
  std::unordered_map<const Expr *, Owned<bool>> PurityCache;

  std::array<AnalysisStats, NumAnalysisIDs> Stats{};
};

} // namespace dpo

#endif // DPO_SEMA_ANALYSIS_H
