//===--- LaunchSites.cpp --------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/LaunchSites.h"

#include "ast/Walk.h"
#include "support/Casting.h"

#include <unordered_set>

using namespace dpo;

std::vector<LaunchSite> dpo::findLaunchSites(TranslationUnit *TU,
                                             FunctionDecl *Caller) {
  std::vector<LaunchSite> Sites;
  if (!Caller->body())
    return Sites;

  // Launches appearing directly in statement position.
  std::unordered_set<const Stmt *> StatementLaunches;
  rewriteStmts(Caller->body(), [&](Stmt *S) -> Stmt * {
    if (isa<LaunchExpr>(S))
      StatementLaunches.insert(S);
    return nullptr;
  });

  forEachExpr(Caller->body(), [&](Expr *E) {
    auto *L = dyn_cast<LaunchExpr>(E);
    if (!L)
      return;
    LaunchSite Site;
    Site.Caller = Caller;
    Site.Launch = L;
    Site.Child = TU ? TU->findFunction(L->kernel()) : nullptr;
    Site.InStatementPosition = StatementLaunches.count(L) != 0;
    Site.FromKernel = Caller->qualifiers().Global || Caller->qualifiers().Device;
    Sites.push_back(Site);
  });
  return Sites;
}

std::vector<LaunchSite> dpo::findLaunchSites(TranslationUnit *TU) {
  std::vector<LaunchSite> Sites;
  for (Decl *D : TU->decls()) {
    auto *F = dyn_cast<FunctionDecl>(D);
    if (!F || !F->body())
      continue;
    std::vector<LaunchSite> Local = findLaunchSites(TU, F);
    Sites.insert(Sites.end(), Local.begin(), Local.end());
  }
  return Sites;
}
