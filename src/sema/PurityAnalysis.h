//===--- PurityAnalysis.h - Side-effect and stability analysis ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative purity/stability checks used by the thresholding pass when
/// it must re-evaluate a grid-dimension subexpression at a different program
/// point (paper Section III-D: the desired-thread-count subexpression may be
/// stored in intermediate variables).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SEMA_PURITYANALYSIS_H
#define DPO_SEMA_PURITYANALYSIS_H

#include "ast/Decl.h"
#include "ast/Stmt.h"

namespace dpo {

/// True if evaluating \p E has no side effects: no assignments, no
/// increment/decrement, no launches, and only calls to known-pure functions
/// (min/max/ceil/abs family and the dim3 constructor).
bool isPureExpr(const Expr *E);

/// Number of textual assignments to \p Name inside \p F (assignment
/// operators, ++/--, and address-taken uses count; the declaration's
/// initializer does not).
unsigned countAssignments(const FunctionDecl *F, const std::string &Name);

/// True if every variable referenced by \p E is stable over the body of
/// \p F: a parameter that is never reassigned, a local assigned only by its
/// initializer, or a CUDA built-in (threadIdx & friends).
bool isStableOverFunction(const Expr *E, const FunctionDecl *F);

} // namespace dpo

#endif // DPO_SEMA_PURITYANALYSIS_H
