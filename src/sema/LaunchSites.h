//===--- LaunchSites.h - Locating dynamic-parallelism launches ---------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#ifndef DPO_SEMA_LAUNCHSITES_H
#define DPO_SEMA_LAUNCHSITES_H

#include "ast/Decl.h"
#include "ast/Stmt.h"

#include <vector>

namespace dpo {

struct LaunchSite {
  FunctionDecl *Caller = nullptr; ///< The function containing the launch.
  LaunchExpr *Launch = nullptr;
  FunctionDecl *Child = nullptr;  ///< Resolved kernel; null if undeclared.
  bool InStatementPosition = false;
  bool FromKernel = false;        ///< Caller is __global__ (a dynamic launch).
};

/// Collects all launch expressions in \p TU, resolving each to the launched
/// kernel's definition when available. Launches whose callee is a kernel
/// launched from device code (parent is __global__ or __device__) are
/// dynamic-parallelism launches; host-side launches are reported with
/// FromKernel == false.
std::vector<LaunchSite> findLaunchSites(TranslationUnit *TU);

/// Launch sites inside a single function.
std::vector<LaunchSite> findLaunchSites(TranslationUnit *TU,
                                        FunctionDecl *Caller);

} // namespace dpo

#endif // DPO_SEMA_LAUNCHSITES_H
