//===--- PurityAnalysis.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/PurityAnalysis.h"

#include "ast/Walk.h"
#include "support/Casting.h"

#include <unordered_set>

using namespace dpo;

static bool isPureCallee(const std::string &Name) {
  static const std::unordered_set<std::string> Pure = {
      "min",  "max",  "ceil", "ceilf", "floor", "floorf", "abs",
      "fabs", "fabsf", "sqrt", "sqrtf", "dim3", "fminf",  "fmaxf"};
  return Pure.count(Name) != 0;
}

bool dpo::isPureExpr(const Expr *E) {
  if (!E)
    return true;
  bool Pure = true;
  forEachExpr(E, [&](const Expr *Node) {
    switch (Node->kind()) {
    case StmtKind::Binary:
      if (isAssignmentOp(cast<BinaryOperator>(Node)->op()))
        Pure = false;
      break;
    case StmtKind::Unary: {
      UnaryOpKind Op = cast<UnaryOperator>(Node)->op();
      if (Op == UnaryOpKind::PreInc || Op == UnaryOpKind::PreDec ||
          Op == UnaryOpKind::PostInc || Op == UnaryOpKind::PostDec)
        Pure = false;
      break;
    }
    case StmtKind::Call: {
      const auto *Call = cast<CallExpr>(Node);
      if (!isPureCallee(Call->calleeName()))
        Pure = false;
      break;
    }
    case StmtKind::Launch:
      Pure = false;
      break;
    default:
      break;
    }
  });
  return Pure;
}

unsigned dpo::countAssignments(const FunctionDecl *F, const std::string &Name) {
  if (!F->body())
    return 0;
  unsigned Count = 0;
  auto RefersToName = [&](const Expr *E) {
    const Expr *Stripped = E;
    while (const auto *P = dyn_cast<ParenExpr>(Stripped))
      Stripped = P->inner();
    const auto *Ref = dyn_cast<DeclRefExpr>(Stripped);
    return Ref && Ref->name() == Name;
  };
  forEachExpr(F->body(), [&](const Expr *E) {
    if (const auto *Bin = dyn_cast<BinaryOperator>(E)) {
      if (isAssignmentOp(Bin->op()) && RefersToName(Bin->lhs()))
        ++Count;
      return;
    }
    if (const auto *U = dyn_cast<UnaryOperator>(E)) {
      switch (U->op()) {
      case UnaryOpKind::PreInc:
      case UnaryOpKind::PreDec:
      case UnaryOpKind::PostInc:
      case UnaryOpKind::PostDec:
        if (RefersToName(U->operand()))
          ++Count;
        break;
      case UnaryOpKind::AddrOf:
        // Taking the address may alias the variable; treat as an assignment
        // to stay conservative.
        if (RefersToName(U->operand()))
          ++Count;
        break;
      default:
        break;
      }
    }
  });
  return Count;
}

bool dpo::isStableOverFunction(const Expr *E, const FunctionDecl *F) {
  static const std::unordered_set<std::string> Builtins = {
      "threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize"};
  bool Stable = true;
  forEachExpr(E, [&](const Expr *Node) {
    const auto *Ref = dyn_cast<DeclRefExpr>(Node);
    if (!Ref || !Stable)
      return;
    if (Builtins.count(Ref->name()))
      return;
    if (countAssignments(F, Ref->name()) != 0)
      Stable = false;
  });
  return Stable;
}
