//===--- Transformability.h - Which child kernels can be serialized? ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section III-C of the paper: a child kernel cannot be serialized into its
/// parent thread when it (1) performs barrier synchronization
/// (__syncthreads or warp-level primitives), because serializing
/// barrier-synchronized code requires scalar expansion that is prohibitively
/// expensive on a GPU and usually indicates an algorithm with a better
/// sequential form; or (2) uses shared memory, because each parent thread
/// would need an entire block's worth of shared memory.
///
/// The analysis is transitive over __device__ functions defined in the same
/// translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SEMA_TRANSFORMABILITY_H
#define DPO_SEMA_TRANSFORMABILITY_H

#include "ast/Decl.h"

#include <string>
#include <vector>

namespace dpo {

struct Transformability {
  bool Serializable = true;
  std::vector<std::string> Reasons;
};

/// Decides whether \p Child can be turned into a serial __device__ version
/// executed by the parent thread. \p TU provides definitions of __device__
/// functions the child calls (may be null to analyze the body alone).
Transformability analyzeSerializability(const FunctionDecl *Child,
                                        const TranslationUnit *TU = nullptr);

/// True if \p Name is a barrier or warp-level primitive that rules out
/// serialization.
bool isBarrierOrWarpPrimitive(const std::string &Name);

} // namespace dpo

#endif // DPO_SEMA_TRANSFORMABILITY_H
