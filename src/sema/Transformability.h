//===--- Transformability.h - Which child kernels can be serialized? ---------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section III-C of the paper, relaxed for cooperative kernels: a child
/// kernel CAN be serialized into its parent thread even when it uses
/// `__shared__` memory or `__syncthreads`, provided the barrier semantics
/// survive serialization structurally:
///
///  - every `__syncthreads` sits at the top level of the body or at the top
///    level of a block-uniform `for` loop (bounds computed from parameters,
///    literals, and block-uniform builtins) — the serializer splits the body
///    into barrier-free segments, each its own thread loop, and hoists the
///    uniform loops to block level;
///  - `__shared__` declarations sit at the top level of the body (scalars or
///    1-D literal-sized arrays) — they become block-scope locals;
///  - per-thread locals live across a barrier only when they are
///    rematerializable: single-assignment, initializer built from literals,
///    parameters, index builtins, and other rematerializable locals;
///  - the kernel has no early returns (a returned thread skips later
///    segments, which a segment-per-loop serialization cannot express).
///
/// Still rejected: warp-level primitives (shuffle/ballot/reduce exchange
/// values between concurrently-running threads; the serial form has no
/// second thread to exchange with), barriers under divergent control flow
/// or inside `while`/`do` loops, barriers reached through __device__
/// callees (segmentation cannot cross a call boundary), and inter-block
/// synchronization through an atomic spin-wait (an atomic builtin in a loop
/// condition), which deadlocks when the loop is collapsed into one thread.
///
/// The analysis is transitive over __device__ functions defined in the same
/// translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SEMA_TRANSFORMABILITY_H
#define DPO_SEMA_TRANSFORMABILITY_H

#include "ast/Decl.h"

#include <string>
#include <vector>

namespace dpo {

struct Transformability {
  bool Serializable = true;
  std::vector<std::string> Reasons;
  /// True when the child is serializable but carries `__shared__` state or
  /// `__syncthreads` barriers, so the serializer must use the segmented
  /// (barrier-preserving) form instead of one whole-body thread loop.
  bool NeedsBarrierSegmentation = false;
};

/// Decides whether \p Child can be turned into a serial __device__ version
/// executed by the parent thread. \p TU provides definitions of __device__
/// functions the child calls (may be null to analyze the body alone).
Transformability analyzeSerializability(const FunctionDecl *Child,
                                        const TranslationUnit *TU = nullptr);

/// True if \p Name is a barrier or warp-level primitive. `__syncthreads`
/// itself is structurally serializable in the child's own body (see the
/// file comment); everything else in this set rules out serialization
/// outright.
bool isBarrierOrWarpPrimitive(const std::string &Name);

} // namespace dpo

#endif // DPO_SEMA_TRANSFORMABILITY_H
