//===--- GridDimAnalysis.h - Desired-child-thread-count extraction -----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Section III-D analysis: given the grid-dimension
/// expression of a dynamic launch, recover the subexpression the programmer
/// used as the *desired number of child threads* (N). Programmers almost
/// always compute the grid dimension as a ceiling division of N by the block
/// dimension; the recognized spellings are those of Fig. 4:
///
///   (a) (N - 1)/b + 1
///   (b) (N + b - 1)/b
///   (c) N/b + (N%b == 0 ? 0 : 1)
///   (d) ceil((float)N/b)
///   (e) ceil(N/(float)b)
///   (f) dim3(e1, e2, e3) where each operand looks like (a)-(e)
///
/// The heuristic: find the first division, take its left-hand side, strip
/// parens/casts and additions/subtractions of constants (integer literals or
/// terms structurally equal to the divisor), and call the rest N. The
/// expression may be split across assigned-once intermediate variables,
/// which the analysis follows.
///
/// The result is deliberately heuristic (the paper argues this is acceptable
/// because it only selects between serializing and launching — never
/// correctness).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_SEMA_GRIDDIMANALYSIS_H
#define DPO_SEMA_GRIDDIMANALYSIS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "ast/Stmt.h"

#include <string>

namespace dpo {

struct GridDimInfo {
  /// True if a desired-thread-count expression was recovered.
  bool Found = false;

  /// Freshly synthesized expression computing the desired child-thread
  /// count (a clone of the recovered subexpression; a product of clones for
  /// multi-dimensional dim3 grids). Owned by the ASTContext passed in.
  Expr *ThreadCount = nullptr;

  /// When the count was found directly inside the launch's grid expression
  /// (the common case), this points at the exact node inside that
  /// expression, so the caller can substitute `_threads` in place and avoid
  /// evaluating a side-effecting subexpression twice. Null when the count
  /// was reached through intermediate variables or a dim3 constructor.
  Expr *InlineSite = nullptr;

  /// True if ThreadCount must be re-evaluated at the launch site from
  /// cloned subexpressions (variable-resolved or multi-dimensional cases).
  bool NeedsReevaluation = false;

  /// For NeedsReevaluation results: true if the cloned expression is pure
  /// and all referenced variables are stable over the parent function, so
  /// re-evaluation is sound.
  bool Safe = false;

  /// Human-readable reason when !Found (for diagnostics and tests).
  std::string FailureReason;
};

/// Analyzes the grid-dimension expression \p GridExpr of a launch inside
/// \p Parent. Synthesized nodes are created in \p Ctx.
GridDimInfo analyzeGridDim(ASTContext &Ctx, const FunctionDecl *Parent,
                           Expr *GridExpr);

/// Strips ParenExpr and CastExpr wrappers (both are transparent to the
/// pattern matcher).
Expr *stripParensAndCasts(Expr *E);
const Expr *stripParensAndCasts(const Expr *E);

} // namespace dpo

#endif // DPO_SEMA_GRIDDIMANALYSIS_H
