//===--- GridDimAnalysis.cpp ----------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/GridDimAnalysis.h"

#include "ast/Clone.h"
#include "ast/Equivalence.h"
#include "ast/Walk.h"
#include "sema/PurityAnalysis.h"
#include "support/Casting.h"

using namespace dpo;

Expr *dpo::stripParensAndCasts(Expr *E) {
  while (true) {
    if (auto *P = dyn_cast_or_null<ParenExpr>(E)) {
      E = P->inner();
      continue;
    }
    if (auto *C = dyn_cast_or_null<CastExpr>(E)) {
      E = C->operand();
      continue;
    }
    return E;
  }
}

const Expr *dpo::stripParensAndCasts(const Expr *E) {
  return stripParensAndCasts(const_cast<Expr *>(E));
}

namespace {

/// Finds the single initialization of an assigned-once local variable in
/// \p F, or null.
Expr *resolveAssignedOnceLocal(const FunctionDecl *F, const std::string &Name) {
  if (!F->body() || countAssignments(F, Name) != 0)
    return nullptr;
  Expr *Init = nullptr;
  bool Multiple = false;
  forEachStmt(const_cast<CompoundStmt *>(F->body()), [&](Stmt *S) {
    auto *DS = dyn_cast<DeclStmt>(S);
    if (!DS)
      return;
    for (VarDecl *D : DS->decls()) {
      if (D->name() != Name)
        continue;
      if (Init)
        Multiple = true; // Shadowing; give up.
      Init = D->init();
    }
  });
  if (Multiple)
    return nullptr;
  return Init;
}

class GridDimAnalyzer {
public:
  GridDimAnalyzer(ASTContext &Ctx, const FunctionDecl *Parent)
      : Ctx(Ctx), Parent(Parent) {}

  GridDimInfo analyze(Expr *GridExpr) {
    GridDimInfo Info;
    Expr *Stripped = stripParensAndCasts(GridExpr);

    // Multi-dimensional launch: dim3(e1, e2, e3), possibly behind an
    // assigned-once dim3 variable.
    Expr *Dim3Ctor = asDim3Ctor(Stripped);
    if (!Dim3Ctor) {
      if (auto *Ref = dyn_cast<DeclRefExpr>(Stripped)) {
        if (Ref->type().isDim3()) {
          Expr *Init = resolveAssignedOnceLocal(Parent, Ref->name());
          if (!Init) {
            Info.FailureReason = "dim3 grid variable '" + Ref->name() +
                                 "' is not an assigned-once local";
            return Info;
          }
          Dim3Ctor = asDim3Ctor(stripParensAndCasts(Init));
          if (!Dim3Ctor) {
            Info.FailureReason = "dim3 grid variable '" + Ref->name() +
                                 "' is not initialized by a dim3 constructor";
            return Info;
          }
        }
      }
    }
    if (Dim3Ctor)
      return analyzeDim3(cast<CallExpr>(Dim3Ctor));

    // One-dimensional grid.
    bool ViaVariable = false;
    Expr *Found = findCount(Stripped, ViaVariable, Info.FailureReason);
    if (!Found)
      return Info;

    Info.Found = true;
    Info.ThreadCount = cloneExpr(Ctx, Found);
    if (!ViaVariable) {
      Info.InlineSite = Found;
      Info.Safe = true;
      return Info;
    }
    Info.NeedsReevaluation = true;
    Info.Safe = isPureExpr(Found) && isStableOverFunction(Found, Parent);
    if (!Info.Safe)
      Info.FailureReason =
          "thread-count expression reached through a variable is not safe to "
          "re-evaluate";
    return Info;
  }

private:
  Expr *asDim3Ctor(Expr *E) {
    auto *Call = dyn_cast_or_null<CallExpr>(E);
    if (Call && Call->calleeName() == "dim3")
      return Call;
    return nullptr;
  }

  /// Recovers N from a one-dimensional grid expression. Sets \p ViaVariable
  /// if resolution went through an intermediate variable.
  Expr *findCount(Expr *E, bool &ViaVariable, std::string &FailureReason,
                  unsigned Depth = 0) {
    if (Depth > 8) {
      FailureReason = "variable resolution too deep";
      return nullptr;
    }
    E = stripParensAndCasts(E);

    // Follow assigned-once intermediate variables (the grid dimension is
    // often computed into a local first).
    if (auto *Ref = dyn_cast<DeclRefExpr>(E)) {
      Expr *Init = resolveAssignedOnceLocal(Parent, Ref->name());
      if (!Init) {
        FailureReason = "grid dimension '" + Ref->name() +
                        "' has no resolvable ceiling-division initializer";
        return nullptr;
      }
      ViaVariable = true;
      return findCount(Init, ViaVariable, FailureReason, Depth + 1);
    }

    // Find the first division in pre-order.
    BinaryOperator *Div = nullptr;
    forEachExpr(E, [&](Expr *Node) {
      if (Div)
        return;
      if (auto *Bin = dyn_cast<BinaryOperator>(Node))
        if (Bin->op() == BinaryOpKind::Div)
          Div = Bin;
    });
    if (!Div) {
      FailureReason = "no division found in grid-dimension expression";
      return nullptr;
    }

    Expr *Divisor = stripParensAndCasts(Div->rhs());
    Expr *Dividend = stripParensAndCasts(Div->lhs());

    // The dividend itself may be another intermediate variable
    // (`int t = n + b - 1; grid = t / b;`).
    if (auto *Ref = dyn_cast<DeclRefExpr>(Dividend)) {
      if (Expr *Init = resolveAssignedOnceLocal(Parent, Ref->name())) {
        ViaVariable = true;
        Dividend = stripParensAndCasts(Init);
      }
    }

    return stripConstantAdjustments(Dividend, Divisor);
  }

  /// Removes additions and subtractions of "constants" from \p Dividend:
  /// integer literals and terms structurally equal to the divisor (the
  /// paper's `(N + b - 1)` case where b is the block dimension).
  Expr *stripConstantAdjustments(Expr *Dividend, Expr *Divisor) {
    while (true) {
      Dividend = stripParensAndCasts(Dividend);
      auto *Bin = dyn_cast<BinaryOperator>(Dividend);
      if (!Bin)
        return Dividend;
      if (Bin->op() != BinaryOpKind::Add && Bin->op() != BinaryOpKind::Sub)
        return Dividend;
      Expr *RHS = stripParensAndCasts(Bin->rhs());
      if (isConstantLike(RHS, Divisor)) {
        Dividend = Bin->lhs();
        continue;
      }
      // Commuted addition: `b + N - 1` strips to `b + N`, whose left term is
      // the constant.
      if (Bin->op() == BinaryOpKind::Add) {
        Expr *LHS = stripParensAndCasts(Bin->lhs());
        if (isConstantLike(LHS, Divisor)) {
          Dividend = Bin->rhs();
          continue;
        }
      }
      return Dividend;
    }
  }

  bool isConstantLike(const Expr *E, const Expr *Divisor) {
    if (isa<IntegerLiteral>(E) || isa<FloatLiteral>(E))
      return true;
    return structurallyEqual(E, Divisor);
  }

  GridDimInfo analyzeDim3(CallExpr *Ctor) {
    GridDimInfo Info;
    Info.NeedsReevaluation = true;

    std::vector<Expr *> Factors;
    for (Expr *Arg : Ctor->args()) {
      Expr *Stripped = stripParensAndCasts(Arg);
      // Literal dimensions contribute their block count directly (usually 1).
      if (auto *Lit = dyn_cast<IntegerLiteral>(Stripped)) {
        if (Lit->value() == 1)
          continue;
        Factors.push_back(cloneExpr(Ctx, Lit));
        continue;
      }
      bool ViaVariable = false;
      std::string Reason;
      Expr *Found = findCount(Stripped, ViaVariable, Reason);
      if (!Found) {
        Info.FailureReason =
            "dim3 operand is neither a literal nor a ceiling division: " +
            Reason;
        return Info;
      }
      Factors.push_back(cloneExpr(Ctx, Found));
    }

    if (Factors.empty()) {
      // dim3(1, 1, 1): a single child block of threads; treat the count as 1
      // block's worth, i.e. unknown. Fall back to "not found".
      Info.FailureReason = "dim3 grid with all-constant dimensions";
      return Info;
    }

    Expr *Product = Factors.front();
    for (size_t I = 1; I < Factors.size(); ++I)
      Product = Ctx.binary(BinaryOpKind::Mul, Product, Factors[I]);

    Info.Found = true;
    Info.ThreadCount = Product;
    Info.Safe = true;
    for (Expr *Factor : Factors)
      if (!isPureExpr(Factor) || !isStableOverFunction(Factor, Parent))
        Info.Safe = false;
    if (!Info.Safe)
      Info.FailureReason =
          "dim3 thread-count factors are not safe to re-evaluate";
    return Info;
  }

  ASTContext &Ctx;
  const FunctionDecl *Parent;
};

} // namespace

GridDimInfo dpo::analyzeGridDim(ASTContext &Ctx, const FunctionDecl *Parent,
                                Expr *GridExpr) {
  GridDimAnalyzer Analyzer(Ctx, Parent);
  return Analyzer.analyze(GridExpr);
}
