//===--- Transformability.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/Transformability.h"

#include "ast/Walk.h"
#include "sema/PurityAnalysis.h"
#include "support/Casting.h"
#include "support/StringUtils.h"

#include <unordered_set>

using namespace dpo;

bool dpo::isBarrierOrWarpPrimitive(const std::string &Name) {
  static const std::unordered_set<std::string> Exact = {
      "__syncthreads",       "__syncthreads_count", "__syncthreads_and",
      "__syncthreads_or",    "__syncwarp",          "__activemask",
      "__ballot_sync",       "__any_sync",          "__all_sync",
      "__uni_sync",          "__ballot",            "__any",
      "__all",
  };
  if (Exact.count(Name))
    return true;
  // __shfl_sync, __shfl_up_sync, __shfl_down_sync, __shfl_xor_sync, legacy
  // __shfl*, the __reduce_*_sync family, and our __block_reduce_* idiom.
  if (startsWith(Name, "__shfl") || startsWith(Name, "__reduce_") ||
      startsWith(Name, "__block_reduce_"))
    return true;
  return false;
}

namespace {

bool isSyncthreadsCall(const Stmt *S) {
  const auto *Call = dyn_cast<CallExpr>(S);
  return Call && Call->calleeName() == "__syncthreads";
}

bool containsSyncthreads(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isSyncthreadsCall(S))
      Found = true;
  });
  return Found;
}

bool containsSharedDecl(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (const auto *DS = dyn_cast<DeclStmt>(S))
      for (const VarDecl *D : DS->decls())
        if (D->isShared())
          Found = true;
  });
  return Found;
}

bool containsReturnStmt(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isa<ReturnStmt>(S))
      Found = true;
  });
  return Found;
}

const Expr *stripParens(const Expr *E) {
  while (const auto *P = dyn_cast_or_null<ParenExpr>(E))
    E = P->inner();
  return E;
}

/// Textual assignments (including ++/-- and address-taken uses) to \p Name
/// below \p Root. The statement-scoped sibling of countAssignments.
unsigned countAssignmentsIn(const Stmt *Root, const std::string &Name) {
  unsigned N = 0;
  forEachExpr(Root, [&](const Expr *E) {
    if (const auto *B = dyn_cast<BinaryOperator>(E)) {
      if (!isAssignmentOp(B->op()))
        return;
      if (const auto *L = dyn_cast_or_null<DeclRefExpr>(stripParens(B->lhs())))
        if (L->name() == Name)
          ++N;
      return;
    }
    if (const auto *U = dyn_cast<UnaryOperator>(E)) {
      bool Mutating = U->op() == UnaryOpKind::PreInc ||
                      U->op() == UnaryOpKind::PreDec ||
                      U->op() == UnaryOpKind::PostInc ||
                      U->op() == UnaryOpKind::PostDec ||
                      U->op() == UnaryOpKind::AddrOf;
      if (!Mutating)
        return;
      if (const auto *R =
              dyn_cast_or_null<DeclRefExpr>(stripParens(U->operand())))
        if (R->name() == Name)
          ++N;
    }
  });
  return N;
}

/// Structural expression check shared by the block-uniformity and
/// rematerialization rules: pure arithmetic over literals, names in
/// \p AllowedNames, and index builtins. \p AllowThreadIdx distinguishes the
/// two: a rematerialized per-thread initializer may read threadIdx, a
/// hoisted block-level loop bound may not.
bool isStructuralExpr(const Expr *Root,
                      const std::unordered_set<std::string> &AllowedNames,
                      bool AllowThreadIdx) {
  if (!Root)
    return true;
  bool Ok = true;
  forEachExpr(Root, [&](const Expr *E) {
    switch (E->kind()) {
    case StmtKind::IntegerLit:
    case StmtKind::FloatLit:
    case StmtKind::BoolLit:
    case StmtKind::Paren:
    case StmtKind::Cast:
    case StmtKind::Conditional:
    case StmtKind::SizeofE:
    case StmtKind::Member:
      return; // Member bases are validated as DeclRefs below.
    case StmtKind::Unary: {
      UnaryOpKind Op = cast<UnaryOperator>(E)->op();
      if (Op == UnaryOpKind::PreInc || Op == UnaryOpKind::PreDec ||
          Op == UnaryOpKind::PostInc || Op == UnaryOpKind::PostDec ||
          Op == UnaryOpKind::Deref || Op == UnaryOpKind::AddrOf)
        Ok = false;
      return;
    }
    case StmtKind::Binary:
      if (isAssignmentOp(cast<BinaryOperator>(E)->op()))
        Ok = false;
      return;
    case StmtKind::DeclRef: {
      const std::string &N = cast<DeclRefExpr>(E)->name();
      if (AllowedNames.count(N) || N == "blockIdx" || N == "blockDim" ||
          N == "gridDim" || (AllowThreadIdx && N == "threadIdx"))
        return;
      Ok = false;
      return;
    }
    default:
      // Calls, launches, subscripts (memory reads are not stable across
      // segments), string literals.
      Ok = false;
      return;
    }
  });
  return Ok;
}

/// Validates the barrier structure of a child kernel body per the rules in
/// Transformability.h and accumulates rejection reasons.
class BarrierStructureChecker {
public:
  BarrierStructureChecker(const FunctionDecl *F, Transformability &Result)
      : F(F), Result(Result) {
    for (const VarDecl *P : F->params())
      Allowed.insert(P->name());
  }

  void run() { checkLevel(F->body()->body(), /*BodyTop=*/true); }

private:
  const FunctionDecl *F;
  Transformability &Result;
  /// Names usable in rematerialized initializers: parameters plus locals
  /// already proven rematerializable, in declaration order.
  std::unordered_set<std::string> Allowed;

  void reject(const std::string &Why) {
    Result.Serializable = false;
    Result.Reasons.push_back(Why);
  }

  /// break/continue that would bind to a hoisted barrier loop (i.e. not
  /// inside a nested loop of its body).
  bool hasLoopExitAtLevel(const Stmt *S) {
    if (!S)
      return false;
    switch (S->kind()) {
    case StmtKind::Break:
    case StmtKind::Continue:
      return true;
    case StmtKind::Compound:
      for (const Stmt *C : cast<CompoundStmt>(S)->body())
        if (hasLoopExitAtLevel(C))
          return true;
      return false;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      return hasLoopExitAtLevel(I->thenStmt()) ||
             hasLoopExitAtLevel(I->elseStmt());
    }
    default:
      return false; // Nested loops re-bind break/continue.
    }
  }

  /// Uniform increment forms: `++v`/`v++`/`--v`/`v--`, or `v = expr` /
  /// `v op= expr` with a block-uniform right-hand side.
  bool isUniformInc(const Expr *Inc, const std::string &V) {
    std::unordered_set<std::string> Names = {V};
    if (const auto *U = dyn_cast_or_null<UnaryOperator>(Inc)) {
      const auto *R = dyn_cast_or_null<DeclRefExpr>(stripParens(U->operand()));
      bool IncDec = U->op() == UnaryOpKind::PreInc ||
                    U->op() == UnaryOpKind::PreDec ||
                    U->op() == UnaryOpKind::PostInc ||
                    U->op() == UnaryOpKind::PostDec;
      return IncDec && R && R->name() == V;
    }
    if (const auto *B = dyn_cast_or_null<BinaryOperator>(Inc)) {
      if (!isAssignmentOp(B->op()))
        return false;
      const auto *L = dyn_cast_or_null<DeclRefExpr>(stripParens(B->lhs()));
      for (const VarDecl *P : F->params())
        Names.insert(P->name());
      return L && L->name() == V &&
             isStructuralExpr(B->rhs(), Names, /*AllowThreadIdx=*/false);
    }
    return false;
  }

  /// A `for` loop whose body contains barriers: hoisted to block level by
  /// the serializer, so its control must be block-uniform.
  void checkBarrierLoop(const ForStmt *For) {
    const auto *InitDS = dyn_cast_or_null<DeclStmt>(For->init());
    const VarDecl *LV = InitDS ? InitDS->singleDecl() : nullptr;
    if (!LV || LV->isShared() || LV->isArray() || !LV->init()) {
      reject("barrier-bearing loop in '" + F->name() +
             "' must declare a single initialized loop variable");
      return;
    }
    std::unordered_set<std::string> Names;
    for (const VarDecl *P : F->params())
      Names.insert(P->name());
    std::unordered_set<std::string> CondNames = Names;
    CondNames.insert(LV->name());
    if (!isStructuralExpr(LV->init(), Names, /*AllowThreadIdx=*/false) ||
        !For->cond() ||
        !isStructuralExpr(For->cond(), CondNames, /*AllowThreadIdx=*/false) ||
        !isUniformInc(For->inc(), LV->name())) {
      reject("barrier-bearing loop in '" + F->name() +
             "' has non-block-uniform bounds ('" + LV->name() + "')");
      return;
    }
    if (countAssignmentsIn(For->body(), LV->name()) != 0) {
      reject("barrier-bearing loop variable '" + LV->name() + "' in '" +
             F->name() + "' is modified in the loop body");
      return;
    }
    if (hasLoopExitAtLevel(For->body())) {
      reject("break/continue binding to a barrier-bearing loop in '" +
             F->name() + "'");
      return;
    }
    if (const auto *CS = dyn_cast<CompoundStmt>(For->body()))
      checkLevel(CS->body(), /*BodyTop=*/false);
    else
      checkLevel({const_cast<Stmt *>(For->body())}, /*BodyTop=*/false);
  }

  void checkLevel(const std::vector<Stmt *> &Stmts, bool BodyTop) {
    // Pass A: assign a segment index to every statement (barriers and
    // barrier-bearing loops are their own boundaries) and validate barrier
    // placement.
    std::vector<int> Seg(Stmts.size(), 0);
    std::vector<const Stmt *> Recurse;
    int Cur = 0;
    for (size_t I = 0; I < Stmts.size(); ++I) {
      const Stmt *S = Stmts[I];
      if (isSyncthreadsCall(S)) {
        Seg[I] = -1;
        ++Cur;
        continue;
      }
      if (!containsSyncthreads(S)) {
        // A __shared__ declaration buried inside ordinary control flow
        // never reaches pass B's placement check; reject it here.
        if (!isa<DeclStmt>(S) && containsSharedDecl(S)) {
          reject("__shared__ declaration below the top level of '" +
                 F->name() + "'");
          return;
        }
        Seg[I] = Cur;
        continue;
      }
      if (isa<ForStmt>(S) || isa<CompoundStmt>(S)) {
        Seg[I] = ++Cur;
        ++Cur;
        Recurse.push_back(S);
        continue;
      }
      reject("__syncthreads under divergent control flow in '" + F->name() +
             "'");
      return;
    }

    // Pass B: per-thread locals at this level. Shared declarations must
    // sit at the top level of the body; anything live across a segment
    // boundary must be rematerializable.
    for (size_t I = 0; I < Stmts.size(); ++I) {
      const auto *DS = dyn_cast<DeclStmt>(Stmts[I]);
      if (!DS)
        continue;
      for (const VarDecl *D : DS->decls()) {
        if (D->isShared()) {
          if (!BodyTop)
            reject("__shared__ declaration ('" + D->name() +
                   "') below the top level of '" + F->name() + "'");
          else if (D->arrayDims().size() > 1)
            reject("multi-dimensional __shared__ array ('" + D->name() +
                   "' in '" + F->name() + "')");
          continue;
        }
        bool Eligible = D->init() && !D->isArray() && !D->type().isDim3() &&
                        countAssignments(F, D->name()) == 0 &&
                        isStructuralExpr(D->init(), Allowed,
                                         /*AllowThreadIdx=*/true);
        bool Crosses = false;
        for (size_t J = I + 1; J < Stmts.size() && !Crosses; ++J) {
          if (Seg[J] == Seg[I] || Seg[J] == -1)
            continue;
          forEachExpr(Stmts[J], [&](const Expr *E) {
            if (const auto *R = dyn_cast<DeclRefExpr>(E))
              if (R->name() == D->name())
                Crosses = true;
          });
        }
        if (Crosses && !Eligible)
          reject("per-thread local '" + D->name() + "' in '" + F->name() +
                 "' is live across __syncthreads and cannot be "
                 "rematerialized");
        if (Eligible)
          Allowed.insert(D->name());
      }
    }
    if (!Result.Serializable)
      return;

    // Pass C: descend into barrier-bearing loops and blocks (after pass B
    // so rematerializable outer locals are visible to inner initializers).
    for (const Stmt *S : Recurse) {
      if (const auto *For = dyn_cast<ForStmt>(S))
        checkBarrierLoop(For);
      else if (const auto *CS = dyn_cast<CompoundStmt>(S))
        checkLevel(CS->body(), /*BodyTop=*/false);
      if (!Result.Serializable)
        return;
    }
  }
};

/// The strict per-callee analysis: segmentation cannot cross a call
/// boundary, so any barrier/warp primitive or shared declaration reached
/// through a __device__ callee rules serialization out (the original
/// Section III-C rule).
void analyzeCalleeBody(const FunctionDecl *F, const TranslationUnit *TU,
                       std::unordered_set<std::string> &Visited,
                       Transformability &Result) {
  if (!F->body() || !Visited.insert(F->name()).second)
    return;

  forEachStmt(const_cast<CompoundStmt *>(F->body()), [&](Stmt *S) {
    if (auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *D : DS->decls())
        if (D->isShared()) {
          Result.Serializable = false;
          Result.Reasons.push_back("uses shared memory ('" + D->name() +
                                   "' in '" + F->name() + "')");
        }
      return;
    }
    auto *Call = dyn_cast<CallExpr>(S);
    if (!Call)
      return;
    std::string Callee = Call->calleeName();
    if (Callee.empty())
      return;
    if (isBarrierOrWarpPrimitive(Callee)) {
      Result.Serializable = false;
      Result.Reasons.push_back("performs barrier/warp synchronization ('" +
                               Callee + "' in '" + F->name() + "')");
      return;
    }
    if (TU) {
      if (const FunctionDecl *Target = TU->findFunction(Callee))
        if (Target->qualifiers().Device)
          analyzeCalleeBody(Target, TU, Visited, Result);
    }
  });
}

/// An atomic builtin inside a loop condition is the inter-block spin-wait
/// idiom: the loop terminates only when *another block* flips the flag, so
/// collapsing the grid into one serial thread deadlocks it.
void checkAtomicSpinWait(const FunctionDecl *F, Transformability &Result) {
  forEachStmt(F->body(), [&](const Stmt *S) {
    const Expr *Cond = nullptr;
    if (const auto *W = dyn_cast<WhileStmt>(S))
      Cond = W->cond();
    else if (const auto *D = dyn_cast<DoStmt>(S))
      Cond = D->cond();
    else if (const auto *Fo = dyn_cast<ForStmt>(S))
      Cond = Fo->cond();
    if (!Cond)
      return;
    forEachExpr(Cond, [&](const Expr *E) {
      const auto *Call = dyn_cast<CallExpr>(E);
      if (!Call)
        return;
      std::string Name = Call->calleeName();
      if (startsWith(Name, "atomic")) {
        Result.Serializable = false;
        Result.Reasons.push_back(
            "inter-block synchronization through an atomic spin-wait ('" +
            Name + "' in a loop condition of '" + F->name() + "')");
      }
    });
  });
}

} // namespace

Transformability dpo::analyzeSerializability(const FunctionDecl *Child,
                                             const TranslationUnit *TU) {
  Transformability Result;
  if (!Child->body())
    return Result;

  bool HasBarrier = false;
  bool HasShared = false;
  std::unordered_set<std::string> Visited;
  Visited.insert(Child->name());

  forEachStmt(const_cast<CompoundStmt *>(Child->body()), [&](Stmt *S) {
    if (auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *D : DS->decls())
        if (D->isShared())
          HasShared = true;
      return;
    }
    auto *Call = dyn_cast<CallExpr>(S);
    if (!Call)
      return;
    std::string Callee = Call->calleeName();
    if (Callee.empty())
      return;
    if (Callee == "__syncthreads") {
      HasBarrier = true; // Structurally serializable; validated below.
      return;
    }
    if (isBarrierOrWarpPrimitive(Callee)) {
      Result.Serializable = false;
      Result.Reasons.push_back("performs warp-level synchronization ('" +
                               Callee + "' in '" + Child->name() + "')");
      return;
    }
    if (TU) {
      if (const FunctionDecl *Target = TU->findFunction(Callee))
        if (Target->qualifiers().Device)
          analyzeCalleeBody(Target, TU, Visited, Result);
    }
  });

  checkAtomicSpinWait(Child, Result);

  if ((HasBarrier || HasShared) && Result.Serializable) {
    if (containsReturnStmt(Child->body())) {
      Result.Serializable = false;
      Result.Reasons.push_back("early return in barrier kernel '" +
                               Child->name() +
                               "' (a returned thread skips later segments)");
    } else {
      BarrierStructureChecker(Child, Result).run();
    }
    if (Result.Serializable)
      Result.NeedsBarrierSegmentation = true;
  }
  return Result;
}
