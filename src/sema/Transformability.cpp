//===--- Transformability.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sema/Transformability.h"

#include "ast/Walk.h"
#include "support/Casting.h"
#include "support/StringUtils.h"

#include <unordered_set>

using namespace dpo;

bool dpo::isBarrierOrWarpPrimitive(const std::string &Name) {
  static const std::unordered_set<std::string> Exact = {
      "__syncthreads",       "__syncthreads_count", "__syncthreads_and",
      "__syncthreads_or",    "__syncwarp",          "__activemask",
      "__ballot_sync",       "__any_sync",          "__all_sync",
      "__uni_sync",          "__ballot",            "__any",
      "__all",
  };
  if (Exact.count(Name))
    return true;
  // __shfl_sync, __shfl_up_sync, __shfl_down_sync, __shfl_xor_sync, legacy
  // __shfl*, and the __reduce_*_sync family.
  if (startsWith(Name, "__shfl") || startsWith(Name, "__reduce_"))
    return true;
  return false;
}

namespace {

void analyzeBody(const FunctionDecl *F, const TranslationUnit *TU,
                 std::unordered_set<std::string> &Visited,
                 Transformability &Result) {
  if (!F->body() || !Visited.insert(F->name()).second)
    return;

  forEachStmt(const_cast<CompoundStmt *>(F->body()), [&](Stmt *S) {
    if (auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *D : DS->decls())
        if (D->isShared()) {
          Result.Serializable = false;
          Result.Reasons.push_back("uses shared memory ('" + D->name() +
                                   "' in '" + F->name() + "')");
        }
      return;
    }
    auto *Call = dyn_cast<CallExpr>(S);
    if (!Call)
      return;
    std::string Callee = Call->calleeName();
    if (Callee.empty())
      return;
    if (isBarrierOrWarpPrimitive(Callee)) {
      Result.Serializable = false;
      Result.Reasons.push_back("performs barrier/warp synchronization ('" +
                               Callee + "' in '" + F->name() + "')");
      return;
    }
    // Transitive: follow __device__ callees defined in this TU.
    if (TU) {
      if (const FunctionDecl *Target = TU->findFunction(Callee))
        if (Target->qualifiers().Device)
          analyzeBody(Target, TU, Visited, Result);
    }
  });
}

} // namespace

Transformability dpo::analyzeSerializability(const FunctionDecl *Child,
                                             const TranslationUnit *TU) {
  Transformability Result;
  std::unordered_set<std::string> Visited;
  analyzeBody(Child, TU, Visited, Result);
  return Result;
}
