//===--- CanonicalizePass.h - Launch-dim canonicalization --------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Normalizes launch grid-dimension expressions into the spellings the
/// Fig. 4 pattern matcher (sema/GridDimAnalysis.h) recognizes, so the
/// thresholding and coarsening passes match more launch sites without
/// widening the matcher itself:
///
///  - `X >> k` with a literal k becomes `X / 2^k`. Shift-spelled divisions
///    contain no Div node, so the matcher reports "no division found";
///    grid dimensions are non-negative block counts, making the rewrite
///    exact.
///  - `a << b` / `a * b` / `a + b` / `a - b` over two integer literals
///    folds to one literal. The matcher strips literal adjustments from
///    ceil-division dividends by structural equality, so `(n + (1<<5) - 1)
///    / 32` only matches once `(1<<5)` has collapsed to `32`.
///
/// Both rewrites also apply to the initializer of an assigned-once local
/// the grid dimension refers to (the matcher follows such variables), and
/// to every component of a `dim3(...)` grid constructor.
///
/// The pass only touches expressions *feeding* launch configurations; the
/// LaunchExpr nodes themselves stay in place, so the cached launch-site
/// analysis remains exact.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_CANONICALIZEPASS_H
#define DPO_TRANSFORM_CANONICALIZEPASS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "transform/PassManager.h"

#include <string>
#include <vector>

namespace dpo {

struct CanonicalizeResult {
  /// Shift-spelled divisions rewritten to `/` form.
  unsigned NormalizedShiftDivs = 0;
  /// Literal-literal arithmetic collapsed to a single literal.
  unsigned FoldedLiterals = 0;
  /// Functions whose bodies were mutated — the invalidation scope.
  std::vector<const FunctionDecl *> TouchedFunctions;

  unsigned total() const { return NormalizedShiftDivs + FoldedLiterals; }
  bool ok() const { return true; } ///< Normalization never fails the build.
};

/// Canonicalizes the launch-dimension expressions of every launch site in
/// \p TU, in place, consuming \p AM's cached launch sites.
CanonicalizeResult applyCanonicalize(ASTContext &Ctx, TranslationUnit *TU,
                                     DiagnosticEngine &Diags,
                                     AnalysisManager &AM);

/// Standalone form: runs with a private AnalysisManager.
CanonicalizeResult applyCanonicalize(ASTContext &Ctx, TranslationUnit *TU,
                                     DiagnosticEngine &Diags);

/// The canonicalizer as a pipeline pass. Run it ahead of threshold/coarsen
/// so their grid-dimension matcher sees canonical spellings. Preserves the
/// launch-site analysis (only subexpressions inside launch configurations
/// are replaced, never the launch nodes) and transformability (child
/// kernel bodies are untouched); grid-dim and purity caches are dropped
/// for the mutated callers.
class CanonicalizePass : public TransformPass {
public:
  CanonicalizePass() = default;

  std::string name() const override { return "canonicalize"; }
  std::string repr() const override { return "canonicalize"; }
  PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                        AnalysisManager &AM, DiagnosticEngine &Diags) override;

  const CanonicalizeResult &result() const { return Result; }

private:
  CanonicalizeResult Result;
};

} // namespace dpo

#endif // DPO_TRANSFORM_CANONICALIZEPASS_H
