//===--- BuiltinRewrite.h - Remapping CUDA built-in variables ----------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All three passes rewrite uses of the reserved index/dimension variables
/// inside (cloned) child bodies:
///
///   thresholding:  blockIdx.x -> _bx,   threadIdx.x -> _tx,
///                  gridDim -> _gDim,    blockDim -> _bDim
///   coarsening:    blockIdx.x -> _bx,   gridDim -> _gDim
///   aggregation:   blockIdx.x -> _bx,   gridDim.x -> _gDim,
///                  blockDim.x -> _bDim
///
/// A remap entry can substitute a whole builtin (gridDim -> _gDim, keeping
/// `.x` member accesses) or a single component (blockIdx.x -> scalar _bx).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_BUILTINREWRITE_H
#define DPO_TRANSFORM_BUILTINREWRITE_H

#include "ast/ASTContext.h"
#include "ast/Stmt.h"
#include "support/Diagnostics.h"
#include "transform/PassManager.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace dpo {

struct BuiltinRemap {
  /// Replacement variable names for `<builtin>.x/.y/.z`; empty = leave as is.
  std::string X, Y, Z;
  /// If set, replace the builtin wholesale (member accesses preserved);
  /// takes precedence over component renames being empty.
  std::string Whole;
  /// When false (default), a component use without a replacement is an
  /// error — the builtin will not exist in the rewritten context (e.g. the
  /// serial version of a kernel). When true, unmapped components are left
  /// untouched — they remain valid (e.g. blockIdx.y under x-only
  /// coarsening).
  bool AllowUnmappedComponents = false;
};

/// Rewrites uses of reserved variables under \p Root. Keys of \p Map are
/// builtin names ("blockIdx", "gridDim", ...). Reports a diagnostic for a
/// bare (member-less) use of a builtin that only has component renames.
/// Returns true if any node was replaced.
bool rewriteBuiltins(ASTContext &Ctx, Stmt *Root,
                     const std::unordered_map<std::string, BuiltinRemap> &Map,
                     DiagnosticEngine &Diags);

/// Returns true if \p Root references `<Builtin>.<Component>` anywhere.
bool usesBuiltinComponent(const Stmt *Root, const std::string &Builtin,
                          const std::string &Component);

/// Every name declared by \p Fn: parameters plus all local declarations
/// under the body. Synthesizing passes collect these before inventing
/// loop/config variables, so a kernel that was already transformed (the
/// coarsening pass's `_bx` grid-stride variable, a serial helper's
/// `_gDim` parameter) can be transformed again without the fresh names
/// shadowing — or being captured by — what an earlier pass generated.
std::unordered_set<std::string> declaredNames(const FunctionDecl *Fn);

/// The first of Base, Base_0, Base_1, ... not in \p Taken; the chosen
/// name is inserted into \p Taken and returned.
std::string freshVarName(std::unordered_set<std::string> &Taken,
                         const std::string &Base);

/// The builtin remapping exposed as a standalone pipeline pass — a
/// building block for pipeline experiments ("builtin-rewrite[gridDim=_gd:
/// blockIdx.x=_bx]" renames builtins across every kernel body). Unmapped
/// components are left untouched, so partial maps are safe. With an empty
/// map the pass is the identity and preserves every analysis.
class BuiltinRewritePass : public TransformPass {
public:
  explicit BuiltinRewritePass(
      std::unordered_map<std::string, BuiltinRemap> Map = {})
      : Map(std::move(Map)) {}

  std::string name() const override { return "builtin-rewrite"; }
  std::string repr() const override;
  PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                        AnalysisManager &AM, DiagnosticEngine &Diags) override;

  const std::unordered_map<std::string, BuiltinRemap> &map() const {
    return Map;
  }

private:
  std::unordered_map<std::string, BuiltinRemap> Map;
};

} // namespace dpo

#endif // DPO_TRANSFORM_BUILTINREWRITE_H
