//===--- Pipeline.cpp -----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "profile/Profile.h"

using namespace dpo;

void dpo::buildPassPipeline(PassManager &PM, const PipelineOptions &Options) {
  if (Options.EnableThresholding)
    PM.addPass(std::make_unique<ThresholdingPass>(Options.Thresholding));
  if (Options.EnableCoarsening)
    PM.addPass(std::make_unique<CoarseningPass>(Options.Coarsening));
  if (Options.EnableAggregation)
    PM.addPass(std::make_unique<AggregationPass>(Options.Aggregation));
}

PassPipelineConfig dpo::pipelineConfigFrom(const PipelineOptions &Options) {
  PassPipelineConfig Config;
  Config.Thresholding = Options.Thresholding;
  Config.Coarsening = Options.Coarsening;
  Config.Aggregation = Options.Aggregation;
  Config.Profile = Options.Profile;
  return Config;
}

PassPipelineConfig dpo::literalKnobConfig(const LaunchProfile *Profile) {
  PassPipelineConfig Config;
  Config.Thresholding.Spelling = KnobSpelling::Literal;
  Config.Coarsening.Spelling = KnobSpelling::Literal;
  Config.Speculation.Spelling = KnobSpelling::Literal;
  Config.Aggregation.Spelling = KnobSpelling::Literal;
  Config.Profile = Profile;
  return Config;
}

PipelineResult dpo::runPipeline(ASTContext &Ctx, TranslationUnit *TU,
                                const PipelineOptions &Options,
                                DiagnosticEngine &Diags, AnalysisManager &AM) {
  PassManager PM;
  ThresholdingPass *Threshold = nullptr;
  CoarseningPass *Coarsen = nullptr;
  AggregationPass *Aggregate = nullptr;
  if (Options.EnableThresholding) {
    auto Pass = std::make_unique<ThresholdingPass>(Options.Thresholding);
    Threshold = Pass.get();
    PM.addPass(std::move(Pass));
  }
  if (Options.EnableCoarsening) {
    auto Pass = std::make_unique<CoarseningPass>(Options.Coarsening);
    Coarsen = Pass.get();
    PM.addPass(std::move(Pass));
  }
  if (Options.EnableAggregation) {
    auto Pass = std::make_unique<AggregationPass>(Options.Aggregation);
    Aggregate = Pass.get();
    PM.addPass(std::move(Pass));
  }

  PipelineResult Result;
  Result.Ok = PM.run(Ctx, TU, AM, Diags);
  // Passes after the first error did not run; their results stay default,
  // matching the pre-pass-manager early-return behavior.
  if (Threshold)
    Result.Thresholding = Threshold->result();
  if (Coarsen)
    Result.Coarsening = Coarsen->result();
  if (Aggregate)
    Result.Aggregation = Aggregate->result();
  return Result;
}

PipelineResult dpo::runPipeline(ASTContext &Ctx, TranslationUnit *TU,
                                const PipelineOptions &Options,
                                DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return runPipeline(Ctx, TU, Options, Diags, AM);
}

std::string dpo::transformSource(std::string_view Source,
                                 const PipelineOptions &Options,
                                 DiagnosticEngine &Diags) {
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return std::string();
  PipelineResult Result = runPipeline(Ctx, TU, Options, Diags);
  if (!Result.Ok)
    return std::string();
  return printTranslationUnit(TU);
}

std::string dpo::transformSourceWithPipeline(std::string_view Source,
                                             std::string_view PipelineText,
                                             const PassPipelineConfig &Config,
                                             DiagnosticEngine &Diags,
                                             std::string *StatsReport) {
  PassManager PM;
  std::string Error;
  if (!parsePassPipeline(PM, PipelineText, Config, Error)) {
    Diags.error(SourceLocation(), "invalid pass pipeline: " + Error);
    return std::string();
  }

  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return std::string();

  AnalysisManager AM(Ctx, TU);
  bool Ok = PM.run(Ctx, TU, AM, Diags);
  if (StatsReport)
    *StatsReport = PM.statsReport(AM);
  if (!Ok)
    return std::string();
  return printTranslationUnit(TU);
}

bool dpo::canonicalPipelineText(std::string_view PipelineText,
                                const PassPipelineConfig &Config,
                                std::string &Canonical, std::string &Error) {
  if (PipelineText.empty()) {
    Canonical.clear();
    return true;
  }
  PassManager PM;
  if (!parsePassPipeline(PM, PipelineText, Config, Error))
    return false;
  Canonical = PM.pipelineText();
  return true;
}

namespace {

const char *spellingName(KnobSpelling S) {
  return S == KnobSpelling::Macro ? "macro" : "literal";
}

} // namespace

std::string dpo::knobSignature(const PassPipelineConfig &Config) {
  std::string S;
  auto Field = [&](const char *Key, const std::string &Value) {
    S += Key;
    S += '=';
    S += Value;
    S += ';';
  };
  const ThresholdingOptions &T = Config.Thresholding;
  Field("thr", std::to_string(T.Threshold));
  Field("thr.spell", spellingName(T.Spelling));
  Field("thr.macro", T.MacroName);
  Field("thr.fallback", T.FallbackToTotalThreads ? "1" : "0");
  Field("thr.profile", T.UseProfile ? "1" : "0");
  const CoarseningOptions &C = Config.Coarsening;
  Field("cf", std::to_string(C.Factor));
  Field("cf.spell", spellingName(C.Spelling));
  Field("cf.macro", C.MacroName);
  Field("cf.profile", C.UseProfile ? "1" : "0");
  const SpeculationOptions &Sp = Config.Speculation;
  Field("spec", std::to_string(Sp.MaxThreads));
  Field("spec.spell", spellingName(Sp.Spelling));
  Field("spec.macro", Sp.MacroName);
  Field("spec.profile", Sp.UseProfile ? "1" : "0");
  const AggregationOptions &A = Config.Aggregation;
  Field("agg", aggGranularityName(A.Granularity));
  Field("agg.group", std::to_string(A.GroupSize));
  Field("agg.spell", spellingName(A.Spelling));
  Field("agg.macro", A.GroupSizeMacroName);
  Field("agg.thr", A.UseAggregationThreshold
                       ? std::to_string(A.AggregationThreshold)
                       : std::string("off"));
  Field("agg.thrmacro", A.AggThresholdMacroName);
  Field("agg.wrapper", A.EmitHostWrapper ? "1" : "0");
  // A profile changes what profile-mode passes emit; hash its canonical
  // textual serialization so distinct profiles never alias. (Passes copy
  // the per-option Profile pointers from this one in pipeline parsing.)
  Field("profile",
        Config.Profile ? serializeProfile(*Config.Profile) : std::string());
  return S;
}
