//===--- Pipeline.cpp -----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"

using namespace dpo;

PipelineResult dpo::runPipeline(ASTContext &Ctx, TranslationUnit *TU,
                                const PipelineOptions &Options,
                                DiagnosticEngine &Diags) {
  PipelineResult Result;
  if (Options.EnableThresholding) {
    Result.Thresholding =
        applyThresholding(Ctx, TU, Options.Thresholding, Diags);
    if (Diags.hasErrors()) {
      Result.Ok = false;
      return Result;
    }
  }
  if (Options.EnableCoarsening) {
    Result.Coarsening = applyCoarsening(Ctx, TU, Options.Coarsening, Diags);
    if (Diags.hasErrors()) {
      Result.Ok = false;
      return Result;
    }
  }
  if (Options.EnableAggregation) {
    Result.Aggregation = applyAggregation(Ctx, TU, Options.Aggregation, Diags);
    if (Diags.hasErrors()) {
      Result.Ok = false;
      return Result;
    }
  }
  return Result;
}

std::string dpo::transformSource(std::string_view Source,
                                 const PipelineOptions &Options,
                                 DiagnosticEngine &Diags) {
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Source, Ctx, Diags);
  if (!TU)
    return std::string();
  PipelineResult Result = runPipeline(Ctx, TU, Options, Diags);
  if (!Result.Ok)
    return std::string();
  return printTranslationUnit(TU);
}
