//===--- PassManager.cpp --------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/PassManager.h"

#include "support/StringUtils.h"
#include "transform/AggregationPass.h"
#include "transform/BuiltinRewrite.h"
#include "transform/CanonicalizePass.h"
#include "transform/CoarseningPass.h"
#include "transform/SpeculationPass.h"
#include "transform/ThresholdingPass.h"

#include <chrono>
#include <cstdio>
#include <sstream>

using namespace dpo;

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

void PassManager::addPass(std::unique_ptr<TransformPass> Pass) {
  Passes.push_back(std::move(Pass));
}

bool PassManager::run(ASTContext &Ctx, TranslationUnit *TU,
                      AnalysisManager &AM, DiagnosticEngine &Diags) {
  Timings.clear();
  for (const std::unique_ptr<TransformPass> &Pass : Passes) {
    auto Start = std::chrono::steady_clock::now();
    PreservedAnalyses PA = Pass->run(Ctx, TU, AM, Diags);
    auto End = std::chrono::steady_clock::now();
    Timings.push_back(
        {Pass->name(),
         std::chrono::duration<double, std::milli>(End - Start).count()});
    if (Diags.hasErrors()) {
      // The failed pass may have half-mutated the tree; don't leave caches
      // describing the pre-mutation AST behind for a reused manager.
      AM.invalidateAll();
      return false;
    }
    AM.invalidate(PA);
  }
  return true;
}

std::string PassManager::pipelineText() const {
  std::string Text;
  for (const std::unique_ptr<TransformPass> &Pass : Passes) {
    if (!Text.empty())
      Text += ",";
    Text += Pass->repr();
  }
  return Text;
}

std::string PassManager::statsReport(const AnalysisManager &AM) const {
  std::ostringstream OS;
  OS << "pass timings\n";
  double Total = 0.0;
  for (const PassTiming &T : Timings) {
    char Line[96];
    std::snprintf(Line, sizeof(Line), "  %-17s %9.3f ms\n", T.Name.c_str(),
                  T.Millis);
    OS << Line;
    Total += T.Millis;
  }
  char Line[96];
  std::snprintf(Line, sizeof(Line), "  %-17s %9.3f ms\n", "total", Total);
  OS << Line;
  OS << AM.statsReport();
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Parameter parsing helpers
//===----------------------------------------------------------------------===//

namespace {

/// Decimal unsigned parser for pipeline parameters: rejects empty strings,
/// non-digits, zero, and values that overflow 32 bits (the same accept set
/// as the CLI's --threshold= and friends).
bool parsePassUInt(std::string_view Text, unsigned &Out) {
  return parsePositiveU32(Text, Out) == ParseUIntStatus::Ok;
}

/// Handles the parameters shared by the knob passes ("literal"/"macro").
/// Returns true if \p Param was consumed.
bool applySpellingParam(std::string_view Param, KnobSpelling &Spelling) {
  if (Param == "literal") {
    Spelling = KnobSpelling::Literal;
    return true;
  }
  if (Param == "macro") {
    Spelling = KnobSpelling::Macro;
    return true;
  }
  return false;
}

std::unique_ptr<TransformPass> makeThresholdPass(std::string_view Params,
                                                 const PassPipelineConfig &C,
                                                 std::string &Error) {
  ThresholdingOptions O = C.Thresholding;
  if (!Params.empty()) {
    for (std::string_view P : split(Params, ':')) {
      if (P == "fallback")
        O.FallbackToTotalThreads = true;
      else if (P == "profile") {
        O.UseProfile = true;
        O.Profile = C.Profile;
      } else if (applySpellingParam(P, O.Spelling))
        ;
      else if (!parsePassUInt(P, O.Threshold)) {
        Error = "threshold: invalid parameter '" + std::string(P) +
                "' (expected a positive integer, 'profile', 'fallback', "
                "'literal', or 'macro')";
        return nullptr;
      }
    }
  }
  return std::make_unique<ThresholdingPass>(O);
}

std::unique_ptr<TransformPass> makeCoarsenPass(std::string_view Params,
                                               const PassPipelineConfig &C,
                                               std::string &Error) {
  CoarseningOptions O = C.Coarsening;
  if (!Params.empty()) {
    for (std::string_view P : split(Params, ':')) {
      if (P == "profile") {
        O.UseProfile = true;
        O.Profile = C.Profile;
      } else if (applySpellingParam(P, O.Spelling))
        ;
      else if (!parsePassUInt(P, O.Factor)) {
        Error = "coarsen: invalid parameter '" + std::string(P) +
                "' (expected a positive integer, 'profile', 'literal', or "
                "'macro')";
        return nullptr;
      }
    }
  }
  return std::make_unique<CoarseningPass>(O);
}

std::unique_ptr<TransformPass> makeSpeculatePass(std::string_view Params,
                                                 const PassPipelineConfig &C,
                                                 std::string &Error) {
  SpeculationOptions O = C.Speculation;
  if (!Params.empty()) {
    for (std::string_view P : split(Params, ':')) {
      if (P == "profile") {
        O.UseProfile = true;
        O.Profile = C.Profile;
      } else if (applySpellingParam(P, O.Spelling))
        ;
      else if (!parsePassUInt(P, O.MaxThreads)) {
        Error = "speculate: invalid parameter '" + std::string(P) +
                "' (expected a positive integer, 'profile', 'literal', or "
                "'macro')";
        return nullptr;
      }
    }
  }
  return std::make_unique<SpeculationPass>(O);
}

std::unique_ptr<TransformPass> makeAggregatePass(std::string_view Params,
                                                 const PassPipelineConfig &C,
                                                 std::string &Error) {
  AggregationOptions O = C.Aggregation;
  if (!Params.empty()) {
    for (std::string_view P : split(Params, ':')) {
      if (P == "none")
        O.Granularity = AggGranularity::None;
      else if (P == "warp")
        O.Granularity = AggGranularity::Warp;
      else if (P == "block")
        O.Granularity = AggGranularity::Block;
      else if (P == "multiblock")
        O.Granularity = AggGranularity::MultiBlock;
      else if (P == "grid")
        O.Granularity = AggGranularity::Grid;
      else if (startsWith(P, "agg-threshold=")) {
        O.UseAggregationThreshold = true;
        std::string_view Value = P.substr(14);
        if (!parsePassUInt(Value, O.AggregationThreshold)) {
          Error = "aggregate: invalid agg-threshold value '" +
                  std::string(Value) + "' (expected a positive integer)";
          return nullptr;
        }
      } else if (applySpellingParam(P, O.Spelling))
        ;
      else if (!parsePassUInt(P, O.GroupSize)) {
        Error = "aggregate: invalid parameter '" + std::string(P) +
                "' (expected a granularity, a positive group size, "
                "'agg-threshold=N', 'literal', or 'macro')";
        return nullptr;
      }
    }
  }
  return std::make_unique<AggregationPass>(O);
}

std::unique_ptr<TransformPass>
makeCanonicalizePass(std::string_view Params, const PassPipelineConfig &,
                     std::string &Error) {
  if (!Params.empty()) {
    Error = "canonicalize: takes no parameters";
    return nullptr;
  }
  return std::make_unique<CanonicalizePass>();
}

std::unique_ptr<TransformPass>
makeBuiltinRewritePass(std::string_view Params, const PassPipelineConfig &,
                       std::string &Error) {
  std::unordered_map<std::string, BuiltinRemap> Map;
  bool Strict = false;
  if (!Params.empty()) {
    for (std::string_view P : split(Params, ':')) {
      if (P == "strict") {
        Strict = true;
        continue;
      }
      size_t Eq = P.find('=');
      if (Eq == std::string_view::npos || Eq == 0 || Eq + 1 == P.size()) {
        Error = "builtin-rewrite: invalid parameter '" + std::string(P) +
                "' (expected <builtin>[.x|.y|.z]=<name>, or 'strict')";
        return nullptr;
      }
      std::string Key(P.substr(0, Eq));
      std::string Value(P.substr(Eq + 1));
      size_t Dot = Key.find('.');
      std::string Builtin = Dot == std::string::npos ? Key : Key.substr(0, Dot);
      BuiltinRemap &Remap = Map[Builtin];
      // Pipeline-built remaps are permissive by construction: anything the
      // user did not name stays as written.
      Remap.AllowUnmappedComponents = true;
      if (Dot == std::string::npos) {
        Remap.Whole = Value;
      } else {
        std::string Component = Key.substr(Dot + 1);
        if (Component == "x")
          Remap.X = Value;
        else if (Component == "y")
          Remap.Y = Value;
        else if (Component == "z")
          Remap.Z = Value;
        else {
          Error = "builtin-rewrite: unknown component '" + Component +
                  "' in '" + std::string(P) + "'";
          return nullptr;
        }
      }
    }
  }
  if (Strict)
    for (auto &[Name, Remap] : Map)
      Remap.AllowUnmappedComponents = false;
  return std::make_unique<BuiltinRewritePass>(std::move(Map));
}

} // namespace

//===----------------------------------------------------------------------===//
// PassRegistry
//===----------------------------------------------------------------------===//

PassRegistry::PassRegistry() {
  registerPass("canonicalize",
               "normalize launch-dimension spellings (shift-spelled "
               "divisions, literal folds) so the grid-dim matcher sees "
               "canonical forms; run ahead of threshold/coarsen",
               makeCanonicalizePass);
  registerPass("threshold",
               "serialize small child grids behind a launch threshold "
               "(params: N, 'fallback', 'literal'/'macro')",
               makeThresholdPass);
  registerPass("coarsen",
               "merge child thread blocks with a block-strided loop "
               "(params: factor, 'literal'/'macro')",
               makeCoarsenPass);
  registerPass("speculate",
               "serialize child launches under a small-grid assumption "
               "behind a runtime guard with a fallback launch (params: "
               "max threads, 'profile', 'literal'/'macro')",
               makeSpeculatePass);
  registerPass("aggregate",
               "combine child grids into one launch per group (params: "
               "none|warp|block|multiblock|grid, group size, "
               "'literal'/'macro')",
               makeAggregatePass);
  registerPass("builtin-rewrite",
               "rename CUDA builtin index variables across kernel bodies "
               "(params: <builtin>[.x|.y|.z]=<name>)",
               makeBuiltinRewritePass);
}

PassRegistry &PassRegistry::global() {
  static PassRegistry Registry;
  return Registry;
}

bool PassRegistry::registerPass(std::string Name, std::string Description,
                                Factory F) {
  if (contains(Name))
    return false;
  Entries.push_back({std::move(Name), std::move(Description), std::move(F)});
  return true;
}

bool PassRegistry::contains(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return true;
  return false;
}

std::unique_ptr<TransformPass>
PassRegistry::create(std::string_view Name, std::string_view Params,
                     const PassPipelineConfig &Config,
                     std::string &Error) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return E.Make(Params, Config, Error);
  Error = "unknown pass '" + std::string(Name) + "'";
  return nullptr;
}

std::vector<std::pair<std::string, std::string>>
PassRegistry::entries() const {
  std::vector<std::pair<std::string, std::string>> Result;
  for (const Entry &E : Entries)
    Result.emplace_back(E.Name, E.Description);
  return Result;
}

//===----------------------------------------------------------------------===//
// Pipeline text parsing
//===----------------------------------------------------------------------===//

bool dpo::parsePassPipeline(PassManager &PM, std::string_view Text,
                            const PassPipelineConfig &Config,
                            std::string &Error) {
  if (trim(Text).empty()) {
    Error = "empty pass pipeline";
    return false;
  }

  for (std::string_view Spec : split(Text, ',')) {
    Spec = trim(Spec);
    if (Spec.empty()) {
      Error = "empty pass name in pipeline '" + std::string(Text) + "'";
      return false;
    }
    std::string_view Name = Spec;
    std::string_view Params;
    size_t Bracket = Spec.find('[');
    if (Bracket != std::string_view::npos) {
      if (Spec.back() != ']') {
        Error = "missing ']' in pass '" + std::string(Spec) + "'";
        return false;
      }
      Name = Spec.substr(0, Bracket);
      Params = Spec.substr(Bracket + 1, Spec.size() - Bracket - 2);
    } else if (Spec.find(']') != std::string_view::npos) {
      Error = "stray ']' in pass '" + std::string(Spec) + "'";
      return false;
    }
    std::unique_ptr<TransformPass> Pass =
        PassRegistry::global().create(Name, Params, Config, Error);
    if (!Pass)
      return false;
    PM.addPass(std::move(Pass));
  }
  return true;
}
