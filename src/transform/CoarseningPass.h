//===--- CoarseningPass.h - Section IV: thread-block coarsening --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's coarsening transformation (Fig. 6): the child
/// kernel gains an `_gDim` parameter carrying the original grid dimension
/// and a block-strided loop
///
///   for (_bx = blockIdx.x; _bx < _gDim.x; _bx += gridDim.x) { body }
///
/// so one coarsened block executes the work of several original blocks.
/// Launch sites are rewritten to divide the x grid dimension by the
/// coarsening factor (`_CFACTOR`) and to pass the original dimension.
///
/// Coarsening is applied to the x dimension only; for multi-dimensional
/// grids the y/z dimensions are untouched (their coarsened extents equal
/// the originals, so no loops are needed). Barriers inside the body remain
/// correct: the loop's trip count is uniform across the block.
///
/// Kernels are modified in place, so *every* launch of a coarsened kernel
/// is patched: dynamic launches get the ceiling-divided configuration;
/// host-side launches of the same kernel are patched with an identity
/// configuration (original grid, factor 1) to stay semantically unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_COARSENINGPASS_H
#define DPO_TRANSFORM_COARSENINGPASS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "transform/PassManager.h"
#include "transform/PassOptions.h"

#include <string>
#include <vector>

namespace dpo {

struct CoarseningResult {
  unsigned CoarsenedKernels = 0;
  unsigned RewrittenLaunches = 0;
  unsigned SkippedLaunches = 0;
  /// Coarsened kernels whose body contained launches (nested dynamic
  /// parallelism). Coarsening clones the body, duplicating those launch
  /// nodes, so a nonzero count invalidates the launch-site analysis.
  unsigned CoarsenedNestedLaunchKernels = 0;
  /// The functions the pass mutated: coarsened child kernels (new bodies,
  /// extra parameter) and every caller whose launch was patched — the
  /// scope of the analysis invalidation.
  std::vector<const FunctionDecl *> TouchedFunctions;
  std::vector<std::string> SkipReasons;
};

/// Applies coarsening to every child kernel of a dynamic launch in \p TU,
/// in place, consuming \p AM's analyses.
CoarseningResult applyCoarsening(ASTContext &Ctx, TranslationUnit *TU,
                                 const CoarseningOptions &Options,
                                 DiagnosticEngine &Diags, AnalysisManager &AM);

/// Standalone form: runs with a private AnalysisManager.
CoarseningResult applyCoarsening(ASTContext &Ctx, TranslationUnit *TU,
                                 const CoarseningOptions &Options,
                                 DiagnosticEngine &Diags);

/// The coarsening transformation as a pipeline pass. Launch sites survive
/// (the patched launches are the original LaunchExpr nodes) unless a
/// coarsened kernel contained nested launches; coarsened kernel bodies are
/// rebuilt, so transformability/grid-dim/purity results are dropped.
class CoarseningPass : public TransformPass {
public:
  explicit CoarseningPass(CoarseningOptions Options = {})
      : Options(std::move(Options)) {}

  std::string name() const override { return "coarsen"; }
  std::string repr() const override;
  PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                        AnalysisManager &AM, DiagnosticEngine &Diags) override;

  const CoarseningOptions &options() const { return Options; }
  const CoarseningResult &result() const { return Result; }

private:
  CoarseningOptions Options;
  CoarseningResult Result;
};

} // namespace dpo

#endif // DPO_TRANSFORM_COARSENINGPASS_H
