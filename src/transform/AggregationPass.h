//===--- AggregationPass.h - Section V: kernel launch aggregation ------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's aggregation transformation (Fig. 7), including
/// the new multi-block granularity. Child grids launched by the parent
/// threads of one *group* are combined into a single aggregated launch:
///
///   granularity   group                    aggregated launch performed by
///   -----------   ----------------------   ------------------------------
///   warp          32 consecutive threads   last thread of the group
///   block         one parent block         last (only) block of the group
///   multi-block   _AGG_SIZE parent blocks  last block of the group
///   grid          the whole parent grid    the host, after the parent
///
/// The transformation follows Fig. 7: each launching parent thread
/// atomically increments a packed 64-bit {parent count, grid-dim sum}
/// counter for its group (producing its slot index and the exclusive scan
/// of grid dimensions in one atomic), stores its arguments and
/// configuration into per-group buffer segments, and atomicMax's the block
/// dimension. A group-wide finished counter replaces the impossible
/// inter-block barrier; the last arrival launches `<child>_agg`, which
/// binary-searches the scanned grid-dimension array to find its parent and
/// recover its original configuration.
///
/// Unifications/deviations (documented; semantics preserved, the
/// performance differences are modeled in the timing simulator):
///  - block granularity reuses the group-counter machinery with a group
///    size of one block (the paper's version can use an in-block barrier
///    and shared-memory scan; same observable behavior);
///  - warp granularity counts finished *threads* (32 per group) with
///    atomics instead of warp intrinsics;
///  - the aggregation threshold (Section V-B) is generated for block
///    granularity: after the in-block barrier, if fewer parents than the
///    threshold participated, each participating thread launches its own
///    child grid directly.
///
/// Requirements checked per launch site (diagnosed + skipped otherwise):
/// 1-D launch configurations (scalar, not dim3), parent kernels without
/// early returns (the epilogue must post-dominate), and at most one
/// execution of the launch site per parent thread (buffer capacity; this
/// holds for all the paper's benchmarks).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_AGGREGATIONPASS_H
#define DPO_TRANSFORM_AGGREGATIONPASS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "transform/PassManager.h"
#include "transform/PassOptions.h"

#include <string>
#include <vector>

namespace dpo {

struct AggregationResult {
  unsigned TransformedLaunches = 0;
  unsigned SkippedLaunches = 0;
  unsigned GeneratedKernels = 0;
  unsigned GeneratedWrappers = 0;
  std::vector<std::string> SkipReasons;
};

/// Applies aggregation to every dynamic launch site in \p TU, in place,
/// consuming \p AM's analyses.
AggregationResult applyAggregation(ASTContext &Ctx, TranslationUnit *TU,
                                   const AggregationOptions &Options,
                                   DiagnosticEngine &Diags,
                                   AnalysisManager &AM);

/// Standalone form: runs with a private AnalysisManager.
AggregationResult applyAggregation(ASTContext &Ctx, TranslationUnit *TU,
                                   const AggregationOptions &Options,
                                   DiagnosticEngine &Diags);

/// The aggregation transformation as a pipeline pass. Aggregation replaces
/// launch statements with buffer-store sequences and splices freshly parsed
/// kernels/wrappers into the unit, so a transforming run preserves nothing.
class AggregationPass : public TransformPass {
public:
  explicit AggregationPass(AggregationOptions Options = {})
      : Options(std::move(Options)) {}

  std::string name() const override { return "aggregate"; }
  std::string repr() const override;
  PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                        AnalysisManager &AM, DiagnosticEngine &Diags) override;

  const AggregationOptions &options() const { return Options; }
  const AggregationResult &result() const { return Result; }

private:
  AggregationOptions Options;
  AggregationResult Result;
};

} // namespace dpo

#endif // DPO_TRANSFORM_AGGREGATIONPASS_H
