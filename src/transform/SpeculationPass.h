//===--- SpeculationPass.h - Speculative serialization of child launches ----===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Speculative serialization: replace a dynamic launch with a serialized
/// child run under the *assumption* that the grid is small, checked by a
/// cheap runtime guard with a fallback real launch when the assumption
/// does not hold:
///
///   { unsigned long long _specK = (gDim) * (bDim);
///     if (__dpo_spec_guard(_specK, BOUND)) { <child>_serial(args, g, b); }
///     else { <child><<<g, b>>>(args); } }
///
/// Unlike ThresholdingPass — which makes the same serialize-or-launch
/// decision but treats the knob as a tuning constant — the speculation
/// bound is an *assumption* derived from a profile
/// (LaunchProfile::siteSpeculationBound, the p90 of observed total
/// threads rounded up to a power of two), and the guard's pass/fail
/// outcome is observable: the VM compiles `__dpo_spec_guard` to a
/// dedicated opcode that counts VmStats::SpecGuardPass / SpecGuardFail,
/// so a mispredicted profile shows up in the stats instead of silently
/// costing performance. For host compilers the guard degrades to a plain
/// comparison via an emitted `#define __dpo_spec_guard(n, k) ((n) <= (k))`.
///
/// Pipeline spelling: `speculate`, `speculate[N]`, `speculate[profile]`.
/// In profile mode, sites the profile never observed are skipped — with
/// no evidence there is nothing to speculate on.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_SPECULATIONPASS_H
#define DPO_TRANSFORM_SPECULATIONPASS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "transform/PassManager.h"
#include "transform/PassOptions.h"

#include <string>
#include <vector>

namespace dpo {

struct SpeculationResult {
  unsigned SpeculatedLaunches = 0;
  unsigned SkippedLaunches = 0;
  /// Serial versions generated from child bodies that themselves contain
  /// launches; nonzero invalidates the launch-site analysis (see
  /// ThresholdingResult::SerializedNestedLaunches).
  unsigned SerializedNestedLaunches = 0;
  std::vector<const FunctionDecl *> TouchedFunctions;
  std::vector<std::string> SkipReasons;
  bool ok() const { return true; } ///< Skips never make the output invalid.
};

/// Applies speculative serialization to every eligible dynamic launch
/// site in \p TU, in place.
SpeculationResult applySpeculation(ASTContext &Ctx, TranslationUnit *TU,
                                   const SpeculationOptions &Options,
                                   DiagnosticEngine &Diags,
                                   AnalysisManager &AM);

/// Standalone form with a private AnalysisManager.
SpeculationResult applySpeculation(ASTContext &Ctx, TranslationUnit *TU,
                                   const SpeculationOptions &Options,
                                   DiagnosticEngine &Diags);

/// Speculative serialization as a pipeline pass ("speculate").
class SpeculationPass : public TransformPass {
public:
  explicit SpeculationPass(SpeculationOptions Options = {})
      : Options(std::move(Options)) {}

  std::string name() const override { return "speculate"; }
  std::string repr() const override;
  PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                        AnalysisManager &AM, DiagnosticEngine &Diags) override;

  const SpeculationOptions &options() const { return Options; }
  const SpeculationResult &result() const { return Result; }

private:
  SpeculationOptions Options;
  SpeculationResult Result;
};

} // namespace dpo

#endif // DPO_TRANSFORM_SPECULATIONPASS_H
