//===--- BuiltinRewrite.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/BuiltinRewrite.h"

#include "ast/Walk.h"
#include "support/Casting.h"

#include <algorithm>

using namespace dpo;

bool dpo::rewriteBuiltins(
    ASTContext &Ctx, Stmt *Root,
    const std::unordered_map<std::string, BuiltinRemap> &Map,
    DiagnosticEngine &Diags) {
  bool Changed = false;
  auto Replaced = [&](Expr *E) {
    Changed = true;
    return E;
  };
  rewriteExprs(Root, [&](Expr *E) -> Expr * {
    // Component form: `<builtin>.<c>`.
    if (auto *M = dyn_cast<MemberExpr>(E)) {
      auto *Base = dyn_cast<DeclRefExpr>(M->base());
      if (!Base)
        return nullptr;
      auto It = Map.find(Base->name());
      if (It == Map.end())
        return nullptr;
      const BuiltinRemap &Remap = It->second;
      const std::string *Component = nullptr;
      if (M->member() == "x")
        Component = &Remap.X;
      else if (M->member() == "y")
        Component = &Remap.Y;
      else if (M->member() == "z")
        Component = &Remap.Z;
      if (Component && !Component->empty()) {
        auto *Ref = Ctx.ref(*Component);
        Ref->setType(Type(BuiltinKind::UInt));
        Ref->setLoc(M->loc());
        return Replaced(Ref);
      }
      if (!Remap.Whole.empty()) {
        // Rename the base, keep the member access.
        auto *NewBase = Ctx.ref(Remap.Whole);
        NewBase->setType(Base->type());
        auto *NewMember =
            Ctx.create<MemberExpr>(NewBase, M->member(), M->isArrow());
        NewMember->setType(M->type());
        NewMember->setLoc(M->loc());
        return Replaced(NewMember);
      }
      if (Component && !Remap.AllowUnmappedComponents) {
        // The builtin is being remapped but this component has no target
        // (e.g. a .y use of a kernel the caller believed was 1-D).
        Diags.error(M->loc(), "use of '" + Base->name() + "." + M->member() +
                                  "' has no remap target");
        // Substitute a sentinel to avoid a cascading bare-use diagnostic.
        auto *Ref = Ctx.ref("_unmapped_" + Base->name() + "_" + M->member());
        Ref->setType(Type(BuiltinKind::UInt));
        return Replaced(Ref);
      }
      return nullptr;
    }
    return nullptr;
  });

  // Bare uses (not under a member access we rewrote above). MemberExpr bases
  // were rewritten bottom-up first, so a remaining DeclRef to a builtin with
  // a Whole mapping is a bare use; with only component mappings it is
  // unsupported.
  rewriteExprs(Root, [&](Expr *E) -> Expr * {
    auto *Ref = dyn_cast<DeclRefExpr>(E);
    if (!Ref)
      return nullptr;
    auto It = Map.find(Ref->name());
    if (It == Map.end())
      return nullptr;
    const BuiltinRemap &Remap = It->second;
    if (!Remap.Whole.empty()) {
      auto *New = Ctx.ref(Remap.Whole);
      New->setType(Ref->type());
      New->setLoc(Ref->loc());
      return Replaced(New);
    }
    // Bases of member accesses that were deliberately left untouched (and
    // bare uses, which stay valid in that mode) are fine.
    if (Remap.AllowUnmappedComponents)
      return nullptr;
    Diags.error(Ref->loc(), "bare use of reserved variable '" + Ref->name() +
                                "' cannot be remapped to scalar loop indices");
    return nullptr;
  });
  return Changed;
}

std::string BuiltinRewritePass::repr() const {
  // Deterministic spelling: builtins sorted by name, components in x/y/z
  // order, whole-renames first.
  std::vector<std::string> Names;
  for (const auto &[Name, Remap] : Map)
    Names.push_back(Name);
  std::sort(Names.begin(), Names.end());

  std::string R = "builtin-rewrite";
  std::string Params;
  bool Strict = false;
  for (const std::string &Name : Names) {
    const BuiltinRemap &Remap = Map.at(Name);
    auto Append = [&](const std::string &Key, const std::string &Value) {
      if (Value.empty())
        return;
      if (!Params.empty())
        Params += ":";
      Params += Key + "=" + Value;
    };
    Append(Name, Remap.Whole);
    Append(Name + ".x", Remap.X);
    Append(Name + ".y", Remap.Y);
    Append(Name + ".z", Remap.Z);
    Strict |= !Remap.AllowUnmappedComponents;
  }
  // Pipeline-text passes are permissive by default; a programmatically
  // built strict map must round-trip as strict too.
  if (Strict && !Params.empty())
    Params += ":strict";
  if (!Params.empty())
    R += "[" + Params + "]";
  return R;
}

PreservedAnalyses BuiltinRewritePass::run(ASTContext &Ctx, TranslationUnit *TU,
                                          AnalysisManager &AM,
                                          DiagnosticEngine &Diags) {
  if (Map.empty())
    return PreservedAnalyses::all();
  std::vector<const FunctionDecl *> Changed;
  for (Decl *D : TU->decls()) {
    auto *F = dyn_cast<FunctionDecl>(D);
    if (!F || !F->body())
      continue;
    if (rewriteBuiltins(Ctx, F->body(), Map, Diags))
      Changed.push_back(F);
  }
  if (Changed.empty())
    return PreservedAnalyses::all();
  PreservedAnalyses PA;
  // Only variable references are replaced: launch nodes and the call/shared
  // structure transformability inspects are untouched. Subexpressions of
  // grid expressions may have been rewritten in place, so grid-dim and
  // purity keys are stale — in the functions that actually changed.
  PA.preserve(AnalysisID::LaunchSites);
  PA.preserve(AnalysisID::Transformability);
  PA.limitToFunctions(std::move(Changed));
  return PA;
}

bool dpo::usesBuiltinComponent(const Stmt *Root, const std::string &Builtin,
                               const std::string &Component) {
  bool Found = false;
  forEachExpr(Root, [&](const Expr *E) {
    if (Found)
      return;
    const auto *M = dyn_cast<MemberExpr>(E);
    if (!M || M->member() != Component)
      return;
    const auto *Base = dyn_cast<DeclRefExpr>(M->base());
    if (Base && Base->name() == Builtin)
      Found = true;
  });
  return Found;
}

std::unordered_set<std::string> dpo::declaredNames(const FunctionDecl *Fn) {
  std::unordered_set<std::string> Names;
  for (const VarDecl *P : Fn->params())
    Names.insert(P->name());
  if (Fn->body())
    forEachStmt(Fn->body(), [&](const Stmt *S) {
      if (const auto *DS = dyn_cast<DeclStmt>(S))
        for (const VarDecl *D : DS->decls())
          Names.insert(D->name());
    });
  return Names;
}

std::string dpo::freshVarName(std::unordered_set<std::string> &Taken,
                              const std::string &Base) {
  std::string Name = Base;
  for (unsigned I = 0; Taken.count(Name); ++I)
    Name = Base + "_" + std::to_string(I);
  Taken.insert(Name);
  return Name;
}
