//===--- BuiltinRewrite.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/BuiltinRewrite.h"

#include "ast/Walk.h"
#include "support/Casting.h"

using namespace dpo;

void dpo::rewriteBuiltins(
    ASTContext &Ctx, Stmt *Root,
    const std::unordered_map<std::string, BuiltinRemap> &Map,
    DiagnosticEngine &Diags) {
  rewriteExprs(Root, [&](Expr *E) -> Expr * {
    // Component form: `<builtin>.<c>`.
    if (auto *M = dyn_cast<MemberExpr>(E)) {
      auto *Base = dyn_cast<DeclRefExpr>(M->base());
      if (!Base)
        return nullptr;
      auto It = Map.find(Base->name());
      if (It == Map.end())
        return nullptr;
      const BuiltinRemap &Remap = It->second;
      const std::string *Component = nullptr;
      if (M->member() == "x")
        Component = &Remap.X;
      else if (M->member() == "y")
        Component = &Remap.Y;
      else if (M->member() == "z")
        Component = &Remap.Z;
      if (Component && !Component->empty()) {
        auto *Ref = Ctx.ref(*Component);
        Ref->setType(Type(BuiltinKind::UInt));
        Ref->setLoc(M->loc());
        return Ref;
      }
      if (!Remap.Whole.empty()) {
        // Rename the base, keep the member access.
        auto *NewBase = Ctx.ref(Remap.Whole);
        NewBase->setType(Base->type());
        auto *NewMember =
            Ctx.create<MemberExpr>(NewBase, M->member(), M->isArrow());
        NewMember->setType(M->type());
        NewMember->setLoc(M->loc());
        return NewMember;
      }
      if (Component && !Remap.AllowUnmappedComponents) {
        // The builtin is being remapped but this component has no target
        // (e.g. a .y use of a kernel the caller believed was 1-D).
        Diags.error(M->loc(), "use of '" + Base->name() + "." + M->member() +
                                  "' has no remap target");
        // Substitute a sentinel to avoid a cascading bare-use diagnostic.
        auto *Ref = Ctx.ref("_unmapped_" + Base->name() + "_" + M->member());
        Ref->setType(Type(BuiltinKind::UInt));
        return Ref;
      }
      return nullptr;
    }
    return nullptr;
  });

  // Bare uses (not under a member access we rewrote above). MemberExpr bases
  // were rewritten bottom-up first, so a remaining DeclRef to a builtin with
  // a Whole mapping is a bare use; with only component mappings it is
  // unsupported.
  rewriteExprs(Root, [&](Expr *E) -> Expr * {
    auto *Ref = dyn_cast<DeclRefExpr>(E);
    if (!Ref)
      return nullptr;
    auto It = Map.find(Ref->name());
    if (It == Map.end())
      return nullptr;
    const BuiltinRemap &Remap = It->second;
    if (!Remap.Whole.empty()) {
      auto *New = Ctx.ref(Remap.Whole);
      New->setType(Ref->type());
      New->setLoc(Ref->loc());
      return New;
    }
    // Bases of member accesses that were deliberately left untouched (and
    // bare uses, which stay valid in that mode) are fine.
    if (Remap.AllowUnmappedComponents)
      return nullptr;
    Diags.error(Ref->loc(), "bare use of reserved variable '" + Ref->name() +
                                "' cannot be remapped to scalar loop indices");
    return nullptr;
  });
}

bool dpo::usesBuiltinComponent(const Stmt *Root, const std::string &Builtin,
                               const std::string &Component) {
  bool Found = false;
  forEachExpr(Root, [&](const Expr *E) {
    if (Found)
      return;
    const auto *M = dyn_cast<MemberExpr>(E);
    if (!M || M->member() != Component)
      return;
    const auto *Base = dyn_cast<DeclRefExpr>(M->base());
    if (Base && Base->name() == Builtin)
      Found = true;
  });
  return Found;
}
