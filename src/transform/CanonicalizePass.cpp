//===--- CanonicalizePass.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/CanonicalizePass.h"

#include "ast/Walk.h"
#include "sema/LaunchSites.h"
#include "sema/PurityAnalysis.h"
#include "support/Casting.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

using namespace dpo;

namespace {

/// Grid dimensions are 32-bit block counts; folds stay within int range.
constexpr uint64_t MaxFoldValue = 0x7fffffff;

/// The integer literal behind any number of parentheses, or null. Casts are
/// deliberately not stripped: a cast can change the arithmetic ((float)a/b)
/// and folding through one would not be spelling-preserving.
IntegerLiteral *asIntLit(Expr *E) {
  while (auto *P = dyn_cast_or_null<ParenExpr>(E))
    E = P->inner();
  return dyn_cast_or_null<IntegerLiteral>(E);
}

/// The single, unreassigned declaration of \p Name in \p F, or null (the
/// same resolution rule the grid-dim matcher uses to follow intermediates).
VarDecl *assignedOnceLocal(const FunctionDecl *F, const std::string &Name) {
  if (!F || !F->body() || countAssignments(F, Name) != 0)
    return nullptr;
  VarDecl *Found = nullptr;
  bool Multiple = false;
  forEachStmt(const_cast<CompoundStmt *>(F->body()), [&](Stmt *S) {
    auto *DS = dyn_cast<DeclStmt>(S);
    if (!DS)
      return;
    for (VarDecl *D : DS->decls()) {
      if (D->name() != Name)
        continue;
      if (Found)
        Multiple = true; // Shadowing; give up.
      Found = D;
    }
  });
  return Multiple ? nullptr : Found;
}

struct Counters {
  unsigned ShiftDivs = 0;
  unsigned Folds = 0;
  unsigned total() const { return ShiftDivs + Folds; }
};

/// Bottom-up normalization of one expression slot: literal-literal
/// arithmetic folds first, then shift-spelled divisions become `/` nodes
/// (children rewrite before parents, so `(n + (1<<5) - 1) >> 5` collapses
/// the inner shift to 32 before the outer one becomes `/ 32`).
void canonicalizeSlot(ASTContext &Ctx, Expr *&Slot, Counters &C) {
  rewriteExprSlot(Slot, [&](Expr *E) -> Expr * {
    // Folds leave their enclosing parentheses behind (`(1 << 5)` becomes
    // `(32)`); collapse parens around bare literals so folded constants
    // print — and structurally compare — like hand-written ones.
    if (auto *P = dyn_cast<ParenExpr>(E)) {
      if (isa<IntegerLiteral>(P->inner())) {
        ++C.Folds;
        return P->inner();
      }
      return nullptr;
    }
    auto *Bin = dyn_cast<BinaryOperator>(E);
    if (!Bin)
      return nullptr;
    IntegerLiteral *L = asIntLit(Bin->lhs());
    IntegerLiteral *R = asIntLit(Bin->rhs());

    if (L && R) {
      uint64_t A = L->value(), B = R->value(), V = 0;
      bool Folded = true;
      switch (Bin->op()) {
      case BinaryOpKind::Shl:
        Folded = B <= 30 && A <= (MaxFoldValue >> B);
        V = Folded ? A << B : 0;
        break;
      case BinaryOpKind::Shr:
        Folded = B <= 63;
        V = Folded ? A >> B : 0;
        break;
      case BinaryOpKind::Mul:
        Folded = A <= MaxFoldValue && B <= MaxFoldValue && A * B <= MaxFoldValue;
        V = Folded ? A * B : 0;
        break;
      case BinaryOpKind::Add:
        Folded = A <= MaxFoldValue && B <= MaxFoldValue && A + B <= MaxFoldValue;
        V = Folded ? A + B : 0;
        break;
      case BinaryOpKind::Sub:
        Folded = A >= B; // A negative literal would need a unary minus.
        V = Folded ? A - B : 0;
        break;
      default:
        Folded = false;
        break;
      }
      if (Folded) {
        ++C.Folds;
        auto *Lit = Ctx.intLit(V);
        Lit->setType(E->type());
        return Lit;
      }
    }

    if (Bin->op() == BinaryOpKind::Shr && R) {
      uint64_t K = R->value();
      if (K == 0 || K > 30)
        return nullptr;
      ++C.ShiftDivs;
      Expr *Dividend = Bin->lhs();
      // `/` binds tighter than `>>`: parenthesize non-primary dividends so
      // the rewritten tree reprints (and reparses) with the same grouping.
      if (!isa<ParenExpr>(Dividend) && !isa<DeclRefExpr>(Dividend) &&
          !isa<IntegerLiteral>(Dividend))
        Dividend = Ctx.paren(Dividend);
      auto *Div = Ctx.binary(BinaryOpKind::Div, Dividend,
                             Ctx.intLit(uint64_t(1) << K));
      Div->setType(E->type());
      return Div;
    }
    return nullptr;
  });
}

/// Canonicalizes one launch's grid dimension plus the initializers of every
/// assigned-once local it (transitively) refers to — the same variable
/// chain the matcher's findCount resolution walks. Returns the number of
/// rewrites performed.
unsigned canonicalizeSite(ASTContext &Ctx, const FunctionDecl *Caller,
                          LaunchExpr *L, Counters &C) {
  unsigned Before = C.total();
  canonicalizeSlot(Ctx, L->gridDimSlot(), C);

  std::unordered_set<VarDecl *> Visited;
  std::vector<VarDecl *> Work;
  auto Collect = [&](Expr *E) {
    forEachExpr(E, [&](Expr *Node) {
      if (auto *Ref = dyn_cast<DeclRefExpr>(Node))
        if (VarDecl *D = assignedOnceLocal(Caller, Ref->name()))
          if (Visited.insert(D).second)
            Work.push_back(D);
    });
  };
  Collect(L->gridDim());
  while (!Work.empty()) {
    VarDecl *D = Work.back();
    Work.pop_back();
    if (!D->init())
      continue;
    canonicalizeSlot(Ctx, D->initSlot(), C);
    Collect(D->init());
  }
  return C.total() - Before;
}

} // namespace

CanonicalizeResult dpo::applyCanonicalize(ASTContext &Ctx, TranslationUnit *TU,
                                          DiagnosticEngine &Diags,
                                          AnalysisManager &AM) {
  CanonicalizeResult Result;
  Counters C;
  for (const LaunchSite &Site : AM.launchSites()) {
    if (canonicalizeSite(Ctx, Site.Caller, Site.Launch, C) == 0)
      continue;
    if (std::find(Result.TouchedFunctions.begin(),
                  Result.TouchedFunctions.end(),
                  Site.Caller) == Result.TouchedFunctions.end())
      Result.TouchedFunctions.push_back(Site.Caller);
  }
  Result.NormalizedShiftDivs = C.ShiftDivs;
  Result.FoldedLiterals = C.Folds;
  return Result;
}

CanonicalizeResult dpo::applyCanonicalize(ASTContext &Ctx, TranslationUnit *TU,
                                          DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return applyCanonicalize(Ctx, TU, Diags, AM);
}

PreservedAnalyses CanonicalizePass::run(ASTContext &Ctx, TranslationUnit *TU,
                                        AnalysisManager &AM,
                                        DiagnosticEngine &Diags) {
  Result = applyCanonicalize(Ctx, TU, Diags, AM);
  if (Result.total() == 0)
    return PreservedAnalyses::all();
  PreservedAnalyses PA;
  // Launch nodes stay in place — only subexpressions of their grid
  // configuration are replaced — so the cached site list stays exact.
  PA.preserve(AnalysisID::LaunchSites);
  // Child kernel bodies are untouched, so serializability verdicts hold.
  PA.preserve(AnalysisID::Transformability);
  // Grid-dim and purity results may key on expressions the rewrite just
  // replaced — but only inside the callers it mutated.
  PA.limitToFunctions(Result.TouchedFunctions);
  return PA;
}
