//===--- PassOptions.h - Tuning knobs for the three passes -------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every tunable the paper exposes (Section VII: launch threshold,
/// coarsening factor, aggregation granularity) is configurable here. Knobs
/// can be emitted either as compile-time macros (`_THRESHOLD`, `_CFACTOR`,
/// `_AGG_SIZE`, matching the paper's tuning workflow with off-the-shelf
/// autotuners) or inlined as integer literals (used when the output is fed
/// to the bytecode VM, which has no preprocessor).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_PASSOPTIONS_H
#define DPO_TRANSFORM_PASSOPTIONS_H

#include <string>

namespace dpo {

class LaunchProfile;

/// How the launch threshold / coarsening factor / group size appear in the
/// generated source.
enum class KnobSpelling {
  Macro,   ///< `_THRESHOLD` etc., with an #ifndef default emitted on top.
  Literal, ///< The configured value as an integer literal.
};

struct ThresholdingOptions {
  unsigned Threshold = 128;
  KnobSpelling Spelling = KnobSpelling::Macro;
  std::string MacroName = "_THRESHOLD";
  /// When the Fig. 4 analysis fails, fall back to comparing
  /// gridDim * blockDim against the threshold instead of skipping the
  /// launch. Off by default (the paper argues total threads is a poor
  /// proxy; Section III-D).
  bool FallbackToTotalThreads = false;
  /// Pipeline spelling `threshold[profile]`: pick a per-launch-site
  /// threshold from Profile (see LaunchProfile::siteThreshold) instead
  /// of the one global knob. Sites the profile never saw — and the whole
  /// pass when Profile is null — fall back to the literal Threshold.
  /// Profile mode always spells thresholds as literals.
  bool UseProfile = false;
  const LaunchProfile *Profile = nullptr;
};

struct CoarseningOptions {
  unsigned Factor = 4;
  KnobSpelling Spelling = KnobSpelling::Macro;
  std::string MacroName = "_CFACTOR";
  /// Pipeline spelling `coarsen[profile]`: per-launch-site factors from
  /// Profile (LaunchProfile::siteCoarsenFactor), capped at Factor.
  /// Null Profile falls back to the literal Factor everywhere.
  bool UseProfile = false;
  const LaunchProfile *Profile = nullptr;
};

/// Options for SpeculationPass: serialize a child launch under a
/// profile-backed small-grid assumption behind a runtime __dpo_spec_guard
/// check, with a fallback real launch when the guard fails.
struct SpeculationOptions {
  /// Global small-grid bound: speculate "this launch runs at most
  /// MaxThreads total threads". With a profile, each site instead uses
  /// LaunchProfile::siteSpeculationBound (and unseen sites are skipped).
  unsigned MaxThreads = 64;
  KnobSpelling Spelling = KnobSpelling::Macro;
  std::string MacroName = "_SPEC_BOUND";
  bool UseProfile = false;
  const LaunchProfile *Profile = nullptr;
};

enum class AggGranularity {
  None,
  Warp,       ///< Generated with thread-counted groups of 32; see AggregationPass.
  Block,
  MultiBlock, ///< The paper's new granularity (Section V-A).
  Grid,
};

const char *aggGranularityName(AggGranularity G);

struct AggregationOptions {
  AggGranularity Granularity = AggGranularity::MultiBlock;
  /// Blocks per group for MultiBlock granularity (Fig. 7's
  /// _AGG_GRANULARITY).
  unsigned GroupSize = 8;
  KnobSpelling Spelling = KnobSpelling::Macro;
  std::string GroupSizeMacroName = "_AGG_SIZE";
  /// Section V-B: skip aggregation when too few parents participate
  /// (Block granularity only — requires a barrier to count participants).
  bool UseAggregationThreshold = false;
  unsigned AggregationThreshold = 4;
  std::string AggThresholdMacroName = "_AGG_THRESHOLD";
  /// Generate the host-side launch wrapper (allocates the aggregation
  /// buffers; performs the aggregated launch for Grid granularity).
  bool EmitHostWrapper = true;
};

} // namespace dpo

#endif // DPO_TRANSFORM_PASSOPTIONS_H
