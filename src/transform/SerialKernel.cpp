//===--- SerialKernel.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/SerialKernel.h"

#include "ast/Clone.h"
#include "ast/Walk.h"
#include "support/Casting.h"
#include "transform/BuiltinRewrite.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

using namespace dpo;

namespace {

/// True if any statement below Root is a return.
bool containsReturn(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isa<ReturnStmt>(S))
      Found = true;
  });
  return Found;
}

bool isSyncthreadsCall(const Stmt *S) {
  const auto *Call = dyn_cast<CallExpr>(S);
  return Call && Call->calleeName() == "__syncthreads";
}

bool containsSyncthreads(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isSyncthreadsCall(S))
      Found = true;
  });
  return Found;
}

bool containsSharedDecl(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (const auto *DS = dyn_cast<DeclStmt>(S))
      for (const VarDecl *D : DS->decls())
        if (D->isShared())
          Found = true;
  });
  return Found;
}

/// Decides whether the serial version of \p Child needs y/z loops: true when
/// the body touches .y/.z of an index builtin or when any launch of the
/// kernel uses a dim3 configuration (scalar configurations imply y = z = 1).
bool childNeedsAllDims(const FunctionDecl *Child,
                       const std::vector<LaunchSite> &Sites) {
  for (const char *Builtin : {"blockIdx", "threadIdx", "gridDim", "blockDim"})
    for (const char *Component : {"y", "z"})
      if (usesBuiltinComponent(Child->body(), Builtin, Component))
        return true;
  for (const LaunchSite &Site : Sites) {
    if (Site.Launch->kernel() != Child->name())
      continue;
    if (Site.Launch->gridDim()->type().isDim3() ||
        Site.Launch->blockDim()->type().isDim3())
      return true;
  }
  return false;
}

/// Picks a function name not already defined in \p TU.
std::string freshFunctionName(const TranslationUnit *TU,
                              const std::string &Base) {
  if (!TU->findFunction(Base))
    return Base;
  for (unsigned I = 1;; ++I) {
    std::string Candidate = Base + "_" + std::to_string(I);
    if (!TU->findFunction(Candidate))
      return Candidate;
  }
}

} // namespace

const std::string &
SerialKernelBuilder::ensureSerialVersion(FunctionDecl *Child,
                                         const std::vector<LaunchSite> &AllSites) {
  auto Existing = SerialNames.find(Child);
  if (Existing != SerialNames.end())
    return Existing->second;

  // Cloning a body that launches duplicates its launch sites; the caller
  // reports this so the launch-site analysis gets invalidated.
  forEachExpr(Child->body(), [&](const Expr *E) {
    if (isa<LaunchExpr>(E))
      ++NestedLaunchSerials;
  });

  bool AllDims = childNeedsAllDims(Child, AllSites);
  bool HasReturn = containsReturn(Child->body());
  // Barrier-bearing children take the segmented form: the body is split at
  // __syncthreads into barrier-free segments, each its own thread loop
  // (sema::analyzeSerializability guarantees the structure fits and that
  // no early return exists).
  bool Segmented = !HasReturn && (containsSyncthreads(Child->body()) ||
                                  containsSharedDecl(Child->body()));
  std::string SerialName = freshFunctionName(TU, Child->name() + "_serial");

  // The synthesized loop/config variables must not collide with anything
  // the child declares: a child that was already transformed (e.g. the
  // coarsening pass's grid-stride loop declares `_bx`) would otherwise
  // shadow the serial driver's loop variable and read itself in its own
  // initializer.
  std::unordered_set<std::string> Taken = declaredNames(Child);
  std::string GDim = freshVarName(Taken, "_gDim");
  std::string BDim = freshVarName(Taken, "_bDim");
  std::string Bx = freshVarName(Taken, "_bx");
  std::string By = freshVarName(Taken, "_by");
  std::string Bz = freshVarName(Taken, "_bz");
  std::string Tx = freshVarName(Taken, "_tx");
  std::string Ty = freshVarName(Taken, "_ty");
  std::string Tz = freshVarName(Taken, "_tz");

  // Shared parameter tail: the original launch configuration.
  auto MakeConfigParams = [&]() {
    std::vector<VarDecl *> Params;
    for (const VarDecl *P : Child->params())
      Params.push_back(cloneVarDecl(Ctx, P));
    Params.push_back(Ctx.create<VarDecl>(Type(BuiltinKind::Dim3), GDim));
    Params.push_back(Ctx.create<VarDecl>(Type(BuiltinKind::Dim3), BDim));
    return Params;
  };

  // Index variable names per dimension, block loops then thread loops.
  std::vector<std::pair<std::string, std::string>> BlockLoops = {{Bx, "x"}};
  std::vector<std::pair<std::string, std::string>> ThreadLoops = {{Tx, "x"}};
  if (AllDims) {
    BlockLoops.insert(BlockLoops.begin(), {{Bz, "z"}, {By, "y"}});
    ThreadLoops.insert(ThreadLoops.begin(), {{Tz, "z"}, {Ty, "y"}});
  }

  std::unordered_map<std::string, BuiltinRemap> Map;
  Map["gridDim"].Whole = GDim;
  Map["blockDim"].Whole = BDim;
  Map["blockIdx"].X = Bx;
  Map["threadIdx"].X = Tx;
  if (AllDims) {
    Map["blockIdx"].Y = By;
    Map["blockIdx"].Z = Bz;
    Map["threadIdx"].Y = Ty;
    Map["threadIdx"].Z = Tz;
  }

  FunctionQualifiers Quals;
  Quals.Device = true;

  auto MakeLoop = [&](const std::string &Var, const std::string &Bound,
                      const std::string &Component, Stmt *Body) -> Stmt * {
    auto *Init = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
        Ctx.create<VarDecl>(Type(BuiltinKind::UInt), Var, Ctx.intLit(0))});
    auto *Cond = Ctx.binary(BinaryOpKind::LT, Ctx.ref(Var),
                            Ctx.member(Bound, Component));
    auto *Inc = Ctx.create<UnaryOperator>(UnaryOpKind::PreInc, Ctx.ref(Var));
    return Ctx.create<ForStmt>(Init, Cond, Inc, Body);
  };

  Stmt *Loops = nullptr;
  FunctionDecl *ThreadFn = nullptr;

  if (Segmented) {
    // Per block: __shared__ declarations become zero-initialized
    // block-scope locals, each barrier-free segment becomes its own
    // thread-loop nest, and barrier-bearing block-uniform for-loops are
    // hoisted to block level with their bodies segmented recursively.
    // Per-thread locals read across a segment boundary are rematerialized
    // (re-declared from their initializer) at the top of each consuming
    // segment; the transformability analysis guarantees those
    // initializers are single-assignment and depend only on parameters,
    // literals, index builtins, and other rematerializable locals.
    auto ThreadLoopNest = [&](std::vector<Stmt *> SegBody) -> Stmt * {
      Stmt *Inner = Ctx.compound(std::move(SegBody));
      for (auto It = ThreadLoops.rbegin(); It != ThreadLoops.rend(); ++It)
        Inner = MakeLoop(It->first, BDim, It->second, Inner);
      return Inner;
    };

    std::vector<const VarDecl *> RematOrder;
    std::unordered_set<std::string> RematNames;
    std::vector<Stmt *> SharedDecls;

    std::function<void(const std::vector<Stmt *> &, bool,
                       std::vector<Stmt *> &)>
        BuildLevel = [&](const std::vector<Stmt *> &Stmts, bool BodyTop,
                         std::vector<Stmt *> &Out) {
          std::vector<const Stmt *> SegOrig;
          std::vector<Stmt *> SegClone;

          auto Flush = [&]() {
            if (SegClone.empty()) {
              SegOrig.clear();
              return;
            }
            // Rematerialize crossing locals this segment reads: names it
            // references that an earlier segment declared, closed over the
            // initializers' own remat references, emitted in declaration
            // order.
            std::unordered_set<std::string> Declared;
            for (const Stmt *S : SegOrig)
              if (const auto *DS = dyn_cast<DeclStmt>(S))
                for (const VarDecl *D : DS->decls())
                  Declared.insert(D->name());
            std::unordered_set<std::string> Needed;
            for (const Stmt *S : SegOrig)
              forEachExpr(S, [&](const Expr *E) {
                const auto *R = dyn_cast<DeclRefExpr>(E);
                if (R && RematNames.count(R->name()) &&
                    !Declared.count(R->name()))
                  Needed.insert(R->name());
              });
            bool Changed = true;
            while (Changed) {
              Changed = false;
              for (const VarDecl *D : RematOrder) {
                if (!Needed.count(D->name()))
                  continue;
                forEachExpr(D->init(), [&](const Expr *E) {
                  const auto *R = dyn_cast<DeclRefExpr>(E);
                  if (R && RematNames.count(R->name()) &&
                      !Declared.count(R->name()) &&
                      Needed.insert(R->name()).second)
                    Changed = true;
                });
              }
            }
            std::vector<Stmt *> Body;
            for (const VarDecl *D : RematOrder)
              if (Needed.count(D->name()))
                Body.push_back(Ctx.create<DeclStmt>(std::vector<VarDecl *>{
                    Ctx.create<VarDecl>(D->type(), D->name(),
                                        cloneExpr(Ctx, D->init()))}));
            for (Stmt *S : SegClone)
              Body.push_back(S);
            Out.push_back(ThreadLoopNest(std::move(Body)));
            SegOrig.clear();
            SegClone.clear();
          };

          for (Stmt *S : Stmts) {
            if (isSyncthreadsCall(S)) {
              Flush(); // The barrier dissolves into the segment boundary.
              continue;
            }
            if (auto *DS = dyn_cast<DeclStmt>(S)) {
              bool AnyShared = false;
              for (const VarDecl *D : DS->decls())
                AnyShared |= D->isShared();
              if (AnyShared) {
                // Block-lifetime state: hoist above all segments. Arrays
                // get an explicit zeroing loop to match the VM's
                // zero-initialized shared windows.
                for (const VarDecl *D : DS->decls()) {
                  VarDecl *Local = cloneVarDecl(Ctx, D);
                  Local->setShared(false);
                  if (!Local->isArray() && !Local->init())
                    Local->setInit(Ctx.intLit(0));
                  SharedDecls.push_back(Ctx.create<DeclStmt>(
                      std::vector<VarDecl *>{Local}));
                  if (Local->isArray()) {
                    uint64_t Count = 1;
                    for (const Expr *Dim : D->arrayDims())
                      if (const auto *Lit = dyn_cast<IntegerLiteral>(Dim))
                        Count *= Lit->value();
                    std::string Zi = freshVarName(Taken, "_zi");
                    auto *ZInit =
                        Ctx.create<DeclStmt>(std::vector<VarDecl *>{
                            Ctx.create<VarDecl>(Type(BuiltinKind::UInt), Zi,
                                                Ctx.intLit(0))});
                    auto *ZCond = Ctx.binary(BinaryOpKind::LT, Ctx.ref(Zi),
                                             Ctx.intLit(Count));
                    auto *ZInc = Ctx.create<UnaryOperator>(
                        UnaryOpKind::PreInc, Ctx.ref(Zi));
                    auto *ZAssign = Ctx.binary(
                        BinaryOpKind::Assign,
                        Ctx.create<ArraySubscriptExpr>(Ctx.ref(D->name()),
                                                       Ctx.ref(Zi)),
                        Ctx.intLit(0));
                    SharedDecls.push_back(
                        Ctx.create<ForStmt>(ZInit, ZCond, ZInc, ZAssign));
                  }
                }
                continue;
              }
              // Record per-thread remat candidates as they pass by; only
              // ones actually read by a later segment are re-declared.
              for (const VarDecl *D : DS->decls())
                if (!D->isArray() && !D->type().isDim3() && D->init() &&
                    RematNames.insert(D->name()).second)
                  RematOrder.push_back(D);
            }
            if (containsSyncthreads(S)) {
              Flush();
              if (auto *For = dyn_cast<ForStmt>(S)) {
                // Block-uniform barrier loop: hoist the loop, segment its
                // body.
                std::vector<Stmt *> Inner;
                std::vector<Stmt *> BodyStmts;
                if (auto *CS = dyn_cast<CompoundStmt>(For->body()))
                  BodyStmts = CS->body();
                else
                  BodyStmts.push_back(For->body());
                BuildLevel(BodyStmts, /*BodyTop=*/false, Inner);
                Out.push_back(Ctx.create<ForStmt>(
                    cloneStmt(Ctx, For->init()), cloneExpr(Ctx, For->cond()),
                    cloneExpr(Ctx, For->inc()), Ctx.compound(Inner)));
                continue;
              }
              if (auto *CS = dyn_cast<CompoundStmt>(S)) {
                std::vector<Stmt *> Inner;
                BuildLevel(CS->body(), /*BodyTop=*/false, Inner);
                Out.push_back(Ctx.compound(Inner));
                continue;
              }
              // Unreachable when the transformability analysis accepted
              // the child; drop the statement's barrier semantics rather
              // than crash.
              SegOrig.push_back(S);
              SegClone.push_back(cloneStmt(Ctx, S));
              continue;
            }
            SegOrig.push_back(S);
            SegClone.push_back(cloneStmt(Ctx, S));
          }
          Flush();
        };

    std::vector<Stmt *> BlockStmts;
    BuildLevel(Child->body()->body(), /*BodyTop=*/true, BlockStmts);
    std::vector<Stmt *> BlockBody = std::move(SharedDecls);
    BlockBody.insert(BlockBody.end(), BlockStmts.begin(), BlockStmts.end());
    auto *PerBlock = Ctx.compound(std::move(BlockBody));
    rewriteBuiltins(Ctx, PerBlock, Map, Diags);
    Loops = PerBlock;
    for (auto It = BlockLoops.rbegin(); It != BlockLoops.rend(); ++It)
      Loops = MakeLoop(It->first, GDim, It->second, Loops);
  } else {
    // The innermost statement executed per serialized child thread.
    Stmt *PerThread = nullptr;
    if (HasReturn) {
      // Early returns force the per-thread body into its own function so
      // `return` keeps per-thread semantics.
      std::vector<VarDecl *> ThreadParams = MakeConfigParams();
      for (auto &LoopSet : {BlockLoops, ThreadLoops})
        for (const auto &[VarName, Component] : LoopSet)
          ThreadParams.push_back(
              Ctx.create<VarDecl>(Type(BuiltinKind::UInt), VarName));
      auto *ThreadBody = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
      rewriteBuiltins(Ctx, ThreadBody, Map, Diags);
      std::string ThreadFnName =
          freshFunctionName(TU, Child->name() + "_serial_thread");
      ThreadFn = Ctx.create<FunctionDecl>(Quals, Type(BuiltinKind::Void),
                                          ThreadFnName, std::move(ThreadParams),
                                          ThreadBody);
      // Call it from the loops.
      std::vector<Expr *> CallArgs;
      for (const VarDecl *P : Child->params())
        CallArgs.push_back(Ctx.ref(P->name()));
      CallArgs.push_back(Ctx.ref(GDim));
      CallArgs.push_back(Ctx.ref(BDim));
      for (auto &LoopSet : {BlockLoops, ThreadLoops})
        for (const auto &[VarName, Component] : LoopSet)
          CallArgs.push_back(Ctx.ref(VarName));
      PerThread =
          Ctx.create<CallExpr>(Ctx.ref(ThreadFnName), std::move(CallArgs));
    } else {
      auto *Body = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
      rewriteBuiltins(Ctx, Body, Map, Diags);
      PerThread = Body;
    }

    // Wrap in loops: thread loops innermost.
    Loops = PerThread;
    for (auto It = ThreadLoops.rbegin(); It != ThreadLoops.rend(); ++It)
      Loops = MakeLoop(It->first, BDim, It->second, Loops);
    for (auto It = BlockLoops.rbegin(); It != BlockLoops.rend(); ++It)
      Loops = MakeLoop(It->first, GDim, It->second, Loops);
  }

  auto *SerialBody = Ctx.compound({Loops});
  auto *Serial = Ctx.create<FunctionDecl>(Quals, Type(BuiltinKind::Void),
                                          SerialName, MakeConfigParams(),
                                          SerialBody);

  // Insert after the child kernel definition (thread helper first so it
  // precedes its caller).
  auto It = std::find(TU->decls().begin(), TU->decls().end(),
                      static_cast<Decl *>(Child));
  assert(It != TU->decls().end() && "child kernel not in translation unit");
  ++It;
  if (ThreadFn)
    It = std::next(TU->decls().insert(It, ThreadFn));
  TU->decls().insert(It, Serial);

  return SerialNames[Child] = SerialName;
}

Expr *SerialKernelBuilder::buildSerialCall(const LaunchSite &Site) {
  LaunchExpr *L = Site.Launch;
  std::vector<Expr *> SerialArgs;
  for (Expr *Arg : L->args())
    SerialArgs.push_back(cloneExpr(Ctx, Arg));
  SerialArgs.push_back(cloneExpr(Ctx, L->gridDim()));
  SerialArgs.push_back(cloneExpr(Ctx, L->blockDim()));
  return Ctx.create<CallExpr>(Ctx.ref(SerialNames.at(Site.Child)),
                              std::move(SerialArgs));
}
