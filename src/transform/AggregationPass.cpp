//===--- AggregationPass.cpp ----------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Code generation strategy: the aggregation/disaggregation skeletons are
/// fixed code shapes with interpolated names, so they are generated as
/// source text and parsed with the project's own frontend, then spliced
/// into the translation unit. Expressions taken from the original launch
/// (configuration, arguments) are printed into the template exactly once,
/// preserving evaluation counts.
///
//===----------------------------------------------------------------------===//

#include "transform/AggregationPass.h"

#include "ast/ASTPrinter.h"
#include "ast/Clone.h"
#include "ast/Walk.h"
#include "parse/Parser.h"
#include "sema/LaunchSites.h"
#include "support/Casting.h"
#include "transform/BuiltinRewrite.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace dpo;

namespace {

bool containsReturn(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isa<ReturnStmt>(S))
      Found = true;
  });
  return Found;
}

/// True if \p Target appears inside a loop statement under \p Root.
bool insideLoop(Stmt *Root, const Stmt *Target) {
  bool Result = false;
  forEachStmt(Root, [&](Stmt *S) {
    Stmt *LoopBody = nullptr;
    if (auto *For = dyn_cast<ForStmt>(S))
      LoopBody = For->body();
    else if (auto *While = dyn_cast<WhileStmt>(S))
      LoopBody = While->body();
    else if (auto *Do = dyn_cast<DoStmt>(S))
      LoopBody = Do->body();
    if (!LoopBody)
      return;
    forEachStmt(LoopBody, [&](const Stmt *Inner) {
      if (Inner == Target)
        Result = true;
    });
  });
  return Result;
}

class AggregationTransformer {
public:
  AggregationTransformer(ASTContext &Ctx, TranslationUnit *TU,
                         const AggregationOptions &Options,
                         DiagnosticEngine &Diags, AnalysisManager &AM)
      : Ctx(Ctx), TU(TU), Options(Options), Diags(Diags), AM(AM) {}

  AggregationResult run() {
    AggregationResult Result;
    if (Options.Granularity == AggGranularity::None)
      return Result;

    const std::vector<LaunchSite> &AllSites = AM.launchSites();

    // Select eligible dynamic launch sites.
    struct SiteGen {
      LaunchSite Site;
      unsigned K = 0;
    };
    std::vector<SiteGen> Planned;
    std::set<FunctionDecl *> Parents;
    for (const LaunchSite &Site : AllSites) {
      if (!Site.FromKernel)
        continue;
      std::string Where =
          Site.Caller->name() + " -> " + Site.Launch->kernel();
      std::string Reason;
      if (!eligible(Site, Reason)) {
        ++Result.SkippedLaunches;
        Result.SkipReasons.push_back(Where + ": " + Reason);
        continue;
      }
      SiteGen Gen;
      Gen.Site = Site;
      Gen.K = SiteCounter++;
      Planned.push_back(Gen);
      Parents.insert(Site.Caller);
    }
    if (Planned.empty())
      return Result;

    // A parent is only transformable if every host launch of it can be
    // redirected to the generated wrapper.
    for (auto It = Planned.begin(); It != Planned.end();) {
      FunctionDecl *Parent = It->Site.Caller;
      bool Ok = true;
      for (const LaunchSite &Site : AllSites) {
        if (Site.Child != Parent || Site.FromKernel)
          continue;
        if (!Site.InStatementPosition)
          Ok = false;
      }
      if (Ok) {
        ++It;
        continue;
      }
      ++Result.SkippedLaunches;
      Result.SkipReasons.push_back(
          Parent->name() +
          ": a host launch of this kernel is not in statement position");
      Parents.erase(Parent);
      It = Planned.erase(It);
    }
    if (Planned.empty())
      return Result;

    if (Options.Spelling == KnobSpelling::Macro) {
      if (Options.Granularity == AggGranularity::MultiBlock)
        emitMacroDefault(Options.GroupSizeMacroName, Options.GroupSize);
      if (useAggThreshold())
        emitMacroDefault(Options.AggThresholdMacroName,
                         Options.AggregationThreshold);
    }

    // Generate the aggregated child kernel for each distinct child.
    for (const SiteGen &Gen : Planned)
      if (ensureAggKernel(Gen.Site.Child))
        ++Result.GeneratedKernels;

    // Per-site codegen. Parents are grouped in first-launch-site order: a
    // pointer-keyed map here would make the emission order of the host
    // wrappers depend on heap addresses, i.e. vary run to run.
    std::unordered_map<const Stmt *, Stmt *> Replacements;
    std::vector<std::pair<FunctionDecl *, std::vector<const SiteGen *>>>
        SitesOfParent;
    auto SitesFor =
        [&](FunctionDecl *Parent) -> std::vector<const SiteGen *> & {
      for (auto &[P, Sites] : SitesOfParent)
        if (P == Parent)
          return Sites;
      return SitesOfParent.emplace_back(Parent,
                                        std::vector<const SiteGen *>())
          .second;
    };
    for (SiteGen &Gen : Planned)
      SitesFor(Gen.Site.Caller).push_back(&Gen);

    for (const SiteGen &Gen : Planned) {
      appendParentParams(Gen.Site, Gen.K);
      Replacements[Gen.Site.Launch] = buildPartA(Gen.Site, Gen.K);
    }

    // Epilogues and (for the aggregation threshold) per-thread locals.
    for (auto &[Parent, Sites] : SitesOfParent) {
      for (const SiteGen *Gen : Sites) {
        if (useAggThreshold())
          insertThresholdLocals(Gen->Site, Gen->K);
        if (Options.Granularity != AggGranularity::Grid)
          appendEpilogue(Gen->Site, Gen->K);
      }
    }

    // Apply launch-site replacements.
    for (Decl *D : TU->decls()) {
      auto *F = dyn_cast<FunctionDecl>(D);
      if (!F || !F->body())
        continue;
      rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
        auto It = Replacements.find(S);
        return It != Replacements.end() ? It->second : nullptr;
      });
    }

    // Host wrappers + host launch redirection.
    if (Options.EmitHostWrapper) {
      std::unordered_map<const Stmt *, Stmt *> HostRepl;
      for (auto &[Parent, Sites] : SitesOfParent) {
        generateHostWrapper(Parent, Sites);
        ++Result.GeneratedWrappers;
        for (const LaunchSite &Site : AllSites) {
          if (Site.Child != Parent || Site.FromKernel)
            continue;
          HostRepl[Site.Launch] = buildWrapperCall(Parent, Site);
        }
      }
      for (Decl *D : TU->decls()) {
        auto *F = dyn_cast<FunctionDecl>(D);
        if (!F || !F->body())
          continue;
        rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
          auto It = HostRepl.find(S);
          return It != HostRepl.end() ? It->second : nullptr;
        });
      }
    }

    Result.TransformedLaunches = Planned.size();
    return Result;
  }

private:
  bool useAggThreshold() const {
    return Options.UseAggregationThreshold &&
           Options.Granularity == AggGranularity::Block;
  }

  bool eligible(const LaunchSite &Site, std::string &Reason) {
    if (!Site.Caller->qualifiers().Global) {
      Reason = "launches from __device__ functions are not supported";
      return false;
    }
    if (!Site.InStatementPosition) {
      Reason = "launch is not in statement position";
      return false;
    }
    if (!Site.Child || !Site.Child->isDefinition()) {
      Reason = "child kernel definition not found";
      return false;
    }
    if (Site.Launch->gridDim()->type().isDim3() ||
        Site.Launch->blockDim()->type().isDim3()) {
      Reason = "aggregation requires 1-D (scalar) launch configurations";
      return false;
    }
    if (Options.Granularity != AggGranularity::Grid &&
        containsReturn(Site.Caller->body())) {
      Reason = "parent kernel has early returns; the aggregation epilogue "
               "must post-dominate the launch";
      return false;
    }
    if (insideLoop(Site.Caller->body(), Site.Launch)) {
      Reason = "launch inside a loop could overflow the per-thread "
               "aggregation slot";
      return false;
    }
    for (const VarDecl *P : Site.Caller->params()) {
      if (P->name().rfind("_agg", 0) == 0) {
        Reason = "parent already aggregated";
        return false;
      }
    }
    return true;
  }

  void emitMacroDefault(const std::string &Macro, unsigned Value) {
    std::string Text = "#ifndef " + Macro + "\n#define " + Macro + " " +
                       std::to_string(Value) + "\n#endif";
    TU->decls().insert(TU->decls().begin(), Ctx.create<RawDecl>(Text));
  }

  /// Spelling of the multi-block group size in generated code.
  std::string groupSizeText() const {
    if (Options.Spelling == KnobSpelling::Macro)
      return Options.GroupSizeMacroName;
    return std::to_string(Options.GroupSize) + "u";
  }

  std::string aggThresholdText() const {
    if (Options.Spelling == KnobSpelling::Macro)
      return Options.AggThresholdMacroName;
    return std::to_string(Options.AggregationThreshold) + "u";
  }

  /// Group index of the current parent thread, device-side.
  std::string groupIdxText() const {
    switch (Options.Granularity) {
    case AggGranularity::Warp:
      return "(blockIdx.x * blockDim.x + threadIdx.x) / 32u";
    case AggGranularity::Block:
      return "blockIdx.x";
    case AggGranularity::MultiBlock:
      return "blockIdx.x / " + groupSizeText();
    case AggGranularity::Grid:
      return "0u";
    case AggGranularity::None:
      break;
    }
    return "0u";
  }

  /// Maximum number of launching parents per group, device-side.
  std::string capacityText() const {
    switch (Options.Granularity) {
    case AggGranularity::Warp:
      return "32u";
    case AggGranularity::Block:
      return "blockDim.x";
    case AggGranularity::MultiBlock:
      return "(" + groupSizeText() + " * blockDim.x)";
    case AggGranularity::Grid:
      return "(gridDim.x * blockDim.x)";
    case AggGranularity::None:
      break;
    }
    return "1u";
  }

  /// Parses a block of statements by wrapping them in a template function.
  std::vector<Stmt *> parseStmts(const std::string &Body) {
    std::string Source = "__device__ void _aggTemplate() {\n" + Body + "\n}\n";
    DiagnosticEngine TemplateDiags;
    TranslationUnit *Tmp = parseSource(Source, Ctx, TemplateDiags);
    if (!Tmp) {
      Diags.error({}, "internal error: aggregation template failed to parse: " +
                          TemplateDiags.str() + "\n" + Source);
      return {};
    }
    return Tmp->findFunction("_aggTemplate")->body()->body();
  }

  FunctionDecl *parseFunction(const std::string &Source,
                              const std::string &Name) {
    DiagnosticEngine TemplateDiags;
    TranslationUnit *Tmp = parseSource(Source, Ctx, TemplateDiags);
    if (!Tmp) {
      Diags.error({}, "internal error: aggregation template failed to parse: " +
                          TemplateDiags.str() + "\n" + Source);
      return nullptr;
    }
    return Tmp->findFunction(Name);
  }

  /// Child parameter type with const/restrict stripped (the values are
  /// staged through writable buffers).
  static Type bufferElemType(const VarDecl *P) {
    Type T = P->type();
    T.setConst(false);
    T.setRestrict(false);
    return T;
  }

  /// Generates `<child>_agg` (Fig. 7 lines 01-11) once per child kernel.
  /// Returns true if a kernel was generated by this call.
  bool ensureAggKernel(FunctionDecl *Child) {
    if (AggKernelNames.count(Child))
      return false;
    std::string Name = Child->name() + "_agg";

    // Disaggregation remaps: the body sees its original configuration.
    auto *Body = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
    std::unordered_map<std::string, BuiltinRemap> Map;
    Map["blockIdx"].X = "_aggBx";
    Map["gridDim"].X = "_aggGDimX";
    Map["blockDim"].X = "_aggBDimX";
    rewriteBuiltins(Ctx, Body, Map, Diags);
    std::string BodyText = printStmt(Body, 2);

    std::ostringstream OS;
    OS << "__global__ void " << Name << "(";
    for (size_t I = 0; I < Child->params().size(); ++I)
      OS << bufferElemType(Child->params()[I]).pointerTo().str() << "_aggArg"
         << I << ", ";
    OS << "unsigned int *_aggScanArr, unsigned int *_aggBDimArrP, "
          "unsigned int _aggNumParents) {\n";
    // Binary search for the parent (first scan entry > blockIdx.x).
    OS << "  unsigned int _aggLo = 0u;\n"
          "  unsigned int _aggHi = _aggNumParents;\n"
          "  while (_aggLo < _aggHi) {\n"
          "    unsigned int _aggMid = (_aggLo + _aggHi) / 2u;\n"
          "    if (_aggScanArr[_aggMid] <= blockIdx.x) {\n"
          "      _aggLo = _aggMid + 1u;\n"
          "    } else {\n"
          "      _aggHi = _aggMid;\n"
          "    }\n"
          "  }\n"
          "  unsigned int _aggParentIdx = _aggLo;\n"
          "  unsigned int _aggPrevSum = _aggParentIdx == 0u ? 0u : "
          "_aggScanArr[_aggParentIdx - 1u];\n"
          "  unsigned int _aggBx = blockIdx.x - _aggPrevSum;\n"
          "  unsigned int _aggGDimX = _aggScanArr[_aggParentIdx] - "
          "_aggPrevSum;\n"
          "  unsigned int _aggBDimX = _aggBDimArrP[_aggParentIdx];\n";
    for (size_t I = 0; I < Child->params().size(); ++I) {
      const VarDecl *P = Child->params()[I];
      OS << "  " << bufferElemType(P).str()
         << (bufferElemType(P).isPointer() ? "" : " ") << P->name()
         << " = _aggArg" << I << "[_aggParentIdx];\n";
    }
    OS << "  if (threadIdx.x < _aggBDimX) ";
    OS << BodyText.substr(BodyText.find('{'));
    OS << "}\n";

    FunctionDecl *Kernel = parseFunction(OS.str(), Name);
    if (!Kernel)
      return false;
    auto It = std::find(TU->decls().begin(), TU->decls().end(),
                        static_cast<Decl *>(Child));
    assert(It != TU->decls().end() && "child kernel not in translation unit");
    TU->decls().insert(std::next(It), Kernel);
    AggKernelNames[Child] = Name;
    return true;
  }

  /// Buffer parameter names for site \p K, in declaration order.
  std::vector<std::pair<std::string, Type>>
  bufferParams(const LaunchSite &Site, unsigned K) const {
    std::string Suffix = std::to_string(K);
    std::vector<std::pair<std::string, Type>> Params;
    Params.push_back({"_aggCnt" + Suffix,
                      Type(BuiltinKind::ULongLong).pointerTo()});
    Params.push_back({"_aggMaxB" + Suffix, Type(BuiltinKind::UInt).pointerTo()});
    if (Options.Granularity != AggGranularity::Grid)
      Params.push_back({"_aggFin" + Suffix,
                        Type(BuiltinKind::UInt).pointerTo()});
    Params.push_back({"_aggScan" + Suffix,
                      Type(BuiltinKind::UInt).pointerTo()});
    Params.push_back({"_aggBDimArr" + Suffix,
                      Type(BuiltinKind::UInt).pointerTo()});
    for (size_t I = 0; I < Site.Child->params().size(); ++I)
      Params.push_back({"_aggArg" + std::to_string(I) + "_" + Suffix,
                        bufferElemType(Site.Child->params()[I]).pointerTo()});
    return Params;
  }

  void appendParentParams(const LaunchSite &Site, unsigned K) {
    for (const auto &[Name, Ty] : bufferParams(Site, K))
      Site.Caller->params().push_back(Ctx.create<VarDecl>(Ty, Name));
  }

  /// Fig. 7 lines 14-25: the per-thread aggregation logic replacing the
  /// launch statement.
  Stmt *buildPartA(const LaunchSite &Site, unsigned K) {
    const LaunchExpr *L = Site.Launch;
    std::string S = std::to_string(K);
    std::ostringstream OS;
    OS << "unsigned int _aggG = " << printExpr(L->gridDim()) << ";\n";
    OS << "unsigned int _aggB = " << printExpr(L->blockDim()) << ";\n";
    OS << "if (_aggG > 0u) {\n";
    OS << "  unsigned int _aggGroupIdx = " << groupIdxText() << ";\n";
    OS << "  unsigned long long _aggPacked = atomicAdd(&_aggCnt" << S
       << "[_aggGroupIdx], ((unsigned long long)1 << 32) + (unsigned long "
          "long)_aggG);\n";
    OS << "  unsigned int _aggParentIdx = (unsigned int)(_aggPacked >> 32);\n";
    OS << "  unsigned int _aggSumPrev = (unsigned int)(_aggPacked & "
          "4294967295u);\n";
    OS << "  unsigned int _aggSlot = _aggGroupIdx * " << capacityText()
       << " + _aggParentIdx;\n";
    for (size_t I = 0; I < L->args().size(); ++I) {
      Type ElemTy = bufferElemType(Site.Child->params()[I]);
      std::string TyText = ElemTy.str();
      OS << "  " << TyText << (ElemTy.isPointer() ? "" : " ") << "_aggA" << I
         << " = " << printExpr(L->args()[I]) << ";\n";
      OS << "  _aggArg" << I << "_" << S << "[_aggSlot] = _aggA" << I
         << ";\n";
    }
    OS << "  _aggScan" << S << "[_aggSlot] = _aggSumPrev + _aggG;\n";
    OS << "  _aggBDimArr" << S << "[_aggSlot] = _aggB;\n";
    OS << "  atomicMax(&_aggMaxB" << S << "[_aggGroupIdx], _aggB);\n";
    if (useAggThreshold()) {
      OS << "  _aggMySlot" << S << " = _aggSlot;\n";
      OS << "  _aggMyG" << S << " = _aggG;\n";
      OS << "  _aggMyB" << S << " = _aggB;\n";
    }
    OS << "}\n";
    std::vector<Stmt *> Stmts = parseStmts(OS.str());
    return Ctx.compound(std::move(Stmts));
  }

  /// Declarations at the top of the parent used by the aggregation
  /// threshold epilogue (each thread remembers its slot/configuration).
  void insertThresholdLocals(const LaunchSite &Site, unsigned K) {
    std::string S = std::to_string(K);
    std::ostringstream OS;
    OS << "unsigned int _aggMySlot" << S << " = 4294967295u;\n";
    OS << "unsigned int _aggMyG" << S << " = 0u;\n";
    OS << "unsigned int _aggMyB" << S << " = 0u;\n";
    std::vector<Stmt *> Stmts = parseStmts(OS.str());
    auto &Body = Site.Caller->body()->body();
    Body.insert(Body.begin(), Stmts.begin(), Stmts.end());
  }

  /// The pointer expression for a group's segment of a per-slot buffer.
  std::string segmentText(const std::string &Buffer) const {
    return Buffer + " + _aggGroupIdx * " + capacityText();
  }

  /// The aggregated launch (Fig. 7 lines 31-33) as template text.
  std::string aggregatedLaunchText(const LaunchSite &Site, unsigned K) const {
    std::string S = std::to_string(K);
    std::ostringstream OS;
    OS << AggKernelNames.at(Site.Child) << "<<<_aggTotal, _aggMaxB" << S
       << "[_aggGroupIdx]>>>(";
    for (size_t I = 0; I < Site.Child->params().size(); ++I)
      OS << segmentText("_aggArg" + std::to_string(I) + "_" + S) << ", ";
    OS << segmentText("_aggScan" + S) << ", "
       << segmentText("_aggBDimArr" + S) << ", _aggNumP)";
    return OS.str();
  }

  /// Appends the group-completion epilogue to the parent kernel
  /// (Fig. 7 lines 26-35).
  void appendEpilogue(const LaunchSite &Site, unsigned K) {
    std::string S = std::to_string(K);
    std::ostringstream OS;
    OS << "__threadfence();\n";

    if (Options.Granularity == AggGranularity::Warp) {
      OS << "{\n"
            "  unsigned int _aggTid = blockIdx.x * blockDim.x + "
            "threadIdx.x;\n"
            "  unsigned int _aggGroupIdx = _aggTid / 32u;\n"
            "  unsigned int _aggGroupSize = min(32u, gridDim.x * blockDim.x "
            "- _aggGroupIdx * 32u);\n"
            "  unsigned int _aggNFin = atomicAdd(&_aggFin"
         << S << "[_aggGroupIdx], 1u) + 1u;\n";
      OS << "  if (_aggNFin == _aggGroupSize) {\n";
      OS << "    unsigned long long _aggPacked = _aggCnt" << S
         << "[_aggGroupIdx];\n";
      OS << "    unsigned int _aggNumP = (unsigned int)(_aggPacked >> 32);\n";
      OS << "    unsigned int _aggTotal = (unsigned int)(_aggPacked & "
            "4294967295u);\n";
      OS << "    if (_aggTotal > 0u) {\n";
      OS << "      " << aggregatedLaunchText(Site, K) << ";\n";
      OS << "    }\n  }\n}\n";
      spliceEpilogue(Site, OS.str());
      return;
    }

    OS << "__syncthreads();\n";

    if (useAggThreshold()) {
      // Block granularity with the Section V-B aggregation threshold: after
      // the barrier every thread sees the participant count; below the
      // threshold each participant launches its own child grid directly.
      OS << "{\n"
            "  unsigned int _aggGroupIdx = blockIdx.x;\n"
            "  unsigned long long _aggPacked = _aggCnt"
         << S << "[_aggGroupIdx];\n"
         << "  unsigned int _aggNumP = (unsigned int)(_aggPacked >> 32);\n"
            "  unsigned int _aggTotal = (unsigned int)(_aggPacked & "
            "4294967295u);\n";
      OS << "  if (_aggNumP < " << aggThresholdText() << ") {\n";
      OS << "    if (_aggMySlot" << S << " != 4294967295u) {\n";
      OS << "      " << Site.Child->name() << "<<<_aggMyG" << S << ", _aggMyB"
         << S << ">>>(";
      for (size_t I = 0; I < Site.Child->params().size(); ++I) {
        if (I)
          OS << ", ";
        OS << "_aggArg" << I << "_" << S << "[_aggMySlot" << S << "]";
      }
      OS << ");\n    }\n";
      OS << "  } else if (threadIdx.x == 0u) {\n";
      OS << "    if (_aggTotal > 0u) {\n";
      OS << "      " << aggregatedLaunchText(Site, K) << ";\n";
      OS << "    }\n  }\n}\n";
      spliceEpilogue(Site, OS.str());
      return;
    }

    // Block / multi-block: one thread per block bumps the group's finished
    // counter; the last block of the group launches.
    std::string GroupIdx = Options.Granularity == AggGranularity::Block
                               ? "blockIdx.x"
                               : "blockIdx.x / " + groupSizeText();
    std::string GroupBlocks =
        Options.Granularity == AggGranularity::Block
            ? "1u"
            : "min(" + groupSizeText() + ", gridDim.x - _aggGroupIdx * " +
                  groupSizeText() + ")";
    OS << "if (threadIdx.x == 0u) {\n";
    OS << "  unsigned int _aggGroupIdx = " << GroupIdx << ";\n";
    OS << "  unsigned int _aggGroupBlocks = " << GroupBlocks << ";\n";
    OS << "  unsigned int _aggNFin = atomicAdd(&_aggFin" << S
       << "[_aggGroupIdx], 1u) + 1u;\n";
    OS << "  if (_aggNFin == _aggGroupBlocks) {\n";
    OS << "    unsigned long long _aggPacked = _aggCnt" << S
       << "[_aggGroupIdx];\n";
    OS << "    unsigned int _aggNumP = (unsigned int)(_aggPacked >> 32);\n";
    OS << "    unsigned int _aggTotal = (unsigned int)(_aggPacked & "
          "4294967295u);\n";
    OS << "    if (_aggTotal > 0u) {\n";
    OS << "      " << aggregatedLaunchText(Site, K) << ";\n";
    OS << "    }\n  }\n}\n";
    spliceEpilogue(Site, OS.str());
  }

  void spliceEpilogue(const LaunchSite &Site, const std::string &Text) {
    std::vector<Stmt *> Stmts = parseStmts(Text);
    auto &Body = Site.Caller->body()->body();
    Body.insert(Body.end(), Stmts.begin(), Stmts.end());
  }

  /// Number of groups as a host-side expression over `_aggGrid/_aggBlock`.
  std::string numGroupsHostText() const {
    switch (Options.Granularity) {
    case AggGranularity::Warp:
      return "(_aggGrid.x * _aggBlock.x + 31u) / 32u";
    case AggGranularity::Block:
      return "_aggGrid.x";
    case AggGranularity::MultiBlock:
      return "(_aggGrid.x + " + groupSizeText() + " - 1u) / " +
             groupSizeText();
    case AggGranularity::Grid:
      return "1u";
    case AggGranularity::None:
      break;
    }
    return "1u";
  }

  /// Slot capacity per group as a host-side expression.
  std::string capacityHostText() const {
    switch (Options.Granularity) {
    case AggGranularity::Warp:
      return "32u";
    case AggGranularity::Block:
      return "_aggBlock.x";
    case AggGranularity::MultiBlock:
      return "(" + groupSizeText() + " * _aggBlock.x)";
    case AggGranularity::Grid:
      return "(_aggGrid.x * _aggBlock.x)";
    case AggGranularity::None:
      break;
    }
    return "1u";
  }

  /// Generates `void <parent>_agg(dim3, dim3, <params>)`: allocates the
  /// aggregation buffers, launches the transformed parent, and for grid
  /// granularity performs the aggregated launch from the host.
  template <typename SiteGenVec>
  void generateHostWrapper(FunctionDecl *Parent, const SiteGenVec &Sites) {
    std::string Name = Parent->name() + "_agg";
    std::ostringstream OS;
    OS << "void " << Name << "(dim3 _aggGrid, dim3 _aggBlock";
    // The parent's original parameters (appended buffer params excluded).
    size_t NumOrig = Parent->params().size();
    for (const auto *Gen : Sites)
      NumOrig -= bufferParams(Gen->Site, Gen->K).size();
    for (size_t I = 0; I < NumOrig; ++I) {
      const VarDecl *P = Parent->params()[I];
      OS << ", " << P->type().str() << (P->type().isPointer() ? "" : " ")
         << P->name();
    }
    OS << ") {\n";
    OS << "  unsigned int _aggNumGroups = " << numGroupsHostText() << ";\n";
    OS << "  unsigned int _aggSlots = _aggNumGroups * " << capacityHostText()
       << ";\n";

    std::vector<std::string> AllBuffers;
    for (const auto *Gen : Sites) {
      for (const auto &[BufName, Ty] : bufferParams(Gen->Site, Gen->K)) {
        Type Elem = Ty.pointee();
        bool PerGroup = BufName.rfind("_aggCnt", 0) == 0 ||
                        BufName.rfind("_aggMaxB", 0) == 0 ||
                        BufName.rfind("_aggFin", 0) == 0;
        std::string Count = PerGroup ? "_aggNumGroups" : "_aggSlots";
        OS << "  " << Ty.str() << BufName << " = 0;\n";
        OS << "  cudaMalloc((void **)&" << BufName << ", " << Count
           << " * sizeof(" << Elem.str() << "));\n";
        if (PerGroup)
          OS << "  cudaMemset(" << BufName << ", 0, " << Count << " * sizeof("
             << Elem.str() << "));\n";
        AllBuffers.push_back(BufName);
      }
    }

    OS << "  " << Parent->name() << "<<<_aggGrid, _aggBlock>>>(";
    for (size_t I = 0; I < Parent->params().size(); ++I) {
      if (I)
        OS << ", ";
      OS << Parent->params()[I]->name();
    }
    OS << ");\n";

    if (Options.Granularity == AggGranularity::Grid) {
      OS << "  cudaDeviceSynchronize();\n";
      for (const auto *Gen : Sites) {
        std::string S = std::to_string(Gen->K);
        OS << "  {\n";
        OS << "    unsigned long long _aggPacked = 0;\n";
        OS << "    cudaMemcpy(&_aggPacked, _aggCnt" << S
           << ", sizeof(unsigned long long), cudaMemcpyDeviceToHost);\n";
        OS << "    unsigned int _aggNumP = (unsigned int)(_aggPacked >> "
              "32);\n";
        OS << "    unsigned int _aggTotal = (unsigned int)(_aggPacked & "
              "4294967295u);\n";
        OS << "    unsigned int _aggMaxBH = 0u;\n";
        OS << "    cudaMemcpy(&_aggMaxBH, _aggMaxB" << S
           << ", sizeof(unsigned int), cudaMemcpyDeviceToHost);\n";
        OS << "    if (_aggTotal > 0u) {\n";
        OS << "      " << AggKernelNames.at(Gen->Site.Child)
           << "<<<_aggTotal, _aggMaxBH>>>(";
        for (size_t I = 0; I < Gen->Site.Child->params().size(); ++I)
          OS << "_aggArg" << I << "_" << S << ", ";
        OS << "_aggScan" << S << ", _aggBDimArr" << S << ", _aggNumP);\n";
        OS << "    }\n  }\n";
      }
    }

    OS << "  cudaDeviceSynchronize();\n";
    for (const std::string &BufName : AllBuffers)
      OS << "  cudaFree(" << BufName << ");\n";
    OS << "}\n";

    FunctionDecl *Wrapper = parseFunction(OS.str(), Name);
    if (!Wrapper)
      return;
    TU->decls().push_back(Wrapper);
    WrapperNames[Parent] = Name;
  }

  /// Replaces `parent<<<g, b>>>(args)` on the host with
  /// `parent_agg(dim3(g,1,1), dim3(b,1,1), args)`.
  Stmt *buildWrapperCall(FunctionDecl *Parent, const LaunchSite &Site) {
    auto AsDim3 = [&](Expr *E) -> Expr * {
      if (E->type().isDim3())
        return E;
      auto *Ctor = Ctx.create<CallExpr>(
          Ctx.ref("dim3"),
          std::vector<Expr *>{E, Ctx.intLit(1), Ctx.intLit(1)});
      Ctor->setType(Type(BuiltinKind::Dim3));
      return Ctor;
    };
    std::vector<Expr *> Args;
    Args.push_back(AsDim3(Site.Launch->gridDim()));
    Args.push_back(AsDim3(Site.Launch->blockDim()));
    for (Expr *Arg : Site.Launch->args())
      Args.push_back(Arg);
    return Ctx.create<CallExpr>(Ctx.ref(WrapperNames.at(Parent)),
                                std::move(Args));
  }

  ASTContext &Ctx;
  TranslationUnit *TU;
  const AggregationOptions &Options;
  DiagnosticEngine &Diags;
  AnalysisManager &AM;
  std::map<const FunctionDecl *, std::string> AggKernelNames;
  std::map<const FunctionDecl *, std::string> WrapperNames;
  unsigned SiteCounter = 0;
};

} // namespace

AggregationResult dpo::applyAggregation(ASTContext &Ctx, TranslationUnit *TU,
                                        const AggregationOptions &Options,
                                        DiagnosticEngine &Diags,
                                        AnalysisManager &AM) {
  AggregationTransformer Transformer(Ctx, TU, Options, Diags, AM);
  return Transformer.run();
}

AggregationResult dpo::applyAggregation(ASTContext &Ctx, TranslationUnit *TU,
                                        const AggregationOptions &Options,
                                        DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return applyAggregation(Ctx, TU, Options, Diags, AM);
}

std::string AggregationPass::repr() const {
  std::string R =
      std::string("aggregate[") + aggGranularityName(Options.Granularity);
  // aggGranularityName spells MultiBlock "multi-block"; the pipeline
  // grammar uses "multiblock" (no separator, easier to type on a CLI).
  if (Options.Granularity == AggGranularity::MultiBlock)
    R = "aggregate[multiblock:" + std::to_string(Options.GroupSize);
  if (Options.UseAggregationThreshold)
    R += ":agg-threshold=" + std::to_string(Options.AggregationThreshold);
  if (Options.Spelling == KnobSpelling::Literal)
    R += ":literal";
  return R + "]";
}

PreservedAnalyses AggregationPass::run(ASTContext &Ctx, TranslationUnit *TU,
                                       AnalysisManager &AM,
                                       DiagnosticEngine &Diags) {
  Result = applyAggregation(Ctx, TU, Options, Diags, AM);
  // Skips leave the unit untouched; only actual transformation (which
  // removes launch statements and splices generated kernels) invalidates.
  if (Result.TransformedLaunches == 0 && Result.GeneratedKernels == 0)
    return PreservedAnalyses::all();
  return PreservedAnalyses::none();
}
