//===--- SpeculationPass.cpp ----------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/SpeculationPass.h"

#include "ast/Clone.h"
#include "ast/Walk.h"
#include "profile/Profile.h"
#include "sema/LaunchSites.h"
#include "sema/PurityAnalysis.h"
#include "sema/Transformability.h"
#include "support/Casting.h"
#include "transform/SerialKernel.h"

#include <algorithm>
#include <unordered_map>

using namespace dpo;

namespace {

class SpeculationTransformer {
public:
  SpeculationTransformer(ASTContext &Ctx, TranslationUnit *TU,
                         const SpeculationOptions &Options,
                         DiagnosticEngine &Diags, AnalysisManager &AM)
      : Ctx(Ctx), TU(TU), Options(Options), Diags(Diags), AM(AM),
        Serial(Ctx, TU, Diags) {}

  SpeculationResult run() {
    SpeculationResult Result;
    const std::vector<LaunchSite> &AllSites = AM.launchSites();
    const LaunchProfile *Profile =
        Options.UseProfile ? Options.Profile : nullptr;

    struct PlannedSite {
      LaunchSite Site;
      uint64_t Bound = 0; ///< Guard bound (total threads <= Bound).
    };
    std::vector<PlannedSite> Planned;
    // Site ordinals count *every* site in walk order — the same counting
    // the bytecode compiler uses to name sites, so profile lookups key on
    // the names grid logs recorded.
    std::unordered_map<std::string, unsigned> SiteOrdinals;
    for (const LaunchSite &Site : AllSites) {
      std::string SitePair =
          Site.Caller->name() + "->" + Site.Launch->kernel();
      std::string SiteName =
          SitePair + "#" + std::to_string(SiteOrdinals[SitePair]++);
      if (!Site.FromKernel)
        continue; // Host launches are not dynamic parallelism.
      std::string Where =
          Site.Caller->name() + " -> " + Site.Launch->kernel();
      if (!Site.InStatementPosition) {
        skip(Result, Where + ": launch is not in statement position");
        continue;
      }
      if (!Site.Child || !Site.Child->isDefinition()) {
        skip(Result, Where + ": child kernel definition not found");
        continue;
      }
      const Transformability &T = AM.serializability(Site.Child);
      if (!T.Serializable) {
        skip(Result, Where + ": " + T.Reasons.front());
        continue;
      }
      // The guard multiplies grid by block dim, so both must be scalar —
      // and both are re-evaluated on each branch, so both must be pure.
      if (Site.Launch->gridDim()->type().isDim3() ||
          Site.Launch->blockDim()->type().isDim3()) {
        skip(Result, Where + ": dim3 launch configuration");
        continue;
      }
      if (!AM.isPure(Site.Launch->gridDim(), Site.Caller) ||
          !AM.isPure(Site.Launch->blockDim(), Site.Caller)) {
        skip(Result, Where + ": launch configuration is not pure");
        continue;
      }
      PlannedSite P;
      P.Site = Site;
      P.Bound = Options.MaxThreads;
      if (Options.UseProfile &&
          (!Profile || !Profile->siteSpeculationBound(SiteName, P.Bound))) {
        skip(Result, Where + ": site absent from profile");
        continue;
      }
      Planned.push_back(P);
    }

    if (Planned.empty())
      return Result;

    // Per-site values can't share one macro: profile mode always spells
    // its bounds as literals.
    if (Options.Spelling == KnobSpelling::Macro && !Options.UseProfile)
      emitMacroDefault(Options.MacroName, Options.MaxThreads);
    // The guard itself: the VM compiles the call to a dedicated opcode;
    // host compilers get this macro so the printed source stays valid.
    TU->decls().insert(
        TU->decls().begin(),
        Ctx.create<RawDecl>("#ifndef __dpo_spec_guard\n"
                            "#define __dpo_spec_guard(n, k) ((n) <= (k))\n"
                            "#endif"));

    for (const PlannedSite &P : Planned)
      Serial.ensureSerialVersion(P.Site.Child, AllSites);

    std::unordered_map<const Stmt *, Stmt *> Replacements;
    for (const PlannedSite &P : Planned)
      Replacements[P.Site.Launch] = buildSpeculatedLaunch(P.Site, P.Bound);

    for (Decl *D : TU->decls()) {
      auto *F = dyn_cast<FunctionDecl>(D);
      if (!F || !F->body())
        continue;
      rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
        auto It = Replacements.find(S);
        return It != Replacements.end() ? It->second : nullptr;
      });
    }

    Result.SpeculatedLaunches = Planned.size();
    Result.SerializedNestedLaunches = Serial.nestedLaunchSerials();
    for (const PlannedSite &P : Planned) {
      const FunctionDecl *Caller = P.Site.Caller;
      if (std::find(Result.TouchedFunctions.begin(),
                    Result.TouchedFunctions.end(),
                    Caller) == Result.TouchedFunctions.end())
        Result.TouchedFunctions.push_back(Caller);
    }
    return Result;
  }

private:
  void skip(SpeculationResult &Result, std::string Reason) {
    ++Result.SkippedLaunches;
    Result.SkipReasons.push_back(std::move(Reason));
  }

  void emitMacroDefault(const std::string &Macro, unsigned Value) {
    std::string Text = "#ifndef " + Macro + "\n#define " + Macro + " " +
                       std::to_string(Value) + "\n#endif";
    TU->decls().insert(TU->decls().begin(), Ctx.create<RawDecl>(Text));
  }

  Expr *boundExpr(uint64_t Bound) {
    if (Options.Spelling == KnobSpelling::Macro && !Options.UseProfile)
      return Ctx.ref(Options.MacroName);
    return Ctx.intLit(Bound);
  }

  /// Builds the speculated replacement for one launch:
  ///   { unsigned long long _specK = (gDim) * (bDim);
  ///     if (__dpo_spec_guard(_specK, BOUND)) { <serial call>; }
  ///     else { <launch>; } }
  Stmt *buildSpeculatedLaunch(const LaunchSite &Site, uint64_t Bound) {
    LaunchExpr *L = Site.Launch;
    std::string CountVar = "_spec" + std::to_string(SiteCounter++);

    Expr *CountInit = Ctx.binary(
        BinaryOpKind::Mul, Ctx.paren(cloneExpr(Ctx, L->gridDim())),
        Ctx.paren(cloneExpr(Ctx, L->blockDim())));
    Type CountType(BuiltinKind::ULongLong);
    auto *CountDecl = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
        Ctx.create<VarDecl>(CountType, CountVar, CountInit)});

    Expr *SerialCall = Serial.buildSerialCall(Site);

    auto *CountRef = Ctx.ref(CountVar);
    CountRef->setType(CountType);
    Expr *Guard = Ctx.create<CallExpr>(
        Ctx.ref("__dpo_spec_guard"),
        std::vector<Expr *>{CountRef, boundExpr(Bound)});
    auto *If = Ctx.create<IfStmt>(Guard, Ctx.compound({SerialCall}),
                                  Ctx.compound({L}));
    return Ctx.compound({CountDecl, If});
  }

  ASTContext &Ctx;
  TranslationUnit *TU;
  const SpeculationOptions &Options;
  DiagnosticEngine &Diags;
  AnalysisManager &AM;
  SerialKernelBuilder Serial;
  unsigned SiteCounter = 0;
};

} // namespace

SpeculationResult dpo::applySpeculation(ASTContext &Ctx, TranslationUnit *TU,
                                        const SpeculationOptions &Options,
                                        DiagnosticEngine &Diags,
                                        AnalysisManager &AM) {
  SpeculationTransformer Transformer(Ctx, TU, Options, Diags, AM);
  return Transformer.run();
}

SpeculationResult dpo::applySpeculation(ASTContext &Ctx, TranslationUnit *TU,
                                        const SpeculationOptions &Options,
                                        DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return applySpeculation(Ctx, TU, Options, Diags, AM);
}

std::string SpeculationPass::repr() const {
  if (Options.UseProfile)
    return "speculate[profile]";
  std::string R = "speculate[" + std::to_string(Options.MaxThreads);
  if (Options.Spelling == KnobSpelling::Literal)
    R += ":literal";
  return R + "]";
}

PreservedAnalyses SpeculationPass::run(ASTContext &Ctx, TranslationUnit *TU,
                                       AnalysisManager &AM,
                                       DiagnosticEngine &Diags) {
  Result = applySpeculation(Ctx, TU, Options, Diags, AM);
  if (Result.SpeculatedLaunches == 0)
    return PreservedAnalyses::all();
  PreservedAnalyses PA;
  // Child kernel bodies are untouched, so serializability verdicts hold.
  PA.preserve(AnalysisID::Transformability);
  // The rewrite keeps the original LaunchExpr node in the else branch, so
  // the cached site list stays exact — unless serialization cloned a body
  // with nested launches.
  if (Result.SerializedNestedLaunches == 0)
    PA.preserve(AnalysisID::LaunchSites);
  PA.limitToFunctions(Result.TouchedFunctions);
  return PA;
}
