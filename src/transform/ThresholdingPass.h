//===--- ThresholdingPass.h - Section III: automated thresholding ------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's thresholding transformation (Fig. 3): a dynamic
/// launch is performed only when the desired number of child threads meets
/// a threshold; otherwise the child's work is serialized in the parent
/// thread by calling a generated `<child>_serial` __device__ function.
///
/// Per Section III-C, kernels that synchronize (barriers / warp primitives)
/// or use shared memory are not transformed. Per Section III-D, the desired
/// thread count is recovered from the grid-dimension expression by the
/// Fig. 4 ceiling-division pattern matcher.
///
/// Deviation from the figure, documented here: when the child body contains
/// early `return`s, the serial version is generated as loops around a call
/// to a per-thread helper function (a `return` inside inline loops would
/// abort all remaining serialized threads instead of just one).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_THRESHOLDINGPASS_H
#define DPO_TRANSFORM_THRESHOLDINGPASS_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "transform/PassManager.h"
#include "transform/PassOptions.h"

#include <string>
#include <vector>

namespace dpo {

struct ThresholdingResult {
  unsigned TransformedLaunches = 0;
  unsigned SkippedLaunches = 0;
  /// Serial versions generated from child bodies that themselves contain
  /// launches (nested dynamic parallelism). Cloning such a body duplicates
  /// launch sites, so a nonzero count invalidates the launch-site analysis.
  unsigned SerializedNestedLaunches = 0;
  /// The functions whose bodies the pass mutated (launch statements
  /// rewritten) — the scope of the analysis invalidation. Generated
  /// serial functions are new declarations and need no entry.
  std::vector<const FunctionDecl *> TouchedFunctions;
  std::vector<std::string> SkipReasons;
  bool ok() const { return true; } ///< Skips never make the output invalid.
};

/// Applies thresholding to every dynamic launch site in \p TU, in place,
/// consuming (and crediting cache hits to) \p AM's analyses.
ThresholdingResult applyThresholding(ASTContext &Ctx, TranslationUnit *TU,
                                     const ThresholdingOptions &Options,
                                     DiagnosticEngine &Diags,
                                     AnalysisManager &AM);

/// Standalone form: runs with a private AnalysisManager (every analysis
/// computed fresh, the pre-pass-manager behavior).
ThresholdingResult applyThresholding(ASTContext &Ctx, TranslationUnit *TU,
                                     const ThresholdingOptions &Options,
                                     DiagnosticEngine &Diags);

/// The thresholding transformation as a pipeline pass. Preserves the
/// launch-site analysis (the rewrite wraps the original launch nodes in
/// place) unless a serialized child contained nested launches, and the
/// transformability cache (child kernel bodies are untouched); grid-dim
/// results are consumed by the rewrite, so they are never preserved.
class ThresholdingPass : public TransformPass {
public:
  explicit ThresholdingPass(ThresholdingOptions Options = {})
      : Options(std::move(Options)) {}

  std::string name() const override { return "threshold"; }
  std::string repr() const override;
  PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                        AnalysisManager &AM, DiagnosticEngine &Diags) override;

  const ThresholdingOptions &options() const { return Options; }
  const ThresholdingResult &result() const { return Result; }

private:
  ThresholdingOptions Options;
  ThresholdingResult Result;
};

} // namespace dpo

#endif // DPO_TRANSFORM_THRESHOLDINGPASS_H
