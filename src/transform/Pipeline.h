//===--- Pipeline.h - Section VI: the combined compilation flow --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 8(a) flow: thresholding, then coarsening, then aggregation,
/// each an independent source-to-source pass. The ordering rationale from
/// the paper: thresholding before coarsening because coarsening rewrites
/// the grid dimension and would obscure the ceiling-division pattern;
/// thresholding before aggregation because small grids are easier to
/// isolate before they are combined; coarsening before aggregation so the
/// disaggregation logic lands outside the coarsening loop and is amortized.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_PIPELINE_H
#define DPO_TRANSFORM_PIPELINE_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "support/Diagnostics.h"
#include "transform/AggregationPass.h"
#include "transform/CoarseningPass.h"
#include "transform/PassOptions.h"
#include "transform/ThresholdingPass.h"

#include <string>
#include <string_view>

namespace dpo {

struct PipelineOptions {
  bool EnableThresholding = false;
  bool EnableCoarsening = false;
  bool EnableAggregation = false;
  ThresholdingOptions Thresholding;
  CoarseningOptions Coarsening;
  AggregationOptions Aggregation;

  /// Convenience: spell every knob as a literal (for VM execution).
  void useLiteralKnobs() {
    Thresholding.Spelling = KnobSpelling::Literal;
    Coarsening.Spelling = KnobSpelling::Literal;
    Aggregation.Spelling = KnobSpelling::Literal;
  }
};

struct PipelineResult {
  ThresholdingResult Thresholding;
  CoarseningResult Coarsening;
  AggregationResult Aggregation;
  bool Ok = true;
};

/// Runs the enabled passes in the Fig. 8(a) order, in place.
PipelineResult runPipeline(ASTContext &Ctx, TranslationUnit *TU,
                           const PipelineOptions &Options,
                           DiagnosticEngine &Diags);

/// Text-to-text convenience: parse, transform, print. Returns an empty
/// string on error (diagnostics explain why).
std::string transformSource(std::string_view Source,
                            const PipelineOptions &Options,
                            DiagnosticEngine &Diags);

} // namespace dpo

#endif // DPO_TRANSFORM_PIPELINE_H
