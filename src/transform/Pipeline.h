//===--- Pipeline.h - Section VI: the combined compilation flow --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 8(a) flow: thresholding, then coarsening, then aggregation,
/// each an independent source-to-source pass. The ordering rationale from
/// the paper: thresholding before coarsening because coarsening rewrites
/// the grid dimension and would obscure the ceiling-division pattern;
/// thresholding before aggregation because small grids are easier to
/// isolate before they are combined; coarsening before aggregation so the
/// disaggregation logic lands outside the coarsening loop and is amortized.
///
/// Since the pass-manager refactor this file is a thin convenience layer:
/// runPipeline/transformSource build a PassManager in the Fig. 8(a) order
/// and run it with a shared AnalysisManager, so the launch-site analysis is
/// computed once for the whole pipeline instead of once per pass. Custom
/// orderings come from parsePassPipeline / transformSourceWithPipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_PIPELINE_H
#define DPO_TRANSFORM_PIPELINE_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "sema/Analysis.h"
#include "support/Diagnostics.h"
#include "transform/AggregationPass.h"
#include "transform/CoarseningPass.h"
#include "transform/PassManager.h"
#include "transform/PassOptions.h"
#include "transform/ThresholdingPass.h"

#include <string>
#include <string_view>

namespace dpo {

struct PipelineOptions {
  bool EnableThresholding = false;
  bool EnableCoarsening = false;
  bool EnableAggregation = false;
  ThresholdingOptions Thresholding;
  CoarseningOptions Coarsening;
  AggregationOptions Aggregation;
  /// Execution profile handed to passes running in profile mode (the
  /// `profile` pass parameter). Not owned; may be null.
  const LaunchProfile *Profile = nullptr;

  /// Convenience: spell every knob as a literal (for VM execution).
  void useLiteralKnobs() {
    Thresholding.Spelling = KnobSpelling::Literal;
    Coarsening.Spelling = KnobSpelling::Literal;
    Aggregation.Spelling = KnobSpelling::Literal;
  }
};

struct PipelineResult {
  ThresholdingResult Thresholding;
  CoarseningResult Coarsening;
  AggregationResult Aggregation;
  bool Ok = true;
};

/// Appends the passes enabled in \p Options to \p PM, in the Fig. 8(a)
/// order.
void buildPassPipeline(PassManager &PM, const PipelineOptions &Options);

/// The knob defaults of \p Options as a textual-pipeline configuration.
PassPipelineConfig pipelineConfigFrom(const PipelineOptions &Options);

/// A textual-pipeline configuration whose knob spellings are all literal —
/// what VM execution requires (the VM has no preprocessor to give the
/// `_THRESHOLD`/`_CFACTOR`/`_AGG_SIZE` macros values). The empirical tuner
/// parses pipelines produced by passPipelineTextFor with these defaults.
/// \p Profile (optional, not owned) backs the `profile` pass parameter.
PassPipelineConfig literalKnobConfig(const LaunchProfile *Profile = nullptr);

/// Runs the enabled passes in the Fig. 8(a) order, in place, sharing
/// \p AM's analysis cache across the passes.
PipelineResult runPipeline(ASTContext &Ctx, TranslationUnit *TU,
                           const PipelineOptions &Options,
                           DiagnosticEngine &Diags, AnalysisManager &AM);

/// Same, with a pipeline-private AnalysisManager.
PipelineResult runPipeline(ASTContext &Ctx, TranslationUnit *TU,
                           const PipelineOptions &Options,
                           DiagnosticEngine &Diags);

/// Text-to-text convenience: parse, transform, print. Returns an empty
/// string on error (diagnostics explain why).
std::string transformSource(std::string_view Source,
                            const PipelineOptions &Options,
                            DiagnosticEngine &Diags);

/// Text-to-text with a textual pass pipeline ("threshold,coarsen,
/// aggregate[multiblock:8]"; see PassManager.h for the grammar). Knob
/// values not overridden in the text come from \p Config. On success,
/// optionally writes the pass-timing/analysis-cache report to
/// \p StatsReport. Returns an empty string on error: pipeline-parse
/// failures are reported as diagnostics too.
std::string transformSourceWithPipeline(std::string_view Source,
                                        std::string_view PipelineText,
                                        const PassPipelineConfig &Config,
                                        DiagnosticEngine &Diags,
                                        std::string *StatsReport = nullptr);

/// Canonicalizes \p PipelineText by parsing it against \p Config and
/// re-rendering via PassManager::pipelineText(), so differently-spelled
/// but equivalent pipelines ("threshold[128]" written with default knobs
/// vs. spelled out) hash to the same artifact-cache key. Returns false
/// with \p Error on a parse failure. An empty pipeline canonicalizes to
/// the empty string.
bool canonicalPipelineText(std::string_view PipelineText,
                           const PassPipelineConfig &Config,
                           std::string &Canonical, std::string &Error);

/// A deterministic textual rendering of every knob in \p Config that can
/// change a pass's output (thresholds, factors, spellings, aggregation
/// shape, speculation, and whether a profile is attached — profiles are
/// content-hashed via their textual serialization). The service layer
/// folds this into artifact-cache keys so knob changes never alias.
std::string knobSignature(const PassPipelineConfig &Config);

} // namespace dpo

#endif // DPO_TRANSFORM_PIPELINE_H
