//===--- PassManager.h - Composable source-to-source pass pipeline -----------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style pass infrastructure for the paper's transformations. The
/// three paper passes (thresholding, coarsening, aggregation) and the
/// builtin-rewrite building block are TransformPass subclasses; a
/// PassManager runs a sequence of them over one translation unit, sharing
/// an AnalysisManager so sema analyses are computed once and invalidated
/// only when a pass mutates state they depend on (each pass declares what
/// it preserved via PreservedAnalyses).
///
/// Pipelines can be built programmatically (buildPassPipeline in
/// Pipeline.h) or parsed from text (parsePassPipeline), e.g.:
///
///   threshold,coarsen,aggregate[multiblock:8]
///   threshold[256:fallback],coarsen[8:literal]
///
/// Grammar (see src/transform/README.md for the full description):
///
///   pipeline := pass (',' pass)*
///   pass     := name ('[' param (':' param)* ']')?
///
/// Pass names and parameter meanings come from the PassRegistry, which
/// also accepts externally registered passes (tests register custom ones).
/// The PassManager records per-pass wall time; statsReport() renders the
/// timings together with the AnalysisManager's cache counters
/// (dpoptcc --print-pass-stats).
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_PASSMANAGER_H
#define DPO_TRANSFORM_PASSMANAGER_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "sema/Analysis.h"
#include "support/Diagnostics.h"
#include "transform/PassOptions.h"

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dpo {

/// Base class of every source-to-source transformation pass. A pass runs
/// in place over the translation unit and reports which cached analyses
/// are still valid afterwards.
class TransformPass {
public:
  virtual ~TransformPass() = default;

  /// The registry name ("threshold", "coarsen", ...).
  virtual std::string name() const = 0;

  /// Canonical pipeline-text spelling, including parameters
  /// ("threshold[128]"). parsePassPipeline(repr()) reconstructs the pass.
  virtual std::string repr() const { return name(); }

  /// Transforms \p TU in place. Errors go to \p Diags (a pass that
  /// reported an error aborts the pipeline). The returned set names the
  /// analyses whose cached results are still valid.
  virtual PreservedAnalyses run(ASTContext &Ctx, TranslationUnit *TU,
                                AnalysisManager &AM,
                                DiagnosticEngine &Diags) = 0;
};

/// Wall time of one executed pass.
struct PassTiming {
  std::string Name;
  double Millis = 0.0;
};

/// Runs an ordered sequence of passes over one translation unit.
class PassManager {
public:
  void addPass(std::unique_ptr<TransformPass> Pass);

  bool empty() const { return Passes.empty(); }
  size_t size() const { return Passes.size(); }
  const std::vector<std::unique_ptr<TransformPass>> &passes() const {
    return Passes;
  }

  /// Runs every pass in order, invalidating non-preserved analyses
  /// between passes. Stops at (and returns false after) the first pass
  /// that reports an error.
  bool run(ASTContext &Ctx, TranslationUnit *TU, AnalysisManager &AM,
           DiagnosticEngine &Diags);

  /// Timings of the passes executed by the last run() call.
  const std::vector<PassTiming> &timings() const { return Timings; }

  /// The canonical pipeline text ("threshold[128],coarsen[4]").
  std::string pipelineText() const;

  /// Per-pass timing table plus \p AM's analysis-cache counters.
  std::string statsReport(const AnalysisManager &AM) const;

private:
  std::vector<std::unique_ptr<TransformPass>> Passes;
  std::vector<PassTiming> Timings;
};

/// Default knob values handed to pass factories; textual parameters
/// override fields of the matching options struct.
struct PassPipelineConfig {
  ThresholdingOptions Thresholding;
  CoarseningOptions Coarsening;
  SpeculationOptions Speculation;
  AggregationOptions Aggregation;
  /// Profile consulted by the `profile` pass parameter
  /// (`threshold[profile]` etc.). Null means "no profile": passes fall
  /// back to their literal knobs; `speculate[profile]` transforms
  /// nothing. Not owned; must outlive the constructed passes.
  const LaunchProfile *Profile = nullptr;
};

/// Name -> factory map for pipeline parsing. The four builtin passes are
/// pre-registered; registerPass accepts additional ones.
class PassRegistry {
public:
  /// Builds a pass from its bracket parameters ("multiblock:8"; empty
  /// when absent). Returns null and sets \p Error on a malformed spec.
  using Factory = std::function<std::unique_ptr<TransformPass>(
      std::string_view Params, const PassPipelineConfig &Config,
      std::string &Error)>;

  /// The process-wide registry (builtin passes pre-registered).
  static PassRegistry &global();

  /// Registers a pass; returns false if \p Name is already taken.
  bool registerPass(std::string Name, std::string Description, Factory F);

  bool contains(std::string_view Name) const;

  /// Instantiates the named pass. Null + \p Error on unknown names or
  /// malformed parameters.
  std::unique_ptr<TransformPass> create(std::string_view Name,
                                        std::string_view Params,
                                        const PassPipelineConfig &Config,
                                        std::string &Error) const;

  /// (name, description) of every registered pass, registration order.
  std::vector<std::pair<std::string, std::string>> entries() const;

private:
  PassRegistry();

  struct Entry {
    std::string Name;
    std::string Description;
    Factory Make;
  };
  std::vector<Entry> Entries;
};

/// Parses \p Text (the grammar above) and appends the passes to \p PM.
/// Returns false and sets \p Error (leaving \p PM possibly partially
/// extended) on malformed input.
bool parsePassPipeline(PassManager &PM, std::string_view Text,
                       const PassPipelineConfig &Config, std::string &Error);

} // namespace dpo

#endif // DPO_TRANSFORM_PASSMANAGER_H
