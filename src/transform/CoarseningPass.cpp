//===--- CoarseningPass.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Two codegen modes per kernel:
///  - scalar mode (all launches use scalar 1-D grid configurations): the
///    appended parameter is `unsigned int _gDimX`. This keeps launch
///    configurations scalar so the aggregation pass can compose after
///    coarsening (its buffers store 32-bit configurations, Fig. 8).
///  - dim3 mode (some launch uses a dim3 grid): the appended parameter is
///    `dim3 _gDim` exactly as in Fig. 6. Only the x dimension is coarsened;
///    y/z extents are unchanged, so `gridDim.y/z` stay valid in the body.
///
//===----------------------------------------------------------------------===//

#include "transform/CoarseningPass.h"

#include "ast/Clone.h"
#include "ast/Walk.h"
#include "profile/Profile.h"
#include "sema/LaunchSites.h"
#include "support/Casting.h"
#include "transform/BuiltinRewrite.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace dpo;

namespace {

bool containsReturn(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isa<ReturnStmt>(S))
      Found = true;
  });
  return Found;
}

std::string freshFunctionName(const TranslationUnit *TU,
                              const std::string &Base) {
  if (!TU->findFunction(Base))
    return Base;
  for (unsigned I = 1;; ++I) {
    std::string Candidate = Base + "_" + std::to_string(I);
    if (!TU->findFunction(Candidate))
      return Candidate;
  }
}

class CoarseningTransformer {
public:
  CoarseningTransformer(ASTContext &Ctx, TranslationUnit *TU,
                        const CoarseningOptions &Options,
                        DiagnosticEngine &Diags, AnalysisManager &AM)
      : Ctx(Ctx), TU(TU), Options(Options), Diags(Diags), AM(AM) {}

  CoarseningResult run() {
    CoarseningResult Result;
    const std::vector<LaunchSite> &AllSites = AM.launchSites();

    // Candidate kernels: children of dynamic launches.
    std::set<FunctionDecl *> Candidates;
    for (const LaunchSite &Site : AllSites)
      if (Site.FromKernel && Site.Child && Site.Child->isDefinition())
        Candidates.insert(Site.Child);

    // A kernel is only coarsened if every launch of it can be patched
    // (kernels are modified in place, so all callers must agree).
    std::set<FunctionDecl *> Skipped;
    for (FunctionDecl *Child : Candidates) {
      std::string Reason;
      if (!canCoarsen(Child, AllSites, Reason)) {
        Skipped.insert(Child);
        ++Result.SkippedLaunches;
        Result.SkipReasons.push_back(Child->name() + ": " + Reason);
      }
    }

    bool AnyCoarsened = false;
    for (FunctionDecl *Child : Candidates) {
      if (Skipped.count(Child))
        continue;
      ScalarMode[Child] = allLaunchesScalar(Child, AllSites);
      // The body is about to be cloned into the strided loop; nested
      // launches inside it get duplicated, which stales the cached sites.
      bool HasNestedLaunch = false;
      forEachExpr(Child->body(), [&](const Expr *E) {
        if (isa<LaunchExpr>(E))
          HasNestedLaunch = true;
      });
      if (HasNestedLaunch)
        ++Result.CoarsenedNestedLaunchKernels;
      coarsenKernel(Child);
      ++Result.CoarsenedKernels;
      Result.TouchedFunctions.push_back(Child);
      AnyCoarsened = true;
    }
    if (!AnyCoarsened)
      return Result;

    // Per-site values can't share one macro: profile mode always spells
    // its factors as literals.
    if (Options.Spelling == KnobSpelling::Macro && !Options.UseProfile)
      emitMacroDefault(Options.MacroName, Options.Factor);

    const LaunchProfile *Profile =
        Options.UseProfile ? Options.Profile : nullptr;

    // Patch every launch of every coarsened kernel. Site ordinals count
    // *every* site in walk order — the same counting the bytecode
    // compiler uses to name sites, so profile lookups key on the names
    // grid logs recorded.
    std::unordered_map<const Stmt *, Stmt *> Replacements;
    std::unordered_map<std::string, unsigned> SiteOrdinals;
    for (const LaunchSite &Site : AllSites) {
      std::string SitePair =
          Site.Caller->name() + "->" + Site.Launch->kernel();
      std::string SiteName =
          SitePair + "#" + std::to_string(SiteOrdinals[SitePair]++);
      if (!Site.Child || Skipped.count(Site.Child) ||
          !Candidates.count(Site.Child))
        continue;
      unsigned Factor =
          Profile ? Profile->siteCoarsenFactor(SiteName, Options.Factor)
                  : Options.Factor;
      // A per-site factor of 1 keeps the identity configuration (the
      // kernel is already coarsened in place, so the launch still passes
      // the original grid, striding exactly once per block).
      Replacements[Site.Launch] =
          buildPatchedLaunch(Site, Site.FromKernel && Factor > 1, Factor);
      ++Result.RewrittenLaunches;
      if (std::find(Result.TouchedFunctions.begin(),
                    Result.TouchedFunctions.end(),
                    Site.Caller) == Result.TouchedFunctions.end())
        Result.TouchedFunctions.push_back(Site.Caller);
    }

    for (Decl *D : TU->decls()) {
      auto *F = dyn_cast<FunctionDecl>(D);
      if (!F || !F->body())
        continue;
      rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
        auto It = Replacements.find(S);
        return It != Replacements.end() ? It->second : nullptr;
      });
    }
    return Result;
  }

private:
  bool canCoarsen(FunctionDecl *Child, const std::vector<LaunchSite> &AllSites,
                  std::string &Reason) {
    for (const VarDecl *P : Child->params()) {
      if (P->name() == "_gDim" || P->name() == "_gDimX") {
        Reason = "kernel already has an _gDim parameter (coarsened twice?)";
        return false;
      }
    }
    for (const LaunchSite &Site : AllSites) {
      if (Site.Child != Child)
        continue;
      if (!Site.InStatementPosition) {
        Reason = "a launch of this kernel is not in statement position";
        return false;
      }
    }
    return true;
  }

  bool allLaunchesScalar(FunctionDecl *Child,
                         const std::vector<LaunchSite> &AllSites) {
    for (const LaunchSite &Site : AllSites)
      if (Site.Child == Child && Site.Launch->gridDim()->type().isDim3())
        return false;
    return true;
  }

  void emitMacroDefault(const std::string &Macro, unsigned Value) {
    std::string Text = "#ifndef " + Macro + "\n#define " + Macro + " " +
                       std::to_string(Value) + "\n#endif";
    TU->decls().insert(TU->decls().begin(), Ctx.create<RawDecl>(Text));
  }

  Expr *factorExpr(unsigned Factor) {
    if (Options.Spelling == KnobSpelling::Macro && !Options.UseProfile)
      return Ctx.ref(Options.MacroName);
    return Ctx.intLit(Factor);
  }

  /// Rewrites the kernel in place per Fig. 6: appends the original-grid
  /// parameter and wraps the body in the block-strided loop.
  void coarsenKernel(FunctionDecl *Child) {
    bool Scalar = ScalarMode.at(Child);
    // Collision-free synthesized names: re-coarsening a coarsened kernel
    // (or coarsening a kernel another pass already rewrote) must not let
    // the new grid-stride variable capture the old one, nor append a
    // duplicate original-grid parameter.
    std::unordered_set<std::string> Taken = declaredNames(Child);
    std::string ParamName = freshVarName(Taken, Scalar ? "_gDimX" : "_gDim");
    std::string Bx = freshVarName(Taken, "_bx");

    std::unordered_map<std::string, BuiltinRemap> Map;
    Map["blockIdx"].X = Bx;
    // Only x is coarsened; blockIdx.y/z (and, in scalar mode, gridDim.y/z,
    // which are untouched by coarsening) remain valid.
    Map["blockIdx"].AllowUnmappedComponents = true;
    if (Scalar) {
      Map["gridDim"].X = ParamName;
      Map["gridDim"].AllowUnmappedComponents = true;
    } else {
      Map["gridDim"].Whole = ParamName;
    }

    Type ParamType =
        Scalar ? Type(BuiltinKind::UInt) : Type(BuiltinKind::Dim3);

    // A cooperative child re-runs its body in the same physical block
    // once per strided iteration, reusing the block's shared window. An
    // iteration's lagging readers (threads still consuming shared state
    // after the body's last barrier) must not race the lead thread's
    // re-staging in the next iteration, so each iteration is closed with
    // a barrier — the standard CUDA grid-stride idiom for __shared__
    // kernels.
    bool Cooperative = false;
    forEachStmt(Child->body(), [&](const Stmt *S) {
      if (const auto *Call = dyn_cast<CallExpr>(S))
        if (Call->calleeName() == "__syncthreads")
          Cooperative = true;
      if (const auto *DS = dyn_cast<DeclStmt>(S))
        for (const VarDecl *D : DS->decls())
          if (D->isShared())
            Cooperative = true;
    });

    Stmt *PerBlock = nullptr;
    if (containsReturn(Child->body())) {
      // Early returns would abort the remaining coarsening iterations, so
      // the per-block body moves into a helper function.
      std::string HelperName =
          freshFunctionName(TU, Child->name() + "_coarse_body");
      std::vector<VarDecl *> HelperParams;
      for (const VarDecl *P : Child->params())
        HelperParams.push_back(cloneVarDecl(Ctx, P));
      HelperParams.push_back(Ctx.create<VarDecl>(ParamType, ParamName));
      HelperParams.push_back(
          Ctx.create<VarDecl>(Type(BuiltinKind::UInt), Bx));
      auto *HelperBody = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
      rewriteBuiltins(Ctx, HelperBody, Map, Diags);
      FunctionQualifiers Quals;
      Quals.Device = true;
      auto *Helper = Ctx.create<FunctionDecl>(
          Quals, Type(BuiltinKind::Void), HelperName, std::move(HelperParams),
          HelperBody);
      auto It = std::find(TU->decls().begin(), TU->decls().end(),
                          static_cast<Decl *>(Child));
      assert(It != TU->decls().end() && "kernel not in translation unit");
      TU->decls().insert(It, Helper);

      std::vector<Expr *> CallArgs;
      for (const VarDecl *P : Child->params())
        CallArgs.push_back(Ctx.ref(P->name()));
      CallArgs.push_back(Ctx.ref(ParamName));
      CallArgs.push_back(Ctx.ref(Bx));
      PerBlock =
          Ctx.create<CallExpr>(Ctx.ref(HelperName), std::move(CallArgs));
    } else {
      auto *Body = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
      rewriteBuiltins(Ctx, Body, Map, Diags);
      PerBlock = Body;
    }
    if (Cooperative)
      PerBlock = Ctx.compound(
          {PerBlock, Ctx.create<CallExpr>(Ctx.ref("__syncthreads"),
                                          std::vector<Expr *>{})});

    // for (unsigned int _bx = blockIdx.x; _bx < <bound>; _bx += gridDim.x)
    Expr *Bound = Scalar ? static_cast<Expr *>(Ctx.ref(ParamName))
                         : static_cast<Expr *>(Ctx.member(ParamName, "x"));
    auto *Init = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
        Ctx.create<VarDecl>(Type(BuiltinKind::UInt), Bx,
                            Ctx.member("blockIdx", "x"))});
    auto *Cond = Ctx.binary(BinaryOpKind::LT, Ctx.ref(Bx), Bound);
    auto *Inc = Ctx.binary(BinaryOpKind::AddAssign, Ctx.ref(Bx),
                           Ctx.member("gridDim", "x"));
    auto *Loop = Ctx.create<ForStmt>(Init, Cond, Inc, PerBlock);

    Child->params().push_back(Ctx.create<VarDecl>(ParamType, ParamName));
    Child->setBody(Ctx.compound({Loop}));
  }

  /// Wraps a grid expression into a dim3-typed local.
  DeclStmt *makeDim3Var(const std::string &Name, Expr *Value) {
    Expr *Init = Value;
    if (!Value->type().isDim3()) {
      auto *Ctor = Ctx.create<CallExpr>(
          Ctx.ref("dim3"),
          std::vector<Expr *>{Value, Ctx.intLit(1), Ctx.intLit(1)});
      Ctor->setType(Type(BuiltinKind::Dim3));
      Init = Ctor;
    }
    return Ctx.create<DeclStmt>(std::vector<VarDecl *>{
        Ctx.create<VarDecl>(Type(BuiltinKind::Dim3), Name, Init)});
  }

  /// Fig. 6 lines 08-10 for dynamic launches; identity configuration for
  /// host launches of the same (now coarsened) kernel.
  Stmt *buildPatchedLaunch(const LaunchSite &Site, bool Coarsen,
                           unsigned Factor) {
    LaunchExpr *L = Site.Launch;
    unsigned K = SiteCounter++;
    bool Scalar = ScalarMode.at(Site.Child);

    std::vector<Stmt *> Stmts;
    std::string GVar =
        (Scalar ? "_gDimX" : "_gDim") + std::to_string(K);
    if (Scalar) {
      auto *GDecl = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
          Ctx.create<VarDecl>(Type(BuiltinKind::UInt), GVar, L->gridDim())});
      Stmts.push_back(GDecl);
    } else {
      Stmts.push_back(makeDim3Var(GVar, L->gridDim()));
    }

    std::string ConfigVar = GVar;
    if (Coarsen) {
      // coarsened = (original + _CFACTOR - 1) / _CFACTOR
      auto MakeCeilDiv = [&](Expr *Orig) {
        auto *Num = Ctx.binary(
            BinaryOpKind::Sub,
            Ctx.binary(BinaryOpKind::Add, Orig, factorExpr(Factor)),
            Ctx.intLit(1));
        return Ctx.binary(BinaryOpKind::Div, Ctx.paren(Num),
                          factorExpr(Factor));
      };
      if (Scalar) {
        std::string CVar = "_cgDimX" + std::to_string(K);
        auto *CDecl = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
            Ctx.create<VarDecl>(Type(BuiltinKind::UInt), CVar,
                                MakeCeilDiv(Ctx.ref(GVar)))});
        Stmts.push_back(CDecl);
        ConfigVar = CVar;
      } else {
        std::string CVar = "_cgDim" + std::to_string(K);
        auto *CDecl = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
            Ctx.create<VarDecl>(Type(BuiltinKind::Dim3), CVar,
                                Ctx.ref(GVar))});
        auto *Assign =
            Ctx.binary(BinaryOpKind::Assign, Ctx.member(CVar, "x"),
                       MakeCeilDiv(Ctx.member(GVar, "x")));
        Stmts.push_back(CDecl);
        Stmts.push_back(Assign);
        ConfigVar = CVar;
      }
    }

    auto *ConfigRef = Ctx.ref(ConfigVar);
    ConfigRef->setType(Scalar ? Type(BuiltinKind::UInt)
                              : Type(BuiltinKind::Dim3));
    L->gridDimSlot() = ConfigRef;
    auto *OrigRef = Ctx.ref(GVar);
    OrigRef->setType(Scalar ? Type(BuiltinKind::UInt)
                            : Type(BuiltinKind::Dim3));
    L->args().push_back(OrigRef);
    Stmts.push_back(L);
    return Ctx.compound(std::move(Stmts));
  }

  ASTContext &Ctx;
  TranslationUnit *TU;
  const CoarseningOptions &Options;
  DiagnosticEngine &Diags;
  AnalysisManager &AM;
  std::map<const FunctionDecl *, bool> ScalarMode;
  unsigned SiteCounter = 0;
};

} // namespace

CoarseningResult dpo::applyCoarsening(ASTContext &Ctx, TranslationUnit *TU,
                                      const CoarseningOptions &Options,
                                      DiagnosticEngine &Diags,
                                      AnalysisManager &AM) {
  CoarseningTransformer Transformer(Ctx, TU, Options, Diags, AM);
  return Transformer.run();
}

CoarseningResult dpo::applyCoarsening(ASTContext &Ctx, TranslationUnit *TU,
                                      const CoarseningOptions &Options,
                                      DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return applyCoarsening(Ctx, TU, Options, Diags, AM);
}

std::string CoarseningPass::repr() const {
  if (Options.UseProfile)
    return "coarsen[profile]";
  std::string R = "coarsen[" + std::to_string(Options.Factor);
  if (Options.Spelling == KnobSpelling::Literal)
    R += ":literal";
  return R + "]";
}

PreservedAnalyses CoarseningPass::run(ASTContext &Ctx, TranslationUnit *TU,
                                      AnalysisManager &AM,
                                      DiagnosticEngine &Diags) {
  Result = applyCoarsening(Ctx, TU, Options, Diags, AM);
  if (Result.CoarsenedKernels == 0)
    return PreservedAnalyses::all();
  PreservedAnalyses PA;
  // Patched launches reuse the original LaunchExpr nodes in place, so the
  // cached site list stays exact unless a cloned body duplicated launches.
  if (Result.CoarsenedNestedLaunchKernels == 0)
    PA.preserve(AnalysisID::LaunchSites);
  // Coarsened kernels got new bodies and an extra parameter: serializability
  // verdicts, recovered grid-dim expressions, and purity keys are stale —
  // for the coarsened kernels and their patched callers only.
  PA.limitToFunctions(Result.TouchedFunctions);
  return PA;
}
