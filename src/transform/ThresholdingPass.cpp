//===--- ThresholdingPass.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/ThresholdingPass.h"

#include "ast/ASTPrinter.h"
#include "ast/Clone.h"
#include "ast/Walk.h"
#include "parse/Parser.h"
#include "profile/Profile.h"
#include "sema/GridDimAnalysis.h"
#include "sema/LaunchSites.h"
#include "sema/PurityAnalysis.h"
#include "sema/Transformability.h"
#include "support/Casting.h"
#include "transform/SerialKernel.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace dpo;

const char *dpo::aggGranularityName(AggGranularity G) {
  switch (G) {
  case AggGranularity::None: return "none";
  case AggGranularity::Warp: return "warp";
  case AggGranularity::Block: return "block";
  case AggGranularity::MultiBlock: return "multi-block";
  case AggGranularity::Grid: return "grid";
  }
  return "unknown";
}

namespace {

class ThresholdingTransformer {
public:
  ThresholdingTransformer(ASTContext &Ctx, TranslationUnit *TU,
                          const ThresholdingOptions &Options,
                          DiagnosticEngine &Diags, AnalysisManager &AM)
      : Ctx(Ctx), TU(TU), Options(Options), Diags(Diags), AM(AM),
        Serial(Ctx, TU, Diags) {}

  ThresholdingResult run() {
    ThresholdingResult Result;
    const std::vector<LaunchSite> &AllSites = AM.launchSites();
    const LaunchProfile *Profile =
        Options.UseProfile ? Options.Profile : nullptr;

    // Plan the transformation of every eligible dynamic launch.
    struct PlannedSite {
      LaunchSite Site;
      GridDimInfo Info;
      unsigned Threshold = 0; ///< Effective (possibly per-site) knob.
      bool UseTotalThreadsFallback = false;
    };
    std::vector<PlannedSite> Planned;
    // Per-(caller, kernel) launch ordinals, counted over *every* site in
    // walk order — the same counting the bytecode compiler uses to name
    // sites, so profile lookups key on the names grid logs recorded.
    std::unordered_map<std::string, unsigned> SiteOrdinals;
    for (const LaunchSite &Site : AllSites) {
      std::string SitePair =
          Site.Caller->name() + "->" + Site.Launch->kernel();
      std::string SiteName =
          SitePair + "#" + std::to_string(SiteOrdinals[SitePair]++);
      if (!Site.FromKernel)
        continue; // Host launches are not dynamic parallelism.
      std::string Where =
          Site.Caller->name() + " -> " + Site.Launch->kernel();
      if (!Site.InStatementPosition) {
        skip(Result, Where + ": launch is not in statement position");
        continue;
      }
      if (!Site.Child || !Site.Child->isDefinition()) {
        skip(Result, Where + ": child kernel definition not found");
        continue;
      }
      const Transformability &T = AM.serializability(Site.Child);
      if (!T.Serializable) {
        skip(Result, Where + ": " + T.Reasons.front());
        continue;
      }
      PlannedSite P;
      P.Site = Site;
      P.Threshold = Profile ? Profile->siteThreshold(SiteName,
                                                     Options.Threshold)
                            : Options.Threshold;
      P.Info = AM.gridDim(Site.Caller, Site.Launch->gridDim());
      if (!P.Info.Found || (P.Info.NeedsReevaluation && !P.Info.Safe)) {
        if (Options.FallbackToTotalThreads &&
            AM.isPure(Site.Launch->gridDim(), Site.Caller) &&
            AM.isPure(Site.Launch->blockDim(), Site.Caller)) {
          P.UseTotalThreadsFallback = true;
        } else {
          skip(Result, Where + ": " + P.Info.FailureReason);
          continue;
        }
      }
      Planned.push_back(P);
    }

    if (Planned.empty())
      return Result;

    // Per-site values can't share one macro: profile mode always spells
    // its thresholds as literals.
    if (Options.Spelling == KnobSpelling::Macro && !Options.UseProfile)
      emitMacroDefault(Options.MacroName, Options.Threshold);

    // Build serial versions (one per distinct child kernel).
    for (const PlannedSite &P : Planned)
      Serial.ensureSerialVersion(P.Site.Child, AllSites);

    // Rewrite each launch site.
    std::unordered_map<const Stmt *, Stmt *> Replacements;
    for (PlannedSite &P : Planned)
      Replacements[P.Site.Launch] = buildThresholdedLaunch(
          P.Site, P.Info, P.Threshold, P.UseTotalThreadsFallback);

    for (Decl *D : TU->decls()) {
      auto *F = dyn_cast<FunctionDecl>(D);
      if (!F || !F->body())
        continue;
      rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
        auto It = Replacements.find(S);
        return It != Replacements.end() ? It->second : nullptr;
      });
    }

    Result.TransformedLaunches = Planned.size();
    Result.SerializedNestedLaunches = Serial.nestedLaunchSerials();
    for (const PlannedSite &P : Planned) {
      const FunctionDecl *Caller = P.Site.Caller;
      if (std::find(Result.TouchedFunctions.begin(),
                    Result.TouchedFunctions.end(),
                    Caller) == Result.TouchedFunctions.end())
        Result.TouchedFunctions.push_back(Caller);
    }
    return Result;
  }

private:
  void skip(ThresholdingResult &Result, std::string Reason) {
    ++Result.SkippedLaunches;
    Result.SkipReasons.push_back(std::move(Reason));
  }

  /// Emits `#ifndef M / #define M V / #endif` at the top of the file.
  void emitMacroDefault(const std::string &Macro, unsigned Value) {
    std::string Text = "#ifndef " + Macro + "\n#define " + Macro + " " +
                       std::to_string(Value) + "\n#endif";
    TU->decls().insert(TU->decls().begin(), Ctx.create<RawDecl>(Text));
  }

  Expr *thresholdExpr(unsigned Threshold) {
    if (Options.Spelling == KnobSpelling::Macro && !Options.UseProfile)
      return Ctx.ref(Options.MacroName);
    return Ctx.intLit(Threshold);
  }

  /// Builds the Fig. 3 replacement for one launch:
  ///   { <type> _threadsK = N;
  ///     if (_threadsK >= _THRESHOLD) { <launch> }
  ///     else { <child>_serial(args, gDim, bDim); } }
  Stmt *buildThresholdedLaunch(const LaunchSite &Site, const GridDimInfo &Info,
                               unsigned Threshold, bool TotalThreadsFallback) {
    LaunchExpr *L = Site.Launch;
    std::string ThreadsVar = "_threads" + std::to_string(SiteCounter++);

    Expr *CountInit = nullptr;
    if (TotalThreadsFallback) {
      CountInit = Ctx.binary(
          BinaryOpKind::Mul, Ctx.paren(cloneExpr(Ctx, L->gridDim())),
          Ctx.paren(cloneExpr(Ctx, L->blockDim())));
    } else if (Info.InlineSite) {
      CountInit = Info.ThreadCount;
      // Substitute `_threadsK` for the found subexpression inside the
      // launch's grid expression so side effects are not duplicated.
      rewriteExprSlot(L->gridDimSlot(), [&](Expr *E) -> Expr * {
        if (E != Info.InlineSite)
          return nullptr;
        auto *Ref = Ctx.ref(ThreadsVar);
        Ref->setType(E->type());
        return Ref;
      });
    } else {
      CountInit = Info.ThreadCount;
    }

    Type CountType = CountInit->type();
    if (!CountType.isInteger())
      CountType = Type(BuiltinKind::Int);
    auto *CountDecl = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
        Ctx.create<VarDecl>(CountType, ThreadsVar, CountInit)});

    // Serial call: original args plus the (post-substitution) launch
    // configuration.
    Expr *SerialCall = Serial.buildSerialCall(Site);

    auto *CountRef = Ctx.ref(ThreadsVar);
    CountRef->setType(CountType);
    Expr *Cond =
        Ctx.binary(BinaryOpKind::GE, CountRef, thresholdExpr(Threshold));
    auto *If = Ctx.create<IfStmt>(Cond, Ctx.compound({L}),
                                  Ctx.compound({SerialCall}));
    return Ctx.compound({CountDecl, If});
  }

  ASTContext &Ctx;
  TranslationUnit *TU;
  const ThresholdingOptions &Options;
  DiagnosticEngine &Diags;
  AnalysisManager &AM;
  SerialKernelBuilder Serial;
  unsigned SiteCounter = 0;
};

} // namespace

ThresholdingResult dpo::applyThresholding(ASTContext &Ctx, TranslationUnit *TU,
                                          const ThresholdingOptions &Options,
                                          DiagnosticEngine &Diags,
                                          AnalysisManager &AM) {
  ThresholdingTransformer Transformer(Ctx, TU, Options, Diags, AM);
  return Transformer.run();
}

ThresholdingResult dpo::applyThresholding(ASTContext &Ctx, TranslationUnit *TU,
                                          const ThresholdingOptions &Options,
                                          DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return applyThresholding(Ctx, TU, Options, Diags, AM);
}

std::string ThresholdingPass::repr() const {
  std::string R = "threshold[";
  if (Options.UseProfile) {
    R += "profile";
    if (Options.FallbackToTotalThreads)
      R += ":fallback";
    return R + "]";
  }
  R += std::to_string(Options.Threshold);
  if (Options.FallbackToTotalThreads)
    R += ":fallback";
  if (Options.Spelling == KnobSpelling::Literal)
    R += ":literal";
  return R + "]";
}

PreservedAnalyses ThresholdingPass::run(ASTContext &Ctx, TranslationUnit *TU,
                                        AnalysisManager &AM,
                                        DiagnosticEngine &Diags) {
  Result = applyThresholding(Ctx, TU, Options, Diags, AM);
  if (Result.TransformedLaunches == 0)
    return PreservedAnalyses::all();
  PreservedAnalyses PA;
  // Child kernel bodies are untouched, so serializability verdicts hold.
  PA.preserve(AnalysisID::Transformability);
  // The rewrite replaces each launch *statement* with a guard that still
  // contains the original LaunchExpr node, so the cached site list stays
  // exact — unless serialization cloned a body with nested launches.
  if (Result.SerializedNestedLaunches == 0)
    PA.preserve(AnalysisID::LaunchSites);
  // GridDim results were spliced into the tree and purity keys may alias
  // mutated expressions — but only inside the callers whose launches were
  // rewritten; results cached for other functions stay valid.
  PA.limitToFunctions(Result.TouchedFunctions);
  return PA;
}
