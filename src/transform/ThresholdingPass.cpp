//===--- ThresholdingPass.cpp -------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transform/ThresholdingPass.h"

#include "ast/ASTPrinter.h"
#include "ast/Clone.h"
#include "ast/Walk.h"
#include "parse/Parser.h"
#include "sema/GridDimAnalysis.h"
#include "sema/LaunchSites.h"
#include "sema/PurityAnalysis.h"
#include "sema/Transformability.h"
#include "support/Casting.h"
#include "transform/BuiltinRewrite.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace dpo;

const char *dpo::aggGranularityName(AggGranularity G) {
  switch (G) {
  case AggGranularity::None: return "none";
  case AggGranularity::Warp: return "warp";
  case AggGranularity::Block: return "block";
  case AggGranularity::MultiBlock: return "multi-block";
  case AggGranularity::Grid: return "grid";
  }
  return "unknown";
}

namespace {

/// True if any statement below Root is a return.
bool containsReturn(const Stmt *Root) {
  bool Found = false;
  forEachStmt(Root, [&](const Stmt *S) {
    if (isa<ReturnStmt>(S))
      Found = true;
  });
  return Found;
}

/// Decides whether the serial version of \p Child needs y/z loops: true when
/// the body touches .y/.z of an index builtin or when any launch of the
/// kernel uses a dim3 configuration (scalar configurations imply y = z = 1).
bool childNeedsAllDims(const FunctionDecl *Child,
                       const std::vector<LaunchSite> &Sites) {
  for (const char *Builtin : {"blockIdx", "threadIdx", "gridDim", "blockDim"})
    for (const char *Component : {"y", "z"})
      if (usesBuiltinComponent(Child->body(), Builtin, Component))
        return true;
  for (const LaunchSite &Site : Sites) {
    if (Site.Launch->kernel() != Child->name())
      continue;
    if (Site.Launch->gridDim()->type().isDim3() ||
        Site.Launch->blockDim()->type().isDim3())
      return true;
  }
  return false;
}

/// Picks a function name not already defined in \p TU.
std::string freshFunctionName(const TranslationUnit *TU,
                              const std::string &Base) {
  if (!TU->findFunction(Base))
    return Base;
  for (unsigned I = 1;; ++I) {
    std::string Candidate = Base + "_" + std::to_string(I);
    if (!TU->findFunction(Candidate))
      return Candidate;
  }
}

class ThresholdingTransformer {
public:
  ThresholdingTransformer(ASTContext &Ctx, TranslationUnit *TU,
                          const ThresholdingOptions &Options,
                          DiagnosticEngine &Diags, AnalysisManager &AM)
      : Ctx(Ctx), TU(TU), Options(Options), Diags(Diags), AM(AM) {}

  ThresholdingResult run() {
    ThresholdingResult Result;
    const std::vector<LaunchSite> &AllSites = AM.launchSites();

    // Plan the transformation of every eligible dynamic launch.
    struct PlannedSite {
      LaunchSite Site;
      GridDimInfo Info;
      bool UseTotalThreadsFallback = false;
    };
    std::vector<PlannedSite> Planned;
    for (const LaunchSite &Site : AllSites) {
      if (!Site.FromKernel)
        continue; // Host launches are not dynamic parallelism.
      std::string Where =
          Site.Caller->name() + " -> " + Site.Launch->kernel();
      if (!Site.InStatementPosition) {
        skip(Result, Where + ": launch is not in statement position");
        continue;
      }
      if (!Site.Child || !Site.Child->isDefinition()) {
        skip(Result, Where + ": child kernel definition not found");
        continue;
      }
      const Transformability &T = AM.serializability(Site.Child);
      if (!T.Serializable) {
        skip(Result, Where + ": " + T.Reasons.front());
        continue;
      }
      PlannedSite P;
      P.Site = Site;
      P.Info = AM.gridDim(Site.Caller, Site.Launch->gridDim());
      if (!P.Info.Found || (P.Info.NeedsReevaluation && !P.Info.Safe)) {
        if (Options.FallbackToTotalThreads &&
            AM.isPure(Site.Launch->gridDim(), Site.Caller) &&
            AM.isPure(Site.Launch->blockDim(), Site.Caller)) {
          P.UseTotalThreadsFallback = true;
        } else {
          skip(Result, Where + ": " + P.Info.FailureReason);
          continue;
        }
      }
      Planned.push_back(P);
    }

    if (Planned.empty())
      return Result;

    if (Options.Spelling == KnobSpelling::Macro)
      emitMacroDefault(Options.MacroName, Options.Threshold);

    // Build serial versions (one per distinct child kernel).
    for (const PlannedSite &P : Planned)
      ensureSerialVersion(P.Site.Child, AllSites);

    // Rewrite each launch site.
    std::unordered_map<const Stmt *, Stmt *> Replacements;
    for (PlannedSite &P : Planned)
      Replacements[P.Site.Launch] =
          buildThresholdedLaunch(P.Site, P.Info, P.UseTotalThreadsFallback);

    for (Decl *D : TU->decls()) {
      auto *F = dyn_cast<FunctionDecl>(D);
      if (!F || !F->body())
        continue;
      rewriteStmts(F->body(), [&](Stmt *S) -> Stmt * {
        auto It = Replacements.find(S);
        return It != Replacements.end() ? It->second : nullptr;
      });
    }

    Result.TransformedLaunches = Planned.size();
    Result.SerializedNestedLaunches = NestedLaunchSerials;
    for (const PlannedSite &P : Planned) {
      const FunctionDecl *Caller = P.Site.Caller;
      if (std::find(Result.TouchedFunctions.begin(),
                    Result.TouchedFunctions.end(),
                    Caller) == Result.TouchedFunctions.end())
        Result.TouchedFunctions.push_back(Caller);
    }
    return Result;
  }

private:
  void skip(ThresholdingResult &Result, std::string Reason) {
    ++Result.SkippedLaunches;
    Result.SkipReasons.push_back(std::move(Reason));
  }

  /// Emits `#ifndef M / #define M V / #endif` at the top of the file.
  void emitMacroDefault(const std::string &Macro, unsigned Value) {
    std::string Text = "#ifndef " + Macro + "\n#define " + Macro + " " +
                       std::to_string(Value) + "\n#endif";
    TU->decls().insert(TU->decls().begin(), Ctx.create<RawDecl>(Text));
  }

  Expr *thresholdExpr() {
    if (Options.Spelling == KnobSpelling::Macro)
      return Ctx.ref(Options.MacroName);
    return Ctx.intLit(Options.Threshold);
  }

  /// Generates (once per child) the `<child>_serial` device function and
  /// registers it in the translation unit right after the child kernel.
  void ensureSerialVersion(FunctionDecl *Child,
                           const std::vector<LaunchSite> &AllSites) {
    if (SerialNames.count(Child))
      return;

    // Cloning a body that launches duplicates its launch sites; the pass
    // reports this so the launch-site analysis gets invalidated.
    forEachExpr(Child->body(), [&](const Expr *E) {
      if (isa<LaunchExpr>(E))
        ++NestedLaunchSerials;
    });

    bool AllDims = childNeedsAllDims(Child, AllSites);
    bool HasReturn = containsReturn(Child->body());
    std::string SerialName =
        freshFunctionName(TU, Child->name() + "_serial");

    // The synthesized loop/config variables must not collide with anything
    // the child declares: a child that was already transformed (e.g. the
    // coarsening pass's grid-stride loop declares `_bx`) would otherwise
    // shadow the serial driver's loop variable and read itself in its own
    // initializer.
    std::unordered_set<std::string> Taken = declaredNames(Child);
    std::string GDim = freshVarName(Taken, "_gDim");
    std::string BDim = freshVarName(Taken, "_bDim");
    std::string Bx = freshVarName(Taken, "_bx");
    std::string By = freshVarName(Taken, "_by");
    std::string Bz = freshVarName(Taken, "_bz");
    std::string Tx = freshVarName(Taken, "_tx");
    std::string Ty = freshVarName(Taken, "_ty");
    std::string Tz = freshVarName(Taken, "_tz");

    // Shared parameter tail: the original launch configuration.
    auto MakeConfigParams = [&]() {
      std::vector<VarDecl *> Params;
      for (const VarDecl *P : Child->params())
        Params.push_back(cloneVarDecl(Ctx, P));
      Params.push_back(Ctx.create<VarDecl>(Type(BuiltinKind::Dim3), GDim));
      Params.push_back(Ctx.create<VarDecl>(Type(BuiltinKind::Dim3), BDim));
      return Params;
    };

    // Index variable names per dimension, block loops then thread loops.
    std::vector<std::pair<std::string, std::string>> BlockLoops = {{Bx, "x"}};
    std::vector<std::pair<std::string, std::string>> ThreadLoops = {{Tx, "x"}};
    if (AllDims) {
      BlockLoops.insert(BlockLoops.begin(), {{Bz, "z"}, {By, "y"}});
      ThreadLoops.insert(ThreadLoops.begin(), {{Tz, "z"}, {Ty, "y"}});
    }

    std::unordered_map<std::string, BuiltinRemap> Map;
    Map["gridDim"].Whole = GDim;
    Map["blockDim"].Whole = BDim;
    Map["blockIdx"].X = Bx;
    Map["threadIdx"].X = Tx;
    if (AllDims) {
      Map["blockIdx"].Y = By;
      Map["blockIdx"].Z = Bz;
      Map["threadIdx"].Y = Ty;
      Map["threadIdx"].Z = Tz;
    }

    FunctionQualifiers Quals;
    Quals.Device = true;

    // The innermost statement executed per serialized child thread.
    Stmt *PerThread = nullptr;
    FunctionDecl *ThreadFn = nullptr;
    if (HasReturn) {
      // Early returns force the per-thread body into its own function so
      // `return` keeps per-thread semantics.
      std::vector<VarDecl *> ThreadParams = MakeConfigParams();
      for (auto &Loops : {BlockLoops, ThreadLoops})
        for (const auto &[VarName, Component] : Loops)
          ThreadParams.push_back(
              Ctx.create<VarDecl>(Type(BuiltinKind::UInt), VarName));
      auto *ThreadBody = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
      rewriteBuiltins(Ctx, ThreadBody, Map, Diags);
      std::string ThreadFnName =
          freshFunctionName(TU, Child->name() + "_serial_thread");
      ThreadFn = Ctx.create<FunctionDecl>(Quals, Type(BuiltinKind::Void),
                                          ThreadFnName,
                                          std::move(ThreadParams), ThreadBody);
      // Call it from the loops.
      std::vector<Expr *> CallArgs;
      for (const VarDecl *P : Child->params())
        CallArgs.push_back(Ctx.ref(P->name()));
      CallArgs.push_back(Ctx.ref(GDim));
      CallArgs.push_back(Ctx.ref(BDim));
      for (auto &Loops : {BlockLoops, ThreadLoops})
        for (const auto &[VarName, Component] : Loops)
          CallArgs.push_back(Ctx.ref(VarName));
      PerThread = Ctx.create<CallExpr>(Ctx.ref(ThreadFnName),
                                       std::move(CallArgs));
    } else {
      auto *Body = cast<CompoundStmt>(cloneStmt(Ctx, Child->body()));
      rewriteBuiltins(Ctx, Body, Map, Diags);
      PerThread = Body;
    }

    // Wrap in loops: thread loops innermost.
    auto MakeLoop = [&](const std::string &Var, const std::string &Bound,
                        const std::string &Component, Stmt *Body) -> Stmt * {
      auto *Init = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
          Ctx.create<VarDecl>(Type(BuiltinKind::UInt), Var, Ctx.intLit(0))});
      auto *Cond = Ctx.binary(BinaryOpKind::LT, Ctx.ref(Var),
                              Ctx.member(Bound, Component));
      auto *Inc = Ctx.create<UnaryOperator>(UnaryOpKind::PreInc, Ctx.ref(Var));
      return Ctx.create<ForStmt>(Init, Cond, Inc, Body);
    };

    Stmt *Loops = PerThread;
    for (auto It = ThreadLoops.rbegin(); It != ThreadLoops.rend(); ++It)
      Loops = MakeLoop(It->first, BDim, It->second, Loops);
    for (auto It = BlockLoops.rbegin(); It != BlockLoops.rend(); ++It)
      Loops = MakeLoop(It->first, GDim, It->second, Loops);

    auto *SerialBody = Ctx.compound({Loops});
    auto *Serial =
        Ctx.create<FunctionDecl>(Quals, Type(BuiltinKind::Void), SerialName,
                                 MakeConfigParams(), SerialBody);

    // Insert after the child kernel definition (thread helper first so it
    // precedes its caller).
    auto It = std::find(TU->decls().begin(), TU->decls().end(),
                        static_cast<Decl *>(Child));
    assert(It != TU->decls().end() && "child kernel not in translation unit");
    ++It;
    if (ThreadFn)
      It = std::next(TU->decls().insert(It, ThreadFn));
    TU->decls().insert(It, Serial);

    SerialNames[Child] = SerialName;
  }

  /// Builds the Fig. 3 replacement for one launch:
  ///   { <type> _threadsK = N;
  ///     if (_threadsK >= _THRESHOLD) { <launch> }
  ///     else { <child>_serial(args, gDim, bDim); } }
  Stmt *buildThresholdedLaunch(const LaunchSite &Site, const GridDimInfo &Info,
                               bool TotalThreadsFallback) {
    LaunchExpr *L = Site.Launch;
    std::string ThreadsVar = "_threads" + std::to_string(SiteCounter++);

    Expr *CountInit = nullptr;
    if (TotalThreadsFallback) {
      CountInit = Ctx.binary(
          BinaryOpKind::Mul, Ctx.paren(cloneExpr(Ctx, L->gridDim())),
          Ctx.paren(cloneExpr(Ctx, L->blockDim())));
    } else if (Info.InlineSite) {
      CountInit = Info.ThreadCount;
      // Substitute `_threadsK` for the found subexpression inside the
      // launch's grid expression so side effects are not duplicated.
      rewriteExprSlot(L->gridDimSlot(), [&](Expr *E) -> Expr * {
        if (E != Info.InlineSite)
          return nullptr;
        auto *Ref = Ctx.ref(ThreadsVar);
        Ref->setType(E->type());
        return Ref;
      });
    } else {
      CountInit = Info.ThreadCount;
    }

    Type CountType = CountInit->type();
    if (!CountType.isInteger())
      CountType = Type(BuiltinKind::Int);
    auto *CountDecl = Ctx.create<DeclStmt>(std::vector<VarDecl *>{
        Ctx.create<VarDecl>(CountType, ThreadsVar, CountInit)});

    // Serial call: original args plus the (post-substitution) launch
    // configuration.
    std::vector<Expr *> SerialArgs;
    for (Expr *Arg : L->args())
      SerialArgs.push_back(cloneExpr(Ctx, Arg));
    SerialArgs.push_back(cloneExpr(Ctx, L->gridDim()));
    SerialArgs.push_back(cloneExpr(Ctx, L->blockDim()));
    auto *SerialCall = Ctx.create<CallExpr>(
        Ctx.ref(SerialNames.at(Site.Child)), std::move(SerialArgs));

    auto *CountRef = Ctx.ref(ThreadsVar);
    CountRef->setType(CountType);
    Expr *Cond = Ctx.binary(BinaryOpKind::GE, CountRef, thresholdExpr());
    auto *If = Ctx.create<IfStmt>(Cond, Ctx.compound({L}),
                                  Ctx.compound({SerialCall}));
    return Ctx.compound({CountDecl, If});
  }

  ASTContext &Ctx;
  TranslationUnit *TU;
  const ThresholdingOptions &Options;
  DiagnosticEngine &Diags;
  AnalysisManager &AM;
  std::map<const FunctionDecl *, std::string> SerialNames;
  unsigned SiteCounter = 0;
  unsigned NestedLaunchSerials = 0;
};

} // namespace

ThresholdingResult dpo::applyThresholding(ASTContext &Ctx, TranslationUnit *TU,
                                          const ThresholdingOptions &Options,
                                          DiagnosticEngine &Diags,
                                          AnalysisManager &AM) {
  ThresholdingTransformer Transformer(Ctx, TU, Options, Diags, AM);
  return Transformer.run();
}

ThresholdingResult dpo::applyThresholding(ASTContext &Ctx, TranslationUnit *TU,
                                          const ThresholdingOptions &Options,
                                          DiagnosticEngine &Diags) {
  AnalysisManager AM(Ctx, TU);
  return applyThresholding(Ctx, TU, Options, Diags, AM);
}

std::string ThresholdingPass::repr() const {
  std::string R = "threshold[" + std::to_string(Options.Threshold);
  if (Options.FallbackToTotalThreads)
    R += ":fallback";
  if (Options.Spelling == KnobSpelling::Literal)
    R += ":literal";
  return R + "]";
}

PreservedAnalyses ThresholdingPass::run(ASTContext &Ctx, TranslationUnit *TU,
                                        AnalysisManager &AM,
                                        DiagnosticEngine &Diags) {
  Result = applyThresholding(Ctx, TU, Options, Diags, AM);
  if (Result.TransformedLaunches == 0)
    return PreservedAnalyses::all();
  PreservedAnalyses PA;
  // Child kernel bodies are untouched, so serializability verdicts hold.
  PA.preserve(AnalysisID::Transformability);
  // The rewrite replaces each launch *statement* with a guard that still
  // contains the original LaunchExpr node, so the cached site list stays
  // exact — unless serialization cloned a body with nested launches.
  if (Result.SerializedNestedLaunches == 0)
    PA.preserve(AnalysisID::LaunchSites);
  // GridDim results were spliced into the tree and purity keys may alias
  // mutated expressions — but only inside the callers whose launches were
  // rewritten; results cached for other functions stay valid.
  PA.limitToFunctions(Result.TouchedFunctions);
  return PA;
}
