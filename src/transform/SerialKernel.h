//===--- SerialKernel.h - Shared serial-kernel synthesis ------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesis of `<child>_serial` device functions — the sequential
/// equivalent of launching a child kernel, used by every transform that
/// replaces a dynamic launch with in-parent execution:
///
///  - ThresholdingPass guards the launch behind a thread-count threshold
///    (Fig. 3 of the paper);
///  - SpeculationPass guards it behind a profile-backed runtime
///    assumption with a fallback launch.
///
/// Both passes must agree on naming, collision avoidance, builtin
/// remapping, and early-return handling, so the machinery lives here
/// once. The builder deduplicates per child kernel: two passes (or two
/// sites) serializing the same child inside one pipeline share a single
/// `<child>_serial` definition.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TRANSFORM_SERIALKERNEL_H
#define DPO_TRANSFORM_SERIALKERNEL_H

#include "ast/ASTContext.h"
#include "sema/LaunchSites.h"

#include <map>
#include <string>
#include <vector>

namespace dpo {

class DiagnosticEngine;

/// Builds (and memoizes) serial versions of child kernels inside one
/// translation unit. Create one per pass execution; the memoization is
/// per-builder, but name freshness is checked against the live TU, so
/// repeated pass runs never collide.
class SerialKernelBuilder {
public:
  SerialKernelBuilder(ASTContext &Ctx, TranslationUnit *TU,
                      DiagnosticEngine &Diags)
      : Ctx(Ctx), TU(TU), Diags(Diags) {}

  /// Generates (once per child) the `<child>_serial` device function —
  /// nested block/thread loops over the launch configuration, with index
  /// builtins remapped to loop variables, and an `_serial_thread` helper
  /// when the body contains early returns — and inserts it right after
  /// the child kernel's definition. Returns the serial function's name.
  /// \p AllSites is consulted to decide whether y/z dimension loops are
  /// needed.
  const std::string &ensureSerialVersion(FunctionDecl *Child,
                                         const std::vector<LaunchSite> &AllSites);

  /// Builds the serial call replacing one launch: `<child>_serial(args...,
  /// gridDim, blockDim)` with every expression cloned from the site.
  /// ensureSerialVersion must have run for \p Site.Child.
  Expr *buildSerialCall(const LaunchSite &Site);

  /// Launch expressions cloned into serial bodies (each clone duplicates
  /// a launch site; callers report this so the launch-site analysis gets
  /// invalidated).
  unsigned nestedLaunchSerials() const { return NestedLaunchSerials; }

  /// True when a serial version was already synthesized for \p Child.
  bool hasSerialVersion(const FunctionDecl *Child) const {
    return SerialNames.count(Child) != 0;
  }

private:
  ASTContext &Ctx;
  TranslationUnit *TU;
  DiagnosticEngine &Diags;
  std::map<const FunctionDecl *, std::string> SerialNames;
  unsigned NestedLaunchSerials = 0;
};

} // namespace dpo

#endif // DPO_TRANSFORM_SERIALKERNEL_H
