//===--- Calibrate.h - Fitting the GpuModel to VM measurements --------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GpuModel calibration: fit the launch/dispatch cost constants of the
/// analytic timing model so its predictions track the VM-measured
/// makespans of the same configurations, making analytic and empirical
/// tuner rankings agree (dpoptcc --calibrate).
///
/// Method: measure a deterministic spread of candidate ExecConfigs on the
/// VM (EmpiricalEvaluator; the measurements are priced with the *base*
/// model and stay fixed — the fit never chases its own output), simulate
/// the exact sample batches under the analytic model, and minimize the
/// RMS log-ratio error between predicted and measured microseconds by
/// coordinate descent over multiplicative scales on a small set of model
/// constants (launch latency/service/issue, block dispatch). Everything
/// is deterministic: fixed candidate spread, fixed scale grid, fixed
/// sweep order, strict-improvement acceptance.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TUNER_CALIBRATE_H
#define DPO_TUNER_CALIBRATE_H

#include "tuner/Empirical.h"

#include <string>
#include <vector>

namespace dpo {

/// One model constant the fit may scale.
struct CalibrationKnob {
  const char *Name;
  double GpuModel::*Field;
};

/// The constants calibration adjusts, fixed order (the coordinate-descent
/// sweep order and the CalibrationResult::Scales order).
const std::vector<CalibrationKnob> &calibrationKnobs();

/// One measured configuration in the fit.
struct CalibrationPoint {
  ExecConfig Config;
  std::string Pipeline; ///< passPipelineTextFor(Config).
  double MeasuredUs = 0; ///< VM-measured makespan (base-model pricing).
  double BaseUs = 0;     ///< Analytic prediction under the base model.
  double FittedUs = 0;   ///< Analytic prediction under the fitted model.
};

struct CalibrationOptions {
  /// Configurations measured (spread evenly over the candidate grid; the
  /// untransformed config is always included).
  unsigned MaxPoints = 8;
  /// Coordinate-descent sweeps over the knob set.
  unsigned Sweeps = 3;
  EmpiricalOptions Empirical;
};

struct CalibrationResult {
  bool Ok = false;
  std::string Error;
  GpuModel Fitted;
  std::vector<CalibrationPoint> Points;
  /// RMS |log(predicted/measured)| before and after the fit; the fit
  /// accepts only strict improvements, so FittedError <= BaseError.
  double BaseError = 0;
  double FittedError = 0;
  /// Scale applied to each calibrationKnobs() entry, knob order.
  std::vector<double> Scales;
  unsigned VmEvaluations = 0;
};

/// RMS log-ratio prediction error of \p Model over \p Points (uses each
/// point's MeasuredUs as ground truth). Exposed for the regression tests.
double calibrationError(const GpuModel &Model,
                        const std::vector<NestedBatch> &SampleBatches,
                        const std::vector<CalibrationPoint> &Points);

/// Runs the calibration described above. \p Base seeds both the ground
/// truth pricing and the fit's starting point; \p Mask bounds the
/// candidate grid the measured spread is drawn from.
CalibrationResult calibrateGpuModel(const GpuModel &Base,
                                    const VmWorkload &Workload,
                                    const VariantMask &Mask,
                                    const CalibrationOptions &Opts = {});

/// Human-readable fit summary (knob scales, per-point table, errors) for
/// dpoptcc --calibrate.
std::string calibrationReport(const CalibrationResult &R);

} // namespace dpo

#endif // DPO_TUNER_CALIBRATE_H
