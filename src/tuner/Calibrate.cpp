//===--- Calibrate.cpp ----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tuner/Calibrate.h"

#include "sim/Simulator.h"
#include "tuner/Tuner.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace dpo;

const std::vector<CalibrationKnob> &dpo::calibrationKnobs() {
  // The launch-subsystem and dispatch constants: the costs the paper's
  // optimizations trade against each other, and therefore the ones whose
  // miscalibration flips analytic-vs-empirical rankings. Compute-fabric
  // parameters (SM count, clock) are the device's spec sheet and stay put.
  static const std::vector<CalibrationKnob> Knobs = {
      {"LaunchBaseLatencyUs", &GpuModel::LaunchBaseLatencyUs},
      {"LaunchServiceUs", &GpuModel::LaunchServiceUs},
      {"LaunchIssueCycles", &GpuModel::LaunchIssueCycles},
      {"BlockDispatchUs", &GpuModel::BlockDispatchUs},
  };
  return Knobs;
}

double dpo::calibrationError(const GpuModel &Model,
                             const std::vector<NestedBatch> &SampleBatches,
                             const std::vector<CalibrationPoint> &Points) {
  if (Points.empty())
    return 0;
  double Sum = 0;
  for (const CalibrationPoint &P : Points) {
    double Pred = simulateBatches(Model, SampleBatches, P.Config).TimeUs;
    // Degenerate predictions/measurements (zero time) contribute a large
    // fixed penalty instead of a NaN, so the descent steers away.
    double E = (Pred > 0 && P.MeasuredUs > 0)
                   ? std::log(Pred / P.MeasuredUs)
                   : 10.0;
    Sum += E * E;
  }
  return std::sqrt(Sum / (double)Points.size());
}

CalibrationResult dpo::calibrateGpuModel(const GpuModel &Base,
                                         const VmWorkload &Workload,
                                         const VariantMask &Mask,
                                         const CalibrationOptions &Opts) {
  CalibrationResult R;
  R.Fitted = Base;
  R.Scales.assign(calibrationKnobs().size(), 1.0);

  // Ground truth: VM measurements priced with the *base* model. The
  // evaluator's model never changes during the fit, so the fit target is
  // fixed — fitting the simulator to measurements that themselves moved
  // with the fitted model would be circular.
  EmpiricalEvaluator Eval(Base, Workload, Opts.Empirical);
  if (Eval.maxResource() == 0) {
    R.Error = "workload has no batches to measure";
    return R;
  }

  // A deterministic spread over the candidate grid: always the
  // untransformed config (index 0 of enumerateConfigs), then evenly
  // spaced picks through the rest of the sweep order.
  std::vector<ExecConfig> Grid = enumerateConfigs(Mask);
  if (Grid.empty()) {
    R.Error = "variant mask admits no configurations";
    return R;
  }
  unsigned NumPoints = Opts.MaxPoints < 2 ? 2 : Opts.MaxPoints;
  if (NumPoints > Grid.size())
    NumPoints = (unsigned)Grid.size();
  std::vector<size_t> Picks;
  for (unsigned I = 0; I < NumPoints; ++I)
    Picks.push_back(NumPoints == 1
                        ? 0
                        : (size_t)I * (Grid.size() - 1) / (NumPoints - 1));

  for (size_t Idx : Picks) {
    const ExecConfig &Config = Grid[Idx];
    std::optional<VmMeasurement> M = Eval.measure(Config);
    if (!M)
      continue; // Unmeasurable candidates simply drop out of the fit.
    CalibrationPoint P;
    P.Config = Config;
    P.Pipeline = passPipelineTextFor(Config);
    P.MeasuredUs = Base.cyclesToUs(M->Cycles);
    R.Points.push_back(P);
  }
  R.VmEvaluations = Eval.evaluations();
  if (R.Points.size() < 2) {
    R.Error = "fewer than two measurable calibration points (" +
              Eval.lastError() + ")";
    return R;
  }

  const std::vector<NestedBatch> &Sample = Eval.sampleBatches();
  R.BaseError = calibrationError(Base, Sample, R.Points);

  // Coordinate descent on multiplicative scales of each knob relative to
  // its base value. The scale grid brackets one order of magnitude each
  // way; only strict improvements are accepted, so the fitted model is
  // never worse than the base model on the fit set.
  static const double ScaleGrid[] = {0.1, 0.25, 0.4,  0.6, 0.8, 1.0,
                                     1.25, 1.6, 2.5,  4.0, 10.0};
  const std::vector<CalibrationKnob> &Knobs = calibrationKnobs();
  double BestError = R.BaseError;
  for (unsigned Sweep = 0; Sweep < Opts.Sweeps; ++Sweep) {
    bool Improved = false;
    for (size_t K = 0; K < Knobs.size(); ++K) {
      double BaseValue = Base.*(Knobs[K].Field);
      for (double Scale : ScaleGrid) {
        GpuModel Candidate = R.Fitted;
        Candidate.*(Knobs[K].Field) = BaseValue * Scale;
        double E = calibrationError(Candidate, Sample, R.Points);
        if (E < BestError) {
          BestError = E;
          R.Fitted = Candidate;
          R.Scales[K] = Scale;
          Improved = true;
        }
      }
    }
    if (!Improved)
      break;
  }
  R.FittedError = BestError;

  for (CalibrationPoint &P : R.Points) {
    P.BaseUs = simulateBatches(Base, Sample, P.Config).TimeUs;
    P.FittedUs = simulateBatches(R.Fitted, Sample, P.Config).TimeUs;
  }
  R.Ok = true;
  return R;
}

std::string dpo::calibrationReport(const CalibrationResult &R) {
  std::ostringstream OS;
  if (!R.Ok) {
    OS << "calibration failed: " << R.Error << "\n";
    return OS.str();
  }
  char Line[160];
  OS << "gpu model calibration (" << R.Points.size() << " points, "
     << R.VmEvaluations << " VM evaluations)\n";
  const std::vector<CalibrationKnob> &Knobs = calibrationKnobs();
  for (size_t K = 0; K < Knobs.size(); ++K) {
    std::snprintf(Line, sizeof(Line), "  %-22s x%-5g -> %g\n", Knobs[K].Name,
                  R.Scales[K], R.Fitted.*(Knobs[K].Field));
    OS << Line;
  }
  std::snprintf(Line, sizeof(Line),
                "  rms log error: %.4f (base) -> %.4f (fitted)\n", R.BaseError,
                R.FittedError);
  OS << Line;
  OS << "  points (measured / base / fitted us):\n";
  for (const CalibrationPoint &P : R.Points) {
    std::snprintf(Line, sizeof(Line), "    %-48s %10.2f %10.2f %10.2f\n",
                  P.Pipeline.empty() ? "<untransformed>" : P.Pipeline.c_str(),
                  P.MeasuredUs, P.BaseUs, P.FittedUs);
    OS << Line;
  }
  return OS.str();
}
