//===--- TunedTable.h - Committed per-workload tuned configs ------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tune-once-commit-diff support for the Table I kernel corpus: a tuned
/// entry records which workload was tuned, with which mode/budget/seed,
/// and the winning pipeline. The tables live under bench/tuned/ (one JSON
/// file per workload, written by `dpoptcc --tune=... --workload=...
/// --tune-report=...` or scripts/tune_table.sh); the differential CI job
/// re-runs each recorded search — the searches are deterministic under
/// fixed (seed, budget) — and fails on drift, so a change to the tuner,
/// the passes, the bytecode lowering, or the VM cost attribution that
/// silently flips a tuning decision shows up as a reviewable diff.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TUNER_TUNEDTABLE_H
#define DPO_TUNER_TUNEDTABLE_H

#include "tuner/Empirical.h"

#include <string>
#include <string_view>

namespace dpo {

struct TunedEntry {
  std::string Workload; ///< --workload= spec, e.g. "bfs:road_ny".
  TuneMode Mode = TuneMode::Empirical;
  unsigned Budget = 0;
  unsigned Seed = 0;
  std::string Pipeline; ///< Winning pass pipeline ("" = untransformed).
  double TimeUs = 0;    ///< Headline makespan estimate (informational).
  unsigned VmEvaluations = 0;
};

/// Serializes \p Entry as the committed JSON format (stable key order,
/// trailing newline).
std::string tunedEntryJson(const TunedEntry &Entry);

/// Parses the committed format. Unknown keys are ignored; missing
/// required keys (workload, mode, budget, seed, pipeline) fail.
bool parseTunedEntryJson(std::string_view Text, TunedEntry &Entry,
                         std::string &Error);

bool writeTunedEntryFile(const std::string &Path, const TunedEntry &Entry);
bool loadTunedEntryFile(const std::string &Path, TunedEntry &Entry,
                        std::string &Error);

/// The table's on-disk name for a workload spec: "bfs:road_ny" ->
/// "bfs_road_ny.json".
std::string tunedTableFileName(std::string_view WorkloadSpec);

} // namespace dpo

#endif // DPO_TUNER_TUNEDTABLE_H
