//===--- Empirical.cpp ----------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tuner/Empirical.h"

#include "parse/Parser.h"
#include "profile/Profile.h"
#include "transform/Pipeline.h"
#include "vm/Compiler.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <random>
#include <thread>

using namespace dpo;

const char *dpo::tuneModeName(TuneMode Mode) {
  switch (Mode) {
  case TuneMode::Analytic:
    return "analytic";
  case TuneMode::Empirical:
    return "empirical";
  case TuneMode::Hybrid:
    return "hybrid";
  }
  return "?";
}

bool dpo::parseTuneMode(std::string_view Text, TuneMode &Out) {
  if (Text == "analytic")
    Out = TuneMode::Analytic;
  else if (Text == "empirical")
    Out = TuneMode::Empirical;
  else if (Text == "hybrid")
    Out = TuneMode::Hybrid;
  else
    return false;
  return true;
}

double dpo::measuredMakespanCycles(const std::vector<GridRecord> &Grids,
                                   const VmStats &Stats, const GpuModel &Gpu) {
  auto UsToCycles = [&](double Us) { return Us * Gpu.ClockGHz * 1e3; };

  // Per-grid: measured work spread over the threads that can actually be
  // resident, floored by the measured slowest thread (divergence — where
  // thresholding's serial loops land).
  double RootCycles = 0;
  double ChildWork = 0, ChildLatency = 0, ChildCrit = 0;
  uint64_t TotalBlocks = 0;
  for (const GridRecord &G : Grids) {
    TotalBlocks += G.Blocks;
    uint32_t BlockDim = std::max(1u, G.BlockDim);
    uint64_t ResidentBlocks =
        (uint64_t)Gpu.NumSMs *
        std::min<uint64_t>(Gpu.MaxBlocksPerSM,
                           std::max(1u, Gpu.MaxThreadsPerSM / BlockDim));
    double Resident =
        (double)std::min<uint64_t>(G.Threads, ResidentBlocks * BlockDim);
    double GridCycles = std::max((double)G.Steps / std::max(1.0, Resident),
                                 (double)G.MaxThreadSteps);
    if (G.FromHost) {
      RootCycles += GridCycles;
    } else {
      ChildWork += (double)G.Steps;
      ChildLatency += GridCycles;
      ChildCrit = std::max(ChildCrit, GridCycles);
    }
  }

  // Child grids run concurrently: work-limited on the whole device,
  // dispatch-limited by the concurrent-grid slots, floored by the slowest
  // single grid (the simulator's max(...) structure, with measured terms).
  double DeviceLanes = (double)Gpu.NumSMs * Gpu.MaxThreadsPerSM;
  double ChildCycles = std::max(
      {ChildWork / DeviceLanes,
       ChildLatency / std::max(1u, Gpu.MaxConcurrentGrids), ChildCrit});

  // Launch subsystem: per-launch service (mostly hidden under the parent),
  // congestion past the queue's knee, host round trips, block dispatch.
  double DeviceLaunchCycles =
      (Gpu.LaunchIssueCycles + UsToCycles(Gpu.LaunchServiceUs)) *
      (1.0 - Gpu.LaunchOverlapFraction) * (double)Stats.DeviceLaunches;
  if (Stats.DeviceLaunches)
    DeviceLaunchCycles += UsToCycles(Gpu.LaunchBaseLatencyUs);
  double K = (double)Stats.DeviceLaunches / 1000.0;
  DeviceLaunchCycles += UsToCycles(Gpu.LaunchCongestionQuadUs) * K * K;
  double HostLaunchCycles =
      UsToCycles(Gpu.HostLaunchOverheadUs) * (double)Stats.HostLaunches;
  double DispatchCycles = UsToCycles(Gpu.BlockDispatchUs) * (double)TotalBlocks;

  return RootCycles + ChildCycles + DeviceLaunchCycles + HostLaunchCycles +
         DispatchCycles;
}

//===----------------------------------------------------------------------===//
// EmpiricalEvaluator
//===----------------------------------------------------------------------===//

EmpiricalEvaluator::EmpiricalEvaluator(const GpuModel &Gpu, VmWorkload W,
                                       EmpiricalOptions Options)
    : Gpu(Gpu), Workload(std::move(W)), Opts(Options) {
  // Sample the heaviest batches (they dominate the makespan and exhibit
  // the child-size skew the optimizations target), kept in stream order.
  std::vector<size_t> Order(Workload.Batches.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Workload.Batches[A].totalChildUnits() >
           Workload.Batches[B].totalChildUnits();
  });
  if (Order.size() > Opts.SampleBatches)
    Order.resize(std::max(1u, Opts.SampleBatches));
  std::sort(Order.begin(), Order.end());

  // Enforce the unit cap by truncating parents, spreading it evenly so the
  // sample keeps its batch count (successive halving needs real rungs).
  // Per-parent child sizes are untouched, so thresholding/aggregation
  // behavior on the sample matches the full stream's character.
  uint64_t MaxUnits = Opts.MaxSampleUnits;
  if (Workload.SampleUnitCap)
    MaxUnits = std::min(MaxUnits, Workload.SampleUnitCap);
  uint64_t PerBatchCap =
      std::max<uint64_t>(1, MaxUnits / std::max<size_t>(1, Order.size()));
  for (size_t Idx : Order) {
    NestedBatch B = Workload.Batches[Idx];
    uint64_t Units = 0;
    size_t Keep = 0;
    for (; Keep < B.ChildUnits.size(); ++Keep) {
      if (Units >= PerBatchCap && Keep > 0)
        break;
      Units += B.ChildUnits[Keep];
    }
    if (Keep == 0)
      continue;
    B.ChildUnits.resize(Keep);
    B.NumParentThreads = (uint32_t)Keep;
    Sample.push_back(std::move(B));
    SampleIndex.push_back((unsigned)Idx);
  }
}

uint64_t EmpiricalEvaluator::sampleUnits(unsigned Resource) const {
  uint64_t Units = 0;
  for (unsigned I = 0; I < Resource && I < Sample.size(); ++I)
    Units += Sample[I].totalChildUnits();
  return Units;
}

const VmProgram *EmpiricalEvaluator::programFor(const std::string &Pipeline) {
  auto It = Programs.find(Pipeline);
  if (It != Programs.end())
    return &It->second;
  if (FailedPipelines.count(Pipeline)) {
    LastError = "pipeline '" + Pipeline + "' failed earlier (cached)";
    return nullptr;
  }

  std::string Src;
  if (Pipeline.empty()) {
    Src = Workload.Source;
  } else {
    DiagnosticEngine Diags;
    Src = transformSourceWithPipeline(Workload.Source, Pipeline,
                                      literalKnobConfig(Profile), Diags);
    if (Src.empty()) {
      LastError = "pipeline '" + Pipeline + "' failed: " + Diags.str();
      FailedPipelines.insert(Pipeline);
      return nullptr;
    }
  }

  DiagnosticEngine Diags;
  ASTContext Ctx;
  TranslationUnit *TU = parseSource(Src, Ctx, Diags);
  VmProgram Program;
  if (TU)
    Program = compileProgram(TU, Diags);
  if (!TU || Diags.hasErrors()) {
    LastError = "bytecode compile of pipeline '" + Pipeline +
                "' failed: " + Diags.str();
    FailedPipelines.insert(Pipeline);
    return nullptr;
  }
  ++Compiles;
  return &Programs.emplace(Pipeline, std::move(Program)).first->second;
}

bool EmpiricalEvaluator::runMeasurement(const VmProgram &Program,
                                        const std::string &Pipeline,
                                        unsigned Resource, VmMeasurement &Out,
                                        std::string &Err, ExecMode Mode,
                                        LaunchProfile *ProfileOut) const {
  // Search measurements pin the decoded engine (the default \p Mode):
  // they must not depend on the DPO_VM_EXEC environment toggle. The
  // scores themselves are engine-independent anyway — every engine
  // retires identical Steps, GridRecords, and launch counts (decode
  // fusions and traces carry the step cost of what they replace), so
  // measuredMakespanCycles prices the same work either way and committed
  // tuned tables stay valid. measurePipeline() passes Auto so the stats
  // printer can A/B engines through the environment.
  Device Dev(Program, std::max(Opts.VmMemoryBytes, Workload.MinMemoryBytes),
             Mode);
  // Measurement devices stay single-worker regardless of DPO_VM_WORKERS:
  // racy kernels (BFS/SSSP frontier CAS) retire worker-count-dependent
  // step totals, and tuned tables are committed against the sequential
  // counts. The tuner's parallelism is across candidates (prefetch), not
  // inside one measurement.
  Dev.setWorkers(1);
  Dev.setStepLimit(Opts.VmStepLimit);
  Dev.setGridLogEnabled(true);

  if (Workload.Binding) {
    std::string SetupError;
    if (!Workload.Binding->setup(Dev, SetupError)) {
      Err = "workload binding setup failed: " + SetupError;
      return false;
    }
    // The staging runs outside the measurement: only the rounds below
    // count.
    Dev.resetStats();
    Dev.clearGridLog();
  }

  for (unsigned I = 0; I < Resource; ++I) {
    std::string RoundErr;
    if (!runSampleRound(Dev, I, RoundErr)) {
      Err = "VM run of pipeline '" + Pipeline + "' failed: " + RoundErr;
      return false;
    }
  }

  const VmStats &S = Dev.stats();
  Out.Steps = S.Steps;
  Out.DeviceLaunches = S.DeviceLaunches;
  Out.HostLaunches = S.HostLaunches;
  Out.BlocksExecuted = S.BlocksExecuted;
  Out.ThreadsExecuted = S.ThreadsExecuted;
  Out.GridsLaunched = S.GridsLaunched;
  Out.BatchesRun = Resource;
  Out.Cycles = measuredMakespanCycles(Dev.gridLog(), S, Gpu);
  Out.TracesFormed = Dev.decodeStats().TracesFormed;
  Out.TraceEntries = S.TraceEntries;
  Out.TraceIters = S.TraceIters;
  Out.TraceSideExits = S.TraceSideExits;
  Out.SpecGuardPass = S.SpecGuardPass;
  Out.SpecGuardFail = S.SpecGuardFail;
  if (ProfileOut)
    *ProfileOut = harvestProfile(Dev.gridLog(), Dev.program());
  return true;
}

bool EmpiricalEvaluator::runSampleRound(Device &Dev, unsigned I,
                                        std::string &Err) const {
  const NestedBatch &B = Sample[I];
  std::vector<int64_t> Args;
  int64_t NumV = (int64_t)B.ChildUnits.size();
  if (Workload.Binding) {
    Args = Workload.Binding->argsFor(Dev, B, SampleIndex[I]);
  } else {
    std::vector<int32_t> Counts(B.ChildUnits.size());
    std::vector<int32_t> Offsets(B.ChildUnits.size());
    int64_t Total = 0;
    for (size_t V = 0; V < B.ChildUnits.size(); ++V) {
      Offsets[V] = (int32_t)Total;
      Counts[V] = (int32_t)std::min<uint32_t>(
          B.ChildUnits[V], (uint32_t)std::numeric_limits<int32_t>::max());
      Total += Counts[V];
    }
    uint64_t OutA = Dev.alloc((uint64_t)std::max<int64_t>(1, Total) * 4);
    uint64_t CountsA = Dev.allocI32(Counts);
    uint64_t OffsetsA = Dev.allocI32(Offsets);
    Args = {(int64_t)OutA, (int64_t)CountsA, (int64_t)OffsetsA, NumV};
  }
  if (!launchWorkloadParent(Dev, Workload.ParentKernel, (uint32_t)NumV,
                            B.ParentBlockDim, Args)) {
    Err = Dev.error();
    return false;
  }
  return true;
}

bool EmpiricalEvaluator::replayRoundExact(const std::string &PipelineText,
                                          unsigned Rounds, VmMeasurement &Out,
                                          std::string &Err) {
  const VmProgram *Program = programFor(PipelineText);
  if (!Program) {
    Err = LastError;
    return false;
  }
  unsigned Resource =
      std::max(1u, std::min(Rounds, (unsigned)Sample.size()));

  // Same device shape as runMeasurement: decoded engine, one worker,
  // grid log on — the replay must reproduce the measured path exactly.
  Device Dev(*Program, std::max(Opts.VmMemoryBytes, Workload.MinMemoryBytes),
             ExecMode::Decoded);
  Dev.setWorkers(1);
  Dev.setStepLimit(Opts.VmStepLimit);
  Dev.setGridLogEnabled(true);

  if (Workload.Binding) {
    std::string SetupError;
    if (!Workload.Binding->setup(Dev, SetupError)) {
      Err = "workload binding setup failed: " + SetupError;
      return false;
    }
    Dev.resetStats();
    Dev.clearGridLog();
  }

  for (unsigned I = 0; I + 1 < Resource; ++I)
    if (!runSampleRound(Dev, I, Err)) {
      Err = "warm-up round " + std::to_string(I) + " failed: " + Err;
      return false;
    }

  // Checkpoint, run the final round, snapshot; restore and run it again.
  // Identical end states prove the round is a pure function of the
  // checkpointed device state (allocations land at the same addresses
  // because BumpPtr is part of the snapshot).
  DeviceCheckpoint Before = Dev.checkpoint();
  if (!runSampleRound(Dev, Resource - 1, Err)) {
    Err = "final round failed: " + Err;
    return false;
  }
  DeviceCheckpoint First = Dev.checkpoint();
  if (!Dev.restore(Before)) {
    Err = "checkpoint restore failed (memory size mismatch)";
    return false;
  }
  if (!runSampleRound(Dev, Resource - 1, Err)) {
    Err = "replayed round failed: " + Err;
    return false;
  }
  DeviceCheckpoint Second = Dev.checkpoint();
  if (!(First == Second)) {
    Err = "replayed round diverged from its first execution (steps " +
          std::to_string(First.Stats.Steps) + " vs " +
          std::to_string(Second.Stats.Steps) + ")";
    return false;
  }

  const VmStats &S = Dev.stats();
  Out = VmMeasurement();
  Out.Steps = S.Steps;
  Out.DeviceLaunches = S.DeviceLaunches;
  Out.HostLaunches = S.HostLaunches;
  Out.BlocksExecuted = S.BlocksExecuted;
  Out.ThreadsExecuted = S.ThreadsExecuted;
  Out.GridsLaunched = S.GridsLaunched;
  Out.BatchesRun = Resource;
  Out.Cycles = measuredMakespanCycles(Dev.gridLog(), S, Gpu);
  Out.TracesFormed = Dev.decodeStats().TracesFormed;
  Out.TraceEntries = S.TraceEntries;
  Out.TraceIters = S.TraceIters;
  Out.TraceSideExits = S.TraceSideExits;
  Out.SpecGuardPass = S.SpecGuardPass;
  Out.SpecGuardFail = S.SpecGuardFail;
  return true;
}

std::optional<VmMeasurement>
EmpiricalEvaluator::measurePipeline(const std::string &PipelineText,
                                    ExecMode Mode, LaunchProfile *ProfileOut) {
  const VmProgram *Program = programFor(PipelineText);
  if (!Program)
    return std::nullopt;
  VmMeasurement M;
  std::string Err;
  if (!runMeasurement(*Program, PipelineText, maxResource(), M, Err, Mode,
                      ProfileOut)) {
    LastError = std::move(Err);
    return std::nullopt;
  }
  return M;
}

unsigned EmpiricalEvaluator::evalWorkers() const {
  if (Opts.EvalWorkers)
    return std::min(Opts.EvalWorkers, 64u);
  if (const char *E = std::getenv("DPO_TUNER_WORKERS")) {
    char *End = nullptr;
    long V = std::strtol(E, &End, 10);
    if (End != E && *End == '\0' && V >= 1)
      return (unsigned)std::min<long>(V, 64);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return std::clamp(HW, 1u, 8u);
}

void EmpiricalEvaluator::prefetch(const std::vector<ExecConfig> &Configs,
                                  unsigned Resource) {
  unsigned Threads = evalWorkers();
  if (Threads <= 1 || Sample.empty())
    return;
  Resource = std::clamp(Resource, 1u, maxResource());

  // Replay the sequential measure() calls' budget/cache decisions to find
  // the VM runs that will actually happen. A failed run is simulated as
  // consuming budget (we cannot know failure before running); that can
  // only under-schedule, and unstaged keys simply fall back to the
  // sequential path in measure().
  struct Job {
    std::string Key;
    const VmProgram *Program;
    std::string Pipeline;
  };
  std::vector<Job> Jobs;
  unsigned SimEvals = Evaluations;
  for (const ExecConfig &C : Configs) {
    if (SimEvals >= Opts.Budget)
      break;
    std::string Pipeline = passPipelineTextFor(C);
    std::string Key = Pipeline + "|" + std::to_string(Resource);
    if (Cache.count(Key))
      continue; // will be a cache hit: free
    if (auto It = Staged.find(Key); It != Staged.end()) {
      SimEvals += It->second.Ok ? 1 : 0; // already prefetched
      continue;
    }
    bool Dup = false;
    for (const Job &J : Jobs)
      if (J.Key == Key) {
        Dup = true;
        break;
      }
    if (Dup)
      continue; // second occurrence hits the cache the first one fills
    // Compiles stay serial: programFor mutates the shared program cache,
    // and its counter order must match the sequential execution.
    const VmProgram *P = programFor(Pipeline);
    if (!P)
      continue; // compile failure costs no budget sequentially either
    Jobs.push_back({std::move(Key), P, std::move(Pipeline)});
    ++SimEvals;
  }
  if (Jobs.size() <= 1)
    return; // nothing to overlap

  std::vector<StagedMeasurement> Results(Jobs.size());
  std::atomic<size_t> NextJob{0};
  auto Work = [&]() {
    for (size_t I = NextJob.fetch_add(1); I < Jobs.size();
         I = NextJob.fetch_add(1)) {
      StagedMeasurement &R = Results[I];
      R.Ok = runMeasurement(*Jobs[I].Program, Jobs[I].Pipeline, Resource,
                            R.M, R.Error);
    }
  };
  std::vector<std::thread> Pool;
  size_t Spawn = std::min<size_t>(Threads, Jobs.size()) - 1;
  for (size_t T = 0; T < Spawn; ++T)
    Pool.emplace_back(Work);
  Work();
  for (std::thread &T : Pool)
    T.join();

  for (size_t I = 0; I < Jobs.size(); ++I)
    Staged.emplace(std::move(Jobs[I].Key), std::move(Results[I]));
}

std::optional<VmMeasurement>
EmpiricalEvaluator::measure(const ExecConfig &Config, unsigned Resource) {
  if (Sample.empty()) {
    LastError = "workload has no batches to measure";
    return std::nullopt;
  }
  Resource = std::clamp(Resource, 1u, maxResource());

  std::string Pipeline = passPipelineTextFor(Config);
  std::string Key = Pipeline + "|" + std::to_string(Resource);
  if (auto It = Cache.find(Key); It != Cache.end()) {
    ++CacheHits;
    return It->second;
  }

  // A prefetched run: consume it and perform the counter accounting the
  // sequential execution would have done here. Failed runs are consumed
  // too (not negatively cached — the sequential path re-runs on retry,
  // deterministically failing again).
  if (auto It = Staged.find(Key); It != Staged.end()) {
    StagedMeasurement E = std::move(It->second);
    Staged.erase(It);
    if (!E.Ok) {
      LastError = std::move(E.Error);
      return std::nullopt;
    }
    ++Evaluations;
    Cache.emplace(std::move(Key), E.M);
    return E.M;
  }

  const VmProgram *Program = programFor(Pipeline);
  if (!Program)
    return std::nullopt;

  VmMeasurement M;
  std::string Err;
  if (!runMeasurement(*Program, Pipeline, Resource, M, Err)) {
    LastError = std::move(Err);
    return std::nullopt;
  }
  ++Evaluations;
  Cache.emplace(std::move(Key), M);
  return M;
}

//===----------------------------------------------------------------------===//
// Search drivers
//===----------------------------------------------------------------------===//

namespace {

/// Seeded Fisher-Yates (spelled out so the order is identical across
/// standard libraries, unlike std::shuffle).
void deterministicShuffle(std::vector<ExecConfig> &Configs, unsigned Seed) {
  std::mt19937 Rng(Seed);
  for (size_t I = Configs.size(); I > 1; --I)
    std::swap(Configs[I - 1], Configs[Rng() % I]);
}

/// The hill-climbing neighborhood: one knob moved one sweep step.
std::vector<ExecConfig> neighborConfigs(const ExecConfig &C,
                                        const VariantMask &Mask) {
  std::vector<ExecConfig> Out;
  auto Push = [&](ExecConfig N) {
    if (!(N == C))
      Out.push_back(N);
  };
  if (Mask.Thresholding) {
    if (C.Threshold) {
      if (*C.Threshold > 1) {
        ExecConfig N = C;
        N.Threshold = *C.Threshold / 2;
        Push(N);
      }
      if (*C.Threshold < 32768) {
        ExecConfig N = C;
        N.Threshold = *C.Threshold * 2;
        Push(N);
      }
      ExecConfig N = C;
      N.Threshold.reset();
      Push(N);
    } else {
      ExecConfig N = C;
      N.Threshold = 128u;
      Push(N);
    }
  }
  if (Mask.Coarsening) {
    if (C.CoarsenFactor > 1) {
      ExecConfig N = C;
      N.CoarsenFactor = C.CoarsenFactor / 2;
      Push(N);
    }
    if (C.CoarsenFactor < 32) {
      ExecConfig N = C;
      N.CoarsenFactor = C.CoarsenFactor * 2;
      Push(N);
    }
  }
  if (Mask.Aggregation) {
    if (C.Agg == AggGranularity::MultiBlock) {
      if (C.AggGroupBlocks > 2) {
        ExecConfig N = C;
        N.AggGroupBlocks = C.AggGroupBlocks / 2;
        Push(N);
      }
      if (C.AggGroupBlocks < 32) {
        ExecConfig N = C;
        N.AggGroupBlocks = C.AggGroupBlocks * 2;
        Push(N);
      }
    }
    for (AggGranularity G : Mask.Granularities) {
      if (G == C.Agg)
        continue;
      ExecConfig N = C;
      N.Agg = G;
      Push(N);
    }
    if (C.Agg != AggGranularity::None) {
      ExecConfig N = C;
      N.Agg = AggGranularity::None;
      Push(N);
    }
  }
  return Out;
}

/// Greedy refinement around \p Result (budget-guarded); updates it in
/// place when a neighbor measures faster at full resource.
void hillClimb(EmpiricalEvaluator &Eval, const VariantMask &Mask,
               EmpiricalTuneResult &Result) {
  unsigned Budget = Eval.options().Budget;
  unsigned MaxRes = Eval.maxResource();
  bool Improved = true;
  while (Improved && Eval.evaluations() < Budget) {
    Improved = false;
    std::vector<ExecConfig> Neighbors = neighborConfigs(Result.Config, Mask);
    Eval.prefetch(Neighbors, MaxRes);
    for (const ExecConfig &N : Neighbors) {
      if (Eval.evaluations() >= Budget)
        break;
      std::optional<VmMeasurement> M = Eval.measure(N, MaxRes);
      if (M && M->Cycles + 1e-9 < Result.Measured.Cycles) {
        Result.Config = N;
        Result.Measured = *M;
        Improved = true;
      }
    }
  }
}

void finalizeMeasured(EmpiricalEvaluator &Eval, EmpiricalTuneResult &Result) {
  Result.TimeUs = Eval.gpu().cyclesToUs(Result.Measured.Cycles);
  // A budget-exhausted search may leave the winner measured on a rung
  // below the full sample; extrapolate by child units so the headline
  // time stays comparable with full-sample results from other modes.
  if (Result.Measured.BatchesRun < Eval.maxResource()) {
    uint64_t Run = Eval.sampleUnits(Result.Measured.BatchesRun);
    uint64_t All = Eval.sampleUnits(Eval.maxResource());
    if (Run > 0 && All > Run)
      Result.TimeUs *= (double)All / (double)Run;
  }
  Result.VmEvaluations = Eval.evaluations();
  Result.Pipeline = passPipelineTextFor(Result.Config);
}

/// When the VM could not measure anything (empty workload, pipeline
/// failure), fall back to the analytic sweep so callers still get a valid
/// config.
EmpiricalTuneResult analyticFallback(EmpiricalEvaluator &Eval,
                                     const VariantMask &Mask, TuneMode Mode) {
  EmpiricalTuneResult Result =
      analyticTune(Eval.gpu(), Eval.workload().Batches, Mask);
  Result.Mode = Mode;
  Result.VmEvaluations = Eval.evaluations();
  return Result;
}

} // namespace

EmpiricalTuneResult dpo::analyticTune(const GpuModel &Gpu,
                                      const std::vector<NestedBatch> &Batches,
                                      const VariantMask &Mask) {
  TuneResult Sweep = exhaustiveTune(Gpu, Batches, Mask);
  EmpiricalTuneResult Result;
  Result.Config = Sweep.Config;
  Result.TimeUs = Sweep.Result.TimeUs;
  Result.SimProbes = Sweep.Probes;
  Result.Mode = TuneMode::Analytic;
  Result.Pipeline = passPipelineTextFor(Result.Config);
  return Result;
}

EmpiricalTuneResult dpo::empiricalTune(EmpiricalEvaluator &Eval,
                                       const VariantMask &Mask) {
  const unsigned Budget = Eval.options().Budget;
  const unsigned MaxRes = std::max(1u, Eval.maxResource());

  std::vector<ExecConfig> Pool = enumerateConfigs(Mask);
  deterministicShuffle(Pool, Eval.options().Seed);
  // Roughly half the budget feeds the opening rung; halving then costs
  // n/2 + n/4 + ... more, leaving a remainder for hill climbing.
  size_t Opening = std::max<size_t>(2, Budget / 2);
  if (Pool.size() > Opening)
    Pool.resize(Opening);
  // Warm start (opt-in; the service layer's cached/tabled seed): measure
  // the known-good config first so the search never does worse than it.
  // Default searches leave WarmStart unset and keep the recorded
  // trajectory bit-for-bit (the bench/tuned/ drift gate's contract).
  if (Eval.options().WarmStart) {
    const ExecConfig &W = *Eval.options().WarmStart;
    Pool.erase(std::remove(Pool.begin(), Pool.end(), W), Pool.end());
    Pool.insert(Pool.begin(), W);
  }

  EmpiricalTuneResult Result;
  Result.Mode = TuneMode::Empirical;
  bool HaveBest = false;

  unsigned Resource = 1;
  std::vector<std::pair<double, ExecConfig>> Ranked;
  ExecConfig RungBestC;
  VmMeasurement RungBestM;
  while (true) {
    Ranked.clear();
    bool RungHasBest = false;
    // Warm this rung's measurements concurrently; the sequential loop
    // below consumes them with exact counter replay.
    Eval.prefetch(Pool, Resource);
    for (const ExecConfig &C : Pool) {
      if (Eval.evaluations() >= Budget)
        break;
      if (std::optional<VmMeasurement> M = Eval.measure(C, Resource)) {
        Ranked.emplace_back(M->Cycles, C);
        if (!RungHasBest || M->Cycles < RungBestM.Cycles) {
          RungBestC = C;
          RungBestM = *M;
          RungHasBest = true;
        }
        if (Resource == MaxRes &&
            (!HaveBest || M->Cycles < Result.Measured.Cycles)) {
          Result.Config = C;
          Result.Measured = *M;
          HaveBest = true;
        }
      }
    }
    if (Ranked.empty())
      break;
    std::stable_sort(Ranked.begin(), Ranked.end(),
                     [](const auto &A, const auto &B) {
                       return A.first < B.first;
                     });
    if (Resource == MaxRes)
      break;
    size_t Keep = std::max<size_t>(1, (Ranked.size() + 1) / 2);
    Pool.clear();
    for (size_t I = 0; I < Keep; ++I)
      Pool.push_back(Ranked[I].second);
    Resource = std::min(Resource * 2, MaxRes);
    if (Eval.evaluations() >= Budget) {
      // Budget exhausted before the top rung: promote the last completed
      // rung's leader with the measurement it already has (no extra VM
      // execution — the budget is a hard bound).
      if (!HaveBest && RungHasBest) {
        Result.Config = RungBestC;
        Result.Measured = RungBestM;
        HaveBest = true;
      }
      break;
    }
  }

  if (!HaveBest)
    return analyticFallback(Eval, Mask, TuneMode::Empirical);

  hillClimb(Eval, Mask, Result);
  finalizeMeasured(Eval, Result);
  return Result;
}

EmpiricalTuneResult dpo::hybridTune(EmpiricalEvaluator &Eval,
                                    const VariantMask &Mask) {
  const unsigned Budget = Eval.options().Budget;
  const unsigned MaxRes = std::max(1u, Eval.maxResource());

  // Stage 1: the analytic model ranks the whole grid for free (in VM
  // budget terms). Stage 2 spends roughly half the budget confirming the
  // shortlist on the VM; the remainder hill-climbs around the winner.
  std::vector<ExecConfig> Candidates = enumerateConfigs(Mask);
  std::vector<size_t> Order =
      rankConfigs(Eval.gpu(), Eval.workload().Batches, Candidates);

  EmpiricalTuneResult Result;
  Result.Mode = TuneMode::Hybrid;
  Result.SimProbes = (unsigned)Candidates.size();
  bool HaveBest = false;

  size_t Shortlist = std::max<size_t>(1, (Budget + 1) / 2);
  std::vector<ExecConfig> ShortlistConfigs;
  for (size_t I = 0; I < Order.size() && I < Shortlist; ++I)
    ShortlistConfigs.push_back(Candidates[Order[I]]);
  // Warm start (opt-in): the seeded config jumps the analytic ranking and
  // is measured first. Off by default — see empiricalTune.
  if (Eval.options().WarmStart) {
    const ExecConfig &W = *Eval.options().WarmStart;
    ShortlistConfigs.erase(
        std::remove(ShortlistConfigs.begin(), ShortlistConfigs.end(), W),
        ShortlistConfigs.end());
    ShortlistConfigs.insert(ShortlistConfigs.begin(), W);
  }
  Eval.prefetch(ShortlistConfigs, MaxRes);
  for (const ExecConfig &C : ShortlistConfigs) {
    if (Eval.evaluations() >= Budget)
      break;
    std::optional<VmMeasurement> M = Eval.measure(C, MaxRes);
    if (M && (!HaveBest || M->Cycles < Result.Measured.Cycles)) {
      Result.Config = C;
      Result.Measured = *M;
      HaveBest = true;
    }
  }

  if (!HaveBest)
    return analyticFallback(Eval, Mask, TuneMode::Hybrid);

  hillClimb(Eval, Mask, Result);
  finalizeMeasured(Eval, Result);
  return Result;
}

EmpiricalTuneResult dpo::tuneWorkload(TuneMode Mode, const GpuModel &Gpu,
                                      const VmWorkload &Workload,
                                      const VariantMask &Mask,
                                      const EmpiricalOptions &Opts) {
  if (Mode == TuneMode::Analytic)
    return analyticTune(Gpu, Workload.Batches, Mask);
  EmpiricalEvaluator Eval(Gpu, Workload, Opts);
  return Mode == TuneMode::Empirical ? empiricalTune(Eval, Mask)
                                     : hybridTune(Eval, Mask);
}
