//===--- Tuner.h - Parameter tuning (Section VIII-C) --------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tuning of the launch threshold, coarsening factor, and aggregation
/// granularity/group size. Two modes, as in the paper:
///
///  - exhaustive: sweep the full space (what the paper uses to show the
///    maximum potential and Fig. 11's curves);
///  - guided: the paper's observations — pick the threshold that leaves
///    roughly 6,000-8,000 child grid launches, use a coarsening factor of
///    8 (performance is insensitive above that), skip warp granularity
///    (never favorable) — typically within a few percent in <= 10 probes.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TUNER_TUNER_H
#define DPO_TUNER_TUNER_H

#include "sim/Simulator.h"
#include "transform/Pipeline.h"

#include <functional>
#include <string>
#include <vector>

namespace dpo {

/// Which optimizations a variant may use (Fig. 9's combination labels).
struct VariantMask {
  bool Thresholding = false;
  bool Coarsening = false;
  bool Aggregation = false;
  /// Restrict aggregation granularities (e.g. KLAP = {Warp, Block, Grid}).
  std::vector<AggGranularity> Granularities = {
      AggGranularity::Warp, AggGranularity::Block, AggGranularity::MultiBlock,
      AggGranularity::Grid};
};

struct TuneResult {
  ExecConfig Config;
  SimResult Result;
  unsigned Probes = 0; ///< Simulator evaluations spent.
};

/// The paper's sweep axes.
std::vector<uint32_t> defaultThresholdSweep();   // 1,2,4,...,32768
std::vector<uint32_t> defaultCoarsenSweep();     // 1,2,4,...,32
std::vector<uint32_t> defaultGroupSizeSweep();   // 2,4,8,16,32

/// The full candidate grid of a variant, in deterministic sweep order —
/// the space exhaustiveTune scans and the empirical/hybrid tuners sample.
std::vector<ExecConfig> enumerateConfigs(const VariantMask &Mask);

/// Exhaustively tunes a variant for a batch stream.
TuneResult exhaustiveTune(const GpuModel &Gpu,
                          const std::vector<NestedBatch> &Batches,
                          const VariantMask &Mask);

/// The guided heuristic described above.
TuneResult guidedTune(const GpuModel &Gpu,
                      const std::vector<NestedBatch> &Batches,
                      const VariantMask &Mask);

/// Picks the smallest power-of-two threshold that leaves at most
/// \p TargetLaunches dynamic launches (Section VIII-C's 6k-8k rule).
uint32_t thresholdForLaunchBudget(const std::vector<NestedBatch> &Batches,
                                  uint64_t TargetLaunches);

/// Maps a tuned execution strategy back onto the source-to-source
/// compiler: the pipeline options that realize \p Config (knobs spelled as
/// macros with the tuned values as defaults). NoCdp configurations map to
/// thresholding with a threshold of 2^32-1, which serializes every child
/// grid. Feed the result to runPipeline/buildPassPipeline to emit the
/// tuned .cu.
PipelineOptions pipelineOptionsFor(const ExecConfig &Config);

/// The textual pass pipeline realizing \p Config, in parsePassPipeline's
/// grammar ("threshold[1024],coarsen[8],aggregate[multiblock:8]"). Empty
/// when \p Config enables no transformation.
std::string passPipelineTextFor(const ExecConfig &Config);

/// The inverse of passPipelineTextFor, for warm-starting searches from
/// committed tuned tables: parses a pipeline in the subset that ExecConfig
/// can represent (threshold[N], coarsen[N], aggregate[...], knob-spelling
/// and fallback suffixes ignored; the NoCdp spelling maps back to
/// ExecConfig::noCdp()). Returns false when the text uses anything outside
/// that subset — profile-mode knobs, speculate, builtin-rewrite, an
/// unknown pass — leaving \p Out untouched. An empty pipeline is the
/// default (untransformed) config.
bool execConfigFromPipelineText(std::string_view Text, ExecConfig &Out);

} // namespace dpo

#endif // DPO_TUNER_TUNER_H
