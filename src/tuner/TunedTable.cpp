//===--- TunedTable.cpp ---------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tuner/TunedTable.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace dpo;

std::string dpo::tunedEntryJson(const TunedEntry &Entry) {
  char TimeBuf[64];
  std::snprintf(TimeBuf, sizeof(TimeBuf), "%.3f", Entry.TimeUs);
  std::ostringstream OS;
  OS << "{\n"
     << "  \"workload\": \"" << Entry.Workload << "\",\n"
     << "  \"mode\": \"" << tuneModeName(Entry.Mode) << "\",\n"
     << "  \"budget\": " << Entry.Budget << ",\n"
     << "  \"seed\": " << Entry.Seed << ",\n"
     << "  \"pipeline\": \"" << Entry.Pipeline << "\",\n"
     << "  \"time_us\": " << TimeBuf << ",\n"
     << "  \"vm_evaluations\": " << Entry.VmEvaluations << "\n"
     << "}\n";
  return OS.str();
}

namespace {

/// Minimal extraction from the flat committed format: finds `"Key":` and
/// returns the value token (string contents or bare number). No general
/// JSON — the only accepted input is what tunedEntryJson writes (plus
/// whitespace/reordering).
bool extractValue(std::string_view Text, const std::string &Key,
                  std::string &Out) {
  std::string Needle = "\"" + Key + "\"";
  size_t Pos = Text.find(Needle);
  if (Pos == std::string_view::npos)
    return false;
  Pos = Text.find(':', Pos + Needle.size());
  if (Pos == std::string_view::npos)
    return false;
  ++Pos;
  while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
    ++Pos;
  if (Pos >= Text.size())
    return false;
  if (Text[Pos] == '"') {
    size_t End = Text.find('"', Pos + 1);
    if (End == std::string_view::npos)
      return false;
    Out = std::string(Text.substr(Pos + 1, End - Pos - 1));
    return true;
  }
  size_t End = Pos;
  while (End < Text.size() && Text[End] != ',' && Text[End] != '\n' &&
         Text[End] != '}')
    ++End;
  Out = std::string(Text.substr(Pos, End - Pos));
  while (!Out.empty() && (Out.back() == ' ' || Out.back() == '\r'))
    Out.pop_back();
  return !Out.empty();
}

} // namespace

bool dpo::parseTunedEntryJson(std::string_view Text, TunedEntry &Entry,
                              std::string &Error) {
  std::string Value;
  if (!extractValue(Text, "workload", Entry.Workload)) {
    Error = "missing \"workload\"";
    return false;
  }
  if (!extractValue(Text, "mode", Value) || !parseTuneMode(Value, Entry.Mode)) {
    Error = "missing or invalid \"mode\"";
    return false;
  }
  if (!extractValue(Text, "budget", Value)) {
    Error = "missing \"budget\"";
    return false;
  }
  Entry.Budget = (unsigned)std::strtoul(Value.c_str(), nullptr, 10);
  if (!extractValue(Text, "seed", Value)) {
    Error = "missing \"seed\"";
    return false;
  }
  Entry.Seed = (unsigned)std::strtoul(Value.c_str(), nullptr, 10);
  // An empty pipeline ("" = untransformed winner) is legal, so presence
  // of the key is what matters.
  if (Text.find("\"pipeline\"") == std::string_view::npos) {
    Error = "missing \"pipeline\"";
    return false;
  }
  extractValue(Text, "pipeline", Entry.Pipeline);
  if (extractValue(Text, "time_us", Value))
    Entry.TimeUs = std::strtod(Value.c_str(), nullptr);
  if (extractValue(Text, "vm_evaluations", Value))
    Entry.VmEvaluations = (unsigned)std::strtoul(Value.c_str(), nullptr, 10);
  return true;
}

bool dpo::writeTunedEntryFile(const std::string &Path,
                              const TunedEntry &Entry) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << tunedEntryJson(Entry);
  return (bool)Out;
}

bool dpo::loadTunedEntryFile(const std::string &Path, TunedEntry &Entry,
                             std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return parseTunedEntryJson(Buffer.str(), Entry, Error);
}

std::string dpo::tunedTableFileName(std::string_view WorkloadSpec) {
  std::string Name;
  for (char C : WorkloadSpec)
    Name.push_back(C == ':' || C == '-' ? '_'
                                        : (char)std::tolower((unsigned char)C));
  return Name + ".json";
}
