//===--- Empirical.h - VM-in-the-loop autotuning ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical, measurement-driven parameter search: instead of asking the
/// analytic timing model (sim/Simulator.h) how a candidate ExecConfig
/// would perform, compile the workload through the candidate's pass
/// pipeline (passPipelineTextFor -> parsePassPipeline -> PassManager),
/// lower the transformed source to bytecode (vm/Compiler), execute it on
/// the VM against the workload's real batch stream, and score the config
/// from the *measured* event counts (instructions retired, device/host
/// launches, blocks dispatched).
///
/// Three tuning modes, selected by dpoptcc/autotune's --tune= flag:
///
///  - analytic:  the existing exhaustive sweep over the simulator (cheap,
///               model-only — Section VIII-C's methodology);
///  - empirical: successive halving over a seeded sample of the config
///               grid — every candidate runs on the VM against one sample
///               batch, the faster half graduates to more batches, and so
///               on until one survivor is measured at full resource — then
///               hill-climbing refinement around the winner;
///  - hybrid:    the simulator ranks the full grid first (free of VM
///               budget), and only the analytically-promising shortlist is
///               measured on the VM.
///
/// Every mode is deterministic: the VM is deterministic, the candidate
/// sample order is derived from EmpiricalOptions::Seed, and ranking ties
/// break by candidate order. Fixed (seed, budget) therefore reproduces the
/// chosen ExecConfig exactly. VM executions are bounded by
/// EmpiricalOptions::Budget; cached measurements (the same config, or two
/// configs lowering to the same pipeline) cost no budget.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_TUNER_EMPIRICAL_H
#define DPO_TUNER_EMPIRICAL_H

#include "tuner/Tuner.h"
#include "vm/VM.h"
#include "workloads/VmWorkload.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dpo {

class LaunchProfile;

enum class TuneMode { Analytic, Empirical, Hybrid };

const char *tuneModeName(TuneMode Mode);
/// Parses "analytic" / "empirical" / "hybrid" (the --tune= spellings).
bool parseTuneMode(std::string_view Text, TuneMode &Out);

/// Knobs of the empirical search.
struct EmpiricalOptions {
  /// Maximum VM executions (a compile+run of one candidate against the
  /// sample counts as one; cache hits are free). Bounds empirical and
  /// hybrid mode alike.
  unsigned Budget = 48;
  /// Seeds the candidate-grid sampling order. Fixed seed + fixed budget
  /// reproduces the chosen config bit-for-bit.
  unsigned Seed = 1;
  /// Batches in the measurement sample (the largest of the workload's
  /// batches, kept in stream order). Successive halving starts at one
  /// batch and doubles toward this.
  unsigned SampleBatches = 4;
  /// Cap on total child units executed per probe, enforced by truncating
  /// sample batches (per-parent child sizes are preserved, so threshold
  /// behavior is unaffected).
  uint64_t MaxSampleUnits = 50000;
  /// Device-memory size for measurement VMs.
  uint64_t VmMemoryBytes = 32ull << 20;
  /// Step limit per VM run (guards against pathological candidates).
  uint64_t VmStepLimit = 500ull * 1000 * 1000;
  /// Threads for prefetch()'s concurrent candidate measurement. 0 = auto
  /// (DPO_TUNER_WORKERS env, else hardware concurrency capped at 8).
  /// Any value reproduces the sequential search trajectory bit-for-bit:
  /// prefetch only warms the measurement cache.
  unsigned EvalWorkers = 0;
  /// Optional warm-start seed for empirical/hybrid searches: the service
  /// layer sets this from committed bench/tuned/ tables or cached tune
  /// results so a repeat request starts at (and never does worse than)
  /// the known-good config — it is measured first, ahead of the sampled
  /// pool / analytic shortlist. Strictly opt-in and off by default:
  /// recorded searches (the bench/tuned/ drift gate) replay the default
  /// trajectory bit-for-bit.
  std::optional<ExecConfig> WarmStart;
};

/// What one VM execution of a candidate measured. The event counts come
/// straight from VmStats; Cycles is measuredMakespanCycles over the VM's
/// per-grid log.
struct VmMeasurement {
  uint64_t Steps = 0;
  uint64_t DeviceLaunches = 0;
  uint64_t HostLaunches = 0;
  uint64_t BlocksExecuted = 0;
  uint64_t ThreadsExecuted = 0;
  uint64_t GridsLaunched = 0;
  unsigned BatchesRun = 0;
  double Cycles = 0;
  /// Trace-engine observability (zero under bytecode / decoded-notrace):
  /// superblocks the decoder formed, entries into them, closed-loop
  /// iterations retired inside them, and guard side exits. Purely
  /// diagnostic — Steps and the event counts above are engine-invariant.
  uint64_t TracesFormed = 0;
  uint64_t TraceEntries = 0;
  uint64_t TraceIters = 0;
  uint64_t TraceSideExits = 0;
  /// Speculative-serialization guard outcomes (zero unless the pipeline
  /// ran a `speculate` pass): how often the small-grid assumption held
  /// (serialized path) vs. fell back to the real launch.
  uint64_t SpecGuardPass = 0;
  uint64_t SpecGuardFail = 0;
};

/// Prices one VM execution from its per-grid measurements. The VM is a
/// sequential interpreter, so wall time cannot score a *parallel*
/// execution strategy; instead each grid's measured work (exclusive
/// steps), measured divergence (slowest thread), and measured shape
/// (blocks, block size) are scheduled onto the GpuModel: per-grid time is
/// max(work spread over resident threads, slowest thread); device-launched
/// grids additionally contend for concurrent-grid slots; launches and
/// block dispatch pay the model's per-event costs. Thresholding therefore
/// shows up as fewer launch events but a slower worst thread, coarsening
/// as fewer dispatched blocks, aggregation as fewer, larger grids plus its
/// measured bookkeeping steps — the paper's actual trade-offs, from
/// measured inputs.
double measuredMakespanCycles(const std::vector<GridRecord> &Grids,
                              const VmStats &Stats, const GpuModel &Gpu);

/// Compiles and runs candidate ExecConfigs for one workload. Owns the
/// compile cache (pipeline text -> bytecode program) and the measurement
/// cache ((pipeline text, resource) -> measurement); every distinct
/// program is parsed and lowered once no matter how many times the search
/// revisits it.
class EmpiricalEvaluator {
public:
  EmpiricalEvaluator(const GpuModel &Gpu, VmWorkload Workload,
                     EmpiricalOptions Opts = {});

  /// Measures \p Config against the first \p Resource sample batches
  /// (clamped to [1, maxResource()]). Returns nullopt on pipeline/VM
  /// failure (lastError() explains).
  std::optional<VmMeasurement> measure(const ExecConfig &Config,
                                       unsigned Resource);
  /// Full-resource measurement.
  std::optional<VmMeasurement> measure(const ExecConfig &Config) {
    return measure(Config, maxResource());
  }

  /// Compiles \p PipelineText over the workload (empty = untransformed)
  /// and executes the full measurement sample on a fresh device running
  /// under \p Mode (Auto follows the DPO_VM_EXEC toggle). Shares the
  /// compile cache with measure() but spends no search budget; the trace
  /// counters in the result come from the run's device. Feeds dpoptcc's
  /// --print-vm-stats and the throughput bench's trace columns.
  /// \p ProfileOut, when non-null, receives the run's harvested
  /// per-launch-site profile (the grid log is always on during
  /// measurement) — dpoptcc --profile-out records through here.
  std::optional<VmMeasurement>
  measurePipeline(const std::string &PipelineText,
                  ExecMode Mode = ExecMode::Auto,
                  LaunchProfile *ProfileOut = nullptr);

  /// Exact-state replay (the ROADMAP's "checkpoint device state per
  /// round" lever): runs \p Rounds measurement rounds of \p PipelineText
  /// (clamped to [1, maxResource()]) exactly as a measure() would, but
  /// checkpoints the device before the final round, runs that round,
  /// restores, and runs it again — then demands the two end states be
  /// bit-identical (full memory image, stats, grid log). This is the
  /// proof obligation behind serving cached / warm-started tune results:
  /// a measurement round is a pure function of the checkpointed device
  /// state, so a cached result is exactly what a cold re-run would
  /// produce. On success \p Out holds the measurement over all rounds
  /// (identical to the measure() path's); on divergence or any VM
  /// failure, returns false with \p Err. Spends no search budget.
  bool replayRoundExact(const std::string &PipelineText, unsigned Rounds,
                        VmMeasurement &Out, std::string &Err);

  /// Backs the `profile` parameter of measured pipelines
  /// (`threshold[profile]`, ...). Not owned; must outlive the evaluator's
  /// compiles. Distinct profiles compile distinct programs, so set this
  /// before the first measurement of a pipeline that names it.
  void setProfile(const LaunchProfile *P) { Profile = P; }
  const LaunchProfile *profile() const { return Profile; }

  /// Executes the VM runs that upcoming measure(C, \p Resource) calls
  /// over \p Configs (in order) would perform, concurrently across
  /// options().EvalWorkers threads, and parks the results in a staging
  /// cache that measure() consumes. The budget/cache replay is exact:
  /// compiles stay serial (they mutate the shared program cache, and are
  /// cheap next to VM execution), only VM runs fan out, and a consuming
  /// measure() advances Evaluations/Compiles/CacheHits precisely as the
  /// sequential execution would have — the search trajectory (rung
  /// rankings, budget cut-offs, chosen config) is bit-identical at every
  /// worker count. No-op at one worker.
  void prefetch(const std::vector<ExecConfig> &Configs, unsigned Resource);

  /// Batches in the measurement sample (successive halving's top rung).
  unsigned maxResource() const { return (unsigned)Sample.size(); }
  /// The measurement sample itself (unit-capped copies, stream order) —
  /// what a full-resource measure() executed. Calibration simulates these
  /// exact batches so analytic predictions and VM measurements price the
  /// same work.
  const std::vector<NestedBatch> &sampleBatches() const { return Sample; }
  /// Total child units in the first \p Resource sample batches (used to
  /// extrapolate partial-rung measurements to full-sample time).
  uint64_t sampleUnits(unsigned Resource) const;
  /// VM executions performed so far (what Budget bounds).
  unsigned evaluations() const { return Evaluations; }
  /// Distinct programs parsed + lowered to bytecode.
  unsigned programCompiles() const { return Compiles; }
  /// Measurements served from cache (no VM execution, no budget).
  unsigned cacheHits() const { return CacheHits; }

  const std::string &lastError() const { return LastError; }
  const EmpiricalOptions &options() const { return Opts; }
  const GpuModel &gpu() const { return Gpu; }
  const VmWorkload &workload() const { return Workload; }

private:
  const VmProgram *programFor(const std::string &PipelineText);
  /// One VM execution, counter-free and thread-safe (touches only the
  /// out-parameters and immutable evaluator state): the body shared by
  /// the sequential measure() path and prefetch()'s worker threads.
  bool runMeasurement(const VmProgram &Program, const std::string &Pipeline,
                      unsigned Resource, VmMeasurement &Out, std::string &Err,
                      ExecMode Mode = ExecMode::Decoded,
                      LaunchProfile *ProfileOut = nullptr) const;
  /// One measurement round: stage sample batch \p I's arguments and
  /// launch the parent. Shared by runMeasurement and replayRoundExact so
  /// the replay executes exactly the round the measurement ran.
  bool runSampleRound(Device &Dev, unsigned I, std::string &Err) const;
  unsigned evalWorkers() const;

  /// A prefetched measurement waiting for its measure() call (which
  /// performs the counter accounting). Failed runs are staged too so the
  /// consuming call reports the same error the sequential run would.
  struct StagedMeasurement {
    bool Ok = false;
    VmMeasurement M;
    std::string Error;
  };

  GpuModel Gpu;
  VmWorkload Workload;
  EmpiricalOptions Opts;
  const LaunchProfile *Profile = nullptr;
  std::vector<NestedBatch> Sample;
  /// Each sample batch's index in the workload's full stream (bound
  /// workloads replay the recorded round with that index).
  std::vector<unsigned> SampleIndex;
  std::map<std::string, VmProgram> Programs;
  std::set<std::string> FailedPipelines; ///< Negative compile cache.
  std::map<std::string, VmMeasurement> Cache;
  std::map<std::string, StagedMeasurement> Staged;
  unsigned Evaluations = 0;
  unsigned Compiles = 0;
  unsigned CacheHits = 0;
  std::string LastError;
};

struct EmpiricalTuneResult {
  ExecConfig Config;
  /// The winner's measurement (empirical/hybrid modes; zero for analytic).
  VmMeasurement Measured;
  /// Makespan estimate: cyclesToUs(Measured.Cycles) — extrapolated by
  /// child units when a budget-exhausted search left the winner measured
  /// below the full sample — or the simulated time for analytic mode.
  double TimeUs = 0;
  unsigned VmEvaluations = 0;
  /// Analytic-simulator probes spent (analytic mode's sweep, hybrid
  /// mode's first-stage ranking).
  unsigned SimProbes = 0;
  TuneMode Mode = TuneMode::Empirical;
  /// passPipelineTextFor(Config) — feed to dpoptcc -passes= to realize it.
  std::string Pipeline;
};

/// Successive halving + hill climbing, entirely VM-measured.
EmpiricalTuneResult empiricalTune(EmpiricalEvaluator &Eval,
                                  const VariantMask &Mask);

/// Simulator-ranked shortlist, VM-measured winners.
EmpiricalTuneResult hybridTune(EmpiricalEvaluator &Eval,
                               const VariantMask &Mask);

/// The existing exhaustive simulator sweep in the common result shape.
EmpiricalTuneResult analyticTune(const GpuModel &Gpu,
                                 const std::vector<NestedBatch> &Batches,
                                 const VariantMask &Mask);

/// One-call front end used by the drivers: dispatches on \p Mode
/// (constructing the evaluator for the VM-backed modes).
EmpiricalTuneResult tuneWorkload(TuneMode Mode, const GpuModel &Gpu,
                                 const VmWorkload &Workload,
                                 const VariantMask &Mask,
                                 const EmpiricalOptions &Opts = {});

} // namespace dpo

#endif // DPO_TUNER_EMPIRICAL_H
