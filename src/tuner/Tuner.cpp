//===--- Tuner.cpp --------------------------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <limits>
#include <string_view>

using namespace dpo;

std::vector<uint32_t> dpo::defaultThresholdSweep() {
  std::vector<uint32_t> Sweep;
  for (uint32_t T = 1; T <= 32768; T *= 2)
    Sweep.push_back(T);
  return Sweep;
}

std::vector<uint32_t> dpo::defaultCoarsenSweep() {
  return {1, 2, 4, 8, 16, 32};
}

std::vector<uint32_t> dpo::defaultGroupSizeSweep() { return {2, 4, 8, 16, 32}; }

uint32_t dpo::thresholdForLaunchBudget(const std::vector<NestedBatch> &Batches,
                                       uint64_t TargetLaunches) {
  // Launches(T) = |{units >= T}| is monotone in T, so instead of rescanning
  // every unit for every sweep value (O(sweep * batches * units)), sort the
  // units once and binary-search each threshold's suffix count.
  std::vector<uint32_t> Units;
  size_t Total = 0;
  for (const NestedBatch &B : Batches)
    Total += B.ChildUnits.size();
  Units.reserve(Total);
  for (const NestedBatch &B : Batches)
    Units.insert(Units.end(), B.ChildUnits.begin(), B.ChildUnits.end());
  std::sort(Units.begin(), Units.end());

  for (uint32_t Threshold : defaultThresholdSweep()) {
    uint64_t Launches =
        Units.end() - std::lower_bound(Units.begin(), Units.end(), Threshold);
    if (Launches <= TargetLaunches)
      return Threshold;
  }
  return defaultThresholdSweep().back();
}

namespace {

/// Enumerates the configurations of a variant and keeps the fastest.
template <typename Callback>
void forEachConfig(const VariantMask &Mask, Callback &&Visit) {
  std::vector<std::optional<uint32_t>> Thresholds = {std::nullopt};
  if (Mask.Thresholding)
    for (uint32_t T : defaultThresholdSweep())
      Thresholds.push_back(T);

  std::vector<uint32_t> Factors = {1};
  if (Mask.Coarsening)
    Factors = defaultCoarsenSweep();

  std::vector<AggGranularity> Grans = {AggGranularity::None};
  if (Mask.Aggregation) {
    Grans = Mask.Granularities;
  }

  for (auto Threshold : Thresholds)
    for (uint32_t Factor : Factors)
      for (AggGranularity G : Grans) {
        if (G == AggGranularity::MultiBlock) {
          for (uint32_t Group : defaultGroupSizeSweep()) {
            ExecConfig C;
            C.Threshold = Threshold;
            C.CoarsenFactor = Factor;
            C.Agg = G;
            C.AggGroupBlocks = Group;
            Visit(C);
          }
        } else {
          ExecConfig C;
          C.Threshold = Threshold;
          C.CoarsenFactor = Factor;
          C.Agg = G;
          Visit(C);
        }
      }
}

} // namespace

std::vector<ExecConfig> dpo::enumerateConfigs(const VariantMask &Mask) {
  std::vector<ExecConfig> Configs;
  forEachConfig(Mask, [&](const ExecConfig &C) { Configs.push_back(C); });
  return Configs;
}

TuneResult dpo::exhaustiveTune(const GpuModel &Gpu,
                               const std::vector<NestedBatch> &Batches,
                               const VariantMask &Mask) {
  TuneResult Best;
  Best.Result.TimeUs = std::numeric_limits<double>::infinity();
  forEachConfig(Mask, [&](const ExecConfig &C) {
    SimResult R = simulateBatches(Gpu, Batches, C);
    ++Best.Probes;
    if (R.TimeUs < Best.Result.TimeUs) {
      Best.Result = R;
      Best.Config = C;
    }
  });
  return Best;
}

PipelineOptions dpo::pipelineOptionsFor(const ExecConfig &Config) {
  PipelineOptions Options;
  if (Config.NoCdp) {
    // The no-CDP baseline serializes every child grid: thresholding with a
    // threshold no realistic grid reaches.
    Options.EnableThresholding = true;
    Options.Thresholding.Threshold = 0xFFFFFFFFu;
    Options.Thresholding.FallbackToTotalThreads = true;
    return Options;
  }
  if (Config.Threshold) {
    Options.EnableThresholding = true;
    Options.Thresholding.Threshold = *Config.Threshold;
  }
  if (Config.CoarsenFactor > 1) {
    Options.EnableCoarsening = true;
    Options.Coarsening.Factor = Config.CoarsenFactor;
  }
  if (Config.Agg != AggGranularity::None) {
    Options.EnableAggregation = true;
    Options.Aggregation.Granularity = Config.Agg;
    Options.Aggregation.GroupSize = Config.AggGroupBlocks;
    Options.Aggregation.UseAggregationThreshold = Config.AggThresholdEnabled;
    Options.Aggregation.AggregationThreshold = Config.AggThreshold;
  }
  return Options;
}

std::string dpo::passPipelineTextFor(const ExecConfig &Config) {
  PassManager PM;
  buildPassPipeline(PM, pipelineOptionsFor(Config));
  return PM.pipelineText();
}

bool dpo::execConfigFromPipelineText(std::string_view Text, ExecConfig &Out) {
  ExecConfig C;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find(',', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Component = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Component.empty())
      continue;

    std::string_view Name = Component;
    std::vector<std::string_view> Params;
    size_t Open = Component.find('[');
    if (Open != std::string_view::npos) {
      if (Component.back() != ']')
        return false;
      Name = Component.substr(0, Open);
      std::string_view Body =
          Component.substr(Open + 1, Component.size() - Open - 2);
      size_t P = 0;
      while (P <= Body.size()) {
        size_t Colon = Body.find(':', P);
        if (Colon == std::string_view::npos)
          Colon = Body.size();
        Params.push_back(Body.substr(P, Colon - P));
        P = Colon + 1;
        if (Colon == Body.size())
          break;
      }
    }

    auto ParseU32 = [](std::string_view S, uint32_t &V) {
      unsigned Parsed = 0;
      if (parsePositiveU32(std::string(S), Parsed) != ParseUIntStatus::Ok)
        return false;
      V = Parsed;
      return true;
    };

    if (Name == "threshold") {
      uint32_t N = 0;
      bool Fallback = false;
      bool HaveValue = false;
      for (std::string_view P : Params) {
        if (P == "fallback")
          Fallback = true;
        else if (P == "literal" || P == "macro")
          continue;
        else if (ParseU32(P, N))
          HaveValue = true;
        else
          return false; // "profile" and anything else: not representable
      }
      if (!HaveValue)
        N = ThresholdingOptions().Threshold; // bare `threshold`
      if (N == 0xFFFFFFFFu && Fallback)
        C.NoCdp = true;
      else
        C.Threshold = N;
    } else if (Name == "coarsen") {
      uint32_t N = CoarseningOptions().Factor;
      for (std::string_view P : Params) {
        if (P == "literal" || P == "macro")
          continue;
        if (!ParseU32(P, N))
          return false;
      }
      C.CoarsenFactor = N;
    } else if (Name == "aggregate") {
      if (Params.empty())
        return false;
      std::string_view G = Params[0];
      if (G == "warp")
        C.Agg = AggGranularity::Warp;
      else if (G == "block")
        C.Agg = AggGranularity::Block;
      else if (G == "multiblock")
        C.Agg = AggGranularity::MultiBlock;
      else if (G == "grid")
        C.Agg = AggGranularity::Grid;
      else
        return false;
      for (size_t I = 1; I < Params.size(); ++I) {
        std::string_view P = Params[I];
        if (P == "literal" || P == "macro")
          continue;
        const std::string_view AggThr = "agg-threshold=";
        uint32_t N = 0;
        if (P.rfind(AggThr, 0) == 0) {
          if (!ParseU32(P.substr(AggThr.size()), N))
            return false;
          C.AggThresholdEnabled = true;
          C.AggThreshold = N;
        } else if (ParseU32(P, N)) {
          C.AggGroupBlocks = N;
        } else {
          return false;
        }
      }
    } else {
      // speculate, canonicalize, builtin-rewrite, unknown passes: outside
      // ExecConfig's vocabulary.
      return false;
    }
  }
  Out = C;
  return true;
}

TuneResult dpo::guidedTune(const GpuModel &Gpu,
                           const std::vector<NestedBatch> &Batches,
                           const VariantMask &Mask) {
  TuneResult Best;
  Best.Result.TimeUs = std::numeric_limits<double>::infinity();

  // Threshold: the 6k-8k launch budget rule picks one value directly; a
  // low fallback probe covers workloads whose serialized work is expensive
  // enough that more (cheap) launches beat divergent serialization.
  std::vector<std::optional<uint32_t>> Thresholds;
  if (Mask.Thresholding) {
    uint32_t Budget = thresholdForLaunchBudget(Batches, 8000);
    Thresholds.push_back(Budget);
    if (Budget > 32)
      Thresholds.push_back(32u);
  } else {
    Thresholds.push_back(std::nullopt);
  }

  // Coarsening: insensitive above 8, so fix a single large factor.
  uint32_t Factor = Mask.Coarsening ? 16 : 1;

  // Granularity: skip warp ("never favorable"); two multi-block group
  // sizes; keep None (some kernels are best without aggregation, e.g.
  // MSTV in Fig. 11).
  struct GranChoice {
    AggGranularity G;
    uint32_t Group;
  };
  std::vector<GranChoice> Grans = {{AggGranularity::None, 0}};
  if (Mask.Aggregation) {
    for (AggGranularity G : Mask.Granularities) {
      if (G == AggGranularity::Warp)
        continue;
      if (G == AggGranularity::MultiBlock) {
        Grans.push_back({G, 8});
        Grans.push_back({G, 32});
      } else {
        Grans.push_back({G, 0});
      }
    }
  }

  for (auto Threshold : Thresholds)
    for (const GranChoice &Choice : Grans) {
      ExecConfig C;
      C.Threshold = Threshold;
      C.CoarsenFactor = Factor;
      C.Agg = Choice.G;
      if (Choice.Group)
        C.AggGroupBlocks = Choice.Group;
      SimResult R = simulateBatches(Gpu, Batches, C);
      ++Best.Probes;
      if (R.TimeUs < Best.Result.TimeUs) {
        Best.Result = R;
        Best.Config = C;
      }
    }
  return Best;
}
