//===--- Stmt.h - Statement and expression AST nodes ------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement/expression hierarchy for the CUDA-C subset. Following
/// Clang, Expr derives from Stmt so expressions can appear directly as
/// statements. Nodes are allocated and owned by an ASTContext; children are
/// raw non-owning pointers. Dynamic typing uses the hand-rolled
/// isa/dyn_cast machinery keyed on StmtKind ranges.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_STMT_H
#define DPO_AST_STMT_H

#include "ast/Type.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dpo {

class VarDecl;

enum class StmtKind : unsigned char {
  // Statements.
  Compound,
  DeclS,
  If,
  For,
  While,
  Do,
  Return,
  Break,
  Continue,
  Null,
  // Expressions (contiguous range; keep FirstExpr/LastExpr in sync).
  IntegerLit,
  FloatLit,
  BoolLit,
  StringLit,
  DeclRef,
  Member,
  ArraySubscript,
  Call,
  Unary,
  Binary,
  Conditional,
  Cast,
  Paren,
  SizeofE,
  Launch,
};

constexpr StmtKind FirstExprKind = StmtKind::IntegerLit;
constexpr StmtKind LastExprKind = StmtKind::Launch;

class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }
  void setLoc(SourceLocation L) { Loc = L; }

  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
  ~Stmt() = default;

private:
  StmtKind Kind;
  SourceLocation Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions. Carries the (parser- or pass-computed)
/// static type used by the printer and the bytecode compiler.
class Expr : public Stmt {
public:
  const Type &type() const { return Ty; }
  void setType(Type T) { Ty = std::move(T); }

  static bool classof(const Stmt *S) {
    return S->kind() >= FirstExprKind && S->kind() <= LastExprKind;
  }

protected:
  explicit Expr(StmtKind Kind) : Stmt(Kind) {}

private:
  Type Ty;
};

class IntegerLiteral : public Expr {
public:
  explicit IntegerLiteral(uint64_t Value, std::string Spelling = "")
      : Expr(StmtKind::IntegerLit), Value(Value),
        Spelling(std::move(Spelling)) {
    setType(Type(BuiltinKind::Int));
  }

  uint64_t value() const { return Value; }

  /// Verbatim source spelling if this literal came from the parser (so hex
  /// constants and suffixes survive re-printing); empty for synthesized
  /// literals.
  const std::string &spelling() const { return Spelling; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::IntegerLit;
  }

private:
  uint64_t Value;
  std::string Spelling;
};

class FloatLiteral : public Expr {
public:
  explicit FloatLiteral(double Value, std::string Spelling = "")
      : Expr(StmtKind::FloatLit), Value(Value), Spelling(std::move(Spelling)) {
    setType(Type(BuiltinKind::Double));
  }

  double value() const { return Value; }
  const std::string &spelling() const { return Spelling; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::FloatLit; }

private:
  double Value;
  std::string Spelling;
};

class BoolLiteral : public Expr {
public:
  explicit BoolLiteral(bool Value) : Expr(StmtKind::BoolLit), Value(Value) {
    setType(Type(BuiltinKind::Bool));
  }

  bool value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::BoolLit; }

private:
  bool Value;
};

class StringLiteral : public Expr {
public:
  /// \p Spelling includes the surrounding quotes.
  explicit StringLiteral(std::string Spelling)
      : Expr(StmtKind::StringLit), Spelling(std::move(Spelling)) {
    setType(Type(BuiltinKind::Char, /*PointerDepth=*/1, /*IsConst=*/true));
  }

  const std::string &spelling() const { return Spelling; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::StringLit;
  }

private:
  std::string Spelling;
};

/// A use of a named entity. Our subset resolves names lazily (analyses look
/// names up in scope maps), so this only stores the identifier.
class DeclRefExpr : public Expr {
public:
  explicit DeclRefExpr(std::string Name)
      : Expr(StmtKind::DeclRef), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DeclRef; }

private:
  std::string Name;
};

class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, std::string Member, bool IsArrow)
      : Expr(StmtKind::Member), Base(Base), Member(std::move(Member)),
        IsArrow(IsArrow) {}

  Expr *base() const { return Base; }
  Expr *&baseSlot() { return Base; }
  const std::string &member() const { return Member; }
  bool isArrow() const { return IsArrow; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Member; }

private:
  Expr *Base;
  std::string Member;
  bool IsArrow;
};

class ArraySubscriptExpr : public Expr {
public:
  ArraySubscriptExpr(Expr *Base, Expr *Index)
      : Expr(StmtKind::ArraySubscript), Base(Base), Index(Index) {}

  Expr *base() const { return Base; }
  Expr *index() const { return Index; }
  Expr *&baseSlot() { return Base; }
  Expr *&indexSlot() { return Index; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ArraySubscript;
  }

private:
  Expr *Base;
  Expr *Index;
};

class CallExpr : public Expr {
public:
  CallExpr(Expr *Callee, std::vector<Expr *> Args)
      : Expr(StmtKind::Call), Callee(Callee), Args(std::move(Args)) {}

  Expr *callee() const { return Callee; }
  Expr *&calleeSlot() { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }
  std::vector<Expr *> &args() { return Args; }

  /// Callee name if the callee is a plain identifier, else empty.
  std::string calleeName() const;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

enum class UnaryOpKind : unsigned char {
  Plus,
  Minus,
  Not,    ///< logical !
  BitNot, ///< ~
  PreInc,
  PreDec,
  PostInc,
  PostDec,
  Deref,
  AddrOf,
};

class UnaryOperator : public Expr {
public:
  UnaryOperator(UnaryOpKind Op, Expr *Operand)
      : Expr(StmtKind::Unary), Op(Op), Operand(Operand) {}

  UnaryOpKind op() const { return Op; }
  Expr *operand() const { return Operand; }
  Expr *&operandSlot() { return Operand; }

  bool isPostfix() const {
    return Op == UnaryOpKind::PostInc || Op == UnaryOpKind::PostDec;
  }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Unary; }

private:
  UnaryOpKind Op;
  Expr *Operand;
};

enum class BinaryOpKind : unsigned char {
  Mul, Div, Rem,
  Add, Sub,
  Shl, Shr,
  LT, GT, LE, GE,
  EQ, NE,
  BitAnd, BitXor, BitOr,
  LAnd, LOr,
  Assign, MulAssign, DivAssign, RemAssign, AddAssign, SubAssign, ShlAssign,
  ShrAssign, AndAssign, XorAssign, OrAssign,
  Comma,
};

/// True for `=` and all compound assignments.
bool isAssignmentOp(BinaryOpKind Op);

/// For compound assignments, the underlying arithmetic op (`+=` -> Add).
BinaryOpKind compoundAssignBaseOp(BinaryOpKind Op);

class BinaryOperator : public Expr {
public:
  BinaryOperator(BinaryOpKind Op, Expr *LHS, Expr *RHS)
      : Expr(StmtKind::Binary), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOpKind op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  Expr *&lhsSlot() { return LHS; }
  Expr *&rhsSlot() { return RHS; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Binary; }

private:
  BinaryOpKind Op;
  Expr *LHS;
  Expr *RHS;
};

class ConditionalOperator : public Expr {
public:
  ConditionalOperator(Expr *Cond, Expr *TrueExpr, Expr *FalseExpr)
      : Expr(StmtKind::Conditional), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}

  Expr *cond() const { return Cond; }
  Expr *trueExpr() const { return TrueExpr; }
  Expr *falseExpr() const { return FalseExpr; }
  Expr *&condSlot() { return Cond; }
  Expr *&trueSlot() { return TrueExpr; }
  Expr *&falseSlot() { return FalseExpr; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;
};

/// A C-style cast `(float)x`.
class CastExpr : public Expr {
public:
  CastExpr(Type TargetType, Expr *Operand)
      : Expr(StmtKind::Cast), Operand(Operand) {
    setType(std::move(TargetType));
  }

  Expr *operand() const { return Operand; }
  Expr *&operandSlot() { return Operand; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Cast; }

private:
  Expr *Operand;
};

class ParenExpr : public Expr {
public:
  explicit ParenExpr(Expr *Inner) : Expr(StmtKind::Paren), Inner(Inner) {}

  Expr *inner() const { return Inner; }
  Expr *&innerSlot() { return Inner; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Paren; }

private:
  Expr *Inner;
};

/// `sizeof(type)` or `sizeof expr`; we only need the type form.
class SizeofExpr : public Expr {
public:
  explicit SizeofExpr(Type Queried)
      : Expr(StmtKind::SizeofE), Queried(std::move(Queried)) {
    setType(Type(BuiltinKind::ULong));
  }

  const Type &queriedType() const { return Queried; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::SizeofE; }

private:
  Type Queried;
};

/// A dynamic-parallelism kernel launch `kernel<<<grid, block[, smem[,
/// stream]]>>>(args)`. CUDA treats this as an expression of type void; so do
/// we, which lets it appear as an expression statement.
class LaunchExpr : public Expr {
public:
  LaunchExpr(std::string Kernel, Expr *GridDim, Expr *BlockDim, Expr *SharedMem,
             Expr *Stream, std::vector<Expr *> Args)
      : Expr(StmtKind::Launch), Kernel(std::move(Kernel)), GridDim(GridDim),
        BlockDim(BlockDim), SharedMem(SharedMem), Stream(Stream),
        Args(std::move(Args)) {
    setType(Type(BuiltinKind::Void));
  }

  const std::string &kernel() const { return Kernel; }
  void setKernel(std::string K) { Kernel = std::move(K); }
  Expr *gridDim() const { return GridDim; }
  Expr *blockDim() const { return BlockDim; }
  Expr *sharedMem() const { return SharedMem; }
  Expr *stream() const { return Stream; }
  Expr *&gridDimSlot() { return GridDim; }
  Expr *&blockDimSlot() { return BlockDim; }
  Expr *&sharedMemSlot() { return SharedMem; }
  Expr *&streamSlot() { return Stream; }
  const std::vector<Expr *> &args() const { return Args; }
  std::vector<Expr *> &args() { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Launch; }

private:
  std::string Kernel;
  Expr *GridDim;
  Expr *BlockDim;
  Expr *SharedMem; ///< May be null.
  Expr *Stream;    ///< May be null.
  std::vector<Expr *> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(std::vector<Stmt *> Body = {})
      : Stmt(StmtKind::Compound), Body(std::move(Body)) {}

  const std::vector<Stmt *> &body() const { return Body; }
  std::vector<Stmt *> &body() { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Compound; }

private:
  std::vector<Stmt *> Body;
};

/// A declaration statement. Multi-declarator statements (`int a, b;`) keep
/// all declarators together so they re-print naturally.
class DeclStmt : public Stmt {
public:
  explicit DeclStmt(std::vector<VarDecl *> Decls)
      : Stmt(StmtKind::DeclS), Decls(std::move(Decls)) {}

  const std::vector<VarDecl *> &decls() const { return Decls; }
  std::vector<VarDecl *> &decls() { return Decls; }
  VarDecl *singleDecl() const {
    return Decls.size() == 1 ? Decls.front() : nullptr;
  }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DeclS; }

private:
  std::vector<VarDecl *> Decls;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }
  Expr *&condSlot() { return Cond; }
  Stmt *&thenSlot() { return Then; }
  Stmt *&elseSlot() { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< May be null.
};

class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body)
      : Stmt(StmtKind::For), Init(Init), Cond(Cond), Inc(Inc), Body(Body) {}

  Stmt *init() const { return Init; } ///< DeclStmt, Expr, or null.
  Expr *cond() const { return Cond; } ///< May be null.
  Expr *inc() const { return Inc; }   ///< May be null.
  Stmt *body() const { return Body; }
  Stmt *&initSlot() { return Init; }
  Expr *&condSlot() { return Cond; }
  Expr *&incSlot() { return Inc; }
  Stmt *&bodySlot() { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Inc;
  Stmt *Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  Expr *&condSlot() { return Cond; }
  Stmt *&bodySlot() { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class DoStmt : public Stmt {
public:
  DoStmt(Stmt *Body, Expr *Cond)
      : Stmt(StmtKind::Do), Body(Body), Cond(Cond) {}

  Stmt *body() const { return Body; }
  Expr *cond() const { return Cond; }
  Stmt *&bodySlot() { return Body; }
  Expr *&condSlot() { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Do; }

private:
  Stmt *Body;
  Expr *Cond;
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(Expr *Value) : Stmt(StmtKind::Return), Value(Value) {}

  Expr *value() const { return Value; } ///< May be null.
  Expr *&valueSlot() { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(StmtKind::Break) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Continue; }
};

class NullStmt : public Stmt {
public:
  NullStmt() : Stmt(StmtKind::Null) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Null; }
};

} // namespace dpo

#endif // DPO_AST_STMT_H
