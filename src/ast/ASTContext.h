//===--- ASTContext.h - AST node ownership ----------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASTContext owns every AST node created through it. Nodes hold raw
/// pointers to children; all of them die together when the context dies.
/// (A bump-pointer arena would also work, but our nodes own std::vectors
/// and std::strings, so a type-erased deleter list keeps things simple and
/// correct.)
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_ASTCONTEXT_H
#define DPO_AST_ASTCONTEXT_H

#include "ast/Decl.h"
#include "ast/Stmt.h"

#include <memory>
#include <utility>
#include <vector>

namespace dpo {

class ASTContext {
public:
  ASTContext() = default;
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  ~ASTContext() {
    for (auto &Entry : Nodes)
      Entry.second(Entry.first);
  }

  /// Allocates and owns a new node: `Ctx.create<BinaryOperator>(...)`.
  template <typename T, typename... Args> T *create(Args &&...A) {
    T *Node = new T(std::forward<Args>(A)...);
    Nodes.emplace_back(Node, [](void *P) { delete static_cast<T *>(P); });
    return Node;
  }

  // Shorthand factories for nodes the passes synthesize constantly.

  IntegerLiteral *intLit(uint64_t Value) {
    return create<IntegerLiteral>(Value);
  }

  DeclRefExpr *ref(std::string Name) {
    return create<DeclRefExpr>(std::move(Name));
  }

  /// `Base.Member` (Base synthesized as a DeclRefExpr).
  MemberExpr *member(std::string Base, std::string Member) {
    return create<MemberExpr>(ref(std::move(Base)), std::move(Member),
                              /*IsArrow=*/false);
  }

  BinaryOperator *binary(BinaryOpKind Op, Expr *LHS, Expr *RHS) {
    return create<BinaryOperator>(Op, LHS, RHS);
  }

  ParenExpr *paren(Expr *Inner) { return create<ParenExpr>(Inner); }

  CompoundStmt *compound(std::vector<Stmt *> Body = {}) {
    return create<CompoundStmt>(std::move(Body));
  }

  size_t nodeCount() const { return Nodes.size(); }

private:
  std::vector<std::pair<void *, void (*)(void *)>> Nodes;
};

} // namespace dpo

#endif // DPO_AST_ASTCONTEXT_H
