//===--- Decl.h - Declaration AST nodes -------------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_DECL_H
#define DPO_AST_DECL_H

#include "ast/Stmt.h"

#include <string>
#include <vector>

namespace dpo {

enum class DeclKind : unsigned char {
  Var,
  Function,
  Raw,
  TranslationUnit,
};

class Decl {
public:
  DeclKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }
  void setLoc(SourceLocation L) { Loc = L; }

  Decl(const Decl &) = delete;
  Decl &operator=(const Decl &) = delete;

protected:
  explicit Decl(DeclKind Kind) : Kind(Kind) {}
  ~Decl() = default;

private:
  DeclKind Kind;
  SourceLocation Loc;
};

/// A variable or parameter declaration. Array declarators keep their
/// dimension expressions (`int buf[2][N]` has two array dims).
class VarDecl : public Decl {
public:
  VarDecl(Type Ty, std::string Name, Expr *Init = nullptr)
      : Decl(DeclKind::Var), Ty(std::move(Ty)), Name(std::move(Name)),
        Init(Init) {}

  const Type &type() const { return Ty; }
  void setType(Type T) { Ty = std::move(T); }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  Expr *init() const { return Init; }
  Expr *&initSlot() { return Init; }
  void setInit(Expr *E) { Init = E; }

  bool isShared() const { return Shared; }
  void setShared(bool V) { Shared = V; }

  const std::vector<Expr *> &arrayDims() const { return ArrayDims; }
  std::vector<Expr *> &arrayDims() { return ArrayDims; }
  bool isArray() const { return !ArrayDims.empty(); }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Var; }

private:
  Type Ty;
  std::string Name;
  Expr *Init;
  bool Shared = false;
  std::vector<Expr *> ArrayDims;
};

/// CUDA execution-space qualifiers on a function.
struct FunctionQualifiers {
  bool Global = false; ///< __global__ (kernel)
  bool Device = false; ///< __device__
  bool Host = false;   ///< __host__
  bool Static = false;
  bool Inline = false;
  bool ForceInline = false;
  bool Extern = false;
};

class FunctionDecl : public Decl {
public:
  FunctionDecl(FunctionQualifiers Quals, Type ReturnType, std::string Name,
               std::vector<VarDecl *> Params, CompoundStmt *Body)
      : Decl(DeclKind::Function), Quals(Quals), ReturnType(std::move(ReturnType)),
        Name(std::move(Name)), Params(std::move(Params)), Body(Body) {}

  const FunctionQualifiers &qualifiers() const { return Quals; }
  FunctionQualifiers &qualifiers() { return Quals; }
  const Type &returnType() const { return ReturnType; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  const std::vector<VarDecl *> &params() const { return Params; }
  std::vector<VarDecl *> &params() { return Params; }
  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }

  bool isKernel() const { return Quals.Global; }
  bool isDefinition() const { return Body != nullptr; }

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::Function;
  }

private:
  FunctionQualifiers Quals;
  Type ReturnType;
  std::string Name;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body; ///< Null for a prototype.
};

/// Verbatim text passed through the pipeline unchanged (preprocessor lines
/// and any top-level construct outside our subset).
class RawDecl : public Decl {
public:
  explicit RawDecl(std::string Text)
      : Decl(DeclKind::Raw), Text(std::move(Text)) {}

  const std::string &text() const { return Text; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Raw; }

private:
  std::string Text;
};

class TranslationUnit : public Decl {
public:
  TranslationUnit() : Decl(DeclKind::TranslationUnit) {}

  const std::vector<Decl *> &decls() const { return Decls; }
  std::vector<Decl *> &decls() { return Decls; }

  /// Finds the first function definition or declaration named \p Name.
  FunctionDecl *findFunction(const std::string &Name) const;

  /// All __global__ function definitions, in source order.
  std::vector<FunctionDecl *> kernels() const;

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::TranslationUnit;
  }

private:
  std::vector<Decl *> Decls;
};

} // namespace dpo

#endif // DPO_AST_DECL_H
