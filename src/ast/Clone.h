//===--- Clone.h - Deep-copying AST subtrees --------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep clones of expressions, statements, and declarations into a target
/// ASTContext. The thresholding pass clones whole kernel bodies to build
/// the serial version; passes clone grid/block dimension expressions when
/// they must appear in more than one place.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_CLONE_H
#define DPO_AST_CLONE_H

#include "ast/ASTContext.h"
#include "ast/Decl.h"
#include "ast/Stmt.h"

namespace dpo {

Expr *cloneExpr(ASTContext &Ctx, const Expr *E);
Stmt *cloneStmt(ASTContext &Ctx, const Stmt *S);
VarDecl *cloneVarDecl(ASTContext &Ctx, const VarDecl *D);
FunctionDecl *cloneFunction(ASTContext &Ctx, const FunctionDecl *F);

} // namespace dpo

#endif // DPO_AST_CLONE_H
