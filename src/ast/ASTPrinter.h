//===--- ASTPrinter.h - AST back to CUDA source ------------------------------===//
//
// Part of the dpopt project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an AST back to compilable CUDA source. Parenthesization is
/// precedence-driven, so `(N + b - 1) / b` re-prints exactly as written and
/// synthesized expressions are never mis-associated. Round-trip fidelity
/// (parse -> print -> parse yields a structurally equal tree) is enforced by
/// the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef DPO_AST_ASTPRINTER_H
#define DPO_AST_ASTPRINTER_H

#include "ast/Decl.h"
#include "ast/Stmt.h"

#include <string>

namespace dpo {

/// Prints a whole translation unit.
std::string printTranslationUnit(const TranslationUnit *TU);

/// Prints one declaration (function, variable, raw text).
std::string printDecl(const Decl *D);

/// Prints a statement at the given indentation depth (two spaces per level).
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Prints an expression.
std::string printExpr(const Expr *E);

/// Spelling of a binary operator, e.g. "+", "<<=".
std::string_view binaryOpSpelling(BinaryOpKind Op);

/// Spelling of a unary operator, e.g. "!", "++".
std::string_view unaryOpSpelling(UnaryOpKind Op);

} // namespace dpo

#endif // DPO_AST_ASTPRINTER_H
